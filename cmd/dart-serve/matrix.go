package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dart/internal/serve"
)

// runMatrix replays a scenario matrix through the spec's target — in-process
// or over a wire protocol — prints the report, and enforces per-tenant
// completeness. With soak > 0 it repeats rounds until the deadline passes,
// perturbing every tenant's trace seed each round.
func runMatrix(base serve.ReplaySpec, spec string, soak time.Duration, jsonOut string) {
	if spec == "" {
		spec = serve.DefaultMatrixSpec
	}
	tenants, err := serve.ParseMatrixSpec(spec)
	if err != nil {
		fatalf("matrix: %v", err)
	}
	deadline := time.Now().Add(soak)
	var rep serve.MatrixReport
	for round := 0; ; round++ {
		rt := make([]serve.TenantSpec, len(tenants))
		copy(rt, tenants)
		for i := range rt {
			rt[i].Seed += int64(1000 * round)
		}
		base.Tenants = rt
		rep, err = serve.ReplayMatrix(base)
		if err != nil {
			fatalf("matrix: %v", err)
		}
		fmt.Print(rep)
		if !rep.Complete {
			fatalf("COMPLETENESS FAILED: a tenant dropped or reordered accesses")
		}
		if base.Verify && !rep.Verified {
			fatalf("VERIFY FAILED: a checkable tenant is not bit-identical to the offline simulator")
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
	fmt.Printf("matrix complete: every tenant delivered every access in order\n")
	if jsonOut != "" {
		writeMatrixJSON(jsonOut, rep)
	}
}

// writeMatrixJSON dumps the matrix report with host context, mirroring the
// replay report's JSON shape (minus the bench-gate "online" carry-over —
// matrix reports are not bench baselines).
func writeMatrixJSON(path string, rep serve.MatrixReport) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	doc := struct {
		Generated string             `json:"generated"`
		Command   string             `json:"command"`
		Host      hostInfo           `json:"host"`
		Report    serve.MatrixReport `json:"report"`
	}{
		Generated: time.Now().Format("2006-01-02"),
		Command:   strings.Join(os.Args, " "),
		Host: hostInfo{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Report: rep,
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("report written to %s\n", path)
}
