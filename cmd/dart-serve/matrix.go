package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dart/internal/serve"
	"dart/internal/sim"
	"dart/internal/trace"
)

// parseMatrix turns a scenario-matrix spec string into tenant specs. The
// grammar is semicolon-separated tenants, each "name:key=value,..." — e.g.
//
//	hot:workload=zipf,sessions=4,n=2000,class=dart,qps=5000,weight=3;\
//	cold:workload=chase,class=online,cache=twolevel
//
// Keys: workload (required; any trace.Workloads name), sessions, n, class,
// degree, qps, weight, seed, cache (default|twolevel). Unset keys take the
// serve.TenantSpec defaults; cache "" uses the engine's machine model.
func parseMatrix(spec string) ([]serve.TenantSpec, error) {
	var tenants []serve.TenantSpec
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, rest, ok := strings.Cut(raw, ":")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("tenant %q: want name:key=value,...", raw)
		}
		t := serve.TenantSpec{Name: strings.TrimSpace(name)}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenant %q: bad pair %q", t.Name, kv)
			}
			var err error
			switch k {
			case "workload":
				if _, ok := trace.WorkloadByName(v); !ok {
					return nil, fmt.Errorf("tenant %q: unknown workload %q", t.Name, v)
				}
				t.Workload = v
			case "class":
				t.Class = v
			case "sessions":
				t.Sessions, err = strconv.Atoi(v)
			case "n":
				t.N, err = strconv.Atoi(v)
			case "degree":
				t.Degree, err = strconv.Atoi(v)
			case "weight":
				t.Weight, err = strconv.Atoi(v)
			case "qps":
				t.QPS, err = strconv.ParseFloat(v, 64)
			case "seed":
				var s int64
				s, err = strconv.ParseInt(v, 10, 64)
				t.Seed = s
			case "cache":
				var cfg sim.Config
				switch v {
				case "default":
					cfg = sim.DefaultConfig()
				case "twolevel":
					cfg = sim.TwoLevelConfig()
				default:
					return nil, fmt.Errorf("tenant %q: unknown cache %q (default|twolevel)", t.Name, v)
				}
				t.SimCfg = &cfg
			default:
				return nil, fmt.Errorf("tenant %q: unknown key %q", t.Name, k)
			}
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %s=%q: %w", t.Name, k, v, err)
			}
		}
		if t.Workload == "" {
			return nil, fmt.Errorf("tenant %q: workload is required", t.Name)
		}
		tenants = append(tenants, t)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("empty matrix spec")
	}
	return tenants, nil
}

// defaultMatrix is the mixed-tenant scenario the nightly soak replays when
// -matrix is given no spec: four tenants across four workload-zoo families,
// two cache hierarchies, and (when the tiers are up) all three hot-swappable
// serving classes plus a classical baseline.
const defaultMatrix = "svc:workload=chase,sessions=2,n=2000,class=online,weight=3;" +
	"kv:workload=zipf,sessions=2,n=2000,class=student,cache=twolevel;" +
	"adv:workload=phase,sessions=1,n=2000,class=dart,cache=twolevel;" +
	"batch:workload=milc,sessions=1,n=2000,class=stride"

// runMatrix replays a scenario matrix through the engine — in-process or
// over a wire protocol, per mopt — prints the report, and enforces
// per-tenant completeness. With soak > 0 it repeats rounds until the
// deadline passes, perturbing every tenant's trace seed each round.
func runMatrix(e *serve.Engine, spec string, soak time.Duration, jsonOut string, mopt serve.MatrixOptions) {
	if spec == "" {
		spec = defaultMatrix
	}
	tenants, err := parseMatrix(spec)
	if err != nil {
		fatalf("matrix: %v", err)
	}
	deadline := time.Now().Add(soak)
	var rep serve.MatrixReport
	for round := 0; ; round++ {
		rt := make([]serve.TenantSpec, len(tenants))
		copy(rt, tenants)
		for i := range rt {
			rt[i].Seed += int64(1000 * round)
		}
		rep, err = serve.ReplayMatrix(e, rt, mopt)
		if err != nil {
			fatalf("matrix: %v", err)
		}
		fmt.Print(rep)
		if !rep.Complete {
			fatalf("COMPLETENESS FAILED: a tenant dropped or reordered accesses")
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
	fmt.Printf("matrix complete: every tenant delivered every access in order\n")
	if jsonOut != "" {
		writeMatrixJSON(jsonOut, rep)
	}
}

// writeMatrixJSON dumps the matrix report with host context, mirroring the
// replay report's JSON shape (minus the bench-gate "online" carry-over —
// matrix reports are not bench baselines).
func writeMatrixJSON(path string, rep serve.MatrixReport) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	doc := struct {
		Generated string             `json:"generated"`
		Command   string             `json:"command"`
		Host      hostInfo           `json:"host"`
		Report    serve.MatrixReport `json:"report"`
	}{
		Generated: time.Now().Format("2006-01-02"),
		Command:   strings.Join(os.Args, " "),
		Host: hostInfo{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Report: rep,
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("report written to %s\n", path)
}
