package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/online"
	"dart/internal/serve"
)

// TestBuildLearnerTiers pins the daemon's learner wiring: the flag
// combinations map onto the expected serving classes, and the dart tier
// rides on the student tier.
func TestBuildLearnerTiers(t *testing.T) {
	teacherOnly, err := buildLearner(nil, "", -1, false, -1, false, -1, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if teacherOnly.HasStudent() || teacherOnly.HasDart() {
		t.Fatal("teacher-only learner grew extra tiers")
	}

	dir := t.TempDir()
	full, err := buildLearner(nil, dir, -1, true, -1, true, -1, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if !full.HasStudent() || !full.HasDart() {
		t.Fatal("dart learner is missing a tier")
	}
	if full.Serving() == nil || full.StudentServing() == nil {
		t.Fatal("model classes not published at construction")
	}
	if full.DartServing() != nil {
		t.Fatal("a table served before any tabularization")
	}
	// The daemon's serving kernel is the configuration the CI bench gate
	// measures: LSH (power-of-two K) so tabularization cannot panic.
	k := online.DefaultTabularConfig().Kernel
	if k.K&(k.K-1) != 0 {
		t.Fatalf("serving kernel K=%d is not a power of two (LSH requires it)", k.K)
	}

	// A second learner over the same directory recovers both model classes.
	again, err := buildLearner(nil, dir, -1, true, -1, true, -1, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if again.Serving().Version != full.Serving().Version ||
		again.StudentServing().Version != full.StudentServing().Version {
		t.Fatal("restart did not recover the published classes")
	}
}

// TestBuildLearnerPolicySpec pins the -policy-spec wiring: malformed specs
// fail before a learner exists, the gate flag hangs the policy engine off
// the learner (and only then), and a budgeted spec replaces the fixed
// halved-teacher student with the configurator's candidate under exactly
// those constraints.
func TestBuildLearnerPolicySpec(t *testing.T) {
	for _, spec := range []string{
		"admit=high",                    // unparsable value
		"kernel=quantum",                // unknown tabularization kernel
		"dart-latency=1,dart-storage=1", // infeasible budget: empty design space
	} {
		if _, err := buildLearner(nil, "", -1, true, -1, true, -1, true, spec); err == nil {
			t.Fatalf("spec %q did not error", spec)
		}
	}

	ungated, err := buildLearner(nil, "", -1, true, -1, true, -1, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if ungated.Policy() != nil {
		t.Fatal("policy engine present without -policy")
	}

	// Thresholds plus a kernel override: the learner builds with the gate
	// attached and the spec-driven table shape (exact linear encoder, K=8,
	// C=2) in place of the serving default.
	gated, err := buildLearner(nil, "", -1, true, -1, true, -1, true,
		"admit=0.7,window=3,kernel=linear,k=8,c=2")
	if err != nil {
		t.Fatal(err)
	}
	if gated.Policy() == nil {
		t.Fatal("-policy did not attach the policy engine")
	}
	if !gated.HasStudent() || !gated.HasDart() {
		t.Fatal("gated learner is missing a tier")
	}

	// A budgeted spec routes the student architecture through the
	// configurator; the learner's modelled costs must match the candidate
	// the same spec derives directly.
	const budget = "dart-latency=100000,dart-storage=1073741824"
	spec, err := config.ParsePolicySpec(budget)
	if err != nil {
		t.Fatal(err)
	}
	data := dataprep.Default()
	cand, err := spec.ConfigureStudent(data.History, data.InputDim(), data.OutputDim())
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := buildLearner(nil, "", -1, true, -1, true, -1, true, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := budgeted.StudentLatency(), config.NNLatency(cand.Model); got != want {
		t.Fatalf("budgeted student latency %d, want configurator candidate %d", got, want)
	}
	if got, want := budgeted.StudentStorageBytes(), config.NNStorageBits(cand.Model, 32)/8; got != want {
		t.Fatalf("budgeted student storage %d, want configurator candidate %d", got, want)
	}
}

// TestPrintLearnerPolicyReport pins the log-scraping summary for a gated
// learner: the policy counter line and the trailing decision lines print
// from the real decision log.
func TestPrintLearnerPolicyReport(t *testing.T) {
	l, err := buildLearner(nil, "", -1, true, -1, true, -1, true, "admit=0.9,window=4")
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	// A forced teacher publish is the cheapest decision: no source class to
	// compare against, logged as an ungated admit.
	if _, err := l.Swap(); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	printLearner(l)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "policy: admitted 1") {
		t.Fatalf("policy counters missing from learner summary:\n%s", out)
	}
	if !strings.Contains(string(out), "policy: #1 teacher admit v") {
		t.Fatalf("decision line missing from learner summary:\n%s", out)
	}
}

// TestRunReplayDartCompleteness drives the daemon's replay path end to end
// on the dart class: verify flips to the completeness check (the versioned
// table hot-swaps under training by design), the report is written as JSON,
// and the learner summary prints without panicking.
func TestRunReplayDartCompleteness(t *testing.T) {
	learner, err := buildLearner(nil, "", -1, true, -1, true, -1, false, "")
	if err != nil {
		t.Fatal(err)
	}
	learner.Start()
	defer learner.Stop()
	e := serve.NewEngine(serve.Config{Online: learner})

	out := filepath.Join(t.TempDir(), "report.json")
	runReplay(serve.ReplaySpec{
		Engine: e, Prefetcher: "dart", Degree: 4, Verify: true,
	}, learner, 2, 500, 0, out)

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Report serve.Report `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Report.Merged.Accesses != 2*500 {
		t.Fatalf("report accounts %d accesses, want %d", doc.Report.Merged.Accesses, 2*500)
	}
}

// TestOrNone covers the tiny flag formatter.
func TestOrNone(t *testing.T) {
	if orNone("") != "disabled" || orNone("/x") != "/x" {
		t.Fatal("orNone misformats")
	}
}

// TestRunReplaySoakRound: a short soak repeats rounds until the deadline and
// still accounts every access (fresh session ids per round).
func TestRunReplaySoakRound(t *testing.T) {
	learner, err := buildLearner(nil, t.TempDir(), -1, true, -1, true, 50*time.Millisecond, false, "")
	if err != nil {
		t.Fatal(err)
	}
	learner.Start()
	defer learner.Stop()
	e := serve.NewEngine(serve.Config{Online: learner})
	runReplay(serve.ReplaySpec{
		Engine: e, Prefetcher: "student", Degree: 4, Verify: true,
	}, learner, 2, 400, 200*time.Millisecond, "")
}

// TestWriteJSONBothSections pins the report writer's two shapes: a binary
// replay updates only the "binary" section (merging with what is already
// there), and a JSON replay writes the top-level report — without either
// clobbering the other's keys.
func TestWriteJSONBothSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	seed := `{"binary":{"codec_roundtrip_ns":2156},"router":{"keep":1}}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	writeJSON(path, serve.Report{Throughput: 123456}, "binary", 64)
	writeJSON(path, serve.Report{Throughput: 654321}, "json", 1)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Binary struct {
			Codec      float64 `json:"codec_roundtrip_ns"`
			Throughput float64 `json:"replay_throughput"`
			Batch      int     `json:"replay_batch"`
		} `json:"binary"`
		Router struct {
			Keep int `json:"keep"`
		} `json:"router"`
		Report *serve.Report `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Binary.Throughput != 123456 || doc.Binary.Batch != 64 || doc.Binary.Codec != 2156 {
		t.Fatalf("binary section after update: %+v", doc.Binary)
	}
	if doc.Router.Keep != 1 {
		t.Fatal("updating the binary section clobbered the router section")
	}
	if doc.Report == nil || doc.Report.Throughput != 654321 {
		t.Fatalf("json report not written: %+v", doc.Report)
	}
}
