package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dart/internal/serve"
)

func TestParseMatrix(t *testing.T) {
	tenants, err := parseMatrix(
		"hot:workload=zipf,sessions=4,n=2000,class=dart,qps=5000,weight=3,cache=twolevel,seed=9;" +
			"cold:workload=chase,class=online,cache=default")
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("%d tenants, want 2", len(tenants))
	}
	hot := tenants[0]
	if hot.Name != "hot" || hot.Workload != "zipf" || hot.Sessions != 4 || hot.N != 2000 ||
		hot.Class != "dart" || hot.QPS != 5000 || hot.Weight != 3 || hot.Seed != 9 {
		t.Fatalf("hot parsed wrong: %+v", hot)
	}
	if hot.SimCfg == nil || hot.SimCfg.L2Blocks == 0 {
		t.Fatalf("cache=twolevel did not select an L2: %+v", hot.SimCfg)
	}
	cold := tenants[1]
	if cold.SimCfg == nil || cold.SimCfg.L2Blocks != 0 {
		t.Fatalf("cache=default is not single-level: %+v", cold.SimCfg)
	}

	// The built-in matrix must always parse.
	def, err := parseMatrix(defaultMatrix)
	if err != nil {
		t.Fatalf("default matrix does not parse: %v", err)
	}
	if len(def) != 4 {
		t.Fatalf("default matrix has %d tenants, want 4", len(def))
	}

	for _, bad := range []string{
		"",
		"justaname",
		":workload=zipf",
		"a:workload=nope",
		"a:workload=zipf,sessions=x",
		"a:workload=zipf,cache=l9",
		"a:workload=zipf,color=red",
		"a:class=stride", // workload missing
		"a:workload",     // pair without =
	} {
		if _, err := parseMatrix(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestRunMatrixEndToEnd drives the CLI matrix path against a classical-class
// matrix (no learner needed): report printed, completeness enforced, JSON
// written with per-tenant admission-capable reports.
func TestRunMatrixEndToEnd(t *testing.T) {
	e := serve.NewEngine(serve.Config{})
	out := filepath.Join(t.TempDir(), "matrix.json")
	runMatrix(e,
		"a:workload=chase,sessions=2,n=400,class=stride;"+
			"b:workload=phase,n=400,class=bo,cache=twolevel", 0, out,
		serve.MatrixOptions{Proto: "binary", Batch: 16})

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Report serve.MatrixReport `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Report.Complete || len(doc.Report.Tenants) != 2 {
		t.Fatalf("bad matrix report: %+v", doc.Report)
	}
	if doc.Report.TotalAccesses != 2*400+400 {
		t.Fatalf("report accounts %d accesses, want %d", doc.Report.TotalAccesses, 1200)
	}
}
