package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dart/internal/serve"
)

// TestRunMatrixEndToEnd drives the CLI matrix path against a classical-class
// matrix (no learner needed): report printed, completeness enforced, JSON
// written with per-tenant admission-capable reports.
func TestRunMatrixEndToEnd(t *testing.T) {
	e := serve.NewEngine(serve.Config{})
	out := filepath.Join(t.TempDir(), "matrix.json")
	runMatrix(serve.ReplaySpec{Engine: e, Proto: "binary", Batch: 16, Verify: true},
		"a:workload=chase,sessions=2,n=400,class=stride;"+
			"b:workload=phase,n=400,class=bo,cache=twolevel", 0, out)

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Report serve.MatrixReport `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Report.Complete || len(doc.Report.Tenants) != 2 {
		t.Fatalf("bad matrix report: %+v", doc.Report)
	}
	if doc.Report.TotalAccesses != 2*400+400 {
		t.Fatalf("report accounts %d accesses, want %d", doc.Report.TotalAccesses, 1200)
	}
}
