// Command dart-serve runs the online multi-session prefetch serving engine:
// a long-running daemon that multiplexes many access streams through the
// batched DART inference kernels, speaking line-delimited JSON over TCP or a
// unix socket (see internal/serve/README.md for the protocol).
//
// Serve mode:
//
//	dart-serve -listen :7381                # TCP
//	dart-serve -unix /tmp/dart.sock         # unix socket
//	dart-serve -listen :7381 -pretrain -app 462.libquantum
//
// With -pretrain the daemon first trains and tabularizes a static DART model
// on the named application's trace, then serves the "dart" prefetcher
// alongside the rule-based ones; sessions share the fixed table hierarchy
// while the admission layer coalesces their queries into batched lookups.
//
// With -online the daemon additionally runs the continual-learning loop of
// internal/online: sessions opened with prefetcher "online" are served by a
// neural model that is fine-tuned in the background from their prefetch-
// outcome feedback and hot-swapped between inference batches. -checkpoint-dir
// makes published versions durable (and recovers the newest good one on
// restart); -swap-interval sets the auto-publish cadence. The wire protocol
// gains model/swap/rollback/classes verbs (see internal/online/README.md).
//
// With -student (implies -online) the daemon also runs the distilled-student
// tier: a compact student (nn.StudentConfig of the teacher architecture) is
// continually distilled from the published teacher with the paper's KD loss
// (Eqs. 24-25) and published as the "student" model class; sessions opened
// with prefetcher "student" are served by it — lower modelled latency and
// storage — with teacher fallback, and -distill-interval sets its publish
// cadence. -ab enables shadow-compare mode: student batches are also run
// through the teacher and the per-label agreement is reported (the "ab"
// section of stats, and the replay report).
//
// With -dart (implies -student and -online) the daemon runs the full
// teach→distill→tabularize→serve pipeline live: a duty-cycled tabularizer
// periodically re-tabularizes the published student and publishes the table
// hierarchy as the versioned "dart" class — the paper's actual deployment
// artifact — which sessions opened with prefetcher "dart" are served from,
// hot-swapped between batches with student fallback until the first table
// exists. -tabularize-interval sets the re-tabularize cadence, and dart
// checkpoints ("dart-*.dart" table files) recover across restarts beside
// the model classes'. Per-session class selection is just the prefetcher
// name at open: teacher ("online"), "student", or "dart" per tenant.
//
// With -policy (or any -policy-spec) every student/dart publish is gated by
// the promotion policy engine: a candidate must sustain the configured
// agreement with its source class over a window of shadow batches before it
// is admitted, a published version whose live agreement degrades past the
// divergence threshold is auto-rolled-back, and every decision — admit,
// hold, rollback, skip, with its evidence — is kept in a bounded log served
// by the `policy` wire verb. A budgeted -policy-spec additionally drives the
// student architecture and the tabularization kernel through the
// config.Configure latency-major search instead of the fixed defaults, e.g.:
//
//	dart-serve -dart -policy-spec 'admit=0.7,window=4,diverge=0.5,windows=3,kernel=lsh,k=8,c=1'
//
// Replay mode pumps synthetic workloads through the engine at a target rate
// and reports accuracy, coverage, throughput, and request-latency
// percentiles — the continuous-load evaluation the offline cmd/dart-sim
// cannot do:
//
//	dart-serve -replay -sessions 8 -n 20000 -prefetcher stride -verify
//	dart-serve -replay -sessions 16 -qps 50000 -prefetcher dart -pretrain
//	dart-serve -replay -online -prefetcher online -soak 60s
//	dart-serve -replay -dart -prefetcher dart -soak 60s
//
// -soak repeats replay rounds until the duration elapses (fresh session ids
// per round), the nightly-CI endurance mode. With a versioned-class
// prefetcher (online, student, or dart with the dart tier on) the
// bit-identity check is replaced by a completeness check — the model changes
// under training by design, but zero accesses may be dropped or reordered.
//
// Matrix mode replays a mixed-tenant scenario matrix: each tenant names a
// workload-zoo scenario (pointer chase, graph walk, zipfian key-value,
// phase-shift adversary, or any benchmark app), a serving class, a session
// count, a QPS budget, a fair-share admission weight, and optionally its own
// cache hierarchy (cache=twolevel puts a private L2 in front of the LLC):
//
//	dart-serve -matrix -dart
//	dart-serve -matrix -dart -soak 60s -matrix-spec \
//	  'hot:workload=zipf,sessions=8,class=dart,weight=3;cold:workload=chase,class=online'
//
// Every round enforces per-tenant completeness and reports per-tenant
// metrics, latency percentiles, and fair-share admission stats (queries,
// starved batches, max wait).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/nn"
	"dart/internal/online"
	"dart/internal/serve"
	"dart/internal/tabular"
	"dart/internal/trace"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address, e.g. :7381")
	unixSock := flag.String("unix", "", "unix socket path (alternative to -listen)")
	pretrain := flag.Bool("pretrain", false, "train+tabularize a static DART model so sessions can open prefetcher \"dart\" without the versioned tier")
	app := flag.String("app", "462.libquantum", "application trace used to pretrain the DART model (suffix match)")
	trainN := flag.Int("train-n", 12000, "accesses in the DART training trace")
	queueDepth := flag.Int("queue", 64, "per-session inbox depth (backpressure bound)")
	maxBatch := flag.Int("max-batch", 64, "admission batcher coalescing cap")

	useOnline := flag.Bool("online", false, "run the continual-learning loop; sessions can open prefetcher \"online\"")
	ckptDir := flag.String("checkpoint-dir", "", "online: directory for versioned model checkpoints (recovered on restart)")
	swapInterval := flag.Duration("swap-interval", 30*time.Second, "online: auto-publish cadence (<0 disables; \"swap\" verb always works)")

	useStudent := flag.Bool("student", false, "run the distilled-student tier (implies -online); sessions can open prefetcher \"student\"")
	distillInterval := flag.Duration("distill-interval", 30*time.Second, "student: auto-publish cadence (<0 disables; \"swap\" with class \"student\" always works)")
	shadowCompare := flag.Bool("ab", false, "student: A/B shadow-compare mode — run student batches through the teacher too and report per-label agreement")

	useDart := flag.Bool("dart", false, "run the versioned tabular serving class (implies -student): re-tabularize the published student on a duty cycle and hot-swap table hierarchies; sessions can open prefetcher \"dart\"")
	tabularizeInterval := flag.Duration("tabularize-interval", 30*time.Second, "dart: auto re-tabularize cadence (<0 disables; \"swap\" with class \"dart\" always works)")

	usePolicy := flag.Bool("policy", false, "gate student/dart publishes through the promotion policy engine: candidates must sustain agreement with their source class, live divergence auto-rolls-back, every decision lands in the `policy` verb log")
	policySpec := flag.String("policy-spec", "", "promotion policy spec, key=value comma-separated (implies -policy): admit= window= diverge= windows= live= delta= log= student-latency= student-storage= dart-latency= dart-storage= kernel= k= c=")

	matrix := flag.Bool("matrix", false, "replay a mixed-tenant scenario matrix through the engine and exit")
	matrixSpec := flag.String("matrix-spec", "", "matrix: tenant spec — name:key=value,...;name:... (default: built-in 4-tenant workload-zoo matrix)")

	replay := flag.Bool("replay", false, "replay synthetic workloads through the engine and exit")
	sessions := flag.Int("sessions", 8, "replay: concurrent sessions")
	n := flag.Int("n", 20000, "replay: accesses per session")
	prefetcher := flag.String("prefetcher", "stride", "replay: prefetcher every session opens (none|bo|isb|stride|dart|online|student)")
	degree := flag.Int("degree", 4, "replay: prefetch degree")
	qps := flag.Float64("qps", 0, "replay: aggregate target accesses/sec (0 = unthrottled)")
	proto := flag.String("proto", "direct", "replay/matrix: transport — direct (in-process), json, or binary (DARTWIRE1 over loopback TCP)")
	batch := flag.Int("batch", 64, "replay/matrix: accesses per wire frame / pipelined burst (wire protocols only)")
	verify := flag.Bool("verify", true, "replay: require bit-identity with the offline simulator")
	soak := flag.Duration("soak", 0, "replay: repeat rounds until this much wall time has elapsed")
	jsonOut := flag.String("json", "", "replay: also write the report as JSON to this file")
	flag.Parse()

	cfg := serve.Config{QueueDepth: *queueDepth, MaxBatch: *maxBatch}
	var art *core.Artifacts
	// -prefetcher dart without the versioned tier falls back to the static
	// pretrained table, the pre-dart-class behaviour.
	if *pretrain || (*prefetcher == "dart" && !*useDart) {
		spec, ok := trace.AppByName(*app)
		if !ok {
			fatalf("unknown application %q", *app)
		}
		fmt.Printf("training DART on %s (%d accesses)...\n", spec.Name, *trainN)
		var err error
		kdc := kd.DefaultConfig()
		kdc.Epochs = 6
		art, err = core.BuildDART(trace.Generate(spec, *trainN), core.Options{
			Constraints:   config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20},
			TeacherEpochs: 6,
			KD:            kdc,
			FineTune:      true,
			Seed:          1,
		})
		if err != nil {
			fatalf("training failed: %v", err)
		}
		cfg.Model = art.Tables.Hierarchy
		cfg.Data = art.Opt.Data
		cfg.ModelLatency = art.Chosen.Latency
		cfg.ModelStorage = art.Chosen.StorageBytes
		fmt.Printf("model ready: F1 %.3f, latency %d cycles, storage %d B\n",
			art.F1DART, art.Chosen.Latency, art.Chosen.StorageBytes)
	}

	var learner *online.Learner
	if *useDart {
		*useStudent = true // the tabularizer re-tabularizes the student
	}
	if *useStudent || *prefetcher == "student" {
		*useOnline = true // the distiller needs the teacher loop
	}
	if *policySpec != "" {
		*usePolicy = true
	}
	if *useOnline || *prefetcher == "online" {
		var err error
		learner, err = buildLearner(art, *ckptDir, *swapInterval,
			*useStudent || *prefetcher == "student", *distillInterval,
			*useDart, *tabularizeInterval, *usePolicy, *policySpec)
		if err != nil {
			fatalf("online learner: %v", err)
		}
		for _, skip := range learner.Store().Skipped {
			fmt.Printf("checkpoint skipped: %s\n", skip)
		}
		fmt.Printf("online learner ready: serving v%d (checkpoints: %s, swap interval %v)\n",
			learner.Serving().Version, orNone(*ckptDir), *swapInterval)
		if learner.HasStudent() {
			for _, skip := range learner.StudentStore().Skipped {
				fmt.Printf("student checkpoint skipped: %s\n", skip)
			}
			fmt.Printf("student tier ready: serving student v%d (distill interval %v, A/B %v)\n",
				learner.StudentServing().Version, *distillInterval, *shadowCompare)
		}
		if learner.HasDart() {
			for _, skip := range learner.DartStore().Skipped {
				fmt.Printf("dart checkpoint skipped: %s\n", skip)
			}
			if tab := learner.DartServing(); tab != nil {
				fmt.Printf("dart tier ready: serving table v%d (tabularize interval %v)\n",
					tab.Version, *tabularizeInterval)
			} else {
				fmt.Printf("dart tier ready: student fallback until the first tabularization (interval %v)\n",
					*tabularizeInterval)
			}
		}
		if pol := learner.Policy(); pol != nil {
			pc := pol.Config()
			fmt.Printf("promotion policy on: admit >= %.2f over %d shadow batches, rollback < %.2f for %d windows of %d labels\n",
				pc.AdmitThreshold, pc.AdmitWindow, pc.DivergeThreshold, pc.DivergeWindows, pc.LiveWindow)
		}
		learner.Start()
		defer learner.Stop()
		cfg.Online = learner
		cfg.ShadowCompare = *shadowCompare
	}

	engine := serve.NewEngine(cfg)
	if *matrix {
		if *matrixSpec == "" && !*useDart {
			fatalf("matrix: the built-in matrix spans the online/student/dart serving classes; run with -dart, or pass -matrix-spec using classical classes only")
		}
		runMatrix(serve.ReplaySpec{
			Engine: engine,
			Proto:  *proto,
			Batch:  *batch,
		}, *matrixSpec, *soak, *jsonOut)
		if learner != nil {
			printLearner(learner)
		}
		return
	}
	if *replay {
		runReplay(serve.ReplaySpec{
			Engine:     engine,
			Prefetcher: *prefetcher,
			Degree:     *degree,
			QPS:        *qps,
			Verify:     *verify,
			Proto:      *proto,
			Batch:      *batch,
		}, learner, *sessions, *n, *soak, *jsonOut)
		return
	}

	var ln net.Listener
	var err error
	switch {
	case *unixSock != "":
		os.Remove(*unixSock)
		ln, err = net.Listen("unix", *unixSock)
	case *listen != "":
		ln, err = net.Listen("tcp", *listen)
	default:
		fatalf("need -listen, -unix, or -replay")
	}
	if err != nil {
		fatalf("listen: %v", err)
	}

	srv := serve.NewServer(engine)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s := <-sig
		fmt.Printf("\n%v: draining...\n", s)
		results := srv.Shutdown()
		for id, res := range results {
			fmt.Printf("  %-12s accesses %d  IPC %.3f  accuracy %.1f%%\n",
				id, res.Accesses, res.IPC, res.Accuracy()*100)
		}
		if learner != nil {
			printLearner(learner)
		}
	}()
	extras := ""
	if cfg.Model != nil || (learner != nil && learner.HasDart()) {
		extras += " dart"
	}
	if learner != nil {
		extras += " online"
		if learner.HasStudent() {
			extras += " student"
		}
	}
	fmt.Printf("dart-serve listening on %s (prefetchers: none bo isb stride%s)\n", ln.Addr(), extras)
	if err := srv.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
	// Serve returns as soon as the listener closes; the drain (and its
	// result printout) is still in flight on the signal goroutine.
	<-drained
}

// buildLearner wires the continual-learning subsystem: the architecture is
// the DART student shape, warm-started from the trained student when the
// static model was pretrained, random otherwise; a checkpoint in dir always
// wins (recovery). With student set, the distilled-student tier is enabled
// on a compact architecture — by default nn.StudentConfig's halving of the
// teacher's, but a budgeted policy spec replaces that with a config.Configure
// latency-major search under the spec's constraints — its latency and
// storage modelled with the same systolic-array complexity model; with dart
// set, the duty-cycled tabularizer additionally publishes the student's
// table hierarchy as the versioned "dart" class, on the kernel the spec (or
// the configurator's chosen candidate) selects. With gate set, the
// promotion policy engine gates every student/dart publish.
func buildLearner(art *core.Artifacts, dir string, swapInterval time.Duration, student bool, distillInterval time.Duration, dart bool, tabularizeInterval time.Duration, gate bool, specStr string) (*online.Learner, error) {
	spec, err := config.ParsePolicySpec(specStr)
	if err != nil {
		return nil, err
	}
	data := dataprep.Default()
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 32, DFF: 64, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
	var warm nn.Layer
	latency, storage := 40, 1<<16
	if art != nil {
		data = art.Opt.Data
		tcfg = nn.TransformerConfig{
			T: data.History, DIn: data.InputDim(),
			DModel: art.Chosen.Model.DA, DFF: art.Chosen.Model.DF,
			DOut: data.OutputDim(), Heads: art.Chosen.Model.H, Layers: art.Chosen.Model.L,
		}
		warm = art.Student
		latency = config.NNLatency(art.Chosen.Model)
		storage = config.NNStorageBits(art.Chosen.Model, 32) / 8
	}
	cfg := online.Config{
		Data: data,
		New: func() nn.Layer {
			return nn.NewTransformerPredictor(tcfg, rand.New(rand.NewSource(7)))
		},
		Init:         warm,
		Dir:          dir,
		SwapInterval: swapInterval,
		Latency:      latency,
		StorageBytes: storage,
		Seed:         7,
	}
	// A budgeted spec replaces the fixed nn.StudentConfig halving: the
	// configurator searches the default design space under the budget and
	// its chosen candidate pins both the student architecture and (unless
	// the spec overrides it) the tabularization table shape.
	var chosen *config.Candidate
	if spec.HasStudentBudget() || spec.HasDartBudget() {
		cand, err := spec.ConfigureStudent(data.History, data.InputDim(), data.OutputDim())
		if err != nil {
			return nil, err
		}
		chosen = &cand
	}
	if student {
		scfg := nn.StudentConfig(tcfg)
		smodel := config.ModelConfig{
			T: scfg.T, DI: scfg.DIn, DA: scfg.DModel, DF: scfg.DFF,
			DO: scfg.DOut, H: scfg.Heads, L: scfg.Layers,
		}
		if chosen != nil {
			smodel = chosen.Model
			scfg = nn.TransformerConfig{
				T: smodel.T, DIn: smodel.DI, DModel: smodel.DA, DFF: smodel.DF,
				DOut: smodel.DO, Heads: smodel.H, Layers: smodel.L,
			}
		}
		cfg.Student = func() nn.Layer {
			return nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(13)))
		}
		cfg.DistillInterval = distillInterval
		cfg.StudentLatency = config.NNLatency(smodel)
		cfg.StudentStorageBytes = config.NNStorageBits(smodel, 32) / 8
	}
	if dart {
		// Config.Tabular stays zero on the default path: the learner fills
		// in the shared serving default (online.DefaultTabularConfig — LSH,
		// small tables, the configuration the CI bench gate measures). A
		// spec-driven kernel (or a configured candidate) overrides it.
		cfg.Dart = true
		cfg.TabularizeInterval = tabularizeInterval
		if chosen != nil || spec.Kernel != "" || spec.K > 0 || spec.C > 0 || spec.Bits > 0 {
			tab := online.DefaultTabularConfig()
			if chosen != nil {
				tab.Kernel.K, tab.Kernel.C = chosen.Table.K, chosen.Table.C
				tab.Kernel.DataBits = chosen.Table.DataBits
			}
			if spec.Kernel != "" {
				kind, err := tabular.ParseEncoderKind(spec.Kernel)
				if err != nil {
					return nil, err
				}
				tab.Kernel.Kind = kind
			}
			if spec.K > 0 {
				tab.Kernel.K = spec.K
			}
			if spec.C > 0 {
				tab.Kernel.C = spec.C
			}
			if spec.Bits > 0 {
				tab.Kernel.DataBits = spec.Bits
			}
			cfg.Tabular = tab
		}
	}
	if gate {
		pc := online.PolicyConfig{
			AdmitThreshold:   spec.AdmitThreshold,
			AdmitWindow:      spec.AdmitWindow,
			DivergeThreshold: spec.DivergeThreshold,
			DivergeWindows:   spec.DivergeWindows,
			LiveWindow:       spec.LiveWindow,
			MinSourceDelta:   spec.MinSourceDelta,
			LogCap:           spec.LogCap,
		}
		if spec.HasStudentBudget() || spec.HasDartBudget() {
			pc.Budgets = map[string]online.Budget{}
			if spec.HasStudentBudget() {
				pc.Budgets[online.StudentClass] = online.Budget{
					LatencyCycles: spec.StudentLatency, StorageBytes: spec.StudentStorage,
				}
			}
			if spec.HasDartBudget() {
				pc.Budgets[online.DartClass] = online.Budget{
					LatencyCycles: spec.DartLatency, StorageBytes: spec.DartStorage,
				}
			}
		}
		cfg.Policy = &pc
	}
	return online.NewLearner(cfg)
}

// runReplay generates one synthetic trace per session (cycling through the
// benchmark apps with distinct seeds), replays them concurrently, and prints
// the report. With soak > 0 it repeats rounds (fresh session ids) until the
// deadline passes. Every round is checked for completeness: the engine must
// account for exactly the submitted accesses, dropped-free, whatever the
// prefetcher — the online model changes under training, but delivery must
// not.
func runReplay(spec serve.ReplaySpec, learner *online.Learner, sessions, n int, soak time.Duration, jsonOut string) {
	versioned := spec.Prefetcher == "online" || spec.Prefetcher == "student" ||
		(spec.Prefetcher == "dart" && learner != nil && learner.HasDart())
	if versioned && spec.Verify {
		fmt.Println("verify: versioned classes hot-swap under training; checking completeness instead of bit-identity")
		spec.Verify = false
	}
	apps := trace.Apps()
	deadline := time.Now().Add(soak)
	var rep serve.Report
	for round := 0; ; round++ {
		traces := make(map[string][]trace.Record, sessions)
		for i := 0; i < sessions; i++ {
			spec := apps[i%len(apps)]
			spec.Seed += int64(1000*(i/len(apps)+1) + 101*round)
			id := fmt.Sprintf("core%02d-%s", i, spec.Name)
			if soak > 0 {
				id = fmt.Sprintf("r%03d-%s", round, id)
			}
			traces[id] = trace.Generate(spec, n)
		}
		var err error
		rep, err = serve.Replay(spec, traces)
		if err != nil {
			fatalf("replay: %v", err)
		}
		if rep.Merged.Accesses != sessions*n {
			fatalf("COMPLETENESS FAILED: engine accounted %d accesses, submitted %d",
				rep.Merged.Accesses, sessions*n)
		}
		fmt.Print(rep)
		if spec.Verify {
			if !rep.Verified {
				fatalf("VERIFY FAILED: served results are not bit-identical to the offline simulator")
			}
			fmt.Println("verify: all sessions bit-identical to offline sim")
		} else {
			fmt.Printf("completeness: %d sessions, %d/%d accesses delivered in order\n",
				len(rep.Sessions), rep.Merged.Accesses, sessions*n)
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
	if learner != nil {
		printLearner(learner)
	}
	if jsonOut != "" {
		writeJSON(jsonOut, rep, spec.Proto, spec.Batch)
	}
}

// printLearner dumps the online learner's state for log scraping.
func printLearner(l *online.Learner) {
	st := l.Stats()
	fmt.Printf("online: v%d (%d published)  ingested %d (%.0f/s, %d dropped)  useful %d late %d\n",
		st.Version, st.Published, st.Ingested, st.PerSec, st.Dropped, st.Useful, st.Late)
	fmt.Printf("online: examples %d  trained %d (%d steps)  loss %.4f (trend %+.4f)\n",
		st.Examples, st.Trained, st.Steps, st.Loss, st.LossTrend)
	if l.HasStudent() {
		fmt.Printf("student: v%d (%d published)  distilled %d (%d steps)  kd-loss %.4f (trend %+.4f)\n",
			st.StudentVersion, st.StudentPublished, st.Distilled, st.DistillSteps,
			st.DistillLoss, st.DistillTrend)
	}
	if l.HasDart() {
		fmt.Printf("dart: v%d (%d published)  tabularized %d (%.0f ms total)  attempts %d skips %d  latency %d cycles  storage %d B\n",
			st.DartVersion, st.DartPublished, st.Tabularized, st.TabularizeMs,
			st.DartAttempts, st.DartSkips, l.DartLatency(), l.DartStorageBytes())
	}
	if pol := l.Policy(); pol != nil {
		ps := pol.Stats()
		fmt.Printf("policy: admitted %d  held %d  rolled-back %d  skipped %d  (%d decisions)\n",
			ps.Admitted, ps.Held, ps.RolledBack, ps.Skipped, ps.Decisions)
		ds := pol.Decisions()
		if len(ds) > 5 {
			ds = ds[len(ds)-5:]
		}
		for _, d := range ds {
			fmt.Printf("policy: #%d %s %s v%d: %s\n", d.Seq, d.Class, d.Action, d.Version, d.Reason)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "disabled"
	}
	return s
}

// writeJSON dumps the replay report with enough host context to act as a
// serving-throughput baseline (BENCH_serve.json). The file holds several
// independently-maintained sections, and a refresh of one must never drop
// the others: the "online" section (bench-gate baselines from `make
// bench-update`), the "binary" section (DARTWIRE1 replay + codec baselines),
// and the "report" section (the JSON-wire replay baseline the binary
// speedup gate divides against). A -proto binary run updates only the
// replay fields of the "binary" section (dart-benchcheck -write-binary owns
// the codec fields); any other run rewrites the report/host fields.
func writeJSON(path string, rep serve.Report, proto string, batch int) {
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			fatalf("%s: %v", path, err)
		}
	}
	mustRaw := func(v any) json.RawMessage {
		b, err := json.Marshal(v)
		if err != nil {
			fatalf("%v", err)
		}
		return b
	}
	if proto == "binary" {
		bin := map[string]json.RawMessage{}
		if sec, ok := doc["binary"]; ok {
			if err := json.Unmarshal(sec, &bin); err != nil {
				fatalf("%s: binary section: %v", path, err)
			}
		}
		bin["replay_throughput"] = mustRaw(rep.Throughput)
		bin["replay_batch"] = mustRaw(batch)
		bin["replay_command"] = mustRaw(strings.Join(os.Args, " "))
		bin["replay_generated"] = mustRaw(time.Now().Format("2006-01-02"))
		doc["binary"] = mustRaw(bin)
	} else {
		doc["generated"] = mustRaw(time.Now().Format("2006-01-02"))
		doc["command"] = mustRaw(strings.Join(os.Args, " "))
		doc["host"] = mustRaw(hostInfo{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		})
		doc["report"] = mustRaw(rep)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("report written to %s\n", path)
}

type hostInfo struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
