// Command dart-serve runs the online multi-session prefetch serving engine:
// a long-running daemon that multiplexes many access streams through the
// batched DART inference kernels, speaking line-delimited JSON over TCP or a
// unix socket (see internal/serve/README.md for the protocol).
//
// Serve mode:
//
//	dart-serve -listen :7381                # TCP
//	dart-serve -unix /tmp/dart.sock         # unix socket
//	dart-serve -listen :7381 -dart -app 462.libquantum
//
// With -dart the daemon first trains and tabularizes a DART model on the
// named application's trace, then serves the "dart" prefetcher alongside the
// rule-based ones; sessions share the table hierarchy while the admission
// layer coalesces their queries into batched lookups.
//
// Replay mode pumps synthetic workloads through the engine at a target rate
// and reports accuracy, coverage, throughput, and request-latency
// percentiles — the continuous-load evaluation the offline cmd/dart-sim
// cannot do:
//
//	dart-serve -replay -sessions 8 -n 20000 -prefetcher stride -verify
//	dart-serve -replay -sessions 16 -qps 50000 -prefetcher dart -dart
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/kd"
	"dart/internal/serve"
	"dart/internal/trace"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address, e.g. :7381")
	unixSock := flag.String("unix", "", "unix socket path (alternative to -listen)")
	useDart := flag.Bool("dart", false, "train+tabularize a DART model so sessions can open prefetcher \"dart\"")
	app := flag.String("app", "462.libquantum", "application trace used to train the DART model (suffix match)")
	trainN := flag.Int("train-n", 12000, "accesses in the DART training trace")
	queueDepth := flag.Int("queue", 64, "per-session inbox depth (backpressure bound)")
	maxBatch := flag.Int("max-batch", 64, "admission batcher coalescing cap")

	replay := flag.Bool("replay", false, "replay synthetic workloads through the engine and exit")
	sessions := flag.Int("sessions", 8, "replay: concurrent sessions")
	n := flag.Int("n", 20000, "replay: accesses per session")
	prefetcher := flag.String("prefetcher", "stride", "replay: prefetcher every session opens (none|bo|isb|stride|dart)")
	degree := flag.Int("degree", 4, "replay: prefetch degree")
	qps := flag.Float64("qps", 0, "replay: aggregate target accesses/sec (0 = unthrottled)")
	verify := flag.Bool("verify", true, "replay: require bit-identity with the offline simulator")
	jsonOut := flag.String("json", "", "replay: also write the report as JSON to this file")
	flag.Parse()

	cfg := serve.Config{QueueDepth: *queueDepth, MaxBatch: *maxBatch}
	if *useDart || *prefetcher == "dart" {
		spec, ok := trace.AppByName(*app)
		if !ok {
			fatalf("unknown application %q", *app)
		}
		fmt.Printf("training DART on %s (%d accesses)...\n", spec.Name, *trainN)
		art, err := core.BuildDART(trace.Generate(spec, *trainN), core.Options{
			Constraints:   config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20},
			TeacherEpochs: 6,
			KD:            kd.Config{Epochs: 6},
			FineTune:      true,
			Seed:          1,
		})
		if err != nil {
			fatalf("training failed: %v", err)
		}
		cfg.Model = art.Tables.Hierarchy
		cfg.Data = art.Opt.Data
		cfg.ModelLatency = art.Chosen.Latency
		cfg.ModelStorage = art.Chosen.StorageBytes
		fmt.Printf("model ready: F1 %.3f, latency %d cycles, storage %d B\n",
			art.F1DART, art.Chosen.Latency, art.Chosen.StorageBytes)
	}

	engine := serve.NewEngine(cfg)
	if *replay {
		runReplay(engine, *sessions, *n, serve.ReplayOptions{
			Prefetcher: *prefetcher,
			Degree:     *degree,
			QPS:        *qps,
			Verify:     *verify,
		}, *jsonOut)
		return
	}

	var ln net.Listener
	var err error
	switch {
	case *unixSock != "":
		os.Remove(*unixSock)
		ln, err = net.Listen("unix", *unixSock)
	case *listen != "":
		ln, err = net.Listen("tcp", *listen)
	default:
		fatalf("need -listen, -unix, or -replay")
	}
	if err != nil {
		fatalf("listen: %v", err)
	}

	srv := serve.NewServer(engine)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s := <-sig
		fmt.Printf("\n%v: draining...\n", s)
		results := srv.Shutdown()
		for id, res := range results {
			fmt.Printf("  %-12s accesses %d  IPC %.3f  accuracy %.1f%%\n",
				id, res.Accesses, res.IPC, res.Accuracy()*100)
		}
	}()
	fmt.Printf("dart-serve listening on %s (prefetchers: none bo isb stride%s)\n",
		ln.Addr(), map[bool]string{true: " dart", false: ""}[cfg.Model != nil])
	if err := srv.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
	// Serve returns as soon as the listener closes; the drain (and its
	// result printout) is still in flight on the signal goroutine.
	<-drained
}

// runReplay generates one synthetic trace per session (cycling through the
// benchmark apps with distinct seeds), replays them concurrently, and prints
// the report.
func runReplay(e *serve.Engine, sessions, n int, opt serve.ReplayOptions, jsonOut string) {
	apps := trace.Apps()
	traces := make(map[string][]trace.Record, sessions)
	for i := 0; i < sessions; i++ {
		spec := apps[i%len(apps)]
		spec.Seed += int64(1000 * (i/len(apps) + 1))
		traces[fmt.Sprintf("core%02d-%s", i, spec.Name)] = trace.Generate(spec, n)
	}
	rep, err := serve.Replay(e, traces, opt)
	if err != nil {
		fatalf("replay: %v", err)
	}
	fmt.Print(rep)
	if opt.Verify {
		if !rep.Verified {
			fatalf("VERIFY FAILED: served results are not bit-identical to the offline simulator")
		}
		fmt.Println("verify: all sessions bit-identical to offline sim")
	}
	if jsonOut != "" {
		writeJSON(jsonOut, rep)
	}
}

// writeJSON dumps the replay report with enough host context to act as a
// serving-throughput baseline (BENCH_serve.json).
func writeJSON(path string, rep serve.Report) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	doc := struct {
		Generated string       `json:"generated"`
		Command   string       `json:"command"`
		Host      hostInfo     `json:"host"`
		Report    serve.Report `json:"report"`
	}{
		Generated: time.Now().Format("2006-01-02"),
		Command:   strings.Join(os.Args, " "),
		Host: hostInfo{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Report: rep,
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("report written to %s\n", path)
}

type hostInfo struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
