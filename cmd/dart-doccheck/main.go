// Command dart-doccheck is the CI documentation gate: it verifies that the
// repo's markdown stays consistent with itself and with the wire protocol.
//
//	dart-doccheck -root .
//
// Two kinds of checks run:
//
//   - Links: every relative markdown link in docs/*.md and in every
//     README.md must resolve to a file or directory in the repo. External
//     links (http, https, mailto) and in-page anchors are skipped; a
//     "path#anchor" link is checked for the path part only.
//   - Protocol coverage: every wire verb in serve.Verbs must appear
//     backticked in docs/PROTOCOL.md. Adding a verb to the protocol without
//     documenting it fails CI; so does renaming one in the docs only.
//
// Exit status 0 when every check passes, 1 on broken links or undocumented
// verbs, 2 on usage or missing-data errors (e.g. docs/PROTOCOL.md absent —
// the gate fails closed rather than passing with nothing to check).
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"dart/internal/serve"
)

// mdLink matches [text](target) and [text](target "title"). Images
// (![alt](target)) match too via the optional leading bang.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// docFiles collects the markdown files the gate covers: everything under
// docs/ plus every README.md in the tree (skipping .git).
func docFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		inDocs := strings.HasPrefix(rel, "docs"+string(filepath.Separator))
		if (inDocs && strings.HasSuffix(rel, ".md")) || d.Name() == "README.md" {
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	return files, err
}

// checkLinks returns one message per broken relative link in the file.
func checkLinks(root, path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), target)
		if strings.HasPrefix(target, "/") {
			// Repo-root-relative, the GitHub rendering convention.
			resolved = filepath.Join(root, target)
		}
		if _, err := os.Stat(resolved); err != nil {
			rel, _ := filepath.Rel(root, path)
			broken = append(broken, fmt.Sprintf("%s: link %q does not resolve", rel, m[1]))
		}
	}
	return broken, nil
}

// checkVerbs verifies every serve.Verbs entry appears backticked in the
// protocol spec.
func checkVerbs(spec string) []string {
	var missing []string
	for _, verb := range serve.Verbs {
		if !strings.Contains(spec, "`"+verb+"`") {
			missing = append(missing, fmt.Sprintf("docs/PROTOCOL.md: wire verb `%s` is undocumented", verb))
		}
	}
	return missing
}

// run executes the gate and returns the process exit code.
func run(root string, out io.Writer) int {
	files, err := docFiles(root)
	if err != nil {
		fmt.Fprintf(out, "doccheck: %v\n", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintf(out, "doccheck: no markdown files under %s\n", root)
		return 2
	}
	var problems []string
	links := 0
	for _, f := range files {
		broken, err := checkLinks(root, f)
		if err != nil {
			fmt.Fprintf(out, "doccheck: %v\n", err)
			return 2
		}
		raw, _ := os.ReadFile(f)
		links += len(mdLink.FindAllString(string(raw), -1))
		problems = append(problems, broken...)
	}
	spec, err := os.ReadFile(filepath.Join(root, "docs", "PROTOCOL.md"))
	if err != nil {
		// Fail closed: the verb-coverage check existing is the point.
		fmt.Fprintf(out, "doccheck: %v (the protocol spec is required)\n", err)
		return 2
	}
	problems = append(problems, checkVerbs(string(spec))...)
	for _, p := range problems {
		fmt.Fprintf(out, "FAIL %s\n", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(out, "doccheck: %d problem(s)\n", len(problems))
		return 1
	}
	fmt.Fprintf(out, "doccheck: %d files, %d links, %d wire verbs ok\n", len(files), links, len(serve.Verbs))
	return 0
}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	os.Exit(run(*root, os.Stdout))
}
