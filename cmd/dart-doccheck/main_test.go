package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dart/internal/serve"
)

// writeTree lays out a minimal repo: docs/ with a complete PROTOCOL.md,
// a nested README, and a target file for links to hit.
func writeTree(t *testing.T, protocol string) string {
	t.Helper()
	root := t.TempDir()
	spec := protocol
	if spec == "" {
		var b strings.Builder
		b.WriteString("# Protocol\n\n")
		for _, v := range serve.Verbs {
			b.WriteString("- `" + v + "`\n")
		}
		spec = b.String()
	}
	files := []struct{ dir, name, content string }{
		{"docs", "PROTOCOL.md", spec + "\nSee [arch](ARCHITECTURE.md) and [serve](../internal/serve/README.md).\n"},
		{"docs", "ARCHITECTURE.md", "# Arch\n[spec](PROTOCOL.md) [ext](https://example.com) [anchor](#top)\n"},
		{"internal/serve", "README.md", "# serve\n[up](/docs/PROTOCOL.md)\n"},
	}
	for _, f := range files {
		if err := os.MkdirAll(filepath.Join(root, f.dir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, f.dir, f.name), []byte(f.content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestDocCheckPasses(t *testing.T) {
	var out strings.Builder
	if code := run(writeTree(t, ""), &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDocCheckFailsOnBrokenLink(t *testing.T) {
	root := writeTree(t, "")
	readme := filepath.Join(root, "internal/serve/README.md")
	if err := os.WriteFile(readme, []byte("[gone](../nope/MISSING.md)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run(root, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING.md") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDocCheckFailsOnUndocumentedVerb(t *testing.T) {
	// A spec documenting every verb except the last one.
	var b strings.Builder
	for _, v := range serve.Verbs[:len(serve.Verbs)-1] {
		b.WriteString("`" + v + "` ")
	}
	var out strings.Builder
	if code := run(writeTree(t, b.String()), &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	last := serve.Verbs[len(serve.Verbs)-1]
	if !strings.Contains(out.String(), "`"+last+"`") {
		t.Fatalf("missing verb %q not reported:\n%s", last, out.String())
	}
}

func TestDocCheckFailsClosedWithoutSpec(t *testing.T) {
	root := writeTree(t, "")
	if err := os.Remove(filepath.Join(root, "docs/PROTOCOL.md")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run(root, &out); code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
}

func TestDocCheckSkipsExternalAndAnchorLinks(t *testing.T) {
	// ARCHITECTURE.md in the fixture carries https and #anchor links; a pass
	// proves they are skipped rather than resolved as paths.
	var out strings.Builder
	if code := run(writeTree(t, ""), &out); code != 0 {
		t.Fatalf("external/anchor links not skipped:\n%s", out.String())
	}
}

// TestRealRepoDocs runs the gate against the actual repository so `go test`
// catches doc rot even where CI's docs-lint step is not wired up.
func TestRealRepoDocs(t *testing.T) {
	var out strings.Builder
	if code := run("../..", &out); code != 0 {
		t.Fatalf("repo docs failed the gate:\n%s", out.String())
	}
}
