// Command dart-sim reproduces the prefetching evaluation of Figs. 12-14:
// for each benchmark it trains DART, then simulates the trace under every
// prefetcher (none, BO, ISB, DART, the NN student as a TransFetch-class
// prefetcher, and its zero-latency ideal variant) and prints prefetch
// accuracy, coverage, and IPC improvement.
//
// Usage:
//
//	dart-sim [-app mcf | -workload zipf | -all] [-n accesses] [-degree d]
//
// -workload accepts any workload-zoo scenario (chase, graph, zipf, phase, or
// a benchmark app name) and runs the same train-then-evaluate pipeline on its
// trace — the offline view of the adversarial generators.
package main

import (
	"flag"
	"fmt"
	"os"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/kd"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

func main() {
	app := flag.String("app", "462.libquantum", "application (suffix match)")
	workload := flag.String("workload", "", "workload-zoo scenario (chase|graph|zipf|phase or an app name); overrides -app")
	all := flag.Bool("all", false, "run every benchmark application")
	n := flag.Int("n", 12000, "trace accesses")
	degree := flag.Int("degree", 4, "prefetch degree")
	seed := flag.Int64("seed", 0, "workload seed perturbation")
	flag.Parse()

	type job struct {
		name string
		recs []trace.Record
	}
	var jobs []job
	switch {
	case *all:
		for _, spec := range trace.Apps() {
			jobs = append(jobs, job{spec.Name, trace.Generate(spec, *n)})
		}
	case *workload != "":
		w, ok := trace.WorkloadByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(1)
		}
		jobs = append(jobs, job{w.Name, w.Generate(*seed, *n)})
	default:
		spec, ok := trace.AppByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q\n", *app)
			os.Exit(1)
		}
		spec.Seed += *seed
		jobs = append(jobs, job{spec.Name, trace.Generate(spec, *n)})
	}

	fmt.Printf("%-16s %-14s %9s %9s %9s %9s\n",
		"Application", "Prefetcher", "Acc", "Cov", "IPCimp", "Lat(cyc)")
	for _, j := range jobs {
		runApp(j.name, j.recs, *degree)
	}
}

func runApp(name string, recs []trace.Record, degree int) {
	kdc := kd.DefaultConfig()
	kdc.Epochs = 6
	art, err := core.BuildDART(recs, core.Options{
		Constraints:   config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20},
		TeacherEpochs: 6,
		KD:            kdc,
		FineTune:      true,
		Seed:          1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return
	}
	cfg := sim.DefaultConfig()
	base := sim.Run(recs, sim.NoPrefetcher{}, cfg)
	pfs := []sim.Prefetcher{
		prefetch.NewBestOffset(degree),
		prefetch.NewISB(degree),
		art.Prefetcher("DART", degree),
		art.StudentPrefetcher("TransFetch", degree, false),
		art.StudentPrefetcher("TransFetch-I", degree, true),
	}
	for _, pf := range pfs {
		res := sim.Run(recs, pf, cfg)
		fmt.Printf("%-16s %-14s %8.1f%% %8.1f%% %8.1f%% %9d\n",
			name, pf.Name(),
			res.Accuracy()*100, sim.Coverage(base, res)*100,
			sim.IPCImprovement(base, res)*100, pf.Latency())
	}
}
