package main

import (
	"testing"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/online"
	"dart/internal/trace"
)

// TestKDEpochs covers the tiny config override.
func TestKDEpochs(t *testing.T) {
	c := kdEpochs(3)
	if c.Epochs != 3 {
		t.Fatalf("kdEpochs(3).Epochs = %d", c.Epochs)
	}
	want := kd.DefaultConfig()
	want.Epochs = 3
	if c != want {
		t.Fatalf("kdEpochs changed more than the epoch count: %+v", c)
	}
}

// testArtifacts builds one miniature pipeline (tiny teacher, one epoch) shared
// across the distillServeStudent tests; building DART is the expensive part.
var sharedArt *core.Artifacts

func testArtifacts(t *testing.T) *core.Artifacts {
	t.Helper()
	if sharedArt != nil {
		return sharedArt
	}
	recs := trace.Generate(trace.AppSpec{
		Name: "unit", Pages: 300, Streams: 4,
		Strides: []int64{1, 2}, Seed: 9,
	}, 2200)
	art, err := core.BuildDART(recs, core.Options{
		Data:          dataprep.Config{History: 6, SegmentBits: 6, Segments: 6, LookForward: 8, DeltaRange: 16},
		Constraints:   config.Constraints{LatencyCycles: 80, StorageBytes: 512 << 10},
		TeacherDModel: 16, TeacherDFF: 32, TeacherHeads: 2, TeacherLayers: 1,
		TeacherEpochs: 1,
		FitSamples:    64,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedArt = art
	return art
}

// TestDistillServeStudentPublishes runs the offline distill→publish bridge
// with a spec-driven kernel and proves the checkpoint directory restores: the
// dart table recovers at v1 with Source pinned to the student version it was
// tabularized from — the invariant dart-serve's startup skip-rebuild relies
// on.
func TestDistillServeStudentPublishes(t *testing.T) {
	art := testArtifacts(t)
	out := t.TempDir()
	spec, err := config.ParsePolicySpec("kernel=linear,k=8,c=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := distillServeStudent(art, 1, out, spec); err != nil {
		t.Fatal(err)
	}
	dStore, err := online.NewTableStore(out, online.DartClass)
	if err != nil {
		t.Fatal(err)
	}
	tab := dStore.Load()
	if tab == nil {
		t.Fatal("published dart table did not recover")
	}
	if tab.Version != 1 || tab.Meta.Source != 1 {
		t.Fatalf("recovered table v%d source v%d, want v1 from student v1",
			tab.Version, tab.Meta.Source)
	}
}

// TestDistillServeStudentSpecErrors: a bad spec fails before any distillation
// work starts.
func TestDistillServeStudentSpecErrors(t *testing.T) {
	art := testArtifacts(t)
	infeasible, err := config.ParsePolicySpec("dart-latency=1,dart-storage=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := distillServeStudent(art, 1, "", infeasible); err == nil {
		t.Fatal("infeasible budget did not error")
	}
	// ParsePolicySpec rejects unknown kernels up front; the in-function check
	// guards programmatic callers building a PolicySpec directly.
	if err := distillServeStudent(art, 1, "", config.PolicySpec{Kernel: "quantum"}); err == nil {
		t.Fatal("unknown kernel did not error")
	}
}
