// Command dart-train runs the full DART pipeline (Fig. 2) on one synthetic
// benchmark: teacher training, table configuration, knowledge distillation,
// and layer-wise tabularization with fine-tuning. It prints the per-stage
// F1-scores (the per-app columns of Tables VI and VII).
//
// Usage:
//
//	dart-train [-app mcf] [-n accesses] [-epochs N] [-tau cycles] [-storage bytes]
package main

import (
	"flag"
	"fmt"
	"os"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/kd"
	"dart/internal/trace"
)

func main() {
	app := flag.String("app", "462.libquantum", "application (suffix match)")
	n := flag.Int("n", 20000, "trace accesses")
	epochs := flag.Int("epochs", 8, "teacher training epochs")
	tau := flag.Int("tau", 100, "latency constraint τ in cycles")
	storage := flag.Int("storage", 1<<20, "storage constraint s in bytes")
	fineTune := flag.Bool("finetune", true, "enable layer fine-tuning")
	traceFile := flag.String("trace", "", "load a CSV LLC trace instead of generating one")
	flag.Parse()

	var recs []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Loaded %d LLC accesses from %s\n", len(recs), *traceFile)
	} else {
		spec, ok := trace.AppByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q\n", *app)
			os.Exit(1)
		}
		fmt.Printf("Generating %d LLC accesses for %s...\n", *n, spec.Name)
		recs = trace.Generate(spec, *n)
	}

	art, err := core.BuildDART(recs, core.Options{
		Constraints:      config.Constraints{LatencyCycles: *tau, StorageBytes: *storage},
		TeacherEpochs:    *epochs,
		KD:               kd.Config{Epochs: *epochs},
		FineTune:         *fineTune,
		TrainStudentNoKD: true,
		Seed:             1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	m, t := art.Chosen.Model, art.Chosen.Table
	fmt.Printf("\nConfigured student (L, D, H, K, C) = (%d, %d, %d, %d, %d)\n",
		m.L, m.DA, m.H, t.K, t.C)
	fmt.Printf("Predictor latency %d cycles, storage %.1f KB, %d ops\n",
		art.Chosen.Latency, float64(art.Chosen.StorageBytes)/1024, art.Chosen.Ops)
	fmt.Printf("\n%-22s %8s\n", "Model", "F1")
	fmt.Printf("%-22s %8.3f\n", "Teacher", art.F1Teacher)
	fmt.Printf("%-22s %8.3f\n", "Student w/o KD", art.F1StudentNoKD)
	fmt.Printf("%-22s %8.3f\n", "Student (KD)", art.F1Student)
	fmt.Printf("%-22s %8.3f\n", "DART (tables)", art.F1DART)
}
