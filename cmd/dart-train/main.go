// Command dart-train runs the full DART pipeline (Fig. 2) on one synthetic
// benchmark: teacher training, table configuration, knowledge distillation,
// and layer-wise tabularization with fine-tuning. It prints the per-stage
// F1-scores (the per-app columns of Tables VI and VII).
//
// Usage:
//
//	dart-train [-app mcf] [-n accesses] [-epochs N] [-tau cycles] [-storage bytes]
//
// With -distill the pipeline additionally distills the serving tier's
// compact student (nn.StudentConfig of the configured architecture) from the
// trained teacher, reporting its F1 next to the pipeline stages; -out
// publishes both model classes — the configured network as the online
// teacher and the compact one as the "student" class — into a versioned
// checkpoint directory that `dart-serve -dart -online -student
// -checkpoint-dir DIR` recovers on startup, bridging offline distillation
// into the serving tier. (Without -dart the daemon's default architecture
// differs and the recovery scan will skip the mismatched files.)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/kd"
	"dart/internal/nn"
	"dart/internal/online"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// kdEpochs is kd.DefaultConfig with the epoch count overridden.
func kdEpochs(n int) kd.Config {
	c := kd.DefaultConfig()
	c.Epochs = n
	return c
}

func main() {
	app := flag.String("app", "462.libquantum", "application (suffix match)")
	n := flag.Int("n", 20000, "trace accesses")
	epochs := flag.Int("epochs", 8, "teacher training epochs")
	tau := flag.Int("tau", 100, "latency constraint τ in cycles")
	storage := flag.Int("storage", 1<<20, "storage constraint s in bytes")
	fineTune := flag.Bool("finetune", true, "enable layer fine-tuning")
	traceFile := flag.String("trace", "", "load a CSV LLC trace instead of generating one")
	distill := flag.Bool("distill", false, "also distill the serving tier's compact student from the teacher")
	out := flag.String("out", "", "distill: publish teacher+student model classes as versioned checkpoints into this directory")
	policySpec := flag.String("policy-spec", "", "distill: policy spec driving the serve student architecture and tabularization kernel (same syntax as dart-serve); must match the daemon's so checkpoints restore")
	flag.Parse()

	var recs []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Loaded %d LLC accesses from %s\n", len(recs), *traceFile)
	} else {
		spec, ok := trace.AppByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q\n", *app)
			os.Exit(1)
		}
		fmt.Printf("Generating %d LLC accesses for %s...\n", *n, spec.Name)
		recs = trace.Generate(spec, *n)
	}

	art, err := core.BuildDART(recs, core.Options{
		Constraints:      config.Constraints{LatencyCycles: *tau, StorageBytes: *storage},
		TeacherEpochs:    *epochs,
		KD:               kdEpochs(*epochs),
		FineTune:         *fineTune,
		TrainStudentNoKD: true,
		Seed:             1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	m, t := art.Chosen.Model, art.Chosen.Table
	fmt.Printf("\nConfigured student (L, D, H, K, C) = (%d, %d, %d, %d, %d)\n",
		m.L, m.DA, m.H, t.K, t.C)
	fmt.Printf("Predictor latency %d cycles, storage %.1f KB, %d ops\n",
		art.Chosen.Latency, float64(art.Chosen.StorageBytes)/1024, art.Chosen.Ops)
	fmt.Printf("\n%-22s %8s\n", "Model", "F1")
	fmt.Printf("%-22s %8.3f\n", "Teacher", art.F1Teacher)
	fmt.Printf("%-22s %8.3f\n", "Student w/o KD", art.F1StudentNoKD)
	fmt.Printf("%-22s %8.3f\n", "Student (KD)", art.F1Student)
	fmt.Printf("%-22s %8.3f\n", "DART (tables)", art.F1DART)

	if *distill {
		spec, err := config.ParsePolicySpec(*policySpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := distillServeStudent(art, *epochs, *out, spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// distillServeStudent reuses the pipeline's teacher and data split to distill
// the serving tier's compact student, and optionally publishes both model
// classes into a dart-serve checkpoint directory. A budgeted policy spec
// replaces the fixed nn.StudentConfig halving with the configurator's chosen
// architecture — the same derivation dart-serve applies, so published
// checkpoints restore into the daemon's identically-shaped network.
func distillServeStudent(art *core.Artifacts, epochs int, out string, spec config.PolicySpec) error {
	data := art.Opt.Data
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: art.Chosen.Model.DA, DFF: art.Chosen.Model.DF,
		DOut: data.OutputDim(), Heads: art.Chosen.Model.H, Layers: art.Chosen.Model.L,
	}
	scfg := nn.StudentConfig(tcfg)
	smodel := config.ModelConfig{
		T: scfg.T, DI: scfg.DIn, DA: scfg.DModel, DF: scfg.DFF,
		DO: scfg.DOut, H: scfg.Heads, L: scfg.Layers,
	}
	tabCfg := online.DefaultTabularConfig()
	if spec.HasStudentBudget() || spec.HasDartBudget() {
		cand, err := spec.ConfigureStudent(data.History, data.InputDim(), data.OutputDim())
		if err != nil {
			return err
		}
		smodel = cand.Model
		scfg = nn.TransformerConfig{
			T: smodel.T, DIn: smodel.DI, DModel: smodel.DA, DFF: smodel.DF,
			DOut: smodel.DO, Heads: smodel.H, Layers: smodel.L,
		}
		tabCfg.Kernel.K, tabCfg.Kernel.C = cand.Table.K, cand.Table.C
		tabCfg.Kernel.DataBits = cand.Table.DataBits
	}
	if spec.Kernel != "" {
		kind, err := tabular.ParseEncoderKind(spec.Kernel)
		if err != nil {
			return err
		}
		tabCfg.Kernel.Kind = kind
	}
	if spec.K > 0 {
		tabCfg.Kernel.K = spec.K
	}
	if spec.C > 0 {
		tabCfg.Kernel.C = spec.C
	}
	if spec.Bits > 0 {
		tabCfg.Kernel.DataBits = spec.Bits
	}
	// Seed 13 matches dart-serve's student factory so recovered checkpoints
	// restore into an identically-shaped network.
	student := nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(13)))
	d := kd.NewDistiller(art.Teacher, student, kdEpochs(epochs), rand.New(rand.NewSource(3)))
	d.Run(art.Train.X, art.Train.Y)
	f1 := core.EvaluateModelF1(student, art.Test)
	fmt.Printf("%-22s %8.3f   (%d params, latency %d cycles, %.1f KB)\n",
		"Serve student (KD)", f1, nn.ParamCount(student),
		config.NNLatency(smodel), float64(config.NNStorageBits(smodel, 32))/8/1024)

	if out == "" {
		return nil
	}
	tStore, err := online.NewStore(func() nn.Layer {
		return nn.NewTransformerPredictor(tcfg, rand.New(rand.NewSource(7)))
	}, out)
	if err != nil {
		return err
	}
	tm, err := tStore.Publish(art.Student, nn.CheckpointMeta{Loss: 1 - art.F1Student})
	if err != nil {
		return err
	}
	sStore, err := online.NewClassStore(func() nn.Layer {
		return nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(13)))
	}, out, online.StudentClass)
	if err != nil {
		return err
	}
	sm, err := sStore.Publish(student, nn.CheckpointMeta{Loss: 1 - f1})
	if err != nil {
		return err
	}

	// Tabularize the serve student and publish the hierarchy as the dart
	// class too, so the daemon recovers a full teach→distill→tabularize
	// pipeline and can serve tables before its first online duty cycle. The
	// kernel config matches dart-serve's serving default; Source records the
	// student version the table derives from, so the daemon's tabularizer
	// knows not to rebuild an unchanged table on startup.
	fit := art.Train.X
	if fit.N > 512 {
		fit = fit.Gather(rand.New(rand.NewSource(5)).Perm(fit.N)[:512])
	}
	tables := tabular.Tabularize(student, fit, tabCfg)
	f1Tables := core.EvaluateTableF1(tables.Hierarchy, art.Test)
	cost := tables.Hierarchy.Cost()
	fmt.Printf("%-22s %8.3f   (latency %d cycles, %.1f KB)\n",
		"Serve DART (tables)", f1Tables, cost.LatencyCycles, float64(cost.StorageBytes())/1024)
	dStore, err := online.NewTableStore(out, online.DartClass)
	if err != nil {
		return err
	}
	dm, err := dStore.Publish(tables.Hierarchy, nn.CheckpointMeta{
		Source:   sm.Version,
		Examples: uint64(fit.N),
		Loss:     1 - f1Tables,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\npublished teacher v%d, student v%d, and dart table v%d to %s\n",
		tm.Version, sm.Version, dm.Version, out)
	fmt.Printf("serve them with: dart-serve -pretrain -dart -checkpoint-dir %s\n", out)
	return nil
}
