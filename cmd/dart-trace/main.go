// Command dart-trace generates the synthetic benchmark traces and prints
// their Table IV-style statistics (accesses, unique block addresses, pages,
// and successive-access deltas).
//
// Usage:
//
//	dart-trace [-n accesses] [-app name]
package main

import (
	"flag"
	"fmt"
	"os"

	"dart/internal/trace"
)

func main() {
	n := flag.Int("n", 100000, "accesses to generate per application")
	app := flag.String("app", "", "single application (suffix match, e.g. mcf); default all")
	out := flag.String("o", "", "write the trace(s) as CSV to this file (requires -app)")
	flag.Parse()
	if *out != "" && *app == "" {
		fmt.Fprintln(os.Stderr, "-o requires -app")
		os.Exit(1)
	}

	specs := trace.Apps()
	if *app != "" {
		spec, ok := trace.AppByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q\n", *app)
			os.Exit(1)
		}
		specs = []trace.AppSpec{spec}
	}

	fmt.Printf("%-16s %-10s %10s %10s %10s %10s\n",
		"Application", "Suite", "#Access", "#Address", "#Page", "#Delta")
	for _, spec := range specs {
		recs := trace.Generate(spec, *n)
		st := trace.Summarize(recs)
		fmt.Printf("%-16s %-10s %10d %10d %10d %10d\n",
			spec.Name, spec.Suite, st.Accesses, st.Addresses, st.Pages, st.Deltas)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := trace.WriteCSV(f, recs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}
}
