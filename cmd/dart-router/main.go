// Command dart-router is the horizontal-sharding front end: one serving
// address over N dart-serve backends. It terminates both wire protocols
// (line-delimited JSON and DARTWIRE1 binary framing), consistent-hashes each
// session's tenant onto a backend with a bounded-load ring, health-checks the
// backends (eject, exponential backoff, readmit, rebalance), and migrates
// sessions across backend leave/join by journal replay — bit-identically for
// deterministic serving classes (see internal/route/README.md).
//
// Serve mode fronts running backends:
//
//	dart-router -listen :7400 -backends shard0=10.0.0.1:7381,shard1=10.0.0.2:7381
//	dart-router -listen :7400 -spawn 3     # self-contained: 3 in-process backends
//
// -spawn runs N classical-class backends inside the router process on
// loopback ports — the one-binary demo and test mode. Real deployments run
// dart-serve daemons (with whatever model tiers they need) and list them via
// -backends; backends sharing a -checkpoint-dir converge on the same
// published model versions, so a session migrating between them sees one
// model lineage.
//
// Replay mode drives synthetic workloads through the router and verifies the
// acceptance bar end to end — merged replay bit-identical to a single node,
// over binary framing, through migration:
//
//	dart-router -spawn 3 -replay -sessions 8 -n 20000 -verify
//	dart-router -spawn 3 -replay -soak 60s -chaos
//
// -chaos (with -spawn) kills one backend mid-round and restarts it with a
// FRESH engine a moment later: the round must still deliver every access in
// order and bit-identical to the offline simulator, proving the journal
// migration path. Matrix mode replays the mixed-tenant scenario matrix the
// same way (default spec: deterministic classes only, since independent
// backends make versioned classes meaningless across shards):
//
//	dart-router -spawn 3 -matrix -soak 60s -chaos
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dart/internal/route"
	"dart/internal/serve"
	"dart/internal/trace"
)

func main() {
	listen := flag.String("listen", "", "TCP listen address for the router front end, e.g. :7400")
	backends := flag.String("backends", "", "comma-separated backend list: name=host:port,... (names are the stable ring identities)")
	spawn := flag.Int("spawn", 0, "spawn this many in-process dart-serve backends on loopback ports instead of -backends")

	pool := flag.Int("pool", 2, "pooled binary connections per backend")
	timeout := flag.Duration("timeout", 2*time.Second, "per-call deadline on backend calls")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "backend health probe cadence (<0 disables the prober)")
	healthFails := flag.Int("health-fails", 2, "consecutive failures before a backend is ejected")
	bound := flag.Float64("bound", 1.25, "CHWBL load-bound factor c (per-backend cap = c * sessions/alive)")
	replicas := flag.Int("replicas", 64, "virtual ring points per backend")

	replay := flag.Bool("replay", false, "replay synthetic workloads through the router and exit")
	sessions := flag.Int("sessions", 8, "replay: concurrent sessions")
	n := flag.Int("n", 20000, "replay: accesses per session")
	prefetcher := flag.String("prefetcher", "stride", "replay: prefetcher every session opens (none|bo|isb|stride)")
	degree := flag.Int("degree", 4, "replay: prefetch degree")
	qps := flag.Float64("qps", 0, "replay: aggregate target accesses/sec (0 = unthrottled)")
	proto := flag.String("proto", "binary", "replay/matrix: wire transport to the router — json or binary")
	batch := flag.Int("batch", 64, "replay/matrix: accesses per wire frame")
	verify := flag.Bool("verify", true, "replay: require bit-identity with the offline simulator")
	soak := flag.Duration("soak", 0, "replay/matrix: repeat rounds until this much wall time has elapsed")
	chaos := flag.Bool("chaos", false, "replay/matrix soak: kill one spawned backend mid-round and restart it (requires -spawn)")
	jsonOut := flag.String("json", "", "replay: also record the routed replay in the \"router\" section of this JSON file")

	matrix := flag.Bool("matrix", false, "replay a mixed-tenant scenario matrix through the router and exit")
	matrixSpec := flag.String("matrix-spec", "", "matrix: tenant spec — name:key=value,...;name:... (default: the deterministic-class router matrix)")
	flag.Parse()

	if *spawn > 0 && *backends != "" {
		fatalf("-spawn and -backends are exclusive")
	}
	if *chaos && *spawn == 0 {
		fatalf("-chaos needs -spawn (it must own the backend processes it kills)")
	}

	var specs []route.BackendSpec
	var spawned []*localBackend
	if *spawn > 0 {
		for i := 0; i < *spawn; i++ {
			lb, err := spawnBackend(fmt.Sprintf("shard%d", i))
			if err != nil {
				fatalf("spawn: %v", err)
			}
			spawned = append(spawned, lb)
			specs = append(specs, route.BackendSpec{Name: lb.name, Addr: lb.addr})
			fmt.Printf("spawned backend %s on %s\n", lb.name, lb.addr)
		}
	} else {
		var err error
		if specs, err = parseBackends(*backends); err != nil {
			fatalf("%v", err)
		}
	}
	if len(specs) == 0 {
		fatalf("need -backends or -spawn")
	}

	r, err := route.NewRouter(route.Config{
		Backends:       specs,
		PoolSize:       *pool,
		Timeout:        *timeout,
		HealthInterval: *healthInterval,
		HealthFails:    *healthFails,
		BoundFactor:    *bound,
		Replicas:       *replicas,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("router: %v", err)
	}
	defer r.Close()

	laddr := *listen
	if laddr == "" {
		if !*replay && !*matrix {
			fatalf("need -listen, -replay, or -matrix")
		}
		laddr = "127.0.0.1:0" // replay modes only need a loopback front end
	}
	ln, err := net.Listen("tcp", laddr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	srv := route.NewServer(r)

	if *replay || *matrix {
		go srv.Serve(ln)
		defer srv.Stop()
		base := serve.ReplaySpec{
			Addr:  ln.Addr().String(),
			Proto: *proto,
			Batch: *batch,
		}
		if *matrix {
			runRouterMatrix(base, *matrixSpec, *soak, chaosFor(*chaos, spawned, r))
		} else {
			base.Prefetcher = *prefetcher
			base.Degree = *degree
			base.QPS = *qps
			base.Verify = *verify
			runRouterReplay(base, *sessions, *n, *soak, chaosFor(*chaos, spawned, r), *jsonOut)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("\n%v: stopping router\n", s)
		srv.Stop()
	}()
	fmt.Printf("dart-router listening on %s over %d backends\n", ln.Addr(), len(specs))
	if err := srv.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
}

// parseBackends parses "name=host:port,..." (bare addresses get positional
// shard names).
func parseBackends(s string) ([]route.BackendSpec, error) {
	var specs []route.BackendSpec
	for i, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, addr, ok := strings.Cut(item, "=")
		if !ok {
			name, addr = fmt.Sprintf("shard%d", i), item
		}
		specs = append(specs, route.BackendSpec{Name: name, Addr: addr})
	}
	return specs, nil
}

// localBackend is one -spawn shard: a classical-class serve engine on a
// loopback port that chaos mode can kill and restart (fresh engine, same
// address — a crashed-and-replaced process as the router sees it).
type localBackend struct {
	name, addr string

	mu  sync.Mutex
	srv *serve.Server
}

func spawnBackend(name string) (*localBackend, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lb := &localBackend{name: name, addr: ln.Addr().String()}
	lb.start(ln)
	return lb, nil
}

func (b *localBackend) start(ln net.Listener) {
	srv := serve.NewServer(serve.NewEngine(serve.Config{}))
	go srv.Serve(ln)
	b.mu.Lock()
	b.srv = srv
	b.mu.Unlock()
}

func (b *localBackend) kill() {
	b.mu.Lock()
	srv := b.srv
	b.srv = nil
	b.mu.Unlock()
	if srv != nil {
		srv.Stop()
	}
}

func (b *localBackend) restart() error {
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ { // the port was just freed; the OS may lag
		if ln, err = net.Listen("tcp", b.addr); err == nil {
			b.start(ln)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

// chaosFor returns the per-round chaos hook: kill one spawned backend
// shortly into the round, restart it with a fresh engine a moment later, and
// wait for both to have happened before the round is declared done. The
// victim rotates round-robin across the backends the router currently
// trusts; a round where fewer than two are healthy skips its kill — a
// restarted backend sits out the prober's readmission backoff, and killing
// the last healthy shard would leave sessions nowhere to migrate. Nil when
// chaos is off.
func chaosFor(enabled bool, spawned []*localBackend, r *route.Router) func(round int, wait func()) {
	if !enabled || len(spawned) == 0 || r == nil {
		return nil
	}
	return func(round int, wait func()) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(50 * time.Millisecond) // let the round's sessions spread out
			b := chaosVictim(r, spawned, round)
			if b == nil {
				fmt.Println("chaos: skipping kill this round (waiting on readmissions)")
				return
			}
			fmt.Printf("chaos: killing backend %s\n", b.name)
			b.kill()
			time.Sleep(500 * time.Millisecond)
			if err := b.restart(); err != nil {
				fatalf("chaos: restart %s: %v", b.name, err)
			}
			fmt.Printf("chaos: backend %s restarted (fresh engine)\n", b.name)
		}()
		wait()
		<-done
	}
}

// chaosVictim picks the round's kill target: the round-robin choice among
// spawned backends the router reports healthy, or nil when a kill would
// leave fewer than one healthy backend behind.
func chaosVictim(r *route.Router, spawned []*localBackend, round int) *localBackend {
	rep, err := r.Stats()
	if err != nil {
		return nil
	}
	healthy := make(map[string]bool)
	alive := 0
	for _, row := range rep.Stats.Backends {
		if row.Healthy {
			healthy[row.Name] = true
			alive++
		}
	}
	if alive < 2 {
		return nil
	}
	for i := 0; i < len(spawned); i++ {
		if b := spawned[(round+i)%len(spawned)]; healthy[b.name] {
			return b
		}
	}
	return nil
}

// runRouterReplay replays synthetic traces through the router front end in
// rounds, enforcing completeness (every access delivered in order) and, with
// verify, bit-identity with the offline simulator — through chaos kills when
// enabled.
func runRouterReplay(spec serve.ReplaySpec, sessions, n int, soak time.Duration, chaos func(int, func()), jsonOut string) {
	apps := trace.Apps()
	deadline := time.Now().Add(soak)
	var rep serve.Report
	for round := 0; ; round++ {
		traces := make(map[string][]trace.Record, sessions)
		for i := 0; i < sessions; i++ {
			app := apps[i%len(apps)]
			app.Seed += int64(1000*(i/len(apps)+1) + 101*round)
			traces[fmt.Sprintf("r%03d-core%02d-%s", round, i, app.Name)] = trace.Generate(app, n)
		}
		run := func() {
			var err error
			if rep, err = serve.Replay(spec, traces); err != nil {
				fatalf("replay: %v", err)
			}
		}
		if chaos != nil {
			chaos(round, run)
		} else {
			run()
		}
		if rep.Merged.Accesses != sessions*n {
			fatalf("COMPLETENESS FAILED: router accounted %d accesses, submitted %d",
				rep.Merged.Accesses, sessions*n)
		}
		fmt.Print(rep)
		if spec.Verify {
			if !rep.Verified {
				fatalf("VERIFY FAILED: routed results are not bit-identical to the offline simulator")
			}
			fmt.Println("verify: all sessions bit-identical to offline sim through the router")
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
	if jsonOut != "" {
		writeRouterJSON(jsonOut, rep)
	}
}

// runRouterMatrix replays the mixed-tenant scenario matrix through the
// router in rounds. Every round must be complete, and every checkable tenant
// bit-identical (the default router spec is all-deterministic, so that is
// every tenant).
func runRouterMatrix(base serve.ReplaySpec, spec string, soak time.Duration, chaos func(int, func())) {
	if spec == "" {
		spec = serve.DefaultRouterMatrixSpec
	}
	tenants, err := serve.ParseMatrixSpec(spec)
	if err != nil {
		fatalf("matrix: %v", err)
	}
	base.Verify = true
	deadline := time.Now().Add(soak)
	for round := 0; ; round++ {
		rt := make([]serve.TenantSpec, len(tenants))
		copy(rt, tenants)
		for i := range rt {
			rt[i].Seed += int64(1000 * round)
		}
		base.Tenants = rt
		var rep serve.MatrixReport
		run := func() {
			if rep, err = serve.ReplayMatrix(base); err != nil {
				fatalf("matrix: %v", err)
			}
		}
		if chaos != nil {
			chaos(round, run)
		} else {
			run()
		}
		fmt.Print(rep)
		if !rep.Complete {
			fatalf("COMPLETENESS FAILED: a tenant's accesses were dropped or reordered")
		}
		if !rep.Verified {
			fatalf("VERIFY FAILED: a checkable tenant is not bit-identical to the offline simulator")
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
}

// writeRouterJSON records the routed replay in the "router" section of the
// shared baseline file, preserving every other section. The overhead-gate
// fields (router_access_ns, direct_access_ns) are owned by `dart-benchcheck
// -write-router`; this writes only the replay fields.
func writeRouterJSON(path string, rep serve.Report) {
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			fatalf("%s: %v", path, err)
		}
	}
	mustRaw := func(v any) json.RawMessage {
		b, err := json.Marshal(v)
		if err != nil {
			fatalf("%v", err)
		}
		return b
	}
	sec := map[string]json.RawMessage{}
	if prev, ok := doc["router"]; ok {
		if err := json.Unmarshal(prev, &sec); err != nil {
			fatalf("%s: router section: %v", path, err)
		}
	}
	sec["replay_throughput"] = mustRaw(rep.Throughput)
	sec["replay_sessions"] = mustRaw(len(rep.Sessions))
	sec["replay_command"] = mustRaw(strings.Join(os.Args, " "))
	sec["replay_generated"] = mustRaw(time.Now().Format("2006-01-02"))
	doc["router"] = mustRaw(sec)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("router report written to %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
