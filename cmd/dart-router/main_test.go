package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dart/internal/route"
	"dart/internal/serve"
)

// startFront spins up n in-process backends, a router over them, and the
// dual-protocol front end — the same wiring main() builds for -spawn.
func startFront(t *testing.T, n int) (addr string, spawned []*localBackend, router *route.Router) {
	t.Helper()
	var specs []route.BackendSpec
	for i := 0; i < n; i++ {
		lb, err := spawnBackend(names(i))
		if err != nil {
			t.Fatal(err)
		}
		spawned = append(spawned, lb)
		specs = append(specs, route.BackendSpec{Name: lb.name, Addr: lb.addr})
	}
	t.Cleanup(func() {
		for _, lb := range spawned {
			lb.kill()
		}
	})
	r, err := route.NewRouter(route.Config{
		Backends:       specs,
		HealthInterval: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := route.NewServer(r)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Stop() })
	return ln.Addr().String(), spawned, r
}

func names(i int) string { return "shard" + string(rune('0'+i)) }

func TestParseBackends(t *testing.T) {
	specs, err := parseBackends("a=1.2.3.4:7381, 5.6.7.8:7381,")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	if specs[0].Name != "a" || specs[0].Addr != "1.2.3.4:7381" {
		t.Fatalf("named form parsed as %+v", specs[0])
	}
	if specs[1].Name != "shard1" || specs[1].Addr != "5.6.7.8:7381" {
		t.Fatalf("bare form parsed as %+v", specs[1])
	}
}

// TestRunRouterReplayEndToEnd drives the CLI's replay path against a live
// two-backend cluster, with the "router" section written into a JSON file
// that already holds a sibling section — which must survive untouched.
func TestRunRouterReplayEndToEnd(t *testing.T) {
	addr, _, _ := startFront(t, 2)
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(out, []byte(`{"binary":{"keep":"me"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runRouterReplay(serve.ReplaySpec{
		Addr: addr, Proto: "binary", Batch: 32,
		Prefetcher: "stride", Degree: 4, Verify: true,
	}, 4, 500, 0, nil, out)

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Binary map[string]string `json:"binary"`
		Router struct {
			Throughput float64 `json:"replay_throughput"`
			Sessions   int     `json:"replay_sessions"`
		} `json:"router"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Binary["keep"] != "me" {
		t.Fatal("writing the router section clobbered a sibling section")
	}
	if doc.Router.Sessions != 4 || doc.Router.Throughput <= 0 {
		t.Fatalf("router section recorded %+v", doc.Router)
	}
}

// TestRunRouterMatrixOneRound drives the CLI's matrix path for a single
// round (no soak): the default deterministic-class spec through a live
// router, every tenant complete and verified. runRouterMatrix exits the
// process on violation, so completion is the assert.
func TestRunRouterMatrixOneRound(t *testing.T) {
	addr, _, _ := startFront(t, 2)
	runRouterMatrix(serve.ReplaySpec{
		Addr: addr, Proto: "binary", Batch: 32,
	}, "", 0, nil)
}

// TestChaosHookKillRestart exercises the chaos hook directly: it must kill
// the round's backend, restart it with a fresh engine on the same address,
// and not return before both happened. A replay through the router
// afterwards proves the restarted backend serves again.
func TestChaosHookKillRestart(t *testing.T) {
	addr, spawned, r := startFront(t, 2)
	hook := chaosFor(true, spawned, r)
	if hook == nil || chaosFor(false, spawned, r) != nil ||
		chaosFor(true, nil, r) != nil || chaosFor(true, spawned, nil) != nil {
		t.Fatal("chaosFor gating is wrong")
	}
	hook(0, func() {}) // round 0 kills+restarts spawned[0]
	runRouterReplay(serve.ReplaySpec{
		Addr: addr, Proto: "binary", Batch: 32,
		Prefetcher: "stride", Degree: 4, Verify: true,
	}, 2, 400, 0, nil, "")
}

// TestRunRouterMatrixChaosSoak is the nightly soak in miniature: the
// mixed-tenant matrix replays in rounds while the chaos hook kills and
// restarts spawned backends. runRouterMatrix exits the process on any
// dropped/reordered access or verify mismatch, so completion is the assert.
func TestRunRouterMatrixChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak takes a few seconds")
	}
	addr, spawned, r := startFront(t, 3)
	runRouterMatrix(serve.ReplaySpec{
		Addr: addr, Proto: "binary", Batch: 32,
	}, "", 2*time.Second, chaosFor(true, spawned, r))
}
