package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const coverFunc = `dart/internal/mat/mat.go:22:		New		100.0%
dart/internal/mat/mat.go:30:		FromSlice	85.7%
total:							(statements)	73.1%
`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "COVERAGE.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTotal(t *testing.T) {
	got, err := parseTotal(strings.NewReader(coverFunc))
	if err != nil {
		t.Fatal(err)
	}
	if got != 73.1 {
		t.Fatalf("parsed %.1f, want 73.1", got)
	}
	if _, err := parseTotal(strings.NewReader("no totals here\n")); err == nil {
		t.Fatal("missing total line accepted")
	}
}

func TestRatchet(t *testing.T) {
	cases := []struct {
		name     string
		baseline string
		maxDrop  float64
		want     int
	}{
		{"within tolerance", "73.8\n", 1.0, 0},
		{"exactly at floor", "74.1\n", 1.0, 0},
		{"beyond tolerance", "74.5\n", 1.0, 1},
		{"coverage rose", "# comment\n70.0\n", 1.0, 0},
		{"tight ratchet", "73.4\n", 0.1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeBaseline(t, tc.baseline)
			var out strings.Builder
			got := run(path, tc.maxDrop, false, strings.NewReader(coverFunc), &out)
			if got != tc.want {
				t.Fatalf("exit %d, want %d\n%s", got, tc.want, out.String())
			}
		})
	}
}

func TestMissingBaselineFailsClosed(t *testing.T) {
	var out strings.Builder
	if got := run(filepath.Join(t.TempDir(), "nope.txt"), 1.0, false, strings.NewReader(coverFunc), &out); got != 2 {
		t.Fatalf("exit %d, want 2 (fail closed)\n%s", got, out.String())
	}
}

func TestWriteBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "COVERAGE.txt")
	var out strings.Builder
	if got := run(path, 1.0, true, strings.NewReader(coverFunc), &out); got != 0 {
		t.Fatalf("write exited %d\n%s", got, out.String())
	}
	v, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if v != 73.1 {
		t.Fatalf("written baseline %.1f, want 73.1", v)
	}
	// The freshly written baseline must pass its own check.
	if got := run(path, 1.0, false, strings.NewReader(coverFunc), &out); got != 0 {
		t.Fatalf("self-check exited %d\n%s", got, out.String())
	}
}
