// Command dart-covercheck is the CI coverage ratchet: it reads the total
// statement coverage from `go tool cover -func` output and compares it
// against the committed baseline in COVERAGE.txt, failing when coverage
// drops more than -max-drop percentage points below it.
//
//	go test -short -coverprofile=coverage.out ./...
//	go tool cover -func=coverage.out > coverage-func.txt
//	dart-covercheck -baseline COVERAGE.txt coverage-func.txt
//
// The ratchet is one-way by convention: `make cover-update` (dart-covercheck
// -write) rewrites the baseline to the measured value, so rising coverage
// tightens the floor while CI only ever enforces "no more than -max-drop
// below the committed number". A missing baseline file fails closed — commit
// one with -write first.
//
// Exit status 0 when the check passes, 1 on a coverage drop, 2 on usage or
// parse errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// totalLine matches the summary row of `go tool cover -func`, e.g.
// "total:  (statements)  73.1%".
var totalLine = regexp.MustCompile(`^total:\s+\(statements\)\s+([0-9.]+)%`)

// parseTotal extracts the total statement-coverage percentage.
func parseTotal(r io.Reader) (float64, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if m := totalLine.FindStringSubmatch(strings.TrimSpace(sc.Text())); m != nil {
			return strconv.ParseFloat(m[1], 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no \"total: (statements) N%%\" line found (is this `go tool cover -func` output?)")
}

// readBaseline parses the committed baseline: the first non-comment token
// that parses as a float, e.g. "73.1" (comments start with '#').
func readBaseline(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSuffix(line, "%"), 64)
	}
	return 0, fmt.Errorf("no coverage number in %s", path)
}

// run executes the gate and returns the process exit code.
func run(baselinePath string, maxDrop float64, write bool, in io.Reader, out io.Writer) int {
	measured, err := parseTotal(in)
	if err != nil {
		fmt.Fprintf(out, "covercheck: %v\n", err)
		return 2
	}
	if write {
		content := fmt.Sprintf("# total statement coverage baseline (percent), maintained by `make cover-update`\n%.1f\n", measured)
		if err := os.WriteFile(baselinePath, []byte(content), 0o644); err != nil {
			fmt.Fprintf(out, "covercheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "covercheck: baseline %s set to %.1f%%\n", baselinePath, measured)
		return 0
	}
	baseline, err := readBaseline(baselinePath)
	if err != nil {
		// Fail closed: a missing baseline must not silently disable the gate.
		fmt.Fprintf(out, "covercheck: %v (commit a baseline with -write)\n", err)
		return 2
	}
	floor := baseline - maxDrop
	fmt.Fprintf(out, "covercheck: measured %.1f%%, baseline %.1f%%, floor %.1f%%\n", measured, baseline, floor)
	if measured < floor {
		fmt.Fprintf(out, "covercheck: FAIL — coverage dropped %.1f points below the committed baseline\n", baseline-measured)
		return 1
	}
	if measured > baseline {
		fmt.Fprintf(out, "covercheck: coverage rose %.1f points — ratchet it with `make cover-update`\n", measured-baseline)
	}
	return 0
}

func main() {
	baselinePath := flag.String("baseline", "COVERAGE.txt", "committed coverage baseline file")
	maxDrop := flag.Float64("max-drop", 1.0, "allowed drop below the baseline, in percentage points")
	write := flag.Bool("write", false, "rewrite the baseline to the measured value instead of checking")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	os.Exit(run(*baselinePath, *maxDrop, *write, in, os.Stdout))
}
