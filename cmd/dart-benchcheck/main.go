// Command dart-benchcheck is the CI perf-regression gate: it parses `go test
// -bench` output for the parallel-engine benchmarks and compares it against
// the baseline recorded in BENCH_par.json.
//
//	go test -run '^$' -bench 'BenchmarkMatMul|BenchmarkHierarchyQueryBatch' \
//	    ./internal/mat ./internal/tabular > bench.out
//	dart-benchcheck -baseline BENCH_par.json bench.out
//
// Two kinds of checks run:
//
//   - Absolute: every measured benchmark with a baseline entry must be no
//     slower than baseline * tolerance (default 1.5x — generous, because CI
//     hosts differ from the recording host; the gate catches gross
//     regressions like losing the vector kernel or the worker pool, not
//     single-digit drift).
//   - Relative (host-independent): within the same run, ParMulInto at the
//     largest measured size must beat the serial seed kernel by at least
//     -min-speedup (default 2x, PR 1's acceptance bar). This holds on any
//     host because both sides ran on it seconds apart.
//
// With -serve-baseline the gate also covers the online-training,
// distilled-student, and dart-table benchmarks (feedback ingest, model swap,
// teacher/student/dart inference, distill cycle, table swap) against the
// "online" section of BENCH_serve.json, plus three host-independent same-run
// checks: the student must be strictly faster than the teacher (ns/op) and
// strictly smaller (the storage_bytes metric the infer benchmarks report),
// and dart table inference must be strictly faster than the student — the
// paper's core claim. -write-online flips the tool into
// update mode: it parses those benchmarks from the input and rewrites the
// "online" section in place — `make bench-update` uses this to refresh every
// serving baseline in one step.
//
// -serve-baseline additionally gates the DARTWIRE1 binary protocol against
// the "binary" section of the same file: BenchmarkWireCodec and
// BenchmarkWireAccessBinary are checked for ns/op regressions like any other
// benchmark, and their allocs/op (parsed from -benchmem output) must not
// exceed the recorded baseline — which is zero, the tentpole's zero-alloc
// guarantee, so a single new steady-state allocation on the binary hot path
// fails CI. One static check needs no measurement at all: the recorded
// binary replay throughput must beat the recorded JSON replay throughput
// ("report".Throughput) by at least -min-wire-speedup (default 5x, the
// binary protocol's acceptance bar; both numbers were recorded on the same
// host by `make bench-update`). -write-binary rewrites the codec/alloc
// fields of the "binary" section from measured benchmarks, preserving the
// replay_* fields that `dart-serve -replay -proto binary -json` maintains.
//
// -serve-baseline also gates the quantized dart tables against the "quant"
// section of the same file: BenchmarkDartInferQuant (ns/op within tolerance,
// allocs/op at most the recorded baseline) and BenchmarkQuantRowAccum — the
// SIMD gather-accumulate micro-kernel, whose alloc baseline is zero, so a
// single allocation on the quantized row hot path fails CI. Two
// host-independent same-run checks ride along: quantized dart inference must
// be strictly faster than float dart inference, and its reported
// storage_bytes metric must be at least -min-quant-shrink times smaller
// (default 4x, the int8 acceptance bar) — both sides measured seconds apart
// on the same host. -write-quant rewrites the "quant" section from measured
// benchmarks, preserving every other key in the file.
//
// -serve-baseline also gates the sharding tier against the "router" section
// of the same file: BenchmarkRouterAccess and BenchmarkDirectAccess are
// checked for ns/op regressions, and the same-run routed-vs-direct overhead
// ratio (both sides measured seconds apart on the same host, through the
// same loopback wire) must stay under -max-router-overhead (default 3x) —
// the router hop's decode → journal → re-encode must stay a constant factor,
// not a new bottleneck. -write-router rewrites the ns fields of the "router"
// section from measured benchmarks, preserving the replay_* fields that
// `dart-router -replay -json` maintains.
//
// Exit status 0 when every check passes, 1 on regression, 2 on usage or
// missing-data errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// baseline mirrors the relevant parts of BENCH_par.json.
type baseline struct {
	MatMul []struct {
		N        int                `json:"n"`
		SerialNs float64            `json:"serial_ns"`
		ParNs    map[string]float64 `json:"par_ns"`
	} `json:"matmul"`
	Tabular struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"tabular"`
}

// onlineBaseline is the "online" section of BENCH_serve.json: the
// online-training and distilled-student benchmarks gated alongside the
// engine ones.
type onlineBaseline struct {
	FeedbackIngestNs    float64 `json:"feedback_ingest_ns"`
	SwapNs              float64 `json:"swap_ns"`
	TeacherInferNs      float64 `json:"teacher_infer_ns"`
	StudentInferNs      float64 `json:"student_infer_ns"`
	DistillCycleNs      float64 `json:"distill_cycle_ns"`
	DartInferNs         float64 `json:"dart_infer_ns"`
	TabularSwapNs       float64 `json:"tabular_swap_ns"`
	TeacherStorageBytes float64 `json:"teacher_storage_bytes"`
	StudentStorageBytes float64 `json:"student_storage_bytes"`
	DartStorageBytes    float64 `json:"dart_storage_bytes"`

	// Promotion-policy live-observation hot path: gated on ns/op like the
	// other online benchmarks, and on allocs/op with no tolerance — the
	// batcher calls ObserveLive on every shadow-compared batch, so a single
	// new steady-state allocation there fails CI (same contract as the
	// binary wire hot path).
	PolicyDecisionNs     float64 `json:"policy_decision_ns"`
	PolicyDecisionAllocs float64 `json:"policy_decision_allocs"`
}

// onlineBenchNames maps the gated benchmarks to their baseline fields.
var onlineBenchNames = map[string]func(onlineBaseline) float64{
	"BenchmarkFeedbackIngest": func(b onlineBaseline) float64 { return b.FeedbackIngestNs },
	"BenchmarkModelSwap":      func(b onlineBaseline) float64 { return b.SwapNs },
	"BenchmarkTeacherInfer":   func(b onlineBaseline) float64 { return b.TeacherInferNs },
	"BenchmarkStudentInfer":   func(b onlineBaseline) float64 { return b.StudentInferNs },
	"BenchmarkDistillCycle":   func(b onlineBaseline) float64 { return b.DistillCycleNs },
	"BenchmarkDartInfer":      func(b onlineBaseline) float64 { return b.DartInferNs },
	"BenchmarkTabularSwap":    func(b onlineBaseline) float64 { return b.TabularSwapNs },
	"BenchmarkPolicyDecision": func(b onlineBaseline) float64 { return b.PolicyDecisionNs },
}

// binaryBaseline is the "binary" section of BENCH_serve.json: the DARTWIRE1
// wire-protocol benchmarks and the binary replay throughput recorded next to
// the JSON replay baseline. The replay_* fields are written by `dart-serve
// -replay -proto binary -json`; the codec/access fields by -write-binary.
type binaryBaseline struct {
	ReplayThroughput float64 `json:"replay_throughput"`
	ReplayBatch      int     `json:"replay_batch"`
	CodecNs          float64 `json:"codec_ns"`
	CodecAllocs      float64 `json:"codec_allocs"`
	WireAccessNs     float64 `json:"wire_access_ns"`
	WireAccessAllocs float64 `json:"wire_access_allocs"`
}

// quantBaseline is the "quant" section of BENCH_serve.json: the quantized
// dart-table benchmarks. The storage field is recorded for visibility; the
// shrink gate itself is same-run (quant vs float storage_bytes metrics), so
// it cannot drift with the baseline file.
type quantBaseline struct {
	DartInferQuantNs     float64 `json:"dart_infer_quant_ns"`
	DartInferQuantAllocs float64 `json:"dart_infer_quant_allocs"`
	DartQuantStorage     float64 `json:"dart_quant_storage_bytes"`
	QuantRowNs           float64 `json:"quant_row_ns"`
	QuantRowAllocs       float64 `json:"quant_row_allocs"`
}

// routerBaseline is the "router" section of BENCH_serve.json: the sharding
// tier's benchmarks. The replay_* fields are written by `dart-router -replay
// -json`; the ns fields by -write-router.
type routerBaseline struct {
	RouterAccessNs   float64 `json:"router_access_ns"`
	DirectAccessNs   float64 `json:"direct_access_ns"`
	ReplayThroughput float64 `json:"replay_throughput"`
}

// benchLine matches e.g. "BenchmarkMatMul/par/n512/w4-8   100  11093275 ns/op".
// The -N GOMAXPROCS suffix is optional: go test omits it when GOMAXPROCS=1.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// storageMetric matches the custom "storage_bytes" metric the infer
// benchmarks report (b.ReportMetric); the value lands in the parse map under
// "<name>@storage_bytes".
var storageMetric = regexp.MustCompile(`([0-9.]+) storage_bytes`)

// allocsMetric matches the allocs/op column -benchmem appends; the value
// lands in the parse map under "<name>@allocs".
var allocsMetric = regexp.MustCompile(`([0-9]+) allocs/op`)

// parseBench extracts name -> ns/op (plus "<name>@storage_bytes" and
// "<name>@allocs" for the -benchmem / custom-metric columns) from go test
// -bench output. Repeated names (e.g. from -count) keep the minimum, the
// standard noise filter.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
		if sm := storageMetric.FindStringSubmatch(sc.Text()); sm != nil {
			v, err := strconv.ParseFloat(sm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad storage_bytes in %q: %w", sc.Text(), err)
			}
			out[m[1]+"@storage_bytes"] = v
		}
		if am := allocsMetric.FindStringSubmatch(sc.Text()); am != nil {
			v, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			key := m[1] + "@allocs"
			if prev, ok := out[key]; !ok || v < prev {
				out[key] = v
			}
		}
	}
	return out, sc.Err()
}

// check is one comparison outcome.
type check struct {
	name     string
	measured float64
	limit    float64
	ok       bool
}

// absoluteChecks compares measured numbers against baseline * tolerance.
// Baseline entries with no measurement are reported via missing.
func absoluteChecks(base baseline, got map[string]float64, tolerance float64) (checks []check, missing []string) {
	add := func(name string, baseNs float64) {
		ns, ok := got[name]
		if !ok {
			missing = append(missing, name)
			return
		}
		limit := baseNs * tolerance
		checks = append(checks, check{name: name, measured: ns, limit: limit, ok: ns <= limit})
	}
	for _, row := range base.MatMul {
		add(fmt.Sprintf("BenchmarkMatMul/serial/n%d", row.N), row.SerialNs)
		for _, w := range []string{"w1", "w2", "w4"} {
			if bn, ok := row.ParNs[w]; ok {
				add(fmt.Sprintf("BenchmarkMatMul/par/n%d/%s", row.N, w), bn)
			}
		}
	}
	if base.Tabular.NsPerOp > 0 {
		add("BenchmarkHierarchyQueryBatch", base.Tabular.NsPerOp)
	}
	return checks, missing
}

// speedupCheck verifies, within the same run, that the parallel engine beats
// the serial kernel at the largest size both were measured at.
func speedupCheck(got map[string]float64, minSpeedup float64) (check, bool) {
	best := -1
	for _, n := range []int{1024, 512, 256, 128, 64} {
		serial := fmt.Sprintf("BenchmarkMatMul/serial/n%d", n)
		par := fmt.Sprintf("BenchmarkMatMul/par/n%d/w4", n)
		if _, ok1 := got[serial]; ok1 {
			if _, ok2 := got[par]; ok2 {
				best = n
				break
			}
		}
	}
	if best < 0 {
		return check{}, false
	}
	serial := got[fmt.Sprintf("BenchmarkMatMul/serial/n%d", best)]
	par := got[fmt.Sprintf("BenchmarkMatMul/par/n%d/w4", best)]
	speedup := serial / par
	return check{
		name:     fmt.Sprintf("speedup(par w4 vs serial, n=%d)", best),
		measured: speedup,
		limit:    minSpeedup,
		ok:       speedup >= minSpeedup,
	}, true
}

// serveChecks compares the online-training benchmarks against the "online"
// section of the serve baseline file.
func serveChecks(servePath string, got map[string]float64, tolerance float64, out io.Writer) (checks []check, missing []string, ok bool) {
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return nil, nil, false
	}
	var doc struct {
		Online *onlineBaseline `json:"online"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return nil, nil, false
	}
	if doc.Online == nil {
		fmt.Fprintf(out, "benchcheck: %s has no \"online\" section (run `make bench-update`)\n", servePath)
		return nil, nil, false
	}
	for name, field := range onlineBenchNames {
		baseNs := field(*doc.Online)
		if baseNs <= 0 {
			missing = append(missing, name)
			continue
		}
		ns, measured := got[name]
		if !measured {
			missing = append(missing, name)
			continue
		}
		limit := baseNs * tolerance
		checks = append(checks, check{name: name, measured: ns, limit: limit, ok: ns <= limit})
	}
	// The policy decision allocs baseline is exact (no tolerance): 0 is the
	// recorded value and the point of the check, like the wire hot path.
	if allocs, measured := got["BenchmarkPolicyDecision@allocs"]; measured {
		checks = append(checks, check{
			name:     "BenchmarkPolicyDecision@allocs",
			measured: allocs,
			limit:    doc.Online.PolicyDecisionAllocs,
			ok:       allocs <= doc.Online.PolicyDecisionAllocs,
		})
	} else {
		missing = append(missing, "BenchmarkPolicyDecision@allocs")
	}
	sc, sMissing := studentChecks(got)
	checks = append(checks, sc...)
	missing = append(missing, sMissing...)
	return checks, missing, true
}

// studentChecks are the host-independent same-run comparisons down the
// serving hierarchy: the distilled student must be strictly faster than the
// teacher and its reported parameter storage strictly smaller, and the
// tabularized (dart) tables must be strictly faster than the student — the
// paper's whole point, and each tier's reason to exist. Both sides of every
// ratio ran seconds apart on the same host, so no tolerance applies.
func studentChecks(got map[string]float64) (checks []check, missing []string) {
	type rel struct {
		name, num, den string
	}
	for _, r := range []rel{
		{"speedup(student vs teacher infer, same run)", "BenchmarkTeacherInfer", "BenchmarkStudentInfer"},
		{"shrink(student vs teacher storage_bytes)", "BenchmarkTeacherInfer@storage_bytes", "BenchmarkStudentInfer@storage_bytes"},
		{"speedup(dart vs student infer, same run)", "BenchmarkStudentInfer", "BenchmarkDartInfer"},
	} {
		num, ok1 := got[r.num]
		den, ok2 := got[r.den]
		if !ok1 {
			missing = append(missing, r.num)
		}
		if !ok2 {
			missing = append(missing, r.den)
		}
		if !ok1 || !ok2 {
			continue
		}
		ratio := num / den
		checks = append(checks, check{name: r.name, measured: ratio, limit: 1, ok: ratio > 1})
	}
	return checks, missing
}

// binaryChecks gates the DARTWIRE1 benchmarks against the "binary" section
// of the serve baseline file: ns/op within tolerance like any other
// benchmark, allocs/op at most the recorded baseline with no tolerance
// (allocation counts are deterministic, and the recorded baseline is zero —
// the zero-alloc hot-path guarantee), plus the static recorded-throughput
// ratio: binary replay must beat JSON replay by minWireSpeedup. Both replay
// numbers come from the baseline file itself — `make bench-update` records
// them on the same host minutes apart — so no fresh measurement is needed.
func binaryChecks(servePath string, got map[string]float64, tolerance, minWireSpeedup float64, out io.Writer) (checks []check, missing []string, ok bool) {
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return nil, nil, false
	}
	var doc struct {
		Binary *binaryBaseline `json:"binary"`
		Report struct {
			Throughput float64 `json:"Throughput"`
		} `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return nil, nil, false
	}
	if doc.Binary == nil {
		fmt.Fprintf(out, "benchcheck: %s has no \"binary\" section (run `make bench-update`)\n", servePath)
		return nil, nil, false
	}
	bin := *doc.Binary
	addNs := func(name string, baseNs float64) {
		if baseNs <= 0 {
			missing = append(missing, name)
			return
		}
		ns, measured := got[name]
		if !measured {
			missing = append(missing, name)
			return
		}
		limit := baseNs * tolerance
		checks = append(checks, check{name: name, measured: ns, limit: limit, ok: ns <= limit})
	}
	// Alloc baselines are exact: a baseline of 0 is the whole point, so 0 is
	// a valid (and the expected) recorded value, unlike the ns fields.
	addAllocs := func(name string, baseAllocs float64) {
		allocs, measured := got[name]
		if !measured {
			missing = append(missing, name)
			return
		}
		checks = append(checks, check{name: name, measured: allocs, limit: baseAllocs, ok: allocs <= baseAllocs})
	}
	addNs("BenchmarkWireCodec", bin.CodecNs)
	addAllocs("BenchmarkWireCodec@allocs", bin.CodecAllocs)
	addNs("BenchmarkWireAccessBinary", bin.WireAccessNs)
	addAllocs("BenchmarkWireAccessBinary@allocs", bin.WireAccessAllocs)
	if bin.ReplayThroughput <= 0 || doc.Report.Throughput <= 0 {
		fmt.Fprintf(out, "benchcheck: %s lacks recorded replay throughputs for the wire-speedup check (run `make bench-update`)\n", servePath)
		return nil, nil, false
	}
	ratio := bin.ReplayThroughput / doc.Report.Throughput
	checks = append(checks, check{
		name:     "speedup(binary vs json replay, recorded)",
		measured: ratio,
		limit:    minWireSpeedup,
		ok:       ratio >= minWireSpeedup,
	})
	return checks, missing, true
}

// quantChecks gates the quantized dart tables against the "quant" section of
// the serve baseline file: ns/op within tolerance, allocs/op at most the
// recorded baseline with no tolerance (the QuantRowAccum baseline is zero —
// the SIMD row kernel's zero-alloc guarantee), plus the two host-independent
// same-run ratios against the float dart row: quantized inference must be
// strictly faster, and its storage_bytes metric at least minShrink times
// smaller. Both sides of each ratio ran seconds apart on the same host, so
// no tolerance applies.
func quantChecks(servePath string, got map[string]float64, tolerance, minShrink float64, out io.Writer) (checks []check, missing []string, ok bool) {
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return nil, nil, false
	}
	var doc struct {
		Quant *quantBaseline `json:"quant"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return nil, nil, false
	}
	if doc.Quant == nil {
		fmt.Fprintf(out, "benchcheck: %s has no \"quant\" section (run `make bench-update`)\n", servePath)
		return nil, nil, false
	}
	q := *doc.Quant
	addNs := func(name string, baseNs float64) {
		if baseNs <= 0 {
			missing = append(missing, name)
			return
		}
		ns, measured := got[name]
		if !measured {
			missing = append(missing, name)
			return
		}
		limit := baseNs * tolerance
		checks = append(checks, check{name: name, measured: ns, limit: limit, ok: ns <= limit})
	}
	addAllocs := func(name string, baseAllocs float64) {
		allocs, measured := got[name]
		if !measured {
			missing = append(missing, name)
			return
		}
		checks = append(checks, check{name: name, measured: allocs, limit: baseAllocs, ok: allocs <= baseAllocs})
	}
	addNs("BenchmarkDartInferQuant", q.DartInferQuantNs)
	addAllocs("BenchmarkDartInferQuant@allocs", q.DartInferQuantAllocs)
	addNs("BenchmarkQuantRowAccum", q.QuantRowNs)
	addAllocs("BenchmarkQuantRowAccum@allocs", q.QuantRowAllocs)
	type rel struct {
		name, num, den string
		limit          float64
		strict         bool // ratio must exceed (not just meet) the limit
	}
	for _, r := range []rel{
		{"speedup(quant vs float dart infer, same run)", "BenchmarkDartInfer", "BenchmarkDartInferQuant", 1, true},
		{"shrink(quant vs float dart storage_bytes)", "BenchmarkDartInfer@storage_bytes", "BenchmarkDartInferQuant@storage_bytes", minShrink, false},
	} {
		num, ok1 := got[r.num]
		den, ok2 := got[r.den]
		if !ok1 {
			missing = append(missing, r.num)
		}
		if !ok2 {
			missing = append(missing, r.den)
		}
		if !ok1 || !ok2 {
			continue
		}
		ratio := num / den
		pass := ratio >= r.limit
		if r.strict {
			pass = ratio > r.limit
		}
		checks = append(checks, check{name: r.name, measured: ratio, limit: r.limit, ok: pass})
	}
	return checks, missing, true
}

// routerChecks gates the sharding tier against the "router" section of the
// serve baseline file: the routed and direct access benchmarks for ns/op
// regressions like any other benchmark, plus the host-independent same-run
// overhead ratio — routed ns/op over direct ns/op, both measured on the same
// host through the same loopback wire, must stay under maxOverhead. That
// ratio is the router's cost contract: decode, journal append, re-encode and
// one extra hop, a constant factor over a direct backend call.
func routerChecks(servePath string, got map[string]float64, tolerance, maxOverhead float64, out io.Writer) (checks []check, missing []string, ok bool) {
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return nil, nil, false
	}
	var doc struct {
		Router *routerBaseline `json:"router"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return nil, nil, false
	}
	if doc.Router == nil {
		fmt.Fprintf(out, "benchcheck: %s has no \"router\" section (run `make bench-update`)\n", servePath)
		return nil, nil, false
	}
	addNs := func(name string, baseNs float64) {
		if baseNs <= 0 {
			missing = append(missing, name)
			return
		}
		ns, measured := got[name]
		if !measured {
			missing = append(missing, name)
			return
		}
		limit := baseNs * tolerance
		checks = append(checks, check{name: name, measured: ns, limit: limit, ok: ns <= limit})
	}
	addNs("BenchmarkRouterAccess", doc.Router.RouterAccessNs)
	addNs("BenchmarkDirectAccess", doc.Router.DirectAccessNs)
	routed, ok1 := got["BenchmarkRouterAccess"]
	direct, ok2 := got["BenchmarkDirectAccess"]
	if ok1 && ok2 {
		ratio := routed / direct
		checks = append(checks, check{
			name:     "overhead(routed vs direct access, same run)",
			measured: ratio,
			limit:    maxOverhead,
			ok:       ratio <= maxOverhead,
		})
	}
	return checks, missing, true
}

// writeRouter rewrites the ns fields of the "router" section of the serve
// baseline file from the measured benchmarks, preserving the replay_* fields
// (owned by `dart-router -replay -json`) and every other key in the file.
func writeRouter(servePath string, got map[string]float64, out io.Writer) int {
	for _, name := range []string{"BenchmarkRouterAccess", "BenchmarkDirectAccess"} {
		if _, ok := got[name]; !ok {
			fmt.Fprintf(out, "benchcheck: input has no %s result; not updating %s\n", name, servePath)
			return 2
		}
	}
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return 2
	}
	sec := make(map[string]json.RawMessage)
	if prev, ok := doc["router"]; ok {
		if err := json.Unmarshal(prev, &sec); err != nil {
			fmt.Fprintf(out, "benchcheck: parsing %s \"router\" section: %v\n", servePath, err)
			return 2
		}
	}
	set := func(key string, v float64) {
		b, _ := json.Marshal(v)
		sec[key] = b
	}
	set("router_access_ns", got["BenchmarkRouterAccess"])
	set("direct_access_ns", got["BenchmarkDirectAccess"])
	updatedSec, err := json.Marshal(sec)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	doc["router"] = updatedSec
	updated, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	if err := os.WriteFile(servePath, append(updated, '\n'), 0o644); err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "benchcheck: %s router section updated (routed %.0f ns, direct %.0f ns, overhead %.2fx)\n",
		servePath, got["BenchmarkRouterAccess"], got["BenchmarkDirectAccess"],
		got["BenchmarkRouterAccess"]/got["BenchmarkDirectAccess"])
	return 0
}

// writeBinary rewrites the codec/access fields of the "binary" section of
// the serve baseline file from the measured benchmarks, preserving the
// replay_* fields (owned by `dart-serve -replay -proto binary -json`) and
// every other key in the file.
func writeBinary(servePath string, got map[string]float64, out io.Writer) int {
	for _, name := range []string{
		"BenchmarkWireCodec", "BenchmarkWireCodec@allocs",
		"BenchmarkWireAccessBinary", "BenchmarkWireAccessBinary@allocs",
	} {
		if _, ok := got[name]; !ok {
			fmt.Fprintf(out, "benchcheck: input has no %s result (need -benchmem); not updating %s\n", name, servePath)
			return 2
		}
	}
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return 2
	}
	bin := make(map[string]json.RawMessage)
	if sec, ok := doc["binary"]; ok {
		if err := json.Unmarshal(sec, &bin); err != nil {
			fmt.Fprintf(out, "benchcheck: parsing %s \"binary\" section: %v\n", servePath, err)
			return 2
		}
	}
	set := func(key string, v float64) {
		b, _ := json.Marshal(v)
		bin[key] = b
	}
	set("codec_ns", got["BenchmarkWireCodec"])
	set("codec_allocs", got["BenchmarkWireCodec@allocs"])
	set("wire_access_ns", got["BenchmarkWireAccessBinary"])
	set("wire_access_allocs", got["BenchmarkWireAccessBinary@allocs"])
	sec, err := json.Marshal(bin)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	doc["binary"] = sec
	updated, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	if err := os.WriteFile(servePath, append(updated, '\n'), 0o644); err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "benchcheck: %s binary section updated (codec %.0f ns / %.0f allocs, access %.0f ns / %.0f allocs)\n",
		servePath, got["BenchmarkWireCodec"], got["BenchmarkWireCodec@allocs"],
		got["BenchmarkWireAccessBinary"], got["BenchmarkWireAccessBinary@allocs"])
	return 0
}

// writeQuant rewrites the "quant" section of the serve baseline file from the
// measured benchmarks, preserving every other key in the file.
func writeQuant(servePath string, got map[string]float64, out io.Writer) int {
	for _, name := range []string{
		"BenchmarkDartInferQuant", "BenchmarkDartInferQuant@allocs",
		"BenchmarkDartInferQuant@storage_bytes",
		"BenchmarkQuantRowAccum", "BenchmarkQuantRowAccum@allocs",
	} {
		if _, ok := got[name]; !ok {
			fmt.Fprintf(out, "benchcheck: input has no %s result (need -benchmem); not updating %s\n", name, servePath)
			return 2
		}
	}
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return 2
	}
	sec, err := json.Marshal(quantBaseline{
		DartInferQuantNs:     got["BenchmarkDartInferQuant"],
		DartInferQuantAllocs: got["BenchmarkDartInferQuant@allocs"],
		DartQuantStorage:     got["BenchmarkDartInferQuant@storage_bytes"],
		QuantRowNs:           got["BenchmarkQuantRowAccum"],
		QuantRowAllocs:       got["BenchmarkQuantRowAccum@allocs"],
	})
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	doc["quant"] = sec
	updated, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	if err := os.WriteFile(servePath, append(updated, '\n'), 0o644); err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "benchcheck: %s quant section updated (infer %.0f ns / %.0f storage_bytes, row %.1f ns / %.0f allocs)\n",
		servePath, got["BenchmarkDartInferQuant"], got["BenchmarkDartInferQuant@storage_bytes"],
		got["BenchmarkQuantRowAccum"], got["BenchmarkQuantRowAccum@allocs"])
	return 0
}

// writeOnline rewrites the "online" section of the serve baseline file from
// the measured benchmarks, leaving every other key untouched.
func writeOnline(servePath string, got map[string]float64, out io.Writer) int {
	need := make([]string, 0, len(onlineBenchNames)+2)
	for name := range onlineBenchNames {
		need = append(need, name)
	}
	need = append(need, "BenchmarkTeacherInfer@storage_bytes", "BenchmarkStudentInfer@storage_bytes",
		"BenchmarkDartInfer@storage_bytes", "BenchmarkPolicyDecision@allocs")
	for _, name := range need {
		if _, ok := got[name]; !ok {
			fmt.Fprintf(out, "benchcheck: input has no %s result; not updating %s\n", name, servePath)
			return 2
		}
	}
	raw, err := os.ReadFile(servePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", servePath, err)
		return 2
	}
	sec, err := json.Marshal(onlineBaseline{
		FeedbackIngestNs:    got["BenchmarkFeedbackIngest"],
		SwapNs:              got["BenchmarkModelSwap"],
		TeacherInferNs:      got["BenchmarkTeacherInfer"],
		StudentInferNs:      got["BenchmarkStudentInfer"],
		DistillCycleNs:      got["BenchmarkDistillCycle"],
		DartInferNs:         got["BenchmarkDartInfer"],
		TabularSwapNs:       got["BenchmarkTabularSwap"],
		TeacherStorageBytes: got["BenchmarkTeacherInfer@storage_bytes"],
		StudentStorageBytes: got["BenchmarkStudentInfer@storage_bytes"],
		DartStorageBytes:    got["BenchmarkDartInfer@storage_bytes"],

		PolicyDecisionNs:     got["BenchmarkPolicyDecision"],
		PolicyDecisionAllocs: got["BenchmarkPolicyDecision@allocs"],
	})
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	doc["online"] = sec
	updated, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	if err := os.WriteFile(servePath, append(updated, '\n'), 0o644); err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "benchcheck: %s online section updated (ingest %.1f ns, swap %.0f ns)\n",
		servePath, got["BenchmarkFeedbackIngest"], got["BenchmarkModelSwap"])
	return 0
}

// run executes the gate and returns the process exit code.
func run(baselinePath, servePath, updateOnline, updateBinary, updateRouter, updateQuant string, tolerance, minSpeedup, minWireSpeedup, maxRouterOverhead, minQuantShrink float64, in io.Reader, out io.Writer) int {
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(out, "benchcheck: no benchmark results in input")
		return 2
	}
	if updateOnline != "" {
		return writeOnline(updateOnline, got, out)
	}
	if updateBinary != "" {
		return writeBinary(updateBinary, got, out)
	}
	if updateRouter != "" {
		return writeRouter(updateRouter, got, out)
	}
	if updateQuant != "" {
		return writeQuant(updateQuant, got, out)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "benchcheck: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(out, "benchcheck: parsing %s: %v\n", baselinePath, err)
		return 2
	}

	checks, missing := absoluteChecks(base, got, tolerance)
	if sc, ok := speedupCheck(got, minSpeedup); ok {
		checks = append(checks, sc)
	}
	if servePath != "" {
		sChecks, sMissing, ok := serveChecks(servePath, got, tolerance, out)
		if !ok {
			return 2
		}
		if len(sMissing) > 0 {
			// Fail closed: unlike the matmul grid (which CI may shrink),
			// the online gate names exactly the benchmarks bench-ci runs —
			// one going missing means the gate silently stopped gating.
			fmt.Fprintf(out, "benchcheck: online benchmarks missing from input or baseline: %v\n", sMissing)
			return 2
		}
		checks = append(checks, sChecks...)
		qChecks, qMissing, ok := quantChecks(servePath, got, tolerance, minQuantShrink, out)
		if !ok {
			return 2
		}
		if len(qMissing) > 0 {
			// Same fail-closed rule: the quant gate carries the int8 acceptance
			// bars (quant beats float, >=4x shrink, zero-alloc row kernel), and
			// a benchmark dropped from bench-ci would silently stop enforcing
			// them.
			fmt.Fprintf(out, "benchcheck: quant benchmarks missing from input or baseline: %v\n", qMissing)
			return 2
		}
		checks = append(checks, qChecks...)
		bChecks, bMissing, ok := binaryChecks(servePath, got, tolerance, minWireSpeedup, out)
		if !ok {
			return 2
		}
		if len(bMissing) > 0 {
			// Same fail-closed rule: the wire gate exists to catch a single
			// new allocation on the binary hot path, and a missing benchmark
			// (e.g. -benchmem dropped from bench-ci) would disable it.
			fmt.Fprintf(out, "benchcheck: wire benchmarks missing from input or baseline: %v\n", bMissing)
			return 2
		}
		checks = append(checks, bChecks...)
		rChecks, rMissing, ok := routerChecks(servePath, got, tolerance, maxRouterOverhead, out)
		if !ok {
			return 2
		}
		if len(rMissing) > 0 {
			// Same fail-closed rule: the overhead gate is the sharding tier's
			// cost contract, and a benchmark dropped from bench-ci would
			// silently stop enforcing it.
			fmt.Fprintf(out, "benchcheck: router benchmarks missing from input or baseline: %v\n", rMissing)
			return 2
		}
		checks = append(checks, rChecks...)
	}
	if len(checks) == 0 {
		// Fail closed: benchmark names drifting away from the baseline
		// schema must not silently disable the gate.
		fmt.Fprintf(out, "benchcheck: no measured benchmark matched any baseline entry (missing: %v)\n", missing)
		return 2
	}

	fail := 0
	for _, c := range checks {
		status := "ok  "
		if !c.ok {
			status = "FAIL"
			fail++
		}
		fmt.Fprintf(out, "%s %-42s measured %12.0f  limit %12.0f\n", status, c.name, c.measured, c.limit)
	}
	for _, name := range missing {
		fmt.Fprintf(out, "warn %-42s baseline entry not measured\n", name)
	}
	if fail > 0 {
		fmt.Fprintf(out, "benchcheck: %d regression(s) beyond %.2fx tolerance\n", fail, tolerance)
		return 1
	}
	fmt.Fprintf(out, "benchcheck: %d checks passed (tolerance %.2fx)\n", len(checks), tolerance)
	return 0
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_par.json", "baseline JSON file")
	servePath := flag.String("serve-baseline", "", "also gate online benchmarks against this file's \"online\" section (e.g. BENCH_serve.json)")
	updateOnline := flag.String("write-online", "", "update mode: rewrite this file's \"online\" section from the measured benchmarks")
	updateBinary := flag.String("write-binary", "", "update mode: rewrite this file's \"binary\" codec/access fields from the measured benchmarks")
	updateRouter := flag.String("write-router", "", "update mode: rewrite this file's \"router\" ns fields from the measured benchmarks")
	updateQuant := flag.String("write-quant", "", "update mode: rewrite this file's \"quant\" section from the measured benchmarks")
	tolerance := flag.Float64("tolerance", 1.5, "allowed slowdown vs baseline")
	minSpeedup := flag.Float64("min-speedup", 2.0, "required same-run speedup of par w4 over serial")
	minWireSpeedup := flag.Float64("min-wire-speedup", 5.0, "required recorded speedup of binary replay over json replay")
	maxRouterOverhead := flag.Float64("max-router-overhead", 3.0, "allowed same-run overhead of routed access over direct access")
	minQuantShrink := flag.Float64("min-quant-shrink", 4.0, "required same-run shrink of quantized over float dart storage_bytes")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	os.Exit(run(*baselinePath, *servePath, *updateOnline, *updateBinary, *updateRouter, *updateQuant, *tolerance, *minSpeedup, *minWireSpeedup, *maxRouterOverhead, *minQuantShrink, in, os.Stdout))
}
