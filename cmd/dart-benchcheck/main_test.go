package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "matmul": [
    {"n": 64,  "serial_ns": 100000, "par_ns": {"w1": 30000, "w2": 28000, "w4": 25000, "wGOMAXPROCS": 26000}},
    {"n": 512, "serial_ns": 70000000, "par_ns": {"w1": 12000000, "w2": 11500000, "w4": 11000000}}
  ],
  "tabular": {"ns_per_op": 1800000}
}`

const sampleBench = `goos: linux
goarch: amd64
BenchmarkMatMul/serial/n64-1       7    101000 ns/op    0 B/op
BenchmarkMatMul/par/n64/w1-1     40     29000 ns/op
BenchmarkMatMul/par/n64/w2-1     40     27000 ns/op
BenchmarkMatMul/par/n64/w4-1     40     24000 ns/op
BenchmarkMatMul/serial/n512-1     2  69000000 ns/op
BenchmarkMatMul/par/n512/w1-1    10  12100000 ns/op
BenchmarkMatMul/par/n512/w2-1    10  11400000 ns/op
BenchmarkMatMul/par/n512/w4-1    10  11200000 ns/op
BenchmarkHierarchyQueryBatch  100   1700000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("parsed %d benchmarks, want 9", len(got))
	}
	if got["BenchmarkMatMul/par/n512/w4"] != 11200000 {
		t.Fatalf("n512/w4 = %v", got["BenchmarkMatMul/par/n512/w4"])
	}
	if got["BenchmarkHierarchyQueryBatch"] != 1700000 {
		t.Fatalf("tabular = %v", got["BenchmarkHierarchyQueryBatch"])
	}
}

func TestParseBenchKeepsMinimumAcrossCounts(t *testing.T) {
	in := "BenchmarkMatMul/serial/n64-1 5 200000 ns/op\nBenchmarkMatMul/serial/n64-1 5 150000 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkMatMul/serial/n64"] != 150000 {
		t.Fatalf("min not kept: %v", got)
	}
}

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "checks passed") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// n512/w4 regresses 3x beyond the baseline.
	slow := strings.Replace(sampleBench,
		"BenchmarkMatMul/par/n512/w4-1    10  11200000 ns/op",
		"BenchmarkMatMul/par/n512/w4-1    10  33000000 ns/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkMatMul/par/n512/w4") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestGateFailsOnLostSpeedup(t *testing.T) {
	// Absolute numbers fine, but par w4 no faster than serial at n=512:
	// model a host where the engine silently fell back to the slow path
	// while the baseline file was recorded on slower hardware.
	in := `BenchmarkMatMul/serial/n512-1 2 10000000 ns/op
BenchmarkMatMul/par/n512/w4-1 2 9000000 ns/op
`
	var out strings.Builder
	code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(in), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestGateSpeedupUsesLargestCommonSize(t *testing.T) {
	got, _ := parseBench(strings.NewReader(sampleBench))
	c, ok := speedupCheck(got, 2.0)
	if !ok {
		t.Fatal("no speedup check possible")
	}
	if !strings.Contains(c.name, "n=512") {
		t.Fatalf("picked %q, want n=512", c.name)
	}
	if !c.ok {
		t.Fatalf("speedup %v below limit %v", c.measured, c.limit)
	}
}

func TestGateWarnsOnMissingMeasurement(t *testing.T) {
	// Only the n=64 grid measured: n=512 baseline rows are warnings, not
	// failures (CI may shrink the grid), but the run still passes.
	small := `BenchmarkMatMul/serial/n64-1 7 101000 ns/op
BenchmarkMatMul/par/n64/w1-1 40 29000 ns/op
BenchmarkMatMul/par/n64/w2-1 40 27000 ns/op
BenchmarkMatMul/par/n64/w4-1 40 24000 ns/op
BenchmarkHierarchyQueryBatch-1 100 1700000 ns/op
`
	var out strings.Builder
	code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(small), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warn") {
		t.Fatalf("no warning for missing entries:\n%s", out.String())
	}
}

func TestGateFailsClosedWhenNothingMatches(t *testing.T) {
	// Renamed benchmarks parse fine but match no baseline entry; the gate
	// must error rather than pass with zero checks.
	renamed := `BenchmarkMatMul/pool/n512/w4-1 10 11200000 ns/op
BenchmarkSomethingElse-1 5 12345 ns/op
`
	var out strings.Builder
	if code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(renamed), &out); code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no measured benchmark matched") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestGateErrorsOnEmptyInput(t *testing.T) {
	var out strings.Builder
	if code := run(writeBaseline(t), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader("no benchmarks here"), &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestGateErrorsOnMissingBaseline(t *testing.T) {
	var out strings.Builder
	if code := run(filepath.Join(t.TempDir(), "nope.json"), "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleBench), &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRealBaselineParses guards the actual BENCH_par.json in the repo root
// against drifting away from the schema the gate reads.
func TestRealBaselineParses(t *testing.T) {
	var out strings.Builder
	code := run("../../BENCH_par.json", "", "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleBench), &out)
	// sampleBench numbers are far below the real baseline, so this passes
	// unless the JSON fails to parse (exit 2).
	if code == 2 {
		t.Fatalf("BENCH_par.json no longer parses:\n%s", out.String())
	}
}

const sampleServeBaseline = `{
  "generated": "2026-07-30",
  "online": {
    "feedback_ingest_ns": 20, "swap_ns": 30000,
    "teacher_infer_ns": 550000, "student_infer_ns": 320000, "distill_cycle_ns": 3000000,
    "dart_infer_ns": 250000, "tabular_swap_ns": 5000,
    "teacher_storage_bytes": 44032, "student_storage_bytes": 13952,
    "dart_storage_bytes": 7982,
    "policy_decision_ns": 22, "policy_decision_allocs": 0
  },
  "binary": {
    "replay_throughput": 3900000, "replay_batch": 64,
    "codec_ns": 2100, "codec_allocs": 0,
    "wire_access_ns": 520, "wire_access_allocs": 0
  },
  "quant": {
    "dart_infer_quant_ns": 160000, "dart_infer_quant_allocs": 980,
    "dart_quant_storage_bytes": 1995,
    "quant_row_ns": 30, "quant_row_allocs": 0
  },
  "router": {
    "router_access_ns": 5900, "direct_access_ns": 2950,
    "replay_throughput": 300000
  },
  "report": {"Throughput": 640000}
}`

const sampleOnlineBench = sampleBench + `BenchmarkFeedbackIngest-1  50000000  22.1 ns/op
BenchmarkModelSwap-1  40000  31000 ns/op
BenchmarkTeacherInfer-1  434  553897 ns/op  44032 storage_bytes
BenchmarkStudentInfer-1  712  321442 ns/op  13952 storage_bytes
BenchmarkDistillCycle-1  84  3096250 ns/op
BenchmarkDartInfer-1  951  249812 ns/op  7982 storage_bytes
BenchmarkDartInferQuant-1  1500  161234 ns/op  1995 storage_bytes  84000 B/op  980 allocs/op
BenchmarkQuantRowAccum-1  40000000  29.8 ns/op  0 B/op  0 allocs/op
BenchmarkTabularSwap-1  200000  5100 ns/op
BenchmarkPolicyDecision-1  50000000  21.7 ns/op  0 B/op  0 allocs/op
BenchmarkWireCodec-1  550000  2156 ns/op  0 B/op  0 allocs/op
BenchmarkWireAccessBinary-1  2000000  529.2 ns/op  0 B/op  0 allocs/op
BenchmarkWireAccessJSON-1  150000  8101 ns/op  1969 B/op  45 allocs/op
BenchmarkRouterAccess-1  200000  6012 ns/op  120 B/op  3 allocs/op
BenchmarkDirectAccess-1  400000  2987 ns/op  80 B/op  2 allocs/op
`

func writeServeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOnlineGatePassesWithinTolerance(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFeedbackIngest") ||
		!strings.Contains(out.String(), "BenchmarkModelSwap") {
		t.Fatalf("online benchmarks not checked:\n%s", out.String())
	}
}

func TestOnlineGateFailsOnRegression(t *testing.T) {
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkFeedbackIngest-1  50000000  22.1 ns/op",
		"BenchmarkFeedbackIngest-1  1000000  95.0 ns/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkFeedbackIngest") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestOnlineGateFailsClosedOnMissingBenchmark(t *testing.T) {
	// Input has the matmul grid but neither online benchmark: the serve
	// gate must error rather than degrade to a warning.
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "missing") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestOnlineGateFailsClosedWithoutSection(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, `{"report": {}}`), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "online") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWriteOnlinePreservesOtherKeys(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	code := run("", "", path, "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	updated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(updated)
	for _, want := range []string{
		`"feedback_ingest_ns": 22.1`, `"swap_ns": 31000`, `"generated"`, `"Throughput": 640000`,
		`"policy_decision_ns": 21.7`, `"policy_decision_allocs": 0`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("updated file missing %q:\n%s", want, s)
		}
	}
	// The refreshed file must pass its own gate.
	code = run(writeBaseline(t), path, "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("self-gate exit %d:\n%s", code, out.String())
	}
}

func TestParseBenchStorageMetric(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOnlineBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkStudentInfer@storage_bytes"] != 13952 {
		t.Fatalf("student storage = %v, want 13952", got["BenchmarkStudentInfer@storage_bytes"])
	}
	if got["BenchmarkTeacherInfer@storage_bytes"] != 44032 {
		t.Fatalf("teacher storage = %v, want 44032", got["BenchmarkTeacherInfer@storage_bytes"])
	}
}

func TestStudentGateFailsWhenNotFaster(t *testing.T) {
	// Student infer as slow as the teacher: absolute baselines may still
	// pass (tolerance), but the same-run speedup check must fail.
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkStudentInfer-1  712  321442 ns/op  13952 storage_bytes",
		"BenchmarkStudentInfer-1  712  560000 ns/op  13952 storage_bytes", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 2.0, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL speedup(student vs teacher infer") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDartGateFailsWhenNotFasterThanStudent(t *testing.T) {
	// Dart table inference as slow as the student: absolute baselines may
	// still pass (tolerance), but the same-run dart-beats-student check —
	// the paper's core claim — must fail.
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkDartInfer-1  951  249812 ns/op  7982 storage_bytes",
		"BenchmarkDartInfer-1  951  330000 ns/op  7982 storage_bytes", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 2.0, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL speedup(dart vs student infer") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestStudentGateFailsWhenNotSmaller(t *testing.T) {
	bloated := strings.Replace(sampleOnlineBench,
		"BenchmarkStudentInfer-1  712  321442 ns/op  13952 storage_bytes",
		"BenchmarkStudentInfer-1  712  321442 ns/op  44032 storage_bytes", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(bloated), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL shrink(student vs teacher storage_bytes)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestStudentGateFailsClosedOnMissingStudentBench(t *testing.T) {
	// The student benchmarks disappearing from the input must error, not
	// silently stop gating the tier.
	noStudent := strings.Replace(sampleOnlineBench,
		"BenchmarkStudentInfer-1  712  321442 ns/op  13952 storage_bytes\n", "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(noStudent), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
}

func TestWriteOnlineRefusesPartialInput(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	// Missing BenchmarkModelSwap: must refuse rather than zero the baseline.
	code := run("", "", path, "", "", "", 1.5, 2.0, 5, 3, 4,
		strings.NewReader("BenchmarkFeedbackIngest-1 100 20 ns/op\n"), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
}

func TestPolicyGateFailsOnSingleAlloc(t *testing.T) {
	// ObserveLive runs on every shadow-compared batch: like the binary wire
	// hot path, one allocation against the zero baseline fails with no
	// tolerance, even with ns/op unchanged.
	leaky := strings.Replace(sampleOnlineBench,
		"BenchmarkPolicyDecision-1  50000000  21.7 ns/op  0 B/op  0 allocs/op",
		"BenchmarkPolicyDecision-1  50000000  21.7 ns/op  48 B/op  1 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(leaky), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkPolicyDecision@allocs") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestPolicyGateFailsClosedOnMissingBench(t *testing.T) {
	// BenchmarkPolicyDecision vanishing from bench-ci's input (or its
	// -benchmem column) must error, not silently stop gating the hot path.
	noPolicy := strings.Replace(sampleOnlineBench,
		"BenchmarkPolicyDecision-1  50000000  21.7 ns/op  0 B/op  0 allocs/op\n", "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(noPolicy), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "missing") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestParseBenchAllocsMetric(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOnlineBench))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkWireAccessBinary@allocs"]; v != 0 {
		t.Fatalf("binary allocs = %v, want 0", v)
	}
	if v := got["BenchmarkWireAccessJSON@allocs"]; v != 45 {
		t.Fatalf("json allocs = %v, want 45", v)
	}
	// Repeated names keep the minimum, same as ns/op.
	in := "BenchmarkWireCodec-1 100 2000 ns/op 32 B/op 2 allocs/op\n" +
		"BenchmarkWireCodec-1 100 2100 ns/op 0 B/op 0 allocs/op\n"
	got, err = parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkWireCodec@allocs"]; v != 0 {
		t.Fatalf("min allocs not kept: %v", v)
	}
}

func TestBinaryGatePassesAtBaseline(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"BenchmarkWireCodec", "BenchmarkWireAccessBinary@allocs",
		"speedup(binary vs json replay, recorded)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("wire gate %q not checked:\n%s", want, out.String())
		}
	}
}

func TestBinaryGateFailsOnNsRegression(t *testing.T) {
	// Codec 4x slower than the 2100 ns baseline: beyond 1.5x tolerance.
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkWireCodec-1  550000  2156 ns/op  0 B/op  0 allocs/op",
		"BenchmarkWireCodec-1  550000  9000 ns/op  0 B/op  0 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkWireCodec") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestBinaryGateFailsOnSingleAlloc(t *testing.T) {
	// ns/op unchanged but the hot path picked up allocations: no tolerance
	// applies — one alloc against a zero baseline fails.
	leaky := strings.Replace(sampleOnlineBench,
		"BenchmarkWireAccessBinary-1  2000000  529.2 ns/op  0 B/op  0 allocs/op",
		"BenchmarkWireAccessBinary-1  2000000  529.2 ns/op  48 B/op  1 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(leaky), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkWireAccessBinary@allocs") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestBinaryGateFailsClosedOnMissingWireBench(t *testing.T) {
	// The wire benchmarks vanishing from the input (e.g. -benchmem dropped
	// from bench-ci) must error, not silently stop gating allocations.
	noWire := strings.Replace(sampleOnlineBench,
		"BenchmarkWireCodec-1  550000  2156 ns/op  0 B/op  0 allocs/op\n", "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(noWire), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "wire benchmarks missing") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestBinaryGateFailsClosedWithoutSection(t *testing.T) {
	// Online section present, binary section absent: fail closed.
	noBinary := strings.Replace(sampleServeBaseline, `"binary": {
    "replay_throughput": 3900000, "replay_batch": 64,
    "codec_ns": 2100, "codec_allocs": 0,
    "wire_access_ns": 520, "wire_access_allocs": 0
  },
  `, "", 1)
	if noBinary == sampleServeBaseline {
		t.Fatal("fixture replace failed")
	}
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, noBinary), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"binary"`) {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWireSpeedupGateFailsBelowBar(t *testing.T) {
	// Recorded binary replay only 3x the JSON replay: below the 5x bar.
	slow := strings.Replace(sampleServeBaseline,
		`"replay_throughput": 3900000`, `"replay_throughput": 1920000`, 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, slow), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL speedup(binary vs json replay, recorded)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWireSpeedupFailsClosedWithoutRecordedThroughput(t *testing.T) {
	// A binary section written only by -write-binary (no replay run yet)
	// lacks replay_throughput: the speedup check must error, not pass.
	noReplay := strings.Replace(sampleServeBaseline,
		`"replay_throughput": 3900000, "replay_batch": 64,`, "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, noReplay), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "replay throughputs") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWriteBinaryPreservesReplayAndOtherKeys(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	code := run("", "", "", path, "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	updated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(updated)
	for _, want := range []string{
		`"codec_ns": 2156`, `"wire_access_ns": 529.2`, `"codec_allocs": 0`,
		`"replay_throughput": 3900000`, `"replay_batch": 64`,
		`"feedback_ingest_ns": 20`, `"Throughput": 640000`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("updated file missing %q:\n%s", want, s)
		}
	}
	// The refreshed file must pass its own gate.
	code = run(writeBaseline(t), path, "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("self-gate exit %d:\n%s", code, out.String())
	}
}

func TestRouterGatePassesAtBaseline(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"BenchmarkRouterAccess", "BenchmarkDirectAccess",
		"overhead(routed vs direct access, same run)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("router gate %q not checked:\n%s", want, out.String())
		}
	}
}

func TestRouterGateFailsOnOverhead(t *testing.T) {
	// Routed access 4x the direct access: absolute baselines may pass under a
	// loose tolerance, but the same-run overhead contract (3x) must fail.
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkRouterAccess-1  200000  6012 ns/op  120 B/op  3 allocs/op",
		"BenchmarkRouterAccess-1  200000  12100 ns/op  120 B/op  3 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 5.0, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL overhead(routed vs direct access") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRouterGateFailsClosedOnMissingBench(t *testing.T) {
	// The router benchmarks vanishing from bench-ci's input must error, not
	// silently stop enforcing the overhead contract.
	noRouter := strings.Replace(sampleOnlineBench,
		"BenchmarkRouterAccess-1  200000  6012 ns/op  120 B/op  3 allocs/op\n", "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(noRouter), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "router benchmarks missing") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRouterGateFailsClosedWithoutSection(t *testing.T) {
	noSection := strings.Replace(sampleServeBaseline, `"router": {
    "router_access_ns": 5900, "direct_access_ns": 2950,
    "replay_throughput": 300000
  },
  `, "", 1)
	if noSection == sampleServeBaseline {
		t.Fatal("fixture replace failed")
	}
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, noSection), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"router"`) {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWriteRouterPreservesReplayAndOtherKeys(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	code := run("", "", "", "", path, "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	updated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(updated)
	for _, want := range []string{
		`"router_access_ns": 6012`, `"direct_access_ns": 2987`,
		`"replay_throughput": 300000`, `"codec_ns": 2100`, `"feedback_ingest_ns": 20`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("updated file missing %q:\n%s", want, s)
		}
	}
	// The refreshed file must pass its own gate.
	code = run(writeBaseline(t), path, "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("self-gate exit %d:\n%s", code, out.String())
	}
}

func TestWriteRouterRefusesPartialInput(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	// Missing BenchmarkDirectAccess: must refuse rather than gut the section.
	code := run("", "", "", "", path, "", 1.5, 2.0, 5, 3, 4,
		strings.NewReader("BenchmarkRouterAccess-1 100 6012 ns/op\n"), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
}

func TestWriteBinaryRefusesWithoutBenchmem(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	// Wire benchmarks measured without -benchmem: no allocs columns, so the
	// update must refuse rather than zero the alloc baselines.
	in := "BenchmarkWireCodec-1 550000 2156 ns/op\nBenchmarkWireAccessBinary-1 2000000 529.2 ns/op\n"
	code := run("", "", "", path, "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(in), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "-benchmem") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestWriteRouterBadBaselineFile: every way the baseline file itself can be
// wrong — missing, not JSON, or holding a "router" section that is not an
// object — refuses loudly with exit 2 instead of writing anything.
func TestWriteRouterBadBaselineFile(t *testing.T) {
	in := "BenchmarkRouterAccess-1 100 6012 ns/op\nBenchmarkDirectAccess-1 100 2987 ns/op\n"
	cases := []struct {
		name, contents string
		missing        bool
	}{
		{name: "missing file", missing: true},
		{name: "not json", contents: "{nope"},
		{name: "router not an object", contents: `{"router": 7}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "serve.json")
			if !c.missing {
				if err := os.WriteFile(path, []byte(c.contents), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			var out strings.Builder
			code := run("", "", "", "", path, "", 1.5, 2.0, 5, 3, 4, strings.NewReader(in), &out)
			if code != 2 {
				t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
			}
		})
	}
}

func TestQuantGatePassesAtBaseline(t *testing.T) {
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"BenchmarkDartInferQuant", "BenchmarkQuantRowAccum@allocs",
		"speedup(quant vs float dart infer, same run)",
		"shrink(quant vs float dart storage_bytes)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("quant gate %q not checked:\n%s", want, out.String())
		}
	}
}

func TestQuantGateFailsWhenNotFasterThanFloat(t *testing.T) {
	// Quantized inference as slow as the float tables: absolute baselines may
	// pass under a loose tolerance, but the same-run quant-beats-float check
	// — the tentpole's acceptance bar — must fail.
	slow := strings.Replace(sampleOnlineBench,
		"BenchmarkDartInferQuant-1  1500  161234 ns/op  1995 storage_bytes  84000 B/op  980 allocs/op",
		"BenchmarkDartInferQuant-1  1500  260000 ns/op  1995 storage_bytes  84000 B/op  980 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 2.0, 2.0, 5, 3, 4, strings.NewReader(slow), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL speedup(quant vs float dart infer") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestQuantGateFailsBelowShrink(t *testing.T) {
	// Quantized storage only 3.2x below float (e.g. a float64 side table crept
	// into the quantized hierarchy): below the 4x bar.
	bloated := strings.Replace(sampleOnlineBench,
		"161234 ns/op  1995 storage_bytes",
		"161234 ns/op  2500 storage_bytes", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(bloated), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL shrink(quant vs float dart storage_bytes)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestQuantGateFailsOnRowKernelAlloc(t *testing.T) {
	// The gather-accumulate row kernel picking up a single allocation fails
	// against its zero baseline with no tolerance, even with ns/op unchanged.
	leaky := strings.Replace(sampleOnlineBench,
		"BenchmarkQuantRowAccum-1  40000000  29.8 ns/op  0 B/op  0 allocs/op",
		"BenchmarkQuantRowAccum-1  40000000  29.8 ns/op  64 B/op  1 allocs/op", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(leaky), &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkQuantRowAccum@allocs") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestQuantGateFailsClosedOnMissingBench(t *testing.T) {
	// The quantized benchmarks vanishing from bench-ci's input must error,
	// not silently stop enforcing the int8 acceptance bars.
	noQuant := strings.Replace(sampleOnlineBench,
		"BenchmarkDartInferQuant-1  1500  161234 ns/op  1995 storage_bytes  84000 B/op  980 allocs/op\n", "", 1)
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, sampleServeBaseline), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(noQuant), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "quant benchmarks missing") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestQuantGateFailsClosedWithoutSection(t *testing.T) {
	noSection := strings.Replace(sampleServeBaseline, `"quant": {
    "dart_infer_quant_ns": 160000, "dart_infer_quant_allocs": 980,
    "dart_quant_storage_bytes": 1995,
    "quant_row_ns": 30, "quant_row_allocs": 0
  },
  `, "", 1)
	if noSection == sampleServeBaseline {
		t.Fatal("fixture replace failed")
	}
	var out strings.Builder
	code := run(writeBaseline(t), writeServeBaseline(t, noSection), "", "", "",
		"", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"quant"`) {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestWriteQuantPreservesOtherKeys(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	code := run("", "", "", "", "", path, 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	updated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(updated)
	for _, want := range []string{
		`"dart_infer_quant_ns": 161234`, `"dart_quant_storage_bytes": 1995`,
		`"quant_row_ns": 29.8`, `"quant_row_allocs": 0`,
		`"feedback_ingest_ns": 20`, `"codec_ns": 2100`, `"Throughput": 640000`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("updated file missing %q:\n%s", want, s)
		}
	}
	// The refreshed file must pass its own gate.
	code = run(writeBaseline(t), path, "", "", "", "", 1.5, 2.0, 5, 3, 4, strings.NewReader(sampleOnlineBench), &out)
	if code != 0 {
		t.Fatalf("self-gate exit %d:\n%s", code, out.String())
	}
}

func TestWriteQuantRefusesWithoutBenchmem(t *testing.T) {
	path := writeServeBaseline(t, sampleServeBaseline)
	var out strings.Builder
	// Quant benchmarks measured without -benchmem: no allocs columns, so the
	// update must refuse rather than zero the alloc baselines.
	in := "BenchmarkDartInferQuant-1 1500 161234 ns/op 1995 storage_bytes\nBenchmarkQuantRowAccum-1 40000000 29.8 ns/op\n"
	code := run("", "", "", "", "", path, 1.5, 2.0, 5, 3, 4, strings.NewReader(in), &out)
	if code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "-benchmem") {
		t.Fatalf("output:\n%s", out.String())
	}
}
