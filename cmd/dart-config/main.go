// Command dart-config runs the table configurator (paper Sec. VI-C): given
// prefetcher design constraints τ (latency, cycles) and s (storage, bytes),
// it prints the selected model/table configuration and its analytic cost,
// reproducing the rows of Table VIII.
//
// Usage:
//
//	dart-config [-tau cycles] [-storage bytes] [-history T] [-dout bits]
package main

import (
	"flag"
	"fmt"
	"os"

	"dart/internal/config"
	"dart/internal/dataprep"
)

func main() {
	tau := flag.Int("tau", 100, "latency constraint τ in cycles")
	storage := flag.Int("storage", 1<<20, "storage constraint s in bytes")
	history := flag.Int("history", dataprep.Default().History, "input history length T")
	dout := flag.Int("dout", dataprep.Default().OutputDim(), "delta bitmap width D_O")
	flag.Parse()

	dp := dataprep.Default()
	space := config.DefaultSpace(*history, dp.InputDim(), *dout)
	cand, err := config.Configure(config.Constraints{
		LatencyCycles: *tau, StorageBytes: *storage,
	}, space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, t := cand.Model, cand.Table
	fmt.Printf("Constraints: τ=%d cycles, s=%d bytes\n", *tau, *storage)
	fmt.Printf("Configuration (L, D, H, K, C): (%d, %d, %d, %d, %d)\n", m.L, m.DA, m.H, t.K, t.C)
	fmt.Printf("Latency:  %d cycles\n", cand.Latency)
	fmt.Printf("Storage:  %d bytes (%.1f KB)\n", cand.StorageBytes, float64(cand.StorageBytes)/1024)
	fmt.Printf("Ops:      %d\n", cand.Ops)
	fmt.Printf("\nSource NN (systolic array) for the same structure:\n")
	fmt.Printf("Latency:  %d cycles\n", config.NNLatency(m))
	fmt.Printf("Storage:  %d bytes\n", config.NNStorageBits(m, 32)/8)
	fmt.Printf("Ops:      %d\n", config.NNOps(m))
}
