package dart

// Benchmarks regenerating the paper's tables. Each benchmark prints the
// reproduced rows once and reports the headline quantities as custom metrics
// so `go test -bench` output doubles as the experiment record.

import (
	"fmt"
	"testing"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

// BenchmarkTableIII_SimulationParameters checks the simulator defaults
// against Table III and prints them.
func BenchmarkTableIII_SimulationParameters(b *testing.B) {
	cfg := sim.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	printOnce("tableIII", func() {
		fmt.Printf("\n[Table III] CPU %d-wide OoO, ROB %d | LLC %d MiB %d-way, %d MSHRs, %d-cycle hit | DRAM %d-cycle\n",
			cfg.CoreWidth, cfg.ROBSize, cfg.LLCBlocks*64>>20, cfg.LLCWays,
			cfg.LLCMSHRs, cfg.LLCHitLatency, cfg.DRAMLatency)
	})
	keepBusy(b, float64(cfg.LLCBlocks))
}

// BenchmarkTableIV_TraceStats regenerates the benchmark trace statistics.
func BenchmarkTableIV_TraceStats(b *testing.B) {
	printOnce("tableIV", func() {
		fmt.Printf("\n[Table IV] benchmark trace statistics (%d accesses/app)\n", labAccesses)
		fmt.Printf("%-16s %10s %10s %10s\n", "Application", "#Address", "#Page", "#Delta")
		for _, spec := range trace.Apps() {
			st := trace.Summarize(trace.Generate(spec, labAccesses))
			fmt.Printf("%-16s %10d %10d %10d\n", spec.Name, st.Addresses, st.Pages, st.Deltas)
		}
	})
	for _, spec := range trace.Apps() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var st trace.Stats
			for i := 0; i < b.N; i++ {
				st = trace.Summarize(trace.Generate(spec, labAccesses))
			}
			b.ReportMetric(float64(st.Pages), "pages")
			b.ReportMetric(float64(st.Deltas), "deltas")
		})
	}
}

// BenchmarkTableV_ModelComplexity reproduces the Teacher/Student/DART
// latency-storage-operations comparison from the analytic models.
func BenchmarkTableV_ModelComplexity(b *testing.B) {
	dp := dataprep.Default()
	teacher := config.ModelConfig{T: dp.History, DI: dp.InputDim(), DA: 256, DF: 1024, DO: dp.OutputDim(), H: 8, L: 4}
	student := config.ModelConfig{T: dp.History, DI: dp.InputDim(), DA: 32, DF: 128, DO: dp.OutputDim(), H: 2, L: 1}
	dart := config.Evaluate(student, config.TableConfig{K: 128, C: 2, DataBits: 32})

	tLat, tStore, tOps := config.NNLatency(teacher), config.NNStorageBits(teacher, 32)/8, config.NNOps(teacher)
	sLat, sStore, sOps := config.NNLatency(student), config.NNStorageBits(student, 32)/8, config.NNOps(student)
	printOnce("tableV", func() {
		fmt.Printf("\n[Table V] model complexity (L/cycles, S/bytes, A/ops)\n")
		fmt.Printf("%-8s %3s %4s %2s %5s %3s | %10s %12s %12s\n", "Model", "L", "D", "H", "K", "C", "Latency", "Storage", "Ops")
		fmt.Printf("%-8s %3d %4d %2d %5s %3s | %10d %12d %12d\n", "Teacher", 4, 256, 8, "-", "-", tLat, tStore, tOps)
		fmt.Printf("%-8s %3d %4d %2d %5s %3s | %10d %12d %12d\n", "Student", 1, 32, 2, "-", "-", sLat, sStore, sOps)
		fmt.Printf("%-8s %3d %4d %2d %5d %3d | %10d %12d %12d\n", "DART", 1, 32, 2, 128, 2, dart.Latency, dart.StorageBytes, dart.Ops)
		fmt.Printf("DART vs Teacher: %.0fx faster, %.4f%% ops removed\n",
			float64(tLat)/float64(dart.Latency), 100*(1-float64(dart.Ops)/float64(tOps)))
		fmt.Printf("DART vs Student: %.1fx faster, %.2f%% ops removed\n",
			float64(sLat)/float64(dart.Latency), 100*(1-float64(dart.Ops)/float64(sOps)))
	})
	// Paper: 170x vs teacher, 9.4x vs student; shapes must hold.
	if float64(tLat)/float64(dart.Latency) < 20 {
		b.Fatalf("teacher acceleration too small: %d -> %d", tLat, dart.Latency)
	}
	if float64(sLat)/float64(dart.Latency) < 3 {
		b.Fatalf("student acceleration too small: %d -> %d", sLat, dart.Latency)
	}
	b.ReportMetric(float64(tLat)/float64(dart.Latency), "teacher-speedup")
	b.ReportMetric(float64(sLat)/float64(dart.Latency), "student-speedup")
	keepBusy(b, float64(dart.Latency))
}

// BenchmarkTableVI_DistillationF1 regenerates the teacher / student-without-
// KD / distilled-student F1 comparison per application.
func BenchmarkTableVI_DistillationF1(b *testing.B) {
	var meanT, meanN, meanS float64
	rows := make([][4]string, 0, 8)
	for _, app := range benchApps() {
		l := getLab(b, app)
		meanT += l.art.F1Teacher
		meanN += l.art.F1StudentNoKD
		meanS += l.art.F1Student
		rows = append(rows, [4]string{app,
			fmt.Sprintf("%.3f", l.art.F1Teacher),
			fmt.Sprintf("%.3f", l.art.F1StudentNoKD),
			fmt.Sprintf("%.3f", l.art.F1Student)})
		b.Run(app, func(b *testing.B) {
			b.ReportMetric(getLab(b, app).art.F1Student, "f1-student")
			keepBusy(b, 1)
		})
	}
	n := float64(len(benchApps()))
	meanT, meanN, meanS = meanT/n, meanN/n, meanS/n
	printOnce("tableVI", func() {
		fmt.Printf("\n[Table VI] F1 of teacher and students (with/without KD)\n")
		fmt.Printf("%-16s %8s %8s %8s\n", "Application", "Teacher", "NoKD", "Student")
		for _, r := range rows {
			fmt.Printf("%-16s %8s %8s %8s\n", r[0], r[1], r[2], r[3])
		}
		fmt.Printf("%-16s %8.3f %8.3f %8.3f\n", "Mean", meanT, meanN, meanS)
	})
	b.ReportMetric(meanT, "f1-teacher-mean")
	b.ReportMetric(meanN, "f1-nokd-mean")
	b.ReportMetric(meanS, "f1-student-mean")
	keepBusy(b, meanS)
}

// BenchmarkTableVII_TabularizationF1 regenerates the DART-with/without-fine-
// tuning F1 comparison per application.
func BenchmarkTableVII_TabularizationF1(b *testing.B) {
	// Two regimes: the configured DART tables (K=128-class, fine
	// quantization) and a coarse K=16/C=2 variant where approximation error
	// accumulates across layers and fine-tuning has room to help.
	var meanFT, meanNoFT, meanCFT, meanCNoFT float64
	rows := make([][5]string, 0, 8)
	for _, app := range benchApps() {
		l := getLab(b, app)
		noFT := l.evalF1(l.noFT.Hierarchy)
		meanFT += l.art.F1DART
		meanNoFT += noFT
		meanCFT += l.coarseFT
		meanCNoFT += l.coarseNoFT
		rows = append(rows, [5]string{app,
			fmt.Sprintf("%.3f", noFT), fmt.Sprintf("%.3f", l.art.F1DART),
			fmt.Sprintf("%.3f", l.coarseNoFT), fmt.Sprintf("%.3f", l.coarseFT)})
		b.Run(app, func(b *testing.B) {
			b.ReportMetric(getLab(b, app).art.F1DART, "f1-dart")
			keepBusy(b, 1)
		})
	}
	n := float64(len(benchApps()))
	meanFT, meanNoFT, meanCFT, meanCNoFT = meanFT/n, meanNoFT/n, meanCFT/n, meanCNoFT/n
	printOnce("tableVII", func() {
		fmt.Printf("\n[Table VII] F1 of DART without and with layer fine-tuning\n")
		fmt.Printf("%-16s | %10s %10s | %12s %12s\n",
			"Application", "w/oFT", "DART", "w/oFT(K=16)", "FT(K=16)")
		for _, r := range rows {
			fmt.Printf("%-16s | %10s %10s | %12s %12s\n", r[0], r[1], r[2], r[3], r[4])
		}
		fmt.Printf("%-16s | %10.3f %10.3f | %12.3f %12.3f\n",
			"Mean", meanNoFT, meanFT, meanCNoFT, meanCFT)
	})
	b.ReportMetric(meanNoFT, "f1-noft-mean")
	b.ReportMetric(meanFT, "f1-dart-mean")
	b.ReportMetric(meanCNoFT, "f1-coarse-noft-mean")
	b.ReportMetric(meanCFT, "f1-coarse-ft-mean")
	keepBusy(b, meanFT)
}

// BenchmarkTableVIII_Configurator regenerates the DART-S/DART/DART-L rows.
func BenchmarkTableVIII_Configurator(b *testing.B) {
	dp := dataprep.Default()
	space := config.DefaultSpace(dp.History, dp.InputDim(), dp.OutputDim())
	variants := []struct {
		name    string
		tau     int
		storage int
	}{
		{"DART-S", 60, 30 << 10},
		{"DART", 100, 1 << 20},
		{"DART-L", 200, 4 << 20},
	}
	printOnce("tableVIII", func() {
		fmt.Printf("\n[Table VIII] configurations under design constraints\n")
		fmt.Printf("%-8s %10s %12s | %-18s %8s %12s %8s\n",
			"Variant", "τ/cycles", "s/bytes", "(L,D,H,K,C)", "Lat", "Storage", "Ops")
	})
	for _, v := range variants {
		cand, err := config.Configure(config.Constraints{LatencyCycles: v.tau, StorageBytes: v.storage}, space)
		if err != nil {
			b.Fatalf("%s: %v", v.name, err)
		}
		if cand.Latency > v.tau || cand.StorageBytes > v.storage {
			b.Fatalf("%s violates constraints: %+v", v.name, cand)
		}
		printOnce("tableVIII-"+v.name, func() {
			m, t := cand.Model, cand.Table
			fmt.Printf("%-8s %10d %12d | (%d,%2d,%d,%4d,%d) %11d %12d %8d\n",
				v.name, v.tau, v.storage, m.L, m.DA, m.H, t.K, t.C,
				cand.Latency, cand.StorageBytes, cand.Ops)
		})
		b.Run(v.name, func(b *testing.B) {
			var c config.Candidate
			for i := 0; i < b.N; i++ {
				c, _ = config.Configure(config.Constraints{LatencyCycles: v.tau, StorageBytes: v.storage}, space)
			}
			b.ReportMetric(float64(c.Latency), "latency-cycles")
			b.ReportMetric(float64(c.StorageBytes), "storage-bytes")
		})
	}
}

// BenchmarkTableIX_PrefetcherInventory prints the evaluated prefetchers with
// their storage and latency properties.
func BenchmarkTableIX_PrefetcherInventory(b *testing.B) {
	dp := dataprep.Default()
	bo := prefetch.NewBestOffset(labDegree)
	isb := prefetch.NewISB(labDegree)
	student := config.ModelConfig{T: dp.History, DI: dp.InputDim(), DA: 32, DF: 128, DO: dp.OutputDim(), H: 2, L: 1}
	dart := config.Evaluate(student, config.TableConfig{K: 128, C: 2, DataBits: 32})
	voyLat := config.LSTMLatency(dp.InputDim(), 32, dp.History, dp.OutputDim())
	printOnce("tableIX", func() {
		fmt.Printf("\n[Table IX] prefetcher inventory\n")
		fmt.Printf("%-13s %12s %10s  %s\n", "Prefetcher", "Storage/B", "Latency", "Mechanism")
		fmt.Printf("%-13s %12d %10d  %s\n", bo.Name(), bo.StorageBytes(), bo.Latency(), "spatial locality (table)")
		fmt.Printf("%-13s %12d %10d  %s\n", isb.Name(), isb.StorageBytes(), isb.Latency(), "temporal locality (table)")
		fmt.Printf("%-13s %12d %10d  %s\n", "TransFetch", config.NNStorageBits(student, 32)/8, config.NNLatency(student), "attention (ML)")
		fmt.Printf("%-13s %12d %10d  %s\n", "Voyager", config.LSTMParams(dp.InputDim(), 32, dp.OutputDim())*4, voyLat, "LSTM (ML)")
		fmt.Printf("%-13s %12d %10d  %s\n", "DART", dart.StorageBytes, dart.Latency, "attention (table+ML)")
	})
	// The paper's ordering: NN latencies dwarf the table-based ones.
	if voyLat < config.NNLatency(student) {
		b.Fatal("LSTM should be slower than the attention student (serial recurrence)")
	}
	if dart.Latency > bo.Latency()*3 {
		b.Fatalf("DART latency %d not comparable to BO's %d", dart.Latency, bo.Latency())
	}
	keepBusy(b, float64(dart.Latency))
}
