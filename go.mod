module dart

go 1.24
