// Package dart is a from-scratch Go reproduction of "Attention, Distillation,
// and Tabularization: Towards Practical Neural Network-Based Prefetching"
// (Zhang, Gupta, Kannan, Prasanna — IPDPS 2024, arXiv:2401.06362).
//
// DART converts an attention-based memory-access prediction model into a
// hierarchy of lookup tables: a large attention model is trained for
// accuracy, distilled into a compact student that satisfies prefetcher
// latency/storage constraints, and then tabularized layer by layer with
// product-quantization kernels and per-layer fine-tuning, eliminating the
// matrix multiplications from inference.
//
// The repository layout:
//
//	internal/mat       dense matrix/tensor substrate
//	internal/nn        neural-network library (transformer, LSTM, Adam, losses)
//	internal/pq        product quantization (k-means + LSH encoders, dot tables)
//	internal/tabular   tabularization kernels, Algorithm 1, complexity model
//	internal/kd        multi-label knowledge distillation
//	internal/dataprep  address segmentation and delta-bitmap labels
//	internal/trace     synthetic SPEC-like LLC trace generators
//	internal/sim       trace-driven LLC/DRAM simulator with prefetcher latency
//	internal/prefetch  BO, ISB, and NN/table prefetcher wrappers
//	internal/config    table configurator and NN complexity models
//	internal/core      the end-to-end DART pipeline
//
// The benchmark files in this directory regenerate every table and figure of
// the paper's evaluation section; see EXPERIMENTS.md for the index and
// paper-vs-measured comparison.
package dart
