// Package dart is a from-scratch Go reproduction of "Attention, Distillation,
// and Tabularization: Towards Practical Neural Network-Based Prefetching"
// (Zhang, Gupta, Kannan, Prasanna — IPDPS 2024, arXiv:2401.06362).
//
// DART converts an attention-based memory-access prediction model into a
// hierarchy of lookup tables: a large attention model is trained for
// accuracy, distilled into a compact student that satisfies prefetcher
// latency/storage constraints, and then tabularized layer by layer with
// product-quantization kernels and per-layer fine-tuning, eliminating the
// matrix multiplications from inference.
//
// The repository layout:
//
//	internal/mat       dense matrix/tensor substrate with a parallel blocked
//	                   matmul engine (AVX2+FMA micro-kernel on amd64)
//	internal/par       shared worker pool behind every parallel kernel
//	internal/nn        neural-network library (transformer, LSTM, Adam, losses)
//	internal/pq        product quantization (k-means + LSH encoders, dot tables,
//	                   batched encoding)
//	internal/tabular   tabularization kernels, Algorithm 1, complexity model,
//	                   batched hierarchy queries
//	internal/kd        multi-label knowledge distillation
//	internal/dataprep  address segmentation and delta-bitmap labels
//	internal/trace     synthetic SPEC-like LLC trace generators
//	internal/sim       trace-driven LLC/DRAM simulator with prefetcher latency
//	                   and a concurrent multi-trace driver
//	internal/prefetch  BO, ISB, and NN/table prefetcher wrappers
//	internal/config    table configurator and NN complexity models
//	internal/core      the end-to-end DART pipeline and evaluation sweeps
//
// Parallelism model: every hot path — blocked matmul, batched PQ encoding
// (pq.EncodeBatch, behind the linear table kernels), batched hierarchy
// queries, multi-trace simulation sweeps — fans out through the worker pool
// in internal/par (tunable via DART_MAX_WORKERS or par.SetMaxWorkers). Parallel kernels partition work in fixed blocks with
// serial in-block reduction order, so results are bit-identical for any
// worker count; see internal/par/README.md for the determinism guarantee and
// BENCH_par.json for measured speedups.
//
// The benchmark files in this directory regenerate every table and figure of
// the paper's evaluation section; see EXPERIMENTS.md for the index and
// paper-vs-measured comparison.
package dart
