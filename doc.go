// Package dart is a from-scratch Go reproduction of "Attention, Distillation,
// and Tabularization: Towards Practical Neural Network-Based Prefetching"
// (Zhang, Gupta, Kannan, Prasanna — IPDPS 2024, arXiv:2401.06362).
//
// DART converts an attention-based memory-access prediction model into a
// hierarchy of lookup tables: a large attention model is trained for
// accuracy, distilled into a compact student that satisfies prefetcher
// latency/storage constraints, and then tabularized layer by layer with
// product-quantization kernels and per-layer fine-tuning, eliminating the
// matrix multiplications from inference.
//
// The repository layout:
//
//	internal/mat       dense matrix/tensor substrate with a parallel blocked
//	                   matmul engine (AVX2+FMA micro-kernel on amd64)
//	internal/par       shared worker pool behind every parallel kernel
//	internal/nn        neural-network library (transformer, LSTM, Adam, losses)
//	internal/pq        product quantization (k-means + LSH encoders, dot tables,
//	                   batched encoding)
//	internal/tabular   tabularization kernels, Algorithm 1, complexity model,
//	                   batched hierarchy queries
//	internal/kd        multi-label knowledge distillation
//	internal/dataprep  address segmentation and delta-bitmap labels
//	internal/trace     synthetic SPEC-like LLC trace generators plus the
//	                   workload zoo: adversarial scenario generators (pointer
//	                   chasing, random graph traversal, zipfian key-value,
//	                   phase-shifting delta regimes) behind one seeded,
//	                   deterministic Stream interface and a name-indexed
//	                   workload registry
//	internal/sim       trace-driven LLC/DRAM simulator with prefetcher latency,
//	                   an incremental stepper (sim.Sim) with online-feedback
//	                   hooks, a configurable two-level hierarchy (private L2
//	                   in front of the shared LLC with inclusion and
//	                   prefetch-fill policies; single-level stays the
//	                   bit-identical degenerate config), and a concurrent
//	                   multi-trace driver
//	internal/metrics   F1 measures plus latency histograms with exact
//	                   percentiles for the serving engine
//	internal/prefetch  BO, ISB, stride, and NN/table prefetcher wrappers, with
//	                   a name-indexed factory registry
//	internal/config    table configurator and NN complexity models
//	internal/core      the end-to-end DART pipeline and evaluation sweeps
//	internal/serve     online multi-session serving engine: sharded session
//	                   map, per-session actors with bounded inboxes and
//	                   backpressure, admission batchers coalescing model
//	                   queries across sessions (Hierarchy.QueryBatch for the
//	                   static tables, a versioned nn forward pass for the
//	                   online model) with weighted-round-robin fair-share
//	                   admission across tenants, a dual-protocol wire server
//	                   (line-JSON for debugging, DARTWIRE1 binary framing
//	                   with a zero-alloc hot path for production — see
//	                   docs/PROTOCOL.md), a synchronous client for both
//	                   encodings, a QPS-paced replay driver with soak mode
//	                   and selectable transport, and a mixed-tenant
//	                   scenario-matrix replay (per-tenant workload, serving
//	                   class, weight, and cache hierarchy)
//	internal/online    continual learning: per-session lock-free feedback
//	                   rings, streaming example assembly, duty-cycled
//	                   nn.Trainer fine-tuning of a shadow model, an online
//	                   teacher→student distiller (kd.Loss over the same
//	                   stream), a duty-cycled tabularizer re-tabularizing
//	                   the published student into hot-swappable table
//	                   hierarchies (the "dart" class), and a generic
//	                   versioned store with independent serving classes
//	                   (atomic snapshots, CRC-validated checkpoints for nn
//	                   parameters and serialized table hierarchies alike)
//	                   hot-swapped into serving with no batch ever mixing
//	                   model versions
//
// Parallelism model: every hot path — blocked matmul, batched PQ encoding
// (pq.EncodeBatch, behind the linear table kernels), batched hierarchy
// queries, multi-trace simulation sweeps — fans out through the worker pool
// in internal/par (tunable via DART_MAX_WORKERS or par.SetMaxWorkers). Parallel kernels partition work in fixed blocks with
// serial in-block reduction order, so results are bit-identical for any
// worker count; see internal/par/README.md for the determinism guarantee and
// BENCH_par.json for measured speedups.
//
// Serving model: cmd/dart-serve runs internal/serve as a long-running daemon
// (or in -replay mode for continuous-load evaluation). Sessions — one per
// simulated core or tenant — own their prefetcher state and an incremental
// sim.Sim; served results are bit-identical to offline sim.Run over the same
// records, so online numbers compare directly against the paper's offline
// evaluation. With -online the daemon also runs internal/online's continual-
// learning loop: prefetch-outcome feedback from live sessions fine-tunes a
// shadow model that is published as immutable versioned snapshots
// (CRC-validated checkpoints under -checkpoint-dir, recovered on restart)
// and hot-swapped between inference batches with zero downtime; the wire
// protocol gains model/swap/rollback verbs with a model-class selector.
// With -student the daemon also serves the paper's deployment model (Sec.
// VI-D): a compact student continually distilled from the published teacher
// with the T-Sigmoid/Bernoulli-KL loss, published as an independent
// "student" model class, served with teacher fallback and an optional A/B
// shadow-compare mode reporting student-vs-teacher agreement. With -dart
// the pipeline closes end to end — teach → distill → tabularize → serve —
// online: a duty-cycled tabularizer re-tabularizes the published student
// and publishes the table hierarchy as the versioned "dart" class, the
// artifact the paper actually deploys, hot-swapped between batches like the
// model classes and measurably faster than the student it derives from
// (BenchmarkDartInfer, gated in CI). Sessions select their serving class at
// open per tenant ("online"/"student"/"dart"), and the classes verb lists
// every class's versions and modelled cost; dart-train -distill bridges
// offline distillation and tabularization into the same checkpoint
// directories. The server speaks two wire protocols, negotiated per
// connection: line-delimited JSON for debugging and the DARTWIRE1 binary
// framing (length-prefixed, CRC-guarded, varint-packed access records)
// whose steady-state serve path allocates nothing per access — a guarantee
// CI enforces through allocs/op benchmark gates (cmd/dart-benchcheck),
// alongside a docs gate (cmd/dart-doccheck) that keeps every wire verb
// documented. See docs/ARCHITECTURE.md for the pipeline map,
// docs/PROTOCOL.md for both wire specifications,
// internal/serve/README.md for the engine internals,
// internal/online/README.md for the feedback→train→publish→swap
// lifecycle, its serving classes, and version-consistency invariants, and
// BENCH_serve.json for the measured serving baselines (JSON and binary).
//
// The benchmark files in this directory regenerate every table and figure of
// the paper's evaluation section; see EXPERIMENTS.md for the index and
// paper-vs-measured comparison.
package dart
