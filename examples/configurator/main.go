// Configurator example: sweeps prefetcher design constraints through the
// table configurator (Sec. VI-C), reproducing the structure of Table VIII —
// tighter constraints yield smaller, faster table hierarchies (DART-S),
// looser ones yield larger, more accurate ones (DART-L).
package main

import (
	"fmt"

	"dart/internal/config"
	"dart/internal/dataprep"
)

func main() {
	dp := dataprep.Default()
	space := config.DefaultSpace(dp.History, dp.InputDim(), dp.OutputDim())
	fmt.Printf("design space: %d candidates\n\n", len(space))
	fmt.Printf("%-10s %12s %12s | %-22s %10s %12s %8s\n",
		"Variant", "τ (cycles)", "s (bytes)", "Config (L,D,H,K,C)", "Lat", "Storage", "Ops")
	for _, row := range []struct {
		name    string
		tau     int
		storage int
	}{
		{"DART-S", 60, 30 << 10},
		{"DART", 100, 1 << 20},
		{"DART-L", 200, 4 << 20},
	} {
		cand, err := config.Configure(config.Constraints{
			LatencyCycles: row.tau, StorageBytes: row.storage,
		}, space)
		if err != nil {
			fmt.Printf("%-10s %12d %12d | infeasible: %v\n", row.name, row.tau, row.storage, err)
			continue
		}
		m, t := cand.Model, cand.Table
		fmt.Printf("%-10s %12d %12d | (%d,%2d,%d,%4d,%d) %13d %11.1fK %8d\n",
			row.name, row.tau, row.storage,
			m.L, m.DA, m.H, t.K, t.C,
			cand.Latency, float64(cand.StorageBytes)/1024, cand.Ops)
	}
}
