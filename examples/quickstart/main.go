// Quickstart: the smallest end-to-end DART run. Generates a synthetic LLC
// trace, runs the full pipeline (teacher → configurator → distillation →
// tabularization), and uses the resulting table hierarchy to predict future
// address deltas for one access history.
package main

import (
	"fmt"
	"log"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/trace"
)

func main() {
	// 1. A workload: the streaming 462.libquantum stand-in.
	spec, _ := trace.AppByName("libquantum")
	recs := trace.Generate(spec, 8000)
	fmt.Printf("trace: %d accesses of %s\n", len(recs), spec.Name)

	// 2. The full pipeline under a 100-cycle / 1-MB design constraint.
	art, err := core.BuildDART(recs, core.Options{
		Constraints:   config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20},
		TeacherEpochs: 5,
		FineTune:      true,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, t := art.Chosen.Model, art.Chosen.Table
	fmt.Printf("configured predictor: L=%d D=%d H=%d K=%d C=%d (%d cycles, %.0f KB)\n",
		m.L, m.DA, m.H, t.K, t.C, art.Chosen.Latency, float64(art.Chosen.StorageBytes)/1024)
	fmt.Printf("F1: teacher %.3f, student %.3f, DART tables %.3f\n",
		art.F1Teacher, art.F1Student, art.F1DART)

	// 3. Predict with the table hierarchy directly: take a test sample and
	// list the deltas whose logits are positive.
	x := art.Test.X.Sample(0)
	logits := art.Tables.Hierarchy.Query(x)
	fmt.Print("predicted deltas for the first test history: ")
	for bit, z := range logits.Row(0) {
		if z > 0 {
			fmt.Printf("%+d ", art.Opt.Data.BitToDelta(bit))
		}
	}
	fmt.Println()
}
