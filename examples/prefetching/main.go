// Prefetching example: the Figs. 12-14 experiment on one workload. Trains
// DART, then simulates the trace under the baseline prefetchers and DART,
// printing accuracy / coverage / IPC improvement. The headline effect to look
// for: the ideal (zero-latency) NN prefetcher wins on raw accuracy, but once
// realistic inference latency is modelled the NN prefetcher collapses while
// DART keeps most of the benefit at rule-based-prefetcher latency.
package main

import (
	"fmt"
	"log"

	"dart/internal/config"
	"dart/internal/core"
	"dart/internal/kd"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

func main() {
	spec, _ := trace.AppByName("410.bwaves")
	recs := trace.Generate(spec, 12000)

	kdc := kd.DefaultConfig()
	kdc.Epochs = 6
	art, err := core.BuildDART(recs, core.Options{
		Constraints:   config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20},
		TeacherEpochs: 6,
		KD:            kdc,
		FineTune:      true,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	const degree = 4
	cfg := sim.DefaultConfig()
	base := sim.Run(recs, sim.NoPrefetcher{}, cfg)
	fmt.Printf("workload %s: baseline IPC %.3f, %d LLC misses\n\n",
		spec.Name, base.IPC, base.DemandMisses)
	fmt.Printf("%-14s %9s %9s %9s %10s %10s\n",
		"Prefetcher", "Acc", "Cov", "IPCimp", "Lat(cyc)", "Storage")
	for _, pf := range []sim.Prefetcher{
		prefetch.NewBestOffset(degree),
		prefetch.NewISB(degree),
		prefetch.NewStride(degree),
		art.Prefetcher("DART", degree),
		art.StudentPrefetcher("TransFetch", degree, false),
		art.StudentPrefetcher("TransFetch-I", degree, true),
	} {
		res := sim.Run(recs, pf, cfg)
		fmt.Printf("%-14s %8.1f%% %8.1f%% %8.1f%% %10d %10d\n",
			pf.Name(), res.Accuracy()*100, sim.Coverage(base, res)*100,
			sim.IPCImprovement(base, res)*100, pf.Latency(), pf.StorageBytes())
	}
}
