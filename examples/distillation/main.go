// Distillation example: reproduces the Table VI comparison on one workload —
// a large teacher, a student trained from scratch, and the same student
// trained with the paper's multi-label knowledge distillation (T-Sigmoid +
// Bernoulli-KL soft loss). Expect the distilled student to recover most of
// the teacher's F1 and beat the from-scratch student.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dart/internal/core"
	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/nn"
	"dart/internal/trace"
)

func main() {
	spec, _ := trace.AppByName("433.milc")
	recs := trace.Generate(spec, 6000)
	dcfg := dataprep.Default()
	ds, err := dataprep.Build(recs, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.75)
	rng := rand.New(rand.NewSource(7))

	// Teacher: unconstrained accuracy-first model.
	teacher := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: dcfg.History, DIn: dcfg.InputDim(), DModel: 64, DFF: 128,
		DOut: dcfg.OutputDim(), Heads: 4, Layers: 2,
	}, rng)
	tr := nn.NewTrainer(teacher, nn.NewAdam(2e-3), 32, rng)
	for e := 0; e < 10; e++ {
		tr.TrainEpoch(train.X, train.Y, nn.BCEWithLogits)
	}

	studentCfg := nn.TransformerConfig{
		T: dcfg.History, DIn: dcfg.InputDim(), DModel: 16, DFF: 32,
		DOut: dcfg.OutputDim(), Heads: 2, Layers: 1,
	}

	// Student without KD: plain BCE training.
	plain := nn.NewTransformerPredictor(studentCfg, rand.New(rand.NewSource(8)))
	trPlain := nn.NewTrainer(plain, nn.NewAdam(1e-3), 32, rng)
	for e := 0; e < 14; e++ {
		trPlain.TrainEpoch(train.X, train.Y, nn.BCEWithLogits)
	}

	// Student with KD (Eq. 25: λ-weighted KL + BCE).
	distilled := nn.NewTransformerPredictor(studentCfg, rand.New(rand.NewSource(8)))
	d := kd.NewDistiller(teacher, distilled, kd.Config{
		Lambda: 0.7, Temperature: 2, Epochs: 14,
	}, rng)
	d.Run(train.X, train.Y)

	fmt.Printf("%-20s %8s (on %s, %d train / %d test samples)\n",
		"Model", "F1", spec.Name, train.X.N, test.X.N)
	fmt.Printf("%-20s %8.3f  (%d params)\n", "Teacher",
		core.EvaluateModelF1(teacher, test), nn.ParamCount(teacher))
	fmt.Printf("%-20s %8.3f  (%d params)\n", "Student w/o KD",
		core.EvaluateModelF1(plain, test), nn.ParamCount(plain))
	fmt.Printf("%-20s %8.3f  (%d params)\n", "Student (KD)",
		core.EvaluateModelF1(distilled, test), nn.ParamCount(distilled))
}
