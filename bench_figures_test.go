package dart

// Benchmarks regenerating the paper's figures (7-14) as printed data series.

import (
	"fmt"
	"math/rand"
	"testing"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// BenchmarkFig7_AccessPatterns prints per-app pattern summaries (the data
// behind the paper's scatter visualisation): page spread and delta spread of
// consecutive accesses.
func BenchmarkFig7_AccessPatterns(b *testing.B) {
	printOnce("fig7", func() {
		fmt.Printf("\n[Fig 7] memory access pattern summary (%d accesses/app)\n", labAccesses)
		fmt.Printf("%-16s %10s %10s %14s\n", "Application", "#Page", "#Delta", "delta/access")
		for _, spec := range trace.Apps() {
			st := trace.Summarize(trace.Generate(spec, labAccesses))
			fmt.Printf("%-16s %10d %10d %14.3f\n",
				spec.Name, st.Pages, st.Deltas, float64(st.Deltas)/float64(st.Accesses))
		}
	})
	keepBusy(b, 1)
}

// fig89Apps spans the pattern spectrum for the K/C sweeps: a pure stream
// (insensitive), a mixed app, and the two quantization-sensitive apps.
func fig89Apps() []string {
	return []string{"462.libquantum", "602.gcc", "433.milc", "621.wrf"}
}

// retab tabularizes an app's student with an explicit table config (memoized).
func retab(b *testing.B, app string, k, c int, ft bool) float64 {
	key := fmt.Sprintf("retab/%s/%d/%d/%v", app, k, c, ft)
	return memoF1(key, func() float64 {
		l := getLab(b, app)
		fit := l.art.Train.X
		if fit.N > 256 {
			fit = fit.Gather(rand.New(rand.NewSource(1)).Perm(fit.N)[:256])
		}
		res := tabular.Tabularize(l.art.Student, fit, tabular.Config{
			Kernel:   tabular.KernelConfig{K: k, C: c, DataBits: 32},
			FineTune: ft,
			Seed:     1,
		})
		return l.evalF1(res.Hierarchy)
	})
}

// BenchmarkFig8_F1VersusK sweeps the prototype count (paper: K=16…1024,
// larger K recovers F1).
func BenchmarkFig8_F1VersusK(b *testing.B) {
	ks := []int{16, 64, 256}
	for _, app := range fig89Apps() {
		var series []float64
		for _, k := range ks {
			series = append(series, retab(b, app, k, 2, false))
		}
		app := app
		printOnce("fig8-"+app, func() {
			fmt.Printf("\n[Fig 8] %s F1 vs K (C=2, no FT): ", app)
			for i, k := range ks {
				fmt.Printf("K=%d:%.3f ", k, series[i])
			}
			fmt.Println()
		})
		b.Run(app, func(b *testing.B) {
			b.ReportMetric(series[0], "f1-k16")
			b.ReportMetric(series[len(series)-1], "f1-k256")
			keepBusy(b, series[0])
		})
		// Shape: the largest K must not lose to the smallest by a margin.
		if series[len(series)-1] < series[0]-0.05 {
			b.Fatalf("%s: F1 degraded with K: %v", app, series)
		}
	}
}

// BenchmarkFig9_F1VersusC sweeps the subspace count (paper: modest gains for
// larger C).
func BenchmarkFig9_F1VersusC(b *testing.B) {
	cs := []int{1, 2, 4}
	for _, app := range fig89Apps() {
		var series []float64
		for _, c := range cs {
			series = append(series, retab(b, app, 64, c, false))
		}
		app := app
		printOnce("fig9-"+app, func() {
			fmt.Printf("\n[Fig 9] %s F1 vs C (K=64, no FT): ", app)
			for i, c := range cs {
				fmt.Printf("C=%d:%.3f ", c, series[i])
			}
			fmt.Println()
		})
		b.Run(app, func(b *testing.B) {
			b.ReportMetric(series[0], "f1-c1")
			b.ReportMetric(series[len(series)-1], "f1-c4")
			keepBusy(b, series[0])
		})
		if series[len(series)-1] < series[0]-0.1 {
			b.Fatalf("%s: F1 collapsed with C: %v", app, series)
		}
	}
}

// BenchmarkFig10_LatencyStorage regenerates the latency/storage scaling
// curves from the analytic model: latency linear in log K and log C, storage
// exponential.
func BenchmarkFig10_LatencyStorage(b *testing.B) {
	dp := dataprep.Default()
	m := config.ModelConfig{T: dp.History, DI: dp.InputDim(), DA: 32, DF: 128, DO: dp.OutputDim(), H: 2, L: 1}
	printOnce("fig10", func() {
		fmt.Printf("\n[Fig 10] latency/storage vs K (C=2) and vs C (K=128)\n")
		fmt.Printf("%8s %12s %14s\n", "K", "Lat/cycles", "Storage/KB")
		for _, k := range []int{16, 32, 64, 128, 256, 512, 1024} {
			cand := config.Evaluate(m, config.TableConfig{K: k, C: 2, DataBits: 32})
			fmt.Printf("%8d %12d %14.1f\n", k, cand.Latency, float64(cand.StorageBytes)/1024)
		}
		fmt.Printf("%8s %12s %14s\n", "C", "Lat/cycles", "Storage/KB")
		for _, c := range []int{1, 2, 4, 8} {
			cand := config.Evaluate(m, config.TableConfig{K: 128, C: c, DataBits: 32})
			fmt.Printf("%8d %12d %14.1f\n", c, cand.Latency, float64(cand.StorageBytes)/1024)
		}
	})
	// Shape checks: latency linear in log K (constant increments), storage
	// superlinear in K.
	l16 := config.Evaluate(m, config.TableConfig{K: 16, C: 2}).Latency
	l64 := config.Evaluate(m, config.TableConfig{K: 64, C: 2}).Latency
	l256 := config.Evaluate(m, config.TableConfig{K: 256, C: 2}).Latency
	if (l64 - l16) != (l256 - l64) {
		b.Fatalf("latency not linear in log K: %d, %d, %d", l16, l64, l256)
	}
	s16 := config.Evaluate(m, config.TableConfig{K: 16, C: 2, DataBits: 32}).StorageBytes
	s256 := config.Evaluate(m, config.TableConfig{K: 256, C: 2, DataBits: 32}).StorageBytes
	if s256 < s16*8 {
		b.Fatalf("storage not growing fast in K: %d -> %d", s16, s256)
	}
	keepBusy(b, float64(l256))
}

// BenchmarkFig11_CosineSimilarity regenerates the layer-wise cosine
// similarity comparison between DART with and without fine-tuning.
func BenchmarkFig11_CosineSimilarity(b *testing.B) {
	// The coarse (K=16) regime is where errors accumulate across layers and
	// fine-tuning visibly lifts the similarity of the layers near the output
	// — the paper's Fig. 11 effect. The configured DART tables quantize so
	// finely that both variants sit at ~0.999.
	app := "621.wrf"
	l := getLab(b, app)
	ft, noFT := l.coarseFTRes, l.coarseNoFTRes
	printOnce("fig11", func() {
		fmt.Printf("\n[Fig 11] %s layer-wise cosine similarity at K=16 (tabular vs NN)\n", app)
		fmt.Printf("%-28s %10s %10s\n", "Layer", "w/o FT", "DART")
		for i, name := range ft.LayerNames {
			fmt.Printf("%-28s %10.3f %10.3f\n", name, noFT.Cosine[i], ft.Cosine[i])
		}
	})
	last := len(ft.Cosine) - 1
	b.ReportMetric(noFT.Cosine[last], "cos-noft-final")
	b.ReportMetric(ft.Cosine[last], "cos-ft-final")
	// Fine-tuning must not make the final layer meaningfully worse.
	if ft.Cosine[last] < noFT.Cosine[last]-0.05 {
		b.Fatalf("fine-tuning degraded final cosine: %.3f -> %.3f",
			noFT.Cosine[last], ft.Cosine[last])
	}
	keepBusy(b, ft.Cosine[last])
}

// figSim prints one prefetching figure (accuracy, coverage, or IPC).
func figSim(b *testing.B, key, title string, get func(simRow) float64) {
	apps := benchApps()
	perPF := map[string][]float64{}
	var order []string
	for _, app := range apps {
		l := getLab(b, app)
		for _, row := range l.simLab() {
			if _, ok := perPF[row.name]; !ok {
				order = append(order, row.name)
			}
			perPF[row.name] = append(perPF[row.name], get(row))
		}
	}
	printOnce(key, func() {
		fmt.Printf("\n[%s]\n%-16s", title, "Application")
		for _, pf := range order {
			fmt.Printf(" %12s", pf)
		}
		fmt.Println()
		for i, app := range apps {
			fmt.Printf("%-16s", app)
			for _, pf := range order {
				fmt.Printf(" %12s", pct(perPF[pf][i]))
			}
			fmt.Println()
		}
		fmt.Printf("%-16s", "Mean")
		for _, pf := range order {
			var s float64
			for _, v := range perPF[pf] {
				s += v
			}
			fmt.Printf(" %12s", pct(s/float64(len(apps))))
		}
		fmt.Println()
	})
	for _, pf := range order {
		var s float64
		for _, v := range perPF[pf] {
			s += v
		}
		mean := s / float64(len(apps))
		pf := pf
		b.Run(pf, func(b *testing.B) {
			b.ReportMetric(mean*100, "mean-pct")
			keepBusy(b, mean)
		})
	}
}

// BenchmarkFig12_PrefetchAccuracy regenerates the prefetch accuracy figure.
func BenchmarkFig12_PrefetchAccuracy(b *testing.B) {
	figSim(b, "fig12", "Fig 12: prefetch accuracy", func(r simRow) float64 { return r.accuracy })
}

// BenchmarkFig13_PrefetchCoverage regenerates the prefetch coverage figure.
func BenchmarkFig13_PrefetchCoverage(b *testing.B) {
	figSim(b, "fig13", "Fig 13: prefetch coverage", func(r simRow) float64 { return r.coverage })
}

// BenchmarkFig14_IPCImprovement regenerates the IPC improvement figure.
func BenchmarkFig14_IPCImprovement(b *testing.B) {
	figSim(b, "fig14", "Fig 14: IPC improvement", func(r simRow) float64 { return r.ipcImp })
}
