package pq

import (
	"fmt"

	"dart/internal/mat"
	"dart/internal/par"
)

// encodeGrain is the minimum number of rows a worker takes per chunk; a
// single row encode is cheap, so tiny batches stay on the calling goroutine.
const encodeGrain = 16

// EncodeBatch encodes every row of x with enc, returning one index slice per
// row (all backed by a single allocation). Rows are independent, so the
// batch fans out across the shared worker pool; each row's encoding is
// exactly what EncodeRow produces, for any worker count.
func EncodeBatch(enc Encoder, x *mat.Matrix) [][]int {
	c := enc.C()
	if d := enc.C() * enc.SubDim(); x.Cols != d {
		panic(fmt.Sprintf("pq: EncodeBatch on %d-dim rows, encoder expects %d", x.Cols, d))
	}
	flat := make([]int, x.Rows*c)
	out := make([][]int, x.Rows)
	for i := range out {
		out[i] = flat[i*c : (i+1)*c : (i+1)*c]
	}
	par.For(x.Rows, encodeGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			enc.EncodeRow(x.Row(i), out[i])
		}
	})
	return out
}

// QueryBatch approximates x[i] · b for every row of x in one batched pass:
// encode + table aggregation per row, fanned across the worker pool.
// Results are bit-identical to calling Query row by row.
func (t *DotTable) QueryBatch(x *mat.Matrix) []float64 {
	if d := t.enc.C() * t.enc.SubDim(); x.Cols != d {
		panic(fmt.Sprintf("pq: QueryBatch on %d-dim rows, table expects %d", x.Cols, d))
	}
	out := make([]float64, x.Rows)
	c := t.enc.C()
	par.For(x.Rows, encodeGrain, func(lo, hi int) {
		idx := make([]int, c)
		for i := lo; i < hi; i++ {
			t.enc.EncodeRow(x.Row(i), idx)
			out[i] = t.QueryEncoded(idx)
		}
	})
	return out
}
