// Package pq implements product quantization (paper Sec. II-B): vectors are
// split into C subspaces, K prototypes are learned per subspace (Eq. 5), dot
// products against fixed weights are precomputed into tables (Eq. 6), and
// queries become encode → lookup → aggregate (Eqs. 7-8).
//
// Two encoders are provided: an exact nearest-prototype encoder (k-means
// prototypes, argmin assignment) and a locality-sensitive-hashing encoder
// whose sign-bit hashing costs O(log K) comparisons per subspace, matching
// the latency model the paper adopts from MADDNESS.
package pq

import (
	"math"
	"math/rand"
)

// KMeans clusters rows of x (n rows, dim d, flattened row-major) into k
// centers using k-means++ seeding and Lloyd iterations. It returns the
// centers flattened [k*d] and the final assignment of each row.
func KMeans(x []float64, n, d, k, iters int, rng *rand.Rand) ([]float64, []int) {
	if n == 0 || d == 0 || k <= 0 {
		panic("pq: KMeans with empty input or k<=0")
	}
	centers := make([]float64, k*d)
	// k-means++ seeding.
	first := rng.Intn(n)
	copy(centers[:d], x[first*d:(first+1)*d])
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(x[i*d:(i+1)*d], centers[:d])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range minDist {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			var acc float64
			for i, v := range minDist {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centers[c*d:(c+1)*d], x[pick*d:(pick+1)*d])
		for i := range minDist {
			if dd := sqDist(x[i*d:(i+1)*d], centers[c*d:(c+1)*d]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	assign := make([]int, n)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			row := x[i*d : (i+1)*d]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := sqDist(row, centers[c*d:(c+1)*d]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centers.
		for i := range centers {
			centers[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			crow := centers[c*d : (c+1)*d]
			row := x[i*d : (i+1)*d]
			for j, v := range row {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random row.
				copy(centers[c*d:(c+1)*d], x[rng.Intn(n)*d:][:d])
				continue
			}
			inv := 1 / float64(counts[c])
			crow := centers[c*d : (c+1)*d]
			for j := range crow {
				crow[j] *= inv
			}
		}
	}
	// Final assignment against final centers.
	for i := 0; i < n; i++ {
		row := x[i*d : (i+1)*d]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if dd := sqDist(row, centers[c*d:(c+1)*d]); dd < bestD {
				best, bestD = c, dd
			}
		}
		assign[i] = best
	}
	return centers, assign
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
