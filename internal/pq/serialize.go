package pq

import (
	"encoding/gob"
	"fmt"
	"math/rand"
)

// encoderState is the on-wire form of either encoder implementation.
type encoderState struct {
	Kind    string // "kmeans" | "lsh"
	D, C, K int
	Centers []float64
	Planes  []float64 // LSH only
}

func init() {
	gob.Register(encoderState{})
}

// MarshalEncoder converts a fitted encoder to a gob-encodable state.
func MarshalEncoder(e Encoder) (any, error) {
	switch v := e.(type) {
	case *KMeansEncoder:
		return encoderState{
			Kind: "kmeans", D: v.d, C: v.c, K: v.k,
			Centers: append([]float64(nil), v.centers...),
		}, nil
	case *LSHEncoder:
		return encoderState{
			Kind: "lsh", D: v.d, C: v.c, K: v.k,
			Centers: append([]float64(nil), v.centers...),
			Planes:  append([]float64(nil), v.planes...),
		}, nil
	default:
		return nil, fmt.Errorf("pq: cannot marshal encoder type %T", e)
	}
}

// UnmarshalEncoder reconstructs an encoder from MarshalEncoder's state.
func UnmarshalEncoder(state any) (Encoder, error) {
	st, ok := state.(encoderState)
	if !ok {
		return nil, fmt.Errorf("pq: bad encoder state type %T", state)
	}
	switch st.Kind {
	case "kmeans":
		e := NewKMeansEncoder(st.D, st.C, st.K, rand.New(rand.NewSource(0)))
		if len(st.Centers) != e.c*e.k*e.v {
			return nil, fmt.Errorf("pq: kmeans centers length %d, want %d", len(st.Centers), e.c*e.k*e.v)
		}
		e.centers = append([]float64(nil), st.Centers...)
		return e, nil
	case "lsh":
		e := NewLSHEncoder(st.D, st.C, st.K, rand.New(rand.NewSource(0)))
		if len(st.Centers) != e.c*e.k*e.v || len(st.Planes) != e.c*e.bits*e.v {
			return nil, fmt.Errorf("pq: lsh state lengths %d/%d invalid", len(st.Centers), len(st.Planes))
		}
		e.centers = append([]float64(nil), st.Centers...)
		e.planes = append([]float64(nil), st.Planes...)
		return e, nil
	default:
		return nil, fmt.Errorf("pq: unknown encoder kind %q", st.Kind)
	}
}
