package pq

import (
	"encoding/gob"
	"fmt"
	"math/rand"
)

// encoderState is the on-wire form of either encoder implementation.
type encoderState struct {
	Kind    string // "kmeans" | "lsh"
	D, C, K int
	Centers []float64
	Planes  []float64 // LSH only
}

func init() {
	gob.Register(encoderState{})
}

// MarshalEncoder converts a fitted encoder to a gob-encodable state.
func MarshalEncoder(e Encoder) (any, error) {
	switch v := e.(type) {
	case *KMeansEncoder:
		return encoderState{
			Kind: "kmeans", D: v.d, C: v.c, K: v.k,
			Centers: append([]float64(nil), v.centers...),
		}, nil
	case *LSHEncoder:
		return encoderState{
			Kind: "lsh", D: v.d, C: v.c, K: v.k,
			Centers: append([]float64(nil), v.centers...),
			Planes:  append([]float64(nil), v.planes...),
		}, nil
	default:
		return nil, fmt.Errorf("pq: cannot marshal encoder type %T", e)
	}
}

// validDims rejects encoder states whose dimensions cannot describe a real
// encoder before any constructor runs: the constructors panic on invalid
// decompositions (their callers fit fresh encoders from code, where a bad
// shape is a programming error), but serialized state is attacker- and
// corruption-facing input, so a crafted D/C/K must surface as an error.
func (st encoderState) validDims() error {
	if st.D <= 0 || st.C <= 0 || st.K <= 0 || st.D%st.C != 0 {
		return fmt.Errorf("pq: encoder state dims D=%d C=%d K=%d invalid", st.D, st.C, st.K)
	}
	if st.Kind == "lsh" && st.K&(st.K-1) != 0 {
		return fmt.Errorf("pq: lsh encoder state K=%d is not a power of two", st.K)
	}
	return nil
}

// UnmarshalEncoder reconstructs an encoder from MarshalEncoder's state.
func UnmarshalEncoder(state any) (Encoder, error) {
	st, ok := state.(encoderState)
	if !ok {
		return nil, fmt.Errorf("pq: bad encoder state type %T", state)
	}
	if err := st.validDims(); err != nil {
		return nil, err
	}
	switch st.Kind {
	case "kmeans":
		e := NewKMeansEncoder(st.D, st.C, st.K, rand.New(rand.NewSource(0)))
		if len(st.Centers) != e.c*e.k*e.v {
			return nil, fmt.Errorf("pq: kmeans centers length %d, want %d", len(st.Centers), e.c*e.k*e.v)
		}
		e.centers = append([]float64(nil), st.Centers...)
		return e, nil
	case "lsh":
		e := NewLSHEncoder(st.D, st.C, st.K, rand.New(rand.NewSource(0)))
		if len(st.Centers) != e.c*e.k*e.v || len(st.Planes) != e.c*e.bits*e.v {
			return nil, fmt.Errorf("pq: lsh state lengths %d/%d invalid", len(st.Centers), len(st.Planes))
		}
		e.centers = append([]float64(nil), st.Centers...)
		e.planes = append([]float64(nil), st.Planes...)
		return e, nil
	default:
		return nil, fmt.Errorf("pq: unknown encoder kind %q", st.Kind)
	}
}
