package pq

import (
	"math/rand"
	"testing"

	"dart/internal/mat"
)

func benchEncoder(b *testing.B, enc Encoder) {
	rng := rand.New(rand.NewSource(1))
	x := mat.New(512, 32).Randn(rng, 1)
	enc.Fit(x)
	idx := make([]int, enc.C())
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeRow(row, idx)
	}
}

// BenchmarkEncodeKMeans measures exact nearest-prototype encoding (scans all
// K prototypes per subspace).
func BenchmarkEncodeKMeans(b *testing.B) {
	benchEncoder(b, NewKMeansEncoder(32, 4, 128, rand.New(rand.NewSource(2))))
}

// BenchmarkEncodeLSH measures sign-bit hashing (log K hyperplanes per
// subspace) — the encoder the paper's latency model assumes.
func BenchmarkEncodeLSH(b *testing.B) {
	benchEncoder(b, NewLSHEncoder(32, 4, 128, rand.New(rand.NewSource(2))))
}

func BenchmarkDotTableQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := mat.New(512, 32).Randn(rng, 1)
	enc := NewKMeansEncoder(32, 4, 16, rng)
	enc.Fit(x)
	w := make([]float64, 32)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	table := NewDotTable(enc, w)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Query(row)
	}
}

func BenchmarkKMeansFit(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := mat.New(512, 8).Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(x.Data, 512, 8, 16, 10, rng)
	}
}
