package pq

import (
	"math/rand"
	"strings"
	"testing"

	"dart/internal/mat"
)

// fittedKMeans returns a small fitted k-means encoder (D=8, C=2, K=4).
func fittedKMeans(t *testing.T) *KMeansEncoder {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	enc := NewKMeansEncoder(8, 2, 4, rng)
	x := mat.New(32, 8).Randn(rng, 1)
	enc.Fit(x)
	return enc
}

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, name, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: no panic", name)
			return
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("%s: panic value %v is not a string", name, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
		}
	}()
	fn()
}

func TestDimensionChecks(t *testing.T) {
	enc := fittedKMeans(t)
	b := make([]float64, 8)
	table := NewDotTable(enc, b)
	wide := mat.New(3, 9)
	narrow := mat.New(3, 4)

	cases := []struct {
		name string
		want string
		fn   func()
	}{
		{"EncodeBatch/wide", "expects 8", func() { EncodeBatch(enc, wide) }},
		{"EncodeBatch/narrow", "expects 8", func() { EncodeBatch(enc, narrow) }},
		{"QueryBatch/wide", "expects 8", func() { table.QueryBatch(wide) }},
		{"QueryBatch/narrow", "expects 8", func() { table.QueryBatch(narrow) }},
		{"Query/short", "expects 8", func() { table.Query(make([]float64, 5)) }},
		{"Query/long", "expects 8", func() { table.Query(make([]float64, 16)) }},
		{"QueryEncoded/short", "2 subspaces", func() { table.QueryEncoded([]int{0}) }},
		{"QueryEncoded/long", "2 subspaces", func() { table.QueryEncoded([]int{0, 1, 2}) }},
		{"EncodeRow/rowLen", "expects (8, 2)", func() { enc.EncodeRow(make([]float64, 7), make([]int, 2)) }},
		{"EncodeRow/outLen", "expects (8, 2)", func() { enc.EncodeRow(make([]float64, 8), make([]int, 3)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { mustPanic(t, c.name, c.want, c.fn) })
	}
}

func TestLSHEncodeRowDimensionCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewLSHEncoder(8, 2, 4, rng)
	enc.Fit(mat.New(16, 8).Randn(rng, 1))
	mustPanic(t, "LSH/EncodeRow", "expects (8, 2)", func() {
		enc.EncodeRow(make([]float64, 10), make([]int, 2))
	})
	// Correct shapes still work.
	out := make([]int, 2)
	enc.EncodeRow(make([]float64, 8), out)
}

// TestValidShapesUnaffected guards the checks against false positives.
func TestValidShapesUnaffected(t *testing.T) {
	enc := fittedKMeans(t)
	b := make([]float64, 8)
	for i := range b {
		b[i] = float64(i)
	}
	table := NewDotTable(enc, b)
	rng := rand.New(rand.NewSource(3))
	x := mat.New(5, 8).Randn(rng, 1)
	got := table.QueryBatch(x)
	for i := 0; i < x.Rows; i++ {
		if want := table.Query(x.Row(i)); got[i] != want {
			t.Fatalf("row %d: batch %v != scalar %v", i, got[i], want)
		}
	}
	if rows := EncodeBatch(enc, x); len(rows) != 5 || len(rows[0]) != 2 {
		t.Fatalf("EncodeBatch shape %dx%d", len(rows), len(rows[0]))
	}
}
