package pq

import (
	"math/rand"
	"testing"

	"dart/internal/mat"
	"dart/internal/par"
)

func fittedEncoder(t *testing.T, kind string, d, c, k int, rng *rand.Rand) Encoder {
	t.Helper()
	train := mat.New(256, d).Randn(rng, 1)
	var enc Encoder
	switch kind {
	case "kmeans":
		enc = NewKMeansEncoder(d, c, k, rng)
	case "lsh":
		enc = NewLSHEncoder(d, c, k, rng)
	default:
		t.Fatalf("unknown encoder kind %q", kind)
	}
	enc.Fit(train)
	return enc
}

func TestEncodeBatchMatchesEncodeRow(t *testing.T) {
	for _, kind := range []string{"kmeans", "lsh"} {
		rng := rand.New(rand.NewSource(1))
		enc := fittedEncoder(t, kind, 16, 4, 8, rng)
		x := mat.New(103, 16).Randn(rng, 1)
		batch := EncodeBatch(enc, x)
		want := make([]int, enc.C())
		for i := 0; i < x.Rows; i++ {
			enc.EncodeRow(x.Row(i), want)
			for c, w := range want {
				if batch[i][c] != w {
					t.Fatalf("%s: row %d subspace %d: batch %d != serial %d", kind, i, c, batch[i][c], w)
				}
			}
		}
	}
}

func TestEncodeBatchWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := fittedEncoder(t, "kmeans", 12, 3, 6, rng)
	x := mat.New(97, 12).Randn(rng, 1)
	par.SetMaxWorkers(1)
	ref := EncodeBatch(enc, x)
	for _, w := range []int{2, 4, 8} {
		par.SetMaxWorkers(w)
		got := EncodeBatch(enc, x)
		for i := range ref {
			for c := range ref[i] {
				if got[i][c] != ref[i][c] {
					t.Fatalf("w=%d: row %d subspace %d differs", w, i, c)
				}
			}
		}
	}
	par.SetMaxWorkers(0)
}

func TestDotTableQueryBatchMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := fittedEncoder(t, "kmeans", 16, 4, 8, rng)
	b := make([]float64, 16)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	table := NewDotTable(enc, b)
	x := mat.New(77, 16).Randn(rng, 1)
	got := table.QueryBatch(x)
	for i := 0; i < x.Rows; i++ {
		if want := table.Query(x.Row(i)); got[i] != want {
			t.Fatalf("row %d: batch %v != serial %v", i, got[i], want)
		}
	}
}

func TestEncodeBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	enc := fittedEncoder(t, "kmeans", 8, 2, 4, rng)
	if got := EncodeBatch(enc, mat.New(0, 8)); len(got) != 0 {
		t.Fatalf("empty batch returned %d rows", len(got))
	}
}
