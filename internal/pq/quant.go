package pq

import "math"

// Per-prototype-row affine quantization for the tabular serving kernels.
// Each prototype row of a lookup table (the Out-wide slice one encoded index
// selects) gets its own scale and zero point, fitted from the row's value
// range the same way the codebook machinery fits prototypes from subspace
// value ranges: the bias folded into subspace 0 shifts whole rows, so a
// shared symmetric scale would waste most of the integer range on offset.
//
// Dequantization is (q - zero) * scale in float64. Both factors are stored
// exactly (scale as float64, zero as int32), so the dequantized value of a
// stored entry is fully determined by the quantized payload — queries through
// a saved/recovered table are bit-identical to the table that produced it.

// RowQuant is the affine quantization of one prototype row.
type RowQuant struct {
	Scale float64
	Zero  int32
}

// QuantRange returns the signed integer domain [qmin, qmax] of a bit width.
func QuantRange(bits int) (int32, int32) {
	return -(1 << (bits - 1)), 1<<(bits-1) - 1
}

// FitRowQuant fits the affine quantization of one table row at the given bit
// width (8 or 16): scale spans the row's value range over the full signed
// integer domain and zero maps the row minimum onto qmin. Degenerate rows
// (constant value) get an exact representation.
func FitRowQuant(row []float64, bits int) RowQuant {
	qmin, qmax := QuantRange(bits)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range row {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) { // constant (or empty) row
		if len(row) == 0 || lo == 0 {
			return RowQuant{Scale: 1, Zero: 0}
		}
		// scale = v, zero = 0: every entry quantizes to 1 and dequantizes
		// back to v exactly.
		return RowQuant{Scale: lo, Zero: 0}
	}
	scale := (hi - lo) / float64(qmax-qmin)
	z := float64(qmin) - lo/scale
	// A huge offset-to-span ratio cannot be represented affinely in int32;
	// clamp and let Quantize saturate rather than wrap.
	if z > math.MaxInt32 {
		z = math.MaxInt32
	} else if z < math.MinInt32 {
		z = math.MinInt32
	}
	return RowQuant{Scale: scale, Zero: int32(math.Round(z))}
}

// Quantize maps a value into the signed integer domain of the bit width:
// clamp(round(v/scale) + zero, qmin, qmax).
func (q RowQuant) Quantize(v float64, bits int) int32 {
	qmin, qmax := QuantRange(bits)
	x := math.Round(v/q.Scale) + float64(q.Zero)
	if x < float64(qmin) {
		return qmin
	}
	if x > float64(qmax) {
		return qmax
	}
	return int32(x)
}

// Dequantize maps a stored integer back to float64: (q - zero) * scale.
// This is the serving-side reconstruction; one multiply, one rounding.
func (q RowQuant) Dequantize(v int32) float64 {
	return float64(v-q.Zero) * q.Scale
}
