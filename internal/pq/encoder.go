package pq

import (
	"fmt"
	"math"
	"math/rand"

	"dart/internal/mat"
)

// Encoder quantizes D-dimensional vectors subspace-by-subspace: Fit learns
// per-subspace prototypes from training rows, EncodeRow maps a query row to
// one prototype index per subspace (Eq. 7), and Center exposes the learned
// prototypes for table construction (Eq. 6).
type Encoder interface {
	// Fit learns prototypes from the rows of x (one vector per row).
	Fit(x *mat.Matrix)
	// EncodeRow writes the prototype index of each subspace into out (len C).
	EncodeRow(row []float64, out []int)
	// Center returns the prototype vector of subspace c, index k (len V).
	Center(c, k int) []float64
	// K returns the number of prototypes per subspace.
	K() int
	// C returns the number of subspaces.
	C() int
	// SubDim returns the subspace dimension V = D/C.
	SubDim() int
}

// splitCheck validates the subspace decomposition.
func splitCheck(d, c int) int {
	if c <= 0 || d <= 0 || d%c != 0 {
		panic(fmt.Sprintf("pq: dimension %d not divisible into %d subspaces", d, c))
	}
	return d / c
}

// KMeansEncoder learns prototypes with per-subspace k-means and assigns
// queries to the exact nearest prototype (Eqs. 5 and 7).
type KMeansEncoder struct {
	d, c, v, k int
	iters      int
	rng        *rand.Rand
	centers    []float64 // [c][k][v]
}

// NewKMeansEncoder creates an exact encoder for D-dim vectors, C subspaces
// and K prototypes per subspace.
func NewKMeansEncoder(d, c, k int, rng *rand.Rand) *KMeansEncoder {
	v := splitCheck(d, c)
	return &KMeansEncoder{d: d, c: c, v: v, k: k, iters: 15, rng: rng}
}

// Fit learns k-means prototypes in each subspace.
func (e *KMeansEncoder) Fit(x *mat.Matrix) {
	if x.Cols != e.d {
		panic(fmt.Sprintf("pq: Fit on %d-dim rows, encoder expects %d", x.Cols, e.d))
	}
	n := x.Rows
	e.centers = make([]float64, e.c*e.k*e.v)
	sub := make([]float64, n*e.v)
	for c := 0; c < e.c; c++ {
		for i := 0; i < n; i++ {
			copy(sub[i*e.v:(i+1)*e.v], x.Row(i)[c*e.v:(c+1)*e.v])
		}
		k := e.k
		if k > n {
			k = n
		}
		centers, _ := KMeans(sub, n, e.v, k, e.iters, e.rng)
		copy(e.centers[c*e.k*e.v:], centers)
		// If k < K (tiny training sets), replicate the last center.
		for kk := k; kk < e.k; kk++ {
			copy(e.centers[(c*e.k+kk)*e.v:(c*e.k+kk+1)*e.v],
				e.centers[(c*e.k+k-1)*e.v:(c*e.k+k)*e.v])
		}
	}
}

// EncodeRow assigns each subspace of row to its nearest prototype.
func (e *KMeansEncoder) EncodeRow(row []float64, out []int) {
	if len(row) != e.d || len(out) != e.c {
		panic(fmt.Sprintf("pq: EncodeRow(%d-dim row, %d indices), encoder expects (%d, %d)",
			len(row), len(out), e.d, e.c))
	}
	for c := 0; c < e.c; c++ {
		sub := row[c*e.v : (c+1)*e.v]
		best, bestD := 0, math.Inf(1)
		base := c * e.k * e.v
		for k := 0; k < e.k; k++ {
			if dd := sqDist(sub, e.centers[base+k*e.v:base+(k+1)*e.v]); dd < bestD {
				best, bestD = k, dd
			}
		}
		out[c] = best
	}
}

// Center returns prototype (c, k).
func (e *KMeansEncoder) Center(c, k int) []float64 {
	base := (c*e.k + k) * e.v
	return e.centers[base : base+e.v]
}

// K returns prototypes per subspace.
func (e *KMeansEncoder) K() int { return e.k }

// C returns the subspace count.
func (e *KMeansEncoder) C() int { return e.c }

// SubDim returns the subspace dimension.
func (e *KMeansEncoder) SubDim() int { return e.v }

// LSHEncoder hashes each subspace with log2(K) random-hyperplane sign bits;
// the bucket index is the concatenated bit pattern and the prototype of a
// bucket is the centroid of the training vectors hashed into it. Encoding
// costs O(log K) dot products of length V, which is the latency the paper's
// complexity model assumes (Sec. V-C).
type LSHEncoder struct {
	d, c, v, k, bits int
	rng              *rand.Rand
	planes           []float64 // [c][bits][v] hyperplane normals
	centers          []float64 // [c][k][v] bucket centroids
}

// NewLSHEncoder creates a hashing encoder; k must be a power of two.
func NewLSHEncoder(d, c, k int, rng *rand.Rand) *LSHEncoder {
	v := splitCheck(d, c)
	bits := 0
	for 1<<bits < k {
		bits++
	}
	if 1<<bits != k {
		panic(fmt.Sprintf("pq: LSH encoder needs power-of-two K, got %d", k))
	}
	return &LSHEncoder{d: d, c: c, v: v, k: k, bits: bits, rng: rng}
}

// Fit draws random hyperplanes and computes bucket centroids.
func (e *LSHEncoder) Fit(x *mat.Matrix) {
	if x.Cols != e.d {
		panic(fmt.Sprintf("pq: Fit on %d-dim rows, encoder expects %d", x.Cols, e.d))
	}
	e.planes = make([]float64, e.c*e.bits*e.v)
	for i := range e.planes {
		e.planes[i] = e.rng.NormFloat64()
	}
	e.centers = make([]float64, e.c*e.k*e.v)
	counts := make([]int, e.c*e.k)
	idx := make([]int, e.c)
	for i := 0; i < x.Rows; i++ {
		e.EncodeRow(x.Row(i), idx)
		for c, k := range idx {
			counts[c*e.k+k]++
			crow := e.centers[(c*e.k+k)*e.v : (c*e.k+k+1)*e.v]
			sub := x.Row(i)[c*e.v : (c+1)*e.v]
			for j, v := range sub {
				crow[j] += v
			}
		}
	}
	// Normalise; empty buckets fall back to the subspace mean.
	subMean := make([]float64, e.c*e.v)
	for i := 0; i < x.Rows; i++ {
		for c := 0; c < e.c; c++ {
			sub := x.Row(i)[c*e.v : (c+1)*e.v]
			for j, v := range sub {
				subMean[c*e.v+j] += v
			}
		}
	}
	if x.Rows > 0 {
		inv := 1 / float64(x.Rows)
		for i := range subMean {
			subMean[i] *= inv
		}
	}
	for c := 0; c < e.c; c++ {
		for k := 0; k < e.k; k++ {
			crow := e.centers[(c*e.k+k)*e.v : (c*e.k+k+1)*e.v]
			if n := counts[c*e.k+k]; n > 0 {
				inv := 1 / float64(n)
				for j := range crow {
					crow[j] *= inv
				}
			} else {
				copy(crow, subMean[c*e.v:(c+1)*e.v])
			}
		}
	}
}

// EncodeRow hashes each subspace of row to its bucket index.
func (e *LSHEncoder) EncodeRow(row []float64, out []int) {
	if len(row) != e.d || len(out) != e.c {
		panic(fmt.Sprintf("pq: EncodeRow(%d-dim row, %d indices), encoder expects (%d, %d)",
			len(row), len(out), e.d, e.c))
	}
	for c := 0; c < e.c; c++ {
		sub := row[c*e.v : (c+1)*e.v]
		var bucket int
		for b := 0; b < e.bits; b++ {
			plane := e.planes[(c*e.bits+b)*e.v : (c*e.bits+b+1)*e.v]
			var dot float64
			for j, v := range sub {
				dot += v * plane[j]
			}
			bucket <<= 1
			if dot >= 0 {
				bucket |= 1
			}
		}
		out[c] = bucket
	}
}

// Center returns prototype (c, k).
func (e *LSHEncoder) Center(c, k int) []float64 {
	base := (c*e.k + k) * e.v
	return e.centers[base : base+e.v]
}

// K returns prototypes per subspace.
func (e *LSHEncoder) K() int { return e.k }

// C returns the subspace count.
func (e *LSHEncoder) C() int { return e.c }

// SubDim returns the subspace dimension.
func (e *LSHEncoder) SubDim() int { return e.v }
