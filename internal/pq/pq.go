package pq

import (
	"fmt"

	"dart/internal/mat"
)

// DotTable precomputes prototype dot products against a fixed weight vector b
// (Eq. 6): Entry(c, k) = b_c · P_ck. A query then approximates aᵀb as
// Σ_c Entry(c, g_c(a)) (Eq. 8) with no multiplications.
type DotTable struct {
	enc     Encoder
	entries []float64 // [C][K]
}

// NewDotTable builds the table for weight vector b (length D) against the
// fitted encoder's prototypes.
func NewDotTable(enc Encoder, b []float64) *DotTable {
	c, k, v := enc.C(), enc.K(), enc.SubDim()
	if len(b) != c*v {
		panic(fmt.Sprintf("pq: weight length %d != D=%d", len(b), c*v))
	}
	t := &DotTable{enc: enc, entries: make([]float64, c*k)}
	for ci := 0; ci < c; ci++ {
		bc := b[ci*v : (ci+1)*v]
		for ki := 0; ki < k; ki++ {
			p := enc.Center(ci, ki)
			var dot float64
			for j, w := range bc {
				dot += w * p[j]
			}
			t.entries[ci*k+ki] = dot
		}
	}
	return t
}

// Entry returns the precomputed dot product for subspace c, prototype k.
func (t *DotTable) Entry(c, k int) float64 { return t.entries[c*t.enc.K()+k] }

// Query approximates aᵀb by encoding a and aggregating table entries.
func (t *DotTable) Query(a []float64) float64 {
	c := t.enc.C()
	if d := c * t.enc.SubDim(); len(a) != d {
		panic(fmt.Sprintf("pq: Query on %d-dim vector, table expects %d", len(a), d))
	}
	idx := make([]int, c)
	t.enc.EncodeRow(a, idx)
	return t.QueryEncoded(idx)
}

// QueryEncoded aggregates with a precomputed encoding.
func (t *DotTable) QueryEncoded(idx []int) float64 {
	if len(idx) != t.enc.C() {
		panic(fmt.Sprintf("pq: QueryEncoded with %d indices, table has %d subspaces", len(idx), t.enc.C()))
	}
	var s float64
	k := t.enc.K()
	for c, ki := range idx {
		s += t.entries[c*k+ki]
	}
	return s
}

// Quantize returns the quantized reconstruction of a (its nearest prototype
// per subspace, concatenated). Useful for measuring quantization error.
func Quantize(enc Encoder, a []float64) []float64 {
	c, v := enc.C(), enc.SubDim()
	out := make([]float64, c*v)
	idx := make([]int, c)
	enc.EncodeRow(a, idx)
	for ci, ki := range idx {
		copy(out[ci*v:(ci+1)*v], enc.Center(ci, ki))
	}
	return out
}

// QuantizationMSE measures the mean squared reconstruction error of the
// encoder over the rows of x.
func QuantizationMSE(enc Encoder, x *mat.Matrix) float64 {
	if x.Rows == 0 {
		return 0
	}
	var total float64
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		q := Quantize(enc, row)
		for j, v := range row {
			d := v - q[j]
			total += d * d
		}
	}
	return total / float64(x.Rows*x.Cols)
}
