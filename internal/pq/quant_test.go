package pq

import (
	"math"
	"math/rand"
	"testing"
)

// TestFitRowQuantRoundTrip: quantize-dequantize error is bounded by half a
// quantization step for in-range values, for both widths and for rows whose
// range is dominated by offset (the bias-folded case the affine form exists
// for).
func TestFitRowQuantRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := [][]float64{
		make([]float64, 40),
		make([]float64, 40),
		make([]float64, 7),
	}
	for i := range rows[0] {
		rows[0][i] = rng.NormFloat64()
	}
	for i := range rows[1] {
		rows[1][i] = 1000 + 0.5*rng.NormFloat64() // offset-dominated
	}
	for i := range rows[2] {
		rows[2][i] = rng.Float64() * 1e-6
	}
	for _, bits := range []int{8, 16} {
		for ri, row := range rows {
			q := FitRowQuant(row, bits)
			if q.Scale <= 0 {
				t.Fatalf("bits=%d row=%d: non-positive scale %v", bits, ri, q.Scale)
			}
			for i, v := range row {
				back := q.Dequantize(q.Quantize(v, bits))
				if math.Abs(back-v) > q.Scale/2+1e-12 {
					t.Fatalf("bits=%d row=%d [%d]: %v -> %v, err %v > step/2 %v",
						bits, ri, i, v, back, math.Abs(back-v), q.Scale/2)
				}
			}
		}
	}
}

// TestFitRowQuantDegenerate: constant rows reconstruct exactly — every entry
// of a one-prototype subspace or an all-bias row must survive quantization
// bit-for-bit.
func TestFitRowQuantDegenerate(t *testing.T) {
	for _, v := range []float64{0, 1, -3.75, 1e-300, 42} {
		row := []float64{v, v, v}
		for _, bits := range []int{8, 16} {
			q := FitRowQuant(row, bits)
			if got := q.Dequantize(q.Quantize(v, bits)); got != v {
				t.Fatalf("constant row %v at %d bits reconstructs to %v", v, bits, got)
			}
		}
	}
	if q := FitRowQuant(nil, 8); q.Scale != 1 || q.Zero != 0 {
		t.Fatalf("empty row fit %+v", q)
	}
}

// TestQuantizeClamps: out-of-range values saturate at the domain edges
// instead of wrapping.
func TestQuantizeClamps(t *testing.T) {
	q := FitRowQuant([]float64{-1, 1}, 8)
	qmin, qmax := QuantRange(8)
	if got := q.Quantize(100, 8); got != qmax {
		t.Fatalf("over-range quantized to %d, want %d", got, qmax)
	}
	if got := q.Quantize(-100, 8); got != qmin {
		t.Fatalf("under-range quantized to %d, want %d", got, qmin)
	}
}

// TestUnmarshalEncoderRejectsMalformedDims: crafted states with zero,
// negative, or indivisible dimensions must return errors — the constructors
// panic on these, and serialized state is corruption-facing input that must
// never reach them.
func TestUnmarshalEncoderRejectsMalformedDims(t *testing.T) {
	cases := []struct {
		name string
		st   encoderState
	}{
		{"zero D", encoderState{Kind: "kmeans", D: 0, C: 1, K: 4}},
		{"negative D", encoderState{Kind: "lsh", D: -8, C: 1, K: 4}},
		{"zero C", encoderState{Kind: "kmeans", D: 8, C: 0, K: 4}},
		{"negative C", encoderState{Kind: "lsh", D: 8, C: -2, K: 4}},
		{"zero K", encoderState{Kind: "kmeans", D: 8, C: 1, K: 0}},
		{"negative K", encoderState{Kind: "lsh", D: 8, C: 1, K: -4}},
		{"C does not divide D", encoderState{Kind: "kmeans", D: 10, C: 3, K: 4}},
		{"lsh K not power of two", encoderState{Kind: "lsh", D: 8, C: 1, K: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalEncoder panicked: %v", r)
				}
			}()
			if _, err := UnmarshalEncoder(tc.st); err == nil {
				t.Fatalf("state %+v unmarshalled without error", tc.st)
			}
		})
	}
}
