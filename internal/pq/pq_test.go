package pq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dart/internal/mat"
)

func clusteredData(rng *rand.Rand, n, d int, centers int) *mat.Matrix {
	base := mat.New(centers, d).Randn(rng, 5)
	x := mat.New(n, d)
	for i := 0; i < n; i++ {
		c := base.Row(rng.Intn(centers))
		row := x.Row(i)
		for j, v := range c {
			row[j] = v + rng.NormFloat64()*0.1
		}
	}
	return x
}

func TestKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clusteredData(rng, 200, 4, 4)
	centers, assign := KMeans(x.Data, 200, 4, 4, 25, rng)
	if len(centers) != 16 || len(assign) != 200 {
		t.Fatalf("KMeans output sizes %d, %d", len(centers), len(assign))
	}
	// Every point should be close to its assigned center for well-separated
	// clusters with sigma=0.1.
	for i := 0; i < 200; i++ {
		d := sqDist(x.Row(i), centers[assign[i]*4:(assign[i]+1)*4])
		if d > 1.0 {
			t.Fatalf("point %d far from its center: %v", i, d)
		}
	}
}

func TestKMeansAssignmentIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredData(rng, 100, 3, 5)
	centers, assign := KMeans(x.Data, 100, 3, 5, 20, rng)
	for i := 0; i < 100; i++ {
		got := sqDist(x.Row(i), centers[assign[i]*3:(assign[i]+1)*3])
		for c := 0; c < 5; c++ {
			if d := sqDist(x.Row(i), centers[c*3:(c+1)*3]); d < got-1e-12 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, assign[i], c)
			}
		}
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.New(50, 2).Randn(rng, 1)
	centers, _ := KMeans(x.Data, 50, 2, 1, 10, rng)
	// Single center must be the mean.
	var m0, m1 float64
	for i := 0; i < 50; i++ {
		m0 += x.At(i, 0)
		m1 += x.At(i, 1)
	}
	m0 /= 50
	m1 /= 50
	if math.Abs(centers[0]-m0) > 1e-9 || math.Abs(centers[1]-m1) > 1e-9 {
		t.Fatalf("1-means center %v, want (%v,%v)", centers, m0, m1)
	}
}

func TestKMeansEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clusteredData(rng, 300, 8, 6)
	enc := NewKMeansEncoder(8, 2, 8, rng)
	enc.Fit(x)
	if enc.K() != 8 || enc.C() != 2 || enc.SubDim() != 4 {
		t.Fatalf("encoder dims K=%d C=%d V=%d", enc.K(), enc.C(), enc.SubDim())
	}
	// Quantization error should be small on clustered data.
	if mse := QuantizationMSE(enc, x); mse > 0.5 {
		t.Fatalf("k-means quantization MSE %v too high", mse)
	}
}

func TestEncoderIndexInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.New(100, 8).Randn(rng, 1)
	for _, enc := range []Encoder{
		NewKMeansEncoder(8, 4, 4, rng),
		NewLSHEncoder(8, 4, 4, rng),
	} {
		enc.Fit(x)
		idx := make([]int, enc.C())
		for i := 0; i < x.Rows; i++ {
			enc.EncodeRow(x.Row(i), idx)
			for _, k := range idx {
				if k < 0 || k >= enc.K() {
					t.Fatalf("index %d out of [0,%d)", k, enc.K())
				}
			}
		}
	}
}

func TestDotTableApproximatesDotProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := clusteredData(rng, 400, 8, 8)
	enc := NewKMeansEncoder(8, 2, 16, rng)
	enc.Fit(x)
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	table := NewDotTable(enc, b)
	var errSum, magSum float64
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var exact float64
		for j, v := range row {
			exact += v * b[j]
		}
		approx := table.Query(row)
		errSum += math.Abs(approx - exact)
		magSum += math.Abs(exact)
	}
	if rel := errSum / (magSum + 1e-12); rel > 0.1 {
		t.Fatalf("PQ relative dot-product error %v > 10%%", rel)
	}
}

func TestDotTableExactOnPrototypePoints(t *testing.T) {
	// If the query IS a prototype concatenation, the PQ result is exact.
	rng := rand.New(rand.NewSource(7))
	x := clusteredData(rng, 200, 6, 4)
	enc := NewKMeansEncoder(6, 3, 4, rng)
	enc.Fit(x)
	b := []float64{1, -2, 0.5, 3, -1, 2}
	table := NewDotTable(enc, b)
	q := make([]float64, 6)
	copy(q[0:2], enc.Center(0, 1))
	copy(q[2:4], enc.Center(1, 2))
	copy(q[4:6], enc.Center(2, 0))
	var exact float64
	for j, v := range q {
		exact += v * b[j]
	}
	if got := table.Query(q); math.Abs(got-exact) > 1e-9 {
		t.Fatalf("prototype query %v != exact %v", got, exact)
	}
}

func TestDotTableLinearInWeights(t *testing.T) {
	// Table(b1+b2) query == Table(b1) query + Table(b2) query (property).
	rng := rand.New(rand.NewSource(8))
	x := mat.New(100, 4).Randn(rng, 1)
	enc := NewKMeansEncoder(4, 2, 4, rng)
	enc.Fit(x)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b1 := make([]float64, 4)
		b2 := make([]float64, 4)
		sum := make([]float64, 4)
		for i := range b1 {
			b1[i], b2[i] = r.NormFloat64(), r.NormFloat64()
			sum[i] = b1[i] + b2[i]
		}
		q := x.Row(r.Intn(100))
		t1 := NewDotTable(enc, b1).Query(q)
		t2 := NewDotTable(enc, b2).Query(q)
		ts := NewDotTable(enc, sum).Query(q)
		return math.Abs(ts-(t1+t2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLSHEncoderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := mat.New(50, 4).Randn(rng, 1)
	enc := NewLSHEncoder(4, 2, 8, rng)
	enc.Fit(x)
	a := make([]int, 2)
	b := make([]int, 2)
	enc.EncodeRow(x.Row(3), a)
	enc.EncodeRow(x.Row(3), b)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("LSH encoding not deterministic")
	}
}

func TestLSHEncoderReasonableError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := clusteredData(rng, 500, 8, 4)
	exact := NewKMeansEncoder(8, 2, 16, rng)
	exact.Fit(x)
	lsh := NewLSHEncoder(8, 2, 16, rng)
	lsh.Fit(x)
	exactMSE := QuantizationMSE(exact, x)
	lshMSE := QuantizationMSE(lsh, x)
	if lshMSE < exactMSE*0.5 {
		t.Fatalf("LSH (%v) should not beat exact k-means (%v) by 2x", lshMSE, exactMSE)
	}
	// But it must still be a meaningful quantizer on clustered data.
	var varTotal float64
	for _, v := range x.Data {
		varTotal += v * v
	}
	varTotal /= float64(len(x.Data))
	if lshMSE > varTotal {
		t.Fatalf("LSH MSE %v worse than predicting zero (var %v)", lshMSE, varTotal)
	}
}

func TestNewLSHEncoderRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=6")
		}
	}()
	NewLSHEncoder(8, 2, 6, rand.New(rand.NewSource(1)))
}

func TestSplitCheckPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7/2 subspaces")
		}
	}()
	NewKMeansEncoder(7, 2, 4, rand.New(rand.NewSource(1)))
}

func TestKMeansEncoderFewerRowsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := mat.New(3, 4).Randn(rng, 1)
	enc := NewKMeansEncoder(4, 2, 8, rng)
	enc.Fit(x) // must not panic
	idx := make([]int, 2)
	enc.EncodeRow(x.Row(0), idx)
}
