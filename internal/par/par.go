// Package par is the shared goroutine worker pool behind every parallel
// kernel in this repository: blocked matrix multiplication (internal/mat),
// batched PQ encoding (internal/pq), batched table queries (internal/tabular),
// and the multi-trace simulation driver (internal/sim, internal/core).
//
// The pool holds a set of long-lived worker goroutines fed from a single
// task queue. For splits an index range into one contiguous chunk per
// worker; chunk boundaries depend only on the range length and the worker
// count, never on scheduling, so a caller that partitions its work in
// fixed-size blocks (as internal/mat does) produces bit-identical results
// for any worker count. The calling goroutine always executes the final
// chunk itself and then helps drain the task queue while it waits, so every
// goroutine blocked on the pool is also serving it — nested For/Do calls
// cannot deadlock even when all workers are busy.
//
// The worker cap defaults to GOMAXPROCS and can be tuned with SetMaxWorkers
// or the DART_MAX_WORKERS environment variable (read once at startup;
// SetMaxWorkers overrides it).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// hardCap bounds the worker count so a misconfigured override cannot spawn
// an unbounded number of goroutines.
const hardCap = 256

// maxWorkers holds the configured cap; 0 selects GOMAXPROCS at call time.
var maxWorkers atomic.Int64

func init() {
	if s := os.Getenv("DART_MAX_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			SetMaxWorkers(n)
		}
	}
}

// SetMaxWorkers caps the number of goroutines a parallel region may use.
// Values below 1 reset the cap to GOMAXPROCS; values above 256 are clamped.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 0 // resolve to GOMAXPROCS at call time
	}
	if n > hardCap {
		n = hardCap
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the current worker cap (always >= 1).
func MaxWorkers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// queue feeds the persistent workers. The buffer gives bursty callers room
// before the inline-execution fallback kicks in.
var queue = make(chan func(), 4*hardCap)

var (
	spawnMu sync.Mutex
	spawned int
)

// ensureWorkers grows the persistent pool to at least n goroutines. Workers
// are never torn down; idle workers block on the queue and cost only their
// (small) stacks.
func ensureWorkers(n int) {
	if n > hardCap {
		n = hardCap
	}
	spawnMu.Lock()
	for spawned < n {
		spawned++
		go func() {
			for f := range queue {
				f()
			}
		}()
	}
	spawnMu.Unlock()
}

// submit hands fn to the pool, running it inline when the queue is full so
// a worker that itself calls For/Do can never deadlock the pool.
func submit(fn func()) {
	select {
	case queue <- fn:
	default:
		fn()
	}
}

// waitHelping blocks until done closes, executing queued pool tasks while it
// waits. Every For/Do waiter helps drain the queue, so a task is never stuck
// behind a blocked worker: any goroutine waiting on the pool is also serving
// it. This is what makes arbitrarily nested For/Do calls deadlock-free.
func waitHelping(done <-chan struct{}) {
	for {
		// Prefer returning once our own chunks are finished: without this
		// check the random choice below could steal an unrelated long task
		// after done has already closed, delaying a finished region.
		select {
		case <-done:
			return
		default:
		}
		select {
		case <-done:
			return
		case f := <-queue:
			f()
		}
	}
}

// For executes body over [0, n), split into one contiguous chunk per worker.
// grain is the minimum chunk size (in items); ranges shorter than 2*grain
// run inline. The partition is a pure function of (n, grain, MaxWorkers()):
// even division into w chunks with the remainder spread over the leading
// chunks, so every chunk holds at least n/w >= grain items. body must be
// safe to call concurrently on disjoint ranges and must not panic.
//
// The caller runs the last chunk on its own goroutine, then helps execute
// queued pool work until every chunk has finished.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := MaxWorkers()
	if maxChunks := n / grain; w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		body(0, n)
		return
	}
	ensureWorkers(w - 1)
	var remaining atomic.Int64
	remaining.Store(int64(w - 1))
	done := make(chan struct{})
	base, rem := n/w, n%w
	lo := 0
	for c := 0; c < w-1; c++ {
		hi := lo + base
		if c < rem {
			hi++
		}
		cl, ch := lo, hi
		submit(func() {
			body(cl, ch)
			if remaining.Add(-1) == 0 {
				close(done)
			}
		})
		lo = hi
	}
	body(lo, n)
	waitHelping(done)
}

// Do runs the given functions concurrently on the pool and waits for all of
// them. It is For over the function list, so it shares the worker cap, the
// deterministic partition, and the help-while-waiting guarantee.
func Do(fns ...func()) {
	For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
