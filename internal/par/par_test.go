package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn under a temporary worker cap, restoring the previous
// cap afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := int(maxWorkers.Load())
	SetMaxWorkers(n)
	defer maxWorkers.Store(int64(prev))
	fn()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 2, 3, 5, 16, 97, 1024} {
			withWorkers(t, w, func() {
				hits := make([]int32, n)
				For(n, 1, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("w=%d n=%d: bad chunk [%d,%d)", w, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, h)
					}
				}
			})
		}
	}
}

func TestForGrainLimitsFanOut(t *testing.T) {
	withWorkers(t, 8, func() {
		var calls atomic.Int32
		For(10, 100, func(lo, hi int) {
			calls.Add(1)
			if lo != 0 || hi != 10 {
				t.Errorf("grain should force a single chunk, got [%d,%d)", lo, hi)
			}
		})
		if calls.Load() != 1 {
			t.Fatalf("expected 1 chunk, got %d", calls.Load())
		}
	})
}

func TestForPartitionIsDeterministic(t *testing.T) {
	// The chunk boundaries must be a pure function of (n, grain, workers).
	collect := func() []int {
		var mu sync.Mutex
		var bounds []int
		For(103, 1, func(lo, hi int) {
			mu.Lock()
			bounds = append(bounds, lo, hi)
			mu.Unlock()
		})
		return bounds
	}
	withWorkers(t, 4, func() {
		a, b := collect(), collect()
		seen := map[int]bool{}
		for _, v := range a {
			seen[v] = true
		}
		for _, v := range b {
			if !seen[v] {
				t.Fatalf("partition changed between runs: %v vs %v", a, b)
			}
		}
		if len(a) != len(b) {
			t.Fatalf("chunk count changed: %d vs %d", len(a)/2, len(b)/2)
		}
	})
}

func TestSetMaxWorkersBounds(t *testing.T) {
	prev := int(maxWorkers.Load())
	defer maxWorkers.Store(int64(prev))

	SetMaxWorkers(0)
	if got := MaxWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset cap = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	SetMaxWorkers(-5)
	if got := MaxWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative cap = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	SetMaxWorkers(3)
	if got := MaxWorkers(); got != 3 {
		t.Fatalf("cap = %d, want 3", got)
	}
	SetMaxWorkers(1 << 20)
	if got := MaxWorkers(); got != hardCap {
		t.Fatalf("cap = %d, want clamp to %d", got, hardCap)
	}
}

func TestDoRunsAllFunctions(t *testing.T) {
	withWorkers(t, 4, func() {
		var sum atomic.Int64
		fns := make([]func(), 17)
		for i := range fns {
			v := int64(i + 1)
			fns[i] = func() { sum.Add(v) }
		}
		Do(fns...)
		if sum.Load() != 17*18/2 {
			t.Fatalf("Do sum = %d, want %d", sum.Load(), 17*18/2)
		}
	})
}

// TestNestedForDoesNotDeadlock exercises the worst case for a shared pool:
// every worker is busy with an outer chunk whose body fans out again (three
// levels deep). Progress relies on waiters helping to drain the queue; run
// standalone (-run TestNestedForDoesNotDeadlock -count=1) this test hangs if
// that guarantee is broken, because no idle workers from other tests exist.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		var total atomic.Int64
		For(8, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				For(16, 1, func(l, h int) {
					for j := l; j < h; j++ {
						For(8, 1, func(l2, h2 int) {
							for k := l2; k < h2; k++ {
								total.Add(1)
							}
						})
					}
				})
			}
		})
		if total.Load() != 8*16*8 {
			t.Fatalf("nested total = %d, want %d", total.Load(), 8*16*8)
		}
	})
}

// TestPoolRaceHammer drives the pool from many goroutines at once, with the
// worker cap churning underneath, to give the race detector something to
// chew on. Run with -race (the CI `race` target does).
func TestPoolRaceHammer(t *testing.T) {
	prev := int(maxWorkers.Load())
	defer maxWorkers.Store(int64(prev))

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if it%10 == 0 {
					SetMaxWorkers(1 + (g+it)%6)
				}
				For(128, 4, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						total.Add(1)
					}
				})
				Do(
					func() { total.Add(1) },
					func() { total.Add(1) },
					func() { total.Add(1) },
				)
			}
		}(g)
	}
	wg.Wait()
	want := int64(goroutines * iters * (128 + 3))
	if total.Load() != want {
		t.Fatalf("hammer total = %d, want %d", total.Load(), want)
	}
}
