package dataprep

import (
	"math/rand"
	"testing"

	"dart/internal/trace"
)

// TestLabelBitsMatchFutureDeltas verifies the defining invariant of the delta
// bitmap on random traces: bit b is set iff some access within the
// look-forward window is at delta BitToDelta(b) from the current block.
func TestLabelBitsMatchFutureDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := Config{History: 4, SegmentBits: 6, Segments: 5, LookForward: 6, DeltaRange: 10}
	recs := make([]trace.Record, 300)
	block := int64(1 << 20)
	for i := range recs {
		// Random walk with occasional jumps, producing in- and out-of-range deltas.
		block += int64(rng.Intn(41) - 20)
		if rng.Float64() < 0.1 {
			block += int64(rng.Intn(4096) - 2048)
		}
		if block < 0 {
			block = 1 << 20
		}
		recs[i] = trace.Record{InstrID: uint64(i), Addr: uint64(block) << trace.BlockBits}
	}
	ds, err := Build(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < ds.X.N; s++ {
		cur := int64(ds.Blocks[s])
		want := map[int]bool{}
		for w := 1; w <= cfg.LookForward; w++ {
			d := int64(recs[s+cfg.History-1+w].Block()) - cur
			if bit := cfg.DeltaToBit(d); bit >= 0 {
				want[bit] = true
			}
		}
		row := ds.Y.Sample(s).Row(0)
		for bit, v := range row {
			if (v > 0.5) != want[bit] {
				t.Fatalf("sample %d bit %d: label %v, want %v (delta %d)",
					s, bit, v > 0.5, want[bit], cfg.BitToDelta(bit))
			}
		}
	}
}
