package dataprep

import (
	"testing"
	"testing/quick"

	"dart/internal/trace"
)

func TestDeltaBitRoundTrip(t *testing.T) {
	cfg := Default()
	for delta := -int64(cfg.DeltaRange); delta <= int64(cfg.DeltaRange); delta++ {
		if delta == 0 {
			if cfg.DeltaToBit(0) != -1 {
				t.Fatal("delta 0 should not map to a bit")
			}
			continue
		}
		bit := cfg.DeltaToBit(delta)
		if bit < 0 || bit >= cfg.OutputDim() {
			t.Fatalf("delta %d -> bit %d out of range", delta, bit)
		}
		if got := cfg.BitToDelta(bit); got != delta {
			t.Fatalf("round trip %d -> %d -> %d", delta, bit, got)
		}
	}
}

func TestDeltaBitOutOfRange(t *testing.T) {
	cfg := Default()
	if cfg.DeltaToBit(int64(cfg.DeltaRange)+1) != -1 {
		t.Fatal("over-range delta mapped")
	}
	if cfg.DeltaToBit(-int64(cfg.DeltaRange)-1) != -1 {
		t.Fatal("under-range delta mapped")
	}
}

func TestDeltaBitBijective(t *testing.T) {
	cfg := Default()
	seen := map[int]int64{}
	for delta := -int64(cfg.DeltaRange); delta <= int64(cfg.DeltaRange); delta++ {
		if delta == 0 {
			continue
		}
		bit := cfg.DeltaToBit(delta)
		if prev, dup := seen[bit]; dup {
			t.Fatalf("bit %d maps deltas %d and %d", bit, prev, delta)
		}
		seen[bit] = delta
	}
	if len(seen) != cfg.OutputDim() {
		t.Fatalf("bitmap uses %d of %d bits", len(seen), cfg.OutputDim())
	}
}

func TestSegmentBlockRange(t *testing.T) {
	cfg := Default()
	f := func(block uint64) bool {
		dst := make([]float64, cfg.Segments)
		cfg.SegmentBlock(block, dst)
		for _, v := range dst {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBlockDistinguishesAddresses(t *testing.T) {
	cfg := Default()
	a := make([]float64, cfg.Segments)
	b := make([]float64, cfg.Segments)
	cfg.SegmentBlock(0x12345, a)
	cfg.SegmentBlock(0x12346, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("adjacent blocks produced identical segments")
	}
}

func seqTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			InstrID: uint64(i),
			PC:      0x400000,
			Addr:    uint64(i) << trace.BlockBits, // unit-stride blocks
		}
	}
	return recs
}

func TestBuildSequentialTraceLabels(t *testing.T) {
	cfg := Config{History: 4, SegmentBits: 6, Segments: 4, LookForward: 3, DeltaRange: 8}
	ds, err := Build(seqTrace(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-stride: every sample's future deltas are +1, +2, +3.
	for s := 0; s < ds.Y.N; s++ {
		row := ds.Y.Sample(s).Row(0)
		for _, d := range []int64{1, 2, 3} {
			if row[cfg.DeltaToBit(d)] != 1 {
				t.Fatalf("sample %d missing delta %d", s, d)
			}
		}
		var set int
		for _, v := range row {
			if v > 0.5 {
				set++
			}
		}
		if set != 3 {
			t.Fatalf("sample %d has %d set bits, want 3", s, set)
		}
	}
}

func TestBuildBlocksRecorded(t *testing.T) {
	cfg := Config{History: 4, SegmentBits: 6, Segments: 4, LookForward: 3, DeltaRange: 8}
	ds, err := Build(seqTrace(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample s's current access is record s+History-1 with block s+3.
	for s := 0; s < len(ds.Blocks); s++ {
		if ds.Blocks[s] != uint64(s+3) {
			t.Fatalf("sample %d current block %d, want %d", s, ds.Blocks[s], s+3)
		}
	}
}

func TestBuildShortTraceFails(t *testing.T) {
	cfg := Default()
	if _, err := Build(seqTrace(5), cfg); err == nil {
		t.Fatal("expected error for short trace")
	}
}

func TestBuildInvalidConfigFails(t *testing.T) {
	if _, err := Build(seqTrace(100), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSplitTemporalOrder(t *testing.T) {
	cfg := Config{History: 4, SegmentBits: 6, Segments: 4, LookForward: 3, DeltaRange: 8}
	ds, err := Build(seqTrace(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.75)
	if train.X.N+test.X.N != ds.X.N {
		t.Fatalf("split sizes %d + %d != %d", train.X.N, test.X.N, ds.X.N)
	}
	// Train samples precede test samples in time.
	if train.Blocks[train.X.N-1] >= test.Blocks[0] {
		t.Fatal("temporal split broken")
	}
}

func TestPositiveRateOnSyntheticApps(t *testing.T) {
	cfg := Default()
	for _, app := range trace.Apps()[:2] {
		recs := trace.Generate(app, 3000)
		ds, err := Build(recs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr := ds.PositiveRate()
		if pr <= 0 || pr >= 0.9 {
			t.Fatalf("%s positive rate %v implausible", app.Name, pr)
		}
	}
}
