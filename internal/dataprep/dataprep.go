// Package dataprep implements the paper's data preparation (Sec. VI-A):
// block addresses are dissected into fixed-width bit segments forming the
// model input sequence, and labels are delta bitmaps marking which address
// deltas occur within a look-forward window, enabling multiple simultaneous
// prefetch predictions.
package dataprep

import (
	"fmt"

	"dart/internal/mat"
	"dart/internal/trace"
)

// Config controls dataset construction.
type Config struct {
	History     int // T: input sequence length
	SegmentBits int // c: bits per address segment
	Segments    int // S: segments per address (covers the block address)
	LookForward int // window size for future deltas
	DeltaRange  int // R: deltas in [-R, R]\{0} are labelled; bitmap size = 2R
}

// Default returns the configuration used by our experiments: 9 segments of
// 6 bits cover a 54-bit block address as in TransFetch's fine-grained
// segmentation, with a 64-wide delta bitmap.
func Default() Config {
	return Config{History: 8, SegmentBits: 6, Segments: 9, LookForward: 16, DeltaRange: 32}
}

// InputDim is the model input feature count: address segments plus one
// normalised PC feature.
func (c Config) InputDim() int { return c.Segments + 1 }

// OutputDim is the delta-bitmap width DO = 2R.
func (c Config) OutputDim() int { return 2 * c.DeltaRange }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.History <= 0 || c.SegmentBits <= 0 || c.Segments <= 0 || c.LookForward <= 0 || c.DeltaRange <= 0 {
		return fmt.Errorf("dataprep: non-positive field in %+v", c)
	}
	if c.SegmentBits > 16 {
		return fmt.Errorf("dataprep: segment bits %d > 16", c.SegmentBits)
	}
	return nil
}

// DeltaToBit maps a delta in [-R, R]\{0} to its bitmap index, or -1.
func (c Config) DeltaToBit(delta int64) int {
	if delta == 0 || delta < -int64(c.DeltaRange) || delta > int64(c.DeltaRange) {
		return -1
	}
	if delta < 0 {
		return int(delta + int64(c.DeltaRange)) // [-R, -1] -> [0, R-1]
	}
	return int(delta + int64(c.DeltaRange) - 1) // [1, R] -> [R, 2R-1]
}

// BitToDelta inverts DeltaToBit.
func (c Config) BitToDelta(bit int) int64 {
	if bit < c.DeltaRange {
		return int64(bit - c.DeltaRange)
	}
	return int64(bit - c.DeltaRange + 1)
}

// SegmentBlock writes the normalised segment features of a block address
// into dst (length Segments). Segment i holds bits [i*c, (i+1)*c), scaled to
// [0, 1].
func (c Config) SegmentBlock(block uint64, dst []float64) {
	maxVal := float64(uint64(1)<<c.SegmentBits - 1)
	for i := 0; i < c.Segments; i++ {
		seg := (block >> (uint(i) * uint(c.SegmentBits))) & (1<<c.SegmentBits - 1)
		dst[i] = float64(seg) / maxVal
	}
}

// Dataset is a prepared training/evaluation set.
type Dataset struct {
	Cfg    Config
	X      *mat.Tensor // [N, T, InputDim] segmented addresses + PC feature
	Y      *mat.Tensor // [N, 1, OutputDim] delta bitmaps
	Blocks []uint64    // current block address of each sample (for prefetch reconstruction)
}

// Build converts a trace into model inputs and delta-bitmap labels. Sample t
// uses accesses [t-History+1, t] as input and the deltas of the next
// LookForward accesses as its label.
func Build(recs []trace.Record, cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(recs) - cfg.History - cfg.LookForward
	if n <= 0 {
		return nil, fmt.Errorf("dataprep: trace of %d records too short for history %d + window %d",
			len(recs), cfg.History, cfg.LookForward)
	}
	din, dout := cfg.InputDim(), cfg.OutputDim()
	ds := &Dataset{
		Cfg:    cfg,
		X:      mat.NewTensor(n, cfg.History, din),
		Y:      mat.NewTensor(n, 1, dout),
		Blocks: make([]uint64, n),
	}
	for s := 0; s < n; s++ {
		cur := s + cfg.History - 1 // index of the current access
		sm := ds.X.Sample(s)
		for t := 0; t < cfg.History; t++ {
			r := recs[s+t]
			row := sm.Row(t)
			cfg.SegmentBlock(r.Block(), row[:cfg.Segments])
			// Normalised PC feature: low bits of the PC, hashed to [0, 1].
			row[cfg.Segments] = float64(r.PC&0xFFFF) / 65535.0
		}
		curBlock := recs[cur].Block()
		ds.Blocks[s] = curBlock
		lrow := ds.Y.Sample(s).Row(0)
		for w := 1; w <= cfg.LookForward; w++ {
			delta := int64(recs[cur+w].Block()) - int64(curBlock)
			if bit := cfg.DeltaToBit(delta); bit >= 0 {
				lrow[bit] = 1
			}
		}
	}
	return ds, nil
}

// Split partitions the dataset into train and test halves at the given
// fraction, preserving temporal order (train on the past, test on the
// future), as trace-driven prefetcher studies require.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	nTrain := int(float64(d.X.N) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= d.X.N {
		nTrain = d.X.N - 1
	}
	idxTrain := make([]int, nTrain)
	for i := range idxTrain {
		idxTrain[i] = i
	}
	idxTest := make([]int, d.X.N-nTrain)
	for i := range idxTest {
		idxTest[i] = nTrain + i
	}
	return d.subset(idxTrain), d.subset(idxTest)
}

func (d *Dataset) subset(idx []int) *Dataset {
	out := &Dataset{
		Cfg:    d.Cfg,
		X:      d.X.Gather(idx),
		Y:      d.Y.Gather(idx),
		Blocks: make([]uint64, len(idx)),
	}
	for i, s := range idx {
		out.Blocks[i] = d.Blocks[s]
	}
	return out
}

// PositiveRate reports the fraction of set label bits, a quick check that
// the delta range captures the workload.
func (d *Dataset) PositiveRate() float64 {
	var set int
	for _, v := range d.Y.Data {
		if v > 0.5 {
			set++
		}
	}
	return float64(set) / float64(len(d.Y.Data))
}
