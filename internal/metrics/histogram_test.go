package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty P%v = %v", p, got)
		}
	}
	s := h.Summarize()
	if s.Count != 0 || s.P50 != 0 || s.P999 != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42)
	for _, p := range []float64{0, 1, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("single-sample P%v = %v, want 42", p, got)
		}
	}
	if h.Mean() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestHistogramTies(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		if got := h.Percentile(p); got != 5 {
			t.Fatalf("all-ties P%v = %v, want 5", p, got)
		}
	}
	// Half ties at 1, half at 2: the median straddles the boundary.
	var g Histogram
	for i := 0; i < 5; i++ {
		g.Observe(1)
		g.Observe(2)
	}
	if p25 := g.Percentile(25); p25 != 1 {
		t.Fatalf("P25 = %v, want 1", p25)
	}
	if p75 := g.Percentile(75); p75 != 2 {
		t.Fatalf("P75 = %v, want 2", p75)
	}
	if p0, p100 := g.Percentile(0), g.Percentile(100); p0 != 1 || p100 != 2 {
		t.Fatalf("P0 = %v, P100 = %v", p0, p100)
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	var h Histogram
	// Observe out of order; Percentile must sort.
	for _, v := range []float64{40, 10, 30, 20} {
		h.Observe(v)
	}
	if p50 := h.Percentile(50); p50 != 25 {
		t.Fatalf("P50 = %v, want 25", p50)
	}
	if p100 := h.Percentile(100); p100 != 40 {
		t.Fatalf("P100 = %v, want 40", p100)
	}
	if p0 := h.Percentile(0); p0 != 10 {
		t.Fatalf("P0 = %v, want 10", p0)
	}
	// Clamping outside [0, 100].
	if h.Percentile(-5) != 10 || h.Percentile(250) != 40 {
		t.Fatal("out-of-range p did not clamp")
	}
}

func TestHistogramMonotonePercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(rng.ExpFloat64())
	}
	prev := h.Percentile(0)
	for p := 1.0; p <= 100; p++ {
		cur := h.Percentile(p)
		if cur < prev {
			t.Fatalf("percentiles not monotone at P%v: %v < %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		v := rng.Float64()
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	a.Merge(nil)
	// Sums accumulate in different orders, so compare with a tolerance.
	if a.Count() != all.Count() || math.Abs(a.Sum()-all.Sum()) > 1e-9 {
		t.Fatalf("merge lost samples: %d/%v vs %d/%v", a.Count(), a.Sum(), all.Count(), all.Sum())
	}
	for _, p := range []float64{1, 50, 90, 99.9} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Fatalf("merged P%v = %v, want %v", p, a.Percentile(p), all.Percentile(p))
		}
	}
}

// TestHistogramSelfMergeIsNoOp is the regression test for the aliasing bug:
// h.Merge(h) used to append the sample slice to itself and double the sum,
// silently double-counting every observation.
func TestHistogramSelfMergeIsNoOp(t *testing.T) {
	var h Histogram
	for _, v := range []float64{3, 1, 4, 1, 5} {
		h.Observe(v)
	}
	count, sum, p50 := h.Count(), h.Sum(), h.Percentile(50)
	h.Merge(&h)
	if h.Count() != count {
		t.Fatalf("self-merge double-counted samples: %d, want %d", h.Count(), count)
	}
	if h.Sum() != sum {
		t.Fatalf("self-merge doubled sum: %v, want %v", h.Sum(), sum)
	}
	if h.Percentile(50) != p50 {
		t.Fatalf("self-merge changed P50: %v, want %v", h.Percentile(50), p50)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Percentile(50); got != 0.0015 {
		t.Fatalf("duration sample = %v s, want 0.0015", got)
	}
	if s := h.Summarize().String(); s == "" {
		t.Fatal("empty summary string")
	}
}
