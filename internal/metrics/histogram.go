package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates latency (or any scalar) samples and answers
// percentile queries. The serving engine records one sample per request, so
// the implementation keeps raw samples and sorts lazily: exact percentiles,
// no bucket-resolution error, and merge is concatenation. A Histogram is not
// safe for concurrent use; give each producer its own and Merge at the end.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// ObserveDuration adds a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the running total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean; 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Merge folds other's samples into h. Merging a histogram into itself is a
// no-op: h already contains its own samples, and the unguarded append would
// silently double every sample and the sum.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
	h.sum += other.sum
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. Edge cases: an empty histogram
// returns 0; a single sample returns that sample for every p; p outside
// [0, 100] clamps. Tied samples behave as expected: any percentile falling
// within a run of equal values returns that value.
func (h *Histogram) Percentile(p float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sort()
	if n == 1 {
		return h.samples[0]
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 {
		return h.samples[lo]
	}
	return h.samples[lo] + frac*(h.samples[lo+1]-h.samples[lo])
}

// Min returns the smallest sample; 0 when empty.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample; 0 when empty.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Summary is the fixed percentile digest the serving engine reports.
type Summary struct {
	Count               int
	Mean, Min, Max      float64
	P50, P90, P99, P999 float64
}

// Summarize computes the digest.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// String renders the summary with sub-millisecond latencies in mind.
func (s Summary) String() string {
	us := func(v float64) string { return fmt.Sprintf("%.0fµs", v*1e6) }
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s p99.9=%s max=%s",
		s.Count, us(s.Mean), us(s.P50), us(s.P90), us(s.P99), us(s.P999), us(s.Max))
}
