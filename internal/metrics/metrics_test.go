package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Update(true, true)   // TP
	c.Update(true, false)  // FP
	c.Update(false, true)  // FN
	c.Update(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Fatalf("P=%v R=%v F1=%v", c.Precision(), c.Recall(), c.F1())
	}
}

func TestPerfectF1(t *testing.T) {
	logits := []float64{3, -2, 5, -1}
	targets := []float64{1, 0, 1, 0}
	if got := F1FromLogits(logits, targets); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
}

func TestAllWrongF1(t *testing.T) {
	logits := []float64{-3, 2}
	targets := []float64{1, 0}
	if got := F1FromLogits(logits, targets); got != 0 {
		t.Fatalf("all-wrong F1 = %v", got)
	}
}

func TestUndefinedF1IsZero(t *testing.T) {
	var c Confusion
	if c.F1() != 0 || c.Precision() != 0 || c.Recall() != 0 {
		t.Fatal("empty confusion should yield zeros")
	}
	// Predicting nothing when nothing is positive: no TP, no FP, no FN.
	if got := F1FromLogits([]float64{-1, -1}, []float64{0, 0}); got != 0 {
		t.Fatalf("degenerate F1 = %v", got)
	}
}

func TestF1Bounds(t *testing.T) {
	f := func(logits []float64) bool {
		targets := make([]float64, len(logits))
		for i, z := range logits {
			if math.Signbit(z) {
				targets[i] = 1 // deliberately anti-correlated
			}
		}
		f1 := F1FromLogits(logits, targets)
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF1ProbsMatchesLogits(t *testing.T) {
	logits := []float64{2, -1, 0.3, -0.2}
	probs := make([]float64, len(logits))
	for i, z := range logits {
		probs[i] = 1 / (1 + math.Exp(-z))
	}
	targets := []float64{1, 0, 0, 1}
	if F1FromLogits(logits, targets) != F1FromProbs(probs, targets) {
		t.Fatal("logit and probability F1 disagree")
	}
}
