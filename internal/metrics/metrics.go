// Package metrics provides the evaluation measures used throughout the
// paper: micro-averaged F1 for multi-label memory-access prediction
// (Sec. VII-A4) and the prefetching measures (accuracy, coverage, IPC
// improvement) computed by the simulator.
package metrics

// Confusion accumulates multi-label binary classification counts.
type Confusion struct {
	TP, FP, FN, TN int
}

// Update adds one prediction/target pair.
func (c *Confusion) Update(pred, target bool) {
	switch {
	case pred && target:
		c.TP++
	case pred && !target:
		c.FP++
	case !pred && target:
		c.FN++
	default:
		c.TN++
	}
}

// Precision is TP / (TP + FP); 0 when undefined.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); 0 when undefined.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall; 0 when undefined.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// F1FromLogits computes micro-F1 of multi-label logits against 0/1 targets,
// thresholding logits at 0 (σ(z) > 0.5 ⇔ z > 0).
func F1FromLogits(logits, targets []float64) float64 {
	var c Confusion
	for i, z := range logits {
		c.Update(z > 0, targets[i] > 0.5)
	}
	return c.F1()
}

// F1FromProbs computes micro-F1 of probabilities against 0/1 targets with a
// 0.5 decision threshold (used for table-based predictors whose outputs pass
// through the sigmoid LUT).
func F1FromProbs(probs, targets []float64) float64 {
	var c Confusion
	for i, p := range probs {
		c.Update(p > 0.5, targets[i] > 0.5)
	}
	return c.F1()
}
