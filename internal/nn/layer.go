// Package nn is a small from-scratch neural-network library supporting the
// attention-based memory-access predictors of the DART paper: linear layers,
// multi-head self-attention, layer normalization, residual blocks, an LSTM
// (for the Voyager-class baseline), binary-cross-entropy and distillation
// losses, and the Adam optimizer. All layers implement full backpropagation;
// batches are rank-3 tensors of shape [N samples, T sequence positions, D features].
package nn

import (
	"fmt"

	"dart/internal/mat"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name string
	W    *mat.Matrix // value
	G    *mat.Matrix // gradient, same shape as W
}

func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: mat.New(rows, cols), G: mat.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is a differentiable module. Forward must cache whatever Backward
// needs; Backward consumes the gradient w.r.t. the layer output and returns
// the gradient w.r.t. the layer input, accumulating parameter gradients.
type Layer interface {
	Forward(x *mat.Tensor) *mat.Tensor
	Backward(grad *mat.Tensor) *mat.Tensor
	Params() []*Param
	Name() string
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
	label  string
}

// NewSequential builds a sequential container with a diagnostic label.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, label: label}
}

// Forward runs every layer in order.
func (s *Sequential) Forward(x *mat.Tensor) *mat.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the gradient through the layers in reverse.
func (s *Sequential) Backward(grad *mat.Tensor) *mat.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name returns the container label.
func (s *Sequential) Name() string { return s.label }

// ForwardUpTo runs layers [0, k) and returns the intermediate activation.
// The tabularizer uses this to obtain per-layer targets (Algorithm 1, line 2).
func (s *Sequential) ForwardUpTo(x *mat.Tensor, k int) *mat.Tensor {
	if k < 0 || k > len(s.Layers) {
		panic(fmt.Sprintf("nn: ForwardUpTo(%d) of %d layers", k, len(s.Layers)))
	}
	for _, l := range s.Layers[:k] {
		x = l.Forward(x)
	}
	return x
}

// Residual wraps an inner layer and adds the block input to its output:
// y = x + inner(x). The inner layer must preserve the input shape.
type Residual struct {
	Inner Layer
}

// NewResidual wraps inner in a residual connection.
func NewResidual(inner Layer) *Residual { return &Residual{Inner: inner} }

// Forward computes x + inner(x).
func (r *Residual) Forward(x *mat.Tensor) *mat.Tensor {
	y := r.Inner.Forward(x)
	if !y.ShapeEquals(x) {
		panic("nn: residual inner layer changed shape")
	}
	out := y.Clone()
	for i, v := range x.Data {
		out.Data[i] += v
	}
	return out
}

// Backward routes the gradient through the inner layer and the skip path.
func (r *Residual) Backward(grad *mat.Tensor) *mat.Tensor {
	inner := r.Inner.Backward(grad)
	out := inner.Clone()
	for i, v := range grad.Data {
		out.Data[i] += v
	}
	return out
}

// Params returns the inner layer's parameters.
func (r *Residual) Params() []*Param { return r.Inner.Params() }

// Name identifies the block.
func (r *Residual) Name() string { return "residual(" + r.Inner.Name() + ")" }
