package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func testModel(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential("ckpt-test",
		NewLinear("l1", 6, 8, rng),
		NewReLU(),
		NewLinear("l2", 8, 4, rng),
	)
}

func paramsEqual(a, b Layer) bool {
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if len(ap[i].W.Data) != len(bp[i].W.Data) {
			return false
		}
		for j, v := range ap[i].W.Data {
			if bp[i].W.Data[j] != v {
				return false
			}
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := testModel(1)
	meta := CheckpointMeta{Version: 7, Examples: 1234, Steps: 56, Loss: 0.321}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, meta); err != nil {
		t.Fatal(err)
	}

	peek, err := PeekCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if peek.Version != 7 || peek.Examples != 1234 || peek.Steps != 56 || peek.Loss != 0.321 {
		t.Fatalf("peek meta %+v", peek)
	}
	if peek.Model != "ckpt-test" || peek.Format != checkpointFormat {
		t.Fatalf("peek identity %+v", peek)
	}

	dst := testModel(2)
	if paramsEqual(src, dst) {
		t.Fatal("test models should start different")
	}
	got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != peek {
		t.Fatalf("load meta %+v != peek %+v", got, peek)
	}
	if !paramsEqual(src, dst) {
		t.Fatal("loaded parameters differ from saved ones")
	}
}

func TestCheckpointCorruption(t *testing.T) {
	src := testModel(1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, CheckpointMeta{Version: 1}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty", nil, "truncated checkpoint header"},
		{"truncated header", good[:10], "truncated checkpoint header"},
		{"truncated payload", good[:len(good)-5], "truncated checkpoint"},
		{"bad magic", append([]byte("GARBAGE!"), good[8:]...), "bad magic"},
		{"garbage", []byte(strings.Repeat("junk", 64)), "bad magic"},
		{"flipped payload byte", flipByte(good, len(good)-1), "CRC mismatch"},
		{"flipped meta byte", flipByte(good, 21), "CRC mismatch"},
		{"flipped crc", flipByte(good, 17), "CRC mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := testModel(3)
			after := testModel(3)
			_, err := LoadCheckpoint(bytes.NewReader(tc.data), after)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if !paramsEqual(before, after) {
				t.Fatal("model was modified by a rejected checkpoint")
			}
		})
	}
}

func TestCheckpointImplausibleSizes(t *testing.T) {
	src := testModel(1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Declare a ~4 GiB meta section: must be rejected before allocation.
	data[8], data[9], data[10], data[11] = 0xFF, 0xFF, 0xFF, 0xFF
	_, err := LoadCheckpoint(bytes.NewReader(data), testModel(2))
	if err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("oversized section not rejected: %v", err)
	}
}

func TestCheckpointArchitectureMismatch(t *testing.T) {
	src := testModel(1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	other := NewSequential("other", NewLinear("lx", 3, 3, rng))
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("checkpoint applied to a mismatched architecture")
	}
}

func TestCopyParams(t *testing.T) {
	src, dst := testModel(1), testModel(2)
	if err := CopyParams(dst, src); err != nil {
		t.Fatal(err)
	}
	if !paramsEqual(src, dst) {
		t.Fatal("CopyParams did not copy values")
	}
	rng := rand.New(rand.NewSource(9))
	other := NewSequential("other", NewLinear("lx", 3, 3, rng))
	if err := CopyParams(other, src); err == nil {
		t.Fatal("CopyParams accepted mismatched architectures")
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}
