package nn

import (
	"math"
	"math/rand"

	"dart/internal/mat"
)

// LSTM is a single-layer LSTM that consumes a [N, T, D] sequence and emits
// the final hidden state as [N, 1, H]. It exists to reproduce the
// Voyager-class recurrent baseline: the paper contrasts LSTM predictors
// (accurate but serial and slow) with attention models and DART.
//
// Gate layout in the stacked weight matrices is [input, forget, cell, output].
type LSTM struct {
	In, Hidden int
	Wx         *Param // [4H, In]
	Wh         *Param // [4H, H]
	B          *Param // [1, 4H]

	// Forward caches, indexed [t]: gate activations and states per step.
	x         *mat.Tensor
	gates     []*mat.Matrix // N x 4H, post-activation (i,f,g,o)
	cells     []*mat.Matrix // N x H, cell state c_t
	hiddens   []*mat.Matrix // N x H, hidden state h_t
	tanhCells []*mat.Matrix // N x H, tanh(c_t)
}

// NewLSTM builds an LSTM with Xavier-uniform weights and forget bias 1.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: newParam(name+".wx", 4*hidden, in),
		Wh: newParam(name+".wh", 4*hidden, hidden),
		B:  newParam(name+".b", 1, 4*hidden),
	}
	bx := math.Sqrt(6.0 / float64(in+hidden))
	l.Wx.W.RandUniform(rng, bx)
	l.Wh.W.RandUniform(rng, bx)
	// Forget-gate bias of 1 stabilises early training.
	for j := hidden; j < 2*hidden; j++ {
		l.B.W.Data[j] = 1
	}
	return l
}

func tanhf(x float64) float64 { return math.Tanh(x) }

// Forward runs the recurrence and returns the last hidden state [N, 1, H].
func (l *LSTM) Forward(x *mat.Tensor) *mat.Tensor {
	n, t := x.N, x.T
	h := mat.New(n, l.Hidden)
	c := mat.New(n, l.Hidden)
	l.x = x.Clone()
	l.gates = make([]*mat.Matrix, t)
	l.cells = make([]*mat.Matrix, t)
	l.hiddens = make([]*mat.Matrix, t)
	l.tanhCells = make([]*mat.Matrix, t)
	for step := 0; step < t; step++ {
		// xt: N x In slice of the tensor at position `step`.
		xt := mat.New(n, l.In)
		for s := 0; s < n; s++ {
			copy(xt.Row(s), x.Sample(s).Row(step))
		}
		z := mat.MulTransB(xt, l.Wx.W) // N x 4H
		z.AddInPlace(mat.MulTransB(h, l.Wh.W))
		z.AddRowVector(l.B.W.Data)
		// Activate the gates in place.
		H := l.Hidden
		for s := 0; s < n; s++ {
			row := z.Row(s)
			for j := 0; j < H; j++ {
				row[j] = SigmoidFn(row[j])         // i
				row[H+j] = SigmoidFn(row[H+j])     // f
				row[2*H+j] = tanhf(row[2*H+j])     // g
				row[3*H+j] = SigmoidFn(row[3*H+j]) // o
			}
		}
		newC := mat.New(n, H)
		newH := mat.New(n, H)
		tc := mat.New(n, H)
		for s := 0; s < n; s++ {
			zr := z.Row(s)
			cr := c.Row(s)
			ncr := newC.Row(s)
			nhr := newH.Row(s)
			tcr := tc.Row(s)
			for j := 0; j < H; j++ {
				ncr[j] = zr[H+j]*cr[j] + zr[j]*zr[2*H+j]
				tcr[j] = tanhf(ncr[j])
				nhr[j] = zr[3*H+j] * tcr[j]
			}
		}
		l.gates[step] = z
		l.cells[step] = newC
		l.hiddens[step] = newH
		l.tanhCells[step] = tc
		h, c = newH, newC
	}
	out := mat.NewTensor(n, 1, l.Hidden)
	for s := 0; s < n; s++ {
		copy(out.Sample(s).Row(0), h.Row(s))
	}
	return out
}

// Backward runs truncated-free BPTT over the whole sequence.
func (l *LSTM) Backward(grad *mat.Tensor) *mat.Tensor {
	n, t := l.x.N, l.x.T
	H := l.Hidden
	dh := mat.New(n, H)
	for s := 0; s < n; s++ {
		copy(dh.Row(s), grad.Sample(s).Row(0))
	}
	dc := mat.New(n, H)
	dx := mat.NewTensor(n, t, l.In)
	for step := t - 1; step >= 0; step-- {
		z := l.gates[step]
		tc := l.tanhCells[step]
		var prevC *mat.Matrix
		if step > 0 {
			prevC = l.cells[step-1]
		} else {
			prevC = mat.New(n, H)
		}
		dz := mat.New(n, 4*H)
		for s := 0; s < n; s++ {
			zr := z.Row(s)
			dhr := dh.Row(s)
			dcr := dc.Row(s)
			tcr := tc.Row(s)
			pcr := prevC.Row(s)
			dzr := dz.Row(s)
			for j := 0; j < H; j++ {
				i, f, g, o := zr[j], zr[H+j], zr[2*H+j], zr[3*H+j]
				dco := dcr[j] + dhr[j]*o*(1-tcr[j]*tcr[j])
				dzr[j] = dco * g * i * (1 - i)             // d pre-i
				dzr[H+j] = dco * pcr[j] * f * (1 - f)      // d pre-f
				dzr[2*H+j] = dco * i * (1 - g*g)           // d pre-g
				dzr[3*H+j] = dhr[j] * tcr[j] * o * (1 - o) // d pre-o
				dcr[j] = dco * f                           // carries to step-1
			}
		}
		// Parameter gradients.
		xt := mat.New(n, l.In)
		for s := 0; s < n; s++ {
			copy(xt.Row(s), l.x.Sample(s).Row(step))
		}
		var hPrev *mat.Matrix
		if step > 0 {
			hPrev = l.hiddens[step-1]
		} else {
			hPrev = mat.New(n, H)
		}
		l.Wx.G.AddInPlace(mat.MulTransA(dz, xt))
		l.Wh.G.AddInPlace(mat.MulTransA(dz, hPrev))
		for s := 0; s < n; s++ {
			for j, v := range dz.Row(s) {
				l.B.G.Data[j] += v
			}
		}
		// Input and recurrent gradients.
		dxt := mat.Mul(dz, l.Wx.W) // N x In
		for s := 0; s < n; s++ {
			copy(dx.Sample(s).Row(step), dxt.Row(s))
		}
		dh = mat.Mul(dz, l.Wh.W) // N x H, gradient into h_{t-1}
	}
	return dx
}

// Params returns the LSTM parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// Name reports the layer name.
func (l *LSTM) Name() string { return "lstm" }

// NewLSTMPredictor builds the Voyager-class baseline: LSTM over the input
// sequence followed by a linear head emitting delta-bitmap logits.
func NewLSTMPredictor(din, hidden, dout int, rng *rand.Rand) *Sequential {
	return NewSequential("lstm-predictor",
		NewLSTM("lstm", din, hidden, rng),
		NewLinear("lstm.head", hidden, dout, rng),
	)
}
