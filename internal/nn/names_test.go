package nn

import (
	"math/rand"
	"testing"

	"dart/internal/mat"
)

// TestLayerNames pins every Layer's Name() — checkpoint files and the
// store's param manifests key on these strings, so a rename is a
// compatibility break, not a cosmetic change.
func TestLayerNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear("fc1", 4, 4, rng)
	cases := []struct {
		layer Layer
		want  string
	}{
		{NewReLU(), "relu"},
		{NewSigmoid(), "sigmoid"},
		{NewMeanPool(), "meanpool"},
		{NewMultiHeadSelfAttention("msa0", 4, 2, rng), "msa"},
		{NewLSTM("l0", 4, 4, rng), "lstm"},
		{lin, "fc1"},
		{NewLayerNorm("ln1", 4), "ln1"},
		{NewPositionalEmbedding("pos", 8, 4, rng), "pos"},
		{NewResidual(NewReLU()), "residual(relu)"},
		{NewSequential("model", NewReLU()), "model"},
	}
	for _, c := range cases {
		if got := c.layer.Name(); got != c.want {
			t.Errorf("%T.Name() = %q, want %q", c.layer, got, c.want)
		}
	}

	// SetWeights replaces the parameters in place (tabularization fine-tuning).
	w := mat.New(4, 4)
	for i := range w.Data {
		w.Data[i] = float64(i)
	}
	b := []float64{1, 2, 3, 4}
	lin.SetWeights(w, b)
	if lin.Weight.W.At(2, 3) != w.At(2, 3) || lin.Bias.W.Data[3] != 4 {
		t.Fatal("SetWeights did not replace the parameters")
	}
}
