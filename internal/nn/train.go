package nn

import (
	"math/rand"

	"dart/internal/mat"
)

// Trainer drives minibatch training of a model against a LossFunc.
type Trainer struct {
	Model Layer
	Opt   Optimizer
	Batch int
	Rng   *rand.Rand
}

// NewTrainer builds a trainer with the given batch size.
func NewTrainer(model Layer, opt Optimizer, batch int, rng *rand.Rand) *Trainer {
	if batch <= 0 {
		batch = 32
	}
	return &Trainer{Model: model, Opt: opt, Batch: batch, Rng: rng}
}

// TrainEpoch shuffles the dataset, runs one epoch of minibatch updates, and
// returns the mean per-batch loss.
func (tr *Trainer) TrainEpoch(x, y *mat.Tensor, loss LossFunc) float64 {
	n := x.N
	idx := tr.Rng.Perm(n)
	var total float64
	var batches int
	for lo := 0; lo < n; lo += tr.Batch {
		hi := lo + tr.Batch
		if hi > n {
			hi = n
		}
		bi := idx[lo:hi]
		bx := x.Gather(bi)
		by := y.Gather(bi)
		logits := tr.Model.Forward(bx)
		l, grad := loss(logits, by)
		tr.Model.Backward(grad)
		tr.Opt.Step(tr.Model.Params())
		total += l
		batches++
	}
	if batches == 0 {
		return 0
	}
	return total / float64(batches)
}

// Predict runs a forward pass in evaluation mode (no gradient bookkeeping is
// avoided in this simple library, but weights are untouched) and returns the
// logits.
func Predict(model Layer, x *mat.Tensor) *mat.Tensor {
	return model.Forward(x)
}
