package nn

import (
	"math"
	"math/rand"
	"testing"

	"dart/internal/mat"
)

func TestLinearForwardMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 2, 2, rng)
	l.Weight.W.CopyFrom(mat.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	copy(l.Bias.W.Data, []float64{10, 20})
	x := mat.TensorFromSlice(1, 1, 2, []float64{5, 6})
	y := l.Forward(x)
	// y = W·x + b = [1*5+2*6+10, 3*5+4*6+20] = [27, 59]
	if y.Data[0] != 27 || y.Data[1] != 59 {
		t.Fatalf("linear forward = %v", y.Data)
	}
}

func TestLayerNormNormalises(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ln := NewLayerNorm("ln", 8)
	x := randTensor(rng, 3, 2, 8)
	y := ln.Forward(x)
	for n := 0; n < y.N; n++ {
		for tt := 0; tt < y.T; tt++ {
			row := y.Sample(n).Row(tt)
			var mean, vr float64
			for _, v := range row {
				mean += v
			}
			mean /= 8
			for _, v := range row {
				vr += (v - mean) * (v - mean)
			}
			vr /= 8
			if math.Abs(mean) > 1e-9 || math.Abs(vr-1) > 1e-3 {
				t.Fatalf("layernorm row mean=%v var=%v", mean, vr)
			}
		}
	}
}

func TestAttentionRowsAreConvexCombinations(t *testing.T) {
	// With WV = identity and WO = identity, each output row must lie inside
	// the convex hull of the value rows, so its range is bounded by V's range.
	rng := rand.New(rand.NewSource(3))
	a := NewMultiHeadSelfAttention("msa", 4, 1, rng)
	setIdentity := func(l *Linear) {
		l.Weight.W.Zero()
		for i := 0; i < 4; i++ {
			l.Weight.W.Set(i, i, 1)
		}
		for i := range l.Bias.W.Data {
			l.Bias.W.Data[i] = 0
		}
	}
	setIdentity(a.WV)
	setIdentity(a.WO)
	x := randTensor(rng, 1, 5, 4)
	y := a.Forward(x)
	xm := x.Sample(0)
	ym := y.Sample(0)
	for d := 0; d < 4; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 5; i++ {
			v := xm.At(i, d)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for i := 0; i < 5; i++ {
			v := ym.At(i, d)
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("attention output %v outside value hull [%v,%v]", v, lo, hi)
			}
		}
	}
}

func TestAttentionSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMultiHeadSelfAttention("msa", 6, 2, rng)
	a.Forward(randTensor(rng, 2, 4, 6))
	for _, perSample := range a.attn {
		for _, m := range perSample {
			for i := 0; i < m.Rows; i++ {
				var s float64
				for _, v := range m.Row(i) {
					s += v
				}
				if math.Abs(s-1) > 1e-9 {
					t.Fatalf("attention row sums to %v", s)
				}
			}
		}
	}
}

func TestBCEWithLogitsMatchesDirect(t *testing.T) {
	logits := mat.TensorFromSlice(1, 1, 3, []float64{0.5, -1.2, 3.0})
	targets := mat.TensorFromSlice(1, 1, 3, []float64{1, 0, 1})
	loss, grad := BCEWithLogits(logits, targets)
	var want float64
	for i, z := range logits.Data {
		p := SigmoidFn(z)
		y := targets.Data[i]
		want += -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	want /= 3
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("BCE loss %v want %v", loss, want)
	}
	// Gradient: (σ(z)-y)/n
	for i, z := range logits.Data {
		g := (SigmoidFn(z) - targets.Data[i]) / 3
		if math.Abs(grad.Data[i]-g) > 1e-12 {
			t.Fatalf("BCE grad[%d] = %v want %v", i, grad.Data[i], g)
		}
	}
}

func TestBCEExtremeLogitsStable(t *testing.T) {
	logits := mat.TensorFromSlice(1, 1, 2, []float64{1000, -1000})
	targets := mat.TensorFromSlice(1, 1, 2, []float64{1, 0})
	loss, grad := BCEWithLogits(logits, targets)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("BCE unstable: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("perfect prediction loss should be ~0, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestMSELoss(t *testing.T) {
	p := mat.TensorFromSlice(1, 1, 2, []float64{1, 3})
	y := mat.TensorFromSlice(1, 1, 2, []float64{0, 0})
	loss, grad := MSE(p, y)
	if math.Abs(loss-5) > 1e-12 { // (1+9)/2
		t.Fatalf("MSE = %v", loss)
	}
	if math.Abs(grad.Data[0]-1) > 1e-12 || math.Abs(grad.Data[1]-3) > 1e-12 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear("lin", 3, 1, rng)
	x := randTensor(rng, 16, 1, 3)
	y := mat.NewTensor(16, 1, 1)
	for n := 0; n < 16; n++ {
		s := x.Sample(n).Row(0)
		if s[0]+s[1] > 0 {
			y.Sample(n).Set(0, 0, 1)
		}
	}
	opt := &SGD{LR: 0.5}
	first := -1.0
	var last float64
	for e := 0; e < 50; e++ {
		logits := l.Forward(x)
		loss, grad := BCEWithLogits(logits, y)
		l.Backward(grad)
		opt.Step(l.Params())
		if first < 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("SGD failed to reduce loss: %v -> %v", first, last)
	}
}

func TestAdamTrainsTransformerOnSyntheticTask(t *testing.T) {
	// The model must learn "label j is set iff mean of feature j over the
	// sequence is positive" — exercising attention, FFN, pooling, and head.
	rng := rand.New(rand.NewSource(6))
	cfg := TransformerConfig{T: 4, DIn: 4, DModel: 8, DFF: 16, DOut: 4, Heads: 2, Layers: 1}
	m := NewTransformerPredictor(cfg, rng)
	n := 64
	x := randTensor(rng, n, cfg.T, cfg.DIn)
	y := mat.NewTensor(n, 1, cfg.DOut)
	for s := 0; s < n; s++ {
		sm := x.Sample(s)
		for d := 0; d < cfg.DIn; d++ {
			var sum float64
			for tt := 0; tt < cfg.T; tt++ {
				sum += sm.At(tt, d)
			}
			if sum > 0 {
				y.Sample(s).Set(0, d, 1)
			}
		}
	}
	tr := NewTrainer(m, NewAdam(0.01), 16, rng)
	first := tr.TrainEpoch(x, y, BCEWithLogits)
	var last float64
	for e := 0; e < 30; e++ {
		last = tr.TrainEpoch(x, y, BCEWithLogits)
	}
	if last > first*0.5 {
		t.Fatalf("Adam training barely reduced loss: %v -> %v", first, last)
	}
	// Training accuracy should be well above chance.
	logits := m.Forward(x)
	correct, total := 0, 0
	for i, z := range logits.Data {
		pred := 0.0
		if z > 0 {
			pred = 1
		}
		if pred == y.Data[i] {
			correct++
		}
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("training accuracy %v < 0.8", acc)
	}
}

func TestLSTMPredictorTrains(t *testing.T) {
	// Label = 1 iff the last step's first feature is positive; the LSTM must
	// carry information across time.
	rng := rand.New(rand.NewSource(7))
	m := NewLSTMPredictor(2, 8, 1, rng)
	n := 64
	x := randTensor(rng, n, 3, 2)
	y := mat.NewTensor(n, 1, 1)
	for s := 0; s < n; s++ {
		if x.Sample(s).At(2, 0) > 0 {
			y.Sample(s).Set(0, 0, 1)
		}
	}
	tr := NewTrainer(m, NewAdam(0.02), 16, rng)
	var last float64
	first := tr.TrainEpoch(x, y, BCEWithLogits)
	for e := 0; e < 40; e++ {
		last = tr.TrainEpoch(x, y, BCEWithLogits)
	}
	if last > first*0.5 {
		t.Fatalf("LSTM training barely reduced loss: %v -> %v", first, last)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLinear("lin", 3, 2, rng)
	if got := ParamCount(l); got != 3*2+2 {
		t.Fatalf("ParamCount = %d", got)
	}
}

func TestTransformerConfigValidate(t *testing.T) {
	bad := TransformerConfig{T: 4, DIn: 4, DModel: 7, DFF: 8, DOut: 2, Heads: 2, Layers: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
	if err := (TransformerConfig{}).Validate(); err == nil {
		t.Fatal("expected non-positive error")
	}
	good := TransformerConfig{T: 4, DIn: 4, DModel: 8, DFF: 8, DOut: 2, Heads: 2, Layers: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestSequentialForwardUpTo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSequential("s",
		NewLinear("a", 2, 3, rng),
		NewReLU(),
		NewLinear("b", 3, 2, rng),
	)
	x := randTensor(rng, 1, 1, 2)
	mid := s.ForwardUpTo(x.Clone(), 2)
	if mid.D != 3 {
		t.Fatalf("intermediate D = %d", mid.D)
	}
	full := s.ForwardUpTo(x.Clone(), 3)
	direct := s.Forward(x.Clone())
	if !mat.EqualApprox(full.AsMatrix(), direct.AsMatrix(), 1e-12) {
		t.Fatal("ForwardUpTo(len) != Forward")
	}
}

// TestStudentConfigCompact: the derived student must be a valid transformer
// config that is strictly smaller than its teacher for every teacher in the
// configurator's design space, and idempotent shrinking must bottom out
// rather than producing a degenerate architecture.
func TestStudentConfigCompact(t *testing.T) {
	teachers := []TransformerConfig{
		{T: 8, DIn: 10, DModel: 64, DFF: 128, DOut: 64, Heads: 4, Layers: 2},
		{T: 8, DIn: 10, DModel: 32, DFF: 64, DOut: 64, Heads: 2, Layers: 1},
		{T: 4, DIn: 5, DModel: 16, DFF: 64, DOut: 16, Heads: 2, Layers: 2},
	}
	for _, tc := range teachers {
		s := StudentConfig(tc)
		if err := s.Validate(); err != nil {
			t.Fatalf("student of %+v invalid: %v", tc, err)
		}
		rng := rand.New(rand.NewSource(1))
		tp := ParamCount(NewTransformerPredictor(tc, rng))
		sp := ParamCount(NewTransformerPredictor(s, rng))
		if sp >= tp {
			t.Fatalf("student of %+v not smaller: %d params vs teacher %d", tc, sp, tp)
		}
		if s.T != tc.T || s.DIn != tc.DIn || s.DOut != tc.DOut {
			t.Fatalf("student changed interface dims: %+v -> %+v", tc, s)
		}
	}
	// Repeated shrinking must stay valid (bottoms out at 2 heads x 2 dims).
	c := teachers[0]
	for i := 0; i < 6; i++ {
		c = StudentConfig(c)
		if err := c.Validate(); err != nil {
			t.Fatalf("shrink %d invalid: %v (%+v)", i, err, c)
		}
	}
}
