package nn

import (
	"math"

	"dart/internal/mat"
)

// LossFunc maps model logits and targets to a scalar loss and the gradient of
// that loss with respect to the logits.
type LossFunc func(logits, targets *mat.Tensor) (float64, *mat.Tensor)

// BCEWithLogits is numerically stable binary cross-entropy over logits,
// averaged over every element; the paper trains the multi-label delta-bitmap
// predictor with this loss (Sec. VI-B).
func BCEWithLogits(logits, targets *mat.Tensor) (float64, *mat.Tensor) {
	if len(logits.Data) != len(targets.Data) {
		panic("nn: BCEWithLogits shape mismatch")
	}
	grad := mat.NewTensor(logits.N, logits.T, logits.D)
	inv := 1 / float64(len(logits.Data))
	var loss float64
	for i, z := range logits.Data {
		y := targets.Data[i]
		// loss = max(z,0) - z*y + log(1+exp(-|z|))
		m := z
		if m < 0 {
			m = 0
		}
		loss += m - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		grad.Data[i] = (SigmoidFn(z) - y) * inv
	}
	return loss * inv, grad
}

// MSE is mean squared error; the layer fine-tuning step of Algorithm 1 trains
// each tabularized layer against the original layer output with this loss
// (Eq. 26).
func MSE(pred, target *mat.Tensor) (float64, *mat.Tensor) {
	if len(pred.Data) != len(target.Data) {
		panic("nn: MSE shape mismatch")
	}
	grad := mat.NewTensor(pred.N, pred.T, pred.D)
	inv := 1 / float64(len(pred.Data))
	var loss float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d * inv
	}
	return loss * inv, grad
}
