package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"dart/internal/mat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := TransformerConfig{T: 3, DIn: 4, DModel: 8, DFF: 16, DOut: 5, Heads: 2, Layers: 1}
	m := NewTransformerPredictor(cfg, rng)
	x := randTensor(rng, 2, 3, 4)
	want := m.Forward(x.Clone())

	var buf bytes.Buffer
	if err := SaveParams(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2 := NewTransformerPredictor(cfg, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, m2); err != nil {
		t.Fatal(err)
	}
	got := m2.Forward(x.Clone())
	if !mat.EqualApprox(got.AsMatrix(), want.AsMatrix(), 1e-12) {
		t.Fatal("loaded model diverges from saved model")
	}
}

func TestLoadParamsArchitectureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewLinear("a", 3, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Wrong name.
	other := NewLinear("b", 3, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("expected name mismatch error")
	}
	// Wrong shape.
	buf.Reset()
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	shaped := NewLinear("a", 4, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), shaped); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	// Wrong parameter count.
	buf.Reset()
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	seq := NewSequential("s", NewLinear("a", 3, 2, rng), NewLinear("c", 2, 2, rng))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), seq); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestLoadParamsGarbageInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewLinear("a", 2, 2, rng)
	if err := LoadParams(bytes.NewReader([]byte("not gob")), m); err == nil {
		t.Fatal("expected decode error")
	}
}
