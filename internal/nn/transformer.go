package nn

import (
	"fmt"
	"math/rand"
)

// TransformerConfig describes the attention-based memory-access predictor of
// the paper's Fig. 6 using the notation of Table I: a T-length sequence of
// DIn-dimensional segmented addresses, an input projection to DModel, L
// pre-norm transformer encoder layers (MSA with Heads heads plus a DFF
// feed-forward block), mean pooling, and a DOut-way multi-label head that
// emits delta-bitmap logits.
type TransformerConfig struct {
	T      int // input sequence length (T_I == T_T: one token per access)
	DIn    int // segmented-address dimension D_I
	DModel int // attention dimension D_A
	DFF    int // feed-forward hidden dimension D_F
	DOut   int // delta bitmap size D_O
	Heads  int // attention heads H
	Layers int // encoder layers L
}

// Validate reports configuration errors.
func (c TransformerConfig) Validate() error {
	switch {
	case c.T <= 0 || c.DIn <= 0 || c.DModel <= 0 || c.DFF <= 0 || c.DOut <= 0:
		return fmt.Errorf("nn: non-positive dimension in %+v", c)
	case c.Heads <= 0 || c.Layers <= 0:
		return fmt.Errorf("nn: non-positive heads/layers in %+v", c)
	case c.DModel%c.Heads != 0:
		return fmt.Errorf("nn: DModel %d not divisible by heads %d", c.DModel, c.Heads)
	}
	return nil
}

// StudentConfig derives the compact student architecture the distillation
// tier serves from a teacher's: half the encoder depth, attention width, and
// feed-forward width, clamped so the result stays a valid (head-divisible)
// transformer. The shrink is the knob behind the serving tier's latency and
// storage win — roughly 4x fewer parameters per halving of DModel/DFF.
func StudentConfig(t TransformerConfig) TransformerConfig {
	s := t
	s.Layers = (t.Layers + 1) / 2
	if s.Heads > 2 {
		s.Heads = 2
	}
	s.DModel = t.DModel / 2
	if min := 2 * s.Heads; s.DModel < min {
		s.DModel = min
	}
	s.DModel -= s.DModel % s.Heads
	s.DFF = t.DFF / 2
	if s.DFF < s.DModel {
		s.DFF = s.DModel
	}
	return s
}

// NewTransformerPredictor builds the predictor as a flat Sequential whose
// layer sequence mirrors Algorithm 1's tabularization walk:
//
//	input linear → L×[ residual(LN→MSA) → residual(LN→linear→relu→linear) ]
//	→ mean-pool → output linear
//
// The model emits logits; apply Sigmoid (or train with BCEWithLogits) to get
// per-delta probabilities.
func NewTransformerPredictor(cfg TransformerConfig, rng *rand.Rand) *Sequential {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	layers := []Layer{
		NewLinear("input", cfg.DIn, cfg.DModel, rng),
		NewPositionalEmbedding("pos", cfg.T, cfg.DModel, rng),
	}
	for l := 0; l < cfg.Layers; l++ {
		p := fmt.Sprintf("enc%d", l)
		layers = append(layers,
			NewResidual(NewSequential(p+".attnblock",
				NewLayerNorm(p+".ln1", cfg.DModel),
				NewMultiHeadSelfAttention(p+".msa", cfg.DModel, cfg.Heads, rng),
			)),
			NewResidual(NewSequential(p+".ffnblock",
				NewLayerNorm(p+".ln2", cfg.DModel),
				NewLinear(p+".ffn1", cfg.DModel, cfg.DFF, rng),
				NewReLU(),
				NewLinear(p+".ffn2", cfg.DFF, cfg.DModel, rng),
			)),
		)
	}
	layers = append(layers,
		NewMeanPool(),
		NewLinear("output", cfg.DModel, cfg.DOut, rng),
	)
	return NewSequential("transformer", layers...)
}

// ParamCount returns the total number of scalar parameters in a model.
func ParamCount(m Layer) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W.Data)
	}
	return n
}
