package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dart/internal/mat"
)

// Linear is a fully connected layer applied independently at every sequence
// position: y[t] = x[t]·Wᵀ + b, matching the paper's Linear(X) = WX + B with
// weight W of shape [DO, DI] (Eq. 1).
type Linear struct {
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [1, Out]

	x    *mat.Matrix // cached flattened input (N*T, In)
	n, t int
}

// NewLinear constructs a linear layer with Kaiming-uniform initialisation.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: newParam(name+".weight", out, in),
		Bias:   newParam(name+".bias", 1, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	l.Weight.W.RandUniform(rng, bound)
	return l
}

// Forward computes y = x Wᵀ + b on the flattened (N*T, In) view.
func (l *Linear) Forward(x *mat.Tensor) *mat.Tensor {
	if x.D != l.In {
		panic(fmt.Sprintf("nn: linear %s expects D=%d, got %d", l.Name(), l.In, x.D))
	}
	l.x = x.AsMatrix().Clone()
	l.n, l.t = x.N, x.T
	y := mat.MulTransB(l.x, l.Weight.W) // (N*T, Out)
	y.AddRowVector(l.Bias.W.Data)
	return mat.TensorFromSlice(x.N, x.T, l.Out, y.Data)
}

// Backward accumulates dW = dYᵀX, db = Σ dY rows, and returns dX = dY·W.
func (l *Linear) Backward(grad *mat.Tensor) *mat.Tensor {
	g := grad.AsMatrix()
	// dW [Out, In] = gᵀ [Out, N*T] * x [N*T, In]
	l.Weight.G.AddInPlace(mat.MulTransA(g, l.x))
	for i := 0; i < g.Rows; i++ {
		row := g.Row(i)
		for j, v := range row {
			l.Bias.G.Data[j] += v
		}
	}
	dx := mat.Mul(g, l.Weight.W) // (N*T, In)
	return mat.TensorFromSlice(l.n, l.t, l.In, dx.Data)
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Name reports the layer name.
func (l *Linear) Name() string { return l.Weight.Name[:len(l.Weight.Name)-len(".weight")] }

// SetWeights replaces the layer parameters (used by tabularization fine-tuning).
func (l *Linear) SetWeights(w *mat.Matrix, b []float64) {
	l.Weight.W.CopyFrom(w)
	copy(l.Bias.W.Data, b)
}
