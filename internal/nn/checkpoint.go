package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Checkpoint layout (all integers big-endian):
//
//	magic    [8]byte  "DARTCKP1"
//	metaLen  uint32   length of the gob-encoded CheckpointMeta
//	bodyLen  uint32   length of the gob-encoded parameter state
//	crc      uint32   IEEE CRC-32 over meta ++ body
//	meta     []byte
//	body     []byte
//
// The CRC covers everything after the fixed header, so a truncated, bit-
// flipped, or garbage file is rejected with a descriptive error instead of
// being half-applied to a live model — the property the online model store
// relies on to fall back to the last good version.
var checkpointMagic = [8]byte{'D', 'A', 'R', 'T', 'C', 'K', 'P', '1'}

// checkpointFormat is the current format revision, stamped into the metadata.
const checkpointFormat = 1

// maxCheckpointSection caps the declared meta/body lengths so a corrupt
// header cannot trigger a multi-gigabyte allocation before the CRC check.
const maxCheckpointSection = 1 << 30

// CheckpointMeta is the header the online-learning subsystem stores alongside
// model parameters: enough to identify the snapshot without decoding it.
// Class was added for the distilled-student serving tier; gob decoding leaves
// it empty on checkpoints written before it existed, which the store treats
// as the default class.
type CheckpointMeta struct {
	Format   int     // checkpoint format revision (checkpointFormat)
	Model    string  // architecture label (Layer.Name of the saved model)
	Class    string  // model class ("" = online teacher, "student" = distilled student)
	Version  uint64  // model-store version number
	Examples uint64  // cumulative training examples consumed
	Steps    uint64  // cumulative optimizer steps taken
	Loss     float64 // online loss EWMA at save time
}

// SaveCheckpoint writes a CRC-validated parameter snapshot with a metadata
// header. meta.Format and meta.Model are filled in by this function.
func SaveCheckpoint(w io.Writer, m Layer, meta CheckpointMeta) error {
	meta.Format = checkpointFormat
	meta.Model = m.Name()
	var metaBuf, bodyBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(meta); err != nil {
		return fmt.Errorf("nn: encode checkpoint meta: %w", err)
	}
	if err := gob.NewEncoder(&bodyBuf).Encode(stateOf(m)); err != nil {
		return fmt.Errorf("nn: encode checkpoint params: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(metaBuf.Bytes())
	crc.Write(bodyBuf.Bytes())
	var hdr [20]byte
	copy(hdr[:8], checkpointMagic[:])
	binary.BigEndian.PutUint32(hdr[8:12], uint32(metaBuf.Len()))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(bodyBuf.Len()))
	binary.BigEndian.PutUint32(hdr[16:20], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint header: %w", err)
	}
	if _, err := w.Write(metaBuf.Bytes()); err != nil {
		return fmt.Errorf("nn: write checkpoint meta: %w", err)
	}
	if _, err := w.Write(bodyBuf.Bytes()); err != nil {
		return fmt.Errorf("nn: write checkpoint params: %w", err)
	}
	return nil
}

// PeekCheckpoint reads and validates a checkpoint, returning its metadata
// without applying the parameters to a model. The CRC is verified before
// anything is decoded.
func PeekCheckpoint(r io.Reader) (CheckpointMeta, error) {
	meta, _, err := readCheckpoint(r)
	return meta, err
}

// readCheckpoint validates a checkpoint and decodes its two sections.
func readCheckpoint(r io.Reader) (CheckpointMeta, modelState, error) {
	var meta CheckpointMeta
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return meta, modelState{}, fmt.Errorf("nn: truncated checkpoint header: %w", err)
	}
	if [8]byte(hdr[:8]) != checkpointMagic {
		return meta, modelState{}, fmt.Errorf("nn: not a DART checkpoint (bad magic %q)", hdr[:8])
	}
	metaLen := binary.BigEndian.Uint32(hdr[8:12])
	bodyLen := binary.BigEndian.Uint32(hdr[12:16])
	wantCRC := binary.BigEndian.Uint32(hdr[16:20])
	if metaLen > maxCheckpointSection || bodyLen > maxCheckpointSection {
		return meta, modelState{}, fmt.Errorf("nn: checkpoint declares implausible section sizes (meta %d, body %d): header is corrupt", metaLen, bodyLen)
	}
	payload := make([]byte, int(metaLen)+int(bodyLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return meta, modelState{}, fmt.Errorf("nn: truncated checkpoint (want %d payload bytes): %w", len(payload), err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return meta, modelState{}, fmt.Errorf("nn: checkpoint CRC mismatch (stored %08x, computed %08x): file is corrupt", wantCRC, got)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload[:metaLen])).Decode(&meta); err != nil {
		return meta, modelState{}, fmt.Errorf("nn: decode checkpoint meta: %w", err)
	}
	if meta.Format != checkpointFormat {
		return meta, modelState{}, fmt.Errorf("nn: unsupported checkpoint format %d (this build reads format %d)", meta.Format, checkpointFormat)
	}
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(payload[metaLen:])).Decode(&st); err != nil {
		return meta, modelState{}, fmt.Errorf("nn: decode checkpoint params: %w", err)
	}
	return meta, st, nil
}

// LoadCheckpoint validates a checkpoint written by SaveCheckpoint and
// restores its parameters into a model of the same architecture. The model
// is untouched unless validation (magic, CRC, format, names, shapes) passes.
func LoadCheckpoint(r io.Reader, m Layer) (CheckpointMeta, error) {
	meta, st, err := readCheckpoint(r)
	if err != nil {
		return meta, err
	}
	if err := restoreState(m, st); err != nil {
		return meta, err
	}
	return meta, nil
}
