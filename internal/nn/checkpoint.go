package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Checkpoint layout (all integers big-endian):
//
//	magic    [8]byte  "DARTCKP1" (nn parameters) / "DARTTAB1" (table hierarchies)
//	metaLen  uint32   length of the gob-encoded CheckpointMeta
//	bodyLen  uint32   length of the gob-encoded payload
//	crc      uint32   IEEE CRC-32 over meta ++ body
//	meta     []byte
//	body     []byte
//
// The CRC covers everything after the fixed header, so a truncated, bit-
// flipped, or garbage file is rejected with a descriptive error instead of
// being half-applied to a live model — the property the online model store
// relies on to fall back to the last good version. The frame (magic, header,
// CRC, gob CheckpointMeta) is shared with other checkpointed artifact kinds
// through WriteFrame/ReadFrame; each kind has its own magic, so a renamed
// file of another kind is rejected before its body is ever decoded
// (internal/tabular uses the frame for serialized hierarchies).
var checkpointMagic = [8]byte{'D', 'A', 'R', 'T', 'C', 'K', 'P', '1'}

// TableMagic tags table-hierarchy checkpoints (internal/tabular); declared
// here beside the nn magic so the two frame formats can never drift onto the
// same tag.
var TableMagic = [8]byte{'D', 'A', 'R', 'T', 'T', 'A', 'B', '1'}

// checkpointFormat is the current format revision, stamped into the metadata.
const checkpointFormat = 1

// maxCheckpointSection caps the declared meta/body lengths so a corrupt
// header cannot trigger a multi-gigabyte allocation before the CRC check.
const maxCheckpointSection = 1 << 30

// CheckpointMeta is the header the online-learning subsystem stores alongside
// model parameters: enough to identify the snapshot without decoding it.
// Class was added for the distilled-student serving tier; gob decoding leaves
// it empty on checkpoints written before it existed, which the store treats
// as the default class.
type CheckpointMeta struct {
	Format   int     // checkpoint format revision (checkpointFormat)
	Model    string  // architecture label (Layer.Name of the saved model)
	Class    string  // model class ("" = online teacher, "student", "dart")
	Version  uint64  // model-store version number
	Source   uint64  // for derived artifacts (tabularized hierarchies): the source model's version
	Examples uint64  // cumulative training examples consumed (kernel-fitting examples for tables)
	Steps    uint64  // cumulative optimizer steps taken
	Loss     float64 // online loss EWMA at save time
	// DataBits is the stored table entry width for tabularized hierarchies
	// (8/16 quantized, 64 float). Zero on parameter checkpoints and on table
	// checkpoints written before quantization existed (read as float64).
	DataBits int
}

// SaveCheckpoint writes a CRC-validated parameter snapshot with a metadata
// header. meta.Format and meta.Model are filled in by this function.
func SaveCheckpoint(w io.Writer, m Layer, meta CheckpointMeta) error {
	meta.Model = m.Name()
	var bodyBuf bytes.Buffer
	if err := gob.NewEncoder(&bodyBuf).Encode(stateOf(m)); err != nil {
		return fmt.Errorf("nn: encode checkpoint params: %w", err)
	}
	return WriteFrame(w, checkpointMagic, meta, bodyBuf.Bytes())
}

// WriteFrame writes one checkpoint frame: the fixed header (magic, section
// lengths, CRC over meta ++ body), the gob-encoded metadata, and the raw
// body bytes. meta.Format is stamped by this function — the frame layout,
// not the payload kind, owns the format revision.
func WriteFrame(w io.Writer, magic [8]byte, meta CheckpointMeta, body []byte) error {
	meta.Format = checkpointFormat
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(meta); err != nil {
		return fmt.Errorf("nn: encode checkpoint meta: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(metaBuf.Bytes())
	crc.Write(body)
	var hdr [20]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:12], uint32(metaBuf.Len()))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[16:20], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint header: %w", err)
	}
	if _, err := w.Write(metaBuf.Bytes()); err != nil {
		return fmt.Errorf("nn: write checkpoint meta: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("nn: write checkpoint body: %w", err)
	}
	return nil
}

// PeekCheckpoint reads and validates a checkpoint, returning its metadata
// without applying the parameters to a model. The CRC is verified before
// anything is decoded.
func PeekCheckpoint(r io.Reader) (CheckpointMeta, error) {
	meta, _, err := readCheckpoint(r)
	return meta, err
}

// ReadFrame validates one checkpoint frame against the expected magic and
// returns its metadata plus the raw body bytes. The CRC is verified before
// anything is decoded, so a truncated, bit-flipped, or garbage file (or a
// renamed frame of a different kind — wrong magic) is rejected whole.
func ReadFrame(r io.Reader, magic [8]byte) (CheckpointMeta, []byte, error) {
	var meta CheckpointMeta
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return meta, nil, fmt.Errorf("nn: truncated checkpoint header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return meta, nil, fmt.Errorf("nn: not a %q checkpoint (bad magic %q)", magic[:], hdr[:8])
	}
	metaLen := binary.BigEndian.Uint32(hdr[8:12])
	bodyLen := binary.BigEndian.Uint32(hdr[12:16])
	wantCRC := binary.BigEndian.Uint32(hdr[16:20])
	if metaLen > maxCheckpointSection || bodyLen > maxCheckpointSection {
		return meta, nil, fmt.Errorf("nn: checkpoint declares implausible section sizes (meta %d, body %d): header is corrupt", metaLen, bodyLen)
	}
	payload := make([]byte, int(metaLen)+int(bodyLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return meta, nil, fmt.Errorf("nn: truncated checkpoint (want %d payload bytes): %w", len(payload), err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return meta, nil, fmt.Errorf("nn: checkpoint CRC mismatch (stored %08x, computed %08x): file is corrupt", wantCRC, got)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload[:metaLen])).Decode(&meta); err != nil {
		return meta, nil, fmt.Errorf("nn: decode checkpoint meta: %w", err)
	}
	if meta.Format != checkpointFormat {
		return meta, nil, fmt.Errorf("nn: unsupported checkpoint format %d (this build reads format %d)", meta.Format, checkpointFormat)
	}
	return meta, payload[metaLen:], nil
}

// readCheckpoint validates a checkpoint and decodes its two sections.
func readCheckpoint(r io.Reader) (CheckpointMeta, modelState, error) {
	meta, body, err := ReadFrame(r, checkpointMagic)
	if err != nil {
		return meta, modelState{}, err
	}
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return meta, modelState{}, fmt.Errorf("nn: decode checkpoint params: %w", err)
	}
	return meta, st, nil
}

// LoadCheckpoint validates a checkpoint written by SaveCheckpoint and
// restores its parameters into a model of the same architecture. The model
// is untouched unless validation (magic, CRC, format, names, shapes) passes.
func LoadCheckpoint(r io.Reader, m Layer) (CheckpointMeta, error) {
	meta, st, err := readCheckpoint(r)
	if err != nil {
		return meta, err
	}
	if err := restoreState(m, st); err != nil {
		return meta, err
	}
	return meta, nil
}
