package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelState is the on-wire form of a model's parameters.
type modelState struct {
	Names  []string
	Shapes [][2]int
	Data   [][]float64
}

// stateOf snapshots a model's parameters.
func stateOf(m Layer) modelState {
	params := m.Params()
	st := modelState{
		Names:  make([]string, len(params)),
		Shapes: make([][2]int, len(params)),
		Data:   make([][]float64, len(params)),
	}
	for i, p := range params {
		st.Names[i] = p.Name
		st.Shapes[i] = [2]int{p.W.Rows, p.W.Cols}
		st.Data[i] = append([]float64(nil), p.W.Data...)
	}
	return st
}

// restoreState copies a parameter snapshot into a model of the same
// architecture, verifying names and shapes.
func restoreState(m Layer, st modelState) error {
	params := m.Params()
	if len(params) != len(st.Names) {
		return fmt.Errorf("nn: model has %d params, snapshot has %d", len(params), len(st.Names))
	}
	for i, p := range params {
		if p.Name != st.Names[i] {
			return fmt.Errorf("nn: param %d name %q != snapshot %q", i, p.Name, st.Names[i])
		}
		if p.W.Rows != st.Shapes[i][0] || p.W.Cols != st.Shapes[i][1] {
			return fmt.Errorf("nn: param %q shape %dx%d != snapshot %dx%d",
				p.Name, p.W.Rows, p.W.Cols, st.Shapes[i][0], st.Shapes[i][1])
		}
		copy(p.W.Data, st.Data[i])
	}
	return nil
}

// SaveParams writes a model's parameters with encoding/gob. Only parameter
// values are stored; the caller is responsible for reconstructing a model of
// the same architecture before loading. For durable on-disk snapshots prefer
// SaveCheckpoint, which adds a metadata header and CRC validation.
func SaveParams(w io.Writer, m Layer) error {
	return gob.NewEncoder(w).Encode(stateOf(m))
}

// LoadParams restores parameters saved by SaveParams into a model of the
// same architecture. It verifies names and shapes.
func LoadParams(r io.Reader, m Layer) error {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	return restoreState(m, st)
}

// CopyParams copies the parameter values of src into dst. Both models must
// share the same architecture (same parameter names and shapes, as produced
// by the same constructor); gradients and any optimizer state are untouched.
// The online-learning model store uses this to clone a training shadow into
// an immutable published snapshot.
func CopyParams(dst, src Layer) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: model has %d params, source has %d", len(dp), len(sp))
	}
	for i, d := range dp {
		s := sp[i]
		if d.Name != s.Name {
			return fmt.Errorf("nn: param %d name %q != source %q", i, d.Name, s.Name)
		}
		if d.W.Rows != s.W.Rows || d.W.Cols != s.W.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d != source %dx%d",
				d.Name, d.W.Rows, d.W.Cols, s.W.Rows, s.W.Cols)
		}
		copy(d.W.Data, s.W.Data)
	}
	return nil
}
