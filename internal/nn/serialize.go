package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelState is the on-wire form of a model's parameters.
type modelState struct {
	Names  []string
	Shapes [][2]int
	Data   [][]float64
}

// SaveParams writes a model's parameters with encoding/gob. Only parameter
// values are stored; the caller is responsible for reconstructing a model of
// the same architecture before loading.
func SaveParams(w io.Writer, m Layer) error {
	params := m.Params()
	st := modelState{
		Names:  make([]string, len(params)),
		Shapes: make([][2]int, len(params)),
		Data:   make([][]float64, len(params)),
	}
	for i, p := range params {
		st.Names[i] = p.Name
		st.Shapes[i] = [2]int{p.W.Rows, p.W.Cols}
		st.Data[i] = append([]float64(nil), p.W.Data...)
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadParams restores parameters saved by SaveParams into a model of the
// same architecture. It verifies names and shapes.
func LoadParams(r io.Reader, m Layer) error {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	params := m.Params()
	if len(params) != len(st.Names) {
		return fmt.Errorf("nn: model has %d params, snapshot has %d", len(params), len(st.Names))
	}
	for i, p := range params {
		if p.Name != st.Names[i] {
			return fmt.Errorf("nn: param %d name %q != snapshot %q", i, p.Name, st.Names[i])
		}
		if p.W.Rows != st.Shapes[i][0] || p.W.Cols != st.Shapes[i][1] {
			return fmt.Errorf("nn: param %q shape %dx%d != snapshot %dx%d",
				p.Name, p.W.Rows, p.W.Cols, st.Shapes[i][0], st.Shapes[i][1])
		}
		copy(p.W.Data, st.Data[i])
	}
	return nil
}
