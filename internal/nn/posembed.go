package nn

import (
	"fmt"
	"math/rand"

	"dart/internal/mat"
)

// PositionalEmbedding adds a learned per-position embedding to the sequence:
// y[n, t, :] = x[n, t, :] + E[t, :]. Without it, self-attention followed by
// mean pooling is permutation-invariant over the access history, discarding
// the order information that delta prediction depends on.
type PositionalEmbedding struct {
	T, D int
	Emb  *Param // [T, D]
	n    int    // cached batch size for Backward
}

// NewPositionalEmbedding creates a learned positional embedding with small
// Gaussian initialisation.
func NewPositionalEmbedding(name string, t, d int, rng *rand.Rand) *PositionalEmbedding {
	p := &PositionalEmbedding{T: t, D: d, Emb: newParam(name+".emb", t, d)}
	p.Emb.W.Randn(rng, 0.02)
	return p
}

// Forward adds the embedding to every sample.
func (p *PositionalEmbedding) Forward(x *mat.Tensor) *mat.Tensor {
	if x.T != p.T || x.D != p.D {
		panic(fmt.Sprintf("nn: posembed expects [*,%d,%d], got [*,%d,%d]", p.T, p.D, x.T, x.D))
	}
	p.n = x.N
	out := x.Clone()
	for n := 0; n < x.N; n++ {
		s := out.Sample(n)
		for t := 0; t < p.T; t++ {
			row := s.Row(t)
			erow := p.Emb.W.Row(t)
			for d, v := range erow {
				row[d] += v
			}
		}
	}
	return out
}

// Backward passes the gradient through and accumulates the embedding grad.
func (p *PositionalEmbedding) Backward(grad *mat.Tensor) *mat.Tensor {
	for n := 0; n < grad.N; n++ {
		s := grad.Sample(n)
		for t := 0; t < p.T; t++ {
			row := s.Row(t)
			grow := p.Emb.G.Row(t)
			for d, v := range row {
				grow[d] += v
			}
		}
	}
	return grad.Clone()
}

// Params returns the embedding table.
func (p *PositionalEmbedding) Params() []*Param { return []*Param{p.Emb} }

// Name reports the layer name.
func (p *PositionalEmbedding) Name() string { return p.Emb.Name[:len(p.Emb.Name)-len(".emb")] }
