package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dart/internal/mat"
)

// MultiHeadSelfAttention implements Eq. 3-4 of the paper: Q, K, V are
// projected from the same input by per-layer weight matrices, h scaled
// dot-product attention heads run in parallel, and an output projection
// recombines the heads.
//
// The projections are ordinary Linear layers so that the tabularizer can
// convert them with the linear kernel, leaving only the attention core
// (softmax(QKᵀ/√Dh)·V per head) for the attention kernel.
type MultiHeadSelfAttention struct {
	D, Heads, Dh   int
	WQ, WK, WV, WO *Linear

	// Forward caches.
	q, k, v *mat.Tensor
	attn    [][]*mat.Matrix // [sample][head] softmax matrix, T x T
}

// NewMultiHeadSelfAttention constructs an MSA block over dimension d with the
// given head count; d must be divisible by heads.
func NewMultiHeadSelfAttention(name string, d, heads int, rng *rand.Rand) *MultiHeadSelfAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", d, heads))
	}
	return &MultiHeadSelfAttention{
		D: d, Heads: heads, Dh: d / heads,
		WQ: NewLinear(name+".wq", d, d, rng),
		WK: NewLinear(name+".wk", d, d, rng),
		WV: NewLinear(name+".wv", d, d, rng),
		WO: NewLinear(name+".wo", d, d, rng),
	}
}

// headView returns the Dh columns of head h from row matrix m (T x D).
func headView(m *mat.Matrix, h, dh int) *mat.Matrix {
	return m.SliceCols(h*dh, (h+1)*dh)
}

// Forward computes multi-head scaled dot-product self-attention.
func (a *MultiHeadSelfAttention) Forward(x *mat.Tensor) *mat.Tensor {
	a.q = a.WQ.Forward(x)
	a.k = a.WK.Forward(x)
	a.v = a.WV.Forward(x)
	n, t := x.N, x.T
	a.attn = make([][]*mat.Matrix, n)
	concat := mat.NewTensor(n, t, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	for s := 0; s < n; s++ {
		a.attn[s] = make([]*mat.Matrix, a.Heads)
		qs, ks, vs := a.q.Sample(s), a.k.Sample(s), a.v.Sample(s)
		out := concat.Sample(s)
		for h := 0; h < a.Heads; h++ {
			qh := headView(qs, h, a.Dh)
			kh := headView(ks, h, a.Dh)
			vh := headView(vs, h, a.Dh)
			scores := mat.MulTransB(qh, kh).Scale(scale)
			scores.RowSoftmax()
			a.attn[s][h] = scores
			oh := mat.Mul(scores, vh) // T x Dh
			for i := 0; i < t; i++ {
				copy(out.Row(i)[h*a.Dh:(h+1)*a.Dh], oh.Row(i))
			}
		}
	}
	return a.WO.Forward(concat)
}

// Backward propagates through the output projection, the per-head attention
// cores (including the softmax Jacobian), and the Q/K/V projections.
func (a *MultiHeadSelfAttention) Backward(grad *mat.Tensor) *mat.Tensor {
	dConcat := a.WO.Backward(grad)
	n, t := dConcat.N, dConcat.T
	dq := mat.NewTensor(n, t, a.D)
	dk := mat.NewTensor(n, t, a.D)
	dv := mat.NewTensor(n, t, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	for s := 0; s < n; s++ {
		qs, ks, vs := a.q.Sample(s), a.k.Sample(s), a.v.Sample(s)
		dqs, dks, dvs := dq.Sample(s), dk.Sample(s), dv.Sample(s)
		gs := dConcat.Sample(s)
		for h := 0; h < a.Heads; h++ {
			qh := headView(qs, h, a.Dh)
			kh := headView(ks, h, a.Dh)
			vh := headView(vs, h, a.Dh)
			attn := a.attn[s][h]
			// Gradient of this head's output slice.
			goh := gs.SliceCols(h*a.Dh, (h+1)*a.Dh) // T x Dh
			// dV = Aᵀ · dO
			dvh := mat.MulTransA(attn, goh)
			// dA = dO · Vᵀ
			dA := mat.MulTransB(goh, vh) // T x T
			// Softmax backward per row: dS = A ⊙ (dA - Σⱼ dAⱼAⱼ)
			dS := mat.New(t, t)
			for i := 0; i < t; i++ {
				arow := attn.Row(i)
				darow := dA.Row(i)
				var dot float64
				for j, av := range arow {
					dot += darow[j] * av
				}
				srow := dS.Row(i)
				for j, av := range arow {
					srow[j] = av * (darow[j] - dot)
				}
			}
			dS.Scale(scale)
			// dQ = dS · K ; dK = dSᵀ · Q
			dqh := mat.Mul(dS, kh)
			dkh := mat.MulTransA(dS, qh)
			for i := 0; i < t; i++ {
				copy(dqs.Row(i)[h*a.Dh:(h+1)*a.Dh], dqh.Row(i))
				copy(dks.Row(i)[h*a.Dh:(h+1)*a.Dh], dkh.Row(i))
				copy(dvs.Row(i)[h*a.Dh:(h+1)*a.Dh], dvh.Row(i))
			}
		}
	}
	gx := a.WQ.Backward(dq)
	gxk := a.WK.Backward(dk)
	gxv := a.WV.Backward(dv)
	out := gx.Clone()
	for i := range out.Data {
		out.Data[i] += gxk.Data[i] + gxv.Data[i]
	}
	return out
}

// Params returns the parameters of the four projections.
func (a *MultiHeadSelfAttention) Params() []*Param {
	var ps []*Param
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name reports the layer name.
func (a *MultiHeadSelfAttention) Name() string { return "msa" }
