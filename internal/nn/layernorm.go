package nn

import (
	"math"

	"dart/internal/mat"
)

// LayerNorm normalises each sequence position over the feature dimension and
// applies a learned affine transform: y = γ·(x-μ)/√(σ²+ε) + β.
type LayerNorm struct {
	D     int
	Gamma *Param // [1, D]
	Beta  *Param // [1, D]
	Eps   float64

	xhat   *mat.Matrix // cached normalised input, (N*T, D)
	invStd []float64   // cached 1/√(σ²+ε) per row
	n, t   int
}

// NewLayerNorm constructs a layer norm over dimension d with γ=1, β=0.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{
		D:     d,
		Gamma: newParam(name+".gamma", 1, d),
		Beta:  newParam(name+".beta", 1, d),
		Eps:   1e-5,
	}
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] = 1
	}
	return ln
}

// Forward normalises every row of the flattened (N*T, D) view.
func (ln *LayerNorm) Forward(x *mat.Tensor) *mat.Tensor {
	xm := x.AsMatrix()
	rows := xm.Rows
	ln.n, ln.t = x.N, x.T
	ln.xhat = mat.New(rows, ln.D)
	if cap(ln.invStd) < rows {
		ln.invStd = make([]float64, rows)
	}
	ln.invStd = ln.invStd[:rows]
	out := mat.New(rows, ln.D)
	g := ln.Gamma.W.Data
	b := ln.Beta.W.Data
	for i := 0; i < rows; i++ {
		row := xm.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(ln.D)
		var vr float64
		for _, v := range row {
			d := v - mean
			vr += d * d
		}
		vr /= float64(ln.D)
		inv := 1 / math.Sqrt(vr+ln.Eps)
		ln.invStd[i] = inv
		xh := ln.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			h := (v - mean) * inv
			xh[j] = h
			orow[j] = g[j]*h + b[j]
		}
	}
	return mat.TensorFromSlice(x.N, x.T, ln.D, out.Data)
}

// Backward implements the standard layer-norm gradient.
func (ln *LayerNorm) Backward(grad *mat.Tensor) *mat.Tensor {
	gm := grad.AsMatrix()
	rows := gm.Rows
	out := mat.New(rows, ln.D)
	g := ln.Gamma.W.Data
	invD := 1 / float64(ln.D)
	for i := 0; i < rows; i++ {
		grow := gm.Row(i)
		xh := ln.xhat.Row(i)
		// Parameter gradients.
		for j, gv := range grow {
			ln.Gamma.G.Data[j] += gv * xh[j]
			ln.Beta.G.Data[j] += gv
		}
		// dxhat = grad * gamma
		var sumDx, sumDxXh float64
		orow := out.Row(i)
		for j, gv := range grow {
			dxh := gv * g[j]
			orow[j] = dxh
			sumDx += dxh
			sumDxXh += dxh * xh[j]
		}
		inv := ln.invStd[i]
		for j := range orow {
			orow[j] = inv * (orow[j] - sumDx*invD - xh[j]*sumDxXh*invD)
		}
	}
	return mat.TensorFromSlice(ln.n, ln.t, ln.D, out.Data)
}

// Params returns γ and β.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Name reports the layer name.
func (ln *LayerNorm) Name() string { return ln.Gamma.Name[:len(ln.Gamma.Name)-len(".gamma")] }
