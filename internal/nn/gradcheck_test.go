package nn

import (
	"math"
	"math/rand"
	"testing"

	"dart/internal/mat"
)

// scalarLoss projects the layer output onto fixed random weights so the
// gradient check has a scalar objective: f = Σ w·layer(x).
func scalarLoss(l Layer, x *mat.Tensor, w []float64) float64 {
	y := l.Forward(x)
	var s float64
	for i, v := range y.Data {
		s += v * w[i]
	}
	return s
}

// checkGradients verifies analytic input and parameter gradients against
// central finite differences.
func checkGradients(t *testing.T, l Layer, x *mat.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	y := l.Forward(x)
	w := make([]float64, len(y.Data))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	// Analytic gradients.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	gradOut := mat.TensorFromSlice(y.N, y.T, y.D, append([]float64(nil), w...))
	l.Forward(x) // refresh caches
	dx := l.Backward(gradOut)

	const h = 1e-5
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := scalarLoss(l, x, w)
		x.Data[i] = orig - h
		fm := scalarLoss(l, x, w)
		x.Data[i] = orig
		num := (fp - fm) / (2 * h)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad[%d] analytic %.6g vs numeric %.6g", l.Name(), i, dx.Data[i], num)
		}
	}
	// Parameter gradients (sample a subset for speed on big layers).
	for _, p := range l.Params() {
		stride := 1
		if len(p.W.Data) > 64 {
			stride = len(p.W.Data) / 37
		}
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			fp := scalarLoss(l, x, w)
			p.W.Data[i] = orig - h
			fm := scalarLoss(l, x, w)
			p.W.Data[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-p.G.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %s grad[%d] analytic %.6g vs numeric %.6g",
					l.Name(), p.Name, i, p.G.Data[i], num)
			}
		}
	}
}

func randTensor(rng *rand.Rand, n, t, d int) *mat.Tensor {
	x := mat.NewTensor(n, t, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 4, 3, rng)
	checkGradients(t, l, randTensor(rng, 2, 3, 4), 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 2, 2, 5)
	// Keep activations away from the kink at 0.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] += 0.5
		}
	}
	checkGradients(t, NewReLU(), x, 1e-5)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkGradients(t, NewSigmoid(), randTensor(rng, 2, 2, 4), 1e-5)
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkGradients(t, NewLayerNorm("ln", 6), randTensor(rng, 2, 3, 6), 1e-4)
}

func TestMeanPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checkGradients(t, NewMeanPool(), randTensor(rng, 2, 4, 3), 1e-6)
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMultiHeadSelfAttention("msa", 4, 2, rng)
	checkGradients(t, a, randTensor(rng, 2, 3, 4), 1e-4)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewResidual(NewSequential("b",
		NewLayerNorm("ln", 4),
		NewLinear("l1", 4, 4, rng),
	))
	checkGradients(t, r, randTensor(rng, 2, 2, 4), 1e-4)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM("lstm", 3, 4, rng)
	checkGradients(t, l, randTensor(rng, 2, 3, 3), 1e-4)
}

func TestPositionalEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewPositionalEmbedding("pos", 3, 4, rng)
	checkGradients(t, p, randTensor(rng, 2, 3, 4), 1e-6)
}

func TestPositionalEmbeddingBreaksPermutationInvariance(t *testing.T) {
	// With the embedding, swapping two history positions must change the
	// model output (the motivation for the layer).
	rng := rand.New(rand.NewSource(11))
	m := NewTransformerPredictor(TransformerConfig{
		T: 4, DIn: 4, DModel: 8, DFF: 16, DOut: 4, Heads: 2, Layers: 1,
	}, rng)
	x := randTensor(rng, 1, 4, 4)
	y1 := m.Forward(x.Clone())
	// Swap rows 0 and 3.
	swapped := x.Clone()
	s := swapped.Sample(0)
	for d := 0; d < 4; d++ {
		v0, v3 := s.At(0, d), s.At(3, d)
		s.Set(0, d, v3)
		s.Set(3, d, v0)
	}
	y2 := m.Forward(swapped)
	if mat.EqualApprox(y1.AsMatrix(), y2.AsMatrix(), 1e-9) {
		t.Fatal("model is permutation-invariant despite positional embedding")
	}
}

func TestTransformerEndToEndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewTransformerPredictor(TransformerConfig{
		T: 3, DIn: 4, DModel: 4, DFF: 8, DOut: 5, Heads: 2, Layers: 1,
	}, rng)
	checkGradients(t, m, randTensor(rng, 2, 3, 4), 1e-3)
}
