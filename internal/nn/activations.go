package nn

import (
	"math"

	"dart/internal/mat"
)

// ReLU is the rectified-linear activation applied elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations and caches the pass-through mask.
func (r *ReLU) Forward(x *mat.Tensor) *mat.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the incoming gradient by the cached mask.
func (r *ReLU) Backward(grad *mat.Tensor) *mat.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil; ReLU is parameter-free.
func (r *ReLU) Params() []*Param { return nil }

// Name reports the layer name.
func (r *ReLU) Name() string { return "relu" }

// SigmoidFn is the scalar logistic function.
func SigmoidFn(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Sigmoid is the logistic activation applied elementwise.
type Sigmoid struct {
	y []float64
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function and caches the outputs.
func (s *Sigmoid) Forward(x *mat.Tensor) *mat.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = SigmoidFn(v)
	}
	s.y = append(s.y[:0], out.Data...)
	return out
}

// Backward uses σ'(x) = σ(x)(1-σ(x)).
func (s *Sigmoid) Backward(grad *mat.Tensor) *mat.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= s.y[i] * (1 - s.y[i])
	}
	return out
}

// Params returns nil; Sigmoid is parameter-free.
func (s *Sigmoid) Params() []*Param { return nil }

// Name reports the layer name.
func (s *Sigmoid) Name() string { return "sigmoid" }

// MeanPool averages over the sequence dimension, mapping [N, T, D] to
// [N, 1, D]. It feeds the classification head that emits the delta bitmap.
type MeanPool struct {
	t int
}

// NewMeanPool returns a MeanPool layer.
func NewMeanPool() *MeanPool { return &MeanPool{} }

// Forward averages the T positions of every sample.
func (p *MeanPool) Forward(x *mat.Tensor) *mat.Tensor {
	p.t = x.T
	out := mat.NewTensor(x.N, 1, x.D)
	inv := 1 / float64(x.T)
	for n := 0; n < x.N; n++ {
		s := x.Sample(n)
		orow := out.Sample(n).Row(0)
		for t := 0; t < x.T; t++ {
			row := s.Row(t)
			for d, v := range row {
				orow[d] += v * inv
			}
		}
	}
	return out
}

// Backward spreads the gradient uniformly back over the T positions.
func (p *MeanPool) Backward(grad *mat.Tensor) *mat.Tensor {
	out := mat.NewTensor(grad.N, p.t, grad.D)
	inv := 1 / float64(p.t)
	for n := 0; n < grad.N; n++ {
		grow := grad.Sample(n).Row(0)
		s := out.Sample(n)
		for t := 0; t < p.t; t++ {
			row := s.Row(t)
			for d, v := range grow {
				row[d] = v * inv
			}
		}
	}
	return out
}

// Params returns nil; MeanPool is parameter-free.
func (p *MeanPool) Params() []*Param { return nil }

// Name reports the layer name.
func (p *MeanPool) Name() string { return "meanpool" }
