package nn

import (
	"math"

	"dart/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR   float64
	Clip float64 // max |g| per element; 0 disables
}

// Step applies one SGD update and zeroes the gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.G.Data {
			if o.Clip > 0 {
				if g > o.Clip {
					g = o.Clip
				} else if g < -o.Clip {
					g = -o.Clip
				}
			}
			p.W.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	Clip                  float64 // global-norm clip; 0 disables

	t int
	m map[*Param]*mat.Matrix
	v map[*Param]*mat.Matrix
}

// NewAdam returns Adam with the conventional defaults and learning rate lr.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*mat.Matrix), v: make(map[*Param]*mat.Matrix)}
}

// Step applies one Adam update and zeroes the gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	if o.Clip > 0 {
		var norm float64
		for _, p := range params {
			for _, g := range p.G.Data {
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > o.Clip {
			scale := o.Clip / norm
			for _, p := range params {
				p.G.Scale(scale)
			}
		}
	}
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = mat.New(p.W.Rows, p.W.Cols)
			o.m[p] = m
			o.v[p] = mat.New(p.W.Rows, p.W.Cols)
		}
		v := o.v[p]
		for i, g := range p.G.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.W.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}
