// Package tabular implements the paper's core contribution: tabularization
// kernels (Sec. V) that convert the operations of an attention-based neural
// network into table lookups, the layer-wise tabularization algorithm with
// fine-tuning (Algorithm 1), and the analytic latency/storage/operation-count
// model of Sec. V-C (Eqs. 16-23).
package tabular

import (
	"fmt"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/par"
	"dart/internal/pq"
)

// Layer is one stage of the table-based predictor. Query maps a single
// sample's T x D activation matrix to the next activation; layers are either
// table lookups (linear/attention kernels, sigmoid LUT) or the cheap
// arithmetic passthroughs the paper keeps in native form (layer norm,
// residual add, pooling, ReLU).
type Layer interface {
	Query(x *mat.Matrix) *mat.Matrix
	Cost() Cost
	Name() string
}

// EncoderKind selects how kernels encode query vectors to prototype indices.
type EncoderKind int

const (
	// EncoderKMeans uses exact nearest-prototype search (Eq. 7).
	EncoderKMeans EncoderKind = iota
	// EncoderLSH uses sign-bit locality-sensitive hashing, the O(log K)
	// encoder assumed by the paper's latency model.
	EncoderLSH
)

// String names the encoder kind for configs, stats, and logs. It
// round-trips exactly with ParseEncoderKind for every defined kind; values
// outside the enum get a distinct label instead of masquerading as "linear"
// (a corrupted or future-versioned config should be visible in logs, not
// silently renamed to a kind it is not).
func (k EncoderKind) String() string {
	switch k {
	case EncoderKMeans:
		return "linear"
	case EncoderLSH:
		return "lsh"
	}
	return fmt.Sprintf("encoderkind(%d)", int(k))
}

// ParseEncoderKind maps operator-facing kernel names onto encoder kinds:
// "lsh" is the hashing encoder, "linear" (alias "kmeans") the exact
// nearest-prototype search. It makes the serving kernel selection
// config-driven — callers feed it straight into KernelConfig.Kind.
func ParseEncoderKind(s string) (EncoderKind, error) {
	switch s {
	case "lsh":
		return EncoderLSH, nil
	case "linear", "kmeans":
		return EncoderKMeans, nil
	}
	return EncoderKMeans, fmt.Errorf("tabular: unknown encoder kind %q (want lsh or linear)", s)
}

// KernelConfig carries the per-layer table configuration ⟨K, C⟩ of Table II
// plus the encoder choice and fitting parameters.
type KernelConfig struct {
	K    int         // prototypes per subspace
	C    int         // subspaces
	Kind EncoderKind // encoder implementation
	// DataBits is the stored entry width d in bits: 8 or 16 build quantized
	// tables with per-row affine (scale, zero) metadata; anything else
	// (default 64) keeps float64 tables. Cost reporting always reflects the
	// width actually stored, never this request verbatim.
	DataBits int
}

// withDefaults normalises zero fields.
func (c KernelConfig) withDefaults() KernelConfig {
	if c.DataBits == 0 {
		c.DataBits = 64
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.C == 0 {
		c.C = 1
	}
	return c
}

// newEncoder constructs the configured encoder for dimension d. When d is not
// divisible by C, the subspace count is reduced to the largest divisor of d
// that is <= C, so kernels remain usable for any layer width.
func newEncoder(cfg KernelConfig, d int, rng *rand.Rand) pq.Encoder {
	c := cfg.C
	for c > 1 && d%c != 0 {
		c--
	}
	switch cfg.Kind {
	case EncoderLSH:
		return pq.NewLSHEncoder(d, c, cfg.K, rng)
	default:
		return pq.NewKMeansEncoder(d, c, cfg.K, rng)
	}
}

// Hierarchy is the full table-based predictor: an ordered list of tabular
// layers mirroring the source network.
type Hierarchy struct {
	Layers []Layer
}

// Query runs a single sample (T x D matrix) through every layer.
func (h *Hierarchy) Query(x *mat.Matrix) *mat.Matrix {
	for _, l := range h.Layers {
		x = l.Query(x)
	}
	return x
}

// queryBatch fans an independent per-sample query across the worker pool:
// sample 0 sizes the output tensor, the remaining samples run in parallel.
// Each sample's output is exactly what q produces, for any worker count.
func queryBatch(x *mat.Tensor, grain int, q func(*mat.Matrix) *mat.Matrix) *mat.Tensor {
	if x.N == 0 {
		return mat.NewTensor(0, 0, 0)
	}
	first := q(x.Sample(0))
	out := mat.NewTensor(x.N, first.Rows, first.Cols)
	copy(out.Sample(0).Data, first.Data)
	par.For(x.N-1, grain, func(lo, hi int) {
		for n := lo + 1; n < hi+1; n++ {
			copy(out.Sample(n).Data, q(x.Sample(n)).Data)
		}
	})
	return out
}

// QueryBatch evaluates a batch tensor sample-by-sample and returns the
// stacked outputs. The per-sample queries are independent table lookups —
// the embarrassingly parallel structure the paper exploits — so the batch
// fans out across the shared worker pool.
func (h *Hierarchy) QueryBatch(x *mat.Tensor) *mat.Tensor {
	return queryBatch(x, 1, h.Query)
}

// Forward is the batched inference entry point used by the pipeline and the
// nn-compatible evaluation helpers; it is QueryBatch under the layer API.
func (h *Hierarchy) Forward(x *mat.Tensor) *mat.Tensor { return h.QueryBatch(x) }

// QueryUpTo runs a sample through the first k layers (used to compare
// per-layer outputs against the source network, Fig. 11).
func (h *Hierarchy) QueryUpTo(x *mat.Matrix, k int) *mat.Matrix {
	for _, l := range h.Layers[:k] {
		x = l.Query(x)
	}
	return x
}

// Cost sums the analytic complexity of every layer. Latency is the critical
// path under the paper's fully-parallel assumption, so lookups within a layer
// count once while layers accumulate.
func (h *Hierarchy) Cost() Cost {
	var total Cost
	for _, l := range h.Layers {
		total = total.Add(l.Cost())
	}
	return total
}
