package tabular

import (
	"fmt"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/pq"
)

// LinearKernel tabularizes Linear(X) = WX + B (Sec. V-A). Prototypes are
// learned from row vectors across samples and sequence positions; the table
// stores, for every output dimension o and prototype (c, k), the dot product
// W_o^c · P_k^c (Eq. 10) with the bias folded into subspace 0 so that query
// aggregation adds it for free. A query encodes each of the T input rows once
// and aggregates over subspaces per Eq. 11.
type LinearKernel struct {
	In, Out int
	enc     pq.Encoder
	// table[(c*K + k)*Out + o] = W_o^c · P_k^c (+ bias_o when c == 0).
	// Prototype-major layout: one encoded index selects a contiguous
	// Out-wide slice, so query aggregation is sequential adds (a straight
	// copy for C == 1) instead of a K-strided gather per output dim.
	// Exactly one of table and quant is set: DataBits 8/16 replaces the
	// float64 table with the quantized form at construction time.
	table []float64
	quant *quantTable
	cfg   KernelConfig
	seqT  int // nominal sequence length for cost reporting
}

// NewLinearKernel builds the kernel from a trained linear layer and the
// kernel's PQ training inputs (the tabularized activations reaching this
// layer), per Algorithm 1 line 10.
func NewLinearKernel(l *nn.Linear, train *mat.Tensor, cfg KernelConfig, rng *rand.Rand) *LinearKernel {
	cfg = cfg.withDefaults()
	if train.D != l.In {
		panic(fmt.Sprintf("tabular: linear kernel train dim %d != layer in %d", train.D, l.In))
	}
	enc := newEncoder(cfg, l.In, rng)
	enc.Fit(train.AsMatrix())
	k := &LinearKernel{
		In: l.In, Out: l.Out,
		enc:  enc,
		cfg:  cfg,
		seqT: train.T,
	}
	C, K, V := enc.C(), enc.K(), enc.SubDim()
	k.table = make([]float64, l.Out*C*K)
	w := l.Weight.W // [Out, In]
	for o := 0; o < l.Out; o++ {
		wrow := w.Row(o)
		for c := 0; c < C; c++ {
			wc := wrow[c*V : (c+1)*V]
			for ki := 0; ki < K; ki++ {
				p := enc.Center(c, ki)
				var dot float64
				for j, wv := range wc {
					dot += wv * p[j]
				}
				if c == 0 {
					dot += l.Bias.W.Data[o] // bias folded per Eq. 10
				}
				k.table[(c*K+ki)*l.Out+o] = dot
			}
		}
	}
	if cfg.DataBits == 8 || cfg.DataBits == 16 {
		// Quantize at build time, before downstream kernels fit their
		// prototypes: later layers train on the activations this table
		// actually produces (quantization-aware tabularization), and the
		// fine-tuning pass has already run on the source nn.Linear.
		k.quant = quantizeTable(k.table, C*K, l.Out, cfg.DataBits)
		k.table = nil
	}
	return k
}

// Query maps a T x In activation to T x Out via encode + lookup + aggregate.
// The T row encodings go through pq.EncodeBatch, the batched kernel shared
// with every other table lookup (it stays on the calling goroutine for the
// small T used here and fans out for large batches).
func (k *LinearKernel) Query(x *mat.Matrix) *mat.Matrix {
	if x.Cols != k.In {
		panic(fmt.Sprintf("tabular: linear kernel query dim %d != %d", x.Cols, k.In))
	}
	if k.quant != nil {
		return k.queryQuant(x)
	}
	C, K := k.enc.C(), k.enc.K()
	out := mat.New(x.Rows, k.Out)
	encoded := pq.EncodeBatch(k.enc, x)
	for t := 0; t < x.Rows; t++ {
		idx := encoded[t]
		orow := out.Row(t)
		base := idx[0] * k.Out // subspace 0: (0*K + ki)*Out
		copy(orow, k.table[base:base+k.Out])
		for c := 1; c < C; c++ {
			base = (c*K + idx[c]) * k.Out
			for o, v := range k.table[base : base+k.Out] {
				orow[o] += v
			}
		}
	}
	return out
}

// queryQuant is the quantized fast path: rows are encoded one at a time into
// a stack buffer (no batch-encode scratch allocations), subspace 0
// reconstructs straight into the output row, and the remaining subspaces
// accumulate on top — each table row's scale is applied exactly once.
func (k *LinearKernel) queryQuant(x *mat.Matrix) *mat.Matrix {
	C, K := k.enc.C(), k.enc.K()
	out := mat.New(x.Rows, k.Out)
	var ibuf [maxStackSubspaces]int
	idx := ibuf[:C]
	if C > maxStackSubspaces {
		idx = make([]int, C)
	}
	for t := 0; t < x.Rows; t++ {
		k.enc.EncodeRow(x.Row(t), idx)
		orow := out.Row(t)
		k.quant.dequantRow(idx[0], orow)
		for c := 1; c < C; c++ {
			k.quant.accumRow(c*K+idx[c], orow)
		}
	}
	return out
}

// maxStackSubspaces bounds the encoded-index buffer the quantized query path
// keeps on the stack; serving configs use C of 1-4.
const maxStackSubspaces = 16

// Cost reports Eqs. 16, 18, 20 for this kernel. The storage term prices the
// width entries are actually stored at — 64-bit float64 or the 8/16-bit
// quantized payload plus its per-row affine metadata — rather than echoing
// KernelConfig.DataBits, which older configs set to widths the tables never
// used.
func (k *LinearKernel) Cost() Cost {
	K, C := k.cfg.K, k.enc.C()
	d, overhead := 64, 0
	if k.quant != nil {
		d = k.quant.bits
		overhead = k.quant.overheadBits()
	}
	return Cost{
		LatencyCycles: LinearLatency(K, C),
		StorageBits:   LinearStorageBits(k.seqT, k.Out, K, C, d) + overhead,
		Ops:           LinearOps(k.seqT, k.Out, K, C),
	}
}

// TableBytes is the measured footprint of the stored table (payload plus any
// quantization metadata).
func (k *LinearKernel) TableBytes() int {
	if k.quant != nil {
		return k.quant.storedBytes()
	}
	return len(k.table) * 8
}

// Name identifies the layer.
func (k *LinearKernel) Name() string { return fmt.Sprintf("linear-kernel(%d->%d)", k.In, k.Out) }
