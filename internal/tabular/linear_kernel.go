package tabular

import (
	"fmt"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/pq"
)

// LinearKernel tabularizes Linear(X) = WX + B (Sec. V-A). Prototypes are
// learned from row vectors across samples and sequence positions; the table
// stores, for every output dimension o and prototype (c, k), the dot product
// W_o^c · P_k^c (Eq. 10) with the bias folded into subspace 0 so that query
// aggregation adds it for free. A query encodes each of the T input rows once
// and aggregates over subspaces per Eq. 11.
type LinearKernel struct {
	In, Out int
	enc     pq.Encoder
	// table[(c*K + k)*Out + o] = W_o^c · P_k^c (+ bias_o when c == 0).
	// Prototype-major layout: one encoded index selects a contiguous
	// Out-wide slice, so query aggregation is sequential adds (a straight
	// copy for C == 1) instead of a K-strided gather per output dim.
	table []float64
	cfg   KernelConfig
	seqT  int // nominal sequence length for cost reporting
}

// NewLinearKernel builds the kernel from a trained linear layer and the
// kernel's PQ training inputs (the tabularized activations reaching this
// layer), per Algorithm 1 line 10.
func NewLinearKernel(l *nn.Linear, train *mat.Tensor, cfg KernelConfig, rng *rand.Rand) *LinearKernel {
	cfg = cfg.withDefaults()
	if train.D != l.In {
		panic(fmt.Sprintf("tabular: linear kernel train dim %d != layer in %d", train.D, l.In))
	}
	enc := newEncoder(cfg, l.In, rng)
	enc.Fit(train.AsMatrix())
	k := &LinearKernel{
		In: l.In, Out: l.Out,
		enc:  enc,
		cfg:  cfg,
		seqT: train.T,
	}
	C, K, V := enc.C(), enc.K(), enc.SubDim()
	k.table = make([]float64, l.Out*C*K)
	w := l.Weight.W // [Out, In]
	for o := 0; o < l.Out; o++ {
		wrow := w.Row(o)
		for c := 0; c < C; c++ {
			wc := wrow[c*V : (c+1)*V]
			for ki := 0; ki < K; ki++ {
				p := enc.Center(c, ki)
				var dot float64
				for j, wv := range wc {
					dot += wv * p[j]
				}
				if c == 0 {
					dot += l.Bias.W.Data[o] // bias folded per Eq. 10
				}
				k.table[(c*K+ki)*l.Out+o] = dot
			}
		}
	}
	return k
}

// Query maps a T x In activation to T x Out via encode + lookup + aggregate.
// The T row encodings go through pq.EncodeBatch, the batched kernel shared
// with every other table lookup (it stays on the calling goroutine for the
// small T used here and fans out for large batches).
func (k *LinearKernel) Query(x *mat.Matrix) *mat.Matrix {
	if x.Cols != k.In {
		panic(fmt.Sprintf("tabular: linear kernel query dim %d != %d", x.Cols, k.In))
	}
	C, K := k.enc.C(), k.enc.K()
	out := mat.New(x.Rows, k.Out)
	encoded := pq.EncodeBatch(k.enc, x)
	for t := 0; t < x.Rows; t++ {
		idx := encoded[t]
		orow := out.Row(t)
		base := idx[0] * k.Out // subspace 0: (0*K + ki)*Out
		copy(orow, k.table[base:base+k.Out])
		for c := 1; c < C; c++ {
			base = (c*K + idx[c]) * k.Out
			for o, v := range k.table[base : base+k.Out] {
				orow[o] += v
			}
		}
	}
	return out
}

// Cost reports Eqs. 16, 18, 20 for this kernel.
func (k *LinearKernel) Cost() Cost {
	K, C, d := k.cfg.K, k.enc.C(), k.cfg.DataBits
	return Cost{
		LatencyCycles: LinearLatency(K, C),
		StorageBits:   LinearStorageBits(k.seqT, k.Out, K, C, d),
		Ops:           LinearOps(k.seqT, k.Out, K, C),
	}
}

// Name identifies the layer.
func (k *LinearKernel) Name() string { return fmt.Sprintf("linear-kernel(%d->%d)", k.In, k.Out) }
