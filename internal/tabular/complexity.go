package tabular

// Cost models a kernel's inference complexity with the three quantities the
// paper tracks (Sec. V-C): critical-path latency in cycles under full
// parallelism, storage in bits, and residual arithmetic operations.
type Cost struct {
	LatencyCycles int
	StorageBits   int
	Ops           int
}

// Add accumulates costs across layers (latencies are sequential).
func (c Cost) Add(o Cost) Cost {
	return Cost{
		LatencyCycles: c.LatencyCycles + o.LatencyCycles,
		StorageBits:   c.StorageBits + o.StorageBits,
		Ops:           c.Ops + o.Ops,
	}
}

// StorageBytes reports storage in bytes, rounding up.
func (c Cost) StorageBytes() int { return (c.StorageBits + 7) / 8 }

// CeilLog2 returns ⌈log2(x)⌉ with CeilLog2(1) = 0.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	n := 0
	v := 1
	for v < x {
		v <<= 1
		n++
	}
	return n
}

// LinearLatency is Eq. 16: L_l(K, C) = log(K) + log(C) + 1.
func LinearLatency(k, c int) int { return CeilLog2(k) + CeilLog2(c) + 1 }

// AttentionLatency is Eq. 17 with C_k = C_t = C:
// L_a(K, C) = 2(log(K) + log(C) + 1).
func AttentionLatency(k, c int) int { return 2 * (CeilLog2(k) + CeilLog2(c) + 1) }

// LinearStorageBits is Eq. 18: S_l = T·C·log(K) + D_O·K·C·d bits.
func LinearStorageBits(t, do, k, c, d int) int {
	return t*c*CeilLog2(k) + do*k*c*d
}

// AttentionStorageBits is Eq. 19 with C_k = C_t = C:
// S_a = (3T + D_k)·C·log(K) + 2K²·C·d bits.
func AttentionStorageBits(t, dk, k, c, d int) int {
	return (3*t+dk)*c*CeilLog2(k) + 2*k*k*c*d
}

// LinearOps is Eq. 20: A_l = T·C·log(K) + T·D_O·log(C).
func LinearOps(t, do, k, c int) int {
	return t*c*CeilLog2(k) + t*do*CeilLog2(c)
}

// AttentionOps is Eq. 21 with C_k = C_t = C:
// A_a = (3T + D_k)·C·log(K) + (T² + D_k²)·log(C).
func AttentionOps(t, dk, k, c int) int {
	return (3*t+dk)*c*CeilLog2(k) + (t*t+dk*dk)*CeilLog2(c)
}

// Constants for the non-tabular operations the paper keeps in native
// arithmetic form. Layer norm is a two-pass reduction over D (latency
// ~2·log D under a parallel reduction, but the paper treats it as a small
// constant); the sigmoid LUT is a single lookup.
const (
	// LayerNormLatency is L_ln in Eq. 22.
	LayerNormLatency = 2
	// SigmoidLatency is L_σ in Eq. 22.
	SigmoidLatency = 1
	// SigmoidLUTEntries is the fixed sigmoid lookup-table resolution.
	SigmoidLUTEntries = 1024
)

// LayerNormStorageBits is S_ln: γ and β at d bits each.
func LayerNormStorageBits(dim, d int) int { return 2 * dim * d }

// SigmoidStorageBits is S_σ: the fixed LUT.
func SigmoidStorageBits(d int) int { return SigmoidLUTEntries * d }
