package tabular

import (
	"math/rand"
	"testing"

	"dart/internal/mat"
	"dart/internal/nn"
)

// smallModelAndData trains a tiny transformer on clustered inputs so the
// tabularization tests operate on a realistic (non-random-weight) model.
func smallModelAndData(seed int64) (*nn.Sequential, *mat.Tensor, *mat.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	cfg := nn.TransformerConfig{T: 4, DIn: 4, DModel: 8, DFF: 16, DOut: 4, Heads: 2, Layers: 1}
	m := nn.NewTransformerPredictor(cfg, rng)
	x := clusteredTensor(rng, 96, cfg.T, cfg.DIn, 5)
	y := mat.NewTensor(96, 1, cfg.DOut)
	for s := 0; s < 96; s++ {
		sm := x.Sample(s)
		for d := 0; d < cfg.DOut; d++ {
			var sum float64
			for tt := 0; tt < cfg.T; tt++ {
				sum += sm.At(tt, d)
			}
			if sum > 0 {
				y.Sample(s).Set(0, d, 1)
			}
		}
	}
	tr := nn.NewTrainer(m, nn.NewAdam(0.01), 32, rng)
	for e := 0; e < 15; e++ {
		tr.TrainEpoch(x, y, nn.BCEWithLogits)
	}
	return m, x, y
}

func TestTabularizeProducesWorkingHierarchy(t *testing.T) {
	m, x, _ := smallModelAndData(1)
	res := Tabularize(m, x, Config{
		Kernel:   KernelConfig{K: 32, C: 2},
		FineTune: true,
		Seed:     7,
	})
	if len(res.Hierarchy.Layers) == 0 {
		t.Fatal("empty hierarchy")
	}
	// Model structure: input linear, positional embedding, residual(attn),
	// residual(ffn), pool, output.
	if got := len(res.Hierarchy.Layers); got != 6 {
		t.Fatalf("hierarchy has %d top-level layers, want 6", got)
	}
	out := res.Hierarchy.Query(x.Sample(0))
	if out.Rows != 1 || out.Cols != 4 {
		t.Fatalf("hierarchy output shape %v", out)
	}
	// Cosine diagnostics are recorded per layer and stay in [-1, 1].
	if len(res.Cosine) != len(res.Hierarchy.Layers) {
		t.Fatalf("cosine entries %d != layers %d", len(res.Cosine), len(res.Hierarchy.Layers))
	}
	for i, c := range res.Cosine {
		if c < -1-1e-9 || c > 1+1e-9 {
			t.Fatalf("cosine[%d] = %v out of range", i, c)
		}
	}
}

func TestTabularizedOutputCorrelatesWithModel(t *testing.T) {
	m, x, _ := smallModelAndData(2)
	res := Tabularize(m, x, Config{
		Kernel:   KernelConfig{K: 64, C: 2},
		FineTune: true,
		Seed:     7,
	})
	exact := m.Forward(x.Clone())
	approx := res.Hierarchy.Forward(x)
	cos := mat.CosineSimilarity(exact.AsMatrix(), approx.AsMatrix())
	if cos < 0.7 {
		t.Fatalf("tabularized output cosine %v < 0.7", cos)
	}
}

func TestFineTuningDoesNotDegradeOutput(t *testing.T) {
	// Paper Fig. 11 / Table VII: fine-tuning raises per-layer similarity.
	// Quantization noise can move individual runs either way, so we assert
	// the fine-tuned variant is at least as good up to a small slack.
	m, x, _ := smallModelAndData(3)
	noFT := Tabularize(m, x, Config{Kernel: KernelConfig{K: 32, C: 2}, FineTune: false, Seed: 7})
	withFT := Tabularize(m, x, Config{Kernel: KernelConfig{K: 32, C: 2}, FineTune: true, Seed: 7})
	a := noFT.Cosine[len(noFT.Cosine)-1]
	b := withFT.Cosine[len(withFT.Cosine)-1]
	if b < a-0.05 {
		t.Fatalf("fine-tuning degraded final cosine: %v -> %v", a, b)
	}
}

func TestTabularizeLSHEncoder(t *testing.T) {
	m, x, _ := smallModelAndData(4)
	res := Tabularize(m, x, Config{
		Kernel: KernelConfig{K: 32, C: 2, Kind: EncoderLSH},
		Seed:   7,
	})
	out := res.Hierarchy.Query(x.Sample(0))
	if out.Rows != 1 || out.Cols != 4 {
		t.Fatalf("LSH hierarchy output shape %v", out)
	}
}

func TestHierarchyCostPositive(t *testing.T) {
	m, x, _ := smallModelAndData(5)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 7})
	c := res.Hierarchy.Cost()
	if c.LatencyCycles <= 0 || c.StorageBits <= 0 || c.Ops <= 0 {
		t.Fatalf("degenerate cost %+v", c)
	}
}

func TestHierarchyForwardMatchesQuery(t *testing.T) {
	m, x, _ := smallModelAndData(6)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 7})
	batch := res.Hierarchy.Forward(x)
	for s := 0; s < 3; s++ {
		single := res.Hierarchy.Query(x.Sample(s))
		if !mat.EqualApprox(single, batch.Sample(s), 1e-12) {
			t.Fatalf("batch/single mismatch at sample %d", s)
		}
	}
}

func TestHierarchyParallelForwardMatchesSequential(t *testing.T) {
	// With N >= 32 Forward takes the goroutine fan-out path; results must be
	// identical to per-sample queries (all layers are read-only at query time).
	m, x, _ := smallModelAndData(8)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 7})
	if x.N < 32 {
		t.Fatalf("test needs >= 32 samples, have %d", x.N)
	}
	batch := res.Hierarchy.Forward(x)
	for s := 0; s < x.N; s++ {
		want := res.Hierarchy.Query(x.Sample(s))
		if !mat.EqualApprox(want, batch.Sample(s), 1e-12) {
			t.Fatalf("parallel batch diverges at sample %d", s)
		}
	}
}

func TestQueryUpToPrefix(t *testing.T) {
	m, x, _ := smallModelAndData(7)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 7})
	full := res.Hierarchy.Query(x.Sample(0))
	upto := res.Hierarchy.QueryUpTo(x.Sample(0), len(res.Hierarchy.Layers))
	if !mat.EqualApprox(full, upto, 1e-12) {
		t.Fatal("QueryUpTo(all) != Query")
	}
}

func TestTabularizeRejectsUnknownLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported layer")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	m := nn.NewSequential("bad", nn.NewLSTM("l", 2, 2, rng))
	Tabularize(m, mat.NewTensor(4, 2, 2), Config{})
}
