package tabular

import (
	"testing"

	"dart/internal/par"
)

func TestQueryBatchMatchesQuery(t *testing.T) {
	m, x, _ := smallModelAndData(21)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 21})
	h := res.Hierarchy

	batch := h.QueryBatch(x)
	for n := 0; n < x.N; n++ {
		want := h.Query(x.Sample(n))
		got := batch.Sample(n)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("sample %d: shape %dx%d != %dx%d", n, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range want.Data {
			if got.Data[i] != v {
				t.Fatalf("sample %d element %d: batch %v != serial %v (must be bit-identical)",
					n, i, got.Data[i], v)
			}
		}
	}
}

func TestQueryBatchWorkerCountInvariance(t *testing.T) {
	m, x, _ := smallModelAndData(22)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 22})
	h := res.Hierarchy

	par.SetMaxWorkers(1)
	ref := h.QueryBatch(x)
	for _, w := range []int{2, 4, 8} {
		par.SetMaxWorkers(w)
		got := h.QueryBatch(x)
		if !got.ShapeEquals(ref) {
			t.Fatalf("w=%d: shape changed", w)
		}
		for i, v := range ref.Data {
			if got.Data[i] != v {
				t.Fatalf("w=%d element %d: %v != %v", w, i, got.Data[i], v)
			}
		}
	}
	par.SetMaxWorkers(0)
}

func TestForwardIsQueryBatch(t *testing.T) {
	m, x, _ := smallModelAndData(23)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 23})
	h := res.Hierarchy

	f := h.Forward(x)
	q := h.QueryBatch(x)
	for i, v := range q.Data {
		if f.Data[i] != v {
			t.Fatalf("Forward diverges from QueryBatch at %d", i)
		}
	}
}

// BenchmarkHierarchyQueryBatch measures batched table inference throughput,
// the tabular half of the BENCH_par.json record.
func BenchmarkHierarchyQueryBatch(b *testing.B) {
	m, x, _ := smallModelAndData(24)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, Seed: 24})
	h := res.Hierarchy
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.QueryBatch(x)
	}
}
