package tabular

import (
	"fmt"
	"math"

	"dart/internal/mat"
	"dart/internal/nn"
)

// LayerNormTab keeps layer normalization in native arithmetic form
// (Algorithm 1 line 18): it is a dimension-wise reduction with no matrix
// multiplication, so the paper leaves it untabularized.
type LayerNormTab struct {
	D     int
	Gamma []float64
	Beta  []float64
	Eps   float64
}

// NewLayerNormTab copies the parameters of a trained layer norm.
func NewLayerNormTab(ln *nn.LayerNorm) *LayerNormTab {
	return &LayerNormTab{
		D:     ln.D,
		Gamma: append([]float64(nil), ln.Gamma.W.Data...),
		Beta:  append([]float64(nil), ln.Beta.W.Data...),
		Eps:   ln.Eps,
	}
}

// Query normalises each row of x.
func (l *LayerNormTab) Query(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.D)
		var vr float64
		for _, v := range row {
			d := v - mean
			vr += d * d
		}
		vr /= float64(l.D)
		inv := 1 / math.Sqrt(vr+l.Eps)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = l.Gamma[j]*(v-mean)*inv + l.Beta[j]
		}
	}
	return out
}

// Cost reports the layer-norm constants of Eq. 22/23. The parameters are
// kept as float64, so storage is priced at 64 bits per entry — the
// passthroughs used to echo a configured width their slices never had.
func (l *LayerNormTab) Cost() Cost {
	return Cost{LatencyCycles: LayerNormLatency, StorageBits: LayerNormStorageBits(l.D, 64)}
}

// Name identifies the layer.
func (l *LayerNormTab) Name() string { return fmt.Sprintf("layernorm(%d)", l.D) }

// SigmoidLUT approximates the output sigmoid with a fixed lookup table
// (Algorithm 1 line 16), uniformly sampling [-Range, Range].
type SigmoidLUT struct {
	Range   float64
	Entries []float64
}

// NewSigmoidLUT builds the standard 1024-entry table over [-8, 8].
func NewSigmoidLUT() *SigmoidLUT {
	l := &SigmoidLUT{Range: 8, Entries: make([]float64, SigmoidLUTEntries)}
	for i := range l.Entries {
		x := -l.Range + 2*l.Range*float64(i)/float64(len(l.Entries)-1)
		l.Entries[i] = 1 / (1 + math.Exp(-x))
	}
	return l
}

// Lookup returns the table approximation of σ(x), clamping out-of-range inputs.
func (l *SigmoidLUT) Lookup(x float64) float64 {
	if x <= -l.Range {
		return l.Entries[0]
	}
	if x >= l.Range {
		return l.Entries[len(l.Entries)-1]
	}
	i := int((x + l.Range) / (2 * l.Range) * float64(len(l.Entries)-1))
	return l.Entries[i]
}

// Query applies the LUT elementwise.
func (l *SigmoidLUT) Query(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = l.Lookup(v)
	}
	return out
}

// Cost reports the sigmoid constants of Eq. 22/23; the LUT entries are
// float64, so they are priced at their stored 64-bit width.
func (l *SigmoidLUT) Cost() Cost {
	return Cost{LatencyCycles: SigmoidLatency, StorageBits: SigmoidStorageBits(64)}
}

// Name identifies the layer.
func (l *SigmoidLUT) Name() string { return "sigmoid-lut" }

// ReLUTab keeps the FFN's rectifier in native form: an elementwise max with
// zero, no multiplications.
type ReLUTab struct{}

// Query zeroes negative entries.
func (ReLUTab) Query(x *mat.Matrix) *mat.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Cost is one comparison cycle.
func (ReLUTab) Cost() Cost { return Cost{LatencyCycles: 1} }

// Name identifies the layer.
func (ReLUTab) Name() string { return "relu" }

// MeanPoolTab averages over the sequence dimension (T x D -> 1 x D), the
// classification-head reduction before the output linear kernel.
type MeanPoolTab struct{}

// Query averages the rows of x.
func (MeanPoolTab) Query(x *mat.Matrix) *mat.Matrix {
	out := mat.New(1, x.Cols)
	inv := 1 / float64(x.Rows)
	orow := out.Row(0)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			orow[j] += v * inv
		}
	}
	return out
}

// Cost is a log-depth parallel reduction.
func (MeanPoolTab) Cost() Cost { return Cost{LatencyCycles: 2} }

// Name identifies the layer.
func (MeanPoolTab) Name() string { return "meanpool" }

// PosEmbedTab adds the trained positional embedding, a constant per-position
// vector addition with no multiplications. The embedding is a stored table
// of the deployment artifact, so it quantizes with the kernel tables: at 8
// or 16 bits each position row carries its own affine pair and the add goes
// through the same accumulate kernels as the lookup tables.
type PosEmbedTab struct {
	T, D  int
	Emb   []float64   // [T*D], row-major; nil when quant is set
	quant *quantTable // per-position quantized rows; nil for float64
}

// NewPosEmbedTab copies a trained positional embedding, quantizing it when
// bits is 8 or 16 (any other value keeps float64).
func NewPosEmbedTab(p *nn.PositionalEmbedding, bits int) *PosEmbedTab {
	t := &PosEmbedTab{
		T: p.T, D: p.D,
		Emb: append([]float64(nil), p.Emb.W.Data...),
	}
	if bits == 8 || bits == 16 {
		t.quant = quantizeTable(t.Emb, t.T, t.D, bits)
		t.Emb = nil
	}
	return t
}

// Query adds the embedding row-wise.
func (p *PosEmbedTab) Query(x *mat.Matrix) *mat.Matrix {
	out := x.Clone()
	if p.quant != nil {
		for t := 0; t < x.Rows && t < p.T; t++ {
			p.quant.accumRow(t, out.Row(t))
		}
		return out
	}
	for t := 0; t < x.Rows && t < p.T; t++ {
		row := out.Row(t)
		for d := range row {
			row[d] += p.Emb[t*p.D+d]
		}
	}
	return out
}

// Cost is one parallel add plus the embedding table at the width it is
// actually stored: the quantized payload with its per-row affine metadata,
// or 64 bits per float64 entry.
func (p *PosEmbedTab) Cost() Cost {
	if p.quant != nil {
		return Cost{LatencyCycles: 1, StorageBits: p.T*p.D*p.quant.bits + p.quant.overheadBits()}
	}
	return Cost{LatencyCycles: 1, StorageBits: p.T * p.D * 64}
}

// Name identifies the layer.
func (p *PosEmbedTab) Name() string { return fmt.Sprintf("posembed(%dx%d)", p.T, p.D) }

// ResidualTab adds the block input to the output of its inner layers.
type ResidualTab struct {
	Inner []Layer
}

// Query computes x + inner(x).
func (r *ResidualTab) Query(x *mat.Matrix) *mat.Matrix {
	y := x
	for _, l := range r.Inner {
		y = l.Query(y)
	}
	out := y.Clone()
	out.AddInPlace(x)
	return out
}

// Cost sums the inner costs plus one add cycle.
func (r *ResidualTab) Cost() Cost {
	c := Cost{LatencyCycles: 1}
	for _, l := range r.Inner {
		c = c.Add(l.Cost())
	}
	return c
}

// Name identifies the block.
func (r *ResidualTab) Name() string { return "residual" }
