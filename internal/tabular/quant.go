package tabular

import (
	"fmt"

	"dart/internal/mat"
	"dart/internal/pq"
)

// quantTable stores a prototype-major lookup table as int8/int16 codes with a
// per-row affine (scale, zero) pair. A "row" is the contiguous slice one
// encoded prototype index selects — Out entries for a linear kernel, K
// entries for the attention tables — so queries aggregate quantized rows in
// integer form and apply each row's scale exactly once. Row reconstruction
// goes through the mat quantized-row kernels, which are bit-identical between
// their scalar and vector forms.
type quantTable struct {
	bits   int // 8 or 16
	rowLen int
	q8     []int8
	q16    []int16
	scale  []float64 // per row
	zero   []int32   // per row
}

// quantizeTable converts a float64 table of rows x rowLen entries to the
// given stored width, fitting one affine pair per row.
func quantizeTable(src []float64, rows, rowLen, bits int) *quantTable {
	if bits != 8 && bits != 16 {
		panic(fmt.Sprintf("tabular: unsupported quantized width %d bits (want 8 or 16)", bits))
	}
	if len(src) != rows*rowLen {
		panic(fmt.Sprintf("tabular: quantizeTable %d entries != %d rows x %d", len(src), rows, rowLen))
	}
	qt := &quantTable{
		bits:   bits,
		rowLen: rowLen,
		scale:  make([]float64, rows),
		zero:   make([]int32, rows),
	}
	if bits == 8 {
		qt.q8 = make([]int8, len(src))
	} else {
		qt.q16 = make([]int16, len(src))
	}
	for r := 0; r < rows; r++ {
		row := src[r*rowLen : (r+1)*rowLen]
		rq := pq.FitRowQuant(row, bits)
		qt.scale[r], qt.zero[r] = rq.Scale, rq.Zero
		for j, v := range row {
			code := rq.Quantize(v, bits)
			if bits == 8 {
				qt.q8[r*rowLen+j] = int8(code)
			} else {
				qt.q16[r*rowLen+j] = int16(code)
			}
		}
	}
	return qt
}

func (qt *quantTable) rows() int { return len(qt.scale) }

// dequantRow reconstructs row r into dst (len(dst) == rowLen).
func (qt *quantTable) dequantRow(r int, dst []float64) {
	base := r * qt.rowLen
	if qt.bits == 8 {
		mat.DequantRowInt8(dst, qt.q8[base:base+qt.rowLen], qt.zero[r], qt.scale[r])
	} else {
		mat.DequantRowInt16(dst, qt.q16[base:base+qt.rowLen], qt.zero[r], qt.scale[r])
	}
}

// accumRow adds row r into dst.
func (qt *quantTable) accumRow(r int, dst []float64) {
	base := r * qt.rowLen
	if qt.bits == 8 {
		mat.AccumRowInt8(dst, qt.q8[base:base+qt.rowLen], qt.zero[r], qt.scale[r])
	} else {
		mat.AccumRowInt16(dst, qt.q16[base:base+qt.rowLen], qt.zero[r], qt.scale[r])
	}
}

// at reconstructs the single entry (r, j) — the attention score path reads
// individual pairwise-product cells rather than whole rows.
func (qt *quantTable) at(r, j int) float64 {
	var code int32
	if qt.bits == 8 {
		code = int32(qt.q8[r*qt.rowLen+j])
	} else {
		code = int32(qt.q16[r*qt.rowLen+j])
	}
	return float64(code-qt.zero[r]) * qt.scale[r]
}

// storedBytes is the measured footprint: the integer payload plus the affine
// metadata (float64 scale and int32 zero per row).
func (qt *quantTable) storedBytes() int {
	meta := len(qt.scale)*8 + len(qt.zero)*4
	if qt.bits == 8 {
		return len(qt.q8) + meta
	}
	return len(qt.q16)*2 + meta
}

// overheadBits is the modelled cost of the affine metadata, added on top of
// the paper's storage equations (which only count the d-bit entries).
func (qt *quantTable) overheadBits() int { return len(qt.scale) * (64 + 32) }

// MeasuredStorageBytes reports the bytes a layer's stored tables and
// parameters actually occupy: lookup-table payloads, quantization metadata,
// and native-form parameter vectors. Encoder internals (hash planes,
// centroids) are excluded to match the scope of the Sec. V-C storage model,
// which prices stored table entries and encoded indices only. This is the
// ground truth the modelled Cost().StorageBits is regression-tested against.
func MeasuredStorageBytes(l Layer) int {
	switch v := l.(type) {
	case *LinearKernel:
		return v.TableBytes()
	case *MSAKernel:
		b := v.WQ.TableBytes() + v.WK.TableBytes() + v.WV.TableBytes() + v.WO.TableBytes()
		for _, h := range v.Heads {
			b += h.TableBytes()
		}
		return b
	case *LayerNormTab:
		return (len(v.Gamma) + len(v.Beta)) * 8
	case *SigmoidLUT:
		return len(v.Entries) * 8
	case *PosEmbedTab:
		if v.quant != nil {
			return v.quant.storedBytes()
		}
		return len(v.Emb) * 8
	case *ResidualTab:
		var b int
		for _, inner := range v.Inner {
			b += MeasuredStorageBytes(inner)
		}
		return b
	default:
		return 0
	}
}

// MeasuredStorageBytes sums the measured footprint of every layer.
func (h *Hierarchy) MeasuredStorageBytes() int {
	var b int
	for _, l := range h.Layers {
		b += MeasuredStorageBytes(l)
	}
	return b
}

// DataBits reports the stored entry width of the hierarchy's lookup tables:
// 8 or 16 when the table kernels are quantized, 64 for float64 tables. It is
// stamped into checkpoint metadata so operators can read a table store's
// width without decoding its body.
func (h *Hierarchy) DataBits() int {
	for _, l := range h.Layers {
		if d := layerDataBits(l); d != 0 {
			return d
		}
	}
	return 64
}

func layerDataBits(l Layer) int {
	switch v := l.(type) {
	case *LinearKernel:
		if v.quant != nil {
			return v.quant.bits
		}
		return 64
	case *MSAKernel:
		return layerDataBits(v.WQ)
	case *PosEmbedTab:
		if v.quant != nil {
			return v.quant.bits
		}
		return 64
	case *ResidualTab:
		for _, inner := range v.Inner {
			if d := layerDataBits(inner); d != 0 {
				return d
			}
		}
	}
	return 0
}
