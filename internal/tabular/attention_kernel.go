package tabular

import (
	"fmt"
	"math"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/pq"
)

// SoftmaxMode selects how the attention kernel folds the softmax activation
// into the QKV table (Sec. V-B).
type SoftmaxMode int

const (
	// SoftmaxShared stores exp-weighted numerator and denominator tables and
	// performs one division per output row at query time, so the softmax is
	// normalised over the full (quantized) score row. This is the default.
	SoftmaxShared SoftmaxMode = iota
	// SoftmaxPerSubspace normalises each subspace's prototype independently,
	// the literal reading of Eq. 14; kept for the ablation bench.
	SoftmaxPerSubspace
)

// AttentionKernel tabularizes one head of scaled dot-product attention:
// Y = softmax(QKᵀ/√Dk)·V for T x Dk inputs. Training performs the paper's two
// quantization steps: (1) prototypes of Q and K rows with a pairwise-product
// QK table of depth K² (Eq. 12), and (2) a secondary quantization of the
// approximated score rows, whose prototypes absorb the 1/√Dk scaling and the
// softmax before being dotted against prototypes of V's columns to form the
// QKV table (Eq. 14). Queries are two rounds of encode + lookup (Eq. 13, 15)
// with no matrix multiplication, scaling, or activation arithmetic.
type AttentionKernel struct {
	T, Dk int
	mode  SoftmaxMode
	cfg   KernelConfig

	encQ, encK pq.Encoder // over Dk rows
	qkTable    []float64  // [Ck][K][K]: P^Q_ci · P^K_cj

	encS, encV pq.Encoder // over length-T score rows / V columns
	qkvTable   []float64  // [Ct][K][K]: numerator (shared) or folded softmax (per-subspace)
	denTable   []float64  // [Ct][K]: shared-mode denominator partial sums
	expShift   float64    // global shift keeping exp() in range

	// Quantized forms of qkTable/qkvTable when DataBits is 8/16 (either both
	// are set and the float slices are nil, or neither). denTable stays
	// float64: it is K·C entries of reciprocal mass whose relative error
	// would multiply every output.
	qkQuant, qkvQuant *quantTable
}

// AttentionTrainingSet carries the kernel-fitting activations: the Q, K, V
// tensors reaching this head, each [N, T, Dk].
type AttentionTrainingSet struct {
	Q, K, V *mat.Tensor
}

// NewAttentionKernel fits the two quantization stages and builds both tables.
func NewAttentionKernel(ts AttentionTrainingSet, cfg KernelConfig, mode SoftmaxMode, rng *rand.Rand) *AttentionKernel {
	cfg = cfg.withDefaults()
	t, dk := ts.Q.T, ts.Q.D
	if !ts.Q.ShapeEquals(ts.K) || !ts.Q.ShapeEquals(ts.V) {
		panic("tabular: attention kernel Q/K/V shape mismatch")
	}
	a := &AttentionKernel{T: t, Dk: dk, mode: mode, cfg: cfg}
	a.encQ = newEncoder(cfg, dk, rng)
	a.encQ.Fit(ts.Q.AsMatrix())
	a.encK = newEncoder(cfg, dk, rng)
	a.encK.Fit(ts.K.AsMatrix())

	// QK table: pairwise prototype dot products per subspace (Eq. 12).
	ck, kk := a.encQ.C(), a.encQ.K()
	a.qkTable = make([]float64, ck*kk*kk)
	for c := 0; c < ck; c++ {
		for i := 0; i < kk; i++ {
			pi := a.encQ.Center(c, i)
			for j := 0; j < kk; j++ {
				pj := a.encK.Center(c, j)
				var dot float64
				for v, qv := range pi {
					dot += qv * pj[v]
				}
				a.qkTable[(c*kk+i)*kk+j] = dot
			}
		}
	}
	if cfg.DataBits == 8 || cfg.DataBits == 16 {
		// Quantize before fitting the secondary stage: encS must train on
		// the score rows the quantized table will actually produce.
		a.qkQuant = quantizeTable(a.qkTable, ck*kk, kk, cfg.DataBits)
		a.qkTable = nil
	}

	// Approximate score rows for the training set via the QK table (the
	// secondary quantization trains on what the query will actually see).
	n := ts.Q.N
	scoreRows := mat.New(n*t, t)
	iq := make([]int, ck)
	ikByRow := make([][]int, t)
	for r := range ikByRow {
		ikByRow[r] = make([]int, ck)
	}
	for s := 0; s < n; s++ {
		qs, ks := ts.Q.Sample(s), ts.K.Sample(s)
		for t2 := 0; t2 < t; t2++ {
			a.encK.EncodeRow(ks.Row(t2), ikByRow[t2])
		}
		for t1 := 0; t1 < t; t1++ {
			a.encQ.EncodeRow(qs.Row(t1), iq)
			row := scoreRows.Row(s*t + t1)
			for t2 := 0; t2 < t; t2++ {
				ik := ikByRow[t2]
				var sum float64
				for c := 0; c < ck; c++ {
					sum += a.qkAt(c*kk+iq[c], ik[c])
				}
				row[t2] = sum
			}
		}
	}
	a.encS = newEncoder(cfg, t, rng)
	a.encS.Fit(scoreRows)

	// V columns: reshape to (N·Dk) x T rows (the paper's Ṽᵀ).
	vcols := mat.New(n*dk, t)
	for s := 0; s < n; s++ {
		vs := ts.V.Sample(s)
		for d := 0; d < dk; d++ {
			row := vcols.Row(s*dk + d)
			for tt := 0; tt < t; tt++ {
				row[tt] = vs.At(tt, d)
			}
		}
	}
	a.encV = newEncoder(cfg, t, rng)
	a.encV.Fit(vcols)

	a.buildQKVTable()
	if cfg.DataBits == 8 || cfg.DataBits == 16 {
		ct, ks := a.encS.C(), a.encS.K()
		a.qkvQuant = quantizeTable(a.qkvTable, ct*ks, ks, cfg.DataBits)
		a.qkvTable = nil
	}
	return a
}

// qkAt reads one QK-table cell through whichever representation is live.
func (a *AttentionKernel) qkAt(r, j int) float64 {
	if a.qkQuant != nil {
		return a.qkQuant.at(r, j)
	}
	return a.qkTable[r*a.encQ.K()+j]
}

// buildQKVTable folds scaling and softmax into the second-stage table.
func (a *AttentionKernel) buildQKVTable() {
	ct, k := a.encS.C(), a.encS.K()
	sub := a.encS.SubDim()
	scale := 1 / math.Sqrt(float64(a.Dk))
	// Global shift for exp() stability: max scaled prototype element.
	a.expShift = math.Inf(-1)
	for c := 0; c < ct; c++ {
		for i := 0; i < k; i++ {
			for _, v := range a.encS.Center(c, i) {
				if z := v * scale; z > a.expShift {
					a.expShift = z
				}
			}
		}
	}
	if math.IsInf(a.expShift, -1) {
		a.expShift = 0
	}
	a.qkvTable = make([]float64, ct*k*k)
	a.denTable = make([]float64, ct*k)
	ex := make([]float64, sub)
	for c := 0; c < ct; c++ {
		for i := 0; i < k; i++ {
			ps := a.encS.Center(c, i)
			var den float64
			for v, sv := range ps {
				e := math.Exp(sv*scale - a.expShift)
				ex[v] = e
				den += e
			}
			a.denTable[c*k+i] = den
			for j := 0; j < k; j++ {
				pv := a.encV.Center(c, j)
				var dot float64
				for v, e := range ex {
					dot += e * pv[v]
				}
				if a.mode == SoftmaxPerSubspace && den > 0 {
					dot /= den
				}
				a.qkvTable[(c*k+i)*k+j] = dot
			}
		}
	}
}

// Query runs the two lookup rounds for one sample: Q, K, V are T x Dk.
func (a *AttentionKernel) Query(q, k, v *mat.Matrix) *mat.Matrix {
	t := a.T
	if q.Rows != t || q.Cols != a.Dk {
		panic(fmt.Sprintf("tabular: attention query shape %dx%d, want %dx%d", q.Rows, q.Cols, t, a.Dk))
	}
	if a.qkQuant != nil {
		return a.queryQuant(q, k, v)
	}
	ck, kk := a.encQ.C(), a.encQ.K()
	// Round 1: scores from the QK table (Eq. 13).
	iq := make([]int, ck)
	ik := make([][]int, t)
	for r := range ik {
		ik[r] = make([]int, ck)
		a.encK.EncodeRow(k.Row(r), ik[r])
	}
	scores := mat.New(t, t)
	for t1 := 0; t1 < t; t1++ {
		a.encQ.EncodeRow(q.Row(t1), iq)
		row := scores.Row(t1)
		for t2 := 0; t2 < t; t2++ {
			ikr := ik[t2]
			var sum float64
			for c := 0; c < ck; c++ {
				sum += a.qkTable[(c*kk+iq[c])*kk+ikr[c]]
			}
			row[t2] = sum
		}
	}
	// Round 2: encode score rows and V columns, look up the QKV table (Eq. 15).
	ct, ks := a.encS.C(), a.encS.K()
	ivs := make([][]int, a.Dk)
	col := make([]float64, t)
	for d := 0; d < a.Dk; d++ {
		for tt := 0; tt < t; tt++ {
			col[tt] = v.At(tt, d)
		}
		ivs[d] = make([]int, ct)
		a.encV.EncodeRow(col, ivs[d])
	}
	out := mat.New(t, a.Dk)
	is := make([]int, ct)
	for t1 := 0; t1 < t; t1++ {
		a.encS.EncodeRow(scores.Row(t1), is)
		var den float64
		if a.mode == SoftmaxShared {
			for c, i := range is {
				den += a.denTable[c*ks+i]
			}
			if den == 0 {
				den = 1
			}
		}
		orow := out.Row(t1)
		for d := 0; d < a.Dk; d++ {
			iv := ivs[d]
			var num float64
			for c, i := range is {
				num += a.qkvTable[(c*ks+i)*ks+iv[c]]
			}
			if a.mode == SoftmaxShared {
				num /= den
			}
			orow[d] = num
		}
	}
	return out
}

// queryQuant runs both lookup rounds against the quantized tables. The many
// per-sample index and score buffers of the float path collapse into two
// flat scratch allocations, so the quantized kernel allocates a constant
// three slices per sample regardless of T and Dk.
func (a *AttentionKernel) queryQuant(q, k, v *mat.Matrix) *mat.Matrix {
	t := a.T
	ck, kk := a.encQ.C(), a.encQ.K()
	ct, ks := a.encS.C(), a.encS.K()
	ints := make([]int, ck+t*ck+a.Dk*ct+ct)
	iq := ints[:ck]
	ik := ints[ck : ck+t*ck]
	ivs := ints[ck+t*ck : ck+t*ck+a.Dk*ct]
	is := ints[len(ints)-ct:]
	fl := make([]float64, t*t+t)
	scores := fl[:t*t]
	col := fl[t*t:]

	// Round 1: scores from the quantized QK table (Eq. 13).
	for r := 0; r < t; r++ {
		a.encK.EncodeRow(k.Row(r), ik[r*ck:(r+1)*ck])
	}
	for t1 := 0; t1 < t; t1++ {
		a.encQ.EncodeRow(q.Row(t1), iq)
		row := scores[t1*t : (t1+1)*t]
		for t2 := 0; t2 < t; t2++ {
			ikr := ik[t2*ck : (t2+1)*ck]
			var sum float64
			for c := 0; c < ck; c++ {
				sum += a.qkQuant.at(c*kk+iq[c], ikr[c])
			}
			row[t2] = sum
		}
	}
	// Round 2: quantized QKV lookups with the float64 denominator (Eq. 15).
	for d := 0; d < a.Dk; d++ {
		for tt := 0; tt < t; tt++ {
			col[tt] = v.At(tt, d)
		}
		a.encV.EncodeRow(col, ivs[d*ct:(d+1)*ct])
	}
	out := mat.New(t, a.Dk)
	for t1 := 0; t1 < t; t1++ {
		a.encS.EncodeRow(scores[t1*t:(t1+1)*t], is)
		var den float64
		if a.mode == SoftmaxShared {
			for c, i := range is {
				den += a.denTable[c*ks+i]
			}
			if den == 0 {
				den = 1
			}
		}
		orow := out.Row(t1)
		for d := 0; d < a.Dk; d++ {
			ivd := ivs[d*ct : (d+1)*ct]
			var num float64
			for c, i := range is {
				num += a.qkvQuant.at(c*ks+i, ivd[c])
			}
			if a.mode == SoftmaxShared {
				num /= den
			}
			orow[d] = num
		}
	}
	return out
}

// Cost reports Eqs. 17, 19, 21 for this kernel. As with the linear kernel,
// the storage term prices the actual stored entry width (64-bit float64 or
// the quantized width plus affine metadata); the always-float64 denominator
// table, which Eq. 19's 2K²·C·d term does not cover, is added explicitly.
func (a *AttentionKernel) Cost() Cost {
	k, c := a.cfg.K, a.encQ.C()
	d, overhead := 64, 0
	if a.qkQuant != nil {
		d = a.qkQuant.bits
		overhead = a.qkQuant.overheadBits() + a.qkvQuant.overheadBits()
	}
	return Cost{
		LatencyCycles: AttentionLatency(k, c),
		StorageBits:   AttentionStorageBits(a.T, a.Dk, k, c, d) + len(a.denTable)*64 + overhead,
		Ops:           AttentionOps(a.T, a.Dk, k, c),
	}
}

// TableBytes is the measured footprint of the stored tables.
func (a *AttentionKernel) TableBytes() int {
	b := len(a.denTable) * 8
	if a.qkQuant != nil {
		return b + a.qkQuant.storedBytes() + a.qkvQuant.storedBytes()
	}
	return b + (len(a.qkTable)+len(a.qkvTable))*8
}

// Name identifies the kernel.
func (a *AttentionKernel) Name() string {
	return fmt.Sprintf("attention-kernel(T=%d,Dk=%d)", a.T, a.Dk)
}

// MSAKernel is the tabular form of a full multi-head self-attention block:
// linear kernels for the Q/K/V projections, one attention kernel per head,
// and a linear kernel for the output projection.
type MSAKernel struct {
	D, H, Dh   int
	WQ, WK, WV *LinearKernel
	Heads      []*AttentionKernel
	WO         *LinearKernel
}

// Query runs the tabular MSA for one sample (T x D).
func (m *MSAKernel) Query(x *mat.Matrix) *mat.Matrix {
	q := m.WQ.Query(x)
	k := m.WK.Query(x)
	v := m.WV.Query(x)
	t := x.Rows
	concat := mat.New(t, m.D)
	for h := 0; h < m.H; h++ {
		lo, hi := h*m.Dh, (h+1)*m.Dh
		oh := m.Heads[h].Query(q.SliceCols(lo, hi), k.SliceCols(lo, hi), v.SliceCols(lo, hi))
		for i := 0; i < t; i++ {
			copy(concat.Row(i)[lo:hi], oh.Row(i))
		}
	}
	return m.WO.Query(concat)
}

// Cost sums the projection and head costs; heads run in parallel so latency
// counts a single head.
func (m *MSAKernel) Cost() Cost {
	c := m.WQ.Cost() // Q/K/V projections run in parallel: one latency
	c.StorageBits += m.WK.Cost().StorageBits + m.WV.Cost().StorageBits
	c.Ops += m.WK.Cost().Ops + m.WV.Cost().Ops
	if len(m.Heads) > 0 {
		hc := m.Heads[0].Cost()
		c.LatencyCycles += hc.LatencyCycles
		for _, h := range m.Heads {
			c.StorageBits += h.Cost().StorageBits
			c.Ops += h.Cost().Ops
		}
	}
	oc := m.WO.Cost()
	c.LatencyCycles += oc.LatencyCycles
	c.StorageBits += oc.StorageBits
	c.Ops += oc.Ops
	return c
}

// Name identifies the block.
func (m *MSAKernel) Name() string { return fmt.Sprintf("msa-kernel(D=%d,H=%d)", m.D, m.H) }
