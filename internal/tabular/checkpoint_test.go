package tabular

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"dart/internal/mat"
	"dart/internal/nn"
)

// ckptHierarchy tabularizes a tiny transformer so checkpoint tests exercise
// every serialized layer kind (linear, msa, layernorm, posembed, residual,
// relu, meanpool).
func ckptHierarchy(t testing.TB) (*Hierarchy, *mat.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	net := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: 4, DIn: 5, DModel: 8, DFF: 16, DOut: 6, Heads: 2, Layers: 1,
	}, rng)
	fit := mat.NewTensor(24, 4, 5)
	for i := range fit.Data {
		fit.Data[i] = rng.NormFloat64()
	}
	res := Tabularize(net, fit, Config{
		Kernel: KernelConfig{K: 4, C: 1, Kind: EncoderLSH},
		Seed:   9,
	})
	probe := mat.NewTensor(7, 4, 5)
	for i := range probe.Data {
		probe.Data[i] = rng.NormFloat64()
	}
	return res.Hierarchy, probe
}

// sameBatches asserts two hierarchies produce bit-identical QueryBatch
// outputs on the probe tensor.
func sameBatches(t *testing.T, want, got *Hierarchy, probe *mat.Tensor) {
	t.Helper()
	w := want.QueryBatch(probe)
	g := got.QueryBatch(probe)
	if len(w.Data) != len(g.Data) {
		t.Fatalf("output sizes differ: %d vs %d", len(w.Data), len(g.Data))
	}
	for i, v := range w.Data {
		if g.Data[i] != v {
			t.Fatalf("output[%d] differs: %v vs %v", i, v, g.Data[i])
		}
	}
}

// TestTableCheckpointRoundTrip: save → load reproduces the hierarchy
// bit-identically and carries the metadata through, with the format, model
// label, and class stamped.
func TestTableCheckpointRoundTrip(t *testing.T) {
	h, probe := ckptHierarchy(t)
	var buf bytes.Buffer
	meta := nn.CheckpointMeta{Class: "dart", Version: 7, Source: 3, Examples: 24, Loss: 0.25}
	if err := SaveCheckpoint(&buf, h, meta); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	peeked, err := PeekCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if peeked.Model != hierarchyModelName || peeked.Class != "dart" ||
		peeked.Version != 7 || peeked.Source != 3 || peeked.Format == 0 {
		t.Fatalf("peeked meta %+v", peeked)
	}

	got, gotMeta, err := LoadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != peeked {
		t.Fatalf("load meta %+v != peek meta %+v", gotMeta, peeked)
	}
	sameBatches(t, h, got, probe)
}

// TestTableCheckpointCorruption is the corruption matrix for the table
// format: truncated file, garbage body, CRC bit-flip, oversized header, and
// an nn parameter checkpoint posing as a table (wrong magic) must all be
// rejected with descriptive errors, never half-decoded.
func TestTableCheckpointCorruption(t *testing.T) {
	h, _ := ckptHierarchy(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, h, nn.CheckpointMeta{Class: "dart", Version: 1}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	nnCkpt := func() []byte {
		net := nn.NewTransformerPredictor(nn.TransformerConfig{
			T: 4, DIn: 5, DModel: 8, DFF: 16, DOut: 6, Heads: 2, Layers: 1,
		}, rand.New(rand.NewSource(1)))
		var b bytes.Buffer
		if err := nn.SaveCheckpoint(&b, net, nn.CheckpointMeta{Class: "dart", Version: 1}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()

	oversized := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(oversized[8:12], 1<<31) // implausible metaLen

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x40

	cases := []struct {
		name    string
		raw     []byte
		wantErr string
	}{
		{"truncated header", good[:12], "truncated checkpoint header"},
		{"truncated payload", good[:len(good)-9], "truncated checkpoint"},
		{"garbage", []byte(strings.Repeat("not a table ", 40)), "bad magic"},
		{"crc flip", flipped, "CRC mismatch"},
		{"oversized header", oversized, "implausible"},
		{"nn checkpoint renamed to table", nnCkpt, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := LoadCheckpoint(bytes.NewReader(tc.raw)); err == nil {
				t.Fatal("corrupt table checkpoint loaded")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if _, err := PeekCheckpoint(bytes.NewReader(tc.raw)); err == nil {
				t.Fatal("corrupt table checkpoint peeked clean")
			}
		})
	}

	// The reverse rename: a table checkpoint must not restore into an nn
	// model either.
	net := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: 4, DIn: 5, DModel: 8, DFF: 16, DOut: 6, Heads: 2, Layers: 1,
	}, rand.New(rand.NewSource(2)))
	if _, err := nn.LoadCheckpoint(bytes.NewReader(good), net); err == nil {
		t.Fatal("table checkpoint loaded as nn parameters")
	} else if !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("cross-format load error %q does not mention the magic", err)
	}
}
