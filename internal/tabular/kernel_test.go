package tabular

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dart/internal/mat"
	"dart/internal/nn"
)

// clusteredTensor draws samples whose rows come from a few Gaussian clusters,
// the regime where product quantization is accurate.
func clusteredTensor(rng *rand.Rand, n, t, d, clusters int) *mat.Tensor {
	base := mat.New(clusters, d).Randn(rng, 2)
	x := mat.NewTensor(n, t, d)
	for s := 0; s < n; s++ {
		sm := x.Sample(s)
		for tt := 0; tt < t; tt++ {
			c := base.Row(rng.Intn(clusters))
			row := sm.Row(tt)
			for j, v := range c {
				row[j] = v + rng.NormFloat64()*0.05
			}
		}
	}
	return x
}

func relErr(approx, exact *mat.Matrix) float64 {
	var num, den float64
	for i, v := range exact.Data {
		num += math.Abs(approx.Data[i] - v)
		den += math.Abs(v)
	}
	return num / (den + 1e-12)
}

func TestLinearKernelApproximatesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear("lin", 8, 4, rng)
	train := clusteredTensor(rng, 64, 4, 8, 6)
	k := NewLinearKernel(l, train, KernelConfig{K: 16, C: 2}, rng)
	var worst float64
	for s := 0; s < 8; s++ {
		x := train.Sample(s)
		exact := l.Forward(mat.TensorFromSlice(1, 4, 8, append([]float64(nil), x.Data...)))
		approx := k.Query(x)
		if e := relErr(approx, exact.Sample(0)); e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Fatalf("linear kernel relative error %v > 15%%", worst)
	}
}

func TestLinearKernelBiasFolding(t *testing.T) {
	// With zero weights the kernel output must be exactly the bias,
	// regardless of input: the bias lives in subspace 0 of the table.
	rng := rand.New(rand.NewSource(2))
	l := nn.NewLinear("lin", 4, 3, rng)
	l.Weight.W.Zero()
	copy(l.Bias.W.Data, []float64{1.5, -2, 0.25})
	train := clusteredTensor(rng, 16, 2, 4, 3)
	k := NewLinearKernel(l, train, KernelConfig{K: 4, C: 2}, rng)
	out := k.Query(train.Sample(0))
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		if math.Abs(row[0]-1.5) > 1e-9 || math.Abs(row[1]+2) > 1e-9 || math.Abs(row[2]-0.25) > 1e-9 {
			t.Fatalf("bias folding broken: row %v", row)
		}
	}
}

func TestLinearKernelExactOnPrototypeInputs(t *testing.T) {
	// Inputs that coincide with learned prototypes reproduce W·x + b exactly.
	rng := rand.New(rand.NewSource(3))
	l := nn.NewLinear("lin", 4, 2, rng)
	train := clusteredTensor(rng, 32, 1, 4, 2)
	k := NewLinearKernel(l, train, KernelConfig{K: 2, C: 1}, rng)
	// Build a query from prototype 0 of subspace 0.
	q := mat.New(1, 4)
	copy(q.Row(0), k.enc.Center(0, 0))
	got := k.Query(q)
	want := l.Forward(mat.TensorFromSlice(1, 1, 4, append([]float64(nil), q.Data...)))
	if !mat.EqualApprox(got, want.Sample(0), 1e-9) {
		t.Fatalf("prototype input not exact: %v vs %v", got.Data, want.Sample(0).Data)
	}
}

func TestLinearKernelNonDivisibleC(t *testing.T) {
	// D=6, C=4 does not divide; the kernel must fall back to a valid C.
	rng := rand.New(rand.NewSource(4))
	l := nn.NewLinear("lin", 6, 2, rng)
	train := clusteredTensor(rng, 16, 2, 6, 2)
	k := NewLinearKernel(l, train, KernelConfig{K: 4, C: 4}, rng)
	out := k.Query(train.Sample(0))
	if out.Rows != 2 || out.Cols != 2 {
		t.Fatalf("unexpected output shape %v", out)
	}
}

func TestAttentionKernelApproximatesAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, tt, dk := 48, 4, 4
	ts := AttentionTrainingSet{
		Q: clusteredTensor(rng, n, tt, dk, 4),
		K: clusteredTensor(rng, n, tt, dk, 4),
		V: clusteredTensor(rng, n, tt, dk, 4),
	}
	// Exact attention for comparison.
	scale := 1 / math.Sqrt(float64(dk))
	relForK := func(kProto int) float64 {
		ak := NewAttentionKernel(ts, KernelConfig{K: kProto, C: 2}, SoftmaxShared, rand.New(rand.NewSource(42)))
		var errSum, magSum float64
		for s := 0; s < 16; s++ {
			q, k, v := ts.Q.Sample(s), ts.K.Sample(s), ts.V.Sample(s)
			scores := mat.MulTransB(q.Clone(), k).Scale(scale)
			scores.RowSoftmax()
			exact := mat.Mul(scores, v)
			approx := ak.Query(q, k, v)
			for i, e := range exact.Data {
				errSum += math.Abs(approx.Data[i] - e)
				magSum += math.Abs(e)
			}
		}
		return errSum / (magSum + 1e-12)
	}
	coarse := relForK(4)
	fine := relForK(64)
	if fine > 0.5 {
		t.Fatalf("attention kernel relative error %v > 50%% at K=64", fine)
	}
	// Paper Fig. 8: more prototypes means better approximation.
	if fine > coarse {
		t.Fatalf("error did not shrink with K: K=4 %v, K=64 %v", coarse, fine)
	}
}

func TestAttentionKernelSharedSoftmaxRowsBounded(t *testing.T) {
	// In shared-softmax mode each output element is a convex combination of
	// quantized V-column values, so outputs stay within a modest expansion of
	// V's range.
	rng := rand.New(rand.NewSource(6))
	ts := AttentionTrainingSet{
		Q: clusteredTensor(rng, 32, 4, 4, 3),
		K: clusteredTensor(rng, 32, 4, 4, 3),
		V: clusteredTensor(rng, 32, 4, 4, 3),
	}
	ak := NewAttentionKernel(ts, KernelConfig{K: 8, C: 2}, SoftmaxShared, rng)
	v := ts.V.Sample(0)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, val := range ts.V.Data {
		if val < lo {
			lo = val
		}
		if val > hi {
			hi = val
		}
	}
	out := ak.Query(ts.Q.Sample(0), ts.K.Sample(0), v)
	margin := (hi - lo) * 0.5
	for _, val := range out.Data {
		if val < lo-margin || val > hi+margin {
			t.Fatalf("output %v far outside V range [%v, %v]", val, lo, hi)
		}
	}
}

func TestAttentionKernelModesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := AttentionTrainingSet{
		Q: clusteredTensor(rng, 32, 4, 4, 3),
		K: clusteredTensor(rng, 32, 4, 4, 3),
		V: clusteredTensor(rng, 32, 4, 4, 3),
	}
	shared := NewAttentionKernel(ts, KernelConfig{K: 8, C: 2}, SoftmaxShared, rand.New(rand.NewSource(1)))
	strict := NewAttentionKernel(ts, KernelConfig{K: 8, C: 2}, SoftmaxPerSubspace, rand.New(rand.NewSource(1)))
	a := shared.Query(ts.Q.Sample(0), ts.K.Sample(0), ts.V.Sample(0))
	b := strict.Query(ts.Q.Sample(0), ts.K.Sample(0), ts.V.Sample(0))
	if mat.EqualApprox(a, b, 1e-12) {
		t.Fatal("softmax modes produced identical outputs; folding is not happening")
	}
}

func TestSigmoidLUTAccuracy(t *testing.T) {
	lut := NewSigmoidLUT()
	for x := -10.0; x <= 10.0; x += 0.01 {
		want := 1 / (1 + math.Exp(-x))
		if got := lut.Lookup(x); math.Abs(got-want) > 0.01 {
			t.Fatalf("sigmoid LUT error at %v: %v vs %v", x, got, want)
		}
	}
	// Clamping.
	if lut.Lookup(100) != lut.Entries[len(lut.Entries)-1] {
		t.Fatal("positive clamp broken")
	}
	if lut.Lookup(-100) != lut.Entries[0] {
		t.Fatal("negative clamp broken")
	}
}

func TestLayerNormTabMatchesNN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ln := nn.NewLayerNorm("ln", 6)
	ln.Gamma.W.Randn(rng, 1)
	ln.Beta.W.Randn(rng, 1)
	tab := NewLayerNormTab(ln)
	x := clusteredTensor(rng, 4, 3, 6, 2)
	want := ln.Forward(x.Clone())
	for s := 0; s < 4; s++ {
		got := tab.Query(x.Sample(s))
		if !mat.EqualApprox(got, want.Sample(s), 1e-9) {
			t.Fatalf("layernorm tab mismatch on sample %d", s)
		}
	}
}

func TestMeanPoolTabMatchesNN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := clusteredTensor(rng, 3, 4, 5, 2)
	want := nn.NewMeanPool().Forward(x.Clone())
	for s := 0; s < 3; s++ {
		got := MeanPoolTab{}.Query(x.Sample(s))
		if !mat.EqualApprox(got, want.Sample(s), 1e-12) {
			t.Fatalf("meanpool tab mismatch on sample %d", s)
		}
	}
}

func TestResidualTabIdentityInner(t *testing.T) {
	x := mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := &ResidualTab{Inner: []Layer{ReLUTab{}}}
	got := r.Query(x)
	want := mat.FromSlice(2, 2, []float64{2, 4, 6, 8})
	if !mat.EqualApprox(got, want, 0) {
		t.Fatalf("residual = %v", got.Data)
	}
}

func TestHierarchyCostAggregates(t *testing.T) {
	h := &Hierarchy{Layers: []Layer{ReLUTab{}, MeanPoolTab{}}}
	c := h.Cost()
	if c.LatencyCycles != 3 {
		t.Fatalf("hierarchy latency = %d", c.LatencyCycles)
	}
}

// TestParseEncoderKindRoundTrip pins the operator-facing kernel names: every
// parseable name round-trips through String, and unknown names are a clean
// error naming the valid choices.
func TestParseEncoderKindRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want EncoderKind
	}{
		{"lsh", EncoderLSH},
		{"linear", EncoderKMeans},
		{"kmeans", EncoderKMeans}, // historical alias for the linear encoder
	}
	for _, c := range cases {
		got, err := ParseEncoderKind(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseEncoderKind(%q) = %v, %v", c.in, got, err)
		}
	}
	// String is the canonical spelling and must itself parse.
	for _, k := range []EncoderKind{EncoderLSH, EncoderKMeans} {
		back, err := ParseEncoderKind(k.String())
		if err != nil || back != k {
			t.Fatalf("%v.String() = %q does not round-trip: %v, %v", k, k.String(), back, err)
		}
	}
	if _, err := ParseEncoderKind("quantum"); err == nil ||
		!strings.Contains(err.Error(), "unknown encoder kind") {
		t.Fatalf("unknown kind error: %v", err)
	}
}
