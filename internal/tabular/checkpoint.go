package tabular

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"dart/internal/nn"
)

// Hierarchy checkpoints reuse the nn checkpoint frame (fixed header, gob
// CheckpointMeta, CRC-32 over meta ++ body — see internal/nn/checkpoint.go)
// with the table magic "DARTTAB1" and a gob-encoded hierarchyState body.
// The distinct magic means a parameter checkpoint renamed into a table
// store's namespace (or vice versa) is rejected at the header, before any
// body bytes are decoded; the CRC rejects truncated, bit-flipped, and
// garbage files whole, so the versioned table store can always fall back to
// its newest good version.

// hierarchyModelName is the architecture label stamped into table
// checkpoint metadata (the CheckpointMeta.Model slot nn checkpoints fill
// with Layer.Name).
const hierarchyModelName = "tabular.Hierarchy"

// SaveCheckpoint writes a CRC-validated hierarchy snapshot with a metadata
// header. meta.Format, meta.Model, and meta.DataBits are filled in by this
// function.
func SaveCheckpoint(w io.Writer, h *Hierarchy, meta nn.CheckpointMeta) error {
	meta.Model = hierarchyModelName
	meta.DataBits = h.DataBits()
	st, err := marshalLayers(h.Layers)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(hierarchyState{Layers: st}); err != nil {
		return fmt.Errorf("tabular: encode hierarchy checkpoint: %w", err)
	}
	return nn.WriteFrame(w, nn.TableMagic, meta, body.Bytes())
}

// LoadCheckpoint validates a table checkpoint written by SaveCheckpoint and
// reconstructs its hierarchy. Nothing is decoded unless the frame (magic,
// sizes, CRC, format) validates.
func LoadCheckpoint(r io.Reader) (*Hierarchy, nn.CheckpointMeta, error) {
	meta, body, err := nn.ReadFrame(r, nn.TableMagic)
	if err != nil {
		return nil, meta, err
	}
	var st hierarchyState
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return nil, meta, fmt.Errorf("tabular: decode hierarchy checkpoint: %w", err)
	}
	layers, err := unmarshalLayers(st.Layers)
	if err != nil {
		return nil, meta, err
	}
	return &Hierarchy{Layers: layers}, meta, nil
}

// PeekCheckpoint reads and validates a table checkpoint, returning its
// metadata without reconstructing the hierarchy.
func PeekCheckpoint(r io.Reader) (nn.CheckpointMeta, error) {
	meta, _, err := nn.ReadFrame(r, nn.TableMagic)
	return meta, err
}
