package tabular

import (
	"math/rand"
	"testing"

	"dart/internal/nn"
)

// BenchmarkLinearKernelQuery measures a single linear-kernel lookup pass
// (T=8 rows, 32→64 dims, K=128, C=4).
func BenchmarkLinearKernelQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear("l", 32, 64, rng)
	train := clusteredTensor(rng, 64, 8, 32, 8)
	k := NewLinearKernel(l, train, KernelConfig{K: 128, C: 4}, rng)
	x := train.Sample(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Query(x)
	}
}

// BenchmarkLinearKernelQueryLSH is the same lookup with the O(log K) encoder.
func BenchmarkLinearKernelQueryLSH(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear("l", 32, 64, rng)
	train := clusteredTensor(rng, 64, 8, 32, 8)
	k := NewLinearKernel(l, train, KernelConfig{K: 128, C: 4, Kind: EncoderLSH}, rng)
	x := train.Sample(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Query(x)
	}
}

// BenchmarkAttentionKernelQuery measures the two-round attention lookup.
func BenchmarkAttentionKernelQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ts := AttentionTrainingSet{
		Q: clusteredTensor(rng, 48, 8, 16, 4),
		K: clusteredTensor(rng, 48, 8, 16, 4),
		V: clusteredTensor(rng, 48, 8, 16, 4),
	}
	ak := NewAttentionKernel(ts, KernelConfig{K: 32, C: 2}, SoftmaxShared, rng)
	q, k, v := ts.Q.Sample(0), ts.K.Sample(0), ts.V.Sample(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ak.Query(q, k, v)
	}
}

// BenchmarkTabularize measures full Algorithm 1 on a small trained model.
func BenchmarkTabularize(b *testing.B) {
	m, x, _ := smallModelAndData(1)
	cfg := Config{Kernel: KernelConfig{K: 16, C: 2}, FineTune: true, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tabularize(m, x, cfg)
	}
}
