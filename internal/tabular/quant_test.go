package tabular

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dart/internal/mat"
	"dart/internal/nn"
)

// quantHierarchy is ckptHierarchy at an explicit stored entry width (0 keeps
// the float64 default). Same net, fit set, and kernel seeds, so hierarchies
// built at different widths share their encoders and differ only in table
// representation.
func quantHierarchy(t testing.TB, bits int) (*Hierarchy, *mat.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	net := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: 4, DIn: 5, DModel: 8, DFF: 16, DOut: 6, Heads: 2, Layers: 1,
	}, rng)
	fit := mat.NewTensor(24, 4, 5)
	for i := range fit.Data {
		fit.Data[i] = rng.NormFloat64()
	}
	res := Tabularize(net, fit, Config{
		Kernel: KernelConfig{K: 4, C: 1, Kind: EncoderLSH, DataBits: bits},
		Seed:   9,
	})
	probe := mat.NewTensor(7, 4, 5)
	for i := range probe.Data {
		probe.Data[i] = rng.NormFloat64()
	}
	return res.Hierarchy, probe
}

// TestEncoderKindRoundTrip: String and ParseEncoderKind are exact inverses
// over the defined kinds, and unknown kinds no longer alias to "linear" —
// String used to fall through to the kmeans branch for any unrecognized
// value, so a corrupted config would round-trip into a real encoder.
func TestEncoderKindRoundTrip(t *testing.T) {
	for _, k := range []EncoderKind{EncoderKMeans, EncoderLSH} {
		got, err := ParseEncoderKind(k.String())
		if err != nil {
			t.Fatalf("ParseEncoderKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	// "kmeans" is an accepted spelling of the nearest-prototype encoder.
	if k, err := ParseEncoderKind("kmeans"); err != nil || k != EncoderKMeans {
		t.Fatalf("ParseEncoderKind(kmeans) = %v, %v", k, err)
	}
	for _, bad := range []EncoderKind{EncoderKind(2), EncoderKind(99), EncoderKind(-1)} {
		s := bad.String()
		if s == "linear" || s == "lsh" {
			t.Fatalf("unknown kind %d stringifies to valid name %q", int(bad), s)
		}
		if _, err := ParseEncoderKind(s); err == nil {
			t.Fatalf("ParseEncoderKind accepted unknown-kind string %q", s)
		}
	}
	for _, bad := range []string{"", "LSH", "int8", "encoderkind(7)"} {
		if _, err := ParseEncoderKind(bad); err == nil {
			t.Fatalf("ParseEncoderKind accepted %q", bad)
		}
	}
}

// TestLinearKernelQuantClose: a single quantized kernel tracks its float
// twin tightly — int8 within ~1% of the output range, int16 three orders
// tighter. (Full-hierarchy int8 closeness is NOT asserted: re-encoding
// quantized activations can flip discrete prototype indices between layers,
// so hierarchy-level int8 fidelity is an accuracy property, tested against
// prediction quality at the serving layer, not raw float closeness.)
func TestLinearKernelQuantClose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := nn.NewLinear("q", 16, 32, rng)
	train := mat.NewTensor(64, 4, 16)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()
	}
	for _, tc := range []struct {
		bits int
		eps  float64
	}{{8, 0.02}, {16, 2e-4}} {
		kf := NewLinearKernel(l, train, KernelConfig{K: 8, C: 2, Kind: EncoderLSH}, rand.New(rand.NewSource(7)))
		kq := NewLinearKernel(l, train, KernelConfig{K: 8, C: 2, Kind: EncoderLSH, DataBits: tc.bits}, rand.New(rand.NewSource(7)))
		var maxd float64
		for s := 0; s < 16; s++ {
			x := mat.New(4, 16)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			a, b := kf.Query(x), kq.Query(x)
			for i := range a.Data {
				if d := math.Abs(a.Data[i] - b.Data[i]); d > maxd {
					maxd = d
				}
			}
		}
		if maxd > tc.eps {
			t.Fatalf("bits=%d: max |float - quant| = %v > %v", tc.bits, maxd, tc.eps)
		}
	}
}

// TestInt16HierarchyCloseToFloat: at 16 bits the quantization step is fine
// enough that even the full hierarchy — re-encoding quantized activations at
// every layer — stays within 1e-3 of the float tables end to end.
func TestInt16HierarchyCloseToFloat(t *testing.T) {
	hf, probe := quantHierarchy(t, 0)
	hq, _ := quantHierarchy(t, 16)
	a, b := hf.QueryBatch(probe), hq.QueryBatch(probe)
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > 1e-3 {
			t.Fatalf("output[%d]: float %v vs int16 %v (diff %v)", i, a.Data[i], b.Data[i], d)
		}
	}
}

// TestModelledStorageMatchesMeasured: the Cost() storage model must agree
// with the bytes the tables actually occupy — within 10%, per layer and for
// the whole hierarchy, at every stored width. This is the regression test
// for the bug where Cost priced entries at a nominal 32 bits regardless of
// what the table stored.
func TestModelledStorageMatchesMeasured(t *testing.T) {
	for _, bits := range []int{0, 8, 16} {
		h, _ := quantHierarchy(t, bits)
		for i, l := range h.Layers {
			measured := MeasuredStorageBytes(l)
			if measured == 0 {
				continue // relu/meanpool: nothing stored, nothing modelled
			}
			modelled := l.Cost().StorageBytes()
			if d := math.Abs(float64(modelled - measured)); d > 0.10*float64(measured) {
				t.Errorf("bits=%d layer %d (%s): modelled %d B vs measured %d B (>10%% off)",
					bits, i, l.Name(), modelled, measured)
			}
		}
		modelled, measured := h.Cost().StorageBytes(), h.MeasuredStorageBytes()
		if d := math.Abs(float64(modelled - measured)); d > 0.10*float64(measured) {
			t.Errorf("bits=%d hierarchy: modelled %d B vs measured %d B (>10%% off)",
				bits, modelled, measured)
		}
	}
}

// TestQuantStorageShrinks: quantized hierarchies actually occupy less space,
// with the int8 payload at least 2x under float even on this tiny fixture
// (where per-row metadata is at its proportionally worst; the serving-scale
// ratio is gated in CI at >= 4x).
func TestQuantStorageShrinks(t *testing.T) {
	hf, _ := quantHierarchy(t, 0)
	h8, _ := quantHierarchy(t, 8)
	h16, _ := quantHierarchy(t, 16)
	f, q8, q16 := hf.MeasuredStorageBytes(), h8.MeasuredStorageBytes(), h16.MeasuredStorageBytes()
	if !(q8 < q16 && q16 < f) {
		t.Fatalf("width ordering violated: int8 %d, int16 %d, float %d bytes", q8, q16, f)
	}
	if float64(f)/float64(q8) < 2 {
		t.Fatalf("int8 %d B not >=2x under float %d B", q8, f)
	}
	if hf.DataBits() != 64 || h8.DataBits() != 8 || h16.DataBits() != 16 {
		t.Fatalf("DataBits = %d/%d/%d, want 64/8/16", hf.DataBits(), h8.DataBits(), h16.DataBits())
	}
}

// TestQuantizedCheckpointRoundTrip: quantized hierarchies survive the
// DARTTAB1 frame bit-identically and stamp their stored width into the
// checkpoint metadata.
func TestQuantizedCheckpointRoundTrip(t *testing.T) {
	for _, bits := range []int{8, 16} {
		h, probe := quantHierarchy(t, bits)
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, h, nn.CheckpointMeta{Class: "dart", Version: 2}); err != nil {
			t.Fatal(err)
		}
		got, meta, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if meta.DataBits != bits {
			t.Fatalf("bits=%d: meta stamped DataBits=%d", bits, meta.DataBits)
		}
		sameBatches(t, h, got, probe)
	}
	// Float hierarchies stamp 64 so operators can tell the widths apart.
	h, _ := quantHierarchy(t, 0)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, h, nn.CheckpointMeta{Class: "dart", Version: 2}); err != nil {
		t.Fatal(err)
	}
	meta, err := PeekCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.DataBits != 64 {
		t.Fatalf("float checkpoint stamped DataBits=%d, want 64", meta.DataBits)
	}
}

// Legacy layer states: the serialized layout as it existed before quantized
// payloads (no Quant/QKQuant/QKVQuant fields). Gob decodes by field name, so
// encoding these reproduces the exact wire shape of a pre-quantization
// checkpoint.
type legacyHierarchyState struct {
	Layers []legacyLayerState
}

type legacyLayerState struct {
	Kind           string
	In, Out        int
	SeqT           int
	Cfg            KernelConfig
	Enc            any
	Table          []float64
	D, H, Dh       int
	WQ, WK, WV, WO *legacyLayerState
	Heads          []legacyAttnState
	Dim            int
	Gamma, Beta    []float64
	Eps            float64
	T              int
	Emb            []float64
	Inner          []legacyLayerState
}

type legacyAttnState struct {
	T, Dk    int
	Mode     SoftmaxMode
	Cfg      KernelConfig
	EncQ     any
	EncK     any
	EncS     any
	EncV     any
	QKTable  []float64
	QKVTable []float64
	DenTable []float64
	ExpShift float64
}

func toLegacyLayer(t *testing.T, st layerState) legacyLayerState {
	t.Helper()
	if st.Quant != nil {
		t.Fatal("legacy conversion given a quantized layer")
	}
	out := legacyLayerState{
		Kind: st.Kind, In: st.In, Out: st.Out, SeqT: st.SeqT,
		Cfg: st.Cfg, Enc: st.Enc, Table: st.Table,
		D: st.D, H: st.H, Dh: st.Dh,
		Dim: st.Dim, Gamma: st.Gamma, Beta: st.Beta, Eps: st.Eps,
		T: st.T, Emb: st.Emb,
	}
	for _, p := range []struct {
		src *layerState
		dst **legacyLayerState
	}{{st.WQ, &out.WQ}, {st.WK, &out.WK}, {st.WV, &out.WV}, {st.WO, &out.WO}} {
		if p.src != nil {
			l := toLegacyLayer(t, *p.src)
			*p.dst = &l
		}
	}
	for _, h := range st.Heads {
		if h.QKQuant != nil || h.QKVQuant != nil {
			t.Fatal("legacy conversion given a quantized attention head")
		}
		out.Heads = append(out.Heads, legacyAttnState{
			T: h.T, Dk: h.Dk, Mode: h.Mode, Cfg: h.Cfg,
			EncQ: h.EncQ, EncK: h.EncK, EncS: h.EncS, EncV: h.EncV,
			QKTable: h.QKTable, QKVTable: h.QKVTable,
			DenTable: h.DenTable, ExpShift: h.ExpShift,
		})
	}
	for _, inner := range st.Inner {
		out.Inner = append(out.Inner, toLegacyLayer(t, inner))
	}
	return out
}

// frameTable wraps a gob body in the DARTTAB1 checkpoint frame.
func frameTable(t *testing.T, body any, meta nn.CheckpointMeta) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(body); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteFrame(&buf, nn.TableMagic, meta, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOldFloatCheckpointStillLoads: a checkpoint serialized with the
// pre-quantization layer states — no quant fields in the wire format at all —
// must load into a working float hierarchy with bit-identical queries.
func TestOldFloatCheckpointStillLoads(t *testing.T) {
	h, probe := quantHierarchy(t, 0)
	states, err := marshalLayers(h.Layers)
	if err != nil {
		t.Fatal(err)
	}
	legacy := legacyHierarchyState{}
	for _, st := range states {
		legacy.Layers = append(legacy.Layers, toLegacyLayer(t, st))
	}
	raw := frameTable(t, legacy, nn.CheckpointMeta{
		Model: hierarchyModelName, Class: "dart", Version: 1,
	})
	got, meta, err := LoadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	// Pre-quantization checkpoints never stamped a width; the zero value is
	// the marker that distinguishes them from explicit 64-bit float stamps.
	if meta.DataBits != 0 {
		t.Fatalf("legacy meta decoded DataBits=%d, want 0", meta.DataBits)
	}
	sameBatches(t, h, got, probe)
}

// mutateEncoderDims copies a marshalled encoder state and overwrites one of
// its exported dimension fields — simulating a checkpoint whose encoder
// geometry was corrupted in storage.
func mutateEncoderDims(t *testing.T, enc any, field string, val int64) any {
	t.Helper()
	rv := reflect.New(reflect.TypeOf(enc)).Elem()
	rv.Set(reflect.ValueOf(enc))
	f := rv.FieldByName(field)
	if !f.IsValid() || !f.CanSet() {
		t.Fatalf("encoder state has no settable field %q", field)
	}
	f.SetInt(val)
	return rv.Interface()
}

// TestCheckpointRejectsCorruptQuantAndEncoderState: the DARTTAB1 corruption
// matrix for the new payloads. Quantized tables with inconsistent geometry,
// undefined widths, or contradictory float/quant presence — and encoder
// states with zero, negative, or indivisible dimensions — must all fail
// LoadCheckpoint with an error, never panic or half-decode.
func TestCheckpointRejectsCorruptQuantAndEncoderState(t *testing.T) {
	h, _ := quantHierarchy(t, 8)
	states, err := marshalLayers(h.Layers)
	if err != nil {
		t.Fatal(err)
	}
	// Locate a linear kernel state and an MSA state to corrupt.
	linIdx, msaIdx := -1, -1
	for i, st := range states {
		if st.Kind == "linear" && linIdx < 0 {
			linIdx = i
		}
		if st.Kind == "residual" && msaIdx < 0 {
			for _, inner := range st.Inner {
				if inner.Kind == "msa" {
					msaIdx = i
				}
			}
		}
	}
	if linIdx < 0 || msaIdx < 0 {
		t.Fatalf("fixture lacks linear (%d) or msa (%d) states", linIdx, msaIdx)
	}

	// deepCopy reserializes the state list so each case mutates its own copy
	// (layerState shares slices with the live hierarchy).
	deepCopy := func() []layerState {
		st, err := marshalLayers(h.Layers)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	cases := []struct {
		name    string
		corrupt func([]layerState)
		wantErr string
	}{
		{"undefined quant width", func(st []layerState) {
			st[linIdx].Quant.Bits = 12
		}, "width 12 bits unsupported"},
		{"truncated quant payload", func(st []layerState) {
			st[linIdx].Quant.Q8 = st[linIdx].Quant.Q8[:len(st[linIdx].Quant.Q8)-1]
		}, "payload"},
		{"metadata length mismatch", func(st []layerState) {
			st[linIdx].Quant.Zero = st[linIdx].Quant.Zero[:len(st[linIdx].Quant.Zero)-1]
		}, "invalid"},
		{"both payload widths set", func(st []layerState) {
			st[linIdx].Quant.Q16 = make([]int16, 4)
		}, "payload"},
		{"non-positive row length", func(st []layerState) {
			st[linIdx].Quant.RowLen = 0
		}, "invalid"},
		{"float and quant tables both present", func(st []layerState) {
			st[linIdx].Table = make([]float64, 8)
		}, "exactly one"},
		{"neither table present", func(st []layerState) {
			st[linIdx].Quant = nil
		}, "exactly one"},
		{"attention head half-quantized", func(st []layerState) {
			for i, inner := range st[msaIdx].Inner {
				if inner.Kind == "msa" {
					st[msaIdx].Inner[i].Heads[0].QKVQuant = nil
				}
			}
		}, "only one"},
		{"encoder zero K", func(st []layerState) {
			st[linIdx].Enc = mutateEncoderDims(t, st[linIdx].Enc, "K", 0)
		}, "pq:"},
		{"encoder negative D", func(st []layerState) {
			st[linIdx].Enc = mutateEncoderDims(t, st[linIdx].Enc, "D", -8)
		}, "pq:"},
		{"encoder C not dividing D", func(st []layerState) {
			st[linIdx].Enc = mutateEncoderDims(t, st[linIdx].Enc, "C", 3)
		}, "pq:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadCheckpoint panicked: %v", r)
				}
			}()
			st := deepCopy()
			tc.corrupt(st)
			raw := frameTable(t, hierarchyState{Layers: st}, nn.CheckpointMeta{Class: "dart", Version: 1})
			_, _, err := LoadCheckpoint(bytes.NewReader(raw))
			if err == nil {
				t.Fatal("corrupt checkpoint loaded")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
