package tabular

import "testing"

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 128: 7, 1024: 10}
	for in, want := range cases {
		if got := CeilLog2(in); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLinearLatencyEq16(t *testing.T) {
	// L_l(K, C) = log K + log C + 1.
	if got := LinearLatency(128, 2); got != 7+1+1 {
		t.Fatalf("LinearLatency(128,2) = %d", got)
	}
	if got := LinearLatency(16, 1); got != 4+0+1 {
		t.Fatalf("LinearLatency(16,1) = %d", got)
	}
}

func TestAttentionLatencyEq17(t *testing.T) {
	// L_a(K, C) = 2(log K + log C + 1).
	if got := AttentionLatency(128, 2); got != 2*(7+1+1) {
		t.Fatalf("AttentionLatency(128,2) = %d", got)
	}
}

func TestLinearStorageEq18(t *testing.T) {
	// S_l = T·C·log K + D_O·K·C·d.
	want := 8*2*7 + 32*128*2*32
	if got := LinearStorageBits(8, 32, 128, 2, 32); got != want {
		t.Fatalf("LinearStorageBits = %d, want %d", got, want)
	}
}

func TestAttentionStorageEq19(t *testing.T) {
	// S_a = (3T + Dk)·C·log K + 2K²·C·d.
	want := (3*8+16)*2*7 + 2*128*128*2*32
	if got := AttentionStorageBits(8, 16, 128, 2, 32); got != want {
		t.Fatalf("AttentionStorageBits = %d, want %d", got, want)
	}
}

func TestLinearOpsEq20(t *testing.T) {
	// A_l = T·C·log K + T·D_O·log C.
	want := 8*2*7 + 8*32*1
	if got := LinearOps(8, 32, 128, 2); got != want {
		t.Fatalf("LinearOps = %d, want %d", got, want)
	}
}

func TestAttentionOpsEq21(t *testing.T) {
	// A_a = (3T + Dk)·C·log K + (T² + Dk²)·log C.
	want := (3*8+16)*2*7 + (64+256)*1
	if got := AttentionOps(8, 16, 128, 2); got != want {
		t.Fatalf("AttentionOps = %d, want %d", got, want)
	}
}

func TestCostAddAndBytes(t *testing.T) {
	a := Cost{LatencyCycles: 3, StorageBits: 9, Ops: 5}
	b := Cost{LatencyCycles: 2, StorageBits: 7, Ops: 1}
	s := a.Add(b)
	if s.LatencyCycles != 5 || s.StorageBits != 16 || s.Ops != 6 {
		t.Fatalf("Cost.Add = %+v", s)
	}
	if s.StorageBytes() != 2 {
		t.Fatalf("StorageBytes = %d", s.StorageBytes())
	}
	if (Cost{StorageBits: 9}).StorageBytes() != 2 {
		t.Fatal("StorageBytes rounding broken")
	}
}

func TestLatencyMonotoneInK(t *testing.T) {
	prev := 0
	for _, k := range []int{2, 4, 16, 64, 256, 1024} {
		l := LinearLatency(k, 2)
		if l < prev {
			t.Fatalf("latency not monotone at K=%d", k)
		}
		prev = l
	}
}

func TestStorageExponentialInK(t *testing.T) {
	// Paper Fig. 10: storage grows ~exponentially with log K steps, i.e.
	// doubling K roughly doubles the dominant linear-kernel table term.
	s1 := LinearStorageBits(8, 32, 128, 2, 32)
	s2 := LinearStorageBits(8, 32, 256, 2, 32)
	if s2 < s1*3/2 {
		t.Fatalf("doubling K: %d -> %d, expected near-doubling", s1, s2)
	}
}
