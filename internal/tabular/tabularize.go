package tabular

import (
	"fmt"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/nn"
)

// Config controls layer-wise tabularization (Algorithm 1).
type Config struct {
	Kernel         KernelConfig // table configuration ⟨K, C⟩ shared by all kernels
	Softmax        SoftmaxMode  // attention softmax folding mode
	FineTune       bool         // enable per-layer fine-tuning (Algorithm 1 line 8)
	FineTuneEpochs int          // E in Algorithm 1
	FineTuneLR     float64
	Seed           int64
}

// withDefaults fills unset training hyperparameters.
func (c Config) withDefaults() Config {
	if c.FineTuneEpochs == 0 {
		c.FineTuneEpochs = 8
	}
	if c.FineTuneLR == 0 {
		c.FineTuneLR = 1e-3
	}
	c.Kernel = c.Kernel.withDefaults()
	return c
}

// Result is the output of Tabularize: the table hierarchy plus per-layer
// diagnostics. Cosine[i] is the cosine similarity between the tabularized and
// exact activations after hierarchy layer i (the Fig. 11 measurement).
type Result struct {
	Hierarchy  *Hierarchy
	LayerNames []string
	Cosine     []float64
}

// Tabularize converts a trained model into a hierarchy of tables, layer by
// layer (Algorithm 1). data supplies the kernel-fitting inputs; the exact
// activations of the original model serve as fine-tuning targets so each
// table imitates the layer output rather than merely approximating its
// weights (Eq. 26).
func Tabularize(model *nn.Sequential, data *mat.Tensor, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Hierarchy: &Hierarchy{}}
	w := &walker{cfg: cfg, rng: rng, res: res}
	approx := data.Clone()
	exact := data.Clone()
	w.walk(model.Layers, approx, exact)
	return res
}

// walker threads the approximate (through-tables) and exact (through-network)
// activations through the layer list.
type walker struct {
	cfg     Config
	rng     *rand.Rand
	res     *Result
	kernels int // count of lookup kernels built so far; first one skips fine-tuning
}

// record appends a layer and its diagnostic cosine similarity.
func (w *walker) record(l Layer, approx, exact *mat.Tensor) {
	w.res.Hierarchy.Layers = append(w.res.Hierarchy.Layers, l)
	w.res.LayerNames = append(w.res.LayerNames, l.Name())
	w.res.Cosine = append(w.res.Cosine, mat.CosineSimilarity(approx.AsMatrix(), exact.AsMatrix()))
}

// apply runs one tabular layer over a batch, fanning the independent
// per-sample queries across the worker pool.
func apply(l Layer, x *mat.Tensor) *mat.Tensor {
	return queryBatch(x, 4, l.Query)
}

// walk processes a layer list, returning the updated activations.
func (w *walker) walk(layers []nn.Layer, approx, exact *mat.Tensor) (*mat.Tensor, *mat.Tensor) {
	for _, l := range layers {
		approx, exact = w.layer(l, approx, exact)
	}
	return approx, exact
}

func (w *walker) layer(l nn.Layer, approx, exact *mat.Tensor) (*mat.Tensor, *mat.Tensor) {
	switch v := l.(type) {
	case *nn.Linear:
		exactOut := v.Forward(exact)
		k := w.linearKernel(v, approx, exactOut)
		approxOut := apply(k, approx)
		w.record(k, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.MultiHeadSelfAttention:
		return w.msa(v, approx, exact)

	case *nn.LayerNorm:
		t := NewLayerNormTab(v)
		approxOut := apply(t, approx)
		exactOut := v.Forward(exact)
		w.record(t, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.ReLU:
		t := ReLUTab{}
		approxOut := apply(t, approx)
		exactOut := v.Forward(exact)
		w.record(t, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.Sigmoid:
		t := NewSigmoidLUT()
		approxOut := apply(t, approx)
		exactOut := v.Forward(exact)
		w.record(t, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.MeanPool:
		t := MeanPoolTab{}
		approxOut := apply(t, approx)
		exactOut := v.Forward(exact)
		w.record(t, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.PositionalEmbedding:
		t := NewPosEmbedTab(v, w.cfg.Kernel.DataBits)
		approxOut := apply(t, approx)
		exactOut := v.Forward(exact)
		w.record(t, approxOut, exactOut)
		return approxOut, exactOut

	case *nn.Residual:
		return w.residual(v, approx, exact)

	case *nn.Sequential:
		return w.walk(v.Layers, approx, exact)

	default:
		panic(fmt.Sprintf("tabular: no kernel for layer type %T", l))
	}
}

// residual tabularizes the inner block and re-adds the skip connection on
// both the approximate and exact paths.
func (w *walker) residual(r *nn.Residual, approx, exact *mat.Tensor) (*mat.Tensor, *mat.Tensor) {
	tab := &ResidualTab{}
	// Mark where the inner layers start so we can scoop them into the block.
	start := len(w.res.Hierarchy.Layers)
	var innerLayers []nn.Layer
	switch inner := r.Inner.(type) {
	case *nn.Sequential:
		innerLayers = inner.Layers
	default:
		innerLayers = []nn.Layer{r.Inner}
	}
	approxInner, exactInner := w.walk(innerLayers, approx, exact)
	// Move the freshly appended layers inside the residual wrapper.
	tab.Inner = append(tab.Inner, w.res.Hierarchy.Layers[start:]...)
	w.res.Hierarchy.Layers = w.res.Hierarchy.Layers[:start]
	w.res.LayerNames = w.res.LayerNames[:start]
	w.res.Cosine = w.res.Cosine[:start]

	approxOut := approxInner.Clone()
	for i, v := range approx.Data {
		approxOut.Data[i] += v
	}
	exactOut := exactInner.Clone()
	for i, v := range exact.Data {
		exactOut.Data[i] += v
	}
	w.record(tab, approxOut, exactOut)
	return approxOut, exactOut
}

// linearKernel optionally fine-tunes the layer against the exact outputs and
// builds its table.
func (w *walker) linearKernel(l *nn.Linear, approxIn, exactOut *mat.Tensor) *LinearKernel {
	layer := l
	if w.cfg.FineTune && w.kernels > 0 {
		layer = fineTuneLinear(l, approxIn, exactOut, w.cfg.FineTuneEpochs, w.cfg.FineTuneLR, w.rng)
	}
	w.kernels++
	return NewLinearKernel(layer, approxIn, w.cfg.Kernel, w.rng)
}

// msa decomposes a multi-head self-attention block: linear kernels for the
// Q/K/V projections, an attention kernel per head, and a linear kernel for
// the output projection.
func (w *walker) msa(m *nn.MultiHeadSelfAttention, approx, exact *mat.Tensor) (*mat.Tensor, *mat.Tensor) {
	exactQ := m.WQ.Forward(exact)
	exactK := m.WK.Forward(exact)
	exactV := m.WV.Forward(exact)

	kq := w.linearKernel(m.WQ, approx, exactQ)
	kk := w.linearKernel(m.WK, approx, exactK)
	kv := w.linearKernel(m.WV, approx, exactV)
	approxQ := apply(kq, approx)
	approxK := apply(kk, approx)
	approxV := apply(kv, approx)

	msak := &MSAKernel{D: m.D, H: m.Heads, Dh: m.Dh, WQ: kq, WK: kk, WV: kv}
	n, t := approx.N, approx.T
	approxConcat := mat.NewTensor(n, t, m.D)
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*m.Dh, (h+1)*m.Dh
		ts := AttentionTrainingSet{
			Q: sliceDims(approxQ, lo, hi),
			K: sliceDims(approxK, lo, hi),
			V: sliceDims(approxV, lo, hi),
		}
		ak := NewAttentionKernel(ts, w.cfg.Kernel, w.cfg.Softmax, w.rng)
		msak.Heads = append(msak.Heads, ak)
		for s := 0; s < n; s++ {
			oh := ak.Query(ts.Q.Sample(s), ts.K.Sample(s), ts.V.Sample(s))
			dst := approxConcat.Sample(s)
			for i := 0; i < t; i++ {
				copy(dst.Row(i)[lo:hi], oh.Row(i))
			}
		}
	}

	// Exact MSA output as the fine-tuning target for the output projection.
	exactOut := m.Forward(exact)
	ko := w.linearKernelWithInput(m.WO, approxConcat, exactOut)
	msak.WO = ko
	approxOut := apply(ko, approxConcat)

	w.record(msak, approxOut, exactOut)
	return approxOut, exactOut
}

// linearKernelWithInput is linearKernel with an explicit training input
// (the concatenated head outputs for WO).
func (w *walker) linearKernelWithInput(l *nn.Linear, in, target *mat.Tensor) *LinearKernel {
	layer := l
	if w.cfg.FineTune && w.kernels > 0 {
		layer = fineTuneLinear(l, in, target, w.cfg.FineTuneEpochs, w.cfg.FineTuneLR, w.rng)
	}
	w.kernels++
	return NewLinearKernel(layer, in, w.cfg.Kernel, w.rng)
}

// sliceDims extracts feature columns [lo, hi) from every position of x.
func sliceDims(x *mat.Tensor, lo, hi int) *mat.Tensor {
	out := mat.NewTensor(x.N, x.T, hi-lo)
	for n := 0; n < x.N; n++ {
		src := x.Sample(n)
		dst := out.Sample(n)
		for t := 0; t < x.T; t++ {
			copy(dst.Row(t), src.Row(t)[lo:hi])
		}
	}
	return out
}

// fineTuneLinear trains a copy of l to map the tabularized inputs to the
// original layer outputs (Eq. 26), distilling the layer into its table.
func fineTuneLinear(l *nn.Linear, in, target *mat.Tensor, epochs int, lr float64, rng *rand.Rand) *nn.Linear {
	ft := nn.NewLinear(l.Name()+".ft", l.In, l.Out, rng)
	ft.Weight.W.CopyFrom(l.Weight.W)
	copy(ft.Bias.W.Data, l.Bias.W.Data)
	opt := nn.NewAdam(lr)
	for e := 0; e < epochs; e++ {
		pred := ft.Forward(in)
		_, grad := nn.MSE(pred, target)
		ft.Backward(grad)
		opt.Step(ft.Params())
	}
	return ft
}
