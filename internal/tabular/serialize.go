package tabular

import (
	"encoding/gob"
	"fmt"
	"io"

	"dart/internal/pq"
)

// Serialized hierarchy layout: a flat list of typed layer states. Residual
// blocks store their inner layers recursively.
type hierarchyState struct {
	Layers []layerState
}

type layerState struct {
	Kind string // "linear" | "msa" | "layernorm" | "sigmoid" | "relu" | "meanpool" | "posembed" | "residual"

	// linear kernel: exactly one of Table (float64) and Quant is set.
	// Checkpoints written before quantization existed carry only Table and
	// decode Quant as nil, so old float tables keep loading unchanged.
	// (posembed states reuse Quant the same way, against Emb below.)
	In, Out int
	SeqT    int
	Cfg     KernelConfig
	Enc     any
	Table   []float64
	Quant   *quantState

	// msa kernel
	D, H, Dh       int
	WQ, WK, WV, WO *layerState
	Heads          []attnState

	// layernorm / posembed
	Dim         int
	Gamma, Beta []float64
	Eps         float64
	T           int
	Emb         []float64

	// residual
	Inner []layerState
}

type attnState struct {
	T, Dk    int
	Mode     SoftmaxMode
	Cfg      KernelConfig
	EncQ     any
	EncK     any
	EncS     any
	EncV     any
	QKTable  []float64
	QKVTable []float64
	DenTable []float64
	ExpShift float64
	// Quantized forms of the QK/QKV tables; nil in float checkpoints.
	QKQuant  *quantState
	QKVQuant *quantState
}

// quantState is the serialized form of a quantTable: the integer payload at
// its stored width plus the per-row affine metadata.
type quantState struct {
	Bits   int
	RowLen int
	Q8     []int8
	Q16    []int16
	Scale  []float64
	Zero   []int32
}

func marshalQuant(qt *quantTable) *quantState {
	if qt == nil {
		return nil
	}
	return &quantState{
		Bits: qt.bits, RowLen: qt.rowLen,
		Q8: qt.q8, Q16: qt.q16, Scale: qt.scale, Zero: qt.zero,
	}
}

// unmarshalQuant validates internal consistency before reconstructing: a
// payload whose length disagrees with its row geometry, mismatched metadata
// lengths, or an undefined width would otherwise surface as an index panic
// on the first query.
func unmarshalQuant(st *quantState) (*quantTable, error) {
	if st == nil {
		return nil, nil
	}
	rows := len(st.Scale)
	if rows == 0 || st.RowLen <= 0 || len(st.Zero) != rows {
		return nil, fmt.Errorf("tabular: quantized table rows=%d rowLen=%d zeros=%d invalid",
			rows, st.RowLen, len(st.Zero))
	}
	want := rows * st.RowLen
	switch st.Bits {
	case 8:
		if len(st.Q8) != want || len(st.Q16) != 0 {
			return nil, fmt.Errorf("tabular: int8 quantized payload %d entries, want %d", len(st.Q8), want)
		}
	case 16:
		if len(st.Q16) != want || len(st.Q8) != 0 {
			return nil, fmt.Errorf("tabular: int16 quantized payload %d entries, want %d", len(st.Q16), want)
		}
	default:
		return nil, fmt.Errorf("tabular: quantized table width %d bits unsupported", st.Bits)
	}
	return &quantTable{
		bits: st.Bits, rowLen: st.RowLen,
		q8: st.Q8, q16: st.Q16, scale: st.Scale, zero: st.Zero,
	}, nil
}

func init() {
	gob.Register(hierarchyState{})
}

// Save writes the hierarchy with encoding/gob so a trained DART predictor
// can be deployed without retraining.
func (h *Hierarchy) Save(w io.Writer) error {
	st, err := marshalLayers(h.Layers)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(hierarchyState{Layers: st})
}

// LoadHierarchy reads a hierarchy written by Save.
func LoadHierarchy(r io.Reader) (*Hierarchy, error) {
	var st hierarchyState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("tabular: decode hierarchy: %w", err)
	}
	layers, err := unmarshalLayers(st.Layers)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Layers: layers}, nil
}

func marshalLayers(layers []Layer) ([]layerState, error) {
	out := make([]layerState, 0, len(layers))
	for _, l := range layers {
		st, err := marshalLayer(l)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func marshalLayer(l Layer) (layerState, error) {
	switch v := l.(type) {
	case *LinearKernel:
		enc, err := pq.MarshalEncoder(v.enc)
		if err != nil {
			return layerState{}, err
		}
		return layerState{
			Kind: "linear", In: v.In, Out: v.Out, SeqT: v.seqT,
			Cfg: v.cfg, Enc: enc, Table: v.table, Quant: marshalQuant(v.quant),
		}, nil
	case *MSAKernel:
		wq, err := marshalLayer(v.WQ)
		if err != nil {
			return layerState{}, err
		}
		wk, err := marshalLayer(v.WK)
		if err != nil {
			return layerState{}, err
		}
		wv, err := marshalLayer(v.WV)
		if err != nil {
			return layerState{}, err
		}
		wo, err := marshalLayer(v.WO)
		if err != nil {
			return layerState{}, err
		}
		st := layerState{Kind: "msa", D: v.D, H: v.H, Dh: v.Dh,
			WQ: &wq, WK: &wk, WV: &wv, WO: &wo}
		for _, h := range v.Heads {
			encQ, err := pq.MarshalEncoder(h.encQ)
			if err != nil {
				return layerState{}, err
			}
			encK, err := pq.MarshalEncoder(h.encK)
			if err != nil {
				return layerState{}, err
			}
			encS, err := pq.MarshalEncoder(h.encS)
			if err != nil {
				return layerState{}, err
			}
			encV, err := pq.MarshalEncoder(h.encV)
			if err != nil {
				return layerState{}, err
			}
			st.Heads = append(st.Heads, attnState{
				T: h.T, Dk: h.Dk, Mode: h.mode, Cfg: h.cfg,
				EncQ: encQ, EncK: encK, EncS: encS, EncV: encV,
				QKTable: h.qkTable, QKVTable: h.qkvTable,
				DenTable: h.denTable, ExpShift: h.expShift,
				QKQuant: marshalQuant(h.qkQuant), QKVQuant: marshalQuant(h.qkvQuant),
			})
		}
		return st, nil
	case *LayerNormTab:
		return layerState{Kind: "layernorm", Dim: v.D, Gamma: v.Gamma, Beta: v.Beta, Eps: v.Eps}, nil
	case *SigmoidLUT:
		return layerState{Kind: "sigmoid"}, nil
	case ReLUTab:
		return layerState{Kind: "relu"}, nil
	case MeanPoolTab:
		return layerState{Kind: "meanpool"}, nil
	case *PosEmbedTab:
		return layerState{Kind: "posembed", T: v.T, Dim: v.D, Emb: v.Emb, Quant: marshalQuant(v.quant)}, nil
	case *ResidualTab:
		inner, err := marshalLayers(v.Inner)
		if err != nil {
			return layerState{}, err
		}
		return layerState{Kind: "residual", Inner: inner}, nil
	default:
		return layerState{}, fmt.Errorf("tabular: cannot serialize layer %T", l)
	}
}

func unmarshalLayers(states []layerState) ([]Layer, error) {
	out := make([]Layer, 0, len(states))
	for _, st := range states {
		l, err := unmarshalLayer(st)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

func unmarshalLayer(st layerState) (Layer, error) {
	switch st.Kind {
	case "linear":
		enc, err := pq.UnmarshalEncoder(st.Enc)
		if err != nil {
			return nil, err
		}
		quant, err := unmarshalQuant(st.Quant)
		if err != nil {
			return nil, err
		}
		if (st.Table == nil) == (quant == nil) {
			return nil, fmt.Errorf("tabular: linear kernel state needs exactly one of float table (%d entries) and quantized table", len(st.Table))
		}
		return &LinearKernel{
			In: st.In, Out: st.Out, seqT: st.SeqT,
			cfg: st.Cfg, enc: enc, table: st.Table, quant: quant,
		}, nil
	case "msa":
		wq, err := unmarshalLayer(*st.WQ)
		if err != nil {
			return nil, err
		}
		wk, err := unmarshalLayer(*st.WK)
		if err != nil {
			return nil, err
		}
		wv, err := unmarshalLayer(*st.WV)
		if err != nil {
			return nil, err
		}
		wo, err := unmarshalLayer(*st.WO)
		if err != nil {
			return nil, err
		}
		m := &MSAKernel{D: st.D, H: st.H, Dh: st.Dh,
			WQ: wq.(*LinearKernel), WK: wk.(*LinearKernel),
			WV: wv.(*LinearKernel), WO: wo.(*LinearKernel)}
		for _, hs := range st.Heads {
			encQ, err := pq.UnmarshalEncoder(hs.EncQ)
			if err != nil {
				return nil, err
			}
			encK, err := pq.UnmarshalEncoder(hs.EncK)
			if err != nil {
				return nil, err
			}
			encS, err := pq.UnmarshalEncoder(hs.EncS)
			if err != nil {
				return nil, err
			}
			encV, err := pq.UnmarshalEncoder(hs.EncV)
			if err != nil {
				return nil, err
			}
			qkQuant, err := unmarshalQuant(hs.QKQuant)
			if err != nil {
				return nil, err
			}
			qkvQuant, err := unmarshalQuant(hs.QKVQuant)
			if err != nil {
				return nil, err
			}
			if (qkQuant == nil) != (qkvQuant == nil) {
				return nil, fmt.Errorf("tabular: attention head quantizes only one of its QK/QKV tables")
			}
			m.Heads = append(m.Heads, &AttentionKernel{
				T: hs.T, Dk: hs.Dk, mode: hs.Mode, cfg: hs.Cfg,
				encQ: encQ, encK: encK, encS: encS, encV: encV,
				qkTable: hs.QKTable, qkvTable: hs.QKVTable,
				denTable: hs.DenTable, expShift: hs.ExpShift,
				qkQuant: qkQuant, qkvQuant: qkvQuant,
			})
		}
		return m, nil
	case "layernorm":
		return &LayerNormTab{D: st.Dim, Gamma: st.Gamma, Beta: st.Beta, Eps: st.Eps}, nil
	case "sigmoid":
		return NewSigmoidLUT(), nil
	case "relu":
		return ReLUTab{}, nil
	case "meanpool":
		return MeanPoolTab{}, nil
	case "posembed":
		quant, err := unmarshalQuant(st.Quant)
		if err != nil {
			return nil, err
		}
		if (st.Emb == nil) == (quant == nil) {
			return nil, fmt.Errorf("tabular: posembed state needs exactly one of float embedding (%d entries) and quantized table", len(st.Emb))
		}
		return &PosEmbedTab{T: st.T, D: st.Dim, Emb: st.Emb, quant: quant}, nil
	case "residual":
		inner, err := unmarshalLayers(st.Inner)
		if err != nil {
			return nil, err
		}
		return &ResidualTab{Inner: inner}, nil
	default:
		return nil, fmt.Errorf("tabular: unknown layer kind %q", st.Kind)
	}
}
