package tabular

import (
	"bytes"
	"testing"

	"dart/internal/mat"
)

func TestHierarchySaveLoadRoundTrip(t *testing.T) {
	m, x, _ := smallModelAndData(21)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2}, FineTune: true, Seed: 7})
	var buf bytes.Buffer
	if err := res.Hierarchy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Layers) != len(res.Hierarchy.Layers) {
		t.Fatalf("loaded %d layers, want %d", len(loaded.Layers), len(res.Hierarchy.Layers))
	}
	for s := 0; s < 4; s++ {
		want := res.Hierarchy.Query(x.Sample(s))
		got := loaded.Query(x.Sample(s))
		if !mat.EqualApprox(got, want, 1e-12) {
			t.Fatalf("loaded hierarchy diverges on sample %d", s)
		}
	}
	// Cost model must survive the round trip too.
	if loaded.Cost() != res.Hierarchy.Cost() {
		t.Fatalf("cost changed: %+v vs %+v", loaded.Cost(), res.Hierarchy.Cost())
	}
}

func TestHierarchySaveLoadLSH(t *testing.T) {
	m, x, _ := smallModelAndData(22)
	res := Tabularize(m, x, Config{Kernel: KernelConfig{K: 16, C: 2, Kind: EncoderLSH}, Seed: 7})
	var buf bytes.Buffer
	if err := res.Hierarchy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Hierarchy.Query(x.Sample(0))
	got := loaded.Query(x.Sample(0))
	if !mat.EqualApprox(got, want, 1e-12) {
		t.Fatal("LSH hierarchy diverges after round trip")
	}
}

func TestLoadHierarchyGarbage(t *testing.T) {
	if _, err := LoadHierarchy(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}
