package prefetch

import "dart/internal/sim"

// Stride is the classic PC-localised stride prefetcher: a reference
// prediction table keyed by program counter tracks the last block and stride
// of each static load, and issues prefetches once the stride has been
// confirmed twice. It complements BO (global best offset) and ISB (temporal
// streams) as the third classical baseline family.
type Stride struct {
	degree  int
	latency int
	maxPCs  int
	table   map[uint64]*strideEntry
	buf     []uint64 // OnAccess return buffer, reused every call
}

type strideEntry struct {
	lastBlock  uint64
	stride     int64
	confidence int
}

// NewStride returns the stride prefetcher with a bounded PC table.
func NewStride(degree int) *Stride {
	return &Stride{
		degree:  degree,
		latency: 20,
		maxPCs:  1024,
		table:   make(map[uint64]*strideEntry),
	}
}

// Name identifies the prefetcher.
func (s *Stride) Name() string { return "Stride" }

// Latency is the table-lookup latency in cycles.
func (s *Stride) Latency() int { return s.latency }

// StorageBytes reports the table budget (PC, block, stride, confidence per
// entry ≈ 20 bytes).
func (s *Stride) StorageBytes() int { return s.maxPCs * 20 }

// OnAccess trains the per-PC stride and prefetches along confirmed strides.
func (s *Stride) OnAccess(a sim.Access) []uint64 {
	e, ok := s.table[a.PC]
	if !ok {
		if len(s.table) < s.maxPCs {
			s.table[a.PC] = &strideEntry{lastBlock: a.Block}
		}
		return nil
	}
	stride := int64(a.Block) - int64(e.lastBlock)
	if stride == e.stride && stride != 0 {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
	}
	e.lastBlock = a.Block
	if e.confidence < 2 || e.stride == 0 {
		return nil
	}
	// The returned slice aliases a reused buffer: the simulator consumes it
	// inside the same Step, before the next OnAccess can overwrite it.
	out := s.buf[:0]
	for i := 1; i <= s.degree; i++ {
		nb := int64(a.Block) + e.stride*int64(i)
		if nb > 0 {
			out = append(out, uint64(nb))
		}
	}
	s.buf = out
	return out
}
