package prefetch

import (
	"sort"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/sim"
	"dart/internal/tabular"
)

// BitmapPredictor maps a T x DIn input matrix (segmented address history plus
// PC feature, Sec. VI-A) to delta-bitmap logits of length DOut. Both neural
// models and DART's table hierarchy satisfy this.
type BitmapPredictor interface {
	Logits(x *mat.Matrix) []float64
}

// NNModel adapts an nn model (transformer or LSTM predictor).
type NNModel struct{ Model nn.Layer }

// Logits runs the model on a single sample.
func (m NNModel) Logits(x *mat.Matrix) []float64 {
	t := mat.TensorFromSlice(1, x.Rows, x.Cols, append([]float64(nil), x.Data...))
	out := m.Model.Forward(t)
	return append([]float64(nil), out.Data...)
}

// TableModel adapts a DART table hierarchy.
type TableModel struct{ H *tabular.Hierarchy }

// Logits queries the hierarchy on a single sample.
func (m TableModel) Logits(x *mat.Matrix) []float64 {
	out := m.H.Query(x)
	return append([]float64(nil), out.Data...)
}

// NNPrefetcher wraps a BitmapPredictor as an LLC prefetcher: it keeps the
// access history ring, builds the segmented input on every trigger, predicts
// the delta bitmap, and converts the strongest positive bits into prefetch
// addresses. Latency models predictor inference time; ideal variants use 0.
type NNPrefetcher struct {
	name      string
	pred      BitmapPredictor
	cfg       dataprep.Config
	latency   int
	storage   int
	degree    int
	threshold float64 // logit threshold; 0 corresponds to p > 0.5

	hist []histEntry // ring of the last T accesses
	x    *mat.Matrix // reusable input buffer
}

type histEntry struct {
	block uint64
	pc    uint64
}

// NewNNPrefetcher builds the wrapper. degree caps prefetches per trigger.
func NewNNPrefetcher(name string, pred BitmapPredictor, cfg dataprep.Config, latency, storageBytes, degree int) *NNPrefetcher {
	return &NNPrefetcher{
		name:    name,
		pred:    pred,
		cfg:     cfg,
		latency: latency,
		storage: storageBytes,
		degree:  degree,
		x:       mat.New(cfg.History, cfg.InputDim()),
	}
}

// Name identifies the prefetcher.
func (p *NNPrefetcher) Name() string { return p.name }

// Latency is the modelled inference latency in cycles.
func (p *NNPrefetcher) Latency() int { return p.latency }

// StorageBytes is the predictor's storage cost.
func (p *NNPrefetcher) StorageBytes() int { return p.storage }

// OnAccess appends to the history and, once it is full, predicts deltas.
// It is BuildInput followed by a predictor query followed by Apply. The
// serving engine coalesces cross-session model queries behind the
// BitmapPredictor seam (its predictor blocks in Logits until the admission
// batcher answers); the exported halves exist for callers that need to
// defer the query themselves instead of blocking inside OnAccess.
func (p *NNPrefetcher) OnAccess(a sim.Access) []uint64 {
	x, ok := p.BuildInput(a)
	if !ok {
		return nil
	}
	return p.Apply(a, p.pred.Logits(x))
}

// BuildInput records the access in the history ring and, once the ring holds
// a full window, writes the segmented model input into the prefetcher's
// reusable buffer and returns it. The buffer is valid until the next
// BuildInput call, so callers that defer the predictor query must finish
// with it before feeding this prefetcher another access.
func (p *NNPrefetcher) BuildInput(a sim.Access) (*mat.Matrix, bool) {
	p.hist = append(p.hist, histEntry{block: a.Block, pc: a.PC})
	if len(p.hist) > p.cfg.History {
		p.hist = p.hist[1:]
	}
	if len(p.hist) < p.cfg.History {
		return nil, false
	}
	for t, h := range p.hist {
		row := p.x.Row(t)
		p.cfg.SegmentBlock(h.block, row[:p.cfg.Segments])
		row[p.cfg.Segments] = float64(h.pc&0xFFFF) / 65535.0
	}
	return p.x, true
}

// Apply converts predicted delta-bitmap logits for trigger access a into
// prefetch block addresses: positive bits, strongest first, up to the degree.
func (p *NNPrefetcher) Apply(a sim.Access, logits []float64) []uint64 {
	type cand struct {
		bit   int
		logit float64
	}
	cands := make([]cand, 0, 8)
	for bit, z := range logits {
		if z > p.threshold {
			cands = append(cands, cand{bit, z})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].logit > cands[j].logit })
	if len(cands) > p.degree {
		cands = cands[:p.degree]
	}
	out := make([]uint64, 0, len(cands))
	for _, c := range cands {
		nb := int64(a.Block) + p.cfg.BitToDelta(c.bit)
		if nb > 0 {
			out = append(out, uint64(nb))
		}
	}
	return out
}
