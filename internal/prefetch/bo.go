// Package prefetch implements the LLC prefetchers evaluated in the paper
// (Table IX): the rule-based Best-Offset (BO) and Irregular Stream Buffer
// (ISB) baselines, and a generic neural/table predictor wrapper used for
// DART, the TransFetch-class attention baseline, the Voyager-class LSTM
// baseline, and their zero-latency "ideal" variants.
package prefetch

import "dart/internal/sim"

// defaultOffsets is BO's candidate offset list: offsets with prime factors
// ≤ 5 up to 64, positive and negative, as in Michaud's design.
func defaultOffsets() []int64 {
	base := []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25,
		27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64}
	out := make([]int64, 0, 2*len(base))
	for _, b := range base {
		out = append(out, b, -b)
	}
	return out
}

// BestOffset is the BO prefetcher (HPCA'16): a recent-requests table records
// the addresses of recent accesses; a scoring phase round-robins through
// candidate offsets, crediting offset d whenever the current access X has
// X - d in the table (meaning a prefetch at offset d issued back then would
// be useful now). The best-scoring offset becomes the active prefetch offset.
type BestOffset struct {
	offsets []int64
	scores  []int
	testIdx int
	round   int
	active  int64
	degree  int
	latency int

	rr    []rrEntry // recent-requests ring
	rrPos int
	rrSet map[uint64]int // block -> refcount in ring
	buf   []uint64       // OnAccess return buffer, reused every call

	// Tunables (paper defaults).
	ScoreMax int
	RoundMax int
}

// NewBestOffset returns BO with the configuration of Table IX: ~4 KB of
// state and ≈60-cycle decision latency.
func NewBestOffset(degree int) *BestOffset {
	b := &BestOffset{
		offsets:  defaultOffsets(),
		active:   1,
		degree:   degree,
		latency:  60,
		rr:       make([]rrEntry, 256),
		rrSet:    make(map[uint64]int, 256),
		ScoreMax: 31,
		RoundMax: 100,
	}
	b.scores = make([]int, len(b.offsets))
	return b
}

// Name identifies the prefetcher.
func (b *BestOffset) Name() string { return "BO" }

// Latency is the decision latency in cycles.
func (b *BestOffset) Latency() int { return b.latency }

// StorageBytes reports the hardware budget of Table IX.
func (b *BestOffset) StorageBytes() int { return 4 << 10 }

// rrEntry is one recent-requests ring slot.
type rrEntry struct {
	block uint64
	valid bool
}

// insertRR records a block in the recent-requests ring.
func (b *BestOffset) insertRR(block uint64) {
	old := b.rr[b.rrPos]
	if old.valid {
		if c := b.rrSet[old.block]; c <= 1 {
			delete(b.rrSet, old.block)
		} else {
			b.rrSet[old.block] = c - 1
		}
	}
	b.rr[b.rrPos] = rrEntry{block: block, valid: true}
	b.rrSet[block]++
	b.rrPos = (b.rrPos + 1) % len(b.rr)
}

// OnAccess trains the offset scores and prefetches with the active offset.
func (b *BestOffset) OnAccess(a sim.Access) []uint64 {
	// Learning: test the next candidate offset against the RR table.
	d := b.offsets[b.testIdx]
	if prev := int64(a.Block) - d; prev > 0 {
		if _, ok := b.rrSet[uint64(prev)]; ok {
			b.scores[b.testIdx]++
			if b.scores[b.testIdx] >= b.ScoreMax {
				b.adopt(b.testIdx)
			}
		}
	}
	b.testIdx++
	if b.testIdx == len(b.offsets) {
		b.testIdx = 0
		b.round++
		if b.round >= b.RoundMax {
			best := 0
			for i, s := range b.scores {
				if s > b.scores[best] {
					best = i
				}
			}
			b.adopt(best)
		}
	}
	b.insertRR(a.Block)

	// Prefetch at the active offset (and multiples up to the degree). The
	// returned slice aliases a reused buffer: the simulator consumes it
	// inside the same Step, before the next OnAccess can overwrite it.
	out := b.buf[:0]
	for i := 1; i <= b.degree; i++ {
		nb := int64(a.Block) + b.active*int64(i)
		if nb > 0 {
			out = append(out, uint64(nb))
		}
	}
	b.buf = out
	return out
}

// adopt installs the winning offset and resets the learning state.
func (b *BestOffset) adopt(idx int) {
	b.active = b.offsets[idx]
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.round = 0
}

// ActiveOffset exposes the current offset (for tests).
func (b *BestOffset) ActiveOffset() int64 { return b.active }
