package prefetch

import "dart/internal/sim"

// ISB is the Irregular Stream Buffer (MICRO'13): it linearizes irregular but
// repeating access sequences by mapping physical addresses to a structural
// address space. Accesses that follow each other under the same program
// counter receive consecutive structural addresses; prefetching then walks
// the structural space and translates back to physical addresses.
type ISB struct {
	degree  int
	latency int
	maxMap  int

	lastByPC map[uint64]uint64 // training unit: PC -> last block
	ps       map[uint64]uint64 // physical -> structural
	sp       map[uint64]uint64 // structural -> physical
	nextBase uint64            // next free structural stream base
	buf      []uint64          // OnAccess return buffer, reused every call
}

// streamGap separates structural streams so they never collide.
const streamGap = 1 << 20

// NewISB returns ISB with the Table IX budget: 8 KB of mapping state and
// ≈30-cycle latency.
func NewISB(degree int) *ISB {
	return &ISB{
		degree:   degree,
		latency:  30,
		maxMap:   1 << 13, // entries before the maps stop growing
		lastByPC: make(map[uint64]uint64),
		ps:       make(map[uint64]uint64),
		sp:       make(map[uint64]uint64),
		nextBase: streamGap,
	}
}

// Name identifies the prefetcher.
func (i *ISB) Name() string { return "ISB" }

// Latency is the lookup latency in cycles.
func (i *ISB) Latency() int { return i.latency }

// StorageBytes reports the hardware budget of Table IX.
func (i *ISB) StorageBytes() int { return 8 << 10 }

// OnAccess trains the structural mapping and prefetches along the stream.
func (i *ISB) OnAccess(a sim.Access) []uint64 {
	if prev, ok := i.lastByPC[a.PC]; ok && prev != a.Block {
		i.link(prev, a.Block)
	}
	i.lastByPC[a.PC] = a.Block

	// The returned slice aliases a reused buffer: the simulator consumes it
	// inside the same Step, before the next OnAccess can overwrite it.
	out := i.buf[:0]
	if s, ok := i.ps[a.Block]; ok {
		for d := uint64(1); d <= uint64(i.degree); d++ {
			if p, ok := i.sp[s+d]; ok {
				out = append(out, p)
			} else {
				break
			}
		}
	}
	i.buf = out
	return out
}

// link gives `next` the structural address following `prev`.
func (i *ISB) link(prev, next uint64) {
	s, ok := i.ps[prev]
	if !ok {
		if len(i.ps) >= i.maxMap {
			return
		}
		s = i.nextBase
		i.nextBase += streamGap
		i.ps[prev] = s
		i.sp[s] = prev
	}
	// Keep the first structural assignment: re-mapping on every divergence
	// would tear down already-learned streams (the hardware ISB similarly
	// biases toward established mappings).
	if _, ok := i.ps[next]; ok {
		return
	}
	if len(i.ps) >= i.maxMap {
		return
	}
	if occ, ok := i.sp[s+1]; ok && occ != next {
		delete(i.ps, occ) // displaced former successor
	}
	i.ps[next] = s + 1
	i.sp[s+1] = next
}
