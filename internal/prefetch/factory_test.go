package prefetch

import (
	"testing"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/sim"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	want := map[string]string{
		"none":   "none",
		"bo":     "BO",
		"isb":    "ISB",
		"stride": "Stride",
	}
	for name, pfName := range want {
		pf, err := r.New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if pf.Name() != pfName {
			t.Fatalf("New(%q).Name() = %q, want %q", name, pf.Name(), pfName)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := NewRegistry().New("voyager-9000", 4); err == nil {
		t.Fatal("no error for unknown prefetcher")
	}
}

// constModel is a fixed-logit BitmapPredictor for factory tests.
type constModel struct{ out []float64 }

func (m constModel) Logits(*mat.Matrix) []float64 { return m.out }

// TestRegistryMakeOnline: instances share the predictor but keep private
// history state (fresh NNPrefetcher per New call).
func TestRegistryMakeOnline(t *testing.T) {
	r := NewRegistry()
	cfg := dataprep.Default()
	pred := constModel{out: make([]float64, cfg.OutputDim())}
	r.MakeOnline("online", pred, cfg, 17, 1<<12)

	a, err := r.New("online", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.New("online", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("MakeOnline factory returned a shared instance")
	}
	if a.Name() != "online" || a.Latency() != 17 || a.StorageBytes() != 1<<12 {
		t.Fatalf("instance misconfigured: %q lat %d sto %d", a.Name(), a.Latency(), a.StorageBytes())
	}
	// Warming a's history must not advance b's.
	acc := sim.Access{PC: 1, Block: 100}
	for i := 0; i < cfg.History; i++ {
		a.OnAccess(acc)
	}
	an, _ := a.(*NNPrefetcher)
	bn, _ := b.(*NNPrefetcher)
	if _, ok := an.BuildInput(acc); !ok {
		t.Fatal("a's history did not fill")
	}
	if _, ok := bn.BuildInput(acc); ok {
		t.Fatal("instances share history state")
	}
}

func TestRegistryInstancesIndependent(t *testing.T) {
	r := NewRegistry()
	a, _ := r.New("stride", 2)
	b, _ := r.New("stride", 2)
	if a == b {
		t.Fatal("factory returned a shared instance")
	}
	// Train a on a stride; b must stay cold.
	for i := 0; i < 10; i++ {
		a.OnAccess(sim.Access{PC: 1, Block: uint64(100 + 4*i)})
	}
	if reqs := b.OnAccess(sim.Access{PC: 1, Block: 500}); len(reqs) != 0 {
		t.Fatalf("instance b inherited state from a: %v", reqs)
	}
}

func TestRegistryRegisterOverride(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", func(degree int) sim.Prefetcher { return NewStride(degree) })
	pf, err := r.New("custom", 1)
	if err != nil || pf.Name() != "Stride" {
		t.Fatalf("custom registration failed: %v %v", pf, err)
	}
	found := false
	for _, n := range r.Names() {
		if n == "custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing custom", r.Names())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	base := NewRegistry()
	clone := base.Clone()
	clone.Register("private", func(degree int) sim.Prefetcher { return NewStride(degree) })
	if _, err := base.New("private", 1); err == nil {
		t.Fatal("clone registration leaked into the source registry")
	}
	if _, err := clone.New("private", 1); err != nil {
		t.Fatalf("clone lost its own registration: %v", err)
	}
	// Clone keeps the built-ins.
	if _, err := clone.New("bo", 2); err != nil {
		t.Fatalf("clone lost built-ins: %v", err)
	}
}

func TestDefaultDegreeApplied(t *testing.T) {
	pf, err := NewRegistry().New("bo", 0)
	if err != nil {
		t.Fatal(err)
	}
	bo := pf.(*BestOffset)
	if bo.degree != 4 {
		t.Fatalf("zero degree resolved to %d, want default 4", bo.degree)
	}
}

// TestTwoPhaseMatchesOnAccess: BuildInput + Logits + Apply (the serving
// engine's batched path) must reproduce OnAccess exactly.
func TestTwoPhaseMatchesOnAccess(t *testing.T) {
	cfg := dataprep.Default()
	mono := NewNNPrefetcher("m", allPositive{cfg.OutputDim()}, cfg, 0, 0, 4)
	split := NewNNPrefetcher("s", allPositive{cfg.OutputDim()}, cfg, 0, 0, 4)
	pred := allPositive{cfg.OutputDim()}

	for i := 0; i < 3*cfg.History; i++ {
		a := sim.Access{PC: uint64(i % 3), Block: uint64(2000 + 7*i)}
		want := mono.OnAccess(a)
		var got []uint64
		if x, ok := split.BuildInput(a); ok {
			got = split.Apply(a, pred.Logits(x))
		}
		if len(want) != len(got) {
			t.Fatalf("access %d: %v != %v", i, got, want)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("access %d: %v != %v", i, got, want)
			}
		}
	}
}
