package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"dart/internal/dataprep"
	"dart/internal/sim"
)

// Factory constructs a fresh, independently-stateful prefetcher instance.
// Every session in the serving engine gets its own instance, so factories
// must not share mutable state between the prefetchers they return.
type Factory func(degree int) sim.Prefetcher

// Registry maps prefetcher names to factories. The zero value is unusable;
// call NewRegistry, which seeds the built-in rule-based prefetchers. The
// serving engine extends a registry with model-backed entries ("dart",
// student networks) once those models exist.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns a registry holding the built-in prefetchers:
// "none", "bo", "isb", and "stride".
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	r.Register("none", func(int) sim.Prefetcher { return sim.NoPrefetcher{} })
	r.Register("bo", func(degree int) sim.Prefetcher { return NewBestOffset(degree) })
	r.Register("isb", func(degree int) sim.Prefetcher { return NewISB(degree) })
	r.Register("stride", func(degree int) sim.Prefetcher { return NewStride(degree) })
	return r
}

// Register adds (or replaces) a named factory.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	r.factories[name] = f
	r.mu.Unlock()
}

// Clone returns an independent registry with the same factories. Callers
// that need to add private entries (the serving engine registers a "dart"
// factory bound to its own model and batcher) clone first so the caller's
// registry is never mutated.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	out := &Registry{factories: make(map[string]Factory, len(r.factories))}
	for name, f := range r.factories {
		out.factories[name] = f
	}
	r.mu.RUnlock()
	return out
}

// MakeOnline registers name as a factory for model-backed prefetchers that
// share one live BitmapPredictor — typically the serving engine's admission
// batcher, or an online model store that hot-swaps versions underneath.
// Each instance is a private NNPrefetcher (its own history ring and degree),
// so per-session state stays isolated while inference is routed through the
// shared predictor; pred must therefore be safe for concurrent Logits calls.
func (r *Registry) MakeOnline(name string, pred BitmapPredictor, cfg dataprep.Config, latency, storageBytes int) {
	r.Register(name, func(degree int) sim.Prefetcher {
		return NewNNPrefetcher(name, pred, cfg, latency, storageBytes, degree)
	})
}

// MakeStudent registers name as the distilled-student model class: the same
// shared-predictor wiring as MakeOnline, but the returned prefetchers carry
// the student's (smaller) latency and storage model, so simulator results
// reflect the compact predictor the paper's deployment story actually runs.
// pred is typically the serving engine's student admission batcher, which
// hot-swaps published student versions (with teacher fallback) underneath.
func (r *Registry) MakeStudent(name string, pred BitmapPredictor, cfg dataprep.Config, latency, storageBytes int) {
	r.MakeOnline(name, pred, cfg, latency, storageBytes)
}

// MakeDart registers name as the tabularized (dart) model class: shared-
// predictor wiring over the serving engine's dart admission batcher, which
// hot-swaps published tabular.Hierarchy versions (with student fallback
// while no table exists) underneath, with the table's analytic latency and
// storage model — the serving cost the paper's deployment argument rests on.
func (r *Registry) MakeDart(name string, pred BitmapPredictor, cfg dataprep.Config, latency, storageBytes int) {
	r.MakeOnline(name, pred, cfg, latency, storageBytes)
}

// New instantiates a fresh prefetcher by name.
func (r *Registry) New(name string, degree int) (sim.Prefetcher, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (have %v)", name, r.Names())
	}
	if degree <= 0 {
		degree = 4
	}
	return f(degree), nil
}

// Names lists the registered prefetchers, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// defaultRegistry backs the package-level convenience functions.
var defaultRegistry = NewRegistry()

// Register adds a factory to the package-level registry.
func Register(name string, f Factory) { defaultRegistry.Register(name, f) }

// New instantiates from the package-level registry.
func New(name string, degree int) (sim.Prefetcher, error) {
	return defaultRegistry.New(name, degree)
}

// Names lists the package-level registry.
func Names() []string { return defaultRegistry.Names() }
