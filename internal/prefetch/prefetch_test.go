package prefetch

import (
	"testing"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/sim"
	"dart/internal/trace"
)

func strideAccesses(n int, stride int64) []sim.Access {
	out := make([]sim.Access, n)
	b := int64(1000)
	for i := range out {
		out[i] = sim.Access{InstrID: uint64(i * 20), PC: 0x400000, Block: uint64(b)}
		b += stride
	}
	return out
}

func TestBOLearnsStride(t *testing.T) {
	bo := NewBestOffset(2)
	for _, a := range strideAccesses(3000, 3) {
		bo.OnAccess(a)
	}
	if got := bo.ActiveOffset(); got != 3 {
		t.Fatalf("BO adopted offset %d, want 3", got)
	}
}

func TestBOLearnsNegativeStride(t *testing.T) {
	bo := NewBestOffset(1)
	accs := make([]sim.Access, 3000)
	b := int64(1 << 20)
	for i := range accs {
		accs[i] = sim.Access{Block: uint64(b)}
		b -= 2
	}
	for _, a := range accs {
		bo.OnAccess(a)
	}
	if got := bo.ActiveOffset(); got != -2 {
		t.Fatalf("BO adopted offset %d, want -2", got)
	}
}

func TestBOPrefetchesActiveOffset(t *testing.T) {
	bo := NewBestOffset(2)
	for _, a := range strideAccesses(3000, 4) {
		bo.OnAccess(a)
	}
	reqs := bo.OnAccess(sim.Access{Block: 5000})
	if len(reqs) != 2 || reqs[0] != 5004 || reqs[1] != 5008 {
		t.Fatalf("BO prefetches %v, want [5004 5008]", reqs)
	}
}

func TestBOInterfaceValues(t *testing.T) {
	bo := NewBestOffset(1)
	if bo.Name() != "BO" || bo.Latency() != 60 || bo.StorageBytes() != 4<<10 {
		t.Fatalf("BO metadata wrong: %s %d %d", bo.Name(), bo.Latency(), bo.StorageBytes())
	}
}

func TestISBLearnsTemporalStream(t *testing.T) {
	isb := NewISB(2)
	seq := []uint64{100, 7, 9123, 42, 100, 7, 9123, 42}
	var last []uint64
	for i, b := range seq {
		last = isb.OnAccess(sim.Access{InstrID: uint64(i), PC: 0x400000, Block: b})
	}
	_ = last
	// After two traversals, accessing 100 should prefetch 7 (and 9123).
	reqs := isb.OnAccess(sim.Access{PC: 0x400000, Block: 100})
	if len(reqs) == 0 || reqs[0] != 7 {
		t.Fatalf("ISB prefetches %v, want [7 9123]", reqs)
	}
	if len(reqs) > 1 && reqs[1] != 9123 {
		t.Fatalf("ISB second prefetch %v", reqs)
	}
}

func TestISBIsolatesPCs(t *testing.T) {
	isb := NewISB(1)
	// PC A: 1 -> 2; PC B: 50 -> 60, interleaved.
	seq := []struct{ pc, b uint64 }{
		{1, 1}, {2, 50}, {1, 2}, {2, 60},
		{1, 1}, {2, 50},
	}
	var reqs []uint64
	for i, s := range seq {
		reqs = isb.OnAccess(sim.Access{InstrID: uint64(i), PC: s.pc, Block: s.b})
	}
	// Last access: PC 2 at block 50 should prefetch 60, not 2.
	if len(reqs) != 1 || reqs[0] != 60 {
		t.Fatalf("ISB cross-PC contamination: %v", reqs)
	}
}

func TestISBMapBounded(t *testing.T) {
	isb := NewISB(1)
	for i := 0; i < 100000; i++ {
		isb.OnAccess(sim.Access{PC: uint64(i % 7), Block: uint64(i * 977)})
	}
	if len(isb.ps) > isb.maxMap+1 {
		t.Fatalf("ISB mapping grew to %d entries", len(isb.ps))
	}
}

// perfectNextDelta predicts delta +1 with certainty.
type perfectNextDelta struct{ dout int }

func (p perfectNextDelta) Logits(x *mat.Matrix) []float64 {
	out := make([]float64, p.dout)
	for i := range out {
		out[i] = -5
	}
	cfg := dataprep.Default()
	out[cfg.DeltaToBit(1)] = 5
	return out
}

func TestNNPrefetcherEmitsDeltaPrefetch(t *testing.T) {
	cfg := dataprep.Default()
	p := NewNNPrefetcher("test", perfectNextDelta{cfg.OutputDim()}, cfg, 10, 1000, 4)
	var reqs []uint64
	for i := 0; i < cfg.History+1; i++ {
		reqs = p.OnAccess(sim.Access{PC: 1, Block: uint64(100 + i)})
	}
	if len(reqs) != 1 || reqs[0] != uint64(100+cfg.History)+1 {
		t.Fatalf("NN prefetcher reqs %v", reqs)
	}
}

func TestNNPrefetcherWarmup(t *testing.T) {
	cfg := dataprep.Default()
	p := NewNNPrefetcher("test", perfectNextDelta{cfg.OutputDim()}, cfg, 0, 0, 4)
	for i := 0; i < cfg.History-1; i++ {
		if reqs := p.OnAccess(sim.Access{Block: uint64(i)}); reqs != nil {
			t.Fatal("prefetched before history filled")
		}
	}
}

func TestNNPrefetcherDegreeCap(t *testing.T) {
	cfg := dataprep.Default()
	all := allPositive{cfg.OutputDim()}
	p := NewNNPrefetcher("test", all, cfg, 0, 0, 3)
	var reqs []uint64
	for i := 0; i < cfg.History; i++ {
		reqs = p.OnAccess(sim.Access{Block: uint64(1000 + i)})
	}
	if len(reqs) != 3 {
		t.Fatalf("degree cap broken: %d prefetches", len(reqs))
	}
}

type allPositive struct{ dout int }

func (p allPositive) Logits(x *mat.Matrix) []float64 {
	out := make([]float64, p.dout)
	for i := range out {
		out[i] = float64(i) + 1
	}
	return out
}

func TestBORecentRequestsBounded(t *testing.T) {
	bo := NewBestOffset(1)
	for i := 0; i < 100000; i++ {
		bo.OnAccess(sim.Access{Block: uint64(i * 31)})
	}
	if len(bo.rrSet) > len(bo.rr) {
		t.Fatalf("RR set grew to %d entries for a %d-entry ring", len(bo.rrSet), len(bo.rr))
	}
}

func TestBOScoreResetOnAdoption(t *testing.T) {
	bo := NewBestOffset(1)
	for _, a := range strideAccesses(3000, 5) {
		bo.OnAccess(a)
	}
	if bo.ActiveOffset() != 5 {
		t.Fatalf("offset %d, want 5", bo.ActiveOffset())
	}
	for _, s := range bo.scores {
		if s >= bo.ScoreMax {
			t.Fatal("scores not reset after adoption")
		}
	}
}

func TestStrideLearnsPerPCStride(t *testing.T) {
	s := NewStride(2)
	var reqs []uint64
	// PC 1 strides by +3; PC 2 strides by -5; interleaved.
	b1, b2 := int64(1000), int64(1<<20)
	for i := 0; i < 10; i++ {
		// OnAccess's return aliases a buffer reused by the next call, so
		// copy before interleaving PC 2's accesses.
		reqs = append(reqs[:0], s.OnAccess(sim.Access{PC: 1, Block: uint64(b1)})...)
		b1 += 3
		s.OnAccess(sim.Access{PC: 2, Block: uint64(b2)})
		b2 -= 5
	}
	// Last PC-1 access at block b1-3; expect prefetches at +3 and +6.
	if len(reqs) != 2 || reqs[0] != uint64(b1-3+3) || reqs[1] != uint64(b1-3+6) {
		t.Fatalf("stride prefetches %v", reqs)
	}
}

func TestStrideNoPrefetchBeforeConfirmation(t *testing.T) {
	s := NewStride(1)
	if r := s.OnAccess(sim.Access{PC: 1, Block: 100}); r != nil {
		t.Fatal("prefetched on first access")
	}
	if r := s.OnAccess(sim.Access{PC: 1, Block: 104}); len(r) != 0 {
		t.Fatal("prefetched on unconfirmed stride")
	}
}

func TestStrideTableBounded(t *testing.T) {
	s := NewStride(1)
	for i := 0; i < 10000; i++ {
		s.OnAccess(sim.Access{PC: uint64(i), Block: uint64(i)})
	}
	if len(s.table) > s.maxPCs {
		t.Fatalf("stride table grew to %d", len(s.table))
	}
}

func TestStrideImprovesIPCOnStridedTrace(t *testing.T) {
	spec := trace.AppSpec{
		Name: "strided", Pages: 2000, Streams: 4,
		Strides: []int64{3}, Seed: 13,
	}
	recs := trace.Generate(spec, 20000)
	cfg := sim.DefaultConfig()
	base := sim.Run(recs, sim.NoPrefetcher{}, cfg)
	st := sim.Run(recs, NewStride(4), cfg)
	if imp := sim.IPCImprovement(base, st); imp <= 0 {
		t.Fatalf("stride prefetcher gave no IPC improvement: %v", imp)
	}
}

func TestBOImprovesIPCOnStridedTrace(t *testing.T) {
	spec := trace.AppSpec{
		Name: "strided", Pages: 2000, Streams: 4,
		Strides: []int64{2}, Seed: 11,
	}
	recs := trace.Generate(spec, 20000)
	cfg := sim.DefaultConfig()
	base := sim.Run(recs, sim.NoPrefetcher{}, cfg)
	bo := sim.Run(recs, NewBestOffset(4), cfg)
	if imp := sim.IPCImprovement(base, bo); imp <= 0 {
		t.Fatalf("BO gave no IPC improvement on strided trace: %v", imp)
	}
}

func TestISBImprovesIPCOnChaseTrace(t *testing.T) {
	// A repeating pointer chain larger than the LLC: ISB learns the chain on
	// the first traversal and prefetches it on later ones.
	spec := trace.AppSpec{
		Name: "chase", Pages: 100, Streams: 1,
		ChaseFrac: 0.95, Strides: []int64{1}, Seed: 12,
	}
	recs := trace.Generate(spec, 30000)
	cfg := sim.DefaultConfig()
	cfg.LLCBlocks = 1024 // shrink the LLC below the chain footprint
	cfg.LLCWays = 16
	base := sim.Run(recs, sim.NoPrefetcher{}, cfg)
	isb := sim.Run(recs, NewISB(4), cfg)
	if imp := sim.IPCImprovement(base, isb); imp <= 0 {
		t.Fatalf("ISB gave no IPC improvement on pointer-chase trace: %v", imp)
	}
}
