package serve

import (
	"testing"
	"time"

	"dart/internal/online"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

// stalenessTrace is the adversarial phase-shift stream for the staleness
// test: three deterministic (zero-jitter) stride regimes, all inside the
// learner's delta range, switching every phaseLen accesses.
const stalePhaseLen = 1500

func stalenessTrace(n int) []trace.Record {
	return trace.PhaseShiftSpec{
		Pages: 256, PhaseLen: stalePhaseLen, Regimes: 3,
		StridePool: []int64{2, 5, 7}, Streams: 1, Jitter: -1, Seed: 42,
	}.Generate(n)
}

// trainOn pumps recs through a throwaway online session (feeding the
// learner's reservoir through the session tap), waits for the training loop
// to take at least minSteps optimizer steps, and publishes the result.
func trainOn(t *testing.T, e *Engine, l *online.Learner, recs []trace.Record, minSteps uint64) {
	t.Helper()
	if err := e.Open("warmup", "online", 4); err != nil {
		t.Fatal(err)
	}
	// The duty-cycled trainer only steps while fresh examples arrive, so
	// loop the trace through the tap until the step budget is reached.
	deadline := time.Now().Add(120 * time.Second)
	for l.Stats().Steps < minSteps {
		if time.Now().After(deadline) {
			t.Fatalf("learner took only %d optimizer steps, want %d", l.Stats().Steps, minSteps)
		}
		for _, rec := range recs {
			if _, err := e.Access("warmup", rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Close("warmup"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Swap(); err != nil {
		t.Fatal(err)
	}
}

func measureOnline(t *testing.T, e *Engine, recs []trace.Record) sim.Result {
	t.Helper()
	if err := e.Open("measure", "online", 4); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		resp, err := e.Access("measure", rec)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != uint64(i+1) {
			t.Fatalf("measure session: access %d served as seq %d", i+1, resp.Seq)
		}
	}
	res, err := e.Close("measure")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPhaseShiftPunishesFrozenModel is the staleness acceptance test the
// phase-shifting generator exists for: two learners train for the same
// number of optimizer steps, but the frozen one only ever sees the first
// regime before its serving version is pinned (learner stopped), while the
// online one trains across the whole stream. Replaying the full three-regime
// stream through the "online" class of each engine, the frozen model —
// specialised to the stride regime that holds for only a third of the
// stream — must show measurably worse prefetch coverage than the model the
// online class keeps current.
func TestPhaseShiftPunishesFrozenModel(t *testing.T) {
	const n, minSteps = 3 * stalePhaseLen, 2500
	recs := stalenessTrace(n)
	cfg := smallSimCfg()

	none, err := prefetch.NewRegistry().New("none", 4)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Run(recs, none, cfg)
	if base.DemandMisses == 0 {
		t.Fatal("baseline has no misses; coverage is meaningless")
	}

	run := func(train []trace.Record, freeze bool) sim.Result {
		l := testLearner(t, t.TempDir())
		l.Start()
		e := NewEngine(Config{SimCfg: cfg, Online: l})
		trainOn(t, e, l, train, minSteps)
		if freeze {
			l.Stop() // pin the serving version: no more training, no more swaps
		} else {
			defer l.Stop()
		}
		return measureOnline(t, e, recs)
	}

	// Frozen: trained on regime 0 only, then pinned.
	frozen := run(recs[:stalePhaseLen], true)
	// Online: trained across every regime, kept current.
	current := run(recs, false)

	covFrozen := sim.Coverage(base, frozen)
	covCurrent := sim.Coverage(base, current)
	t.Logf("coverage: frozen %.3f (acc %.3f), online %.3f (acc %.3f)",
		covFrozen, frozen.Accuracy(), covCurrent, current.Accuracy())
	if covCurrent < covFrozen+0.05 {
		t.Fatalf("phase shifts did not punish the frozen model: frozen coverage %.3f, online %.3f",
			covFrozen, covCurrent)
	}
}
