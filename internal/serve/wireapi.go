package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"

	"dart/internal/trace"
)

// This file is the exported slice of the DARTWIRE1 codec: just enough surface
// for a protocol front-end — the router tier in internal/route — to terminate
// client connections in either encoding and re-encode replies, while the
// codec internals (frame pooling, the session hot path) stay private. The
// byte-level specification is docs/PROTOCOL.md; every helper here is a thin
// veneer over the same code paths dart-serve itself runs.

// WireMagic is the DARTWIRE1 negotiation banner: a binary client opens by
// sending these bytes and the server echoes them to accept. Any other first
// byte on a fresh connection selects the line-delimited JSON protocol.
const WireMagic = wireMagic

// Exported frame kinds (see docs/PROTOCOL.md). Replies set the high bit of
// the request kind; FrameError answers any request whose frame decoded but
// whose execution failed.
const (
	FrameControl      byte = frameControl
	FrameAccess       byte = frameAccess
	FrameBatch        byte = frameBatch
	FrameError        byte = frameError
	FrameControlReply byte = frameControlReply
	FrameAccessReply  byte = frameAccessReply
	FrameBatchReply   byte = frameBatchReply
)

// FrameReader reads and CRC-checks DARTWIRE1 frames off a buffered stream.
// The returned payload aliases an internal buffer valid until the next call.
// io.EOF comes back bare only at a clean frame boundary.
type FrameReader struct {
	r wireReader
}

// NewFrameReader wraps br (positioned after the handshake banner).
func NewFrameReader(br *bufio.Reader) *FrameReader {
	return &FrameReader{r: wireReader{br: br}}
}

// Next reads one frame, returning its kind and payload.
func (f *FrameReader) Next() (byte, []byte, error) {
	return f.r.next()
}

// DecodeAccessRequest parses an access or batch request payload (the
// FrameAccess / FrameBatch hot verbs) into its tag, session id, and records,
// appending to recs. The session id aliases the payload — copy it before the
// next frame read.
func DecodeAccessRequest(kind byte, p []byte, recs []trace.Record) (tag uint64, sid []byte, out []trace.Record, err error) {
	if kind != frameAccess && kind != frameBatch {
		return 0, nil, recs, fmt.Errorf("serve: frame kind 0x%02x is not an access request", kind)
	}
	if tag, p, err = readUvarint(p); err != nil {
		return 0, nil, recs, err
	}
	n, p, err := readUvarint(p)
	if err != nil {
		return 0, nil, recs, err
	}
	if n > uint64(len(p)) {
		return 0, nil, recs, fmt.Errorf("serve: wire session id length %d exceeds payload", n)
	}
	sid, p = p[:n], p[n:]
	count := uint64(1)
	if kind == frameBatch {
		if count, p, err = readUvarint(p); err != nil {
			return 0, nil, recs, err
		}
		if count > uint64(len(p)) {
			return 0, nil, recs, fmt.Errorf("serve: wire batch count %d exceeds payload", count)
		}
	}
	out, err = parseWireRecords(p, count, recs)
	return tag, sid, out, err
}

// AppendAccessRequest appends one complete access (single record) or batch
// request frame for sid — the client-side hot-verb encoder, exported for
// front-ends that build frames from re-validated records.
func AppendAccessRequest(buf []byte, tag uint64, sid string, recs []trace.Record) []byte {
	kind := byte(frameBatch)
	if len(recs) == 1 {
		kind = frameAccess
	}
	return appendWireRequest(buf, kind, tag, sid, recs)
}

// AppendResultsReply appends a complete access/batch reply frame carrying
// results (an access reply when batch is false and len(results) == 1). The
// first result's Seq seeds the frame's sequence field; results must be
// seq-contiguous, exactly as a backend produced them.
func AppendResultsReply(buf []byte, batch bool, tag uint64, results []AccessResult) []byte {
	start := len(buf)
	kind := byte(frameAccessReply)
	if batch {
		kind = frameBatchReply
	}
	buf = beginFrame(buf, kind)
	buf = binary.AppendUvarint(buf, tag)
	var seq uint64
	if len(results) > 0 {
		seq = results[0].Seq
	}
	buf = binary.AppendUvarint(buf, seq)
	if batch {
		buf = binary.AppendUvarint(buf, uint64(len(results)))
	}
	for i := range results {
		var fl byte
		if results[i].Hit {
			fl |= wireHit
		}
		if results[i].Late {
			fl |= wireLate
		}
		buf = append(buf, fl)
		buf = binary.AppendUvarint(buf, results[i].Version)
		buf = binary.AppendUvarint(buf, uint64(len(results[i].Prefetches)))
		for _, pb := range results[i].Prefetches {
			buf = binary.AppendUvarint(buf, pb)
		}
	}
	return finishFrame(buf, start)
}

// AppendControlReply appends a complete control-reply frame carrying the
// JSON-encoded reply b (as produced by json.Marshal of a Reply).
func AppendControlReply(buf []byte, b []byte) []byte {
	start := len(buf)
	buf = beginFrame(buf, frameControlReply)
	buf = append(buf, b...)
	return finishFrame(buf, start)
}

// AppendErrorReply appends a complete error-reply frame: the request tag (0
// when the failure is connection-level and the front-end will hang up after
// sending it) followed by the error text.
func AppendErrorReply(buf []byte, tag uint64, err error) []byte {
	return appendErrorFrame(buf, tag, err)
}
