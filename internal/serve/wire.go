package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"dart/internal/trace"
)

// This file is the DARTWIRE1 binary protocol codec: length-prefixed,
// CRC-guarded frames carrying the hot verbs (access, batch) as varint-packed
// records and everything else as JSON payloads inside control frames. The
// full byte-level specification lives in docs/PROTOCOL.md; the design reuses
// the magic+length+CRC idiom of the nn checkpoint frames (nn.WriteFrame).
//
// The steady-state path allocates nothing per access: a pooled wireJob rides
// the whole pipeline (connection reader → session actor → connection
// writer), the request records are decoded into the job's reused slice, and
// the reply frame is encoded in place into the job's reused buffer.

// wireMagic is the negotiation banner: a client opens a binary connection by
// sending these 9 bytes ("DARTWIRE" + the protocol version digit) before the
// first frame; the server echoes them to accept. Any other first byte on a
// fresh connection selects the line-delimited JSON protocol.
const wireMagic = "DARTWIRE1"

// maxWirePayload caps the declared payload length of a single frame so a
// corrupt or hostile header cannot trigger a huge allocation before the CRC
// is ever checked (same defence as the checkpoint reader's section cap).
const maxWirePayload = 1 << 24

// wireHeaderLen is the fixed frame header: kind(1) + payload length (u32,
// big-endian) + CRC32-IEEE of the payload (u32, big-endian).
const wireHeaderLen = 9

// Frame kinds. Replies set the high bit of the request kind; the error
// reply 0x7f answers any request whose frame decoded but whose execution
// failed (framing-level corruption instead kills the connection).
const (
	frameControl      = 0x01 // JSON Request payload: any non-hot verb
	frameAccess       = 0x02 // one varint-packed access record
	frameBatch        = 0x03 // count-prefixed varint-packed access records
	frameError        = 0x7f // reply: tag uvarint + error message bytes
	frameControlReply = 0x81 // JSON Reply payload
	frameAccessReply  = 0x82 // tag, seq, one access result
	frameBatchReply   = 0x83 // tag, first seq, count, access results
)

// Access-record and result flag bits.
const (
	wireIsLoad = 1 << 0 // request record: the access is a load
	wireHit    = 1 << 0 // result: demand hit
	wireLate   = 1 << 1 // result: covered by an in-flight prefetch
)

var errBadVarint = errors.New("serve: bad varint in wire frame")

// readUvarint decodes one uvarint off the front of p. Unlike binary.Uvarint
// it makes truncated or overlong encodings a loud error instead of a silent
// zero — garbage in a frame must fail the frame.
func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errBadVarint
	}
	return v, p[n:], nil
}

// beginFrame appends a frame header for kind with the length and CRC fields
// still zero; finishFrame patches them once the payload has been appended.
func beginFrame(buf []byte, kind byte) []byte {
	var hdr [wireHeaderLen]byte
	hdr[0] = kind
	return append(buf, hdr[:]...)
}

// finishFrame patches the payload length and CRC into the header begun at
// offset start; everything appended after the header is the payload.
func finishFrame(buf []byte, start int) []byte {
	payload := buf[start+wireHeaderLen:]
	binary.BigEndian.PutUint32(buf[start+1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+5:], crc32.ChecksumIEEE(payload))
	return buf
}

// wireReader reads frames from a connection, reusing one payload buffer
// across reads (the returned payload is valid until the next call).
type wireReader struct {
	br  *bufio.Reader
	buf []byte
}

// next reads one frame and verifies its CRC. io.EOF is returned bare only at
// a clean frame boundary; every other failure wraps what went wrong.
func (r *wireReader) next() (byte, []byte, error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("serve: truncated wire frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxWirePayload {
		return 0, nil, fmt.Errorf("serve: wire frame declares %d-byte payload (max %d)", n, maxWirePayload)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	p := r.buf[:n]
	if _, err := io.ReadFull(r.br, p); err != nil {
		return 0, nil, fmt.Errorf("serve: truncated wire frame: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(p), binary.BigEndian.Uint32(hdr[5:9]); got != want {
		return 0, nil, fmt.Errorf("serve: wire frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return hdr[0], p, nil
}

// wireJob is one in-flight binary hot-verb frame. The connection reader
// decodes the request into recs, the session actor steps the records and
// builds the complete reply frame in buf, and the connection writer writes
// buf, signals wg, and returns the job to the pool — one pooled object rides
// the whole pipeline, so steady-state serving allocates nothing per frame.
type wireJob struct {
	out  chan<- *wireJob // the connection's writer channel
	wg   *sync.WaitGroup // the connection's in-flight counter
	tag  uint64          // request tag, echoed in the reply
	kind byte            // reply frame kind (frameAccessReply or frameBatchReply)
	recs []trace.Record  // decoded request records, reused across frames
	buf  []byte          // reply frame, encoded in place, reused across frames
}

var wireJobPool = sync.Pool{New: func() any { return new(wireJob) }}

// appendWireRequest appends one complete access (single record, kind
// frameAccess) or batch (count-prefixed, kind frameBatch) request frame.
// Record instruction ids are delta-encoded against the previous record in
// the frame (the first is absolute); PC and address are absolute uvarints.
func appendWireRequest(buf []byte, kind byte, tag uint64, sid string, recs []trace.Record) []byte {
	start := len(buf)
	buf = beginFrame(buf, kind)
	buf = binary.AppendUvarint(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(len(sid)))
	buf = append(buf, sid...)
	if kind == frameBatch {
		buf = binary.AppendUvarint(buf, uint64(len(recs)))
	}
	var prev uint64
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, r.InstrID-prev)
		prev = r.InstrID
		buf = binary.AppendUvarint(buf, r.PC)
		buf = binary.AppendUvarint(buf, r.Addr)
		var fl byte
		if r.IsLoad {
			fl = wireIsLoad
		}
		buf = append(buf, fl)
	}
	return finishFrame(buf, start)
}

// decodeJob parses an access or batch request payload into j, returning the
// session id — which aliases p and is only valid until the connection's next
// frame read. Instruction-id deltas accumulate with uint64 wraparound, so
// non-monotone ids survive a round trip exactly (just less compactly).
func decodeJob(kind byte, p []byte, j *wireJob) ([]byte, error) {
	j.recs = j.recs[:0]
	tag, p, err := readUvarint(p)
	if err != nil {
		return nil, err
	}
	j.tag = tag
	n, p, err := readUvarint(p)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("serve: wire session id length %d exceeds payload", n)
	}
	sid := p[:n]
	p = p[n:]
	count := uint64(1)
	j.kind = frameAccessReply
	if kind == frameBatch {
		j.kind = frameBatchReply
		count, p, err = readUvarint(p)
		if err != nil {
			return nil, err
		}
		// Each record is at least 4 bytes, so a count beyond the payload
		// length is corruption — reject before sizing the record slice.
		if count > uint64(len(p)) {
			return nil, fmt.Errorf("serve: wire batch count %d exceeds payload", count)
		}
	}
	if j.recs, err = parseWireRecords(p, count, j.recs); err != nil {
		return nil, err
	}
	return sid, nil
}

// parseWireRecords decodes count varint-packed access records off p into
// recs, requiring the payload to end exactly at the last record. Instruction-
// id deltas accumulate with uint64 wraparound (see decodeJob).
func parseWireRecords(p []byte, count uint64, recs []trace.Record) ([]trace.Record, error) {
	var prev uint64
	var err error
	for i := uint64(0); i < count; i++ {
		var d, pc, addr uint64
		if d, p, err = readUvarint(p); err != nil {
			return recs, err
		}
		if pc, p, err = readUvarint(p); err != nil {
			return recs, err
		}
		if addr, p, err = readUvarint(p); err != nil {
			return recs, err
		}
		if len(p) == 0 {
			return recs, fmt.Errorf("serve: wire record %d missing flags byte", i)
		}
		fl := p[0]
		p = p[1:]
		prev += d
		recs = append(recs, trace.Record{
			InstrID: prev, PC: pc, Addr: addr, IsLoad: fl&wireIsLoad != 0,
		})
	}
	if len(p) != 0 {
		return recs, fmt.Errorf("serve: %d trailing bytes in wire frame", len(p))
	}
	return recs, nil
}

// runJob steps every record of one binary frame on the actor goroutine and
// encodes the reply frame in place. The per-record work goes through
// session.step — the same path JSON and direct accesses take — which is what
// keeps wire results bit-identical to the other serving modes.
func (s *session) runJob(j *wireJob) {
	j.buf = beginFrame(j.buf[:0], j.kind)
	j.buf = binary.AppendUvarint(j.buf, j.tag)
	j.buf = binary.AppendUvarint(j.buf, s.seq+1)
	if j.kind == frameBatchReply {
		j.buf = binary.AppendUvarint(j.buf, uint64(len(j.recs)))
	}
	for i := range j.recs {
		st := s.step(j.recs[i])
		var fl byte
		if st.Hit {
			fl |= wireHit
		}
		if st.Late {
			fl |= wireLate
		}
		j.buf = append(j.buf, fl)
		var ver uint64
		if s.ver != nil {
			ver = *s.ver
		}
		j.buf = binary.AppendUvarint(j.buf, ver)
		j.buf = binary.AppendUvarint(j.buf, uint64(len(st.Prefetches)))
		for _, pb := range st.Prefetches {
			j.buf = binary.AppendUvarint(j.buf, pb)
		}
	}
	j.buf = finishFrame(j.buf, 0)
	j.out <- j
}

// appendErrorFrame appends a complete error-reply frame: the request tag
// (0 when unattributable) followed by the error text. With the interned
// sentinel errors this stays allocation-free on the unknown-session path.
func appendErrorFrame(buf []byte, tag uint64, err error) []byte {
	start := len(buf)
	buf = beginFrame(buf, frameError)
	buf = binary.AppendUvarint(buf, tag)
	buf = append(buf, err.Error()...)
	return finishFrame(buf, start)
}
