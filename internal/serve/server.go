package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"dart/internal/online"
	"dart/internal/sim"
)

// checkClass validates a model-class selector against the learner's tiers.
func checkClass(l *online.Learner, class string) error {
	switch class {
	case "", "teacher":
		return nil
	case online.StudentClass:
		if !l.HasStudent() {
			return fmt.Errorf("serve: no distilled-student tier configured")
		}
		return nil
	case online.DartClass:
		if !l.HasDart() {
			return fmt.Errorf("serve: no dart (tabularized) tier configured")
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown model class %q (have \"\", %q, and %q)",
			class, online.StudentClass, online.DartClass)
	}
}

// swapClass routes the swap verb to the selected model class and reports the
// newly published version. For the dart class a swap is a forced
// re-tabularization of the published student.
func swapClass(l *online.Learner, class string) (uint64, error) {
	if err := checkClass(l, class); err != nil {
		return 0, err
	}
	switch class {
	case online.StudentClass:
		m, err := l.SwapStudent()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	case online.DartClass:
		t, err := l.SwapDart()
		if err != nil {
			return 0, err
		}
		return t.Version, nil
	default:
		m, err := l.Swap()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	}
}

// rollbackClass routes the rollback verb to the selected model class and
// reports the version serving reverted to.
func rollbackClass(l *online.Learner, class string) (uint64, error) {
	if err := checkClass(l, class); err != nil {
		return 0, err
	}
	switch class {
	case online.StudentClass:
		m, err := l.RollbackStudent()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	case online.DartClass:
		t, err := l.RollbackDart()
		if err != nil {
			return 0, err
		}
		return t.Version, nil
	default:
		m, err := l.Rollback()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	}
}

// Server speaks both wire protocols over any net.Listener (TCP or unix
// socket), negotiating per connection: a client that opens with the
// DARTWIRE1 magic gets the binary framed protocol, any other first byte
// (in practice '{') selects the line-delimited JSON protocol. See
// docs/PROTOCOL.md for both specifications.
//
// Clients may pipeline: access replies are written as each access completes,
// tagged (session+seq on JSON, request tag on binary), so a client
// interleaving several sessions on one connection can match them up.
// Backpressure is end-to-end — a full session inbox blocks the connection's
// reader, which stops draining the socket, which throttles the sender.
type Server struct {
	engine *Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewServer wraps an engine.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, conns: make(map[net.Conn]struct{})}
}

// Engine exposes the underlying engine (replay drives it directly).
func (s *Server) Engine() *Engine { return s.engine }

// Serve accepts connections until Shutdown. It returns nil after a graceful
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// Registration and the shutdown check share the mutex: a conn
		// accepted as Shutdown begins is either registered before Shutdown
		// closes the conn map (and gets closed+waited on like the rest) or
		// observes closed and is dropped here — it can never slip past
		// wg.Wait into a post-shutdown handler.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Stop stops accepting, closes live connections, and waits for their
// handlers — but leaves the engine and its open sessions running, so a
// caller (the wire replay driver) can serve several rounds through one
// engine. Shutdown is Stop plus an engine drain.
func (s *Server) Stop() {
	s.closed.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Shutdown stops accepting, closes live connections, waits for their
// handlers, and drains the engine, returning the final per-session results.
func (s *Server) Shutdown() map[string]sim.Result {
	s.Stop()
	return s.engine.Drain()
}

// handle negotiates the protocol for one connection and dispatches to the
// matching handler: the DARTWIRE1 magic byte selects binary framing, any
// other first byte the line-delimited JSON protocol.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wireMagic[0] {
		s.handleBinary(conn, br)
		return
	}
	s.handleJSON(conn, br)
}

// control executes one synchronous verb — everything except the access hot
// path — and returns its reply. Shared by the JSON loop and binary control
// frames, so every non-hot verb behaves identically over both protocols.
// opened tracks sessions owned by the calling connection for crash reclaim.
func (s *Server) control(req Request, opened map[string]struct{}) Reply {
	switch req.Op {
	case "open":
		err := s.engine.OpenSession(req.Session, SessionOptions{
			Prefetcher: req.Prefetcher,
			Degree:     req.Degree,
			Tenant:     req.Tenant,
			Weight:     req.Weight,
			SimCfg:     req.Sim,
		})
		if err != nil {
			return errReply(req.Session, err)
		}
		opened[req.Session] = struct{}{}
		return Reply{OK: true, Session: req.Session}
	case "close":
		res, err := s.engine.Close(req.Session)
		if err != nil {
			return errReply(req.Session, err)
		}
		delete(opened, req.Session)
		return Reply{OK: true, Session: req.Session, Result: &res}
	case "stats":
		st := s.engine.StatsSnapshot()
		sr := &StatsReply{
			Sessions: st.Sessions,
			Accepted: st.Accepted,
			Batches:  st.Batches,
			Batched:  st.Batched,
			MaxBatch: st.MaxBatch,
		}
		if st.Online != nil {
			sr.Online = onlineReply(*st.Online)
		}
		sr.AB = abReply(st.AB)
		sr.Policy = policyReply(st.Policy, nil)
		return Reply{OK: true, Stats: sr}
	case "model":
		if l := s.engine.Learner(); l == nil {
			return Reply{OK: false, Err: "serve: no online learner configured"}
		} else if err := checkClass(l, req.Class); err != nil {
			return errReply("", err)
		} else {
			return Reply{OK: true, Online: onlineReply(l.Stats())}
		}
	case "swap":
		if l := s.engine.Learner(); l == nil {
			return Reply{OK: false, Err: "serve: no online learner configured"}
		} else if v, err := swapClass(l, req.Class); err != nil {
			return errReply("", err)
		} else {
			return Reply{OK: true, Version: v, Online: onlineReply(l.Stats())}
		}
	case "rollback":
		if l := s.engine.Learner(); l == nil {
			return Reply{OK: false, Err: "serve: no online learner configured"}
		} else if v, err := rollbackClass(l, req.Class); err != nil {
			return errReply("", err)
		} else {
			return Reply{OK: true, Version: v, Online: onlineReply(l.Stats())}
		}
	case "classes":
		if l := s.engine.Learner(); l == nil {
			return Reply{OK: false, Err: "serve: no online learner configured"}
		} else {
			return Reply{OK: true, Classes: classesReply(l.Classes())}
		}
	case "policy":
		l := s.engine.Learner()
		if l == nil {
			return Reply{OK: false, Err: "serve: no online learner configured"}
		}
		pol := l.Policy()
		if pol == nil {
			// Policy disabled is a valid state, not an error: the reply says
			// so explicitly, so operators can distinguish "ungated" from
			// "gated but quiet".
			return Reply{OK: true, Policy: &PolicyReply{Enabled: false}}
		}
		st := pol.Stats()
		return Reply{OK: true, Policy: policyReply(&st, pol.Decisions())}
	case "access", "batch":
		// Only reachable through a binary control frame: the JSON loop
		// intercepts access first, and binary clients must use the framed
		// hot verbs.
		return Reply{OK: false, Session: req.Session,
			Err: "serve: hot verb in a control frame: use access/batch frames"}
	default:
		return Reply{OK: false, Err: "serve: unknown op " + req.Op}
	}
}

// handleJSON runs one line-delimited JSON connection: a reader loop
// dispatching requests and a writer goroutine serialising replies (access
// replies arrive concurrently from session goroutines).
func (s *Server) handleJSON(conn net.Conn, br *bufio.Reader) {
	out := make(chan []byte, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriter(conn)
		var werr error
		for line := range out {
			if werr != nil {
				continue // client gone: keep draining so senders never block
			}
			if _, err := w.Write(line); err != nil {
				werr = err
				continue
			}
			if err := w.WriteByte('\n'); err != nil {
				werr = err
				continue
			}
			// Flush when the channel is momentarily empty so pipelined
			// bursts coalesce into few syscalls without batching latency.
			if len(out) == 0 {
				if err := w.Flush(); err != nil {
					werr = err
				}
			}
		}
		if werr == nil {
			w.Flush()
		}
	}()

	send := func(r Reply) {
		b, err := json.Marshal(r)
		if err != nil {
			b = []byte(`{"ok":false,"error":"serve: reply marshal failed"}`)
		}
		out <- b
	}

	// Sessions opened on this connection. If the client disconnects without
	// closing them (crash, dropped link), they are reclaimed below so the
	// daemon cannot accumulate orphaned actors and wedged session ids.
	opened := make(map[string]struct{})

	var pending sync.WaitGroup
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(errReply("", err))
			continue
		}
		if req.Op == "access" {
			pending.Add(1)
			err := s.engine.Submit(req.Session, req.Record(), func(resp Response) {
				defer pending.Done()
				pf := make([]Hex64, len(resp.Prefetches))
				for i, b := range resp.Prefetches {
					pf[i] = Hex64(b)
				}
				send(Reply{
					OK: true, Session: resp.Session, Seq: resp.Seq,
					Hit: resp.Hit, Late: resp.Late, Prefetch: pf,
					Version: resp.Version,
				})
			})
			if err != nil {
				pending.Done()
				send(errReply(req.Session, err))
			}
			continue
		}
		send(s.control(req, opened))
	}
	// Wait for in-flight access replies, then let the writer drain and exit.
	pending.Wait()
	close(out)
	<-writerDone

	// Reclaim sessions the client abandoned — unless the server itself is
	// shutting down, in which case engine.Drain collects them so Shutdown
	// can return their final results.
	if !s.closed.Load() {
		for id := range opened {
			s.engine.Close(id)
		}
	}
}

// handleBinary runs one DARTWIRE1 connection: verify and echo the handshake
// banner, then loop reading frames. Hot-verb frames ride pooled wireJobs
// through the session actors (zero allocations per access in steady state);
// control frames carry JSON and share the control dispatch with the JSON
// protocol. Framing-level corruption (bad CRC, truncation, garbage varints)
// is fatal to the connection — the stream is no longer trustworthy — while
// application errors (unknown session) answer with a per-frame error reply.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	var magic [len(wireMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	if string(magic[:]) != wireMagic {
		fmt.Fprintf(conn, "serve: bad protocol magic %q (want %q)\n", magic[:], wireMagic)
		return
	}
	if _, err := conn.Write([]byte(wireMagic)); err != nil {
		return
	}

	out := make(chan *wireJob, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriterSize(conn, 1<<16)
		var werr error
		for j := range out {
			if werr == nil {
				if _, err := w.Write(j.buf); err != nil {
					werr = err
				} else if len(out) == 0 {
					// Flush when the channel is momentarily empty so
					// pipelined bursts coalesce into few syscalls without
					// adding batching latency.
					if err := w.Flush(); err != nil {
						werr = err
					}
				}
			}
			// Even when the client is gone, keep consuming and signalling
			// jobs so session actors and the reader never block on a reply.
			if j.wg != nil {
				j.wg.Done()
			}
			j.out, j.wg = nil, nil
			wireJobPool.Put(j)
		}
		if werr == nil {
			w.Flush()
		}
	}()

	var pending sync.WaitGroup
	opened := make(map[string]struct{})
	// Conn-local session cache: the hot loop resolves each session id once,
	// then skips the shard lookup (and the id allocation) entirely.
	// Invalidated when a submit fails — the actor closed; a session reopened
	// under the same id is a different actor.
	cache := make(map[string]*session)

	sendErr := func(tag uint64, err error) {
		j := wireJobPool.Get().(*wireJob)
		j.buf = appendErrorFrame(j.buf[:0], tag, err)
		pending.Add(1)
		j.wg = &pending
		out <- j
	}

	rd := wireReader{br: br}
loop:
	for {
		kind, p, err := rd.next()
		if err != nil {
			if err != io.EOF {
				sendErr(0, err) // tell the client why before hanging up
			}
			break
		}
		switch kind {
		case frameControl:
			var req Request
			if err := json.Unmarshal(p, &req); err != nil {
				sendErr(0, fmt.Errorf("serve: bad control frame: %w", err))
				break loop
			}
			b, err := json.Marshal(s.control(req, opened))
			if err != nil {
				b = []byte(`{"ok":false,"error":"serve: reply marshal failed"}`)
			}
			j := wireJobPool.Get().(*wireJob)
			j.buf = beginFrame(j.buf[:0], frameControlReply)
			j.buf = append(j.buf, b...)
			j.buf = finishFrame(j.buf, 0)
			pending.Add(1)
			j.wg = &pending
			out <- j
		case frameAccess, frameBatch:
			j := wireJobPool.Get().(*wireJob)
			sid, err := decodeJob(kind, p, j)
			if err != nil {
				wireJobPool.Put(j)
				sendErr(0, err)
				break loop // malformed frame: the stream is not trustworthy
			}
			sess := cache[string(sid)]
			if sess == nil {
				if sess, err = s.engine.lookupBytes(sid); err != nil {
					tag := j.tag
					wireJobPool.Put(j)
					sendErr(tag, err)
					continue
				}
				cache[string(sid)] = sess
			}
			j.out, j.wg = out, &pending
			pending.Add(1)
			if err := s.engine.submitJob(sess, j); err != nil {
				pending.Done()
				// The cached actor closed. Drop the stale entry and retry
				// once: a client may close and reopen an id on one conn.
				delete(cache, string(sid))
				if sess, err2 := s.engine.lookupBytes(sid); err2 == nil {
					cache[string(sid)] = sess
					pending.Add(1)
					if err = s.engine.submitJob(sess, j); err == nil {
						continue
					}
					pending.Done()
				}
				tag := j.tag
				j.out, j.wg = nil, nil
				wireJobPool.Put(j)
				sendErr(tag, err)
			}
		default:
			sendErr(0, fmt.Errorf("serve: unknown wire frame kind 0x%02x", kind))
			break loop
		}
	}
	// Wait for in-flight jobs, then let the writer drain and exit.
	pending.Wait()
	close(out)
	<-writerDone

	if !s.closed.Load() {
		for id := range opened {
			s.engine.Close(id)
		}
	}
}
