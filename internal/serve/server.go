package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dart/internal/online"
	"dart/internal/sim"
)

// checkClass validates a model-class selector against the learner's tiers.
func checkClass(l *online.Learner, class string) error {
	switch class {
	case "", "teacher":
		return nil
	case online.StudentClass:
		if !l.HasStudent() {
			return fmt.Errorf("serve: no distilled-student tier configured")
		}
		return nil
	case online.DartClass:
		if !l.HasDart() {
			return fmt.Errorf("serve: no dart (tabularized) tier configured")
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown model class %q (have \"\", %q, and %q)",
			class, online.StudentClass, online.DartClass)
	}
}

// swapClass routes the swap verb to the selected model class and reports the
// newly published version. For the dart class a swap is a forced
// re-tabularization of the published student.
func swapClass(l *online.Learner, class string) (uint64, error) {
	if err := checkClass(l, class); err != nil {
		return 0, err
	}
	switch class {
	case online.StudentClass:
		m, err := l.SwapStudent()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	case online.DartClass:
		t, err := l.SwapDart()
		if err != nil {
			return 0, err
		}
		return t.Version, nil
	default:
		m, err := l.Swap()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	}
}

// rollbackClass routes the rollback verb to the selected model class and
// reports the version serving reverted to.
func rollbackClass(l *online.Learner, class string) (uint64, error) {
	if err := checkClass(l, class); err != nil {
		return 0, err
	}
	switch class {
	case online.StudentClass:
		m, err := l.RollbackStudent()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	case online.DartClass:
		t, err := l.RollbackDart()
		if err != nil {
			return 0, err
		}
		return t.Version, nil
	default:
		m, err := l.Rollback()
		if err != nil {
			return 0, err
		}
		return m.Version, nil
	}
}

// Server speaks the line-delimited JSON protocol over any net.Listener (TCP
// or unix socket). Clients may pipeline: access replies are written as each
// access completes, tagged with session and sequence number, so a client
// interleaving several sessions on one connection can match them up.
// Backpressure is end-to-end — a full session inbox blocks the connection's
// reader, which stops draining the socket, which throttles the sender.
type Server struct {
	engine *Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewServer wraps an engine.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, conns: make(map[net.Conn]struct{})}
}

// Engine exposes the underlying engine (replay drives it directly).
func (s *Server) Engine() *Engine { return s.engine }

// Serve accepts connections until Shutdown. It returns nil after a graceful
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// Registration and the shutdown check share the mutex: a conn
		// accepted as Shutdown begins is either registered before Shutdown
		// closes the conn map (and gets closed+waited on like the rest) or
		// observes closed and is dropped here — it can never slip past
		// wg.Wait into a post-shutdown handler.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown stops accepting, closes live connections, waits for their
// handlers, and drains the engine, returning the final per-session results.
func (s *Server) Shutdown() map[string]sim.Result {
	s.closed.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.engine.Drain()
}

// handle runs one connection: a reader loop dispatching requests and a
// writer goroutine serialising replies (replies arrive concurrently from
// session goroutines).
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan []byte, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriter(conn)
		var werr error
		for line := range out {
			if werr != nil {
				continue // client gone: keep draining so senders never block
			}
			if _, err := w.Write(line); err != nil {
				werr = err
				continue
			}
			if err := w.WriteByte('\n'); err != nil {
				werr = err
				continue
			}
			// Flush when the channel is momentarily empty so pipelined
			// bursts coalesce into few syscalls without batching latency.
			if len(out) == 0 {
				if err := w.Flush(); err != nil {
					werr = err
				}
			}
		}
		if werr == nil {
			w.Flush()
		}
	}()

	send := func(r Reply) {
		b, err := json.Marshal(r)
		if err != nil {
			b = []byte(`{"ok":false,"error":"serve: reply marshal failed"}`)
		}
		out <- b
	}

	// Sessions opened on this connection. If the client disconnects without
	// closing them (crash, dropped link), they are reclaimed below so the
	// daemon cannot accumulate orphaned actors and wedged session ids.
	opened := make(map[string]struct{})

	var pending sync.WaitGroup
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(errReply("", err))
			continue
		}
		switch req.Op {
		case "open":
			if err := s.engine.Open(req.Session, req.Prefetcher, req.Degree); err != nil {
				send(errReply(req.Session, err))
			} else {
				opened[req.Session] = struct{}{}
				send(Reply{OK: true, Session: req.Session})
			}
		case "access":
			pending.Add(1)
			err := s.engine.Submit(req.Session, req.Record(), func(resp Response) {
				defer pending.Done()
				pf := make([]Hex64, len(resp.Prefetches))
				for i, b := range resp.Prefetches {
					pf[i] = Hex64(b)
				}
				send(Reply{
					OK: true, Session: resp.Session, Seq: resp.Seq,
					Hit: resp.Hit, Late: resp.Late, Prefetch: pf,
					Version: resp.Version,
				})
			})
			if err != nil {
				pending.Done()
				send(errReply(req.Session, err))
			}
		case "close":
			res, err := s.engine.Close(req.Session)
			if err != nil {
				send(errReply(req.Session, err))
			} else {
				delete(opened, req.Session)
				send(Reply{OK: true, Session: req.Session, Result: &res})
			}
		case "stats":
			st := s.engine.StatsSnapshot()
			sr := &StatsReply{
				Sessions: st.Sessions,
				Accepted: st.Accepted,
				Batches:  st.Batches,
				Batched:  st.Batched,
				MaxBatch: st.MaxBatch,
			}
			if st.Online != nil {
				sr.Online = onlineReply(*st.Online)
			}
			sr.AB = abReply(st.AB)
			send(Reply{OK: true, Stats: sr})
		case "model":
			if l := s.engine.Learner(); l == nil {
				send(Reply{OK: false, Err: "serve: no online learner configured"})
			} else if err := checkClass(l, req.Class); err != nil {
				send(errReply("", err))
			} else {
				send(Reply{OK: true, Online: onlineReply(l.Stats())})
			}
		case "swap":
			if l := s.engine.Learner(); l == nil {
				send(Reply{OK: false, Err: "serve: no online learner configured"})
			} else if v, err := swapClass(l, req.Class); err != nil {
				send(errReply("", err))
			} else {
				send(Reply{OK: true, Version: v, Online: onlineReply(l.Stats())})
			}
		case "rollback":
			if l := s.engine.Learner(); l == nil {
				send(Reply{OK: false, Err: "serve: no online learner configured"})
			} else if v, err := rollbackClass(l, req.Class); err != nil {
				send(errReply("", err))
			} else {
				send(Reply{OK: true, Version: v, Online: onlineReply(l.Stats())})
			}
		case "classes":
			if l := s.engine.Learner(); l == nil {
				send(Reply{OK: false, Err: "serve: no online learner configured"})
			} else {
				send(Reply{OK: true, Classes: classesReply(l.Classes())})
			}
		default:
			send(Reply{OK: false, Err: "serve: unknown op " + req.Op})
		}
	}
	// Wait for in-flight access replies, then let the writer drain and exit.
	pending.Wait()
	close(out)
	<-writerDone

	// Reclaim sessions the client abandoned — unless the server itself is
	// shutting down, in which case engine.Drain collects them so Shutdown
	// can return their final results.
	if !s.closed.Load() {
		for id := range opened {
			s.engine.Close(id)
		}
	}
}
