package serve

import (
	"net"
	"time"
)

// clientOptions collects the functional-option surface of Connect.
type clientOptions struct {
	proto   string
	batch   int
	timeout time.Duration
}

// Option configures a Client built by Connect.
type Option func(*clientOptions)

// WithProtocol selects the wire encoding: "binary" (DARTWIRE1 framing, the
// default) or "json" (line-delimited, the debug protocol).
func WithProtocol(proto string) Option {
	return func(o *clientOptions) { o.proto = proto }
}

// WithBatchSize sets the client's preferred accesses-per-frame (binary) or
// pipelined burst size (json). It does not change Client behaviour directly —
// AccessBatch sends whatever it is given — but replay drivers and the router
// read it back via BatchSize to size their frames. Default 64.
func WithBatchSize(n int) Option {
	return func(o *clientOptions) { o.batch = n }
}

// WithTimeout bounds the TCP dial and every subsequent call: each Do or
// AccessBatch arms a connection deadline of d covering its whole round trip.
// A deadline expiry poisons the client like any other transport failure (the
// stream may hold a half-written frame), so health probes that time out must
// discard the client. Zero means no deadline (the default).
func WithTimeout(d time.Duration) Option {
	return func(o *clientOptions) { o.timeout = d }
}

// Connect dials addr over TCP and returns a Client speaking the configured
// protocol — the one constructor behind every in-repo caller:
//
//	c, err := serve.Connect("127.0.0.1:7381")                       // binary
//	c, err := serve.Connect(addr, serve.WithProtocol("json"),
//	        serve.WithTimeout(time.Second))
//
// Deprecated wrappers Dial and NewClient remain for the old two-constructor
// surface.
func Connect(addr string, opts ...Option) (*Client, error) {
	o := clientOptions{proto: "binary", batch: 64}
	for _, opt := range opts {
		opt(&o)
	}
	var conn net.Conn
	var err error
	if o.timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, o.timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	c, err := newClient(conn, o)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Dial connects to addr over TCP and negotiates proto ("json" or "binary").
//
// Deprecated: use Connect(addr, WithProtocol(proto)).
func Dial(addr, proto string) (*Client, error) {
	return Connect(addr, WithProtocol(proto))
}

// NewClient wraps an established connection speaking proto.
//
// Deprecated: use Connect, or newClient via Connect options; NewClient keeps
// the pre-Connect surface alive for callers that bring their own conn.
func NewClient(conn net.Conn, proto string) (*Client, error) {
	return newClient(conn, clientOptions{proto: proto, batch: 64})
}
