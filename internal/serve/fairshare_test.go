package serve

import (
	"sync"
	"testing"
	"time"

	"dart/internal/mat"
)

// echoInfer is a trivial inference kernel for batcher-level tests; delay
// models a slow model so queues build up under concurrent load.
func echoInfer(delay time.Duration) inferFn {
	return func(in *mat.Tensor) (*mat.Tensor, uint64) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return mat.NewTensor(in.N, in.T, in.D), 1
	}
}

// enqueueLocked plants n queries for a tenant directly, bypassing inferOne,
// so assembly can be unit-tested without goroutines. Caller holds b.mu.
func enqueueLocked(b *batcher, tenant string, n int) {
	tq := b.tenantLocked(tenant)
	for i := 0; i < n; i++ {
		tq.q = append(tq.q, query{seq: b.dispatchSeq, reply: make(chan answer, 1)})
		b.pending++
	}
}

// TestWRRAssembly pins the weighted-round-robin admission policy itself:
// with two saturated tenants, each batch grants slots in weight proportion,
// the rotation cursor moves the sweep's starting tenant between batches, and
// tenants left holding work when a batch closes are counted starved.
func TestWRRAssembly(t *testing.T) {
	b := &batcher{maxBatch: 4, tenants: map[string]*tenantQueue{}}
	b.cond = sync.NewCond(&b.mu)
	b.mu.Lock()
	defer b.mu.Unlock()

	enqueueLocked(b, "hot", 10)
	enqueueLocked(b, "cold", 10)
	b.tenants["hot"].weight = 3
	b.tenants["hot"].stats.Weight = 3

	// First sweep starts at "hot" (insertion order): 3 hot + 1 cold.
	if got := len(b.assembleLocked()); got != 4 {
		t.Fatalf("batch 1 size %d, want 4", got)
	}
	if h, c := b.tenants["hot"].stats.Queries, b.tenants["cold"].stats.Queries; h != 3 || c != 1 {
		t.Fatalf("batch 1 split hot=%d cold=%d, want 3/1", h, c)
	}
	// Rotation: the second batch sweeps from "cold": 1 cold, then 3 hot.
	b.assembleLocked()
	if h, c := b.tenants["hot"].stats.Queries, b.tenants["cold"].stats.Queries; h != 6 || c != 2 {
		t.Fatalf("after batch 2 hot=%d cold=%d, want 6/2", h, c)
	}
	// Both tenants still hold work at both closes: starved twice each.
	if h, c := b.tenants["hot"].stats.Starved, b.tenants["cold"].stats.Starved; h != 2 || c != 2 {
		t.Fatalf("starved hot=%d cold=%d, want 2/2", h, c)
	}

	// Once the hot tenant drains, cold's backlog fills whole batches alone
	// and nobody is starved by a sweep that emptied every queue.
	b.tenants["hot"].q = nil
	b.pending = len(b.tenants["cold"].q)
	got := b.assembleLocked()
	if len(got) != 4 || b.tenants["cold"].stats.Queries != 6 {
		t.Fatalf("drain batch size %d coldQueries %d, want 4/6", len(got), b.tenants["cold"].stats.Queries)
	}
	// Leftover-cold accounting: cold had 8 queued, took 4, still starved.
	if c := b.tenants["cold"].stats.Starved; c != 3 {
		t.Fatalf("cold starved %d, want 3", c)
	}
	// Final batch empties cold completely: no starvation increment.
	b.assembleLocked()
	if c := b.tenants["cold"].stats.Starved; c != 3 {
		t.Fatalf("cold starved %d after clean drain, want 3", c)
	}
	if b.pending != 0 {
		t.Fatalf("pending %d after drain, want 0", b.pending)
	}
}

// TestFairShareColdTenantNotStalled is the starvation regression test at the
// batcher layer: a hot tenant keeps ~16 queries in flight against a slow
// model while a cold tenant trickles in single queries. Under the previous
// weightless FIFO admission queue the cold query waited behind the whole hot
// backlog (MaxWaitBatches ≈ backlog/MaxBatch); weighted round-robin must
// serve it in the next assembled batch.
func TestFairShareColdTenantNotStalled(t *testing.T) {
	b := newBatcher(echoInfer(200*time.Microsecond), 4)
	x := mat.New(1, 1)

	const hotWorkers, hotPerWorker, coldQueries = 16, 30, 20
	var wg sync.WaitGroup
	for i := 0; i < hotWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < hotPerWorker; j++ {
				b.inferOne(x, "hot")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < coldQueries; j++ {
			b.inferOne(x, "cold")
			time.Sleep(300 * time.Microsecond) // arrive mid-flood, never backlogged
		}
	}()
	wg.Wait()
	b.stop()

	st := b.tenantStats()
	hot, cold := st["hot"], st["cold"]
	if hot.Queries != hotWorkers*hotPerWorker || cold.Queries != coldQueries {
		t.Fatalf("queries hot=%d cold=%d, want %d/%d",
			hot.Queries, cold.Queries, hotWorkers*hotPerWorker, coldQueries)
	}
	// The fair-share guarantee: with one outstanding query, the cold tenant
	// is admitted into the very next batch assembled after it enqueues.
	if cold.MaxWaitBatches > 1 {
		t.Fatalf("cold tenant waited %d batches; fair share promises at most 1", cold.MaxWaitBatches)
	}
	if cold.Starved != 0 {
		t.Fatalf("cold tenant starved %d times with nothing backlogged", cold.Starved)
	}
	// Sanity: the flood really did oversubscribe admission — the hot tenant's
	// backlog spilled past full batches.
	if hot.Starved == 0 {
		t.Fatal("hot tenant never starved; the test exerted no admission pressure")
	}
}

// TestFairShareMatrixUnderLoad is the end-to-end starvation regression: a
// hot tenant at 100x the cold tenants' QPS floods the shared DART admission
// batcher, and the cold tenants must still complete every access in order
// with a bounded admission wait. Run under -race in CI's race pass.
func TestFairShareMatrixUnderLoad(t *testing.T) {
	data := onlineTestData()
	h := testHierarchy(t, data)
	e := NewEngine(Config{
		SimCfg: smallSimCfg(), MaxBatch: 4,
		Model: h, Data: data, ModelLatency: 37, ModelStorage: 1 << 16,
	})

	rep, err := ReplayMatrix(ReplaySpec{Engine: e, Tenants: []TenantSpec{
		{Name: "hot", Workload: "zipf", Class: "dart", Sessions: 12, N: 500, QPS: 50000},
		{Name: "cold1", Workload: "chase", Class: "dart", Sessions: 1, N: 60, QPS: 500},
		{Name: "cold2", Workload: "phase", Class: "dart", Sessions: 1, N: 60, QPS: 500},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("accesses dropped or reordered under load: %+v", rep)
	}
	for _, tr := range rep.Tenants {
		if tr.Tenant == "hot" {
			continue
		}
		if tr.Admission.Queries == 0 {
			t.Fatalf("tenant %q recorded no admission queries", tr.Tenant)
		}
		if tr.Admission.MaxWaitBatches > 2 {
			t.Fatalf("cold tenant %q waited %d batches behind the hot flood; want <= 2",
				tr.Tenant, tr.Admission.MaxWaitBatches)
		}
		if tr.Admission.Starved != 0 {
			t.Fatalf("cold tenant %q starved %d times with a single session",
				tr.Tenant, tr.Admission.Starved)
		}
	}
	e.Drain()
}

// TestBatcherDefaultTenant: sessions opened without a tenant share the
// "default" fair-share queue, preserving the pre-tenant behaviour.
func TestBatcherDefaultTenant(t *testing.T) {
	b := newBatcher(echoInfer(0), 8)
	x := mat.New(1, 1)
	for i := 0; i < 5; i++ {
		b.inferOne(x, "")
	}
	b.stop()
	st := b.tenantStats()
	if len(st) != 1 || st[defaultTenant].Queries != 5 {
		t.Fatalf("default-tenant stats wrong: %+v", st)
	}
}
