package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dart/internal/trace"
)

// TestConnectOptions pins the single-constructor surface: Connect defaults to
// the binary protocol with batch 64, the options change each knob, and the
// deprecated wrappers still resolve to working clients.
func TestConnectOptions(t *testing.T) {
	addr, _ := startWireServer(t, Config{SimCfg: smallSimCfg()})

	c, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.binary || c.BatchSize() != 64 {
		t.Fatalf("defaults: binary=%v batch=%d, want binary batch 64", c.binary, c.BatchSize())
	}
	if err := c.Open("opt", "stride", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("opt", trace.Record{InstrID: 1, Addr: 0x40, IsLoad: true}); err != nil {
		t.Fatal(err)
	}

	j, err := Connect(addr, WithProtocol("json"), WithBatchSize(7), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.binary || j.BatchSize() != 7 || j.timeout != 5*time.Second {
		t.Fatalf("options not applied: %+v", j)
	}
	if err := j.Open("opt2", "stride", 4); err != nil {
		t.Fatal(err)
	}

	if _, err := Connect(addr, WithProtocol("smoke-signals")); err == nil {
		t.Fatal("unknown protocol accepted")
	}

	d, err := Dial(addr, "json") // deprecated wrapper
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewClient(conn, "binary") // deprecated wrapper
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
}

// TestConnectTimeoutPoisons: a server that goes silent mid-call trips the
// WithTimeout deadline, and the timeout — not a generic failure — is the
// sticky cause every later call reports.
func TestConnectTimeoutPoisons(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, len(WireMagic))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		conn.Write(buf)           // accept the handshake…
		io.Copy(io.Discard, conn) // …then swallow every request silently
	}()

	c, err := Connect(ln.Addr().String(), WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Access("s", trace.Record{InstrID: 1, Addr: 0x40})
	var nerr net.Error
	if err == nil || !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("silent server returned %v, want a timeout", err)
	}
	_, err = c.Access("s", trace.Record{InstrID: 2, Addr: 0x80})
	if err == nil || !strings.Contains(err.Error(), "connection dead") || !errors.As(err, &nerr) {
		t.Fatalf("post-timeout call returned %v, want sticky dead-connection timeout", err)
	}
}

// TestClientSurfacesDeathCause is the read-loop regression test: a backend
// killed mid-call must surface the original cause — an unexpected EOF while a
// reply was owed — on the failing call AND on every subsequent call, never a
// bare io.EOF and never a cause-free generic error.
func TestClientSurfacesDeathCause(t *testing.T) {
	for _, proto := range []string{"binary", "json"} {
		t.Run(proto, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			// A fake backend: answer the open verb, then die mid-access
			// without replying.
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				ok, _ := json.Marshal(Reply{OK: true})
				if proto == "binary" {
					br := bufio.NewReader(conn)
					magic := make([]byte, len(WireMagic))
					if _, err := io.ReadFull(br, magic); err != nil {
						return
					}
					conn.Write(magic)
					fr := NewFrameReader(br)
					if _, _, err := fr.Next(); err != nil { // open
						return
					}
					conn.Write(AppendControlReply(nil, ok))
					fr.Next() // the access frame: kill the conn instead of answering
					return
				}
				sc := bufio.NewScanner(conn)
				if !sc.Scan() { // open
					return
				}
				conn.Write(append(ok, '\n'))
				sc.Scan() // the access line: kill the conn instead of answering
			}()

			c, err := Connect(ln.Addr().String(), WithProtocol(proto))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Open("victim", "stride", 4); err != nil {
				t.Fatal(err)
			}
			_, err = c.Access("victim", trace.Record{InstrID: 1, Addr: 0x40, IsLoad: true})
			if err == nil {
				t.Fatal("access succeeded against a killed backend")
			}
			if err == io.EOF || !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("mid-call kill reported %v, want an io.ErrUnexpectedEOF wrap", err)
			}
			if !strings.Contains(err.Error(), "awaiting reply") {
				t.Fatalf("mid-call kill reported %q without the owed-a-reply cause", err)
			}

			// Every call after the death keeps reporting the original cause.
			for i := 0; i < 2; i++ {
				_, err2 := c.Access("victim", trace.Record{InstrID: 2, Addr: 0x80})
				if err2 == nil || !strings.Contains(err2.Error(), "connection dead") ||
					!errors.Is(err2, io.ErrUnexpectedEOF) {
					t.Fatalf("post-death call %d returned %v, want sticky dead-connection error wrapping the cause", i, err2)
				}
			}
			if _, err := c.Do(Request{Op: "stats"}); err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("post-death control verb returned %v, want the sticky cause", err)
			}
		})
	}
}

// TestClientClosePoisons: using a client after its own Close reports the
// closed-client cause, not a confusing transport error.
func TestClientClosePoisons(t *testing.T) {
	addr, _ := startWireServer(t, Config{SimCfg: smallSimCfg()})
	c, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Broken() != nil {
		t.Fatalf("fresh client reports Broken() = %v", c.Broken())
	}
	c.Close()
	if !errors.Is(c.Broken(), errClientClosed) {
		t.Fatalf("post-Close Broken() = %v, want errClientClosed", c.Broken())
	}
	if _, err := c.Access("x", trace.Record{InstrID: 1}); !errors.Is(err, errClientClosed) {
		t.Fatalf("post-Close call returned %v, want errClientClosed", err)
	}
}
