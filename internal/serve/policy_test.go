package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"dart/internal/nn"
	"dart/internal/online"
	"dart/internal/tabular"
)

// testPolicyLearner is testDartLearner with the promotion policy engine on.
func testPolicyLearner(t testing.TB, dir string, pc online.PolicyConfig) *online.Learner {
	t.Helper()
	data := onlineTestData()
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 8, DFF: 16, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
	scfg := nn.StudentConfig(tcfg)
	l, err := online.NewLearner(online.Config{
		Data: data, New: onlineTestArch(data), Dir: dir,
		BatchSize: 8, Tick: time.Millisecond, SwapInterval: -1, Duty: 0.5,
		Latency: 25, StorageBytes: 1 << 14,
		Student: func() nn.Layer {
			return nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(31)))
		},
		DistillInterval: -1, StudentLatency: 10, StudentStorageBytes: 1 << 12,
		Dart: true,
		Tabular: tabular.Config{
			Kernel: tabular.KernelConfig{K: 4, C: 1, Kind: tabular.EncoderLSH},
			Seed:   17,
		},
		TabularizeInterval: -1, DartSamples: 32,
		Policy: &pc,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestPolicyVerb drives the policy wire verb over a real socket: a gated
// learner reports its gate states, forced publishes land in the decision log
// with their bypass marked, and the stats verb carries the policy summary.
func TestPolicyVerb(t *testing.T) {
	// An unattainable admission threshold would block the forced swap too if
	// forced verbs were gated — they must bypass.
	l := testPolicyLearner(t, "", online.PolicyConfig{AdmitThreshold: 1, AdmitWindow: 2})
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)

	rep := rpc(t, conn, br, Request{Op: "policy"})
	if !rep.OK || rep.Policy == nil || !rep.Policy.Enabled {
		t.Fatalf("policy reply %+v", rep.Policy)
	}
	if len(rep.Policy.Gates) != 2 {
		t.Fatalf("gates for %d classes, want 2 (student, dart): %+v", len(rep.Policy.Gates), rep.Policy.Gates)
	}
	if rep.Policy.Gates[0].Class != online.StudentClass || rep.Policy.Gates[1].Class != online.DartClass {
		t.Fatalf("gate classes %+v", rep.Policy.Gates)
	}
	if len(rep.Policy.Log) != 0 {
		t.Fatalf("fresh engine has %d decisions", len(rep.Policy.Log))
	}

	// Stream examples so a forced tabularization can run.
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "s1", Prefetcher: "dart", Degree: 4}); !rep.OK {
		t.Fatalf("open: %s", rep.Err)
	}
	for i, rec := range sessionTrace(5, 400) {
		if rep := rpc(t, conn, br, Request{
			Op: "access", Session: "s1",
			InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
		}); !rep.OK {
			t.Fatalf("access %d: %s", i, rep.Err)
		}
	}
	waitForExamples(t, l, 64)
	if rep := rpc(t, conn, br, Request{Op: "swap", Class: "dart"}); !rep.OK {
		t.Fatalf("forced dart swap blocked by the gate: %s", rep.Err)
	}

	rep = rpc(t, conn, br, Request{Op: "policy"})
	if len(rep.Policy.Log) != 1 {
		t.Fatalf("decision log after forced swap: %+v", rep.Policy.Log)
	}
	d := rep.Policy.Log[0]
	if d.Class != online.DartClass || d.Action != online.ActionAdmit || d.Version != 1 ||
		!strings.Contains(d.Reason, "forced") {
		t.Fatalf("forced decision line: %+v", d)
	}
	if d.Seq != 1 || d.Time == "" {
		t.Fatalf("decision line missing seq/time: %+v", d)
	}
	if rep.Policy.Admitted != 1 {
		t.Fatalf("admitted counter %d, want 1", rep.Policy.Admitted)
	}

	// The stats verb carries the summary (gates, no log).
	st := rpc(t, conn, br, Request{Op: "stats"})
	if !st.OK || st.Stats.Policy == nil || !st.Stats.Policy.Enabled {
		t.Fatalf("stats policy summary %+v", st.Stats.Policy)
	}
	if st.Stats.Policy.Admitted != 1 || len(st.Stats.Policy.Log) != 0 {
		t.Fatalf("stats policy summary carries the wrong shape: %+v", st.Stats.Policy)
	}
	if st.Stats.Online == nil || st.Stats.Online.DartAttempts != 1 {
		t.Fatalf("online stats dart attempts: %+v", st.Stats.Online)
	}
	if rep := rpc(t, conn, br, Request{Op: "close", Session: "s1"}); !rep.OK {
		t.Fatalf("close: %s", rep.Err)
	}
}

// TestPolicyVerbDisabledAndAbsent: an ungated learner answers the verb with
// enabled=false (a valid state, not an error); no learner at all is an error.
func TestPolicyVerbDisabledAndAbsent(t *testing.T) {
	l := testLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)
	rep := rpc(t, conn, br, Request{Op: "policy"})
	if !rep.OK || rep.Policy == nil || rep.Policy.Enabled {
		t.Fatalf("policy on an ungated learner: %+v", rep.Policy)
	}
	st := rpc(t, conn, br, Request{Op: "stats"})
	if !st.OK || st.Stats.Policy != nil {
		t.Fatalf("ungated stats grew a policy section: %+v", st.Stats.Policy)
	}

	conn2, _, stopSrv2 := startServer(t, Config{SimCfg: smallSimCfg()})
	defer stopSrv2()
	br2 := bufio.NewReader(conn2)
	if rep := rpc(t, conn2, br2, Request{Op: "policy"}); rep.OK || rep.Err == "" {
		t.Fatalf("policy on a learner-less engine: %+v", rep)
	}
}

// TestPolicyRollbackUnderLoad is the rollback-under-load race matrix:
// sessions on all three serving classes stream concurrently while the policy
// engine rolls the dart class back on forced live divergence. Zero dropped
// and zero reordered accesses per session, later dart responses observe the
// reverted version, and the decision log holds the rollback with its
// agreement evidence. Run under -race this also proves ObserveLive's
// synchronization against the batcher goroutines.
func TestPolicyRollbackUnderLoad(t *testing.T) {
	l := testPolicyLearner(t, "", online.PolicyConfig{
		// Organic traffic must never trip the gate on its own: the injected
		// divergence (agreement ~0 against a huge window) is the only thing
		// that can cross a 1% threshold.
		DivergeThreshold: 0.01, DivergeWindows: 2, LiveWindow: 64,
		AdmitThreshold: 0.01, AdmitWindow: 1,
	})
	l.Start()
	defer l.Stop()
	pol := l.Policy()

	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	classes := []string{"online", "student", "dart"}
	const perClass, n = 2, 1200
	sessions := perClass * len(classes)
	ids := make([]string, sessions)
	type obs struct{ seqs []uint64 }
	got := make([]obs, sessions)
	var mu sync.Mutex
	for i := 0; i < sessions; i++ {
		ids[i] = fmt.Sprintf("%s%d", classes[i%len(classes)], i)
		if err := e.Open(ids[i], classes[i%len(classes)], 4); err != nil {
			t.Fatal(err)
		}
	}

	// Once the streaming sessions fill the reservoir, publish two table
	// versions so there is something to roll back to, then force live
	// divergence until the policy engine reverts the dart class.
	seedDone := make(chan struct{})
	go func() {
		defer close(seedDone)
		deadline := time.Now().Add(20 * time.Second)
		for l.Stats().Examples < 64 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if _, err := l.SwapDart(); err != nil {
			t.Errorf("dart v1: %v", err)
			return
		}
		if _, err := l.SwapDart(); err != nil {
			t.Errorf("dart v2: %v", err)
			return
		}
		// Force live divergence on whatever dart version serves: agreement
		// ~0 over full windows until the policy engine rolls back.
		deadline = time.Now().Add(20 * time.Second)
		for pol.Stats().RolledBack == 0 && time.Now().Before(deadline) {
			if tab := l.DartServing(); tab != nil {
				pol.ObserveLive(online.DartClass, tab.Version, 0, 64*100)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, rec := range sessionTrace(int64(i), n) {
				err := e.Submit(ids[i], rec, func(r Response) {
					mu.Lock()
					got[i].seqs = append(got[i].seqs, r.Seq)
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("%s: %v", ids[i], err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	<-seedDone

	st := pol.Stats()
	if st.RolledBack == 0 {
		t.Fatal("forced divergence never rolled the dart class back; the test proved nothing")
	}
	// The store reverted: two publishes, one rollback, serving the prior
	// good version again.
	if cur := l.DartServing(); cur == nil || cur.Version != 1 {
		t.Fatalf("dart serving %+v after 2 publishes and a rollback, want v1", cur)
	}
	// A session opened after the rollback observes the reverted version on
	// every response.
	const m = 50
	if err := e.Open("post", "dart", 4); err != nil {
		t.Fatal(err)
	}
	var postVers []uint64
	for _, rec := range sessionTrace(77, m) {
		if err := e.Submit("post", rec, func(r Response) {
			mu.Lock()
			postVers = append(postVers, r.Version)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Drain()
	if len(postVers) != m {
		t.Fatalf("post-rollback session got %d responses, want %d", len(postVers), m)
	}
	// Version 0 marks responses before the session's first model query; every
	// actual table query after the rollback must serve the reverted v1.
	var queried int
	for j, v := range postVers {
		if v == 0 {
			continue
		}
		queried++
		if v != 1 {
			t.Fatalf("post-rollback response %d served dart v%d, want the reverted v1", j, v)
		}
	}
	if queried == 0 {
		t.Fatal("post-rollback session never queried the table; the check proved nothing")
	}
	if res["post"].Accesses != m {
		t.Fatalf("post-rollback session counted %d accesses, want %d", res["post"].Accesses, m)
	}
	var rollback *online.Decision
	for _, d := range pol.Decisions() {
		if d.Action == online.ActionRollback && d.Class == online.DartClass {
			d := d
			rollback = &d
		}
	}
	if rollback == nil {
		t.Fatalf("no rollback decision in the log: %+v", pol.Decisions())
	}
	if rollback.Agreement >= 0.01 || rollback.Labels == 0 ||
		!strings.Contains(rollback.Reason, "rolled back") {
		t.Fatalf("rollback evidence: %+v", rollback)
	}

	for i := 0; i < sessions; i++ {
		o := got[i]
		if len(o.seqs) != n {
			t.Fatalf("session %s: %d responses, want %d (dropped accesses)", ids[i], len(o.seqs), n)
		}
		for j, s := range o.seqs {
			if s != uint64(j+1) {
				t.Fatalf("session %s: response %d has seq %d (reordered)", ids[i], j, s)
			}
		}
		if res[ids[i]].Accesses != n {
			t.Fatalf("session %s result counted %d accesses, want %d", ids[i], res[ids[i]].Accesses, n)
		}
	}
}

// TestStudentLiveObservationFeedsPolicy: the student batcher feeds live
// agreement into the policy engine even with legacy ShadowCompare off, and
// the live gate tracks the served student version.
func TestStudentLiveObservationFeedsPolicy(t *testing.T) {
	l := testPolicyLearner(t, "", online.PolicyConfig{
		DivergeThreshold: 0.01, DivergeWindows: 1000, LiveWindow: 16,
	})
	l.Start()
	defer l.Stop()
	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	if err := e.Open("s1", "student", 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range sessionTrace(9, 600) {
			if err := e.Submit("s1", rec, func(Response) {}); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	e.Drain()

	st := l.Policy().Stats()
	var studentGate *online.GateState
	for i := range st.Gates {
		if st.Gates[i].Class == online.StudentClass {
			studentGate = &st.Gates[i]
		}
	}
	if studentGate == nil || studentGate.LiveVersion == 0 {
		t.Fatalf("student live gate never observed traffic: %+v", st.Gates)
	}
	if studentGate.LiveWindows == 0 {
		t.Fatalf("no live window completed over 600 accesses: %+v", *studentGate)
	}
}
