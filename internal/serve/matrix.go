package serve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dart/internal/metrics"
	"dart/internal/sim"
	"dart/internal/trace"
)

// TenantSpec is one row of a scenario matrix: a named tenant driving some
// number of concurrent sessions of one workload-zoo scenario through one
// serving class, under its own QPS budget, fair-share weight, and (optionally)
// its own cache-hierarchy configuration.
type TenantSpec struct {
	Name     string
	Workload string      // trace.WorkloadByName key (zoo scenario or app)
	Sessions int         // concurrent sessions (default 1)
	N        int         // accesses per session (default 1000)
	Class    string      // serving class / prefetcher name (default "stride")
	Degree   int         // prefetch degree (default 4)
	QPS      float64     // aggregate accesses/sec across the tenant's sessions; 0 = unthrottled
	Weight   int         // fair-share admission weight (default 1)
	SimCfg   *sim.Config // per-tenant machine model; nil = engine default
	Seed     int64       // perturbs the workload seed; session i uses Seed+i
}

func (t TenantSpec) withDefaults() TenantSpec {
	if t.Sessions <= 0 {
		t.Sessions = 1
	}
	if t.N <= 0 {
		t.N = 1000
	}
	if t.Class == "" {
		t.Class = "stride"
	}
	if t.Degree <= 0 {
		t.Degree = 4
	}
	if t.Weight <= 0 {
		t.Weight = 1
	}
	return t
}

// TenantReport is one tenant's outcome in a matrix replay.
type TenantReport struct {
	Tenant    string
	Workload  string
	Class     string
	Sessions  int
	Merged    sim.Result      // per-session results merged
	Latency   metrics.Summary // request latency across the tenant's sessions
	Complete  bool            // every access served, in order, none dropped
	Admission TenantAdmission // fair-share view from the admission batchers
}

// MatrixReport summarises a mixed-tenant scenario replay.
type MatrixReport struct {
	Tenants       []TenantReport
	WallSeconds   float64
	TotalAccesses int
	Throughput    float64
	Complete      bool // conjunction of every tenant's Complete
}

// MatrixOptions selects the transport for a matrix replay. The zero value
// drives the engine with in-process calls, exactly as before.
type MatrixOptions struct {
	// Proto: "" or "direct" for in-process engine calls; "json" or
	// "binary" to run the whole matrix through a loopback TCP server
	// speaking that wire protocol (one connection per session).
	Proto string
	Batch int // accesses per wire frame / pipelined burst (default 64)
}

// ReplayMatrix drives a mixed-tenant scenario matrix through one engine:
// every tenant's sessions run concurrently, each pumping its own
// deterministic workload-zoo trace in order and synchronously (access n+1
// enters the engine only after n's reply), so cross-tenant interference is
// real — shared admission batchers, shared learner, shared worker pool. Per
// tenant it verifies completeness (each session's reply sequence numbers are
// exactly 1..N — nothing dropped, nothing reordered), merges the per-session
// simulator results, and reports request-latency percentiles plus the
// tenant's fair-share admission stats. With a wire transport in opt the same
// matrix — tenant options, per-tenant machine models, serving classes —
// runs over the chosen protocol instead, including completeness checks on
// the sequence numbers each reply frame carries.
func ReplayMatrix(e *Engine, tenants []TenantSpec, opt MatrixOptions) (MatrixReport, error) {
	switch opt.Proto {
	case "", "direct", "json", "binary":
	default:
		return MatrixReport{}, fmt.Errorf("serve: unknown matrix protocol %q (have direct, json, binary)", opt.Proto)
	}
	wire := opt.Proto == "json" || opt.Proto == "binary"
	batch := opt.Batch
	if batch <= 0 {
		batch = 64
	}
	if len(tenants) == 0 {
		return MatrixReport{}, fmt.Errorf("serve: empty scenario matrix")
	}
	specs := make([]TenantSpec, len(tenants))
	seen := map[string]bool{}
	for i, t := range tenants {
		specs[i] = t.withDefaults()
		if specs[i].Name == "" {
			return MatrixReport{}, fmt.Errorf("serve: tenant %d has no name", i)
		}
		if seen[specs[i].Name] {
			return MatrixReport{}, fmt.Errorf("serve: duplicate tenant %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
		if _, ok := trace.WorkloadByName(specs[i].Workload); !ok {
			return MatrixReport{}, fmt.Errorf("serve: tenant %q: unknown workload %q",
				specs[i].Name, specs[i].Workload)
		}
	}

	// Wire transports run the matrix through a loopback server: one client
	// connection per session, closed (with the server) on every exit path.
	var addr string
	if wire {
		srv := NewServer(e)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return MatrixReport{}, err
		}
		go srv.Serve(ln)
		defer srv.Stop()
		addr = ln.Addr().String()
	}

	type sessionRun struct {
		tenant  int
		id      string
		recs    []trace.Record
		hist    *metrics.Histogram
		client  *Client // nil on the direct transport
		orderOK bool
		err     error
	}
	var runs []*sessionRun
	defer func() {
		for _, r := range runs {
			if r.client != nil {
				r.client.Close()
			}
		}
	}()
	open := make(map[string]bool)
	defer func() {
		for id := range open {
			e.Close(id) // best effort on early error paths
		}
	}()
	for ti, t := range specs {
		w, _ := trace.WorkloadByName(t.Workload)
		for si := 0; si < t.Sessions; si++ {
			id := fmt.Sprintf("%s/%d", t.Name, si)
			sopt := SessionOptions{
				Prefetcher: t.Class,
				Degree:     t.Degree,
				Tenant:     t.Name,
				Weight:     t.Weight,
				SimCfg:     t.SimCfg,
			}
			r := &sessionRun{
				tenant:  ti,
				id:      id,
				recs:    w.Generate(t.Seed+int64(si), t.N),
				hist:    &metrics.Histogram{},
				orderOK: true,
			}
			var err error
			if wire {
				if r.client, err = Dial(addr, opt.Proto); err == nil {
					runs = append(runs, r) // before Open, so the defer closes the conn
					err = r.client.OpenSession(id, sopt)
				}
			} else {
				runs = append(runs, r)
				err = e.OpenSession(id, sopt)
			}
			if err != nil {
				return MatrixReport{}, fmt.Errorf("serve: tenant %q: %w", t.Name, err)
			}
			open[id] = true
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for _, r := range runs {
		t := specs[r.tenant]
		var interval time.Duration
		if t.QPS > 0 {
			perSession := t.QPS / float64(t.Sessions)
			interval = time.Duration(float64(time.Second) / perSession)
		}
		wg.Add(1)
		go func(r *sessionRun, interval time.Duration) {
			defer wg.Done()
			if r.client != nil {
				// Wire transport: frames of `batch` accesses; each reply
				// frame carries the per-access sequence numbers, so the
				// completeness check is exactly the direct transport's.
				expect := uint64(1)
				next := time.Now()
				for lo := 0; lo < len(r.recs); lo += batch {
					hi := lo + batch
					if hi > len(r.recs) {
						hi = len(r.recs)
					}
					if interval > 0 {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						next = next.Add(interval * time.Duration(hi-lo))
					}
					t0 := time.Now()
					res, err := r.client.AccessBatch(r.id, r.recs[lo:hi])
					if err != nil {
						r.err = err
						return
					}
					r.hist.ObserveDuration(time.Since(t0))
					for _, ar := range res {
						if ar.Seq != expect {
							r.orderOK = false
							r.err = fmt.Errorf("serve: session %s: access %d served as seq %d",
								r.id, expect, ar.Seq)
							return
						}
						expect++
					}
				}
				return
			}
			next := time.Now()
			for i, rec := range r.recs {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				resp, err := e.Access(r.id, rec)
				if err != nil {
					r.err = err
					return
				}
				r.hist.ObserveDuration(time.Since(t0))
				if resp.Seq != uint64(i+1) {
					r.orderOK = false
					r.err = fmt.Errorf("serve: session %s: access %d served as seq %d",
						r.id, i+1, resp.Seq)
					return
				}
			}
		}(r, interval)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, r := range runs {
		if r.err != nil {
			return MatrixReport{}, r.err
		}
	}

	// Close every session and fold results per tenant. Wire sessions close
	// over their own connection so the final result crosses the protocol.
	perTenant := make([][]sim.Result, len(specs))
	hists := make([]*metrics.Histogram, len(specs))
	for i := range hists {
		hists[i] = &metrics.Histogram{}
	}
	orderOK := make([]bool, len(specs))
	for i := range orderOK {
		orderOK[i] = true
	}
	for _, r := range runs {
		var res sim.Result
		var err error
		if r.client != nil {
			res, err = r.client.CloseSession(r.id)
		} else {
			res, err = e.Close(r.id)
		}
		delete(open, r.id)
		if err != nil {
			return MatrixReport{}, err
		}
		perTenant[r.tenant] = append(perTenant[r.tenant], res)
		hists[r.tenant].Merge(r.hist)
		orderOK[r.tenant] = orderOK[r.tenant] && r.orderOK
	}

	admissions := e.TenantAdmissions()
	rep := MatrixReport{WallSeconds: wall.Seconds(), Complete: true}
	for ti, t := range specs {
		merged := sim.Merge(perTenant[ti])
		merged.Prefetcher = t.Class
		complete := orderOK[ti] && merged.Accesses == t.Sessions*t.N
		tr := TenantReport{
			Tenant:    t.Name,
			Workload:  t.Workload,
			Class:     t.Class,
			Sessions:  t.Sessions,
			Merged:    merged,
			Latency:   hists[ti].Summarize(),
			Complete:  complete,
			Admission: admissions[t.Name],
		}
		rep.Tenants = append(rep.Tenants, tr)
		rep.TotalAccesses += merged.Accesses
		rep.Complete = rep.Complete && complete
	}
	if wall > 0 {
		rep.Throughput = float64(rep.TotalAccesses) / wall.Seconds()
	}
	return rep, nil
}

// String renders a matrix report for the CLI.
func (r MatrixReport) String() string {
	s := fmt.Sprintf("matrix: %d tenants, %d accesses in %.2fs (%.0f acc/s), complete=%v\n",
		len(r.Tenants), r.TotalAccesses, r.WallSeconds, r.Throughput, r.Complete)
	for _, t := range r.Tenants {
		s += fmt.Sprintf("  %-10s %-8s class=%-8s sess=%d  IPC %.3f  acc %5.1f%%  misses %d  l2hits %d  complete=%v\n",
			t.Tenant, t.Workload, t.Class, t.Sessions,
			t.Merged.IPC, t.Merged.Accuracy()*100, t.Merged.DemandMisses,
			t.Merged.L2Hits, t.Complete)
		if t.Admission.Queries > 0 {
			s += fmt.Sprintf("             admission: weight %d, %d queries, starved %d batches, max wait %d batches\n",
				t.Admission.Weight, t.Admission.Queries, t.Admission.Starved, t.Admission.MaxWaitBatches)
		}
		s += fmt.Sprintf("             latency: %s\n", t.Latency)
	}
	return s
}
