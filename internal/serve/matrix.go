package serve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dart/internal/metrics"
	"dart/internal/sim"
	"dart/internal/trace"
)

// TenantSpec is one row of a scenario matrix: a named tenant driving some
// number of concurrent sessions of one workload-zoo scenario through one
// serving class, under its own QPS budget, fair-share weight, and (optionally)
// its own cache-hierarchy configuration.
type TenantSpec struct {
	Name     string
	Workload string      // trace.WorkloadByName key (zoo scenario or app)
	Sessions int         // concurrent sessions (default 1)
	N        int         // accesses per session (default 1000)
	Class    string      // serving class / prefetcher name (default "stride")
	Degree   int         // prefetch degree (default 4)
	QPS      float64     // aggregate accesses/sec across the tenant's sessions; 0 = unthrottled
	Weight   int         // fair-share admission weight (default 1)
	SimCfg   *sim.Config // per-tenant machine model; nil = engine default
	Seed     int64       // perturbs the workload seed; session i uses Seed+i
}

func (t TenantSpec) withDefaults() TenantSpec {
	if t.Sessions <= 0 {
		t.Sessions = 1
	}
	if t.N <= 0 {
		t.N = 1000
	}
	if t.Class == "" {
		t.Class = "stride"
	}
	if t.Degree <= 0 {
		t.Degree = 4
	}
	if t.Weight <= 0 {
		t.Weight = 1
	}
	return t
}

// TenantReport is one tenant's outcome in a matrix replay.
type TenantReport struct {
	Tenant    string
	Workload  string
	Class     string
	Sessions  int
	Merged    sim.Result      // per-session results merged
	Latency   metrics.Summary // request latency across the tenant's sessions
	Complete  bool            // every access served, in order, none dropped
	Verified  bool            // Verify: every session bit-identical to the offline sim
	Unchecked bool            // Verify requested but the class cannot be offline-verified
	Admission TenantAdmission // fair-share view from the admission batchers (engine targets)
}

// MatrixReport summarises a mixed-tenant scenario replay.
type MatrixReport struct {
	Tenants       []TenantReport
	WallSeconds   float64
	TotalAccesses int
	Throughput    float64
	Complete      bool // conjunction of every tenant's Complete
	Verified      bool // Verify: every checkable tenant bit-identical (versioned classes check completeness instead)
}

// classVerifiable reports whether a serving class can be re-run offline for
// the bit-identity check: versioned classes hot-swap under training by
// design, so only the deterministic classes (the rule-based baselines, and a
// static pretrained dart table on engine targets) are checkable.
func (s ReplaySpec) classVerifiable(class string) bool {
	switch class {
	case "online", "student":
		return false
	}
	if e := s.Engine; e != nil {
		if l := e.Learner(); l != nil && class == "dart" && l.HasDart() {
			return false
		}
	}
	return true
}

// ReplayMatrix drives the spec's mixed-tenant scenario matrix (spec.Tenants)
// through its target: every tenant's sessions run concurrently, each pumping
// its own deterministic workload-zoo trace in order and synchronously (access
// n+1 enters the engine only after n's reply), so cross-tenant interference
// is real — shared admission batchers, shared learner, shared worker pool.
// Per tenant it verifies completeness (each session's reply sequence numbers
// are exactly 1..N and the merged result accounts every access — nothing
// dropped, nothing reordered), merges the per-session simulator results, and
// reports request-latency percentiles plus the tenant's fair-share admission
// stats. With a wire transport the same matrix runs over the chosen protocol
// — against spec.Addr (a daemon or a dart-router front-end) when set, else a
// loopback server around spec.Engine — including completeness checks on the
// sequence numbers each reply frame carries. With spec.Verify, tenants on
// deterministic classes are additionally re-run offline and must match
// bit-for-bit.
func ReplayMatrix(spec ReplaySpec) (MatrixReport, error) {
	spec, err := spec.normalized()
	if err != nil {
		return MatrixReport{}, err
	}
	e := spec.Engine
	wire := spec.Proto != "direct"
	if !wire && e == nil {
		return MatrixReport{}, fmt.Errorf("serve: direct matrix replay needs an engine")
	}
	tenants := spec.Tenants
	if len(tenants) == 0 {
		return MatrixReport{}, fmt.Errorf("serve: empty scenario matrix")
	}
	specs := make([]TenantSpec, len(tenants))
	seen := map[string]bool{}
	for i, t := range tenants {
		specs[i] = t.withDefaults()
		if specs[i].Name == "" {
			return MatrixReport{}, fmt.Errorf("serve: tenant %d has no name", i)
		}
		if seen[specs[i].Name] {
			return MatrixReport{}, fmt.Errorf("serve: duplicate tenant %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
		if _, ok := trace.WorkloadByName(specs[i].Workload); !ok {
			return MatrixReport{}, fmt.Errorf("serve: tenant %q: unknown workload %q",
				specs[i].Name, specs[i].Workload)
		}
	}

	// Wire transports with an engine target run the matrix through a
	// loopback server; an Addr target is dialed as-is (daemon or router).
	addr := spec.Addr
	if wire && e != nil {
		srv := NewServer(e)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return MatrixReport{}, err
		}
		go srv.Serve(ln)
		defer srv.Stop()
		addr = ln.Addr().String()
	}

	type sessionRun struct {
		tenant  int
		id      string
		recs    []trace.Record
		hist    *metrics.Histogram
		client  *Client // nil on the direct transport
		orderOK bool
		result  sim.Result
		err     error
	}
	var runs []*sessionRun
	defer func() {
		for _, r := range runs {
			if r.client != nil {
				r.client.Close()
			}
		}
	}()
	open := make(map[string]bool)
	defer func() {
		// Best-effort reclaim on early error paths: in-process when the
		// engine is ours, over each session's client otherwise.
		for _, r := range runs {
			if !open[r.id] {
				continue
			}
			if e != nil {
				e.Close(r.id)
			} else if r.client != nil {
				r.client.CloseSession(r.id)
			}
		}
	}()
	for ti, t := range specs {
		w, _ := trace.WorkloadByName(t.Workload)
		for si := 0; si < t.Sessions; si++ {
			id := fmt.Sprintf("%s/%d", t.Name, si)
			sopt := SessionOptions{
				Prefetcher: t.Class,
				Degree:     t.Degree,
				Tenant:     t.Name,
				Weight:     t.Weight,
				SimCfg:     t.SimCfg,
			}
			r := &sessionRun{
				tenant:  ti,
				id:      id,
				recs:    w.Generate(t.Seed+int64(si), t.N),
				hist:    &metrics.Histogram{},
				orderOK: true,
			}
			var err error
			if wire {
				if r.client, err = spec.dial(addr); err == nil {
					runs = append(runs, r) // before Open, so the defer closes the conn
					err = r.client.OpenSession(id, sopt)
				}
			} else {
				runs = append(runs, r)
				err = e.OpenSession(id, sopt)
			}
			if err != nil {
				return MatrixReport{}, fmt.Errorf("serve: tenant %q: %w", t.Name, err)
			}
			open[id] = true
		}
	}

	batch := spec.Batch
	var wg sync.WaitGroup
	start := time.Now()
	for _, r := range runs {
		t := specs[r.tenant]
		var interval time.Duration
		if t.QPS > 0 {
			perSession := t.QPS / float64(t.Sessions)
			interval = time.Duration(float64(time.Second) / perSession)
		}
		wg.Add(1)
		go func(r *sessionRun, interval time.Duration) {
			defer wg.Done()
			if r.client != nil {
				// Wire transport: frames of `batch` accesses; each reply
				// frame carries the per-access sequence numbers, so the
				// completeness check is exactly the direct transport's.
				expect := uint64(1)
				next := time.Now()
				for lo := 0; lo < len(r.recs); lo += batch {
					hi := lo + batch
					if hi > len(r.recs) {
						hi = len(r.recs)
					}
					if interval > 0 {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						next = next.Add(interval * time.Duration(hi-lo))
					}
					t0 := time.Now()
					res, err := r.client.AccessBatch(r.id, r.recs[lo:hi])
					if err != nil {
						r.err = err
						return
					}
					r.hist.ObserveDuration(time.Since(t0))
					for _, ar := range res {
						if ar.Seq != expect {
							r.orderOK = false
							r.err = fmt.Errorf("serve: session %s: access %d served as seq %d",
								r.id, expect, ar.Seq)
							return
						}
						expect++
					}
				}
				return
			}
			next := time.Now()
			for i, rec := range r.recs {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				resp, err := e.Access(r.id, rec)
				if err != nil {
					r.err = err
					return
				}
				r.hist.ObserveDuration(time.Since(t0))
				if resp.Seq != uint64(i+1) {
					r.orderOK = false
					r.err = fmt.Errorf("serve: session %s: access %d served as seq %d",
						r.id, i+1, resp.Seq)
					return
				}
			}
		}(r, interval)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, r := range runs {
		if r.err != nil {
			return MatrixReport{}, r.err
		}
	}

	// Close every session and fold results per tenant. Wire sessions close
	// over their own connection so the final result crosses the protocol.
	perTenant := make([][]sim.Result, len(specs))
	hists := make([]*metrics.Histogram, len(specs))
	for i := range hists {
		hists[i] = &metrics.Histogram{}
	}
	orderOK := make([]bool, len(specs))
	identical := make([]bool, len(specs))
	for i := range orderOK {
		orderOK[i], identical[i] = true, true
	}
	for _, r := range runs {
		var err error
		if r.client != nil {
			r.result, err = r.client.CloseSession(r.id)
		} else {
			r.result, err = e.Close(r.id)
		}
		delete(open, r.id)
		if err != nil {
			return MatrixReport{}, err
		}
		perTenant[r.tenant] = append(perTenant[r.tenant], r.result)
		hists[r.tenant].Merge(r.hist)
		orderOK[r.tenant] = orderOK[r.tenant] && r.orderOK
	}

	// Offline verification pass for checkable tenants.
	unchecked := make([]bool, len(specs))
	if spec.Verify {
		for _, r := range runs {
			t := specs[r.tenant]
			if !spec.classVerifiable(t.Class) {
				unchecked[r.tenant] = true
				continue
			}
			off, err := spec.offline(t.Class, t.Degree, t.SimCfg, r.recs)
			if err != nil {
				// The class is not resolvable offline (e.g. a remote-only
				// class): completeness still applies, bit-identity cannot.
				unchecked[r.tenant] = true
				continue
			}
			identical[r.tenant] = identical[r.tenant] && off == r.result
		}
	}

	var admissions map[string]TenantAdmission
	if e != nil {
		admissions = e.TenantAdmissions()
	}
	rep := MatrixReport{WallSeconds: wall.Seconds(), Complete: true, Verified: spec.Verify}
	for ti, t := range specs {
		merged := sim.Merge(perTenant[ti])
		merged.Prefetcher = t.Class
		complete := orderOK[ti] && merged.Accesses == t.Sessions*t.N
		tr := TenantReport{
			Tenant:    t.Name,
			Workload:  t.Workload,
			Class:     t.Class,
			Sessions:  t.Sessions,
			Merged:    merged,
			Latency:   hists[ti].Summarize(),
			Complete:  complete,
			Verified:  spec.Verify && !unchecked[ti] && identical[ti],
			Unchecked: spec.Verify && unchecked[ti],
			Admission: admissions[t.Name],
		}
		rep.Tenants = append(rep.Tenants, tr)
		rep.TotalAccesses += merged.Accesses
		rep.Complete = rep.Complete && complete
		rep.Verified = rep.Verified && (tr.Verified || tr.Unchecked)
	}
	if wall > 0 {
		rep.Throughput = float64(rep.TotalAccesses) / wall.Seconds()
	}
	return rep, nil
}

// String renders a matrix report for the CLI.
func (r MatrixReport) String() string {
	s := fmt.Sprintf("matrix: %d tenants, %d accesses in %.2fs (%.0f acc/s), complete=%v\n",
		len(r.Tenants), r.TotalAccesses, r.WallSeconds, r.Throughput, r.Complete)
	for _, t := range r.Tenants {
		verify := ""
		if t.Verified {
			verify = "  [= offline]"
		} else if t.Unchecked {
			verify = "  [unchecked]"
		}
		s += fmt.Sprintf("  %-10s %-8s class=%-8s sess=%d  IPC %.3f  acc %5.1f%%  misses %d  l2hits %d  complete=%v%s\n",
			t.Tenant, t.Workload, t.Class, t.Sessions,
			t.Merged.IPC, t.Merged.Accuracy()*100, t.Merged.DemandMisses,
			t.Merged.L2Hits, t.Complete, verify)
		if t.Admission.Queries > 0 {
			s += fmt.Sprintf("             admission: weight %d, %d queries, starved %d batches, max wait %d batches\n",
				t.Admission.Weight, t.Admission.Queries, t.Admission.Starved, t.Admission.MaxWaitBatches)
		}
		s += fmt.Sprintf("             latency: %s\n", t.Latency)
	}
	return s
}
