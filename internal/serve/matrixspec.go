package serve

import (
	"fmt"
	"strconv"
	"strings"

	"dart/internal/sim"
	"dart/internal/trace"
)

// ParseMatrixSpec turns a scenario-matrix spec string into tenant specs — the
// grammar both dart-serve and dart-router expose behind their -matrix-spec
// flags. Tenants are semicolon-separated, each "name:key=value,..." — e.g.
//
//	hot:workload=zipf,sessions=4,n=2000,class=dart,qps=5000,weight=3;\
//	cold:workload=chase,class=online,cache=twolevel
//
// Keys: workload (required; any trace.Workloads name), sessions, n, class,
// degree, qps, weight, seed, cache (default|twolevel). Unset keys take the
// TenantSpec defaults; cache "" uses the engine's machine model.
func ParseMatrixSpec(spec string) ([]TenantSpec, error) {
	var tenants []TenantSpec
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, rest, ok := strings.Cut(raw, ":")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("tenant %q: want name:key=value,...", raw)
		}
		t := TenantSpec{Name: strings.TrimSpace(name)}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenant %q: bad pair %q", t.Name, kv)
			}
			var err error
			switch k {
			case "workload":
				if _, ok := trace.WorkloadByName(v); !ok {
					return nil, fmt.Errorf("tenant %q: unknown workload %q", t.Name, v)
				}
				t.Workload = v
			case "class":
				t.Class = v
			case "sessions":
				t.Sessions, err = strconv.Atoi(v)
			case "n":
				t.N, err = strconv.Atoi(v)
			case "degree":
				t.Degree, err = strconv.Atoi(v)
			case "weight":
				t.Weight, err = strconv.Atoi(v)
			case "qps":
				t.QPS, err = strconv.ParseFloat(v, 64)
			case "seed":
				var s int64
				s, err = strconv.ParseInt(v, 10, 64)
				t.Seed = s
			case "cache":
				var cfg sim.Config
				switch v {
				case "default":
					cfg = sim.DefaultConfig()
				case "twolevel":
					cfg = sim.TwoLevelConfig()
				default:
					return nil, fmt.Errorf("tenant %q: unknown cache %q (default|twolevel)", t.Name, v)
				}
				t.SimCfg = &cfg
			default:
				return nil, fmt.Errorf("tenant %q: unknown key %q", t.Name, k)
			}
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %s=%q: %w", t.Name, k, v, err)
			}
		}
		if t.Workload == "" {
			return nil, fmt.Errorf("tenant %q: workload is required", t.Name)
		}
		tenants = append(tenants, t)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("empty matrix spec")
	}
	return tenants, nil
}

// DefaultMatrixSpec is the mixed-tenant scenario the nightly soak replays
// when -matrix is given no spec: four tenants across four workload-zoo
// families, two cache hierarchies, and (when the tiers are up) all three
// hot-swappable serving classes plus a classical baseline.
const DefaultMatrixSpec = "svc:workload=chase,sessions=2,n=2000,class=online,weight=3;" +
	"kv:workload=zipf,sessions=2,n=2000,class=student,cache=twolevel;" +
	"adv:workload=phase,sessions=1,n=2000,class=dart,cache=twolevel;" +
	"batch:workload=milc,sessions=1,n=2000,class=stride"

// DefaultRouterMatrixSpec is DefaultMatrixSpec restricted to deterministic
// classes — the routed variant: router backends train independently, so the
// versioned classes are meaningless across shards, but classical classes
// verify bit-identically through the sharding tier.
const DefaultRouterMatrixSpec = "svc:workload=chase,sessions=2,n=2000,class=isb,weight=3;" +
	"kv:workload=zipf,sessions=2,n=2000,class=bo,cache=twolevel;" +
	"adv:workload=phase,sessions=1,n=2000,class=stride,cache=twolevel;" +
	"batch:workload=milc,sessions=1,n=2000,class=stride"
