package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/online"
	"dart/internal/trace"
)

// onlineTestData keeps windows small so short session traces produce model
// queries and training examples quickly.
func onlineTestData() dataprep.Config {
	return dataprep.Config{History: 4, SegmentBits: 6, Segments: 4, LookForward: 4, DeltaRange: 8}
}

func onlineTestArch(data dataprep.Config) func() nn.Layer {
	return func() nn.Layer {
		rng := rand.New(rand.NewSource(21))
		return nn.NewTransformerPredictor(nn.TransformerConfig{
			T: data.History, DIn: data.InputDim(),
			DModel: 8, DFF: 16, DOut: data.OutputDim(), Heads: 2, Layers: 1,
		}, rng)
	}
}

func testLearner(t testing.TB, dir string) *online.Learner {
	t.Helper()
	data := onlineTestData()
	l, err := online.NewLearner(online.Config{
		Data: data, New: onlineTestArch(data), Dir: dir,
		BatchSize: 8, Tick: time.Millisecond, SwapInterval: -1, Duty: 0.5,
		Latency: 25, StorageBytes: 1 << 14, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestOnlineHotSwapMidReplay is the acceptance test for the hot-swap path:
// while concurrent online sessions stream accesses, the model is force-
// swapped repeatedly. Every session must see all of its accesses exactly
// once, in order (zero dropped, zero reordered), and the model versions
// tagged on its responses must be non-decreasing — a session can only move
// forward through published versions, never see a torn batch.
func TestOnlineHotSwapMidReplay(t *testing.T) {
	dir := t.TempDir()
	l := testLearner(t, dir)
	l.Start()
	defer l.Stop()

	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	const sessions, n = 6, 2000
	type obs struct {
		seqs []uint64
		vers []uint64
	}
	got := make([]obs, sessions)
	var mu sync.Mutex

	for i := 0; i < sessions; i++ {
		if err := e.Open(fmt.Sprintf("s%d", i), "online", 4); err != nil {
			t.Fatal(err)
		}
	}

	// Swap continuously while the replay runs.
	stop := make(chan struct{})
	var swaps atomic.Uint64
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := l.Swap(); err != nil {
					t.Errorf("swap: %v", err)
					return
				}
				swaps.Add(1)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			for _, rec := range sessionTrace(int64(i), n) {
				err := e.Submit(id, rec, func(r Response) {
					mu.Lock()
					got[i].seqs = append(got[i].seqs, r.Seq)
					got[i].vers = append(got[i].vers, r.Version)
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := e.Drain()
	close(stop)
	swapWG.Wait()

	if swaps.Load() == 0 {
		t.Fatal("no swap happened mid-replay; the test proved nothing")
	}
	if len(res) != sessions {
		t.Fatalf("drain returned %d sessions, want %d", len(res), sessions)
	}
	distinct := make(map[uint64]bool)
	for i := 0; i < sessions; i++ {
		o := got[i]
		if len(o.seqs) != n {
			t.Fatalf("session %d: %d responses, want %d (dropped accesses)", i, len(o.seqs), n)
		}
		for j, s := range o.seqs {
			if s != uint64(j+1) {
				t.Fatalf("session %d: response %d has seq %d (reordered)", i, j, s)
			}
		}
		var prev uint64
		for j, v := range o.vers {
			if v < prev {
				t.Fatalf("session %d: version went backwards at response %d (%d after %d)", i, j, v, prev)
			}
			prev = v
			if v > 0 {
				distinct[v] = true
			}
		}
		if res[fmt.Sprintf("s%d", i)].Accesses != n {
			t.Fatalf("session %d result counted %d accesses, want %d", i, res[fmt.Sprintf("s%d", i)].Accesses, n)
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("sessions observed versions %v: hot swap never picked up mid-replay", distinct)
	}
	// Drain (via Close) must have detached every tap from the learner.
	if st := l.Stats(); st.Sessions != 0 {
		t.Fatalf("%d taps still attached after drain", st.Sessions)
	}
}

// TestOnlineCheckpointRoundTripThroughServing: the version serving ends on
// must round-trip save→load→Publish bit-identically.
func TestOnlineCheckpointRoundTripThroughServing(t *testing.T) {
	dir := t.TempDir()
	l := testLearner(t, dir)
	l.Start()

	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	if err := e.Open("s", "online", 4); err != nil {
		t.Fatal(err)
	}
	for _, rec := range sessionTrace(4, 1200) {
		if err := e.Submit("s", rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if _, err := l.Swap(); err != nil {
		t.Fatal(err)
	}
	l.Stop() // flushes a final version when training advanced past the swap
	served := l.Serving()

	recovered, err := online.NewStore(onlineTestArch(onlineTestData()), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered.Skipped) != 0 {
		t.Fatalf("recovery skipped %v", recovered.Skipped)
	}
	m := recovered.Load()
	if m == nil || m.Version != served.Version {
		t.Fatalf("recovered %+v, served v%d", m, served.Version)
	}
	sp, rp := served.Net.Params(), m.Net.Params()
	for i := range sp {
		for j, v := range sp[i].W.Data {
			if rp[i].W.Data[j] != v {
				t.Fatalf("param %q[%d] differs after save→load→Publish round trip", sp[i].Name, j)
			}
		}
	}
}

// TestBatcherNeverMixesVersions hammers the versioned batcher from many
// producer goroutines while versions are published concurrently. Each
// inferFn call resolves the version exactly once for its whole batch (the
// invariant), every reply's version must be one the infer loop actually
// used, and each producer must observe non-decreasing versions. Run under
// -race this also proves the swap path is data-race free.
func TestBatcherNeverMixesVersions(t *testing.T) {
	var current atomic.Uint64
	current.Store(1)
	var dispatched sync.Map // version -> true, recorded inside inferFn
	b := newBatcher(func(in *mat.Tensor) (*mat.Tensor, uint64) {
		v := current.Load() // resolved once per batch, like the online inferFn
		dispatched.Store(v, true)
		return mat.NewTensor(in.N, 1, 1), v
	}, 16)

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				current.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	const producers, perProducer = 8, 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := mat.New(1, 1)
			var prev uint64
			for i := 0; i < perProducer; i++ {
				_, v := b.inferOne(x, "")
				if v < prev {
					t.Errorf("version went backwards: %d after %d", v, prev)
					return
				}
				if _, ok := dispatched.Load(v); !ok {
					t.Errorf("reply carries version %d that no batch dispatched", v)
					return
				}
				prev = v
			}
		}()
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	b.stop()

	batches, batched, _ := b.stats()
	if batched != producers*perProducer {
		t.Fatalf("batcher served %d queries, want %d", batched, producers*perProducer)
	}
	if batches == batched {
		t.Log("note: no coalescing happened (every batch had one query)")
	}
}

// TestOnlineProtocolVerbs drives model/swap/rollback over a real socket.
func TestOnlineProtocolVerbs(t *testing.T) {
	l := testLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)

	if rep := rpc(t, conn, br, Request{Op: "open", Session: "s1", Prefetcher: "online", Degree: 4}); !rep.OK {
		t.Fatalf("open online session failed: %s", rep.Err)
	}
	recs := sessionTrace(5, 300)
	sawVersion := false
	for i, rec := range recs {
		rep := rpc(t, conn, br, Request{
			Op: "access", Session: "s1",
			InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
		})
		if !rep.OK {
			t.Fatalf("access %d failed: %s", i, rep.Err)
		}
		if rep.Version > 0 {
			sawVersion = true
		}
	}
	if !sawVersion {
		t.Fatal("no access reply carried a model version")
	}

	mo := rpc(t, conn, br, Request{Op: "model"})
	if !mo.OK || mo.Online == nil || mo.Online.Version == 0 {
		t.Fatalf("model reply %+v", mo)
	}
	if mo.Online.Ingested == 0 {
		t.Fatalf("learner ingested nothing: %+v", mo.Online)
	}

	before := mo.Online.Version
	sw := rpc(t, conn, br, Request{Op: "swap"})
	if !sw.OK || sw.Version != before+1 {
		t.Fatalf("swap reply %+v (was v%d)", sw, before)
	}
	rb := rpc(t, conn, br, Request{Op: "rollback"})
	if !rb.OK || rb.Version != before {
		t.Fatalf("rollback reply %+v (want v%d)", rb, before)
	}

	st := rpc(t, conn, br, Request{Op: "stats"})
	if !st.OK || st.Stats == nil || st.Stats.Online == nil {
		t.Fatalf("stats reply has no online section: %+v", st.Stats)
	}
	if rep := rpc(t, conn, br, Request{Op: "close", Session: "s1"}); !rep.OK {
		t.Fatalf("close failed: %s", rep.Err)
	}
}

// TestOnlineVerbsWithoutLearner: the verbs must fail cleanly on an engine
// with no learner.
func TestOnlineVerbsWithoutLearner(t *testing.T) {
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg()})
	defer stopSrv()
	br := bufio.NewReader(conn)
	for _, op := range []string{"model", "swap", "rollback"} {
		rep := rpc(t, conn, br, Request{Op: op})
		if rep.OK || rep.Err == "" {
			t.Fatalf("%s on a learner-less engine: %+v", op, rep)
		}
	}
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "x", Prefetcher: "online"}); rep.OK {
		t.Fatal("online session opened without a learner")
	}
}

// TestOnlineDisabledBitIdentical: with no learner configured the engine is
// byte-for-byte the PR 2 engine — replay verification must still hold.
// (The always-on engine tests cover this too; this pins the claim next to
// the online code that must not break it.)
func TestOnlineDisabledBitIdentical(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	traces := map[string][]trace.Record{}
	for i := 0; i < 4; i++ {
		traces[fmt.Sprintf("c%d", i)] = sessionTrace(int64(40+i), 900)
	}
	rep, err := Replay(ReplaySpec{Engine: e, Prefetcher: "stride", Degree: 4, Verify: true}, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("replay without online training is no longer bit-identical: %+v", rep.Sessions)
	}
	e.Drain()
}
