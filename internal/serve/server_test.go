package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"dart/internal/prefetch"
	"dart/internal/sim"
)

// startServer spins up a server on a unix socket and returns a connected
// client plus a shutdown func.
func startServer(t *testing.T, cfg Config) (net.Conn, *Server, func()) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "dart.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewEngine(cfg))
	if srv.Engine() == nil {
		t.Fatal("server lost its engine")
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	return conn, srv, func() {
		conn.Close()
		srv.Shutdown()
		<-serveDone
	}
}

// rpc sends one request and reads one reply line.
func rpc(t *testing.T, conn net.Conn, br *bufio.Reader, req Request) Reply {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	return readReply(t, br)
}

func readReply(t *testing.T, br *bufio.Reader) Reply {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	var rep Reply
	if err := json.Unmarshal(line, &rep); err != nil {
		t.Fatalf("bad reply %q: %v", line, err)
	}
	return rep
}

// TestWireProtocolEndToEnd drives open → access* → stats → close over a real
// socket and checks the close result is bit-identical to the offline sim.
func TestWireProtocolEndToEnd(t *testing.T) {
	conn, _, stop := startServer(t, Config{SimCfg: smallSimCfg()})
	defer stop()
	br := bufio.NewReader(conn)

	if rep := rpc(t, conn, br, Request{Op: "open", Session: "s1", Prefetcher: "stride", Degree: 4}); !rep.OK {
		t.Fatalf("open failed: %s", rep.Err)
	}
	recs := sessionTrace(77, 400)
	for i, rec := range recs {
		rep := rpc(t, conn, br, Request{
			Op: "access", Session: "s1",
			InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
		})
		if !rep.OK {
			t.Fatalf("access %d failed: %s", i, rep.Err)
		}
		if rep.Seq != uint64(i+1) {
			t.Fatalf("access %d got seq %d", i, rep.Seq)
		}
	}
	st := rpc(t, conn, br, Request{Op: "stats"})
	if !st.OK || st.Stats == nil || st.Stats.Sessions != 1 || st.Stats.Accepted != 400 {
		t.Fatalf("stats reply %+v", st.Stats)
	}
	rep := rpc(t, conn, br, Request{Op: "close", Session: "s1"})
	if !rep.OK || rep.Result == nil {
		t.Fatalf("close failed: %s", rep.Err)
	}
	want := sim.Run(recs, prefetch.NewStride(4), smallSimCfg())
	if *rep.Result != want {
		t.Fatalf("served result differs from offline:\n got %+v\nwant %+v", *rep.Result, want)
	}
}

// TestWirePipelining sends a burst of access lines without waiting and then
// collects the replies: they must come back in order with no loss.
func TestWirePipelining(t *testing.T) {
	conn, _, stop := startServer(t, Config{SimCfg: smallSimCfg(), QueueDepth: 8})
	defer stop()
	br := bufio.NewReader(conn)
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "p", Prefetcher: "bo", Degree: 2}); !rep.OK {
		t.Fatal(rep.Err)
	}
	recs := sessionTrace(5, 300)
	errc := make(chan error, 1)
	go func() {
		w := bufio.NewWriter(conn)
		for _, rec := range recs {
			b, _ := json.Marshal(Request{
				Op: "access", Session: "p",
				InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
			})
			if _, err := w.Write(append(b, '\n')); err != nil {
				errc <- err
				return
			}
		}
		errc <- w.Flush()
	}()
	for i := range recs {
		rep := readReply(t, br)
		if !rep.OK || rep.Seq != uint64(i+1) {
			t.Fatalf("pipelined reply %d: %+v", i, rep)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestWireErrors exercises the protocol failure paths.
func TestWireErrors(t *testing.T) {
	conn, _, stop := startServer(t, Config{SimCfg: smallSimCfg()})
	defer stop()
	br := bufio.NewReader(conn)

	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if rep := readReply(t, br); rep.OK {
		t.Fatal("malformed line accepted")
	}
	if rep := rpc(t, conn, br, Request{Op: "teleport"}); rep.OK {
		t.Fatal("unknown op accepted")
	}
	if rep := rpc(t, conn, br, Request{Op: "access", Session: "nope"}); rep.OK {
		t.Fatal("access to unknown session accepted")
	}
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "e", Prefetcher: "bogus"}); rep.OK {
		t.Fatal("bogus prefetcher accepted")
	}
}

// TestShutdownDrainsSessions: sessions on a still-connected client when the
// server shuts down are drained and their results returned.
func TestShutdownDrainsSessions(t *testing.T) {
	conn, srv, _ := startServer(t, Config{SimCfg: smallSimCfg()})
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		if rep := rpc(t, conn, br, Request{Op: "open", Session: id, Prefetcher: "stride"}); !rep.OK {
			t.Fatal(rep.Err)
		}
		for _, rec := range sessionTrace(int64(i), 100) {
			rep := rpc(t, conn, br, Request{
				Op: "access", Session: id,
				InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr),
			})
			if !rep.OK {
				t.Fatal(rep.Err)
			}
		}
	}
	results := srv.Shutdown()
	if len(results) != 3 {
		t.Fatalf("shutdown drained %d sessions, want 3", len(results))
	}
	for id, res := range results {
		if res.Accesses != 100 {
			t.Fatalf("session %s drained with %d accesses", id, res.Accesses)
		}
	}
}

// TestDisconnectReclaimsSessions: a client that drops without closing its
// sessions must not wedge their ids — a reconnecting client can reopen them.
func TestDisconnectReclaimsSessions(t *testing.T) {
	conn, srv, _ := startServer(t, Config{SimCfg: smallSimCfg()})
	br := bufio.NewReader(conn)
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "core01", Prefetcher: "stride"}); !rep.OK {
		t.Fatal(rep.Err)
	}
	if rep := rpc(t, conn, br, Request{
		Op: "access", Session: "core01", InstrID: 1, Addr: Hex64(1 << 20),
	}); !rep.OK {
		t.Fatal(rep.Err)
	}
	conn.Close() // crash without "close"

	// The session id must become available again once the handler notices
	// the disconnect and reclaims the orphan.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := srv.engine.Open("core01", "bo", 2); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("session not reclaimed after disconnect: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res := srv.Shutdown(); len(res) != 1 {
		t.Fatalf("shutdown drained %d sessions, want the 1 reopened", len(res))
	}
}

func TestHex64RoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{`"0x10000040"`, 0x10000040},
		{`"0X1F"`, 0x1F},
		{`"255"`, 255},
		{`1024`, 1024},
		{`""`, 0},
		{`"0xffffffffffffffff"`, ^uint64(0)},
	}
	for _, c := range cases {
		var h Hex64
		if err := json.Unmarshal([]byte(c.in), &h); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if uint64(h) != c.want {
			t.Fatalf("unmarshal %s = %d, want %d", c.in, h, c.want)
		}
	}
	// Marshal → unmarshal survives the top bit (the reason Hex64 exists).
	b, err := json.Marshal(Hex64(1 << 62))
	if err != nil {
		t.Fatal(err)
	}
	var back Hex64
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != 1<<62 {
		t.Fatalf("round trip lost precision: %d", back)
	}
	for _, bad := range []string{`"0xzz"`, `"12x"`, `true`} {
		var h Hex64
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}
