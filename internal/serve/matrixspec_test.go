package serve

import "testing"

func TestParseMatrixSpec(t *testing.T) {
	tenants, err := ParseMatrixSpec(
		"hot:workload=zipf,sessions=4,n=2000,class=dart,qps=5000,weight=3,cache=twolevel,seed=9;" +
			"cold:workload=chase,class=online,cache=default")
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("%d tenants, want 2", len(tenants))
	}
	hot := tenants[0]
	if hot.Name != "hot" || hot.Workload != "zipf" || hot.Sessions != 4 || hot.N != 2000 ||
		hot.Class != "dart" || hot.QPS != 5000 || hot.Weight != 3 || hot.Seed != 9 {
		t.Fatalf("hot parsed wrong: %+v", hot)
	}
	if hot.SimCfg == nil || hot.SimCfg.L2Blocks == 0 {
		t.Fatalf("cache=twolevel did not select an L2: %+v", hot.SimCfg)
	}
	cold := tenants[1]
	if cold.SimCfg == nil || cold.SimCfg.L2Blocks != 0 {
		t.Fatalf("cache=default is not single-level: %+v", cold.SimCfg)
	}

	// The built-in matrices must always parse.
	def, err := ParseMatrixSpec(DefaultMatrixSpec)
	if err != nil {
		t.Fatalf("default matrix does not parse: %v", err)
	}
	if len(def) != 4 {
		t.Fatalf("default matrix has %d tenants, want 4", len(def))
	}
	routed, err := ParseMatrixSpec(DefaultRouterMatrixSpec)
	if err != nil {
		t.Fatalf("default router matrix does not parse: %v", err)
	}
	for _, tn := range routed {
		switch tn.Class {
		case "online", "student", "dart":
			t.Fatalf("router matrix tenant %q uses versioned class %q", tn.Name, tn.Class)
		}
	}

	for _, bad := range []string{
		"",
		"justaname",
		":workload=zipf",
		"a:workload=nope",
		"a:workload=zipf,sessions=x",
		"a:workload=zipf,cache=l9",
		"a:workload=zipf,color=red",
		"a:class=stride", // workload missing
		"a:workload",     // pair without =
	} {
		if _, err := ParseMatrixSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
