package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/online"
)

// testStudentLearner is testLearner with the distilled-student tier enabled
// on a StudentConfig-shrunk architecture.
func testStudentLearner(t testing.TB, dir string) *online.Learner {
	t.Helper()
	data := onlineTestData()
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 8, DFF: 16, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
	scfg := nn.StudentConfig(tcfg)
	l, err := online.NewLearner(online.Config{
		Data: data, New: onlineTestArch(data), Dir: dir,
		BatchSize: 8, Tick: time.Millisecond, SwapInterval: -1, Duty: 0.5,
		Latency: 25, StorageBytes: 1 << 14,
		Student: func() nn.Layer {
			return nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(31)))
		},
		DistillInterval: -1, StudentLatency: 10, StudentStorageBytes: 1 << 12,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestStudentHotSwapMidReplay is the student-tier acceptance test: while
// concurrent student sessions stream accesses, the student model class is
// force-published repeatedly. Zero dropped, zero reordered accesses; the
// student versions tagged on responses must be non-decreasing and must span
// at least two published versions (the hot swap really landed mid-replay).
func TestStudentHotSwapMidReplay(t *testing.T) {
	l := testStudentLearner(t, t.TempDir())
	l.Start()
	defer l.Stop()

	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	const sessions, n = 4, 2000
	type obs struct {
		seqs []uint64
		vers []uint64
	}
	got := make([]obs, sessions)
	var mu sync.Mutex

	for i := 0; i < sessions; i++ {
		if err := e.Open(fmt.Sprintf("s%d", i), "student", 4); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var swaps atomic.Uint64
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := l.SwapStudent(); err != nil {
					t.Errorf("swap student: %v", err)
					return
				}
				swaps.Add(1)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			for _, rec := range sessionTrace(int64(i), n) {
				err := e.Submit(id, rec, func(r Response) {
					mu.Lock()
					got[i].seqs = append(got[i].seqs, r.Seq)
					got[i].vers = append(got[i].vers, r.Version)
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := e.Drain()
	close(stop)
	swapWG.Wait()

	if swaps.Load() == 0 {
		t.Fatal("no student swap happened mid-replay; the test proved nothing")
	}
	distinct := make(map[uint64]bool)
	for i := 0; i < sessions; i++ {
		o := got[i]
		if len(o.seqs) != n {
			t.Fatalf("session %d: %d responses, want %d (dropped accesses)", i, len(o.seqs), n)
		}
		for j, s := range o.seqs {
			if s != uint64(j+1) {
				t.Fatalf("session %d: response %d has seq %d (reordered)", i, j, s)
			}
		}
		var prev uint64
		for j, v := range o.vers {
			if v < prev {
				t.Fatalf("session %d: student version went backwards at response %d (%d after %d)", i, j, v, prev)
			}
			prev = v
			if v > 0 {
				distinct[v] = true
			}
		}
		if res[fmt.Sprintf("s%d", i)].Accesses != n {
			t.Fatalf("session %d result counted %d accesses, want %d", i, res[fmt.Sprintf("s%d", i)].Accesses, n)
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("sessions observed student versions %v: hot swap never picked up mid-replay", distinct)
	}
	if st := l.Stats(); st.Sessions != 0 {
		t.Fatalf("%d taps still attached after drain", st.Sessions)
	}
}

// TestStudentInferFallsBackToTeacher: with no student version available, the
// student inference path must serve the (mirrored) teacher and report the
// teacher's version instead of failing.
func TestStudentInferFallsBackToTeacher(t *testing.T) {
	l := testLearner(t, "") // teacher only; its v1 is published
	mirror := newMirror(l.Store())
	data := onlineTestData()
	in := mat.NewTensor(2, data.History, data.InputDim())
	for i := range in.Data {
		in.Data[i] = float64(i%7) / 7
	}
	out, ver := studentInfer(nil, mirror, in)
	if out == nil || len(out.Data) != 2*data.OutputDim() {
		t.Fatalf("fallback produced no logits: %+v", out)
	}
	if want := l.Serving().Version; ver != want {
		t.Fatalf("fallback reported version %d, want teacher v%d", ver, want)
	}
	// The mirror must track a teacher publish.
	if _, err := l.Swap(); err != nil {
		t.Fatal(err)
	}
	_, ver = studentInfer(nil, mirror, in)
	if want := l.Serving().Version; ver != want {
		t.Fatalf("fallback reported stale version %d after swap to v%d", ver, want)
	}
}

// TestShadowCompareAgreement pins the A/B math: when student and teacher are
// the same architecture with identical parameters (and no training runs),
// every label must agree — rate exactly 1 — and the stats must count every
// compared batch and label.
func TestShadowCompareAgreement(t *testing.T) {
	data := onlineTestData()
	l, err := online.NewLearner(online.Config{
		Data: data, New: onlineTestArch(data),
		Student:         onlineTestArch(data), // same arch, same fixed seed: identical params
		BatchSize:       8,
		SwapInterval:    -1,
		DistillInterval: -1,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Learner deliberately not Started: no training perturbs the twins.
	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l, ShadowCompare: true})
	if err := e.Open("s", "student", 4); err != nil {
		t.Fatal(err)
	}
	for _, rec := range sessionTrace(9, 600) {
		if err := e.Submit("s", rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := func() Stats { // stats after drain keeps the accumulators
		e.Drain()
		return e.StatsSnapshot()
	}()
	if st.AB == nil {
		t.Fatal("shadow-compare enabled but Stats.AB is nil")
	}
	if st.AB.Batches == 0 || st.AB.Labels == 0 {
		t.Fatalf("nothing compared: %+v", st.AB)
	}
	if st.AB.Rate != 1 {
		t.Fatalf("identical models disagree: rate %v (%d/%d)", st.AB.Rate, st.AB.Agree, st.AB.Labels)
	}
	if st.AB.Labels%uint64(data.OutputDim()) != 0 {
		t.Fatalf("labels %d not a multiple of the bitmap width %d", st.AB.Labels, data.OutputDim())
	}
}

// TestStudentProtocolVerbs drives the model-class selector over a real
// socket: swap/rollback with class "student" move the student sequence and
// leave the teacher's untouched, stats carry the A/B section, and an unknown
// class fails cleanly.
func TestStudentProtocolVerbs(t *testing.T) {
	l := testStudentLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l, ShadowCompare: true})
	defer stopSrv()
	br := bufio.NewReader(conn)

	if rep := rpc(t, conn, br, Request{Op: "open", Session: "s1", Prefetcher: "student", Degree: 4}); !rep.OK {
		t.Fatalf("open student session failed: %s", rep.Err)
	}
	recs := sessionTrace(5, 300)
	sawVersion := false
	for i, rec := range recs {
		rep := rpc(t, conn, br, Request{
			Op: "access", Session: "s1",
			InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
		})
		if !rep.OK {
			t.Fatalf("access %d failed: %s", i, rep.Err)
		}
		if rep.Version > 0 {
			sawVersion = true
		}
	}
	if !sawVersion {
		t.Fatal("no access reply carried a model version")
	}

	mo := rpc(t, conn, br, Request{Op: "model", Class: "student"})
	if !mo.OK || mo.Online == nil || mo.Online.StudentVersion == 0 {
		t.Fatalf("model reply %+v", mo.Online)
	}
	teacherBefore := mo.Online.Version
	studentBefore := mo.Online.StudentVersion

	sw := rpc(t, conn, br, Request{Op: "swap", Class: "student"})
	if !sw.OK || sw.Version != studentBefore+1 {
		t.Fatalf("student swap reply %+v (was student v%d)", sw, studentBefore)
	}
	if sw.Online.Version != teacherBefore {
		t.Fatalf("student swap moved the teacher: v%d -> v%d", teacherBefore, sw.Online.Version)
	}
	rb := rpc(t, conn, br, Request{Op: "rollback", Class: "student"})
	if !rb.OK || rb.Version != studentBefore {
		t.Fatalf("student rollback reply %+v (want student v%d)", rb, studentBefore)
	}

	if rep := rpc(t, conn, br, Request{Op: "swap", Class: "nonsense"}); rep.OK || rep.Err == "" {
		t.Fatalf("unknown class accepted: %+v", rep)
	}

	st := rpc(t, conn, br, Request{Op: "stats"})
	if !st.OK || st.Stats == nil || st.Stats.AB == nil || st.Stats.AB.Labels == 0 {
		t.Fatalf("stats reply has no A/B section: %+v", st.Stats)
	}
	if rep := rpc(t, conn, br, Request{Op: "close", Session: "s1"}); !rep.OK {
		t.Fatalf("close failed: %s", rep.Err)
	}
}

// TestStudentVerbsWithoutTier: the class selector must fail cleanly when the
// learner has no student tier, and "student" sessions must not open.
func TestStudentVerbsWithoutTier(t *testing.T) {
	l := testLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)
	for _, op := range []string{"model", "swap", "rollback"} {
		rep := rpc(t, conn, br, Request{Op: op, Class: "student"})
		if rep.OK || rep.Err == "" {
			t.Fatalf("%s class=student on a tier-less learner: %+v", op, rep)
		}
	}
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "x", Prefetcher: "student"}); rep.OK {
		t.Fatal("student session opened without a student tier")
	}
}
