package serve

import (
	"sync"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/online"
)

// answer is one query's inference result plus the model version that
// produced it (0 for unversioned models such as the static table hierarchy).
type answer struct {
	logits  []float64
	version uint64
}

// query is one session's model input awaiting inference.
type query struct {
	x     *mat.Matrix
	reply chan answer
}

// inferFn runs one coalesced batch and reports the model version used.
// The batcher calls it from a single goroutine, so an implementation may
// resolve a hot-swappable model once per call — which is exactly how the
// version-consistency invariant is enforced: one inferFn call, one version,
// one whole batch.
type inferFn func(in *mat.Tensor) (*mat.Tensor, uint64)

// batcher is the admission layer for model inference: sessions publish their
// prepared inputs and block on the reply; the dispatch loop coalesces every
// query that arrived while the previous batch was in flight into one inferFn
// call (tabular.Hierarchy.QueryBatch for the static DART tables, a versioned
// nn forward pass for the online model) on the shared worker pool.
//
// Greedy (adaptive) batching needs no flush timer: when the engine is idle a
// query is dispatched alone with no added latency, and under concurrent load
// batches grow to MaxBatch naturally because sessions queue up while the
// previous batch runs.
type batcher struct {
	infer    inferFn
	reqs     chan query
	quit     chan struct{}
	done     chan struct{}
	maxBatch int

	mu      sync.Mutex
	batches uint64
	batched uint64
	biggest int
}

func newBatcher(infer inferFn, maxBatch int) *batcher {
	b := &batcher{
		infer:    infer,
		reqs:     make(chan query, maxBatch),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
	}
	go b.loop()
	return b
}

func (b *batcher) loop() {
	defer close(b.done)
	pending := make([]query, 0, b.maxBatch)
	for {
		// Block for the first query of the next batch.
		select {
		case q := <-b.reqs:
			pending = append(pending, q)
		case <-b.quit:
			// Serve stragglers already queued, then exit.
			for {
				select {
				case q := <-b.reqs:
					b.dispatch([]query{q})
				default:
					return
				}
			}
		}
		// Coalesce everything else that has already arrived.
	fill:
		for len(pending) < b.maxBatch {
			select {
			case q := <-b.reqs:
				pending = append(pending, q)
			default:
				break fill
			}
		}
		b.dispatch(pending)
		pending = pending[:0]
	}
}

// dispatch runs one coalesced batch through the model and fans the
// per-sample logits back to the waiting sessions. Per-sample outputs are
// exactly a single-sample query of that model (QueryBatch's contract, and
// Forward batching for nn models), so a batched session is bit-identical to
// one querying the model directly. The whole batch runs against one model
// version — infer resolves the version exactly once per call — so a hot
// swap can never split a batch across versions.
func (b *batcher) dispatch(qs []query) {
	if len(qs) == 0 {
		return
	}
	rows, cols := qs[0].x.Rows, qs[0].x.Cols
	in := mat.NewTensor(len(qs), rows, cols)
	for i, q := range qs {
		copy(in.Sample(i).Data, q.x.Data)
	}
	out, version := b.infer(in)
	for i, q := range qs {
		q.reply <- answer{
			logits:  append([]float64(nil), out.Sample(i).Data...),
			version: version,
		}
	}
	b.mu.Lock()
	b.batches++
	b.batched += uint64(len(qs))
	if len(qs) > b.biggest {
		b.biggest = len(qs)
	}
	b.mu.Unlock()
}

// inferOne blocks until the batcher has run the input through the model,
// returning the logits and the model version that served them.
func (b *batcher) inferOne(x *mat.Matrix) ([]float64, uint64) {
	q := query{x: x, reply: make(chan answer, 1)}
	b.reqs <- q
	a := <-q.reply
	return a.logits, a.version
}

// stats reports (batches dispatched, queries served, largest batch).
func (b *batcher) stats() (uint64, uint64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.batched, b.biggest
}

// stop shuts the dispatch loop down after serving any queued queries. The
// engine calls it only after every session has drained, so no new queries
// can arrive concurrently.
func (b *batcher) stop() {
	close(b.quit)
	<-b.done
}

// batchedModel adapts a batcher to prefetch.BitmapPredictor, the hook that
// lets each session keep a private NNPrefetcher (history ring, degree) while
// sharing one model and one admission batcher with every other session.
type batchedModel struct{ b *batcher }

// Logits routes the query through the admission batcher.
func (m batchedModel) Logits(x *mat.Matrix) []float64 {
	logits, _ := m.b.inferOne(x)
	return logits
}

// modelMirror is a private, lazily-refreshed parameter clone of the model
// class published by one nn store. A batcher that needs another class's
// inference (the student batcher's teacher fallback and A/B shadow-compare,
// the dart batcher's student fallback) must never call Forward on the
// published Model.Net — that instance's activation caches belong to its own
// batcher's dispatch goroutine. The mirror copies parameters on version
// change instead; it is only ever touched from its owning batcher's dispatch
// goroutine.
type modelMirror struct {
	s   *online.Store
	net nn.Layer
	ver uint64
}

func newMirror(s *online.Store) *modelMirror {
	return &modelMirror{s: s, net: s.Fresh()}
}

// resolve returns the mirror refreshed to the store's current published
// model and that version number. The store must have published at least one
// version (teacher and student stores always have, from construction).
func (t *modelMirror) resolve() (nn.Layer, uint64) {
	m := t.s.Load()
	if m.Version != t.ver {
		if err := nn.CopyParams(t.net, m.Net); err == nil {
			t.ver = m.Version
		}
	}
	return t.net, m.Version
}

// studentInfer runs one batch through the student model, falling back to the
// (mirrored) teacher when no student version is available — the tier degrades
// to teacher-quality serving instead of failing. The reported version is the
// student's, or the teacher's on the fallback path.
func studentInfer(stu *online.Model, mirror *modelMirror, in *mat.Tensor) (*mat.Tensor, uint64) {
	if stu == nil {
		net, ver := mirror.resolve()
		return net.Forward(in), ver
	}
	return stu.Net.Forward(in), stu.Version
}

// dartInfer runs one batch through the published table hierarchy, falling
// back to the (mirrored) student while no table version exists yet — the
// tabularizer needs streamed examples before it can build its first table,
// so the tier degrades to student-quality serving instead of failing. The
// reported version is the table's, or the student's on the fallback path.
func dartInfer(tab *online.Table, mirror *modelMirror, in *mat.Tensor) (*mat.Tensor, uint64) {
	if tab == nil {
		net, ver := mirror.resolve()
		return net.Forward(in), ver
	}
	return tab.H.QueryBatch(in), tab.Version
}

// agreement counts per-label prediction matches between two logit tensors:
// a label "agrees" when both models land on the same side of the p = 0.5
// decision threshold the prefetcher applies.
func agreement(a, b *mat.Tensor) (match, total uint64) {
	for i, v := range a.Data {
		if (v > 0) == (b.Data[i] > 0) {
			match++
		}
	}
	return match, uint64(len(a.Data))
}

// versionedModel is batchedModel plus version observation: the model version
// that served each query is written to *ver, which is owned by the session
// actor goroutine (Logits is only ever called from inside that session's
// sim.Step). The actor reads it back after the step to tag responses — the
// mechanism behind "sessions pick up a new version at step boundaries".
type versionedModel struct {
	b   *batcher
	ver *uint64
}

// Logits routes the query through the admission batcher and records the
// serving version.
func (m versionedModel) Logits(x *mat.Matrix) []float64 {
	logits, v := m.b.inferOne(x)
	*m.ver = v
	return logits
}
