package serve

import (
	"sync"

	"dart/internal/mat"
	"dart/internal/tabular"
)

// query is one session's model input awaiting inference.
type query struct {
	x     *mat.Matrix
	reply chan []float64
}

// batcher is the admission layer for model inference: sessions publish their
// prepared inputs and block on the reply; the dispatch loop coalesces every
// query that arrived while the previous batch was in flight into one
// tabular.Hierarchy.QueryBatch call on the shared worker pool.
//
// Greedy (adaptive) batching needs no flush timer: when the engine is idle a
// query is dispatched alone with no added latency, and under concurrent load
// batches grow to MaxBatch naturally because sessions queue up while the
// previous QueryBatch runs.
type batcher struct {
	h        *tabular.Hierarchy
	reqs     chan query
	quit     chan struct{}
	done     chan struct{}
	maxBatch int

	mu      sync.Mutex
	batches uint64
	batched uint64
	biggest int
}

func newBatcher(h *tabular.Hierarchy, maxBatch int) *batcher {
	b := &batcher{
		h:        h,
		reqs:     make(chan query, maxBatch),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
	}
	go b.loop()
	return b
}

func (b *batcher) loop() {
	defer close(b.done)
	pending := make([]query, 0, b.maxBatch)
	for {
		// Block for the first query of the next batch.
		select {
		case q := <-b.reqs:
			pending = append(pending, q)
		case <-b.quit:
			// Serve stragglers already queued, then exit.
			for {
				select {
				case q := <-b.reqs:
					b.dispatch([]query{q})
				default:
					return
				}
			}
		}
		// Coalesce everything else that has already arrived.
	fill:
		for len(pending) < b.maxBatch {
			select {
			case q := <-b.reqs:
				pending = append(pending, q)
			default:
				break fill
			}
		}
		b.dispatch(pending)
		pending = pending[:0]
	}
}

// dispatch runs one coalesced batch through the shared hierarchy and fans
// the per-sample logits back to the waiting sessions. Per-sample outputs are
// exactly Hierarchy.Query of that sample (QueryBatch's contract), so a
// batched session is bit-identical to one querying the model directly.
func (b *batcher) dispatch(qs []query) {
	if len(qs) == 0 {
		return
	}
	rows, cols := qs[0].x.Rows, qs[0].x.Cols
	in := mat.NewTensor(len(qs), rows, cols)
	for i, q := range qs {
		copy(in.Sample(i).Data, q.x.Data)
	}
	out := b.h.QueryBatch(in)
	for i, q := range qs {
		q.reply <- append([]float64(nil), out.Sample(i).Data...)
	}
	b.mu.Lock()
	b.batches++
	b.batched += uint64(len(qs))
	if len(qs) > b.biggest {
		b.biggest = len(qs)
	}
	b.mu.Unlock()
}

// infer blocks until the batcher has run the input through the model.
func (b *batcher) infer(x *mat.Matrix) []float64 {
	q := query{x: x, reply: make(chan []float64, 1)}
	b.reqs <- q
	return <-q.reply
}

// stats reports (batches dispatched, queries served, largest batch).
func (b *batcher) stats() (uint64, uint64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.batched, b.biggest
}

// stop shuts the dispatch loop down after serving any queued queries. The
// engine calls it only after every session has drained, so no new queries
// can arrive concurrently.
func (b *batcher) stop() {
	close(b.quit)
	<-b.done
}

// batchedModel adapts the batcher to prefetch.BitmapPredictor, the hook that
// lets each session keep a private NNPrefetcher (history ring, degree) while
// sharing one model and one admission batcher with every other session.
type batchedModel struct{ b *batcher }

// Logits routes the query through the admission batcher.
func (m batchedModel) Logits(x *mat.Matrix) []float64 { return m.b.infer(x) }
