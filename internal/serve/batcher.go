package serve

import (
	"sync"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/online"
)

// answer is one query's inference result plus the model version that
// produced it (0 for unversioned models such as the static table hierarchy).
type answer struct {
	logits  []float64
	version uint64
}

// query is one session's model input awaiting inference, tagged with the
// fair-share tenant it belongs to.
type query struct {
	x     *mat.Matrix
	seq   uint64 // dispatch sequence at enqueue time (wait-age accounting)
	reply chan answer
}

// inferFn runs one coalesced batch and reports the model version used.
// The batcher calls it from a single goroutine, so an implementation may
// resolve a hot-swappable model once per call — which is exactly how the
// version-consistency invariant is enforced: one inferFn call, one version,
// one whole batch.
type inferFn func(in *mat.Tensor) (*mat.Tensor, uint64)

// TenantAdmission is one tenant's view of an admission batcher: its
// fair-share weight, how many queries it pushed through, how many assembled
// batches skipped it while it had work queued (starvation), and the worst
// wait it ever saw, measured in dispatched batches between enqueue and
// service. A weightless FIFO admission queue lets a hot tenant drive a cold
// tenant's MaxWaitBatches to pending/MaxBatch; weighted round-robin bounds
// it near one.
type TenantAdmission struct {
	Weight         int
	Queries        uint64
	Starved        uint64
	MaxWaitBatches uint64
}

// tenantQueue is one tenant's FIFO of pending queries plus its stats.
type tenantQueue struct {
	name   string
	q      []query
	weight int
	stats  TenantAdmission
}

// batcher is the admission layer for model inference: sessions publish their
// prepared inputs and block on the reply; the dispatch loop coalesces
// concurrently-arriving queries into one inferFn call (tabular QueryBatch
// for DART tables, a versioned nn forward pass for the online model) on the
// shared worker pool.
//
// Admission is weighted round-robin across tenants, not FIFO across
// sessions: each tenant keeps its own FIFO queue, and every assembled batch
// sweeps the active tenants in rotating order, granting each up to its
// weight in slots per sweep until the batch fills. A tenant with any work
// queued is therefore served within about one batch regardless of how many
// queries a hot tenant has piled up — the fair-share guarantee the
// starvation regression test pins down. Per-tenant FIFO order is preserved,
// so per-session query order (at most one outstanding query per session)
// is unchanged.
//
// Greedy (adaptive) batching needs no flush timer: when the engine is idle a
// query is dispatched alone with no added latency, and under concurrent load
// batches grow to MaxBatch naturally because sessions queue up while the
// previous batch runs.
type batcher struct {
	infer    inferFn
	maxBatch int
	done     chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	order   []string // stable tenant rotation order
	rrPos   int      // rotation start for the next sweep
	pending int      // queued queries across all tenants
	stopped bool

	// Aggregate stats (guarded by mu).
	dispatchSeq uint64 // batches dispatched so far
	batches     uint64
	batched     uint64
	biggest     int
}

// defaultTenant groups queries from sessions opened without a tenant.
const defaultTenant = "default"

func newBatcher(infer inferFn, maxBatch int) *batcher {
	b := &batcher{
		infer:    infer,
		maxBatch: maxBatch,
		done:     make(chan struct{}),
		tenants:  make(map[string]*tenantQueue),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// tenant returns (creating if needed) a tenant's queue. Caller holds mu.
func (b *batcher) tenantLocked(name string) *tenantQueue {
	if name == "" {
		name = defaultTenant
	}
	tq := b.tenants[name]
	if tq == nil {
		tq = &tenantQueue{name: name, weight: 1, stats: TenantAdmission{Weight: 1}}
		b.tenants[name] = tq
		b.order = append(b.order, name)
	}
	return tq
}

// setWeight fixes a tenant's fair-share weight (minimum 1). The engine calls
// it at session open, before the tenant's first query.
func (b *batcher) setWeight(name string, w int) {
	if w <= 0 {
		w = 1
	}
	b.mu.Lock()
	tq := b.tenantLocked(name)
	tq.weight = w
	tq.stats.Weight = w
	b.mu.Unlock()
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		b.mu.Lock()
		for b.pending == 0 && !b.stopped {
			b.cond.Wait()
		}
		if b.pending == 0 && b.stopped {
			b.mu.Unlock()
			return
		}
		qs := b.assembleLocked()
		b.mu.Unlock()
		b.dispatch(qs)
	}
}

// assembleLocked builds the next batch by weighted round-robin over the
// tenants with queued work: starting at the rotation cursor, each sweep
// grants every active tenant up to weight slots, repeating until the batch
// is full or every queue is empty. Tenants still holding work when the
// batch closes full are counted starved for this batch. Caller holds mu.
func (b *batcher) assembleLocked() []query {
	qs := make([]query, 0, b.maxBatch)
	n := len(b.order)
	for len(qs) < b.maxBatch {
		granted := false
		for i := 0; i < n && len(qs) < b.maxBatch; i++ {
			tq := b.tenants[b.order[(b.rrPos+i)%n]]
			take := tq.weight
			for take > 0 && len(tq.q) > 0 && len(qs) < b.maxBatch {
				q := tq.q[0]
				tq.q = tq.q[1:]
				qs = append(qs, q)
				granted = true
				take--
				tq.stats.Queries++
				if wait := b.dispatchSeq - q.seq; wait > tq.stats.MaxWaitBatches {
					tq.stats.MaxWaitBatches = wait
				}
			}
		}
		if !granted {
			break // every queue empty
		}
	}
	for _, tq := range b.tenants {
		if len(tq.q) > 0 {
			tq.stats.Starved++
		}
	}
	if n > 0 {
		b.rrPos = (b.rrPos + 1) % n
	}
	b.pending -= len(qs)
	b.dispatchSeq++
	return qs
}

// dispatch runs one coalesced batch through the model and fans the
// per-sample logits back to the waiting sessions. Per-sample outputs are
// exactly a single-sample query of that model (QueryBatch's contract, and
// Forward batching for nn models), so a batched session is bit-identical to
// one querying the model directly. The whole batch runs against one model
// version — infer resolves the version exactly once per call — so a hot
// swap can never split a batch across versions.
func (b *batcher) dispatch(qs []query) {
	if len(qs) == 0 {
		return
	}
	rows, cols := qs[0].x.Rows, qs[0].x.Cols
	in := mat.NewTensor(len(qs), rows, cols)
	for i, q := range qs {
		copy(in.Sample(i).Data, q.x.Data)
	}
	out, version := b.infer(in)
	for i, q := range qs {
		q.reply <- answer{
			logits:  append([]float64(nil), out.Sample(i).Data...),
			version: version,
		}
	}
	b.mu.Lock()
	b.batches++
	b.batched += uint64(len(qs))
	if len(qs) > b.biggest {
		b.biggest = len(qs)
	}
	b.mu.Unlock()
}

// inferOne blocks until the batcher has run the input through the model on
// the tenant's behalf, returning the logits and the model version that
// served them.
func (b *batcher) inferOne(x *mat.Matrix, tenant string) ([]float64, uint64) {
	q := query{x: x, reply: make(chan answer, 1)}
	b.mu.Lock()
	tq := b.tenantLocked(tenant)
	q.seq = b.dispatchSeq
	tq.q = append(tq.q, q)
	b.pending++
	b.mu.Unlock()
	b.cond.Signal()
	a := <-q.reply
	return a.logits, a.version
}

// stats reports (batches dispatched, queries served, largest batch).
func (b *batcher) stats() (uint64, uint64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.batched, b.biggest
}

// tenantStats snapshots every tenant's admission view.
func (b *batcher) tenantStats() map[string]TenantAdmission {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]TenantAdmission, len(b.tenants))
	for name, tq := range b.tenants {
		out[name] = tq.stats
	}
	return out
}

// stop shuts the dispatch loop down after serving any queued queries. The
// engine calls it only after every session has drained, so no new queries
// can arrive concurrently.
func (b *batcher) stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	b.cond.Signal()
	<-b.done
}

// batchedModel adapts a batcher to prefetch.BitmapPredictor, the hook that
// lets each session keep a private NNPrefetcher (history ring, degree) while
// sharing one model and one admission batcher with every other session. The
// tenant tag routes the session's queries into its fair-share queue.
type batchedModel struct {
	b      *batcher
	tenant string
}

// Logits routes the query through the admission batcher.
func (m batchedModel) Logits(x *mat.Matrix) []float64 {
	logits, _ := m.b.inferOne(x, m.tenant)
	return logits
}

// modelMirror is a private, lazily-refreshed parameter clone of the model
// class published by one nn store. A batcher that needs another class's
// inference (the student batcher's teacher fallback and A/B shadow-compare,
// the dart batcher's student fallback) must never call Forward on the
// published Model.Net — that instance's activation caches belong to its own
// batcher's dispatch goroutine. The mirror copies parameters on version
// change instead; it is only ever touched from its owning batcher's dispatch
// goroutine.
type modelMirror struct {
	s   *online.Store
	net nn.Layer
	ver uint64
}

func newMirror(s *online.Store) *modelMirror {
	return &modelMirror{s: s, net: s.Fresh()}
}

// resolve returns the mirror refreshed to the store's current published
// model and that version number. The store must have published at least one
// version (teacher and student stores always have, from construction).
func (t *modelMirror) resolve() (nn.Layer, uint64) {
	m := t.s.Load()
	if m.Version != t.ver {
		if err := nn.CopyParams(t.net, m.Net); err == nil {
			t.ver = m.Version
		}
	}
	return t.net, m.Version
}

// studentInfer runs one batch through the student model, falling back to the
// (mirrored) teacher when no student version is available — the tier degrades
// to teacher-quality serving instead of failing. The reported version is the
// student's, or the teacher's on the fallback path.
func studentInfer(stu *online.Model, mirror *modelMirror, in *mat.Tensor) (*mat.Tensor, uint64) {
	if stu == nil {
		net, ver := mirror.resolve()
		return net.Forward(in), ver
	}
	return stu.Net.Forward(in), stu.Version
}

// dartInfer runs one batch through the published table hierarchy, falling
// back to the (mirrored) student while no table version exists yet — the
// tabularizer needs streamed examples before it can build its first table,
// so the tier degrades to student-quality serving instead of failing. The
// reported version is the table's, or the student's on the fallback path.
func dartInfer(tab *online.Table, mirror *modelMirror, in *mat.Tensor) (*mat.Tensor, uint64) {
	if tab == nil {
		net, ver := mirror.resolve()
		return net.Forward(in), ver
	}
	return tab.H.QueryBatch(in), tab.Version
}

// agreement counts per-label prediction matches between two logit tensors:
// a label "agrees" when both models land on the same side of the p = 0.5
// decision threshold the prefetcher applies.
func agreement(a, b *mat.Tensor) (match, total uint64) {
	for i, v := range a.Data {
		if (v > 0) == (b.Data[i] > 0) {
			match++
		}
	}
	return match, uint64(len(a.Data))
}

// versionedModel is batchedModel plus version observation: the model version
// that served each query is written to *ver, which is owned by the session
// actor goroutine (Logits is only ever called from inside that session's
// sim.Step). The actor reads it back after the step to tag responses — the
// mechanism behind "sessions pick up a new version at step boundaries".
type versionedModel struct {
	b      *batcher
	tenant string
	ver    *uint64
}

// Logits routes the query through the admission batcher and records the
// serving version.
func (m versionedModel) Logits(x *mat.Matrix) []float64 {
	logits, v := m.b.inferOne(x, m.tenant)
	*m.ver = v
	return logits
}
