package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dart/internal/trace"
)

// TestReplayClosesSessionsOnOpenError is the regression test for the session
// leak: when Open fails mid-loop (here: an id conflict injected by
// pre-opening one of the replay's session ids), every session the replay had
// already opened must be closed again before the error returns. Pre-fix,
// those sessions leaked their actors into the engine forever.
func TestReplayClosesSessionsOnOpenError(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	traces := map[string][]trace.Record{}
	for i := 0; i < 4; i++ {
		traces[fmt.Sprintf("c%d", i)] = sessionTrace(int64(i), 100)
	}
	// Replay opens ids in sorted order (c0, c1, c2, c3); pre-opening c2
	// makes the third Open fail after c0 and c1 succeeded.
	if err := e.Open("c2", "stride", 4); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(ReplaySpec{Engine: e, Prefetcher: "stride", Degree: 4}, traces)
	if err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("replay error = %v, want id-conflict error", err)
	}
	if got := e.Sessions(); len(got) != 1 || got[0] != "c2" {
		t.Fatalf("sessions after failed replay = %v, want only the injected [c2]", got)
	}
	if _, err := e.Close("c2"); err != nil {
		t.Fatal(err)
	}
	if got := e.Sessions(); len(got) != 0 {
		t.Fatalf("engine session count %d, want 0", len(got))
	}
	e.Drain()
}

// TestReplayClosesSessionsOnAccessError injects a failure mid-replay by
// closing one session out from under the driver: the victim's next Access
// errors, Replay returns that error, and the cleanup must still close every
// other session so the engine's session count returns to zero.
func TestReplayClosesSessionsOnAccessError(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	traces := map[string][]trace.Record{}
	for i := 0; i < 4; i++ {
		traces[fmt.Sprintf("c%d", i)] = sessionTrace(int64(i), 50_000)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := Replay(ReplaySpec{Engine: e, Prefetcher: "stride", Degree: 4}, traces)
		errc <- err
	}()
	// Wait until the replay has all four sessions streaming, then yank one.
	deadline := time.Now().Add(5 * time.Second)
	for len(e.Sessions()) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("replay never opened its sessions")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Close("c1"); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Fatal("replay succeeded despite a session closed mid-run")
	}
	if got := e.Sessions(); len(got) != 0 {
		t.Fatalf("sessions leaked after failed replay: %v", got)
	}
	e.Drain()
}
