package serve

import (
	"strings"
	"testing"

	"dart/internal/sim"
)

// twoLevelTestCfg is a small private-L2-plus-LLC hierarchy for matrix
// tenants that opt out of the engine-default single-level machine.
func twoLevelTestCfg() sim.Config {
	cfg := smallSimCfg()
	cfg.L2Blocks = 1024
	cfg.L2Ways = 8
	cfg.L2HitLatency = 14
	cfg.L2Inclusive = true
	return cfg
}

func TestReplayMatrixValidation(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	defer e.Drain()

	matrix := func(proto string, tenants ...TenantSpec) error {
		_, err := ReplayMatrix(ReplaySpec{Engine: e, Proto: proto, Tenants: tenants})
		return err
	}
	if err := matrix(""); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if err := matrix("", TenantSpec{Workload: "zipf"}); err == nil {
		t.Fatal("unnamed tenant accepted")
	}
	if err := matrix("",
		TenantSpec{Name: "a", Workload: "zipf"},
		TenantSpec{Name: "a", Workload: "chase"},
	); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if err := matrix("", TenantSpec{Name: "a", Workload: "no-such-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := smallSimCfg()
	bad.LLCWays = -1
	if err := matrix("", TenantSpec{Name: "a", Workload: "zipf", SimCfg: &bad}); err == nil {
		t.Fatal("invalid per-tenant sim config accepted")
	}
	if err := matrix("carrier-pigeon", TenantSpec{Name: "a", Workload: "zipf"}); err == nil {
		t.Fatal("unknown matrix protocol accepted")
	}
	if got := len(e.Sessions()); got != 0 {
		t.Fatalf("%d sessions leaked by failed matrix runs", got)
	}
}

// TestReplayMatrixMixedTenants is the workload-zoo acceptance scenario: four
// tenants spanning four generator families (a SPEC-style app, pointer
// chasing, a zipfian key-value store, and the phase-shifting adversary), two
// cache hierarchies (engine-default single-level and a per-tenant two-level
// override), and all three hot-swappable serving classes plus a classical
// baseline — replayed concurrently through one engine with per-tenant
// fair-share weights. Every access must come back in order, per tenant. The
// same matrix runs once in-process and once over DARTWIRE1 binary framing:
// the wire must carry every tenant option (class selection, weights,
// per-tenant machine models) without changing the outcome shape.
func TestReplayMatrixMixedTenants(t *testing.T) {
	for _, proto := range []string{"direct", "binary"} {
		t.Run(proto, func(t *testing.T) {
			testMatrixMixedTenants(t, proto)
		})
	}
}

func testMatrixMixedTenants(t *testing.T, proto string) {
	l := testDartLearner(t, t.TempDir())
	l.Start()
	defer l.Stop()
	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l, MaxBatch: 8})

	twoLevel := twoLevelTestCfg()
	tenants := []TenantSpec{
		{Name: "batch", Workload: "milc", Class: "stride", Sessions: 1, N: 800},
		{Name: "svc", Workload: "chase", Class: "online", Sessions: 2, N: 600, Weight: 3},
		{Name: "kv", Workload: "zipf", Class: "student", Sessions: 1, N: 600, SimCfg: &twoLevel},
		{Name: "adv", Workload: "phase", Class: "dart", Sessions: 1, N: 600, SimCfg: &twoLevel, Seed: 5},
	}
	rep, err := ReplayMatrix(ReplaySpec{Engine: e, Proto: proto, Batch: 32, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("matrix incomplete: %+v", rep)
	}
	if len(rep.Tenants) != len(tenants) {
		t.Fatalf("%d tenant reports, want %d", len(rep.Tenants), len(tenants))
	}
	wantTotal := 0
	byName := map[string]TenantReport{}
	for i, tr := range rep.Tenants {
		spec := tenants[i]
		byName[tr.Tenant] = tr
		if tr.Tenant != spec.Name {
			t.Fatalf("tenant %d reported as %q, want %q (order not preserved)", i, tr.Tenant, spec.Name)
		}
		want := spec.Sessions * spec.N
		if want == 0 {
			want = spec.N
		}
		if !tr.Complete || tr.Merged.Accesses != want {
			t.Fatalf("tenant %q: complete=%v accesses=%d want %d",
				tr.Tenant, tr.Complete, tr.Merged.Accesses, want)
		}
		if tr.Merged.Instructions == 0 || tr.Latency.Count == 0 {
			t.Fatalf("tenant %q: empty metrics: %+v", tr.Tenant, tr)
		}
		wantTotal += want
	}
	if rep.TotalAccesses != wantTotal {
		t.Fatalf("TotalAccesses %d, want %d", rep.TotalAccesses, wantTotal)
	}

	// The model-backed classes must have gone through fair-share admission…
	for _, name := range []string{"svc", "kv", "adv"} {
		if byName[name].Admission.Queries == 0 {
			t.Fatalf("tenant %q served a model class but recorded no admission queries", name)
		}
	}
	if w := byName["svc"].Admission.Weight; w != 3 {
		t.Fatalf("svc admission weight %d, want 3", w)
	}
	// …while the classical baseline never touches a batcher.
	if q := byName["batch"].Admission.Queries; q != 0 {
		t.Fatalf("stride tenant recorded %d admission queries, want 0", q)
	}

	// The high-reuse tenant on the two-level override filters demand traffic
	// through its private L2 (the phase-shift adversary streams with almost
	// no short-range reuse, so only the config proves its hierarchy);
	// single-level tenants must report none.
	if byName["kv"].Merged.L2Hits == 0 {
		t.Fatal("two-level tenant \"kv\" saw no L2 hits")
	}
	for _, name := range []string{"batch", "svc"} {
		if h := byName[name].Merged.L2Hits; h != 0 {
			t.Fatalf("single-level tenant %q reports %d L2 hits", name, h)
		}
	}

	s := rep.String()
	for _, name := range []string{"batch", "svc", "kv", "adv", "admission", "latency"} {
		if !strings.Contains(s, name) {
			t.Fatalf("matrix report missing %q:\n%s", name, s)
		}
	}
	if got := len(e.Sessions()); got != 0 {
		t.Fatalf("%d sessions left open after matrix replay", got)
	}
	e.Drain()
}

// TestReplayMatrixDeterministicTraces pins the replay-side determinism half
// of the zoo contract: two matrix runs over the same specs drive identical
// traces, so per-tenant offline-identical simulator results must match
// exactly whenever the serving class itself is deterministic.
func TestReplayMatrixDeterministicTraces(t *testing.T) {
	run := func() []TenantReport {
		e := NewEngine(Config{SimCfg: smallSimCfg()})
		defer e.Drain()
		twoLevel := twoLevelTestCfg()
		rep, err := ReplayMatrix(ReplaySpec{Engine: e, Verify: true, Tenants: []TenantSpec{
			{Name: "a", Workload: "chase", Class: "stride", Sessions: 2, N: 500},
			{Name: "b", Workload: "graph", Class: "bo", N: 500},
			{Name: "c", Workload: "zipf", Class: "isb", N: 500, SimCfg: &twoLevel},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatalf("incomplete: %+v", rep)
		}
		if !rep.Verified {
			t.Fatalf("deterministic classes not bit-identical offline: %+v", rep.Tenants)
		}
		return rep.Tenants
	}
	x, y := run(), run()
	for i := range x {
		if x[i].Merged != y[i].Merged {
			t.Fatalf("tenant %q not deterministic:\n%+v\n%+v", x[i].Tenant, x[i].Merged, y[i].Merged)
		}
	}
}
