package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// testHierarchy builds a small but real table hierarchy mapping the
// dataprep input (History x InputDim) to a 1 x OutputDim logit row:
// linear kernel → ReLU → mean pool → linear kernel.
func testHierarchy(t testing.TB, data dataprep.Config) *tabular.Hierarchy {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	din, dmid, dout := data.InputDim(), 16, data.OutputDim()
	randTensor := func(n, rows, cols int) *mat.Tensor {
		ts := mat.NewTensor(n, rows, cols)
		for i := range ts.Data {
			ts.Data[i] = rng.NormFloat64()
		}
		return ts
	}
	l1 := nn.NewLinear("l1", din, dmid, rng)
	k1 := tabular.NewLinearKernel(l1, randTensor(48, data.History, din), tabular.KernelConfig{K: 8, C: 2}, rng)
	l2 := nn.NewLinear("l2", dmid, dout, rng)
	k2 := tabular.NewLinearKernel(l2, randTensor(48, 1, dmid), tabular.KernelConfig{K: 8, C: 2}, rng)
	return &tabular.Hierarchy{Layers: []tabular.Layer{k1, tabular.ReLUTab{}, tabular.MeanPoolTab{}, k2}}
}

func sessionTrace(seed int64, n int) []trace.Record {
	return trace.Generate(trace.AppSpec{
		Name: "serve", Pages: 300, Streams: 3,
		Strides: []int64{1, 2, 5}, IrregularFrac: 0.1, Seed: seed,
	}, n)
}

// smallSimCfg keeps the LLC small so prefetchers matter on short traces.
func smallSimCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.LLCBlocks = 4096
	return cfg
}

// TestServedBitIdenticalToOffline is the engine's core contract: 12
// concurrent sessions with mixed prefetchers (including the batched DART
// path) must each produce a result bit-identical to an offline sim.Run of
// the same trace.
func TestServedBitIdenticalToOffline(t *testing.T) {
	data := dataprep.Default()
	h := testHierarchy(t, data)
	e := NewEngine(Config{
		SimCfg: smallSimCfg(),
		Model:  h, Data: data, ModelLatency: 37, ModelStorage: 1 << 16,
	})

	kinds := []string{"stride", "bo", "isb", "dart"}
	const perKind = 3
	const n = 2500
	type sess struct {
		id   string
		kind string
		recs []trace.Record
	}
	var sessions []sess
	for k, kind := range kinds {
		for i := 0; i < perKind; i++ {
			id := fmt.Sprintf("%s-%d", kind, i)
			sessions = append(sessions, sess{id, kind, sessionTrace(int64(100*k+i), n)})
		}
	}
	for _, s := range sessions {
		if err := e.Open(s.id, s.kind, 4); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s sess) {
			defer wg.Done()
			for _, rec := range s.recs {
				if err := e.Submit(s.id, rec, nil); err != nil {
					t.Errorf("%s: %v", s.id, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	reg := prefetch.NewRegistry()
	reg.Register("dart", func(degree int) sim.Prefetcher {
		return prefetch.NewNNPrefetcher("DART", prefetch.TableModel{H: h}, data, 37, 1<<16, degree)
	})
	for _, s := range sessions {
		got, err := e.Close(s.id)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := reg.New(s.kind, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Run(s.recs, pf, smallSimCfg())
		if got != want {
			t.Fatalf("session %s diverged from offline run:\n got %+v\nwant %+v", s.id, got, want)
		}
	}
	st := e.StatsSnapshot()
	if st.Batched == 0 {
		t.Fatal("no model queries went through the admission batcher")
	}
	e.Drain()
}

// TestResponsesInOrderPerSession: sequence numbers must arrive in submit
// order even with concurrent sessions.
func TestResponsesInOrderPerSession(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	const n = 600
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		if err := e.Open(id, "stride", 2); err != nil {
			t.Fatal(err)
		}
	}
	seqs := make(map[string][]uint64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, id := range ids {
		wg.Add(1)
		go func(si int, id string) {
			defer wg.Done()
			for _, rec := range sessionTrace(int64(si), n) {
				e.Submit(id, rec, func(r Response) {
					mu.Lock()
					seqs[r.Session] = append(seqs[r.Session], r.Seq)
					mu.Unlock()
				})
			}
		}(si, id)
	}
	wg.Wait()
	e.Drain()
	for _, id := range ids {
		got := seqs[id]
		if len(got) != n {
			t.Fatalf("session %s: %d responses, want %d", id, len(got), n)
		}
		for i, s := range got {
			if s != uint64(i+1) {
				t.Fatalf("session %s: response %d has seq %d", id, i, s)
			}
		}
	}
}

// TestBackpressureBlocksSubmit: a full inbox must block the producer, not
// drop or buffer unboundedly.
func TestBackpressureBlocksSubmit(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg(), QueueDepth: 2})
	if err := e.Open("s", "none", 1); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	first := make(chan struct{})
	rec := trace.Record{InstrID: 1, Addr: 1 << 20}
	// The actor picks this up and blocks in its callback, stalling the
	// session while leaving the inbox drained once.
	e.Submit("s", rec, func(Response) { close(first); <-release })
	<-first
	// Fill the inbox.
	e.Submit("s", rec, nil)
	e.Submit("s", rec, nil)
	// The next submit must block until the actor is released.
	blocked := make(chan struct{})
	go func() {
		e.Submit("s", rec, nil)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("submit into a full inbox did not block")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("submit never unblocked after the inbox drained")
	}
	e.Drain()
}

func TestSessionLifecycleErrors(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	if err := e.Open("", "stride", 1); err == nil {
		t.Fatal("empty session id accepted")
	}
	if err := e.Open("x", "no-such-prefetcher", 1); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	if err := e.Open("x", "stride", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Open("x", "stride", 1); err == nil {
		t.Fatal("duplicate open accepted")
	}
	if err := e.Submit("ghost", trace.Record{}, nil); err == nil {
		t.Fatal("submit to unknown session accepted")
	}
	if _, err := e.Close("ghost"); err == nil {
		t.Fatal("close of unknown session accepted")
	}
	if _, err := e.Close("x"); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("x", trace.Record{}, nil); err == nil {
		t.Fatal("submit to closed session accepted")
	}
	// Session id is free again after close.
	if err := e.Open("x", "bo", 1); err != nil {
		t.Fatal(err)
	}
	res := e.Drain()
	if len(res) != 1 {
		t.Fatalf("drain returned %d sessions, want 1", len(res))
	}
	if err := e.Open("y", "stride", 1); err == nil {
		t.Fatal("open accepted after drain")
	}
}

// TestDrainCollectsEverything: drain must return a final result for every
// open session, with all queued work applied.
func TestDrainCollectsEverything(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg(), QueueDepth: 8})
	const n = 400
	want := make(map[string]sim.Result)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("s%d", i)
		recs := sessionTrace(int64(i), n)
		if err := e.Open(id, "stride", 2); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := e.Submit(id, rec, nil); err != nil {
				t.Fatal(err)
			}
		}
		want[id] = sim.Run(recs, prefetch.NewStride(2), smallSimCfg())
	}
	got := e.Drain()
	if len(got) != len(want) {
		t.Fatalf("drained %d sessions, want %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("drained session %s:\n got %+v\nwant %+v", id, got[id], w)
		}
	}
}

// TestStatsSnapshotLive exercises the mid-stream stats path under load.
func TestStatsSnapshotLive(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	for i := 0; i < 4; i++ {
		if err := e.Open(fmt.Sprintf("s%d", i), "bo", 2); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.StatsSnapshot()
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, rec := range sessionTrace(int64(i), 1500) {
				e.Submit(fmt.Sprintf("s%d", i), rec, nil)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	st := e.StatsSnapshot()
	if st.Sessions != 4 {
		t.Fatalf("snapshot sees %d sessions, want 4", st.Sessions)
	}
	// Let the pumps finish, then stop the stats hammer.
	for len(stop) == 0 {
		if e.StatsSnapshot().Accepted >= 4*1500 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	e.Drain()
}

// TestReplayVerifiesOffline runs the replay driver end to end with
// verification on.
func TestReplayVerifiesOffline(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	traces := make(map[string][]trace.Record)
	for i := 0; i < 8; i++ {
		traces[fmt.Sprintf("core%d", i)] = sessionTrace(int64(i), 800)
	}
	rep, err := Replay(ReplaySpec{Engine: e, Prefetcher: "bo", Degree: 4, Verify: true}, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("replay not bit-identical to offline: %+v", rep.Sessions)
	}
	if rep.Merged.Accesses != 8*800 {
		t.Fatalf("merged accesses %d, want %d", rep.Merged.Accesses, 8*800)
	}
	if rep.Latency.Count != 8*800 {
		t.Fatalf("latency samples %d, want %d", rep.Latency.Count, 8*800)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
	e.Drain()
}

// TestReplayThrottled checks the QPS pacing slows the run down.
func TestReplayThrottled(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	traces := map[string][]trace.Record{
		"a": sessionTrace(1, 200),
		"b": sessionTrace(2, 200),
	}
	rep, err := Replay(ReplaySpec{Engine: e, Prefetcher: "stride", QPS: 2000}, traces)
	if err != nil {
		t.Fatal(err)
	}
	// 400 accesses at 2000/s aggregate should take ≈0.2s.
	if rep.WallSeconds < 0.15 {
		t.Fatalf("throttled replay finished in %.3fs, expected ≥0.15s", rep.WallSeconds)
	}
	if rep.Throughput > 3000 {
		t.Fatalf("throughput %.0f acc/s ignored the 2000/s target", rep.Throughput)
	}
	e.Drain()
}
