package serve

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"dart/internal/trace"
)

// TestWireAPIRequestRoundTrip pins the exported slice of the DARTWIRE1 codec
// a protocol front-end builds on: AppendAccessRequest frames decode through
// FrameReader + DecodeAccessRequest back into the same records, for both the
// single-access and batch kinds.
func TestWireAPIRequestRoundTrip(t *testing.T) {
	recs := []trace.Record{
		{InstrID: 1, PC: 0x400000, Addr: 0x10000040, IsLoad: true},
		{InstrID: 2, PC: 0x400004, Addr: 0x10000080},
		{InstrID: 3, PC: 0x400008, Addr: 0x100000c0, IsLoad: true},
	}
	for _, n := range []int{1, 3} {
		var buf []byte
		buf = AppendAccessRequest(buf, 7, "sess-1", recs[:n])
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(buf)))
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		wantKind := FrameBatch
		if n == 1 {
			wantKind = FrameAccess
		}
		if kind != wantKind {
			t.Fatalf("n=%d framed as kind 0x%02x, want 0x%02x", n, kind, wantKind)
		}
		tag, sid, got, err := DecodeAccessRequest(kind, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tag != 7 || string(sid) != "sess-1" || len(got) != n {
			t.Fatalf("decoded tag=%d sid=%q n=%d, want 7 sess-1 %d", tag, sid, len(got), n)
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("record %d round-tripped as %+v, want %+v", i, got[i], recs[i])
			}
		}
	}
	// Wrong kind is rejected, not misparsed.
	if _, _, _, err := DecodeAccessRequest(FrameControl, nil, nil); err == nil {
		t.Fatal("control frame accepted as access request")
	}
}

// TestWireAPIReplyFrames: the reply-side encoders a front-end uses to answer
// clients (results, control, error) all produce frames FrameReader accepts
// with the kinds and tags intact.
func TestWireAPIReplyFrames(t *testing.T) {
	results := []AccessResult{
		{Seq: 41, Hit: true, Version: 3, Prefetches: []uint64{0x400002, 0x400003}},
		{Seq: 42, Late: true},
	}
	var buf []byte
	buf = AppendResultsReply(buf, true, 9, results)
	buf = AppendResultsReply(buf, false, 10, results[:1])
	buf = AppendControlReply(buf, []byte(`{"ok":true}`))
	cause := errors.New("route: no healthy backend")
	buf = AppendErrorReply(buf, 11, cause)

	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(buf)))
	for i, want := range []byte{FrameBatchReply, FrameAccessReply, FrameControlReply, FrameError} {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != want {
			t.Fatalf("frame %d has kind 0x%02x, want 0x%02x", i, kind, want)
		}
		if kind == FrameControlReply && string(payload) != `{"ok":true}` {
			t.Fatalf("control reply payload %q", payload)
		}
		if kind == FrameError && !strings.Contains(string(payload), cause.Error()) {
			t.Fatalf("error payload %q lacks the cause", payload)
		}
	}
}
