package serve

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dart/internal/metrics"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

// ReplaySpec is the one replay surface: every evaluation mode — dart-serve's
// replay and matrix flags, dart-router's routed runs, the in-package tests —
// maps onto this struct and hands it to Replay or ReplayMatrix.
//
// The target is either an in-process Engine or a dialed address (a dart-serve
// daemon or a dart-router front-end), never both. Direct (in-process) replay
// requires an Engine; an Addr target requires a wire Proto, and engine-side
// extras the wire cannot carry — batcher counters, A/B stats, fair-share
// admission views — stay zero in the report.
type ReplaySpec struct {
	Engine *Engine // in-process target (Proto "direct" or loopback wire)
	Addr   string  // remote target: host:port of a daemon or router

	// Proto selects the transport. "" or "direct" calls the engine
	// in-process; "json" and "binary" replay over that wire protocol —
	// against Addr when set, else a loopback TCP server wrapping Engine —
	// so the measured throughput includes the full
	// read→decode→infer→encode→write path. With a wire transport the
	// latency histogram observes per-frame round trips (Batch accesses
	// each) rather than single accesses.
	Proto   string
	Batch   int           // accesses per wire frame / pipelined burst (default 64)
	Timeout time.Duration // per-call client deadline on wire transports; 0 = none

	Prefetcher string  // prefetcher every session opens with (Replay; default "stride")
	Degree     int     // prefetch degree (default 4)
	QPS        float64 // aggregate target accesses/sec across sessions; 0 = unthrottled
	Verify     bool    // re-run each trace offline and require bit-identity

	// Tenants is the mixed-tenant scenario matrix consumed by ReplayMatrix
	// (Replay ignores it); per-tenant class, degree, QPS, weight, and
	// machine model live on each TenantSpec.
	Tenants []TenantSpec

	// VerifyRegistry and VerifySimCfg configure the offline rerun used by
	// Verify when the target is an Addr (the remote engine's internals are
	// unreachable): they must match the backend's configuration. Defaults:
	// the built-in prefetcher registry and sim.DefaultConfig. Engine
	// targets always verify with the engine's own registry and model.
	VerifyRegistry *prefetch.Registry
	VerifySimCfg   *sim.Config
}

// normalized applies defaults and validates the target/transport combination.
func (s ReplaySpec) normalized() (ReplaySpec, error) {
	if s.Prefetcher == "" {
		s.Prefetcher = "stride"
	}
	if s.Degree <= 0 {
		s.Degree = 4
	}
	if s.Batch <= 0 {
		s.Batch = 64
	}
	switch s.Proto {
	case "", "direct":
		s.Proto = "direct"
		if s.Addr != "" {
			return s, fmt.Errorf("serve: replay target %q needs a wire protocol, not %q", s.Addr, s.Proto)
		}
	case "json", "binary":
	default:
		return s, fmt.Errorf("serve: unknown replay protocol %q (have direct, json, binary)", s.Proto)
	}
	if s.Engine == nil && s.Addr == "" {
		return s, fmt.Errorf("serve: replay spec needs a target: an Engine or a dialed Addr")
	}
	if s.Engine != nil && s.Addr != "" {
		return s, fmt.Errorf("serve: replay spec has two targets (Engine and Addr %q); pick one", s.Addr)
	}
	if s.VerifyRegistry == nil {
		s.VerifyRegistry = prefetch.NewRegistry()
	}
	return s, nil
}

// offline reruns one trace through the offline simulator for the bit-identity
// check, resolving the registry and machine model from the engine when the
// target is in-process and from the spec's Verify fields otherwise.
func (s ReplaySpec) offline(name string, degree int, simCfg *sim.Config, recs []trace.Record) (sim.Result, error) {
	reg, cfg := s.VerifyRegistry, sim.DefaultConfig()
	if s.VerifySimCfg != nil {
		cfg = *s.VerifySimCfg
	}
	if s.Engine != nil {
		reg, cfg = s.Engine.cfg.Registry, s.Engine.cfg.SimCfg
	}
	if simCfg != nil {
		cfg = *simCfg
	}
	pf, err := reg.New(name, degree)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(recs, pf, cfg), nil
}

// dial opens one replay client against the spec's wire target.
func (s ReplaySpec) dial(addr string) (*Client, error) {
	return Connect(addr, WithProtocol(s.Proto), WithBatchSize(s.Batch), WithTimeout(s.Timeout))
}

// SessionReport is one session's replay outcome.
type SessionReport struct {
	ID        string
	Result    sim.Result
	Offline   sim.Result // zero unless verified
	Identical bool       // served == offline (only meaningful with Verify)
}

// Report summarises a replay.
type Report struct {
	Sessions    []SessionReport
	Merged      sim.Result
	Latency     metrics.Summary // per-request latency (seconds); per-frame on wire transports
	WallSeconds float64
	Throughput  float64 // accesses/sec actually sustained
	Verified    bool    // every session bit-identical (false when Verify off)
	Batches     uint64  // model batches dispatched during the run (engine targets)
	Batched     uint64  // model queries served through them
	MaxBatch    int
	AB          *ABStats                   // student-vs-teacher agreement (shadow-compare runs only)
	Tenants     map[string]TenantAdmission // fair-share admission view (model-class runs)
}

// Replay pumps one trace per session through the spec's target concurrently —
// the continuous-request-load evaluation mode — and reports per-session
// results, sustained throughput, and request-latency percentiles. Each
// session's accesses are submitted in order and synchronously (access n+1
// enters the engine after n's reply; on wire transports, frame n+1 after
// frame n's reply), so batching pressure comes from cross-session concurrency
// exactly as in live serving. With Verify set, every trace is re-run through
// the offline simulator and the served results must match bit-for-bit —
// including results that travelled over a wire protocol, through a loopback
// server or a remote daemon or router at spec.Addr.
func Replay(spec ReplaySpec, traces map[string][]trace.Record) (Report, error) {
	spec, err := spec.normalized()
	if err != nil {
		return Report{}, err
	}
	ids := make([]string, 0, len(traces))
	total := 0
	for id, recs := range traces {
		ids = append(ids, id)
		total += len(recs)
	}
	sort.Strings(ids)
	if spec.Proto == "direct" {
		return replayDirect(spec, traces, ids, total)
	}
	return replayWire(spec, traces, ids, total)
}

// pacing returns the per-access submit interval for the aggregate QPS target.
func pacing(qps float64, sessions int) time.Duration {
	if qps <= 0 || sessions == 0 {
		return 0
	}
	perSession := qps / float64(sessions)
	return time.Duration(float64(time.Second) / perSession)
}

// replayDirect drives the engine with in-process calls.
func replayDirect(spec ReplaySpec, traces map[string][]trace.Record, ids []string, total int) (Report, error) {
	e := spec.Engine
	// Track which sessions this replay has opened and not yet closed, and
	// close the leftovers on every exit path: any early error return (a
	// mid-loop Open conflict, an Access failure, a Close failure) used to
	// leak the remaining open sessions — their actors, inboxes, and learner
	// taps — into the engine forever.
	open := make(map[string]bool, len(ids))
	defer func() {
		for id := range open {
			e.Close(id) // best effort; the engine logs nothing for replays
		}
	}()
	for _, id := range ids {
		if err := e.Open(id, spec.Prefetcher, spec.Degree); err != nil {
			return Report{}, err
		}
		open[id] = true
	}

	interval := pacing(spec.QPS, len(ids))
	hists := make([]*metrics.Histogram, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	start := time.Now()
	for i, id := range ids {
		hists[i] = &metrics.Histogram{}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			next := time.Now()
			for _, rec := range traces[id] {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				if _, err := e.Access(id, rec); err != nil {
					errs[i] = err
					return
				}
				hists[i].ObserveDuration(time.Since(t0))
			}
		}(i, id)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}

	results := make(map[string]sim.Result, len(ids))
	for _, id := range ids {
		res, err := e.Close(id)
		delete(open, id) // even a failed Close means this replay no longer owns it
		if err != nil {
			return Report{}, err
		}
		results[id] = res
	}
	return finishReport(spec, traces, ids, results, hists, wall, total)
}

// replayWire replays over a wire protocol: one connection per session, each
// pumping its trace in Batch-sized frames (binary) or pipelined access bursts
// (json). With an Addr target the sessions dial the remote daemon or router;
// with an Engine target they dial a loopback TCP server wrapping it. Session
// results come back over the wire via the close verb, so Verify proves
// bit-identity end to end through the chosen protocol's codec — and, when the
// target is a router, through its sharding and migration machinery.
func replayWire(spec ReplaySpec, traces map[string][]trace.Record, ids []string, total int) (Report, error) {
	e := spec.Engine
	addr := spec.Addr
	if e != nil {
		srv := NewServer(e)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Report{}, err
		}
		go srv.Serve(ln)
		defer srv.Stop()
		addr = ln.Addr().String()
	}

	open := make(map[string]bool, len(ids))
	clients := make(map[string]*Client, len(ids))
	defer func() {
		// Reclaim sessions on early error exits: engine targets close
		// in-process (robust even when the session's own conn died); remote
		// targets get a best-effort close over the session's client.
		for id := range open {
			if e != nil {
				e.Close(id)
			} else if c := clients[id]; c != nil {
				c.CloseSession(id)
			}
		}
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, id := range ids {
		c, err := spec.dial(addr)
		if err != nil {
			return Report{}, err
		}
		clients[id] = c
		if err := c.Open(id, spec.Prefetcher, spec.Degree); err != nil {
			return Report{}, err
		}
		open[id] = true
	}

	batch := spec.Batch
	interval := pacing(spec.QPS, len(ids))
	hists := make([]*metrics.Histogram, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	start := time.Now()
	for i, id := range ids {
		hists[i] = &metrics.Histogram{}
		wg.Add(1)
		go func(i int, id string, c *Client) {
			defer wg.Done()
			recs := traces[id]
			next := time.Now()
			for lo := 0; lo < len(recs); lo += batch {
				hi := lo + batch
				if hi > len(recs) {
					hi = len(recs)
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval * time.Duration(hi-lo))
				}
				t0 := time.Now()
				if _, err := c.AccessBatch(id, recs[lo:hi]); err != nil {
					errs[i] = err
					return
				}
				hists[i].ObserveDuration(time.Since(t0))
			}
		}(i, id, clients[id])
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}

	results := make(map[string]sim.Result, len(ids))
	for _, id := range ids {
		res, err := clients[id].CloseSession(id)
		delete(open, id)
		if err != nil {
			return Report{}, err
		}
		results[id] = res
	}
	return finishReport(spec, traces, ids, results, hists, wall, total)
}

// finishReport folds per-session results, the optional offline verification,
// latency percentiles, and (for engine targets) batcher counters into a
// Report.
func finishReport(spec ReplaySpec, traces map[string][]trace.Record,
	ids []string, results map[string]sim.Result, hists []*metrics.Histogram,
	wall time.Duration, total int) (Report, error) {

	rep := Report{WallSeconds: wall.Seconds()}
	if wall > 0 {
		rep.Throughput = float64(total) / wall.Seconds()
	}
	var lat metrics.Histogram
	for _, h := range hists {
		lat.Merge(h)
	}
	rep.Latency = lat.Summarize()

	merged := make([]sim.Result, 0, len(ids))
	for _, id := range ids {
		res := results[id]
		sr := SessionReport{ID: id, Result: res}
		if spec.Verify {
			off, err := spec.offline(spec.Prefetcher, spec.Degree, nil, traces[id])
			if err != nil {
				return Report{}, err
			}
			sr.Offline = off
			sr.Identical = sr.Offline == sr.Result
		}
		rep.Sessions = append(rep.Sessions, sr)
		merged = append(merged, res)
	}
	rep.Merged = sim.Merge(merged)
	if spec.Verify {
		rep.Verified = true
		for _, sr := range rep.Sessions {
			if !sr.Identical {
				rep.Verified = false
			}
		}
	}
	if e := spec.Engine; e != nil {
		for _, b := range e.allBatchers() {
			batches, batched, biggest := b.stats()
			rep.Batches += batches
			rep.Batched += batched
			if biggest > rep.MaxBatch {
				rep.MaxBatch = biggest
			}
		}
		rep.AB = e.abStats()
		if t := e.TenantAdmissions(); len(t) > 0 {
			rep.Tenants = t
		}
	}
	return rep, nil
}

// String renders a replay report for the CLI.
func (r Report) String() string {
	s := fmt.Sprintf("replayed %d sessions, %d accesses in %.2fs (%.0f acc/s)\n",
		len(r.Sessions), r.Merged.Accesses, r.WallSeconds, r.Throughput)
	s += fmt.Sprintf("request latency: %s\n", r.Latency)
	if r.Batched > 0 {
		avg := float64(r.Batched) / float64(r.Batches)
		s += fmt.Sprintf("model batches: %d serving %d queries (avg %.1f, max %d per batch)\n",
			r.Batches, r.Batched, avg, r.MaxBatch)
	}
	if r.AB != nil && r.AB.Labels > 0 {
		s += fmt.Sprintf("student A/B: %.1f%% label agreement with teacher over %d batches (%d labels)\n",
			r.AB.Rate*100, r.AB.Batches, r.AB.Labels)
	}
	for _, sr := range r.Sessions {
		mark := ""
		if sr.Identical {
			mark = "  [= offline]"
		}
		s += fmt.Sprintf("  %-12s IPC %.3f  acc %5.1f%%  misses %d  issued %d%s\n",
			sr.ID, sr.Result.IPC, sr.Result.Accuracy()*100,
			sr.Result.DemandMisses, sr.Result.PrefetchIssued, mark)
	}
	return s
}
