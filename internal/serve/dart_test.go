package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/online"
	"dart/internal/tabular"
)

// testDartLearner is testStudentLearner with the dart (tabularized) tier
// enabled on a small deterministic kernel config.
func testDartLearner(t testing.TB, dir string) *online.Learner {
	t.Helper()
	data := onlineTestData()
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 8, DFF: 16, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
	scfg := nn.StudentConfig(tcfg)
	l, err := online.NewLearner(online.Config{
		Data: data, New: onlineTestArch(data), Dir: dir,
		BatchSize: 8, Tick: time.Millisecond, SwapInterval: -1, Duty: 0.5,
		Latency: 25, StorageBytes: 1 << 14,
		Student: func() nn.Layer {
			return nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(31)))
		},
		DistillInterval: -1, StudentLatency: 10, StudentStorageBytes: 1 << 12,
		Dart: true,
		Tabular: tabular.Config{
			Kernel: tabular.KernelConfig{K: 4, C: 1, Kind: tabular.EncoderLSH},
			Seed:   17,
		},
		TabularizeInterval: -1, DartSamples: 32,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// waitForExamples blocks until the learner's reservoir can feed a
// tabularization cycle.
func waitForExamples(t *testing.T, l *online.Learner, want uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for l.Stats().Examples < want {
		if time.Now().After(deadline) {
			t.Fatalf("examples never assembled: %+v", l.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAllClassesHotSwapMidReplay is the cross-class race matrix: sessions
// pinned to all three serving classes (teacher "online", "student", "dart")
// stream concurrently while swap, rollback, and re-tabularize fire against
// every class. Zero dropped and zero reordered accesses per session — and
// after a drain + restart, every class recovers its newest good version from
// the shared checkpoint directory (the acceptance bar).
func TestAllClassesHotSwapMidReplay(t *testing.T) {
	dir := t.TempDir()
	l := testDartLearner(t, dir)
	l.Start()

	e := NewEngine(Config{SimCfg: smallSimCfg(), Online: l})
	classes := []string{"online", "student", "dart"}
	const perClass, n = 2, 1500
	sessions := perClass * len(classes)
	type obs struct{ seqs []uint64 }
	got := make([]obs, sessions)
	var mu sync.Mutex
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		ids[i] = fmt.Sprintf("%s%d", classes[i%len(classes)], i)
		if err := e.Open(ids[i], classes[i%len(classes)], 4); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer every class's swap and rollback paths while the replay runs.
	// Early dart swaps fail until the reservoir fills, and rollbacks fail
	// until a class holds two versions — both are expected and retried.
	stop := make(chan struct{})
	var dartSwaps atomic.Uint64
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(4 * time.Millisecond):
			}
			switch i % 6 {
			case 0:
				l.Swap()
			case 1:
				l.SwapStudent()
			case 2:
				if _, err := l.SwapDart(); err == nil {
					dartSwaps.Add(1)
				}
			case 3:
				l.Rollback()
			case 4:
				l.RollbackStudent()
			case 5:
				l.RollbackDart()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, rec := range sessionTrace(int64(i), n) {
				err := e.Submit(ids[i], rec, func(r Response) {
					mu.Lock()
					got[i].seqs = append(got[i].seqs, r.Seq)
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("%s: %v", ids[i], err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	res := e.Drain()
	close(stop)
	hammerWG.Wait()

	if dartSwaps.Load() == 0 {
		t.Fatal("no dart table was ever published mid-replay; the test proved nothing")
	}
	for i := 0; i < sessions; i++ {
		o := got[i]
		if len(o.seqs) != n {
			t.Fatalf("session %s: %d responses, want %d (dropped accesses)", ids[i], len(o.seqs), n)
		}
		for j, s := range o.seqs {
			if s != uint64(j+1) {
				t.Fatalf("session %s: response %d has seq %d (reordered)", ids[i], j, s)
			}
		}
		if res[ids[i]].Accesses != n {
			t.Fatalf("session %s result counted %d accesses, want %d", ids[i], res[ids[i]].Accesses, n)
		}
	}
	if st := l.Stats(); st.Sessions != 0 {
		t.Fatalf("%d taps still attached after drain", st.Sessions)
	}
	l.Stop()
	curTeacher := l.Serving().Version
	curStudent := l.StudentServing().Version
	curDart := l.DartServing().Version

	// Restart: all three classes recover their newest good version from the
	// shared directory.
	l2 := testDartLearner(t, dir)
	if got := l2.Serving(); got == nil || got.Version != curTeacher {
		t.Fatalf("teacher recovered %+v, want v%d", got, curTeacher)
	}
	if got := l2.StudentServing(); got == nil || got.Version != curStudent {
		t.Fatalf("student recovered %+v, want v%d", got, curStudent)
	}
	if got := l2.DartServing(); got == nil || got.Version != curDart {
		t.Fatalf("dart recovered %+v, want v%d", got, curDart)
	}
}

// TestDartInferFallsBackToStudent: while no table version exists, the dart
// inference path must serve the (mirrored) student and report the student's
// version instead of failing, and the mirror must track student publishes.
func TestDartInferFallsBackToStudent(t *testing.T) {
	l := testDartLearner(t, "")
	mirror := newMirror(l.StudentStore())
	data := onlineTestData()
	in := mat.NewTensor(2, data.History, data.InputDim())
	for i := range in.Data {
		in.Data[i] = float64(i%5) / 5
	}
	out, ver := dartInfer(nil, mirror, in)
	if out == nil || len(out.Data) != 2*data.OutputDim() {
		t.Fatalf("fallback produced no logits: %+v", out)
	}
	if want := l.StudentServing().Version; ver != want {
		t.Fatalf("fallback reported version %d, want student v%d", ver, want)
	}
	if _, err := l.SwapStudent(); err != nil {
		t.Fatal(err)
	}
	_, ver = dartInfer(nil, mirror, in)
	if want := l.StudentServing().Version; ver != want {
		t.Fatalf("fallback reported stale version %d after swap to v%d", ver, want)
	}
}

// TestDartProtocolVerbs drives the dart class selector and the classes verb
// over a real socket: dart sessions stream (their taps feed the reservoir),
// swap with class "dart" force-tabularizes, classes lists all three tiers,
// rollback reverts the table, and the teacher/student sequences stay put.
func TestDartProtocolVerbs(t *testing.T) {
	l := testDartLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)

	if rep := rpc(t, conn, br, Request{Op: "open", Session: "s1", Prefetcher: "dart", Degree: 4}); !rep.OK {
		t.Fatalf("open dart session failed: %s", rep.Err)
	}
	for i, rec := range sessionTrace(5, 400) {
		rep := rpc(t, conn, br, Request{
			Op: "access", Session: "s1",
			InstrID: rec.InstrID, PC: Hex64(rec.PC), Addr: Hex64(rec.Addr), IsLoad: rec.IsLoad,
		})
		if !rep.OK {
			t.Fatalf("access %d failed: %s", i, rep.Err)
		}
	}
	waitForExamples(t, l, 64)

	// Before any table exists the model verb reports dart v0.
	mo := rpc(t, conn, br, Request{Op: "model", Class: "dart"})
	if !mo.OK || mo.Online == nil || mo.Online.DartVersion != 0 {
		t.Fatalf("model reply %+v", mo.Online)
	}
	teacherBefore, studentBefore := mo.Online.Version, mo.Online.StudentVersion

	sw := rpc(t, conn, br, Request{Op: "swap", Class: "dart"})
	if !sw.OK || sw.Version != 1 {
		t.Fatalf("dart swap reply %+v", sw)
	}
	if sw.Online.Version != teacherBefore || sw.Online.StudentVersion != studentBefore {
		t.Fatalf("dart swap moved a model class: %+v", sw.Online)
	}
	if sw.Online.Tabularized != 1 || sw.Online.DartPublished != 1 {
		t.Fatalf("tabularizer counters did not move: %+v", sw.Online)
	}

	cl := rpc(t, conn, br, Request{Op: "classes"})
	if !cl.OK || len(cl.Classes) != 3 {
		t.Fatalf("classes reply %+v", cl.Classes)
	}
	byName := map[string]ClassReply{}
	for _, c := range cl.Classes {
		byName[c.Class] = c
	}
	if byName["dart"].Version != 1 || byName["dart"].Published != 1 {
		t.Fatalf("dart class row %+v", byName["dart"])
	}
	if byName["teacher"].Version != teacherBefore || byName["student"].Version != studentBefore {
		t.Fatalf("class rows %+v", byName)
	}
	if byName["dart"].Latency <= 0 || byName["dart"].StorageBytes <= 0 {
		t.Fatalf("dart class has no cost model: %+v", byName["dart"])
	}

	// Second swap then rollback: the table sequence moves independently.
	if rep := rpc(t, conn, br, Request{Op: "swap", Class: "dart"}); !rep.OK || rep.Version != 2 {
		t.Fatalf("second dart swap reply %+v", rep)
	}
	rb := rpc(t, conn, br, Request{Op: "rollback", Class: "dart"})
	if !rb.OK || rb.Version != 1 {
		t.Fatalf("dart rollback reply %+v", rb)
	}

	if rep := rpc(t, conn, br, Request{Op: "close", Session: "s1"}); !rep.OK {
		t.Fatalf("close failed: %s", rep.Err)
	}
}

// TestDartVerbsWithoutTier: the dart class selector must fail cleanly on a
// learner without the tier, "dart" sessions must not open against it (no
// static model either), and the classes verb must list only the tiers that
// exist.
func TestDartVerbsWithoutTier(t *testing.T) {
	l := testLearner(t, "")
	l.Start()
	defer l.Stop()
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg(), Online: l})
	defer stopSrv()
	br := bufio.NewReader(conn)
	for _, op := range []string{"model", "swap", "rollback"} {
		rep := rpc(t, conn, br, Request{Op: op, Class: "dart"})
		if rep.OK || rep.Err == "" {
			t.Fatalf("%s class=dart on a tier-less learner: %+v", op, rep)
		}
	}
	if rep := rpc(t, conn, br, Request{Op: "open", Session: "x", Prefetcher: "dart"}); rep.OK {
		t.Fatal("dart session opened without a dart tier or static model")
	}
	cl := rpc(t, conn, br, Request{Op: "classes"})
	if !cl.OK || len(cl.Classes) != 1 || cl.Classes[0].Class != "teacher" {
		t.Fatalf("classes on a teacher-only learner: %+v", cl.Classes)
	}
}

// TestClassesVerbWithoutLearner: classes must fail cleanly with no learner.
func TestClassesVerbWithoutLearner(t *testing.T) {
	conn, _, stopSrv := startServer(t, Config{SimCfg: smallSimCfg()})
	defer stopSrv()
	br := bufio.NewReader(conn)
	rep := rpc(t, conn, br, Request{Op: "classes"})
	if rep.OK || rep.Err == "" {
		t.Fatalf("classes on a learner-less engine: %+v", rep)
	}
}
