package serve

import (
	"math/rand"
	"testing"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/tabular"
)

// quantMatrixHierarchy tabularizes one deterministic transformer predictor at
// the given stored width: identical network, fit set, and kernel seeds across
// calls, so a float64 and an int8 hierarchy from this helper differ only in
// how their tables store entries.
func quantMatrixHierarchy(t testing.TB, data dataprep.Config, bits int) *tabular.Hierarchy {
	t.Helper()
	tcfg := nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 8, DFF: 16, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
	net := nn.NewTransformerPredictor(tcfg, rand.New(rand.NewSource(11)))
	rng := rand.New(rand.NewSource(23))
	fit := mat.NewTensor(32, data.History, data.InputDim())
	for i := range fit.Data {
		fit.Data[i] = rng.NormFloat64()
	}
	cfg := tabular.Config{
		Kernel: tabular.KernelConfig{K: 4, C: 1, Kind: tabular.EncoderLSH, DataBits: bits},
		Seed:   17,
	}
	return tabular.Tabularize(net, fit, cfg).Hierarchy
}

// TestQuantizedMatrixAccuracyWithinEpsilon is the end-to-end acceptance bar
// for quantization: the same mixed-tenant scenario matrix replayed against a
// float64 dart table and against its int8 twin must land within a fixed
// prefetch-accuracy epsilon on every dart tenant. Both engines serve a
// static Model (no learner), so each replay is deterministic — the engine's
// core contract pins served results bit-identical to offline simulation —
// and the comparison cannot flake on training timing. The classical-baseline
// tenant doubles as a control: its sessions never touch the model, so its
// merged result must be bit-identical between the two runs.
func TestQuantizedMatrixAccuracyWithinEpsilon(t *testing.T) {
	data := dataprep.Default()
	twoLevel := twoLevelTestCfg()
	tenants := []TenantSpec{
		{Name: "batch", Workload: "milc", Class: "stride", N: 600},
		{Name: "svc", Workload: "chase", Class: "dart", Sessions: 2, N: 600, Weight: 2},
		{Name: "kv", Workload: "zipf", Class: "dart", N: 600, SimCfg: &twoLevel},
		{Name: "adv", Workload: "phase", Class: "dart", N: 600, Seed: 5},
	}
	run := func(h *tabular.Hierarchy) MatrixReport {
		e := NewEngine(Config{
			SimCfg: smallSimCfg(), MaxBatch: 8,
			Model: h, Data: data,
			ModelLatency: 37, ModelStorage: h.Cost().StorageBytes(),
		})
		rep, err := ReplayMatrix(ReplaySpec{Engine: e, Batch: 32, Tenants: tenants})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatalf("matrix incomplete: %+v", rep)
		}
		return rep
	}

	hf := quantMatrixHierarchy(t, data, 0)
	hq := quantMatrixHierarchy(t, data, 8)
	// Sanity that the comparison is between genuinely different widths. (The
	// >=4x shrink gate runs in dart-benchcheck at the serving config, where
	// the table payload dominates; this tiny fixture carries proportionally
	// more float64 layernorm/sigmoid overhead.)
	if fb, qb := hf.Cost().StorageBytes(), hq.Cost().StorageBytes(); qb*2 > fb {
		t.Fatalf("int8 hierarchy %d B not >=2x below float %d B", qb, fb)
	}
	repF := run(hf)
	repQ := run(hq)

	const eps = 0.02
	for i := range repF.Tenants {
		tf, tq := repF.Tenants[i], repQ.Tenants[i]
		if tf.Class != "dart" {
			if tf.Merged != tq.Merged {
				t.Fatalf("control tenant %q diverged between runs:\nfloat %+v\nint8  %+v",
					tf.Tenant, tf.Merged, tq.Merged)
			}
			continue
		}
		if tf.Merged.PrefetchIssued == 0 || tq.Merged.PrefetchIssued == 0 {
			t.Fatalf("dart tenant %q issued no prefetches (float %d, int8 %d) — epsilon check vacuous",
				tf.Tenant, tf.Merged.PrefetchIssued, tq.Merged.PrefetchIssued)
		}
		af, aq := tf.Merged.Accuracy(), tq.Merged.Accuracy()
		if d := af - aq; d > eps || d < -eps {
			t.Fatalf("dart tenant %q: prefetch accuracy %.4f (float) vs %.4f (int8), |delta| > %.2f",
				tf.Tenant, af, aq, eps)
		}
	}
}
