package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

// startWireServer spins up a dual-protocol server on a loopback TCP listener
// and returns its address.
func startWireServer(t testing.TB, cfg Config) (string, *Server) {
	t.Helper()
	srv := NewServer(NewEngine(cfg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown() })
	return ln.Addr().String(), srv
}

// TestBinaryProtocolEndToEnd drives the DARTWIRE1 protocol through a real
// socket — handshake, open, access and batch hot frames, control verbs,
// close — and checks every per-access reply against a lockstep local
// simulator plus the final result against the offline run.
func TestBinaryProtocolEndToEnd(t *testing.T) {
	addr, _ := startWireServer(t, Config{SimCfg: smallSimCfg()})
	c, err := Dial(addr, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open("b1", "stride", 4); err != nil {
		t.Fatal(err)
	}

	recs := sessionTrace(42, 1000)
	local := sim.NewSim(prefetch.NewStride(4), smallSimCfg())
	var seq uint64
	for lo := 0; lo < len(recs); lo += 33 { // odd batch size: exercises both frame kinds
		hi := lo + 33
		if hi > len(recs) {
			hi = len(recs)
		}
		res, err := c.AccessBatch("b1", recs[lo:hi])
		if err != nil {
			t.Fatalf("batch at %d: %v", lo, err)
		}
		if len(res) != hi-lo {
			t.Fatalf("batch at %d returned %d results, want %d", lo, len(res), hi-lo)
		}
		for i, ar := range res {
			seq++
			st := local.Step(recs[lo+i])
			if ar.Seq != seq || ar.Hit != st.Hit || ar.Late != st.Late {
				t.Fatalf("access %d: wire {seq %d hit %v late %v}, local {seq %d hit %v late %v}",
					lo+i, ar.Seq, ar.Hit, ar.Late, seq, st.Hit, st.Late)
			}
			if len(ar.Prefetches) != len(st.Prefetches) {
				t.Fatalf("access %d: wire issued %v, local %v", lo+i, ar.Prefetches, st.Prefetches)
			}
			for k := range ar.Prefetches {
				if ar.Prefetches[k] != st.Prefetches[k] {
					t.Fatalf("access %d: wire issued %v, local %v", lo+i, ar.Prefetches, st.Prefetches)
				}
			}
		}
	}

	// Control verbs ride JSON-in-control-frames over the same connection.
	rep, err := c.Do(Request{Op: "stats"})
	if err != nil || !rep.OK || rep.Stats == nil {
		t.Fatalf("stats over binary: %+v, %v", rep, err)
	}
	if rep.Stats.Accepted != uint64(len(recs)) || rep.Stats.Sessions != 1 {
		t.Fatalf("stats accepted %d sessions %d, want %d/1", rep.Stats.Accepted, rep.Stats.Sessions, len(recs))
	}
	if rep, err := c.Do(Request{Op: "teleport"}); err != nil || rep.OK {
		t.Fatalf("unknown op over binary: %+v, %v", rep, err)
	}

	res, err := c.CloseSession("b1")
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(recs, prefetch.NewStride(4), smallSimCfg())
	if res != want {
		t.Fatalf("wire result differs from offline:\n got %+v\nwant %+v", res, want)
	}
}

// TestBinaryUnknownSessionKeepsConnection: an application-level error (access
// to a session that does not exist) answers with an error frame but must not
// kill the connection — only framing corruption does that.
func TestBinaryUnknownSessionKeepsConnection(t *testing.T) {
	addr, _ := startWireServer(t, Config{SimCfg: smallSimCfg()})
	c, err := Dial(addr, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs := sessionTrace(7, 4)
	if _, err := c.AccessBatch("ghost", recs); err == nil {
		t.Fatal("access to unknown session succeeded")
	} else if !strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Same connection still works.
	if err := c.Open("alive", "stride", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AccessBatch("alive", recs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CloseSession("alive"); err != nil {
		t.Fatal(err)
	}
}

// TestReplayWireBitIdentity is the cross-protocol acceptance check: the same
// traces replayed in-process, over JSON lines, and over DARTWIRE1 binary
// framing must produce bit-identical per-session results — each run verified
// against the offline simulator, and the merged results compared across
// transports.
func TestReplayWireBitIdentity(t *testing.T) {
	traces := map[string][]trace.Record{
		"a": sessionTrace(1, 700),
		"b": sessionTrace(2, 700),
		"c": sessionTrace(3, 700),
	}
	merged := map[string]sim.Result{}
	for _, proto := range []string{"direct", "json", "binary"} {
		e := NewEngine(Config{SimCfg: smallSimCfg()})
		rep, err := Replay(ReplaySpec{
			Engine:     e,
			Prefetcher: "stride", Degree: 4, Verify: true, Proto: proto, Batch: 17,
		}, traces)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !rep.Verified {
			t.Fatalf("%s: served results are not bit-identical to the offline simulator: %+v", proto, rep.Sessions)
		}
		if rep.Merged.Accesses != 3*700 {
			t.Fatalf("%s: merged %d accesses, want %d", proto, rep.Merged.Accesses, 3*700)
		}
		merged[proto] = rep.Merged
		e.Drain()
	}
	if merged["json"] != merged["direct"] || merged["binary"] != merged["direct"] {
		t.Fatalf("transports disagree:\ndirect %+v\njson   %+v\nbinary %+v",
			merged["direct"], merged["json"], merged["binary"])
	}

	if _, err := Replay(ReplaySpec{
		Engine: NewEngine(Config{SimCfg: smallSimCfg()}), Proto: "telepathy",
	}, traces); err == nil {
		t.Fatal("unknown replay protocol accepted")
	}
}

// wireHandshake dials addr raw and completes the DARTWIRE1 banner exchange.
func wireHandshake(t *testing.T, addr string) (*net.TCPConn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(wireMagic)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var echo [len(wireMagic)]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		t.Fatalf("handshake echo: %v", err)
	}
	return conn.(*net.TCPConn), br
}

// TestWireMalformedFrames is the corruption matrix: every class of broken
// frame must draw an error frame (when the server can still attribute one),
// kill only that connection — loudly, never with a panic — and leave the
// server accepting fresh connections.
func TestWireMalformedFrames(t *testing.T) {
	addr, _ := startWireServer(t, Config{SimCfg: smallSimCfg()})
	recs := sessionTrace(11, 4)
	valid := appendWireRequest(nil, frameBatch, 1, "s", recs)

	reframe := func(kind byte, payload []byte) []byte {
		f := beginFrame(nil, kind)
		f = append(f, payload...)
		return finishFrame(f, 0)
	}
	cases := []struct {
		name  string
		bytes []byte
		want  string // substring of the error frame's message
	}{
		{
			name:  "truncated-frame",
			bytes: valid[:len(valid)-3],
			want:  "truncated",
		},
		{
			name: "crc-flip",
			bytes: func() []byte {
				f := append([]byte(nil), valid...)
				f[len(f)-1] ^= 0x40 // flip a payload byte, keep the header CRC
				return f
			}(),
			want: "CRC mismatch",
		},
		{
			name: "oversized-length",
			bytes: func() []byte {
				f := append([]byte(nil), valid[:wireHeaderLen]...)
				binary.BigEndian.PutUint32(f[1:], maxWirePayload+1)
				return f
			}(),
			want: "max",
		},
		{
			name:  "garbage-varint",
			bytes: reframe(frameAccess, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}),
			want:  "varint",
		},
		{
			name:  "batch-count-overflow",
			bytes: reframe(frameBatch, append(appendUvarints(nil, 1, 1, 's'), appendUvarints(nil, 1<<30)...)),
			want:  "count",
		},
		{
			name:  "unknown-kind",
			bytes: reframe(0x42, []byte{1}),
			want:  "unknown wire frame kind",
		},
		{
			name:  "trailing-bytes",
			bytes: reframe(frameBatch, append(append([]byte(nil), valid[wireHeaderLen:]...), 0, 0, 0)),
			want:  "trailing",
		},
		{
			name:  "bad-control-json",
			bytes: reframe(frameControl, []byte("not json")),
			want:  "bad control frame",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, br := wireHandshake(t, addr)
			defer conn.Close()
			if _, err := conn.Write(tc.bytes); err != nil {
				t.Fatal(err)
			}
			conn.CloseWrite() // flush truncations through to the reader
			rd := wireReader{br: br}
			kind, p, err := rd.next()
			if err != nil {
				t.Fatalf("no error frame before close: %v", err)
			}
			if kind != frameError {
				t.Fatalf("reply frame kind 0x%02x, want error frame", kind)
			}
			if _, werr := wireErr(p); !strings.Contains(werr.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", werr, tc.want)
			}
			// The connection must be closed after the error frame.
			if _, _, err := rd.next(); err != io.EOF {
				t.Fatalf("connection still open after corruption: %v", err)
			}
		})
	}

	// A client that opens with a wrong 'D'-prefixed banner gets a plain-text
	// rejection instead of a frame (it never completed the handshake).
	t.Run("bad-magic", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("DARTWIRE9")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil || !strings.Contains(line, "bad protocol magic") {
			t.Fatalf("banner rejection %q, %v", line, err)
		}
	})

	// After every corrupted connection, the server must still serve.
	c, err := Dial(addr, "binary")
	if err != nil {
		t.Fatalf("server no longer accepting after corrupt frames: %v", err)
	}
	defer c.Close()
	if err := c.Open("after", "stride", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AccessBatch("after", recs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CloseSession("after"); err != nil {
		t.Fatal(err)
	}
}

// appendUvarints appends each value as a uvarint (test frame construction).
func appendUvarints(buf []byte, vals ...uint64) []byte {
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// TestWireCodecRoundTrip pins the record codec itself, including the uint64
// edges the delta encoding must survive (wraparound, max values).
func TestWireCodecRoundTrip(t *testing.T) {
	recs := []trace.Record{
		{InstrID: 100, PC: 0xdead, Addr: 1 << 40, IsLoad: true},
		{InstrID: 90, PC: 0, Addr: ^uint64(0), IsLoad: false}, // non-monotone id
		{InstrID: ^uint64(0), PC: ^uint64(0), Addr: 0, IsLoad: true},
		{InstrID: 0, PC: 7, Addr: 64, IsLoad: false},
	}
	frame := appendWireRequest(nil, frameBatch, 99, "edge", recs)
	var j wireJob
	sid, err := decodeJob(frameBatch, frame[wireHeaderLen:], &j)
	if err != nil {
		t.Fatal(err)
	}
	if string(sid) != "edge" || j.tag != 99 || j.kind != frameBatchReply {
		t.Fatalf("decoded sid=%q tag=%d kind=%#x", sid, j.tag, j.kind)
	}
	if len(j.recs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(j.recs), len(recs))
	}
	for i := range recs {
		if j.recs[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, j.recs[i], recs[i])
		}
	}
}

// TestBinaryHotPathZeroAlloc is the tentpole's regression gate in unit-test
// form: the steady-state decode→infer→encode path of a binary batch frame
// must perform zero heap allocations per frame. The session actor is
// constructed by hand (not started) so the whole pipeline runs on the test
// goroutine under testing.AllocsPerRun.
func TestBinaryHotPathZeroAlloc(t *testing.T) {
	pf, err := prefetch.NewRegistry().New("stride", 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &session{id: "z", sim: sim.NewSim(pf, smallSimCfg())}
	recs := sessionTrace(5, 64)
	frame := appendWireRequest(nil, frameBatch, 7, "z", recs)
	payload := frame[wireHeaderLen:]
	out := make(chan *wireJob, 1)
	j := &wireJob{out: out}
	step := func() {
		if _, err := decodeJob(frameBatch, payload, j); err != nil {
			t.Fatal(err)
		}
		s.runJob(j)
		<-out
	}
	// Warm up: size the record slice, the reply buffer, the simulator's
	// in-flight map, and the prefetcher's tables.
	for i := 0; i < 16; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("binary hot path allocates %.1f times per 64-access frame, want 0", allocs)
	}
}

// TestErrorPathZeroAlloc pins the interned protocol errors: hammering a dead
// session id — engine lookup plus the error frame encode — must not churn
// garbage.
func TestErrorPathZeroAlloc(t *testing.T) {
	e := NewEngine(Config{SimCfg: smallSimCfg()})
	defer e.Drain()
	rec := trace.Record{InstrID: 1, Addr: 1 << 20, IsLoad: true}
	var buf []byte
	step := func() {
		err := e.Submit("nope", rec, nil)
		if !errors.Is(err, ErrUnknownSession) {
			t.Fatalf("Submit to unknown session: %v", err)
		}
		buf = appendErrorFrame(buf[:0], 3, err)
	}
	step() // size the frame buffer
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("unknown-session error path allocates %.1f times per access, want 0", allocs)
	}
}

// BenchmarkWireCodec measures one 64-record batch frame through the encoder
// and decoder back to back — the pure codec cost, no socket. Gated (ns and
// allocs) by cmd/dart-benchcheck against BENCH_serve.json's binary section.
func BenchmarkWireCodec(b *testing.B) {
	recs := sessionTrace(3, 64)
	var frame []byte
	var j wireJob
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = appendWireRequest(frame[:0], frameBatch, uint64(i), "codec", recs)
		if _, err := decodeJob(frameBatch, frame[wireHeaderLen:], &j); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireAccess measures the full served access path over a loopback
// socket: client encode → server decode → session actor step → reply encode
// → client decode, in frames of 64. ns/op and allocs/op are per access.
func benchWireAccess(b *testing.B, proto string) {
	addr, _ := startWireServer(b, Config{SimCfg: smallSimCfg()})
	c, err := Dial(addr, proto)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Open("bench", "stride", 4); err != nil {
		b.Fatal(err)
	}
	recs := sessionTrace(9, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		lo := n % len(recs)
		hi := lo + 64
		if hi > len(recs) {
			hi = len(recs)
		}
		if hi-lo > b.N-n {
			hi = lo + b.N - n
		}
		if _, err := c.AccessBatch("bench", recs[lo:hi]); err != nil {
			b.Fatal(err)
		}
		n += hi - lo
	}
}

// BenchmarkWireAccessBinary is gated (ns and allocs) by cmd/dart-benchcheck.
func BenchmarkWireAccessBinary(b *testing.B) { benchWireAccess(b, "binary") }

// BenchmarkWireAccessJSON is the debug protocol's cost for comparison.
func BenchmarkWireAccessJSON(b *testing.B) { benchWireAccess(b, "json") }
