package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"dart/internal/sim"
	"dart/internal/trace"
)

// Client is a synchronous client for the daemon's wire protocols. It speaks
// either encoding over one connection — line-delimited JSON, or DARTWIRE1
// binary framing with the hot verbs packed as varint records and every other
// verb riding as JSON inside control frames (see docs/PROTOCOL.md).
//
// A Client is not safe for concurrent use; the replay drivers hold one per
// session. Its request and reply buffers are reused across calls, so in
// steady state a binary-protocol access batch allocates nothing.
//
// A transport-level failure — a dead connection, a timeout, a corrupt frame —
// poisons the client: the first root cause is recorded and every subsequent
// call returns it (wrapped), never a bare io.EOF. Application-level errors
// (unknown session, bad verb) leave the connection usable.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	binary  bool
	rd      wireReader     // binary frame reader
	sc      *bufio.Scanner // JSON line reader
	tag     uint64         // binary request tag (echoed by replies)
	timeout time.Duration  // per-call connection deadline; 0 = none
	batch   int            // preferred accesses per frame (WithBatchSize)
	err     error          // sticky first transport failure
	buf     []byte         // request build buffer
	one     [1]trace.Record
	res     []AccessResult // reply decode buffer, reused across calls
	pf      []uint64       // backing store for AccessResult.Prefetches
}

// AccessResult is one served access decoded from either protocol.
type AccessResult struct {
	Seq     uint64
	Hit     bool
	Late    bool
	Version uint64
	// Prefetches aliases a client-owned buffer, valid until the next call.
	Prefetches []uint64
}

// errClientClosed poisons a client whose own Close was called.
var errClientClosed = errors.New("serve: client closed")

// newClient wraps an established connection per the Connect options. proto
// "binary" performs the DARTWIRE1 handshake (send the magic, require the
// server's echo) before returning; "json" needs no handshake — the server
// negotiates off the first byte of the first request line.
func newClient(conn net.Conn, o clientOptions) (*Client, error) {
	if o.batch <= 0 {
		o.batch = 64
	}
	c := &Client{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16),
		timeout: o.timeout, batch: o.batch}
	br := bufio.NewReaderSize(conn, 1<<16)
	switch o.proto {
	case "json":
		c.sc = bufio.NewScanner(br)
		c.sc.Buffer(make([]byte, 1<<20), 1<<20)
	case "binary":
		c.binary = true
		c.rd.br = br
		c.arm()
		if _, err := c.bw.WriteString(wireMagic); err != nil {
			return nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, err
		}
		var echo [len(wireMagic)]byte
		if _, err := io.ReadFull(br, echo[:]); err != nil {
			return nil, fmt.Errorf("serve: handshake failed: %w", err)
		}
		if string(echo[:]) != wireMagic {
			return nil, fmt.Errorf("serve: bad handshake echo %q (want %q)", echo[:], wireMagic)
		}
	default:
		return nil, fmt.Errorf("serve: unknown protocol %q (have \"json\" and \"binary\")", o.proto)
	}
	return c, nil
}

// BatchSize reports the preferred accesses-per-frame configured at Connect
// (WithBatchSize; default 64). Replay drivers size their frames with it.
func (c *Client) BatchSize() int { return c.batch }

// Broken reports the sticky transport failure that poisoned this client, or
// nil while it is usable. Connection pools (the router tier) use it to decide
// whether a client can be checked back in after a call returned an error —
// application errors leave Broken nil.
func (c *Client) Broken() error { return c.err }

// Close closes the underlying connection and poisons the client.
func (c *Client) Close() error {
	if c.err == nil {
		c.err = errClientClosed
	}
	return c.conn.Close()
}

// arm starts the per-call deadline configured by WithTimeout.
func (c *Client) arm() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// fail records the first transport-level failure as the client's sticky
// error. Every later call reports that original cause — the router's health
// checks rely on "connection reset by peer" staying distinguishable from a
// clean close long after the failing call returned.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// dead reports the sticky error, wrapped so late callers see both that the
// client is unusable and why it became so.
func (c *Client) dead() error {
	if c.err == nil {
		return nil
	}
	return fmt.Errorf("serve: connection dead: %w", c.err)
}

// readLine returns the next JSON reply line. Every caller is owed a reply, so
// end-of-stream here is never a clean EOF: it surfaces the scanner's root
// cause (a reset, a too-long line) or io.ErrUnexpectedEOF for a silent close.
func (c *Client) readLine() ([]byte, error) {
	if !c.sc.Scan() {
		err := c.sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, c.fail(fmt.Errorf("serve: connection closed awaiting reply: %w", err))
	}
	return c.sc.Bytes(), nil
}

// readFrame returns the next binary reply frame, converting end-of-stream
// into the owed-a-reply form like readLine.
func (c *Client) readFrame() (byte, []byte, error) {
	kind, p, err := c.rd.next()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("serve: connection closed awaiting reply: %w", io.ErrUnexpectedEOF)
		}
		return 0, nil, c.fail(err)
	}
	return kind, p, nil
}

// wireErr decodes an error frame's payload into its tag and message. Tag 0
// marks a connection-level failure — the server hangs up after sending it.
func wireErr(p []byte) (uint64, error) {
	if tag, rest, err := readUvarint(p); err == nil {
		return tag, errors.New(string(rest))
	}
	return 0, fmt.Errorf("serve: undecodable error frame %q", p)
}

// errorFrame converts an error reply to the call's error, poisoning the
// client when the server declared the connection itself broken (tag 0).
func (c *Client) errorFrame(p []byte) error {
	tag, err := wireErr(p)
	if tag == 0 {
		return c.fail(fmt.Errorf("serve: server failed the connection: %w", err))
	}
	return err
}

// Do executes one verb synchronously and returns the decoded reply. On the
// binary protocol the request travels as a JSON payload inside a control
// frame, so every non-hot verb works identically over both encodings.
func (c *Client) Do(req Request) (Reply, error) {
	if err := c.dead(); err != nil {
		return Reply{}, err
	}
	b, err := json.Marshal(req)
	if err != nil {
		return Reply{}, err
	}
	c.arm()
	if c.binary {
		c.tag++
		c.buf = beginFrame(c.buf[:0], frameControl)
		c.buf = append(c.buf, b...)
		c.buf = finishFrame(c.buf, 0)
		if _, err := c.bw.Write(c.buf); err != nil {
			return Reply{}, c.fail(err)
		}
		if err := c.bw.Flush(); err != nil {
			return Reply{}, c.fail(err)
		}
		kind, p, err := c.readFrame()
		if err != nil {
			return Reply{}, err
		}
		switch kind {
		case frameControlReply:
			var rep Reply
			if err := json.Unmarshal(p, &rep); err != nil {
				return Reply{}, c.fail(err)
			}
			return rep, nil
		case frameError:
			return Reply{}, c.errorFrame(p)
		default:
			return Reply{}, c.fail(fmt.Errorf("serve: unexpected reply frame kind 0x%02x", kind))
		}
	}
	if _, err := c.bw.Write(b); err != nil {
		return Reply{}, c.fail(err)
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		return Reply{}, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return Reply{}, c.fail(err)
	}
	line, err := c.readLine()
	if err != nil {
		return Reply{}, err
	}
	var rep Reply
	if err := json.Unmarshal(line, &rep); err != nil {
		return Reply{}, c.fail(err)
	}
	return rep, nil
}

// do executes a verb and converts a protocol-level failure into an error.
func (c *Client) do(req Request) (Reply, error) {
	rep, err := c.Do(req)
	if err != nil {
		return rep, err
	}
	if !rep.OK {
		return rep, errors.New(rep.Err)
	}
	return rep, nil
}

// Open opens a session with default options.
func (c *Client) Open(id, prefetcher string, degree int) error {
	return c.OpenSession(id, SessionOptions{Prefetcher: prefetcher, Degree: degree})
}

// OpenSession opens a session with the full option surface: tenant,
// fair-share weight, and a per-session machine model.
func (c *Client) OpenSession(id string, opt SessionOptions) error {
	_, err := c.do(Request{
		Op: "open", Session: id,
		Prefetcher: opt.Prefetcher, Degree: opt.Degree,
		Tenant: opt.Tenant, Weight: opt.Weight, Sim: opt.SimCfg,
	})
	return err
}

// CloseSession closes a session and returns its final simulator result.
func (c *Client) CloseSession(id string) (sim.Result, error) {
	rep, err := c.do(Request{Op: "close", Session: id})
	if err != nil {
		return sim.Result{}, err
	}
	if rep.Result == nil {
		return sim.Result{}, fmt.Errorf("serve: close reply carries no result")
	}
	return *rep.Result, nil
}

// Access serves one record synchronously.
func (c *Client) Access(id string, rec trace.Record) (AccessResult, error) {
	c.one[0] = rec
	res, err := c.AccessBatch(id, c.one[:])
	if err != nil {
		return AccessResult{}, err
	}
	return res[0], nil
}

// AccessBatch pumps recs through the session in order and returns one result
// per record. On the binary protocol the whole batch travels in one frame
// (the batch hot verb — or an access frame for a single record); on JSON the
// access requests are pipelined and the replies read back in order. The
// returned slice and its Prefetches alias client-owned buffers, valid until
// the next call.
func (c *Client) AccessBatch(id string, recs []trace.Record) ([]AccessResult, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	if err := c.dead(); err != nil {
		return nil, err
	}
	c.arm()
	if c.binary {
		c.tag++
		kind := byte(frameBatch)
		if len(recs) == 1 {
			kind = frameAccess
		}
		c.buf = appendWireRequest(c.buf[:0], kind, c.tag, id, recs)
		if _, err := c.bw.Write(c.buf); err != nil {
			return nil, c.fail(err)
		}
		if err := c.bw.Flush(); err != nil {
			return nil, c.fail(err)
		}
		k, p, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch k {
		case frameAccessReply, frameBatchReply:
			return c.decodeResults(k, p, len(recs))
		case frameError:
			return nil, c.errorFrame(p)
		default:
			return nil, c.fail(fmt.Errorf("serve: unexpected reply frame kind 0x%02x", k))
		}
	}
	for i := range recs {
		b, err := json.Marshal(Request{
			Op: "access", Session: id,
			InstrID: recs[i].InstrID, PC: Hex64(recs[i].PC),
			Addr: Hex64(recs[i].Addr), IsLoad: recs[i].IsLoad,
		})
		if err != nil {
			return nil, err
		}
		if _, err := c.bw.Write(b); err != nil {
			return nil, c.fail(err)
		}
		if err := c.bw.WriteByte('\n'); err != nil {
			return nil, c.fail(err)
		}
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(err)
	}
	c.res, c.pf = c.res[:0], c.pf[:0]
	for range recs {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		var rep Reply
		if err := json.Unmarshal(line, &rep); err != nil {
			return nil, c.fail(err)
		}
		if !rep.OK {
			return nil, errors.New(rep.Err)
		}
		start := len(c.pf)
		for _, h := range rep.Prefetch {
			c.pf = append(c.pf, uint64(h))
		}
		c.res = append(c.res, AccessResult{
			Seq: rep.Seq, Hit: rep.Hit, Late: rep.Late,
			Version: rep.Version, Prefetches: c.pf[start:len(c.pf):len(c.pf)],
		})
	}
	return c.res, nil
}

// decodeResults parses an access or batch reply payload into the client's
// reusable result buffers. Decode failures poison the client — a stream that
// framed garbage is no longer trustworthy.
func (c *Client) decodeResults(kind byte, p []byte, want int) ([]AccessResult, error) {
	tag, p, err := readUvarint(p)
	if err != nil {
		return nil, c.fail(err)
	}
	if tag != c.tag {
		return nil, c.fail(fmt.Errorf("serve: reply tag %d for request tag %d", tag, c.tag))
	}
	seq, p, err := readUvarint(p)
	if err != nil {
		return nil, c.fail(err)
	}
	count := uint64(1)
	if kind == frameBatchReply {
		if count, p, err = readUvarint(p); err != nil {
			return nil, c.fail(err)
		}
	}
	if count != uint64(want) {
		return nil, c.fail(fmt.Errorf("serve: reply carries %d results, want %d", count, want))
	}
	c.res, c.pf = c.res[:0], c.pf[:0]
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return nil, c.fail(fmt.Errorf("serve: wire result %d missing flags byte", i))
		}
		fl := p[0]
		p = p[1:]
		var ver, np uint64
		if ver, p, err = readUvarint(p); err != nil {
			return nil, c.fail(err)
		}
		if np, p, err = readUvarint(p); err != nil {
			return nil, c.fail(err)
		}
		start := len(c.pf)
		for k := uint64(0); k < np; k++ {
			var pb uint64
			if pb, p, err = readUvarint(p); err != nil {
				return nil, c.fail(err)
			}
			c.pf = append(c.pf, pb)
		}
		c.res = append(c.res, AccessResult{
			Seq: seq + i, Hit: fl&wireHit != 0, Late: fl&wireLate != 0,
			Version: ver, Prefetches: c.pf[start:len(c.pf):len(c.pf)],
		})
	}
	if len(p) != 0 {
		return nil, c.fail(fmt.Errorf("serve: %d trailing bytes in wire reply", len(p)))
	}
	return c.res, nil
}
