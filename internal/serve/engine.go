// Package serve is the online multi-session prefetch serving engine: the
// layer that turns the offline DART artifacts of this repository into a
// long-running daemon multiplexing many access streams (one session per
// simulated core or tenant) through the shared batched inference kernels.
//
// Architecture (see README.md for the wire protocol):
//
//   - Sessions live in a sharded map (hash of the session id picks the
//     shard), so opening/looking up sessions under heavy concurrency never
//     funnels through a global lock.
//   - Each session is an actor: a goroutine draining a bounded inbox.
//     Enqueueing into a full inbox blocks — backpressure propagates to the
//     producer (and, through the TCP server, to the client) instead of
//     buffering unboundedly. In-order per-session delivery is the actor
//     loop's FIFO order.
//   - Sessions with a table-backed (DART) predictor do not query the model
//     directly: they publish their prepared input to the engine's admission
//     batcher, which coalesces concurrently-arriving queries from many
//     sessions into one tabular.Hierarchy.QueryBatch call on the shared
//     internal/par worker pool.
//   - Every session drives an incremental sim.Sim, so per-session statistics
//     are bit-identical to an offline sim.Run over the same records.
//   - Drain/Shutdown stop admission, let every inbox empty, flush the
//     batcher, and collect final per-session results.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dart/internal/dataprep"
	"dart/internal/mat"
	"dart/internal/online"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// Config tunes the engine. Zero values select sensible defaults.
type Config struct {
	Shards     int // session-map shards (default 16)
	QueueDepth int // per-session inbox capacity (default 64)
	MaxBatch   int // admission batcher coalescing cap (default 64)

	SimCfg sim.Config // machine model; zero value selects sim.DefaultConfig

	// Model, when non-nil, enables the "dart" prefetcher backed by the
	// shared table hierarchy; sessions keep private history state while
	// inference is coalesced across sessions.
	Model        *tabular.Hierarchy
	Data         dataprep.Config // input preprocessing for model sessions
	ModelLatency int             // modelled inference latency (cycles)
	ModelStorage int             // modelled storage (bytes)

	// Online, when non-nil, enables the "online" prefetcher: a continually
	// fine-tuned neural model served from the learner's versioned store
	// with zero-downtime hot swap. Online sessions are tapped — their
	// access/feedback stream feeds the learner's training loop — and their
	// inference goes through a second admission batcher that resolves the
	// model version once per batch, so no batch ever mixes versions. The
	// learner's lifecycle (Start/Stop) belongs to the caller.
	//
	// When the learner's distilled-student tier is enabled (its config set a
	// Student architecture), the engine additionally starts a third batcher
	// and registers the "student" prefetcher: sessions opened with it are
	// served by the published student class (teacher fallback while no
	// student version exists), tapped like online sessions, and hot-swapped
	// on student publishes.
	//
	// When the learner's dart tier is enabled too (Config.Dart), a fourth
	// batcher serves the "dart" prefetcher from the versioned table class:
	// one batch, one tabular.Hierarchy version, hot-swapped as the
	// tabularizer republishes (student fallback while no table exists yet).
	// This versioned registration wins over the static Model-backed "dart"
	// entry below — per-session class selection at open then spans all three
	// serving classes: teacher ("online"), "student", and "dart".
	Online *online.Learner

	// ShadowCompare enables the student tier's A/B mode: every student batch
	// is also run through a private mirror of the published teacher and the
	// per-label prediction agreement is accumulated into Stats.AB — a live
	// fidelity meter for the distilled model, paid for only on student
	// batches and only when enabled.
	ShadowCompare bool

	// Registry resolves prefetcher names; defaults to the built-ins
	// (none/bo/isb/stride) plus "dart" when Model is set.
	Registry *prefetch.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.SimCfg == (sim.Config{}) {
		c.SimCfg = sim.DefaultConfig()
	}
	if c.Data.History == 0 {
		c.Data = dataprep.Default()
	}
	if c.Registry == nil {
		c.Registry = prefetch.NewRegistry()
	}
	return c
}

// Interned protocol errors. The access path must stay allocation-free even
// on a miss (a client hammering a dead session id would otherwise churn
// garbage), so the common failures are shared sentinels without the session
// id in the message — wire replies carry the id in their own session field.
var (
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrSessionClosed  = errors.New("serve: session is closed")
)

// Response is what one served access produced.
type Response struct {
	Session string
	Seq     uint64 // per-session sequence number, starting at 1
	Hit     bool
	Late    bool
	// Prefetches lists the block addresses issued (post admission). It
	// aliases a buffer the session reuses on its next access: callbacks
	// must consume or copy it before returning.
	Prefetches []uint64
	Version    uint64 // online model version that served this access (0: not an online session, or no model query yet)
}

// item is one queued access plus its completion callback — or, from the
// binary wire path, a whole frame of accesses carried as a job.
type item struct {
	rec trace.Record
	fn  func(Response)
	job *wireJob // when non-nil, rec/fn are unused
}

// session is the per-stream actor: private prefetcher state, an incremental
// simulator, and a FIFO inbox drained by one goroutine.
type session struct {
	id    string
	inbox chan item
	done  chan struct{}
	sim   *sim.Sim
	seq   uint64
	res   sim.Result // final result, valid after done closes

	// Online-session state, nil/zero otherwise. ver is written by the
	// versionedModel predictor and read after each step; ring receives the
	// access/feedback event stream; pendFB stages the feedback the
	// simulator delivers synchronously inside Step. All of it is touched
	// only on the actor goroutine.
	ver    *uint64
	ring   *online.Ring
	pendFB sim.Feedback
	hasFB  bool

	// sendMu guards the inbox against close-while-sending: Submit sends
	// under the read lock (many producers, possibly blocking on a full
	// inbox), Close closes the channel under the write lock. The actor
	// never touches sendMu, so a blocked producer always drains.
	sendMu sync.RWMutex
	closed bool

	snapMu sync.Mutex // guards snap for mid-stream stats
	snap   sim.Result
}

func (s *session) run() {
	defer close(s.done)
	for it := range s.inbox {
		if it.job != nil {
			s.runJob(it.job)
			continue
		}
		st := s.step(it.rec)
		if it.fn != nil {
			resp := Response{
				Session:    s.id,
				Seq:        s.seq,
				Hit:        st.Hit,
				Late:       st.Late,
				Prefetches: st.Prefetches,
			}
			if s.ver != nil {
				resp.Version = *s.ver
			}
			it.fn(resp)
		}
	}
	s.res = s.sim.Result()
}

// step advances the session's simulator by one record and performs the
// per-access actor bookkeeping: the sequence number, the learner ring tap,
// and the periodic stats snapshot. Every serving path — direct, JSON, and
// binary frames — funnels through here, which is what keeps their results
// bit-identical.
func (s *session) step(rec trace.Record) sim.Step {
	st := s.sim.Step(rec)
	s.seq++
	if s.ring != nil {
		// Tap the access (and the outcome feedback sim delivered
		// inside this Step, if any) into the learner's ring. Push is
		// lock-free and lossy: training never backpressures serving.
		ev := online.Event{Access: sim.Access{
			InstrID: rec.InstrID, PC: rec.PC,
			Block: rec.Block(), Hit: st.Hit,
		}}
		if s.hasFB {
			ev.HasFB, ev.Feedback = true, s.pendFB
			s.hasFB = false
		}
		s.ring.Push(ev)
	}
	if s.seq%256 == 0 {
		s.snapMu.Lock()
		s.snap = s.sim.Result()
		s.snapMu.Unlock()
	}
	return st
}

// shard is one slice of the session map.
type shard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// Engine is the multi-session serving engine.
type Engine struct {
	cfg      Config
	shards   []shard
	batcher  *batcher        // nil when no static table model is configured
	onlineB  *batcher        // nil when no online learner is configured
	studentB *batcher        // nil unless the learner has a student tier
	dartB    *batcher        // nil unless the learner has a dart (table) tier
	learner  *online.Learner // == cfg.Online

	accepted atomic.Uint64
	draining atomic.Bool

	// A/B shadow-compare accumulators (student batches only).
	abBatches atomic.Uint64
	abLabels  atomic.Uint64
	abAgree   atomic.Uint64
}

// NewEngine builds an engine from the config. When cfg.Model is set, the
// admission batcher starts and the "dart" prefetcher becomes available;
// when cfg.Online is set, a second versioned batcher starts and the
// "online" prefetcher becomes available.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: make([]shard, cfg.Shards)}
	for i := range e.shards {
		e.shards[i].m = make(map[string]*session)
	}
	if cfg.Model != nil || cfg.Online != nil {
		// Register model prefetchers on a private clone: the caller's
		// registry must not be wired to this engine's batchers (two
		// engines sharing a registry would otherwise cross-route each
		// other's queries).
		e.cfg.Registry = cfg.Registry.Clone()
	}
	if cfg.Model != nil {
		e.batcher = newBatcher(func(in *mat.Tensor) (*mat.Tensor, uint64) {
			return cfg.Model.QueryBatch(in), 0
		}, cfg.MaxBatch)
		e.cfg.Registry.Register("dart", func(degree int) sim.Prefetcher {
			return prefetch.NewNNPrefetcher("DART",
				batchedModel{b: e.batcher},
				cfg.Data, cfg.ModelLatency, cfg.ModelStorage, degree)
		})
	}
	if cfg.Online != nil {
		e.learner = cfg.Online
		// Promotion policy engine (nil when the learner runs ungated). The
		// serving batchers feed it live candidate-vs-source agreement so it
		// can roll back a published version that diverges in production.
		pol := e.learner.Policy()
		// One inferFn call resolves the store's current version exactly
		// once and runs the whole batch through it: a hot swap lands
		// between batches, never inside one. The published Model is
		// immutable and its Forward runs only on the batcher goroutine
		// (nn layers cache activations, so Forward is not reentrant).
		e.onlineB = newBatcher(func(in *mat.Tensor) (*mat.Tensor, uint64) {
			m := e.learner.Serving()
			return m.Net.Forward(in), m.Version
		}, cfg.MaxBatch)
		// Generic registry entry so "online" shows up in Names() and
		// offline comparison runs can instantiate it; live sessions get a
		// version-observing instance wired up in Open instead.
		e.cfg.Registry.MakeOnline("online", batchedModel{b: e.onlineB},
			e.learner.Data(), e.learner.Latency(), e.learner.StorageBytes())
		if e.learner.HasStudent() {
			// The student tier's batcher: one call resolves the published
			// student exactly once (teacher fallback through a private
			// mirror — never the published teacher instance, which belongs
			// to the online batcher goroutine), optionally shadow-comparing
			// the batch against the teacher for the A/B agreement stats and
			// the policy engine's live divergence tracking. One teacher
			// forward feeds both consumers when both are on.
			mirror := newMirror(e.learner.Store())
			e.studentB = newBatcher(func(in *mat.Tensor) (*mat.Tensor, uint64) {
				stu := e.learner.StudentServing()
				out, ver := studentInfer(stu, mirror, in)
				if (cfg.ShadowCompare || pol != nil) && stu != nil {
					tnet, _ := mirror.resolve()
					match, total := agreement(out, tnet.Forward(in))
					if cfg.ShadowCompare {
						e.abAgree.Add(match)
						e.abLabels.Add(total)
						e.abBatches.Add(1)
					}
					if pol != nil {
						pol.ObserveLive(online.StudentClass, ver, match, total)
					}
				}
				return out, ver
			}, cfg.MaxBatch)
			e.cfg.Registry.MakeStudent("student", batchedModel{b: e.studentB},
				e.learner.Data(), e.learner.StudentLatency(), e.learner.StudentStorageBytes())
		}
		if e.learner.HasDart() {
			// The dart tier's batcher: one call resolves the published table
			// exactly once and runs the whole batch through
			// Hierarchy.QueryBatch on the shared worker pool — the versioned
			// analogue of the static cfg.Model batcher, and the class the
			// paper actually deploys. While no table has been published yet
			// (the tabularizer needs streamed examples first) it falls back
			// to a private mirror of the published student. Registered last,
			// so it shadows any static "dart" entry: with a dart-tier
			// learner, "dart" means the hot-swappable table class.
			mirror := newMirror(e.learner.StudentStore())
			e.dartB = newBatcher(func(in *mat.Tensor) (*mat.Tensor, uint64) {
				tab := e.learner.DartServing()
				out, ver := dartInfer(tab, mirror, in)
				// Live shadow-compare against the source (student) class,
				// only when a table actually served: the fallback path IS
				// the student mirror, so comparing it would always agree.
				if pol != nil && tab != nil {
					snet, _ := mirror.resolve()
					match, total := agreement(out, snet.Forward(in))
					pol.ObserveLive(online.DartClass, ver, match, total)
				}
				return out, ver
			}, cfg.MaxBatch)
			e.cfg.Registry.MakeDart("dart", batchedModel{b: e.dartB},
				e.learner.Data(), e.learner.DartLatency(), e.learner.DartStorageBytes())
		}
	}
	return e
}

// fnv32a is FNV-1a, hand-rolled because hash/fnv's New32a allocates its
// state object on every call, and generic so the binary wire path can hash
// session ids still sitting in the read buffer without a string conversion.
func fnv32a[T ~string | ~[]byte](s T) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// shardFor hashes a session id onto its shard.
func (e *Engine) shardFor(id string) *shard {
	return &e.shards[fnv32a(id)%uint32(len(e.shards))]
}

// lookup returns the live session or ErrUnknownSession.
func (e *Engine) lookup(id string) (*session, error) {
	sh := e.shardFor(id)
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	if s == nil {
		return nil, ErrUnknownSession
	}
	return s, nil
}

// lookupBytes is lookup for a session id still in a wire buffer: the
// m[string(b)] map read compiles to a no-allocation lookup.
func (e *Engine) lookupBytes(id []byte) (*session, error) {
	sh := &e.shards[fnv32a(id)%uint32(len(e.shards))]
	sh.mu.RLock()
	s := sh.m[string(id)]
	sh.mu.RUnlock()
	if s == nil {
		return nil, ErrUnknownSession
	}
	return s, nil
}

// SessionOptions configures one session at open. The zero value of every
// field selects the engine default, so Open(id, name, degree) is exactly
// OpenSession(id, SessionOptions{Prefetcher: name, Degree: degree}).
type SessionOptions struct {
	Prefetcher string
	Degree     int
	Tenant     string      // admission fair-share group (default "default")
	Weight     int         // fair-share weight in the admission batchers (default 1)
	SimCfg     *sim.Config // per-session machine model; nil = engine default
}

// Open creates a session with the named prefetcher and default options.
func (e *Engine) Open(id, prefetcher string, degree int) error {
	return e.OpenSession(id, SessionOptions{Prefetcher: prefetcher, Degree: degree})
}

// OpenSession creates a session. Every session gets a fresh prefetcher
// instance and its own incremental simulator (per-session cache hierarchy
// config via opt.SimCfg — the mixed-tenant replay matrix runs different
// machines side by side in one engine). Sessions opened with a versioned
// model class ("online", "student", "dart" with a learner) are additionally
// tapped: their access/feedback stream feeds online training, and their
// responses carry the model version that served each access. Model-class
// queries are admitted under opt.Tenant's fair-share weight.
func (e *Engine) OpenSession(id string, opt SessionOptions) error {
	if id == "" {
		return fmt.Errorf("serve: empty session id")
	}
	prefetcher, degree := opt.Prefetcher, opt.Degree
	simCfg := e.cfg.SimCfg
	if opt.SimCfg != nil {
		if err := opt.SimCfg.Validate(); err != nil {
			return err
		}
		simCfg = *opt.SimCfg
	}
	s := &session{
		id:    id,
		inbox: make(chan item, e.cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	var pf sim.Prefetcher
	switch {
	case e.learner != nil && (prefetcher == "online" ||
		(prefetcher == "student" && e.studentB != nil) ||
		(prefetcher == "dart" && e.dartB != nil)):
		if degree <= 0 {
			degree = 4
		}
		// Every model class gets version-observing, tapped sessions — this
		// is per-session class selection at open: the prefetcher name picks
		// which versioned class (teacher, student, or table hierarchy)
		// serves this tenant, each through its own batcher and with its own
		// modelled latency/storage in the simulator.
		b, lat, sto := e.onlineB, e.learner.Latency(), e.learner.StorageBytes()
		switch prefetcher {
		case "student":
			b, lat, sto = e.studentB, e.learner.StudentLatency(), e.learner.StudentStorageBytes()
		case "dart":
			b, lat, sto = e.dartB, e.learner.DartLatency(), e.learner.DartStorageBytes()
		}
		b.setWeight(opt.Tenant, opt.Weight)
		s.ver = new(uint64)
		base := prefetch.NewNNPrefetcher(prefetcher,
			versionedModel{b: b, tenant: opt.Tenant, ver: s.ver},
			e.learner.Data(), lat, sto, degree)
		// The fan-out listener stages the feedback sim delivers inside
		// Step; the actor pairs it with the access and pushes both into
		// the learner's ring after the step.
		pf = sim.FanOutFeedback(base, func(fb sim.Feedback) {
			s.pendFB, s.hasFB = fb, true
		})
	case e.batcher != nil && prefetcher == "dart":
		// Static table hierarchy (no versioned dart tier): same model as the
		// registry's "dart" entry, but routed under this session's tenant.
		if degree <= 0 {
			degree = 4
		}
		e.batcher.setWeight(opt.Tenant, opt.Weight)
		pf = prefetch.NewNNPrefetcher("DART",
			batchedModel{b: e.batcher, tenant: opt.Tenant},
			e.cfg.Data, e.cfg.ModelLatency, e.cfg.ModelStorage, degree)
	default:
		var err error
		pf, err = e.cfg.Registry.New(prefetcher, degree)
		if err != nil {
			return err
		}
	}
	s.sim = sim.NewSim(pf, simCfg)
	sh := e.shardFor(id)
	sh.mu.Lock()
	// The draining check lives inside the shard lock: Drain sets the flag
	// and then snapshots the shards (taking this lock), so an Open that
	// slipped in before the flag either errors here or has already
	// inserted its session where Drain's close loop will find it.
	if e.draining.Load() {
		sh.mu.Unlock()
		return fmt.Errorf("serve: engine is draining")
	}
	if _, exists := sh.m[id]; exists {
		sh.mu.Unlock()
		return fmt.Errorf("serve: session %q already open", id)
	}
	sh.m[id] = s
	sh.mu.Unlock()
	if s.ver != nil {
		// Attach after the insert won the id (no duplicate taps), before
		// the actor starts (the ring must exist for the first step).
		s.ring = e.learner.Attach(id)
	}
	go s.run()
	return nil
}

// Submit enqueues one access for the session and invokes fn (which may be
// nil) from the session goroutine once the access has been simulated.
// Submit blocks while the session inbox is full — that is the engine's
// backpressure — and returns an error for unknown or closed sessions.
func (e *Engine) Submit(id string, rec trace.Record, fn func(Response)) error {
	s, err := e.lookup(id)
	if err != nil {
		return err
	}
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return ErrSessionClosed
	}
	// The read lock is held across the (possibly blocking) send so Close
	// cannot close the channel out from under it; the actor drains the
	// inbox without ever taking sendMu, so the send always completes.
	s.inbox <- item{rec: rec, fn: fn}
	s.sendMu.RUnlock()
	e.accepted.Add(1)
	return nil
}

// submitJob enqueues a decoded binary frame on a session actor: Submit minus
// the lookup and the callback — the caller already resolved the *session
// (the connection keeps a local cache) and the reply is encoded in place by
// the actor. Returns ErrSessionClosed if the actor is gone; the caller must
// then drop its cached pointer.
func (e *Engine) submitJob(s *session, j *wireJob) error {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return ErrSessionClosed
	}
	s.inbox <- item{job: j}
	s.sendMu.RUnlock()
	e.accepted.Add(uint64(len(j.recs)))
	return nil
}

// Access is the synchronous form of Submit: it waits for the access to be
// simulated and returns the response.
func (e *Engine) Access(id string, rec trace.Record) (Response, error) {
	var resp Response
	ch := make(chan struct{})
	err := e.Submit(id, rec, func(r Response) {
		resp = r
		close(ch)
	})
	if err != nil {
		return Response{}, err
	}
	<-ch
	return resp, nil
}

// Close drains the session's queued accesses, finalises its simulator, and
// removes it from the map, returning the final per-session result.
func (e *Engine) Close(id string) (sim.Result, error) {
	s, err := e.lookup(id)
	if err != nil {
		return sim.Result{}, err
	}
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return sim.Result{}, fmt.Errorf("serve: session %q already closing", id)
	}
	s.closed = true
	close(s.inbox)
	s.sendMu.Unlock()
	<-s.done
	if s.ring != nil {
		e.learner.Detach(id)
	}

	sh := e.shardFor(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	return s.res, nil
}

// Sessions lists the open session ids, sorted.
func (e *Engine) Sessions() []string {
	var ids []string
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Stats is a mid-stream engine snapshot. The batch counters aggregate every
// admission batcher (static tables, the versioned online model, the student
// tier, and the versioned dart table tier).
type Stats struct {
	Sessions   int
	Accepted   uint64 // accesses admitted since start
	Batches    uint64 // model batches dispatched
	Batched    uint64 // model queries served through batches
	MaxBatch   int    // largest batch dispatched so far
	PerSession map[string]sim.Result
	Tenants    map[string]TenantAdmission // fair-share admission view, all batchers
	Online     *online.Stats              // nil unless the engine has a learner
	AB         *ABStats                   // nil unless shadow-compare is enabled
	Policy     *online.PolicyStats        // nil unless the promotion policy engine is on
}

// ABStats is the student tier's A/B shadow-compare digest: how often the
// distilled student and its teacher land on the same side of the prediction
// threshold, per label, across every compared batch.
type ABStats struct {
	Batches uint64  // student batches shadow-compared
	Labels  uint64  // per-label comparisons
	Agree   uint64  // comparisons where student == teacher
	Rate    float64 // Agree / Labels (0 when nothing compared yet)
}

// StatsSnapshot gathers per-session snapshots without stopping the actors.
// Session results lag by up to the snapshot interval (256 accesses).
func (e *Engine) StatsSnapshot() Stats {
	st := Stats{
		Accepted:   e.accepted.Load(),
		PerSession: make(map[string]sim.Result),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, s := range sh.m {
			st.Sessions++
			s.snapMu.Lock()
			st.PerSession[id] = s.snap
			s.snapMu.Unlock()
		}
		sh.mu.RUnlock()
	}
	for _, b := range e.allBatchers() {
		batches, batched, biggest := b.stats()
		st.Batches += batches
		st.Batched += batched
		if biggest > st.MaxBatch {
			st.MaxBatch = biggest
		}
	}
	if t := e.TenantAdmissions(); len(t) > 0 {
		st.Tenants = t
	}
	if e.learner != nil {
		ls := e.learner.Stats()
		st.Online = &ls
		if pol := e.learner.Policy(); pol != nil {
			ps := pol.Stats()
			st.Policy = &ps
		}
	}
	if ab := e.abStats(); ab != nil {
		st.AB = ab
	}
	return st
}

// allBatchers lists the engine's live admission batchers.
func (e *Engine) allBatchers() []*batcher {
	var bs []*batcher
	for _, b := range []*batcher{e.batcher, e.onlineB, e.studentB, e.dartB} {
		if b != nil {
			bs = append(bs, b)
		}
	}
	return bs
}

// TenantAdmissions aggregates the per-tenant fair-share admission stats over
// every batcher: queries and starvation counts sum, the worst wait wins, and
// the weight reported is the largest any batcher holds for the tenant.
func (e *Engine) TenantAdmissions() map[string]TenantAdmission {
	out := make(map[string]TenantAdmission)
	for _, b := range e.allBatchers() {
		for name, ta := range b.tenantStats() {
			agg := out[name]
			agg.Queries += ta.Queries
			agg.Starved += ta.Starved
			if ta.MaxWaitBatches > agg.MaxWaitBatches {
				agg.MaxWaitBatches = ta.MaxWaitBatches
			}
			if ta.Weight > agg.Weight {
				agg.Weight = ta.Weight
			}
			out[name] = agg
		}
	}
	return out
}

// abStats snapshots the shadow-compare accumulators; nil when the mode is
// off or no student batch has been compared yet.
func (e *Engine) abStats() *ABStats {
	if !e.cfg.ShadowCompare || e.studentB == nil {
		return nil
	}
	ab := &ABStats{
		Batches: e.abBatches.Load(),
		Labels:  e.abLabels.Load(),
		Agree:   e.abAgree.Load(),
	}
	if ab.Labels > 0 {
		ab.Rate = float64(ab.Agree) / float64(ab.Labels)
	}
	return ab
}

// Learner exposes the online learner (nil when the engine has none); the
// wire server routes the model/swap/rollback verbs through it.
func (e *Engine) Learner() *online.Learner { return e.learner }

// Drain gracefully shuts the engine down: no new sessions are admitted,
// every open session's inbox is closed and drained in turn, and the batcher
// stops once the last model query has been answered. It returns the final
// result of every session that was still open, keyed by session id.
func (e *Engine) Drain() map[string]sim.Result {
	e.draining.Store(true)
	out := make(map[string]sim.Result)
	// Loop until the map is empty: an Open racing the flag store may have
	// inserted a session after this goroutine's first snapshot, but no new
	// session can appear once a snapshot (which takes every shard lock)
	// has observed the draining flag set — so the loop terminates.
	for {
		ids := e.Sessions()
		if len(ids) == 0 {
			break
		}
		for _, id := range ids {
			s, err := e.lookup(id)
			if err != nil {
				continue // already closed and removed
			}
			res, err := e.Close(id)
			if err != nil {
				// Another goroutine (a client "close" op) is mid-close:
				// block until its drain finishes instead of spinning
				// through Sessions() while the inbox empties.
				<-s.done
				continue
			}
			out[id] = res
		}
	}
	for _, b := range e.allBatchers() {
		b.stop()
	}
	return out
}
