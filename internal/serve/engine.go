// Package serve is the online multi-session prefetch serving engine: the
// layer that turns the offline DART artifacts of this repository into a
// long-running daemon multiplexing many access streams (one session per
// simulated core or tenant) through the shared batched inference kernels.
//
// Architecture (see README.md for the wire protocol):
//
//   - Sessions live in a sharded map (hash of the session id picks the
//     shard), so opening/looking up sessions under heavy concurrency never
//     funnels through a global lock.
//   - Each session is an actor: a goroutine draining a bounded inbox.
//     Enqueueing into a full inbox blocks — backpressure propagates to the
//     producer (and, through the TCP server, to the client) instead of
//     buffering unboundedly. In-order per-session delivery is the actor
//     loop's FIFO order.
//   - Sessions with a table-backed (DART) predictor do not query the model
//     directly: they publish their prepared input to the engine's admission
//     batcher, which coalesces concurrently-arriving queries from many
//     sessions into one tabular.Hierarchy.QueryBatch call on the shared
//     internal/par worker pool.
//   - Every session drives an incremental sim.Sim, so per-session statistics
//     are bit-identical to an offline sim.Run over the same records.
//   - Drain/Shutdown stop admission, let every inbox empty, flush the
//     batcher, and collect final per-session results.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"dart/internal/dataprep"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// Config tunes the engine. Zero values select sensible defaults.
type Config struct {
	Shards     int // session-map shards (default 16)
	QueueDepth int // per-session inbox capacity (default 64)
	MaxBatch   int // admission batcher coalescing cap (default 64)

	SimCfg sim.Config // machine model; zero value selects sim.DefaultConfig

	// Model, when non-nil, enables the "dart" prefetcher backed by the
	// shared table hierarchy; sessions keep private history state while
	// inference is coalesced across sessions.
	Model        *tabular.Hierarchy
	Data         dataprep.Config // input preprocessing for model sessions
	ModelLatency int             // modelled inference latency (cycles)
	ModelStorage int             // modelled storage (bytes)

	// Registry resolves prefetcher names; defaults to the built-ins
	// (none/bo/isb/stride) plus "dart" when Model is set.
	Registry *prefetch.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.SimCfg == (sim.Config{}) {
		c.SimCfg = sim.DefaultConfig()
	}
	if c.Data.History == 0 {
		c.Data = dataprep.Default()
	}
	if c.Registry == nil {
		c.Registry = prefetch.NewRegistry()
	}
	return c
}

// Response is what one served access produced.
type Response struct {
	Session    string
	Seq        uint64 // per-session sequence number, starting at 1
	Hit        bool
	Late       bool
	Prefetches []uint64 // block addresses issued
}

// item is one queued access plus its completion callback.
type item struct {
	rec trace.Record
	fn  func(Response)
}

// session is the per-stream actor: private prefetcher state, an incremental
// simulator, and a FIFO inbox drained by one goroutine.
type session struct {
	id    string
	inbox chan item
	done  chan struct{}
	sim   *sim.Sim
	seq   uint64
	res   sim.Result // final result, valid after done closes

	// sendMu guards the inbox against close-while-sending: Submit sends
	// under the read lock (many producers, possibly blocking on a full
	// inbox), Close closes the channel under the write lock. The actor
	// never touches sendMu, so a blocked producer always drains.
	sendMu sync.RWMutex
	closed bool

	snapMu sync.Mutex // guards snap for mid-stream stats
	snap   sim.Result
}

func (s *session) run() {
	defer close(s.done)
	for it := range s.inbox {
		st := s.sim.Step(it.rec)
		s.seq++
		if s.seq%256 == 0 {
			s.snapMu.Lock()
			s.snap = s.sim.Result()
			s.snapMu.Unlock()
		}
		if it.fn != nil {
			it.fn(Response{
				Session:    s.id,
				Seq:        s.seq,
				Hit:        st.Hit,
				Late:       st.Late,
				Prefetches: st.Prefetches,
			})
		}
	}
	s.res = s.sim.Result()
}

// shard is one slice of the session map.
type shard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// Engine is the multi-session serving engine.
type Engine struct {
	cfg     Config
	shards  []shard
	batcher *batcher // nil when no model is configured

	accepted atomic.Uint64
	draining atomic.Bool
}

// NewEngine builds an engine from the config. When cfg.Model is set, the
// admission batcher starts and the "dart" prefetcher becomes available.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: make([]shard, cfg.Shards)}
	for i := range e.shards {
		e.shards[i].m = make(map[string]*session)
	}
	if cfg.Model != nil {
		e.batcher = newBatcher(cfg.Model, cfg.MaxBatch)
		// Register "dart" on a private clone: the caller's registry must
		// not be wired to this engine's batcher (two engines sharing a
		// registry would otherwise cross-route each other's queries).
		e.cfg.Registry = cfg.Registry.Clone()
		e.cfg.Registry.Register("dart", func(degree int) sim.Prefetcher {
			return prefetch.NewNNPrefetcher("DART",
				batchedModel{b: e.batcher},
				cfg.Data, cfg.ModelLatency, cfg.ModelStorage, degree)
		})
	}
	return e
}

// shardFor hashes a session id onto its shard.
func (e *Engine) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &e.shards[h.Sum32()%uint32(len(e.shards))]
}

// lookup returns the live session or an error.
func (e *Engine) lookup(id string) (*session, error) {
	sh := e.shardFor(id)
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("serve: unknown session %q", id)
	}
	return s, nil
}

// Open creates a session with the named prefetcher. Every session gets a
// fresh prefetcher instance and its own incremental simulator.
func (e *Engine) Open(id, prefetcher string, degree int) error {
	if id == "" {
		return fmt.Errorf("serve: empty session id")
	}
	pf, err := e.cfg.Registry.New(prefetcher, degree)
	if err != nil {
		return err
	}
	s := &session{
		id:    id,
		inbox: make(chan item, e.cfg.QueueDepth),
		done:  make(chan struct{}),
		sim:   sim.NewSim(pf, e.cfg.SimCfg),
	}
	sh := e.shardFor(id)
	sh.mu.Lock()
	// The draining check lives inside the shard lock: Drain sets the flag
	// and then snapshots the shards (taking this lock), so an Open that
	// slipped in before the flag either errors here or has already
	// inserted its session where Drain's close loop will find it.
	if e.draining.Load() {
		sh.mu.Unlock()
		return fmt.Errorf("serve: engine is draining")
	}
	if _, exists := sh.m[id]; exists {
		sh.mu.Unlock()
		return fmt.Errorf("serve: session %q already open", id)
	}
	sh.m[id] = s
	sh.mu.Unlock()
	go s.run()
	return nil
}

// Submit enqueues one access for the session and invokes fn (which may be
// nil) from the session goroutine once the access has been simulated.
// Submit blocks while the session inbox is full — that is the engine's
// backpressure — and returns an error for unknown or closed sessions.
func (e *Engine) Submit(id string, rec trace.Record, fn func(Response)) error {
	s, err := e.lookup(id)
	if err != nil {
		return err
	}
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return fmt.Errorf("serve: session %q is closed", id)
	}
	// The read lock is held across the (possibly blocking) send so Close
	// cannot close the channel out from under it; the actor drains the
	// inbox without ever taking sendMu, so the send always completes.
	s.inbox <- item{rec: rec, fn: fn}
	s.sendMu.RUnlock()
	e.accepted.Add(1)
	return nil
}

// Access is the synchronous form of Submit: it waits for the access to be
// simulated and returns the response.
func (e *Engine) Access(id string, rec trace.Record) (Response, error) {
	var resp Response
	ch := make(chan struct{})
	err := e.Submit(id, rec, func(r Response) {
		resp = r
		close(ch)
	})
	if err != nil {
		return Response{}, err
	}
	<-ch
	return resp, nil
}

// Close drains the session's queued accesses, finalises its simulator, and
// removes it from the map, returning the final per-session result.
func (e *Engine) Close(id string) (sim.Result, error) {
	s, err := e.lookup(id)
	if err != nil {
		return sim.Result{}, err
	}
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return sim.Result{}, fmt.Errorf("serve: session %q already closing", id)
	}
	s.closed = true
	close(s.inbox)
	s.sendMu.Unlock()
	<-s.done

	sh := e.shardFor(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	return s.res, nil
}

// Sessions lists the open session ids, sorted.
func (e *Engine) Sessions() []string {
	var ids []string
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Stats is a mid-stream engine snapshot.
type Stats struct {
	Sessions   int
	Accepted   uint64 // accesses admitted since start
	Batches    uint64 // model batches dispatched
	Batched    uint64 // model queries served through batches
	MaxBatch   int    // largest batch dispatched so far
	PerSession map[string]sim.Result
}

// StatsSnapshot gathers per-session snapshots without stopping the actors.
// Session results lag by up to the snapshot interval (256 accesses).
func (e *Engine) StatsSnapshot() Stats {
	st := Stats{
		Accepted:   e.accepted.Load(),
		PerSession: make(map[string]sim.Result),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, s := range sh.m {
			st.Sessions++
			s.snapMu.Lock()
			st.PerSession[id] = s.snap
			s.snapMu.Unlock()
		}
		sh.mu.RUnlock()
	}
	if e.batcher != nil {
		st.Batches, st.Batched, st.MaxBatch = e.batcher.stats()
	}
	return st
}

// Drain gracefully shuts the engine down: no new sessions are admitted,
// every open session's inbox is closed and drained in turn, and the batcher
// stops once the last model query has been answered. It returns the final
// result of every session that was still open, keyed by session id.
func (e *Engine) Drain() map[string]sim.Result {
	e.draining.Store(true)
	out := make(map[string]sim.Result)
	// Loop until the map is empty: an Open racing the flag store may have
	// inserted a session after this goroutine's first snapshot, but no new
	// session can appear once a snapshot (which takes every shard lock)
	// has observed the draining flag set — so the loop terminates.
	for {
		ids := e.Sessions()
		if len(ids) == 0 {
			break
		}
		for _, id := range ids {
			s, err := e.lookup(id)
			if err != nil {
				continue // already closed and removed
			}
			res, err := e.Close(id)
			if err != nil {
				// Another goroutine (a client "close" op) is mid-close:
				// block until its drain finishes instead of spinning
				// through Sessions() while the inbox empties.
				<-s.done
				continue
			}
			out[id] = res
		}
	}
	if e.batcher != nil {
		e.batcher.stop()
	}
	return out
}
