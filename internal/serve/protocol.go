package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"dart/internal/online"
	"dart/internal/sim"
	"dart/internal/trace"
)

// Hex64 is a uint64 that marshals as a 0x-prefixed hex string — addresses
// survive JSON untouched (numbers above 2^53 lose precision in many JSON
// decoders) and stay readable in packet dumps. Unmarshalling accepts hex
// strings, decimal strings, and plain JSON numbers.
type Hex64 uint64

// MarshalJSON renders 0x-prefixed hex.
func (h Hex64) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", "0x"+strconv.FormatUint(uint64(h), 16))), nil
}

// UnmarshalJSON accepts "0x..", "123", and 123.
func (h *Hex64) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if len(s) >= 2 && s[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		s = strings.TrimSpace(str)
	}
	if s == "" {
		*h = 0
		return nil
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return fmt.Errorf("serve: bad uint64 %q: %w", s, err)
	}
	*h = Hex64(v)
	return nil
}

// Verbs lists every wire verb of the serving protocol, in both encodings:
// the JSON op strings, which the binary protocol reuses for control frames,
// plus the binary-only "batch" hot verb. docs/PROTOCOL.md must document each
// one — cmd/dart-doccheck enforces that in CI.
var Verbs = []string{
	"open", "access", "batch", "close",
	"stats", "model", "swap", "rollback", "classes", "policy",
}

// Request is one line of the client→server protocol. Op selects the action:
//
//	open     {"op":"open","session":"s1","prefetcher":"stride","degree":4}
//	access   {"op":"access","session":"s1","instr_id":12,"pc":"0x400000","addr":"0x10000040","is_load":true}
//	close    {"op":"close","session":"s1"}
//	stats    {"op":"stats"}
//	model    {"op":"model"}     online-learner snapshot (version, throughput, loss trend)
//	swap     {"op":"swap"}      force-publish the training shadow as a new version
//	rollback {"op":"rollback"}  revert serving to the previous version
//	classes  {"op":"classes"}   list every serving class with its versions and modelled cost
//	policy   {"op":"policy"}    promotion-policy decision log and per-class gate state
//
// The model/swap/rollback verbs accept a model-class selector: "class":""
// (or omitted) addresses the online teacher, "class":"student" the distilled
// student tier, "class":"dart" the tabularized table tier, e.g.
// {"op":"swap","class":"dart"} (a forced re-tabularize + publish).
//
// The open verb accepts the full serve.SessionOptions surface: tenant and
// weight route the session's model-class queries through the fair-share
// admission batchers, and sim overrides the engine's machine model for this
// session (the mixed-tenant matrix runs different cache hierarchies side by
// side through one daemon).
type Request struct {
	Op         string      `json:"op"`
	Session    string      `json:"session,omitempty"`
	Prefetcher string      `json:"prefetcher,omitempty"`
	Degree     int         `json:"degree,omitempty"`
	Class      string      `json:"class,omitempty"`
	InstrID    uint64      `json:"instr_id,omitempty"`
	PC         Hex64       `json:"pc,omitempty"`
	Addr       Hex64       `json:"addr,omitempty"`
	IsLoad     bool        `json:"is_load,omitempty"`
	Tenant     string      `json:"tenant,omitempty"`
	Weight     int         `json:"weight,omitempty"`
	Sim        *sim.Config `json:"sim,omitempty"`
}

// Record converts an access request to a trace record.
func (r Request) Record() trace.Record {
	return trace.Record{InstrID: r.InstrID, PC: uint64(r.PC), Addr: uint64(r.Addr), IsLoad: r.IsLoad}
}

// Reply is one line of the server→client protocol. Every reply carries OK
// (with Err set when false); access replies add Seq/Hit/Late/Prefetch (and
// Version on online sessions), close replies add the final Result, stats
// replies add Stats, and model/swap/rollback replies add Online.
type Reply struct {
	OK       bool         `json:"ok"`
	Err      string       `json:"error,omitempty"`
	Session  string       `json:"session,omitempty"`
	Seq      uint64       `json:"seq,omitempty"`
	Hit      bool         `json:"hit,omitempty"`
	Late     bool         `json:"late,omitempty"`
	Prefetch []Hex64      `json:"prefetch,omitempty"`
	Version  uint64       `json:"version,omitempty"`
	Result   *sim.Result  `json:"result,omitempty"`
	Stats    *StatsReply  `json:"stats,omitempty"`
	Online   *OnlineReply `json:"online,omitempty"`
	Classes  []ClassReply `json:"classes,omitempty"`
	Policy   *PolicyReply `json:"policy,omitempty"`
}

// ClassReply is one row of the classes verb: a serving class of the
// versioned store with its current version, held rollback versions, publish
// count, and modelled cost.
type ClassReply struct {
	Class        string   `json:"class"`
	Version      uint64   `json:"version"`
	Versions     []uint64 `json:"versions,omitempty"`
	Published    uint64   `json:"published"`
	Latency      int      `json:"latency_cycles"`
	StorageBytes int      `json:"storage_bytes"`
}

// classesReply converts learner class listings to the wire form.
func classesReply(cs []online.ClassInfo) []ClassReply {
	out := make([]ClassReply, len(cs))
	for i, c := range cs {
		out[i] = ClassReply{
			Class:        c.Class,
			Version:      c.Version,
			Versions:     c.Versions,
			Published:    c.Published,
			Latency:      c.Latency,
			StorageBytes: c.StorageBytes,
		}
	}
	return out
}

// StatsReply is the wire form of Stats. A dart-router answers the stats verb
// with the counters summed across its healthy backends (MaxBatch is the max)
// and one Backends row per configured backend; a single daemon leaves
// Backends empty.
type StatsReply struct {
	Sessions int          `json:"sessions"`
	Accepted uint64       `json:"accepted"`
	Batches  uint64       `json:"batches"`
	Batched  uint64       `json:"batched"`
	MaxBatch int          `json:"max_batch"`
	Online   *OnlineReply `json:"online,omitempty"`
	AB       *ABReply     `json:"ab,omitempty"`
	Policy   *PolicyReply `json:"policy,omitempty"`

	Backends []BackendStat `json:"backends,omitempty"`
}

// BackendStat is one backend's row in a router's merged stats reply.
type BackendStat struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Sessions int    `json:"sessions"` // router sessions currently owned by this backend
	Tenants  int    `json:"tenants"`  // tenants the ring currently assigns to it
	Err      string `json:"error,omitempty"`
}

// ABReply is the wire form of the student tier's shadow-compare digest.
type ABReply struct {
	Batches   uint64  `json:"batches"`
	Labels    uint64  `json:"labels"`
	Agree     uint64  `json:"agree"`
	AgreeRate float64 `json:"agree_rate"`
}

// abReply converts engine A/B stats to the wire form.
func abReply(ab *ABStats) *ABReply {
	if ab == nil {
		return nil
	}
	return &ABReply{Batches: ab.Batches, Labels: ab.Labels, Agree: ab.Agree, AgreeRate: ab.Rate}
}

// OnlineReply is the wire form of the online learner's state: the served
// model version, feedback ingest throughput, the online-loss trend, and —
// when the distilled-student tier runs — the student class's version and
// distillation-loss trend.
type OnlineReply struct {
	Version   uint64  `json:"version"`
	Published uint64  `json:"published"`
	Sessions  int     `json:"sessions"`
	Ingested  uint64  `json:"ingested"`
	Dropped   uint64  `json:"dropped"`
	Useful    uint64  `json:"useful"`
	Late      uint64  `json:"late"`
	Examples  uint64  `json:"examples"`
	Trained   uint64  `json:"trained"`
	Steps     uint64  `json:"steps"`
	Loss      float64 `json:"loss"`
	LossTrend float64 `json:"loss_trend"`
	PerSec    float64 `json:"feedback_per_sec"`

	StudentVersion   uint64  `json:"student_version,omitempty"`
	StudentPublished uint64  `json:"student_published,omitempty"`
	Distilled        uint64  `json:"distilled,omitempty"`
	DistillSteps     uint64  `json:"distill_steps,omitempty"`
	DistillLoss      float64 `json:"distill_loss,omitempty"`
	DistillTrend     float64 `json:"distill_trend,omitempty"`

	DartVersion   uint64  `json:"dart_version,omitempty"`
	DartPublished uint64  `json:"dart_published,omitempty"`
	Tabularized   uint64  `json:"tabularized,omitempty"`
	DartAttempts  uint64  `json:"dart_attempts,omitempty"`
	DartSkips     uint64  `json:"dart_skips,omitempty"`
	TabularizeMs  float64 `json:"tabularize_ms,omitempty"`
}

// onlineReply converts learner stats to the wire form.
func onlineReply(st online.Stats) *OnlineReply {
	return &OnlineReply{
		Version:   st.Version,
		Published: st.Published,
		Sessions:  st.Sessions,
		Ingested:  st.Ingested,
		Dropped:   st.Dropped,
		Useful:    st.Useful,
		Late:      st.Late,
		Examples:  st.Examples,
		Trained:   st.Trained,
		Steps:     st.Steps,
		Loss:      st.Loss,
		LossTrend: st.LossTrend,
		PerSec:    st.PerSec,

		StudentVersion:   st.StudentVersion,
		StudentPublished: st.StudentPublished,
		Distilled:        st.Distilled,
		DistillSteps:     st.DistillSteps,
		DistillLoss:      st.DistillLoss,
		DistillTrend:     st.DistillTrend,

		DartVersion:   st.DartVersion,
		DartPublished: st.DartPublished,
		Tabularized:   st.Tabularized,
		DartAttempts:  st.DartAttempts,
		DartSkips:     st.DartSkips,
		TabularizeMs:  st.TabularizeMs,
	}
}

// PolicyReply is the wire form of the promotion policy engine: lifetime
// action counters, the per-class gate states, and — on the policy verb —
// the retained decision log, oldest first. The stats verb carries the
// counters and gates only.
type PolicyReply struct {
	Enabled    bool           `json:"enabled"`
	Admitted   uint64         `json:"admitted"`
	Held       uint64         `json:"held"`
	RolledBack uint64         `json:"rolled_back"`
	Skipped    uint64         `json:"skipped"`
	Decisions  uint64         `json:"decisions"`
	Gates      []GateReply    `json:"gates,omitempty"`
	Log        []DecisionLine `json:"log,omitempty"`
}

// GateReply is one class's gate state in a policy reply.
type GateReply struct {
	Class            string  `json:"class"`
	PendingBatches   int     `json:"pending_batches"`
	PendingAgreement float64 `json:"pending_agreement"`
	LiveVersion      uint64  `json:"live_version,omitempty"`
	LiveAgreement    float64 `json:"live_agreement"`
	LiveWindows      uint64  `json:"live_windows"`
	Divergent        int     `json:"divergent"`
}

// DecisionLine is one decision-log entry on the wire, evidence included.
type DecisionLine struct {
	Seq       uint64  `json:"seq"`
	Time      string  `json:"time"` // RFC 3339, millisecond precision
	Class     string  `json:"class"`
	Action    string  `json:"action"`
	Version   uint64  `json:"version,omitempty"`
	Reason    string  `json:"reason"`
	Agreement float64 `json:"agreement,omitempty"`
	Batches   int     `json:"batches,omitempty"`
	Labels    uint64  `json:"labels,omitempty"`
	Cosine    float64 `json:"cosine,omitempty"`
	Latency   int     `json:"latency_cycles,omitempty"`
	Storage   int     `json:"storage_bytes,omitempty"`
}

// policyReply converts engine policy stats (and, when non-nil, the decision
// log) to the wire form.
func policyReply(st *online.PolicyStats, log []online.Decision) *PolicyReply {
	if st == nil {
		return nil
	}
	pr := &PolicyReply{
		Enabled:    true,
		Admitted:   st.Admitted,
		Held:       st.Held,
		RolledBack: st.RolledBack,
		Skipped:    st.Skipped,
		Decisions:  st.Decisions,
	}
	for _, g := range st.Gates {
		pr.Gates = append(pr.Gates, GateReply{
			Class:            g.Class,
			PendingBatches:   g.PendingBatches,
			PendingAgreement: g.PendingAgreement,
			LiveVersion:      g.LiveVersion,
			LiveAgreement:    g.LiveAgreement,
			LiveWindows:      g.LiveWindows,
			Divergent:        g.Divergent,
		})
	}
	for _, d := range log {
		pr.Log = append(pr.Log, DecisionLine{
			Seq:       d.Seq,
			Time:      d.Time.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			Class:     d.Class,
			Action:    d.Action,
			Version:   d.Version,
			Reason:    d.Reason,
			Agreement: d.Agreement,
			Batches:   d.Batches,
			Labels:    d.Labels,
			Cosine:    d.Cosine,
			Latency:   d.LatencyCycles,
			Storage:   d.StorageBytes,
		})
	}
	return pr
}

// errReply builds a failure line.
func errReply(session string, err error) Reply {
	return Reply{OK: false, Err: err.Error(), Session: session}
}
