// Package kd implements the paper's multi-label knowledge distillation
// (Sec. VI-D): a large teacher's soft predictions, softened by the T-Sigmoid
// function (Eq. 24), supervise a compact student through a Bernoulli
// Kullback-Leibler loss combined with the hard binary-cross-entropy loss
// (Eq. 25).
package kd

import (
	"fmt"
	"math"
	"math/rand"

	"dart/internal/mat"
	"dart/internal/nn"
)

// TSigmoid is the temperature-softened sigmoid of Eq. 24:
// z = σ(y/T) = 1 / (1 + e^(-y/T)). Higher temperatures flatten the
// distribution toward 0.5, exposing the teacher's dark knowledge.
func TSigmoid(y, temp float64) float64 {
	return 1 / (1 + math.Exp(-y/temp))
}

// BernoulliKL is KL((p,1-p) ‖ (q,1-q)), the per-label soft loss of Eq. 25.
func BernoulliKL(p, q float64) float64 {
	const eps = 1e-12
	p = clamp(p, eps, 1-eps)
	q = clamp(q, eps, 1-eps)
	return p*math.Log(p/q) + (1-p)*math.Log((1-p)/(1-q))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Config holds the distillation hyperparameters. Lambda and Temperature are
// taken literally — λ = 0 requests pure hard-loss training and λ = 1 pure KD,
// both legitimate boundary settings of Eq. 25 — so callers wanting the
// experiment defaults start from DefaultConfig and override fields, or set a
// field to NaN to select its default explicitly. A zero Temperature is a
// configuration error (the T-Sigmoid divides by it), reported by panic rather
// than silently replaced.
type Config struct {
	Lambda      float64 // weight of the soft KD loss in Eq. 25; NaN selects the default
	Temperature float64 // T in the T-Sigmoid; NaN selects the default
	LR          float64
	Batch       int
	Epochs      int
}

// DefaultConfig returns the hyperparameters used in our experiments:
// λ = 0.5, T = 2, Adam at 1e-3, batch 32, 10 epochs.
func DefaultConfig() Config {
	return Config{Lambda: 0.5, Temperature: 2, LR: 1e-3, Batch: 32, Epochs: 10}
}

// withDefaults resolves NaN sentinels and fills the remaining unset
// hyperparameters (whose zero values are meaningless) with the DefaultConfig
// values. Lambda and Temperature are validated, not defaulted, on zero: an
// earlier revision treated 0 as "unset", which made pure hard-loss training
// (λ = 0) impossible to request.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if math.IsNaN(c.Lambda) {
		c.Lambda = def.Lambda
	}
	if c.Lambda < 0 || c.Lambda > 1 {
		panic(fmt.Sprintf("kd: Lambda %v outside [0, 1]", c.Lambda))
	}
	if math.IsNaN(c.Temperature) {
		c.Temperature = def.Temperature
	}
	if c.Temperature <= 0 {
		panic(fmt.Sprintf("kd: Temperature %v must be positive (the zero value no longer selects the default; start from kd.DefaultConfig)", c.Temperature))
	}
	if c.LR == 0 {
		c.LR = def.LR
	}
	if c.Batch == 0 {
		c.Batch = def.Batch
	}
	if c.Epochs == 0 {
		c.Epochs = def.Epochs
	}
	return c
}

// Loss computes the combined distillation loss and its gradient with respect
// to the student logits, given precomputed teacher logits:
//
//	Loss = λ·Σ KL(z_tch ‖ z_stu) + (1-λ)·BCE(student, targets)
//
// The KL gradient through the T-Sigmoid is (z_stu - z_tch)/T per label.
func Loss(studentLogits, teacherLogits, targets *mat.Tensor, lambda, temp float64) (float64, *mat.Tensor) {
	bce, grad := nn.BCEWithLogits(studentLogits, targets)
	n := float64(len(studentLogits.Data))
	var kl float64
	for i, zs := range studentLogits.Data {
		zt := teacherLogits.Data[i]
		p := TSigmoid(zt, temp)
		q := TSigmoid(zs, temp)
		kl += BernoulliKL(p, q)
		// Combine: λ·dKL/dz + (1-λ)·dBCE/dz, both averaged over elements.
		grad.Data[i] = lambda*(q-p)/(temp*n) + (1-lambda)*grad.Data[i]
	}
	kl /= n
	return lambda*kl + (1-lambda)*bce, grad
}

// Distiller trains a student against a frozen teacher.
type Distiller struct {
	Teacher nn.Layer
	Student nn.Layer
	Cfg     Config
	Rng     *rand.Rand
}

// NewDistiller builds a distiller; teacher weights are never updated.
func NewDistiller(teacher, student nn.Layer, cfg Config, rng *rand.Rand) *Distiller {
	return &Distiller{Teacher: teacher, Student: student, Cfg: cfg.withDefaults(), Rng: rng}
}

// Run distills for Cfg.Epochs epochs and returns the per-epoch combined loss.
func (d *Distiller) Run(x, y *mat.Tensor) []float64 {
	opt := nn.NewAdam(d.Cfg.LR)
	losses := make([]float64, 0, d.Cfg.Epochs)
	for e := 0; e < d.Cfg.Epochs; e++ {
		losses = append(losses, d.epoch(x, y, opt))
	}
	return losses
}

func (d *Distiller) epoch(x, y *mat.Tensor, opt nn.Optimizer) float64 {
	n := x.N
	idx := d.Rng.Perm(n)
	var total float64
	var batches int
	for lo := 0; lo < n; lo += d.Cfg.Batch {
		hi := lo + d.Cfg.Batch
		if hi > n {
			hi = n
		}
		bi := idx[lo:hi]
		bx := x.Gather(bi)
		by := y.Gather(bi)
		teacherLogits := d.Teacher.Forward(bx)
		studentLogits := d.Student.Forward(bx)
		loss, grad := Loss(studentLogits, teacherLogits, by, d.Cfg.Lambda, d.Cfg.Temperature)
		d.Student.Backward(grad)
		opt.Step(d.Student.Params())
		total += loss
		batches++
	}
	if batches == 0 {
		return 0
	}
	return total / float64(batches)
}
