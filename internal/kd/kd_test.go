package kd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dart/internal/mat"
	"dart/internal/nn"
)

func TestTSigmoidSoftening(t *testing.T) {
	// Higher temperature pulls outputs toward 0.5.
	y := 3.0
	z1 := TSigmoid(y, 1)
	z4 := TSigmoid(y, 4)
	if !(z1 > z4 && z4 > 0.5) {
		t.Fatalf("softening broken: T=1 %v, T=4 %v", z1, z4)
	}
	if TSigmoid(0, 2) != 0.5 {
		t.Fatal("TSigmoid(0) != 0.5")
	}
	// T=1 reduces to the plain sigmoid.
	if math.Abs(TSigmoid(1.3, 1)-1/(1+math.Exp(-1.3))) > 1e-12 {
		t.Fatal("T=1 is not the identity temperature")
	}
}

func TestBernoulliKLProperties(t *testing.T) {
	if got := BernoulliKL(0.3, 0.3); math.Abs(got) > 1e-9 {
		t.Fatalf("KL(p,p) = %v", got)
	}
	f := func(a, b float64) bool {
		p := math.Abs(math.Mod(a, 1))
		q := math.Abs(math.Mod(b, 1))
		return BernoulliKL(p, q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Asymmetric in general.
	if BernoulliKL(0.9, 0.5) == BernoulliKL(0.5, 0.9) {
		t.Fatal("KL unexpectedly symmetric")
	}
}

func TestLossReducesToBCEAtLambdaZero(t *testing.T) {
	s := mat.TensorFromSlice(1, 1, 3, []float64{0.5, -1, 2})
	tt := mat.TensorFromSlice(1, 1, 3, []float64{1.5, 0, 1})
	y := mat.TensorFromSlice(1, 1, 3, []float64{1, 0, 1})
	lossKD, gradKD := Loss(s, tt, y, 0, 2)
	lossBCE, gradBCE := nn.BCEWithLogits(s, y)
	if math.Abs(lossKD-lossBCE) > 1e-12 {
		t.Fatalf("λ=0 loss %v != BCE %v", lossKD, lossBCE)
	}
	for i := range gradKD.Data {
		if math.Abs(gradKD.Data[i]-gradBCE.Data[i]) > 1e-12 {
			t.Fatal("λ=0 gradient differs from BCE")
		}
	}
}

func TestLossZeroWhenStudentMatchesTeacherAndTargets(t *testing.T) {
	// Student logits == teacher logits and both perfectly confident and
	// correct: KD term ~0, BCE term ~0.
	s := mat.TensorFromSlice(1, 1, 2, []float64{30, -30})
	y := mat.TensorFromSlice(1, 1, 2, []float64{1, 0})
	loss, _ := Loss(s, s.Clone(), y, 0.5, 2)
	if loss > 1e-6 {
		t.Fatalf("matched loss = %v", loss)
	}
}

func TestLossGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := mat.NewTensor(1, 1, 4)
	tt := mat.NewTensor(1, 1, 4)
	y := mat.TensorFromSlice(1, 1, 4, []float64{1, 0, 1, 0})
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
		tt.Data[i] = rng.NormFloat64()
	}
	const lambda, temp = 0.7, 3.0
	_, grad := Loss(s, tt, y, lambda, temp)
	const h = 1e-6
	for i := range s.Data {
		orig := s.Data[i]
		s.Data[i] = orig + h
		lp, _ := Loss(s, tt, y, lambda, temp)
		s.Data[i] = orig - h
		lm, _ := Loss(s, tt, y, lambda, temp)
		s.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5 {
			t.Fatalf("grad[%d] analytic %v vs numeric %v", i, grad.Data[i], num)
		}
	}
}

// distillationSetup trains a teacher on a synthetic multi-label task and
// returns (teacher, data).
func distillationSetup(seed int64) (nn.Layer, *mat.Tensor, *mat.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	cfg := nn.TransformerConfig{T: 4, DIn: 4, DModel: 16, DFF: 32, DOut: 4, Heads: 2, Layers: 2}
	teacher := nn.NewTransformerPredictor(cfg, rng)
	n := 128
	x := mat.NewTensor(n, cfg.T, cfg.DIn)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := mat.NewTensor(n, 1, cfg.DOut)
	for s := 0; s < n; s++ {
		sm := x.Sample(s)
		for d := 0; d < cfg.DOut; d++ {
			var sum float64
			for tt := 0; tt < cfg.T; tt++ {
				sum += sm.At(tt, d)
			}
			if sum > 0 {
				y.Sample(s).Set(0, d, 1)
			}
		}
	}
	tr := nn.NewTrainer(teacher, nn.NewAdam(0.005), 32, rng)
	for e := 0; e < 25; e++ {
		tr.TrainEpoch(x, y, nn.BCEWithLogits)
	}
	return teacher, x, y
}

func TestDistillationLossDecreases(t *testing.T) {
	teacher, x, y := distillationSetup(1)
	rng := rand.New(rand.NewSource(2))
	student := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: 4, DIn: 4, DModel: 8, DFF: 8, DOut: 4, Heads: 2, Layers: 1,
	}, rng)
	cfg := DefaultConfig()
	cfg.Epochs, cfg.LR = 12, 0.005
	d := NewDistiller(teacher, student, cfg, rng)
	losses := d.Run(x, y)
	if len(losses) != 12 {
		t.Fatalf("expected 12 epoch losses, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("distillation loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestDistilledStudentTracksTeacher(t *testing.T) {
	teacher, x, y := distillationSetup(3)
	rng := rand.New(rand.NewSource(4))
	student := nn.NewTransformerPredictor(nn.TransformerConfig{
		T: 4, DIn: 4, DModel: 8, DFF: 8, DOut: 4, Heads: 2, Layers: 1,
	}, rng)
	tl := teacher.Forward(x)
	before := mat.CosineSimilarity(student.Forward(x).AsMatrix(), tl.AsMatrix())
	cfg := DefaultConfig()
	cfg.Epochs, cfg.LR, cfg.Lambda = 20, 0.005, 0.8
	d := NewDistiller(teacher, student, cfg, rng)
	d.Run(x, y)
	after := mat.CosineSimilarity(student.Forward(x).AsMatrix(), tl.AsMatrix())
	if after <= before {
		t.Fatalf("student/teacher cosine did not improve: %v -> %v", before, after)
	}
	if after < 0.5 {
		t.Fatalf("distilled student weakly matches teacher: cosine %v", after)
	}
}

func TestConfigDefaults(t *testing.T) {
	// NaN sentinels select the defaults; LR/Batch/Epochs still zero-fill.
	c := Config{Lambda: math.NaN(), Temperature: math.NaN()}.withDefaults()
	def := DefaultConfig()
	if c != def {
		t.Fatalf("NaN sentinels resolved to %+v, want %+v", c, def)
	}
	if def.Lambda != 0.5 || def.Temperature != 2 {
		t.Fatalf("unexpected experiment defaults: %+v", def)
	}
}

// TestLambdaBoundariesHonored is the regression test for the zero-sentinel
// bug: an explicitly-set Lambda of 0 (pure hard loss) used to be clobbered to
// 0.5 by withDefaults, and Temperature 0 silently became 2. Both boundary
// lambdas must now survive config resolution intact.
func TestLambdaBoundariesHonored(t *testing.T) {
	for _, lambda := range []float64{0, 1} {
		c := Config{Lambda: lambda, Temperature: 2}.withDefaults()
		if c.Lambda != lambda {
			t.Fatalf("Lambda %v clobbered to %v", lambda, c.Lambda)
		}
	}
	// The distiller must keep the boundary value too (it resolves defaults
	// in its constructor).
	rng := rand.New(rand.NewSource(1))
	cfg := nn.TransformerConfig{T: 2, DIn: 2, DModel: 4, DFF: 4, DOut: 2, Heads: 2, Layers: 1}
	teacher := nn.NewTransformerPredictor(cfg, rng)
	student := nn.NewTransformerPredictor(cfg, rng)
	d := NewDistiller(teacher, student, Config{Lambda: 0, Temperature: 2, Epochs: 1}, rng)
	if d.Cfg.Lambda != 0 {
		t.Fatalf("NewDistiller clobbered Lambda 0 to %v", d.Cfg.Lambda)
	}
}

// TestPureHardLossTrainsLikeBCE: with λ = 0 the distiller's epoch loss must
// equal plain BCE training of the same student — the teacher contributes
// nothing. This fails on the pre-fix code, which silently trained at λ = 0.5.
func TestPureHardLossTrainsLikeBCE(t *testing.T) {
	teacher, x, y := distillationSetup(7)
	arch := nn.TransformerConfig{T: 4, DIn: 4, DModel: 8, DFF: 8, DOut: 4, Heads: 2, Layers: 1}
	mkStudent := func() *nn.Sequential {
		return nn.NewTransformerPredictor(arch, rand.New(rand.NewSource(9)))
	}
	a, b := mkStudent(), mkStudent()

	d := NewDistiller(teacher, a, Config{Lambda: 0, Temperature: 2, Epochs: 2, LR: 0.005}, rand.New(rand.NewSource(5)))
	kdLosses := d.Run(x, y)

	tr := nn.NewTrainer(b, nn.NewAdam(0.005), 32, rand.New(rand.NewSource(5)))
	for e := 0; e < 2; e++ {
		bce := tr.TrainEpoch(x, y, nn.BCEWithLogits)
		if math.Abs(kdLosses[e]-bce) > 1e-12 {
			t.Fatalf("epoch %d: λ=0 distillation loss %v != plain BCE %v", e, kdLosses[e], bce)
		}
	}
}

// TestPureSoftLossIgnoresTargets: at λ = 1 the loss must not depend on the
// hard targets at all.
func TestPureSoftLossIgnoresTargets(t *testing.T) {
	s := mat.TensorFromSlice(1, 1, 3, []float64{0.5, -1, 2})
	tt := mat.TensorFromSlice(1, 1, 3, []float64{1.5, 0, 1})
	y1 := mat.TensorFromSlice(1, 1, 3, []float64{1, 0, 1})
	y2 := mat.TensorFromSlice(1, 1, 3, []float64{0, 1, 0})
	l1, g1 := Loss(s, tt, y1, 1, 2)
	l2, g2 := Loss(s, tt, y2, 1, 2)
	if l1 != l2 {
		t.Fatalf("λ=1 loss depends on targets: %v vs %v", l1, l2)
	}
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatal("λ=1 gradient depends on targets")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	expectPanic := func(name string, c Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: withDefaults did not panic", name)
			}
		}()
		c.withDefaults()
	}
	expectPanic("zero temperature", Config{Lambda: 0.5})
	expectPanic("negative temperature", Config{Lambda: 0.5, Temperature: -1})
	expectPanic("lambda above 1", Config{Lambda: 1.5, Temperature: 2})
	expectPanic("negative lambda", Config{Lambda: -0.1, Temperature: 2})
}
