package kd

import (
	"math"
	"math/rand"
	"testing"

	"dart/internal/mat"
	"dart/internal/nn"
)

// gradCheckCases spans the λ boundaries (0 = pure hard loss, 1 = pure KD —
// the settings the zero-sentinel fix made requestable) plus interior mixes,
// at identity and softening temperatures.
var gradCheckCases = []struct {
	lambda, temp float64
}{
	{0, 1}, {0, 2},
	{0.3, 1}, {0.5, 2}, {0.7, 4},
	{1, 1}, {1, 2},
}

// TestLossGradientAtLambdaBoundaries checks the analytic gradient of the
// combined KD+BCE loss with respect to the student logits against central
// finite differences, at interior λ and at both boundaries.
func TestLossGradientAtLambdaBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range gradCheckCases {
		s := mat.NewTensor(2, 1, 4)
		tl := mat.NewTensor(2, 1, 4)
		y := mat.NewTensor(2, 1, 4)
		for i := range s.Data {
			s.Data[i] = rng.NormFloat64()
			tl.Data[i] = rng.NormFloat64()
			y.Data[i] = float64(rng.Intn(2))
		}
		_, grad := Loss(s, tl, y, tc.lambda, tc.temp)
		const h = 1e-6
		for i := range s.Data {
			orig := s.Data[i]
			s.Data[i] = orig + h
			lp, _ := Loss(s, tl, y, tc.lambda, tc.temp)
			s.Data[i] = orig - h
			lm, _ := Loss(s, tl, y, tc.lambda, tc.temp)
			s.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("λ=%v T=%v: grad[%d] analytic %v vs numeric %v",
					tc.lambda, tc.temp, i, grad.Data[i], num)
			}
		}
	}
}

// TestLossGradientThroughStudentNetwork extends the nn gradcheck harness to
// kd.Loss: the gradient kd.Loss feeds into Layer.Backward must produce
// parameter gradients matching finite differences of the end-to-end
// distillation objective, for interior λ and both boundaries.
func TestLossGradientThroughStudentNetwork(t *testing.T) {
	arch := nn.TransformerConfig{T: 3, DIn: 4, DModel: 4, DFF: 8, DOut: 5, Heads: 2, Layers: 1}
	rng := rand.New(rand.NewSource(23))
	x := mat.NewTensor(2, arch.T, arch.DIn)
	tl := mat.NewTensor(2, 1, arch.DOut)
	y := mat.NewTensor(2, 1, arch.DOut)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range tl.Data {
		tl.Data[i] = rng.NormFloat64()
		y.Data[i] = float64(rng.Intn(2))
	}
	objective := func(m nn.Layer, lambda, temp float64) float64 {
		loss, _ := Loss(m.Forward(x), tl, y, lambda, temp)
		return loss
	}
	for _, tc := range gradCheckCases {
		student := nn.NewTransformerPredictor(arch, rand.New(rand.NewSource(31)))
		for _, p := range student.Params() {
			p.ZeroGrad()
		}
		_, grad := Loss(student.Forward(x), tl, y, tc.lambda, tc.temp)
		student.Backward(grad)

		const h = 1e-5
		for _, p := range student.Params() {
			stride := 1
			if len(p.W.Data) > 64 {
				stride = len(p.W.Data) / 37
			}
			for i := 0; i < len(p.W.Data); i += stride {
				orig := p.W.Data[i]
				p.W.Data[i] = orig + h
				fp := objective(student, tc.lambda, tc.temp)
				p.W.Data[i] = orig - h
				fm := objective(student, tc.lambda, tc.temp)
				p.W.Data[i] = orig
				num := (fp - fm) / (2 * h)
				if math.Abs(num-p.G.Data[i]) > 1e-3*(1+math.Abs(num)) {
					t.Fatalf("λ=%v T=%v: param %s grad[%d] analytic %.6g vs numeric %.6g",
						tc.lambda, tc.temp, p.Name, i, p.G.Data[i], num)
				}
			}
		}
	}
}
