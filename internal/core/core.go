// Package core assembles the full DART pipeline of the paper (Fig. 2 and
// Sec. VI): data preparation, attention-based teacher training, table
// configuration under prefetcher design constraints, complexity reduction
// via multi-label knowledge distillation, and layer-wise tabularization with
// fine-tuning. The resulting artifact is a hierarchy of tables that drops
// into the simulator as an LLC prefetcher.
package core

import (
	"fmt"
	"math/rand"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/metrics"
	"dart/internal/nn"
	"dart/internal/prefetch"
	"dart/internal/tabular"
	"dart/internal/trace"
)

// Options controls the pipeline. Zero values select small, fast settings
// suitable for tests and examples; raise the epochs and teacher size to
// approach the paper's training regime.
type Options struct {
	Data        dataprep.Config    // preprocessing (Sec. VI-A)
	Constraints config.Constraints // prefetcher design constraints (τ, s)

	// Teacher structure (Step 1 pursues accuracy without constraints).
	TeacherDModel, TeacherDFF, TeacherHeads, TeacherLayers int
	TeacherEpochs                                          int
	TeacherLR                                              float64

	// Distillation (Step 2).
	KD kd.Config

	// Tabularization (Step 3).
	FineTune       bool
	FineTuneEpochs int
	Encoder        tabular.EncoderKind
	FitSamples     int // PQ-fitting sample cap (tabularization cost control)

	// Also train an undistilled student for the Table VI comparison.
	TrainStudentNoKD bool

	TrainFrac float64
	Seed      int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Data.History == 0 {
		o.Data = dataprep.Default()
	}
	if o.Constraints.LatencyCycles == 0 {
		o.Constraints = config.Constraints{LatencyCycles: 100, StorageBytes: 1 << 20}
	}
	if o.KD == (kd.Config{}) {
		o.KD = kd.DefaultConfig()
	}
	if o.TeacherDModel == 0 {
		o.TeacherDModel = 64
	}
	if o.TeacherDFF == 0 {
		o.TeacherDFF = 128
	}
	if o.TeacherHeads == 0 {
		o.TeacherHeads = 4
	}
	if o.TeacherLayers == 0 {
		o.TeacherLayers = 2
	}
	if o.TeacherEpochs == 0 {
		o.TeacherEpochs = 10
	}
	if o.TeacherLR == 0 {
		o.TeacherLR = 2e-3
	}
	if o.FineTuneEpochs == 0 {
		o.FineTuneEpochs = 8
	}
	if o.FitSamples == 0 {
		o.FitSamples = 512
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.75
	}
	return o
}

// Artifacts is everything the pipeline produces.
type Artifacts struct {
	Opt    Options
	Chosen config.Candidate // configurator output (Table VIII row)

	Train, Test *dataprep.Dataset

	Teacher     *nn.Sequential
	Student     *nn.Sequential
	StudentNoKD *nn.Sequential // nil unless requested
	Tables      *tabular.Result

	F1Teacher     float64
	F1Student     float64
	F1StudentNoKD float64
	F1DART        float64
}

// BuildDART runs the full pipeline on an LLC access trace.
func BuildDART(recs []trace.Record, opt Options) (*Artifacts, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	// Preprocessing.
	ds, err := dataprep.Build(recs, opt.Data)
	if err != nil {
		return nil, err
	}
	train, test := ds.Split(opt.TrainFrac)
	art := &Artifacts{Opt: opt, Train: train, Test: test}

	// Step 0: table configurator chooses the student/table structure.
	space := config.DefaultSpace(opt.Data.History, opt.Data.InputDim(), opt.Data.OutputDim())
	chosen, err := config.Configure(opt.Constraints, space)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	art.Chosen = chosen

	// Step 1: teacher training (unconstrained, accuracy-first).
	teacherCfg := nn.TransformerConfig{
		T: opt.Data.History, DIn: opt.Data.InputDim(),
		DModel: opt.TeacherDModel, DFF: opt.TeacherDFF,
		DOut: opt.Data.OutputDim(), Heads: opt.TeacherHeads, Layers: opt.TeacherLayers,
	}
	art.Teacher = nn.NewTransformerPredictor(teacherCfg, rng)
	tr := nn.NewTrainer(art.Teacher, nn.NewAdam(opt.TeacherLR), 32, rng)
	for e := 0; e < opt.TeacherEpochs; e++ {
		tr.TrainEpoch(train.X, train.Y, nn.BCEWithLogits)
	}

	// Step 2: knowledge distillation into the configured student.
	studentCfg := nn.TransformerConfig{
		T: opt.Data.History, DIn: opt.Data.InputDim(),
		DModel: chosen.Model.DA, DFF: chosen.Model.DF,
		DOut: opt.Data.OutputDim(), Heads: chosen.Model.H, Layers: chosen.Model.L,
	}
	art.Student = nn.NewTransformerPredictor(studentCfg, rng)
	distiller := kd.NewDistiller(art.Teacher, art.Student, opt.KD, rng)
	distiller.Run(train.X, train.Y)

	if opt.TrainStudentNoKD {
		art.StudentNoKD = nn.NewTransformerPredictor(studentCfg, rand.New(rand.NewSource(opt.Seed+1)))
		lr := opt.KD.LR
		if lr == 0 {
			lr = 1e-3
		}
		trNoKD := nn.NewTrainer(art.StudentNoKD, nn.NewAdam(lr), 32, rng)
		epochs := opt.KD.Epochs
		if epochs == 0 {
			epochs = 10
		}
		for e := 0; e < epochs; e++ {
			trNoKD.TrainEpoch(train.X, train.Y, nn.BCEWithLogits)
		}
	}

	// Step 3: layer-wise tabularization with fine-tuning.
	fit := train.X
	if fit.N > opt.FitSamples {
		idx := rng.Perm(fit.N)[:opt.FitSamples]
		fit = fit.Gather(idx)
	}
	art.Tables = tabular.Tabularize(art.Student, fit, tabular.Config{
		Kernel: tabular.KernelConfig{
			K: chosen.Table.K, C: chosen.Table.C,
			Kind: opt.Encoder, DataBits: chosen.Table.DataBits,
		},
		FineTune:       opt.FineTune,
		FineTuneEpochs: opt.FineTuneEpochs,
		Seed:           opt.Seed,
	})

	// Evaluation.
	art.F1Teacher = EvaluateModelF1(art.Teacher, test)
	art.F1Student = EvaluateModelF1(art.Student, test)
	if art.StudentNoKD != nil {
		art.F1StudentNoKD = EvaluateModelF1(art.StudentNoKD, test)
	}
	art.F1DART = EvaluateTableF1(art.Tables.Hierarchy, test)
	return art, nil
}

// EvaluateModelF1 computes micro-F1 of a neural model on a dataset.
func EvaluateModelF1(m nn.Layer, ds *dataprep.Dataset) float64 {
	logits := m.Forward(ds.X)
	return metrics.F1FromLogits(logits.Data, ds.Y.Data)
}

// EvaluateTableF1 computes micro-F1 of a table hierarchy on a dataset.
func EvaluateTableF1(h *tabular.Hierarchy, ds *dataprep.Dataset) float64 {
	out := h.Forward(ds.X)
	return metrics.F1FromLogits(out.Data, ds.Y.Data)
}

// Prefetcher wraps the tabularized predictor as an LLC prefetcher whose
// latency and storage come from the configurator's analytic model.
func (a *Artifacts) Prefetcher(name string, degree int) *prefetch.NNPrefetcher {
	return prefetch.NewNNPrefetcher(name,
		prefetch.TableModel{H: a.Tables.Hierarchy},
		a.Opt.Data, a.Chosen.Latency, a.Chosen.StorageBytes, degree)
}

// StudentPrefetcher wraps the (pre-tabularization) student network as a
// TransFetch-class NN prefetcher with the systolic-array latency model.
func (a *Artifacts) StudentPrefetcher(name string, degree int, ideal bool) *prefetch.NNPrefetcher {
	lat := config.NNLatency(a.Chosen.Model)
	if ideal {
		lat = 0
	}
	storage := config.NNStorageBits(a.Chosen.Model, 32) / 8
	return prefetch.NewNNPrefetcher(name,
		prefetch.NNModel{Model: a.Student},
		a.Opt.Data, lat, storage, degree)
}
