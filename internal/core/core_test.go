package core

import (
	"testing"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/sim"
	"dart/internal/trace"
)

// fastOptions keeps pipeline tests quick: a small teacher, few epochs, and a
// tight PQ-fitting budget. Under -short (the CI race pass, where every
// instruction costs ~10x) the fixture shrinks further — fewer training
// epochs and a smaller PQ-fitting budget — while the full-size fixture
// keeps running in normal mode.
func fastOptions() Options {
	opt := Options{
		Data:          dataprep.Config{History: 6, SegmentBits: 6, Segments: 6, LookForward: 8, DeltaRange: 16},
		Constraints:   config.Constraints{LatencyCycles: 80, StorageBytes: 512 << 10},
		TeacherDModel: 32, TeacherDFF: 64, TeacherHeads: 2, TeacherLayers: 1,
		TeacherEpochs: 4,
		FineTune:      true,
		FitSamples:    128,
		Seed:          3,
	}
	if testing.Short() {
		opt.TeacherEpochs = 2
		opt.FineTuneEpochs = 4
		opt.FitSamples = 64
	}
	return opt
}

// fixtureRecords is the pipeline-fixture trace length (shrunk under -short).
func fixtureRecords() int {
	if testing.Short() {
		return 2200
	}
	return 4000
}

func buildArtifacts(t *testing.T, opt Options) *Artifacts {
	t.Helper()
	recs := trace.Generate(trace.AppSpec{
		Name: "unit", Pages: 300, Streams: 4,
		Strides: []int64{1, 2}, Seed: 9,
	}, fixtureRecords())
	art, err := BuildDART(recs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// sharedArt caches one pipeline build for the tests that use fastOptions
// unchanged; building DART is the expensive part of this package's tests.
var sharedArt *Artifacts

func sharedArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	if sharedArt == nil {
		sharedArt = buildArtifacts(t, fastOptions())
	}
	return sharedArt
}

func TestBuildDARTEndToEnd(t *testing.T) {
	art := sharedArtifacts(t)
	if art.Teacher == nil || art.Student == nil || art.Tables == nil {
		t.Fatal("missing pipeline artifacts")
	}
	if art.Chosen.Latency > 80 || art.Chosen.StorageBytes > 512<<10 {
		t.Fatalf("configurator violated constraints: %+v", art.Chosen)
	}
	for name, f1 := range map[string]float64{
		"teacher": art.F1Teacher, "student": art.F1Student, "dart": art.F1DART,
	} {
		if f1 < 0 || f1 > 1 {
			t.Fatalf("%s F1 %v out of range", name, f1)
		}
	}
	// On a strided trace the teacher must clearly beat chance.
	if art.F1Teacher < 0.3 {
		t.Fatalf("teacher F1 %v too low on a regular trace", art.F1Teacher)
	}
	// The table-based predictor must retain meaningful accuracy.
	if art.F1DART < 0.1 {
		t.Fatalf("DART F1 %v collapsed", art.F1DART)
	}
}

func TestBuildDARTStudentNoKD(t *testing.T) {
	opt := fastOptions()
	opt.TrainStudentNoKD = true
	art := buildArtifacts(t, opt)
	if art.StudentNoKD == nil {
		t.Fatal("no-KD student not trained")
	}
	if art.F1StudentNoKD < 0 || art.F1StudentNoKD > 1 {
		t.Fatalf("no-KD F1 %v out of range", art.F1StudentNoKD)
	}
}

func TestArtifactsPrefetcherRuns(t *testing.T) {
	art := sharedArtifacts(t)
	pf := art.Prefetcher("DART", 4)
	if pf.Latency() != art.Chosen.Latency {
		t.Fatalf("prefetcher latency %d != chosen %d", pf.Latency(), art.Chosen.Latency)
	}
	recs := trace.Generate(trace.AppSpec{
		Name: "unit", Pages: 300, Streams: 4, Strides: []int64{1, 2}, Seed: 10,
	}, 3000)
	cfg := sim.DefaultConfig()
	res := sim.Run(recs, pf, cfg)
	if res.Accesses != 3000 {
		t.Fatalf("sim processed %d accesses", res.Accesses)
	}
}

func TestStudentPrefetcherLatencies(t *testing.T) {
	art := sharedArtifacts(t)
	real := art.StudentPrefetcher("TransFetch", 4, false)
	ideal := art.StudentPrefetcher("TransFetch-I", 4, true)
	if ideal.Latency() != 0 {
		t.Fatalf("ideal latency %d", ideal.Latency())
	}
	if real.Latency() <= art.Chosen.Latency {
		t.Fatalf("NN latency %d should exceed table latency %d", real.Latency(), art.Chosen.Latency)
	}
}

func TestBuildDARTShortTraceFails(t *testing.T) {
	recs := trace.Generate(trace.AppSpec{Name: "tiny", Pages: 10, Seed: 1}, 8)
	if _, err := BuildDART(recs, fastOptions()); err == nil {
		t.Fatal("expected error for a too-short trace")
	}
}

func TestBuildDARTInfeasibleConstraints(t *testing.T) {
	opt := fastOptions()
	opt.Constraints = config.Constraints{LatencyCycles: 1, StorageBytes: 1}
	recs := trace.Generate(trace.AppSpec{Name: "unit", Pages: 100, Seed: 2}, 2000)
	if _, err := BuildDART(recs, opt); err == nil {
		t.Fatal("expected configurator infeasibility error")
	}
}
