package core

// The sweep driver is the concurrent evaluation half of the pipeline: once
// BuildDART has produced a table-based prefetcher, the paper's evaluation
// (Figs. 7-10, Tables V-VIII) runs it — and its baselines — over many traces
// and machine configurations. Those simulations are independent, so the
// driver fans them across the shared worker pool and merges metrics
// deterministically.

import (
	"sort"

	"dart/internal/sim"
	"dart/internal/trace"
)

// SimCase is one cell of an evaluation sweep. New must return a fresh
// prefetcher instance on every call: prefetchers are stateful, and the
// driver instantiates one per case so cases never share mutable state.
// A nil New simulates the no-prefetcher baseline.
type SimCase struct {
	Name string
	Recs []trace.Record
	New  func() sim.Prefetcher
	Cfg  sim.Config
}

// CaseResult pairs a sweep cell with its simulation result.
type CaseResult struct {
	Name string
	Res  sim.Result
}

// RunCases executes every case concurrently and returns results in case
// order. Each case runs the exact sequential simulator, so the output is
// bit-identical to a serial loop for any worker count.
func RunCases(cases []SimCase) []CaseResult {
	jobs := make([]sim.Job, len(cases))
	for i, c := range cases {
		var pf sim.Prefetcher = sim.NoPrefetcher{}
		if c.New != nil {
			pf = c.New()
		}
		jobs[i] = sim.Job{Name: c.Name, Recs: c.Recs, PF: pf, Cfg: c.Cfg}
	}
	res := sim.RunMany(jobs)
	out := make([]CaseResult, len(cases))
	for i, r := range res {
		out[i] = CaseResult{Name: cases[i].Name, Res: r}
	}
	return out
}

// MergeCases folds the results of a sweep into one aggregate via sim.Merge,
// in case order (deterministic).
func MergeCases(results []CaseResult) sim.Result {
	rs := make([]sim.Result, len(results))
	for i, r := range results {
		rs[i] = r.Res
	}
	return sim.Merge(rs)
}

// EvaluateTraces runs the artifact's table-based prefetcher over every trace
// concurrently (one fresh prefetcher per trace) and returns per-trace
// results plus the deterministic aggregate. Map iteration order is random,
// so cases are sorted by trace name to keep the sweep — and its merged
// metrics — reproducible.
func (a *Artifacts) EvaluateTraces(traces map[string][]trace.Record, degree int, cfg sim.Config) ([]CaseResult, sim.Result) {
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	cases := make([]SimCase, len(names))
	for i, name := range names {
		cases[i] = SimCase{
			Name: name,
			Recs: traces[name],
			New:  func() sim.Prefetcher { return a.Prefetcher("DART", degree) },
			Cfg:  cfg,
		}
	}
	results := RunCases(cases)
	return results, MergeCases(results)
}
