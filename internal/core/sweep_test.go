package core

import (
	"testing"

	"dart/internal/par"
	"dart/internal/prefetch"
	"dart/internal/sim"
	"dart/internal/trace"
)

func sweepCases(seed int64) []SimCase {
	cfg := sim.DefaultConfig()
	var cases []SimCase
	for i := 0; i < 4; i++ {
		recs := trace.Generate(trace.AppSpec{
			Name: "sweep", Pages: 100, Streams: 2,
			Strides: []int64{1, 2}, Seed: seed + int64(i),
		}, 2000)
		cases = append(cases,
			SimCase{Name: "baseline", Recs: recs, Cfg: cfg},
			SimCase{Name: "stride", Recs: recs, New: func() sim.Prefetcher { return prefetch.NewStride(2) }, Cfg: cfg},
			SimCase{Name: "bo", Recs: recs, New: func() sim.Prefetcher { return prefetch.NewBestOffset(2) }, Cfg: cfg},
		)
	}
	return cases
}

func TestRunCasesMatchesSerialSimulation(t *testing.T) {
	got := RunCases(sweepCases(70))
	for i, c := range sweepCases(70) {
		var pf sim.Prefetcher = sim.NoPrefetcher{}
		if c.New != nil {
			pf = c.New()
		}
		want := sim.Run(c.Recs, pf, c.Cfg)
		want.Prefetcher = c.Name
		if got[i].Name != c.Name {
			t.Fatalf("case %d name %q != %q", i, got[i].Name, c.Name)
		}
		if got[i].Res != want {
			t.Fatalf("case %d (%s): parallel %+v != serial %+v", i, c.Name, got[i].Res, want)
		}
	}
}

func TestRunCasesWorkerCountInvariance(t *testing.T) {
	par.SetMaxWorkers(1)
	ref := RunCases(sweepCases(80))
	defer par.SetMaxWorkers(0)
	for _, w := range []int{2, 4} {
		par.SetMaxWorkers(w)
		got := RunCases(sweepCases(80))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("w=%d case %d differs", w, i)
			}
		}
	}
}

func TestMergeCasesAggregates(t *testing.T) {
	results := RunCases(sweepCases(90))
	m := MergeCases(results)
	var accesses int
	for _, r := range results {
		accesses += r.Res.Accesses
	}
	if m.Accesses != accesses {
		t.Fatalf("merged accesses %d != %d", m.Accesses, accesses)
	}
}

func TestEvaluateTracesSweep(t *testing.T) {
	art := sharedArtifacts(t)
	traces := map[string][]trace.Record{
		"a": trace.Generate(trace.AppSpec{Name: "a", Pages: 200, Streams: 3, Strides: []int64{1, 2}, Seed: 11}, 2000),
		"b": trace.Generate(trace.AppSpec{Name: "b", Pages: 200, Streams: 3, Strides: []int64{2, 4}, Seed: 12}, 2000),
	}
	results, merged := art.EvaluateTraces(traces, 4, sim.DefaultConfig())
	if len(results) != 2 {
		t.Fatalf("expected 2 per-trace results, got %d", len(results))
	}
	if results[0].Name != "a" || results[1].Name != "b" {
		t.Fatalf("results not sorted by trace name: %s, %s", results[0].Name, results[1].Name)
	}
	if merged.Accesses != results[0].Res.Accesses+results[1].Res.Accesses {
		t.Fatalf("merged accesses %d inconsistent", merged.Accesses)
	}
	// Deterministic end to end: rerunning the sweep reproduces the aggregate.
	_, merged2 := art.EvaluateTraces(traces, 4, sim.DefaultConfig())
	if merged != merged2 {
		t.Fatal("EvaluateTraces aggregate not reproducible")
	}
}
