package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serialises a trace as CSV with the header
// "instr_id,pc,addr,is_load" and hexadecimal pc/addr columns, a format easy
// to produce from a ChampSim LLC-access dump — the hook for running this
// repository against real traces instead of the synthetic generators.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "instr_id,pc,addr,is_load"); err != nil {
		return err
	}
	for _, r := range recs {
		load := 0
		if r.IsLoad {
			load = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,0x%x,0x%x,%d\n", r.InstrID, r.PC, r.Addr, load); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or produced externally in the
// same format). The header line is optional; pc/addr accept hexadecimal
// (0x-prefixed) or decimal.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "instr_id") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 4", lineNo, len(fields))
		}
		instr, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d instr_id: %w", lineNo, err)
		}
		pc, err := parseAddr(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d pc: %w", lineNo, err)
		}
		addr, err := parseAddr(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d addr: %w", lineNo, err)
		}
		load := strings.TrimSpace(fields[3])
		recs = append(recs, Record{
			InstrID: instr,
			PC:      pc,
			Addr:    addr,
			IsLoad:  load == "1" || strings.EqualFold(load, "true"),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func parseAddr(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
