package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serialises a trace as CSV with the header
// "instr_id,pc,addr,is_load" and hexadecimal pc/addr columns, a format easy
// to produce from a ChampSim LLC-access dump — the hook for running this
// repository against real traces instead of the synthetic generators.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "instr_id,pc,addr,is_load"); err != nil {
		return err
	}
	for _, r := range recs {
		load := 0
		if r.IsLoad {
			load = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,0x%x,0x%x,%d\n", r.InstrID, r.PC, r.Addr, load); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Scanner streams a CSV trace record by record without materialising the
// whole trace in memory — the iterator the serving engine's replay mode uses
// to pump arbitrarily long workloads. The header line is optional; pc/addr
// accept hexadecimal (0x-prefixed) or decimal.
//
//	sc := trace.NewScanner(r)
//	for sc.Next() {
//		rec := sc.Record()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	sc     *bufio.Scanner
	rec    Record
	err    error
	lineNo int
}

// NewScanner wraps a reader in a streaming trace iterator.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &Scanner{sc: sc}
}

// Next advances to the next record. It returns false at end of input or on
// the first malformed line; Err distinguishes the two.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if s.lineNo == 1 && strings.HasPrefix(line, "instr_id") {
			continue
		}
		rec, err := parseLine(line, s.lineNo)
		if err != nil {
			s.err = err
			return false
		}
		s.rec = rec
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Record returns the record parsed by the last successful Next.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first parse or read error, or nil at clean end of input.
func (s *Scanner) Err() error { return s.err }

// parseLine decodes one CSV trace line.
func parseLine(line string, lineNo int) (Record, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("trace: line %d has %d fields, want 4", lineNo, len(fields))
	}
	instr, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: line %d instr_id: %w", lineNo, err)
	}
	pc, err := parseAddr(fields[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: line %d pc: %w", lineNo, err)
	}
	addr, err := parseAddr(fields[2])
	if err != nil {
		return Record{}, fmt.Errorf("trace: line %d addr: %w", lineNo, err)
	}
	load := strings.TrimSpace(fields[3])
	return Record{
		InstrID: instr,
		PC:      pc,
		Addr:    addr,
		IsLoad:  load == "1" || strings.EqualFold(load, "true"),
	}, nil
}

// ReadCSV parses a trace written by WriteCSV (or produced externally in the
// same format) into memory. It is the Scanner collected into a slice.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := NewScanner(r)
	var recs []Record
	for sc.Next() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func parseAddr(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
