// Package trace generates synthetic last-level-cache access traces that
// stand in for the SPEC CPU 2006/2017 traces of the paper's Table IV. Each
// benchmark application is modelled as a mixture of access patterns —
// sequential streams, strided sweeps, page-local randomness, deterministic
// pointer-chasing chains, and temporal reuse — parameterised so the per-app
// page and delta cardinalities reproduce the paper's qualitative ordering
// (e.g. 605.mcf has by far the most deltas; 462.libquantum is a nearly pure
// stream with the fewest).
package trace

import (
	"math/rand"
)

// BlockBits is the cache-line size in address bits (64-byte lines).
const BlockBits = 6

// PageBits is the page size in address bits (4 KiB pages).
const PageBits = 12

// BlocksPerPage is the number of cache lines per page.
const BlocksPerPage = 1 << (PageBits - BlockBits)

// Record is one LLC access.
type Record struct {
	InstrID uint64 // retiring instruction sequence number
	PC      uint64
	Addr    uint64 // byte address
	IsLoad  bool
}

// Block returns the cache-line address (byte address >> 6).
func (r Record) Block() uint64 { return r.Addr >> BlockBits }

// Page returns the page address.
func (r Record) Page() uint64 { return r.Addr >> PageBits }

// AppSpec parameterises one synthetic benchmark application.
type AppSpec struct {
	Name  string
	Suite string

	Pages          int     // working-set size in pages
	Streams        int     // concurrent access streams
	Strides        []int64 // block strides the streams draw from
	IrregularFrac  float64 // probability of a random jump within the footprint
	ChaseFrac      float64 // probability of following the pointer-chase chain
	ReuseFrac      float64 // probability of re-touching a recent block
	PCs            int     // distinct program counters
	InstrPerAccess int     // mean retired instructions between LLC accesses
	StickRun       int     // mean consecutive accesses served by one stream
	Seed           int64
}

// Generate produces n access records for the application.
func Generate(spec AppSpec, n int) []Record {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Streams <= 0 {
		spec.Streams = 1
	}
	if spec.PCs <= 0 {
		spec.PCs = 8
	}
	if spec.InstrPerAccess <= 0 {
		spec.InstrPerAccess = 20
	}
	if len(spec.Strides) == 0 {
		spec.Strides = []int64{1}
	}
	if spec.StickRun <= 0 {
		spec.StickRun = 16
	}
	base := uint64(0x10000000) // footprint base address
	footprintBlocks := uint64(spec.Pages) * BlocksPerPage

	// Pointer-chase chain: a fixed random permutation over a subset of the
	// footprint, giving ISB-learnable temporal correlation.
	chainLen := footprintBlocks / 4
	if chainLen < 4 {
		chainLen = 4
	}
	chain := rng.Perm(int(chainLen))
	chainPos := 0

	type stream struct {
		block  uint64
		stride int64
		pc     uint64
	}
	streams := make([]stream, spec.Streams)
	for i := range streams {
		streams[i] = stream{
			block:  uint64(rng.Int63n(int64(footprintBlocks))),
			stride: spec.Strides[rng.Intn(len(spec.Strides))],
			pc:     0x400000 + uint64(rng.Intn(spec.PCs))*4,
		}
	}
	recent := make([]uint64, 0, 64)
	recs := make([]Record, 0, n)
	var instr uint64
	cur := 0    // active stream
	remain := 0 // accesses left in the current sticky run
	for i := 0; i < n; i++ {
		instr += uint64(1 + rng.Intn(2*spec.InstrPerAccess))
		// Streams are sticky: real LLC traces interleave in bursts, which
		// keeps the unique-delta count low for regular applications.
		if remain <= 0 {
			cur = rng.Intn(len(streams))
			remain = 1 + rng.Intn(2*spec.StickRun)
		}
		remain--
		s := &streams[cur]
		var block uint64
		var pc uint64
		r := rng.Float64()
		switch {
		case r < spec.ChaseFrac:
			// Deterministic chain traversal.
			block = uint64(chain[chainPos])
			chainPos = (chainPos + 1) % len(chain)
			pc = 0x500000
		case r < spec.ChaseFrac+spec.IrregularFrac:
			// Irregular jump anywhere in the footprint.
			block = uint64(rng.Int63n(int64(footprintBlocks)))
			pc = 0x600000 + uint64(rng.Intn(spec.PCs))*4
		case r < spec.ChaseFrac+spec.IrregularFrac+spec.ReuseFrac && len(recent) > 0:
			// Temporal reuse of a recent block.
			block = recent[rng.Intn(len(recent))]
			pc = s.pc
		default:
			// Strided stream advance.
			nb := int64(s.block) + s.stride
			if nb < 0 || uint64(nb) >= footprintBlocks {
				nb = rng.Int63n(int64(footprintBlocks))
				s.stride = spec.Strides[rng.Intn(len(spec.Strides))]
			}
			s.block = uint64(nb)
			block = s.block
			pc = s.pc
		}
		if len(recent) < cap(recent) {
			recent = append(recent, block)
		} else {
			recent[i%cap(recent)] = block
		}
		recs = append(recs, Record{
			InstrID: instr,
			PC:      pc,
			Addr:    base + block<<BlockBits,
			IsLoad:  rng.Float64() < 0.7,
		})
	}
	return recs
}

// Stats summarises a trace the way Table IV does.
type Stats struct {
	Accesses  int
	Addresses int // unique block addresses
	Pages     int // unique pages
	Deltas    int // unique successive block deltas
}

// Summarize computes Table IV-style statistics for a trace.
func Summarize(recs []Record) Stats {
	blocks := make(map[uint64]struct{})
	pages := make(map[uint64]struct{})
	deltas := make(map[int64]struct{})
	var prev uint64
	for i, r := range recs {
		b := r.Block()
		blocks[b] = struct{}{}
		pages[r.Page()] = struct{}{}
		if i > 0 {
			deltas[int64(b)-int64(prev)] = struct{}{}
		}
		prev = b
	}
	return Stats{
		Accesses:  len(recs),
		Addresses: len(blocks),
		Pages:     len(pages),
		Deltas:    len(deltas),
	}
}
