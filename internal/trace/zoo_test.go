package trace

import (
	"testing"
)

// zooScales are the trace lengths every generator invariant is checked at.
var zooScales = []int{10_000, 100_000}

// zooSpecs enumerates the four scenario generators with default parameters.
func zooSpecs() map[string]func(n int) []Record {
	return map[string]func(n int) []Record{
		"chase": PointerChaseSpec{Seed: 11}.Generate,
		"graph": GraphSpec{Seed: 12}.Generate,
		"zipf":  ZipfSpec{Seed: 13}.Generate,
		"phase": PhaseShiftSpec{Seed: 14}.Generate,
	}
}

func TestZooDeterministicBytes(t *testing.T) {
	for name, gen := range zooSpecs() {
		t.Run(name, func(t *testing.T) {
			for _, n := range zooScales {
				a, b := gen(n), gen(n)
				if len(a) != n || len(b) != n {
					t.Fatalf("n=%d: got %d/%d records", n, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("n=%d: record %d differs: %+v vs %+v", n, i, a[i], b[i])
					}
				}
			}
		})
	}
}

func TestZooStreamMatchesGenerate(t *testing.T) {
	// Stream and Generate are two views of the same deterministic sequence,
	// and a Stream re-collected must match byte for byte.
	streams := map[string]func(n int) Stream{
		"chase": PointerChaseSpec{Seed: 11}.Stream,
		"graph": GraphSpec{Seed: 12}.Stream,
		"zipf":  ZipfSpec{Seed: 13}.Stream,
		"phase": PhaseShiftSpec{Seed: 14}.Stream,
	}
	gens := zooSpecs()
	for name, st := range streams {
		recs, err := Collect(st(5000))
		if err != nil {
			t.Fatalf("%s: stream error: %v", name, err)
		}
		want := gens[name](5000)
		if len(recs) != len(want) {
			t.Fatalf("%s: %d streamed vs %d generated", name, len(recs), len(want))
		}
		for i := range recs {
			if recs[i] != want[i] {
				t.Fatalf("%s: record %d differs", name, i)
			}
		}
	}
}

func TestZooInstrIDsMonotone(t *testing.T) {
	for name, gen := range zooSpecs() {
		recs := gen(20_000)
		for i := 1; i < len(recs); i++ {
			if recs[i].InstrID <= recs[i-1].InstrID {
				t.Fatalf("%s: InstrID not strictly increasing at %d", name, i)
			}
		}
	}
}

func TestZooFootprintBounds(t *testing.T) {
	type bounded struct {
		gen       func(n int) []Record
		footprint uint64
	}
	cases := map[string]bounded{
		"chase": {PointerChaseSpec{Seed: 11}.Generate, PointerChaseSpec{Seed: 11}.FootprintBlocks()},
		"graph": {GraphSpec{Seed: 12}.Generate, GraphSpec{Seed: 12}.FootprintBlocks()},
		"zipf":  {ZipfSpec{Seed: 13}.Generate, ZipfSpec{Seed: 13}.FootprintBlocks()},
		"phase": {PhaseShiftSpec{Seed: 14}.Generate, PhaseShiftSpec{Seed: 14}.FootprintBlocks()},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			for _, n := range zooScales {
				for i, r := range c.gen(n) {
					blk := r.Block() - zooBase>>BlockBits
					if blk >= c.footprint {
						t.Fatalf("n=%d record %d: block %d outside %d-block footprint", n, i, blk, c.footprint)
					}
				}
			}
		})
	}
}

func TestPointerChaseDeltaStructure(t *testing.T) {
	// A permutation cycle over K nodes produces a large recurring delta set:
	// high delta cardinality (adversarial for bounded delta predictors), yet
	// each delta recurs every cycle (learnable temporally). With a single
	// list the footprint is fully covered once n exceeds the node count.
	spec := PointerChaseSpec{Nodes: 1024, Lists: 1, Seed: 5}
	for _, n := range zooScales {
		s := Summarize(spec.Generate(n))
		if s.Addresses != 1024 {
			t.Fatalf("n=%d: %d unique blocks, want full 1024-node coverage", n, s.Addresses)
		}
		// Near-uniform random permutation jumps: delta variety on the order
		// of the node count, far beyond any ±R delta-bitmap range.
		if s.Deltas < 512 {
			t.Fatalf("n=%d: only %d distinct deltas, want >=512", n, s.Deltas)
		}
	}
}

func TestGraphDeltaStructure(t *testing.T) {
	spec := GraphSpec{Nodes: 512, Degree: 4, Seed: 6}
	for _, n := range zooScales {
		s := Summarize(spec.Generate(n))
		// Random-walk hops between scattered payloads: delta cardinality
		// grows with graph size, well beyond strided-app territory.
		if s.Deltas < 256 {
			t.Fatalf("n=%d: only %d distinct deltas", n, s.Deltas)
		}
		if uint64(s.Addresses) > spec.FootprintBlocks() {
			t.Fatalf("n=%d: %d blocks exceeds footprint %d", n, s.Addresses, spec.FootprintBlocks())
		}
	}
}

func TestZipfSkewStructure(t *testing.T) {
	// Zipfian popularity: the hottest key's value blocks must dominate.
	spec := ZipfSpec{Keys: 4096, ValueBlocks: 1, Seed: 7}
	for _, n := range zooScales {
		counts := map[uint64]int{}
		for _, r := range spec.Generate(n) {
			counts[r.Block()]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if max < n/20 {
			t.Fatalf("n=%d: hottest block only %d/%d accesses; distribution not skewed", n, max, n)
		}
		if len(counts) < 100 {
			t.Fatalf("n=%d: only %d distinct blocks; tail missing", n, len(counts))
		}
	}
}

// modalDelta returns the most frequent successive block delta in a window.
func modalDelta(recs []Record) int64 {
	counts := map[int64]int{}
	for i := 1; i < len(recs); i++ {
		counts[int64(recs[i].Block())-int64(recs[i-1].Block())]++
	}
	var best int64
	bestN := -1
	for d, c := range counts {
		if c > bestN {
			best, bestN = d, c
		}
	}
	return best
}

func TestPhaseShiftPhaseStructure(t *testing.T) {
	// Within each phase the modal delta is the regime's stride; consecutive
	// phases change regime; the cycle has period Regimes.
	spec := PhaseShiftSpec{Pages: 128, PhaseLen: 2048, Regimes: 3, Streams: 1, Seed: 8}
	for _, n := range zooScales {
		recs := spec.Generate(n)
		phases := n / spec.PhaseLen
		for p := 0; p < phases; p++ {
			window := recs[p*spec.PhaseLen : (p+1)*spec.PhaseLen]
			want := spec.Stride(p % spec.Regimes)
			if got := modalDelta(window); got != want {
				t.Fatalf("n=%d phase %d: modal delta %d, want regime stride %d", n, p, got, want)
			}
		}
		if phases >= 2 && spec.Stride(0) == spec.Stride(1) {
			t.Fatal("consecutive regimes share a stride; phase shift is a no-op")
		}
	}
}

func TestPhaseShiftRegimeFootprintsDisjoint(t *testing.T) {
	spec := PhaseShiftSpec{Pages: 64, PhaseLen: 1000, Regimes: 3, Streams: 1, Seed: 9}
	recs := spec.Generate(30_000)
	sliceBlocks := uint64(64) * BlocksPerPage
	for i, r := range recs {
		phase := (i / 1000) % 3
		blk := r.Block() - zooBase>>BlockBits
		if got := int(blk / sliceBlocks); got != phase {
			t.Fatalf("record %d: block in regime slice %d during phase regime %d", i, got, phase)
		}
	}
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) != len(Apps())+4 {
		t.Fatalf("registry has %d entries, want %d", len(ws), len(Apps())+4)
	}
	families := map[string]bool{}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		families[w.Family] = true
		recs := w.Generate(0, 100)
		if len(recs) != 100 {
			t.Fatalf("%s: generated %d records", w.Name, len(recs))
		}
		st, err := Collect(w.Stream(0, 100))
		if err != nil {
			t.Fatalf("%s: stream error: %v", w.Name, err)
		}
		for i := range recs {
			if st[i] != recs[i] {
				t.Fatalf("%s: Stream and Generate disagree at %d", w.Name, i)
			}
		}
	}
	for _, f := range []string{"spec", "pointer", "graph", "kv", "phase"} {
		if !families[f] {
			t.Fatalf("family %q missing from registry", f)
		}
	}
	if _, ok := WorkloadByName("zipf"); !ok {
		t.Fatal("WorkloadByName(zipf) failed")
	}
	if _, ok := WorkloadByName("mcf"); !ok {
		t.Fatal("WorkloadByName(mcf) suffix lookup failed")
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Fatal("unknown workload resolved")
	}
	// Different seeds diversify the stream.
	w, _ := WorkloadByName("chase")
	a, b := w.Generate(1, 200), w.Generate(2, 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed parameter does not perturb the workload")
	}
}

func TestSliceStreamRoundTrip(t *testing.T) {
	recs := Generate(AppSpec{Name: "t", Pages: 10, Seed: 3}, 500)
	got, err := Collect(SliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d vs %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// Scanner satisfies the Stream interface shared with the generators.
var _ Stream = (*Scanner)(nil)
