package trace

import (
	"fmt"
	"math/rand"
)

// Stream is the record-iterator interface shared by Scanner (streaming CSV
// traces) and the workload-zoo generators: Next advances, Record returns the
// current access, Err reports the first failure (always nil for synthetic
// generators). The serving engine's replay paths consume Streams, so a
// generated scenario, an in-memory slice, and a CSV file on disk are
// interchangeable workload sources.
type Stream interface {
	Next() bool
	Record() Record
	Err() error
}

// genStream adapts a step function to Stream: n records, no errors.
type genStream struct {
	n, i int
	step func() Record
	rec  Record
}

func (g *genStream) Next() bool {
	if g.i >= g.n {
		return false
	}
	g.rec = g.step()
	g.i++
	return true
}

func (g *genStream) Record() Record { return g.rec }
func (g *genStream) Err() error     { return nil }

// SliceStream wraps an in-memory trace as a Stream.
func SliceStream(recs []Record) Stream {
	i := 0
	return &genStream{n: len(recs), step: func() Record {
		r := recs[i]
		i++
		return r
	}}
}

// Collect drains a stream into a slice, stopping at the first error.
func Collect(s Stream) ([]Record, error) {
	var recs []Record
	for s.Next() {
		recs = append(recs, s.Record())
	}
	return recs, s.Err()
}

// zooBase is the footprint base address, shared with Generate so zoo and
// SPEC-like traces occupy the same address range.
const zooBase = uint64(0x10000000)

// instrGap returns a random retire-gap helper bound to one rng.
func instrGap(rng *rand.Rand, perAccess int) func() uint64 {
	if perAccess <= 0 {
		perAccess = 20
	}
	return func() uint64 { return uint64(1 + rng.Intn(2*perAccess)) }
}

// PointerChaseSpec is the linked-list traversal scenario: one or more
// independent lists, each a fixed random permutation cycle over its nodes.
// Successive node hops produce a large but *recurring* set of deltas — far
// outside any bounded delta-bitmap range, but perfectly learnable by
// temporal prefetchers (ISB) — the canonical adversary for spatial/delta
// predictors and the friend of temporal ones.
type PointerChaseSpec struct {
	Name           string
	Nodes          int // nodes per list (default 4096)
	NodeBlocks     int // sequential blocks touched per node visit (default 1)
	Lists          int // independent lists, each in its own region (default 1)
	StickRun       int // mean consecutive hops on one list (default 16)
	InstrPerAccess int
	Seed           int64
}

func (s PointerChaseSpec) withDefaults() PointerChaseSpec {
	if s.Nodes <= 0 {
		s.Nodes = 4096
	}
	if s.NodeBlocks <= 0 {
		s.NodeBlocks = 1
	}
	if s.Lists <= 0 {
		s.Lists = 1
	}
	if s.StickRun <= 0 {
		s.StickRun = 16
	}
	return s
}

// FootprintBlocks is the total block footprint of the scenario.
func (s PointerChaseSpec) FootprintBlocks() uint64 {
	s = s.withDefaults()
	return uint64(s.Lists) * uint64(s.Nodes) * uint64(s.NodeBlocks)
}

// Stream returns a deterministic n-record stream of the scenario.
func (s PointerChaseSpec) Stream(n int) Stream {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	gap := instrGap(rng, s.InstrPerAccess)

	type list struct {
		chain []int // visit order: a random permutation cycle
		pos   int
		blk   int // next block offset within the current node
	}
	lists := make([]list, s.Lists)
	for i := range lists {
		lists[i] = list{chain: rng.Perm(s.Nodes)}
	}
	regionBlocks := uint64(s.Nodes * s.NodeBlocks)

	var instr uint64
	cur, remain := 0, 0
	return &genStream{n: n, step: func() Record {
		instr += gap()
		if remain <= 0 {
			cur = rng.Intn(len(lists))
			remain = 1 + rng.Intn(2*s.StickRun)
		}
		remain--
		l := &lists[cur]
		node := l.chain[l.pos]
		block := uint64(cur)*regionBlocks + uint64(node*s.NodeBlocks+l.blk)
		l.blk++
		if l.blk == s.NodeBlocks {
			l.blk = 0
			l.pos = (l.pos + 1) % len(l.chain)
		}
		return Record{
			InstrID: instr,
			PC:      0x500000 + uint64(cur)*8,
			Addr:    zooBase + block<<BlockBits,
			IsLoad:  true, // pointer chasing is all loads
		}
	}}
}

// Generate materialises n records of the scenario.
func (s PointerChaseSpec) Generate(n int) []Record { return mustCollect(s.Stream(n)) }

// GraphSpec is the random graph traversal scenario: a random walk over a
// seeded directed graph. Each step reads the current node's adjacency-list
// blocks (sequential) and then jumps to a random neighbour's payload —
// short sequential bursts glued together by data-dependent jumps, with an
// occasional teleport restart. Deltas are irregular and high-cardinality;
// neither spatial nor temporal prefetchers see a clean recurring structure.
type GraphSpec struct {
	Name           string
	Nodes          int     // graph size (default 2048)
	Degree         int     // out-degree (default 8)
	PayloadBlocks  int     // blocks per node payload (default 2)
	Restart        float64 // teleport probability per step (default 0.02)
	InstrPerAccess int
	Seed           int64
}

func (s GraphSpec) withDefaults() GraphSpec {
	if s.Nodes <= 0 {
		s.Nodes = 2048
	}
	if s.Degree <= 0 {
		s.Degree = 8
	}
	if s.PayloadBlocks <= 0 {
		s.PayloadBlocks = 2
	}
	if s.Restart <= 0 {
		s.Restart = 0.02
	}
	return s
}

// edgesPerBlock is how many 8-byte node ids fit one cache line.
const edgesPerBlock = 8

// adjBlocks is the adjacency-list block span of one node.
func (s GraphSpec) adjBlocks() int { return (s.Degree + edgesPerBlock - 1) / edgesPerBlock }

// FootprintBlocks is the total block footprint: adjacency region followed by
// the payload region.
func (s GraphSpec) FootprintBlocks() uint64 {
	s = s.withDefaults()
	return uint64(s.Nodes) * uint64(s.adjBlocks()+s.PayloadBlocks)
}

// Stream returns a deterministic n-record stream of the scenario.
func (s GraphSpec) Stream(n int) Stream {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	gap := instrGap(rng, s.InstrPerAccess)

	// Seeded random adjacency: edge j of node u.
	adj := make([]int, s.Nodes*s.Degree)
	for i := range adj {
		adj[i] = rng.Intn(s.Nodes)
	}
	adjSpan := uint64(s.adjBlocks())
	payloadBase := uint64(s.Nodes) * adjSpan

	u := rng.Intn(s.Nodes)
	// Per-step plan: adjacency blocks of u, then payload blocks of next node.
	var queue []uint64
	var queuePC uint64
	var instr uint64
	return &genStream{n: n, step: func() Record {
		if len(queue) == 0 {
			// Plan the next hop.
			if rng.Float64() < s.Restart {
				u = rng.Intn(s.Nodes) // teleport: restart the walk
			}
			ab := uint64(u) * adjSpan
			for b := uint64(0); b < adjSpan; b++ {
				queue = append(queue, ab+b)
			}
			v := adj[u*s.Degree+rng.Intn(s.Degree)]
			pb := payloadBase + uint64(v*s.PayloadBlocks)
			for b := 0; b < s.PayloadBlocks; b++ {
				queue = append(queue, pb+uint64(b))
			}
			queuePC = 0x510000 + uint64(u%64)*4
			u = v
		}
		block := queue[0]
		queue = queue[1:]
		instr += gap()
		return Record{
			InstrID: instr,
			PC:      queuePC,
			Addr:    zooBase + block<<BlockBits,
			IsLoad:  rng.Float64() < 0.9,
		}
	}}
}

// Generate materialises n records of the scenario.
func (s GraphSpec) Generate(n int) []Record { return mustCollect(s.Stream(n)) }

// ZipfSpec is the key-value store scenario: keys drawn from a Zipf
// distribution, each access reading the key's value as a short sequential
// block run. Key slots are scattered over the footprint by a seeded
// permutation, so popularity does not imply spatial locality — a hot set
// for the cache, near-noise for delta predictors.
type ZipfSpec struct {
	Name           string
	Keys           int     // distinct keys (default 32768)
	ValueBlocks    int     // sequential blocks per value read (default 2)
	S              float64 // Zipf skew, must be > 1 (default 1.2)
	PCs            int     // distinct request program counters (default 8)
	InstrPerAccess int
	Seed           int64
}

func (s ZipfSpec) withDefaults() ZipfSpec {
	if s.Keys <= 0 {
		s.Keys = 32768
	}
	if s.ValueBlocks <= 0 {
		s.ValueBlocks = 2
	}
	if s.S <= 1 {
		s.S = 1.2
	}
	if s.PCs <= 0 {
		s.PCs = 8
	}
	return s
}

// FootprintBlocks is the total block footprint of the scenario.
func (s ZipfSpec) FootprintBlocks() uint64 {
	s = s.withDefaults()
	return uint64(s.Keys) * uint64(s.ValueBlocks)
}

// Stream returns a deterministic n-record stream of the scenario.
func (s ZipfSpec) Stream(n int) Stream {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	gap := instrGap(rng, s.InstrPerAccess)
	zipf := rand.NewZipf(rng, s.S, 1, uint64(s.Keys-1))
	slot := rng.Perm(s.Keys) // key rank -> scattered slot

	var instr uint64
	var rem int
	var base, pc uint64
	return &genStream{n: n, step: func() Record {
		if rem == 0 {
			k := int(zipf.Uint64())
			base = uint64(slot[k] * s.ValueBlocks)
			pc = 0x520000 + uint64(k%s.PCs)*4
			rem = s.ValueBlocks
		}
		block := base + uint64(s.ValueBlocks-rem)
		rem--
		instr += gap()
		return Record{
			InstrID: instr,
			PC:      pc,
			Addr:    zooBase + block<<BlockBits,
			IsLoad:  rng.Float64() < 0.8,
		}
	}}
}

// Generate materialises n records of the scenario.
func (s ZipfSpec) Generate(n int) []Record { return mustCollect(s.Stream(n)) }

// PhaseShiftSpec is the adversarial scenario built to punish a stale model:
// the stream switches delta regimes on a fixed schedule. Each regime is a
// strided sweep with its own dominant stride, its own footprint slice, and
// its own program counters; every PhaseLen accesses the active regime
// advances (cycling with period Regimes), so the delta distribution a model
// learned in one phase is wrong in the next. An online learner that keeps
// up re-converges each phase; a frozen model's accuracy collapses after the
// first shift — the measurable staleness signal the workload zoo exists to
// produce.
type PhaseShiftSpec struct {
	Name           string
	Pages          int     // footprint pages per regime (default 256)
	PhaseLen       int     // accesses per phase (default 2048)
	Regimes        int     // distinct delta regimes cycled through (default 3)
	StridePool     []int64 // regime r strides by StridePool[r] (default {2,5,7,3,6,4})
	Streams        int     // concurrent streams per regime (default 2)
	Jitter         float64 // irregular-jump probability within the slice (default 0.02)
	InstrPerAccess int
	Seed           int64
}

func (s PhaseShiftSpec) withDefaults() PhaseShiftSpec {
	if s.Pages <= 0 {
		s.Pages = 256
	}
	if s.PhaseLen <= 0 {
		s.PhaseLen = 2048
	}
	if s.Regimes <= 0 {
		s.Regimes = 3
	}
	if len(s.StridePool) == 0 {
		s.StridePool = []int64{2, 5, 7, 3, 6, 4}
	}
	if s.Regimes > len(s.StridePool) {
		s.Regimes = len(s.StridePool)
	}
	if s.Streams <= 0 {
		s.Streams = 2
	}
	if s.Jitter < 0 {
		s.Jitter = 0
	} else if s.Jitter == 0 {
		s.Jitter = 0.02
	}
	return s
}

// Stride returns regime r's dominant stride.
func (s PhaseShiftSpec) Stride(r int) int64 {
	s = s.withDefaults()
	return s.StridePool[r%s.Regimes]
}

// FootprintBlocks is the total block footprint across every regime slice.
func (s PhaseShiftSpec) FootprintBlocks() uint64 {
	s = s.withDefaults()
	return uint64(s.Regimes) * uint64(s.Pages) * BlocksPerPage
}

// Stream returns a deterministic n-record stream of the scenario.
func (s PhaseShiftSpec) Stream(n int) Stream {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	gap := instrGap(rng, s.InstrPerAccess)
	sliceBlocks := uint64(s.Pages) * BlocksPerPage

	// Per-regime stream cursors persist across that regime's phases, so a
	// regime re-enters with the same spatial structure it left with.
	cursors := make([][]uint64, s.Regimes)
	for r := range cursors {
		cursors[r] = make([]uint64, s.Streams)
		for i := range cursors[r] {
			cursors[r][i] = uint64(rng.Int63n(int64(sliceBlocks)))
		}
	}

	var instr uint64
	step := 0
	return &genStream{n: n, step: func() Record {
		regime := (step / s.PhaseLen) % s.Regimes
		step++
		stride := s.StridePool[regime]
		cur := cursors[regime]
		si := rng.Intn(len(cur))
		var block uint64
		if rng.Float64() < s.Jitter {
			block = uint64(rng.Int63n(int64(sliceBlocks)))
			cur[si] = block
		} else {
			nb := int64(cur[si]) + stride
			if nb < 0 || uint64(nb) >= sliceBlocks {
				nb = rng.Int63n(int64(sliceBlocks))
			}
			cur[si] = uint64(nb)
			block = cur[si]
		}
		block += uint64(regime) * sliceBlocks // regime's own footprint slice
		instr += gap()
		return Record{
			InstrID: instr,
			PC:      0x530000 + uint64(regime)*16 + uint64(si)*4,
			IsLoad:  rng.Float64() < 0.75,
			Addr:    zooBase + block<<BlockBits,
		}
	}}
}

// Generate materialises n records of the scenario.
func (s PhaseShiftSpec) Generate(n int) []Record { return mustCollect(s.Stream(n)) }

// mustCollect drains a generator stream (generators never error).
func mustCollect(s Stream) []Record {
	recs, err := Collect(s)
	if err != nil {
		panic(fmt.Sprintf("trace: generator stream failed: %v", err))
	}
	return recs
}

// Workload is one entry of the workload zoo: a named, seed-parameterised
// trace source. Stream and Generate are equivalent views (Generate collects
// Stream); seed perturbs the scenario's base seed so replay drivers can
// diversify many sessions of the same workload.
type Workload struct {
	Name     string
	Family   string // "spec", "pointer", "graph", "kv", or "phase"
	Stream   func(seed int64, n int) Stream
	Generate func(seed int64, n int) []Record
}

// Workloads lists the full zoo: the eight SPEC-like applications plus the
// four adversarial scenario generators.
func Workloads() []Workload {
	var ws []Workload
	for _, a := range Apps() {
		spec := a
		ws = append(ws, Workload{
			Name:   spec.Name,
			Family: "spec",
			Stream: func(seed int64, n int) Stream {
				s := spec
				s.Seed += seed
				return SliceStream(Generate(s, n))
			},
			Generate: func(seed int64, n int) []Record {
				s := spec
				s.Seed += seed
				return Generate(s, n)
			},
		})
	}
	ws = append(ws,
		Workload{
			Name: "chase", Family: "pointer",
			Stream: func(seed int64, n int) Stream {
				return PointerChaseSpec{Name: "chase", Seed: 7001 + seed}.Stream(n)
			},
			Generate: func(seed int64, n int) []Record {
				return PointerChaseSpec{Name: "chase", Seed: 7001 + seed}.Generate(n)
			},
		},
		Workload{
			Name: "graph", Family: "graph",
			Stream: func(seed int64, n int) Stream {
				return GraphSpec{Name: "graph", Seed: 7002 + seed}.Stream(n)
			},
			Generate: func(seed int64, n int) []Record {
				return GraphSpec{Name: "graph", Seed: 7002 + seed}.Generate(n)
			},
		},
		Workload{
			Name: "zipf", Family: "kv",
			Stream: func(seed int64, n int) Stream {
				return ZipfSpec{Name: "zipf", Seed: 7003 + seed}.Stream(n)
			},
			Generate: func(seed int64, n int) []Record {
				return ZipfSpec{Name: "zipf", Seed: 7003 + seed}.Generate(n)
			},
		},
		Workload{
			Name: "phase", Family: "phase",
			Stream: func(seed int64, n int) Stream {
				return PhaseShiftSpec{Name: "phase", Seed: 7004 + seed}.Stream(n)
			},
			Generate: func(seed int64, n int) []Record {
				return PhaseShiftSpec{Name: "phase", Seed: 7004 + seed}.Generate(n)
			},
		},
	)
	return ws
}

// WorkloadByName finds a workload by exact name or name suffix ("mcf",
// "zipf"), mirroring AppByName.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name || hasSuffix(w.Name, name) {
			return w, true
		}
	}
	return Workload{}, false
}
