package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	recs := Generate(AppSpec{Name: "t", Pages: 50, Streams: 2, Seed: 4}, 500)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d -> %d records", len(recs), len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "100,0x400000,0x10000040,1\n200,0x400004,0x10000080,0\n"
	recs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].PC != 0x400000 || recs[0].Addr != 0x10000040 || !recs[0].IsLoad {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].IsLoad {
		t.Fatal("record 1 should be a store")
	}
}

func TestReadCSVDecimalAddresses(t *testing.T) {
	recs, err := ReadCSV(strings.NewReader("5,1024,2048,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].PC != 1024 || recs[0].Addr != 2048 || !recs[0].IsLoad {
		t.Fatalf("record = %+v", recs[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"1,2,3\n",       // too few fields
		"x,0x1,0x2,1\n", // bad instr
		"1,zz,0x2,1\n",  // bad pc
		"1,0x1,zz,1\n",  // bad addr
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "instr_id,pc,addr,is_load\n\n1,0x1,0x40,1\n\n"
	recs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
}
