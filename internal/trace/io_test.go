package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	recs := Generate(AppSpec{Name: "t", Pages: 50, Streams: 2, Seed: 4}, 500)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d -> %d records", len(recs), len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

// TestCSVStreamRoundTrip: write → stream-read via the Scanner → compare,
// without ever materialising the trace through ReadCSV.
func TestCSVStreamRoundTrip(t *testing.T) {
	recs := Generate(AppSpec{Name: "s", Pages: 80, Streams: 3, IrregularFrac: 0.2, Seed: 9}, 2000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&buf)
	n := 0
	for sc.Next() {
		if n >= len(recs) {
			t.Fatalf("scanner produced more than %d records", len(recs))
		}
		if got := sc.Record(); got != recs[n] {
			t.Fatalf("record %d: %+v != %+v", n, got, recs[n])
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("streamed %d of %d records", n, len(recs))
	}
	// Exhausted scanner stays exhausted.
	if sc.Next() {
		t.Fatal("Next() returned true after end of input")
	}
}

func TestScannerStopsAtFirstBadLine(t *testing.T) {
	in := "1,0x1,0x40,1\nbogus line\n2,0x2,0x80,0\n"
	sc := NewScanner(strings.NewReader(in))
	if !sc.Next() {
		t.Fatal("first record should parse")
	}
	if sc.Next() {
		t.Fatal("second line should fail")
	}
	if sc.Err() == nil {
		t.Fatal("scanner swallowed the parse error")
	}
	// Err is sticky and Next keeps returning false.
	if sc.Next() {
		t.Fatal("scanner advanced past a sticky error")
	}
}

func TestScannerSkipsHeaderAndBlanks(t *testing.T) {
	in := "instr_id,pc,addr,is_load\n\n7,0x10,0x400,1\n\n"
	sc := NewScanner(strings.NewReader(in))
	if !sc.Next() {
		t.Fatalf("no record: %v", sc.Err())
	}
	if r := sc.Record(); r.InstrID != 7 || r.PC != 0x10 || r.Addr != 0x400 || !r.IsLoad {
		t.Fatalf("record %+v", r)
	}
	if sc.Next() || sc.Err() != nil {
		t.Fatalf("expected clean EOF, got Next=true or err=%v", sc.Err())
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "100,0x400000,0x10000040,1\n200,0x400004,0x10000080,0\n"
	recs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].PC != 0x400000 || recs[0].Addr != 0x10000040 || !recs[0].IsLoad {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].IsLoad {
		t.Fatal("record 1 should be a store")
	}
}

func TestReadCSVDecimalAddresses(t *testing.T) {
	recs, err := ReadCSV(strings.NewReader("5,1024,2048,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].PC != 1024 || recs[0].Addr != 2048 || !recs[0].IsLoad {
		t.Fatalf("record = %+v", recs[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"1,2,3\n",       // too few fields
		"x,0x1,0x2,1\n", // bad instr
		"1,zz,0x2,1\n",  // bad pc
		"1,0x1,zz,1\n",  // bad addr
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "instr_id,pc,addr,is_load\n\n1,0x1,0x40,1\n\n"
	recs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
}
