package trace

import (
	"testing"
)

func TestGenerateLength(t *testing.T) {
	spec := AppSpec{Name: "test", Pages: 100, Streams: 2, Seed: 1}
	recs := Generate(spec, 1000)
	if len(recs) != 1000 {
		t.Fatalf("generated %d records", len(recs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := AppSpec{Name: "test", Pages: 100, Streams: 2, Seed: 42}
	a := Generate(spec, 500)
	b := Generate(spec, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between runs with same seed", i)
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	spec := AppSpec{Name: "test", Pages: 50, Streams: 4, Strides: []int64{1, 64}, Seed: 7}
	recs := Generate(spec, 5000)
	footprint := uint64(50) * BlocksPerPage
	base := recs[0].Addr >> BlockBits
	_ = base
	for _, r := range recs {
		blk := r.Block() - (uint64(0x10000000) >> BlockBits)
		if blk >= footprint {
			t.Fatalf("block %d outside %d-block footprint", blk, footprint)
		}
	}
}

func TestInstrIDsMonotone(t *testing.T) {
	recs := Generate(AppSpec{Name: "t", Pages: 10, Seed: 3}, 1000)
	for i := 1; i < len(recs); i++ {
		if recs[i].InstrID <= recs[i-1].InstrID {
			t.Fatalf("InstrID not strictly increasing at %d", i)
		}
	}
}

func TestSummarizeCountsUnique(t *testing.T) {
	recs := []Record{
		{Addr: 0 << BlockBits}, {Addr: 1 << BlockBits}, {Addr: 0 << BlockBits},
	}
	s := Summarize(recs)
	if s.Accesses != 3 || s.Addresses != 2 || s.Pages != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Deltas: +1 and -1.
	if s.Deltas != 2 {
		t.Fatalf("deltas %d", s.Deltas)
	}
}

func TestTableIVQualitativeOrdering(t *testing.T) {
	// The synthetic apps must reproduce the paper's qualitative structure.
	const n = 50000
	stats := map[string]Stats{}
	for _, a := range Apps() {
		stats[a.Name] = Summarize(Generate(a, n))
	}
	// 605.mcf has by far the most deltas.
	mcf := stats["605.mcf"].Deltas
	for name, s := range stats {
		if name == "605.mcf" {
			continue
		}
		if s.Deltas*3 > mcf {
			t.Errorf("%s deltas %d too close to mcf's %d", name, s.Deltas, mcf)
		}
	}
	// 462.libquantum has the fewest deltas (pure stream).
	libq := stats["462.libquantum"].Deltas
	for name, s := range stats {
		if name == "462.libquantum" {
			continue
		}
		if s.Deltas < libq {
			t.Errorf("%s deltas %d below libquantum's %d", name, s.Deltas, libq)
		}
	}
	// 433.milc touches the most pages.
	milc := stats["433.milc"].Pages
	for name, s := range stats {
		if name == "433.milc" {
			continue
		}
		if s.Pages >= milc {
			t.Errorf("%s pages %d >= milc's %d", name, s.Pages, milc)
		}
	}
	// leslie3d has the smallest page footprint of the 2006 apps, as in Table IV.
	if stats["437.leslie3d"].Pages >= stats["410.bwaves"].Pages {
		t.Error("leslie3d should touch fewer pages than bwaves")
	}
}

func TestAppByName(t *testing.T) {
	if _, ok := AppByName("mcf"); !ok {
		t.Fatal("suffix lookup failed")
	}
	if a, ok := AppByName("410.bwaves"); !ok || a.Name != "410.bwaves" {
		t.Fatal("exact lookup failed")
	}
	if _, ok := AppByName("nonexistent"); ok {
		t.Fatal("lookup of unknown app succeeded")
	}
}

func TestAppsHaveDistinctSeeds(t *testing.T) {
	seen := map[int64]string{}
	for _, a := range Apps() {
		if prev, dup := seen[a.Seed]; dup {
			t.Fatalf("apps %s and %s share seed %d", prev, a.Name, a.Seed)
		}
		seen[a.Seed] = a.Name
	}
}

func TestBlockAndPage(t *testing.T) {
	r := Record{Addr: 0x12345678}
	if r.Block() != 0x12345678>>6 || r.Page() != 0x12345678>>12 {
		t.Fatal("block/page math broken")
	}
}
