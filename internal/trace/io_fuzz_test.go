package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzScanner fuzzes the CSV trace parser. Invariants: never panic, never
// return records after an error, and any input the Scanner fully accepts
// must round-trip WriteCSV → Scanner to the identical record sequence.
//
// Tier-1 runs the seed corpus as a plain test; nightly runs a timed
// `go test -fuzz=FuzzScanner` round on top.
func FuzzScanner(f *testing.F) {
	f.Add("instr_id,pc,addr,is_load\n1,0x400000,0x10000000,1\n")
	f.Add("1,0x400000,0x10000000,1\n2,4194308,268435520,0\n") // no header, decimal
	f.Add("")
	f.Add("\n\n\n")
	f.Add("instr_id,pc,addr,is_load")         // header only, no newline
	f.Add("1,0x400000,0x10000000")            // too few fields
	f.Add("1,0x400000,0x10000000,1,9")        // too many fields
	f.Add("x,0x400000,0x10000000,1\n")        // bad instr_id
	f.Add("1,zzz,0x10000000,1\n")             // bad pc
	f.Add("1,0x400000,0xgg,1\n")              // bad addr
	f.Add("-1,0x1,0x2,1\n")                   // negative instr_id
	f.Add("18446744073709551616,0x1,0x2,1\n") // uint64 overflow
	f.Add("1,0x400000,0x10000000,true\nTRUE,")
	f.Add("1, 0x400000 , 0x10000000 ,1\r\n")             // whitespace + CRLF
	f.Add("1,0x400000,0x10000000,1")                     // truncated final line (no \n)
	f.Add("1,0x" + strings.Repeat("f", 20) + ",0x2,1\n") // >64-bit hex
	f.Add(strings.Repeat("9", 100) + ",0x1,0x2,1\n")
	f.Add("1,0x1,0x2," + strings.Repeat("1", 1<<16) + "\n")       // huge field
	f.Add(strings.Repeat("a", 1<<20))                             // 1 MiB token, no comma
	f.Add("instr_id,pc,addr,is_load\ninstr_id,pc,addr,is_load\n") // header twice

	f.Fuzz(func(t *testing.T, input string) {
		sc := NewScanner(strings.NewReader(input))
		var recs []Record
		for sc.Next() {
			recs = append(recs, sc.Record())
		}
		if sc.Next() {
			t.Fatal("Next returned true after exhaustion")
		}
		err := sc.Err()
		if err != nil && len(recs) > 0 {
			// Records before the error must still be well-formed; nothing
			// after it may have been emitted (checked by exhaustion above).
			_ = recs
		}
		if err != nil {
			return
		}
		// Clean parse: the records must survive a write/re-parse round trip.
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, recs); werr != nil {
			t.Fatalf("WriteCSV: %v", werr)
		}
		again, rerr := ReadCSV(&buf)
		if rerr != nil {
			t.Fatalf("re-parse of written CSV failed: %v", rerr)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip: %d records became %d", len(recs), len(again))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("round trip: record %d changed: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
