package trace

// Apps returns the eight synthetic benchmark applications standing in for
// Table IV. Parameters are tuned (at the default 100K-access scale) to
// reproduce the paper's qualitative per-app structure:
//
//   - 462.libquantum: almost pure unit-stride streaming → very few deltas.
//   - 605.mcf: pointer-heavy and irregular → orders of magnitude more deltas
//     than any other app.
//   - 433.milc: the largest page footprint.
//   - 437.leslie3d / 619.lbm: small footprints, regular sweeps.
//   - 410.bwaves / 621.wrf: multi-stream strided with moderate delta variety.
//   - 602.gcc: mixed control-heavy behaviour.
func Apps() []AppSpec {
	return []AppSpec{
		{
			Name: "410.bwaves", Suite: "SPEC 2006",
			Pages: 3700, Streams: 8,
			Strides:       []int64{1, 2, 4, 8, 16, 64, 65, 128},
			IrregularFrac: 0.02, ReuseFrac: 0.05,
			PCs: 16, Seed: 410,
		},
		{
			Name: "433.milc", Suite: "SPEC 2006",
			Pages: 19800, Streams: 12,
			Strides:       []int64{1, 4, 16, 64, 256},
			IrregularFrac: 0.04, ReuseFrac: 0.05,
			PCs: 24, Seed: 433,
		},
		{
			Name: "437.leslie3d", Suite: "SPEC 2006",
			Pages: 1700, Streams: 4,
			Strides:       []int64{1, 2, 64},
			IrregularFrac: 0.015, ReuseFrac: 0.10,
			PCs: 12, Seed: 437,
		},
		{
			Name: "462.libquantum", Suite: "SPEC 2006",
			Pages: 5400, Streams: 2,
			Strides:       []int64{1},
			IrregularFrac: 0.001, ReuseFrac: 0.0,
			PCs: 4, Seed: 462,
		},
		{
			Name: "602.gcc", Suite: "SPEC 2017",
			Pages: 3400, Streams: 6,
			Strides:       []int64{1, 2, 3, 64},
			IrregularFrac: 0.025, ReuseFrac: 0.15, ChaseFrac: 0.02,
			PCs: 32, Seed: 602,
		},
		{
			Name: "605.mcf", Suite: "SPEC 2017",
			Pages: 3700, Streams: 8,
			Strides:       []int64{1, 7, 13},
			IrregularFrac: 0.55, ReuseFrac: 0.05, ChaseFrac: 0.15,
			PCs: 32, Seed: 605,
		},
		{
			Name: "619.lbm", Suite: "SPEC 2017",
			Pages: 1900, Streams: 4,
			Strides:       []int64{1, 2},
			IrregularFrac: 0.005, ReuseFrac: 0.05,
			PCs: 8, Seed: 619,
		},
		{
			Name: "621.wrf", Suite: "SPEC 2017",
			Pages: 3300, Streams: 8,
			Strides:       []int64{1, 3, 9, 27, 64, 128},
			IrregularFrac: 0.03, ReuseFrac: 0.05,
			PCs: 20, Seed: 621,
		},
	}
}

// AppByName finds an application spec by (suffix of) its name, e.g. "mcf".
func AppByName(name string) (AppSpec, bool) {
	for _, a := range Apps() {
		if a.Name == name || hasSuffix(a.Name, name) {
			return a, true
		}
	}
	return AppSpec{}, false
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
