package mat

import (
	"fmt"

	"dart/internal/par"
)

// The parallel matmul engine computes dst[i][j] += a.Row(i) · bt.Row(j),
// where bt holds the right-hand operand with its columns laid out as rows so
// both operands stream contiguously. Work is split over groups of tileRows
// output rows anchored at absolute offsets (rows [0,4), [4,8), ...): the
// worker pool hands each worker a contiguous span of whole groups, every
// group's reduction runs serially in ascending-k order, and a fixed-width
// register tile (4x2 scalar, or the AVX2+FMA micro-kernel on amd64) computes
// the dot products. Because a group's output depends only on its inputs and
// the fixed tile shape — never on which worker runs it — results are
// bit-identical for any worker count, including fully serial runs.
const (
	tileRows  = 4  // output rows per group (matches the micro-kernel)
	panelCols = 64 // bt rows per cache panel, kept hot across a group span
)

// ParMulInto computes dst = a * b on the parallel blocked engine regardless
// of operand size. dst must not alias a or b. MulInto dispatches here above
// a size cutoff; call ParMulInto directly to force the engine for small
// operands (useful for benchmarking and equivalence tests).
func ParMulInto(dst, a, b *Matrix) {
	checkMulInto(dst, a, b)
	dst.Zero()
	dotEngine(dst, a, transposeData(b), b.Cols)
}

// checkMulInto validates dst = a * b shapes (shared with MulInto).
func checkMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: Mul dst shape mismatch")
	}
}

// transposeData returns b's data transposed ([Cols][Rows], row-major),
// blocked for cache friendliness.
func transposeData(b *Matrix) []float64 {
	n, p := b.Rows, b.Cols
	bt := make([]float64, n*p)
	const blk = 32
	for ii := 0; ii < n; ii += blk {
		ihi := min(ii+blk, n)
		for jj := 0; jj < p; jj += blk {
			jhi := min(jj+blk, p)
			for i := ii; i < ihi; i++ {
				row := b.Data[i*p:]
				for j := jj; j < jhi; j++ {
					bt[j*n+i] = row[j]
				}
			}
		}
	}
	return bt
}

// dotEngine adds a · btᵀ into dst, where bt is p rows of length a.Cols.
// dst must already hold the values the products accumulate onto (zeros for
// a plain multiply).
func dotEngine(dst, a *Matrix, bt []float64, p int) {
	rows := a.Rows
	if rows == 0 || p == 0 {
		return
	}
	groups := (rows + tileRows - 1) / tileRows
	par.For(groups, 1, func(glo, ghi int) {
		dotGroups(dst, a, bt, p, glo, ghi)
	})
}

// dotGroups computes output-row groups [glo, ghi). The bt panel loop sits
// outside the group loop so a panel stays cache-hot across the whole span;
// per output element the reduction order is unaffected (each (group, panel)
// pair owns its dst elements exclusively).
func dotGroups(dst, a *Matrix, bt []float64, p, glo, ghi int) {
	rows, n := a.Rows, a.Cols
	for jj := 0; jj < p; jj += panelCols {
		jhi := min(jj+panelCols, p)
		for g := glo; g < ghi; g++ {
			i := g * tileRows
			if i+tileRows <= rows {
				dotGroup4(dst, a, bt, n, p, i, jj, jhi)
			} else {
				dotGroupTail(dst, a, bt, n, p, i, rows, jj, jhi)
			}
		}
	}
}

// dotGroup4 handles one full 4-row group against bt rows [jj, jhi).
func dotGroup4(dst, a *Matrix, bt []float64, n, p, i, jj, jhi int) {
	a0 := a.Data[(i+0)*n : (i+1)*n]
	a1 := a.Data[(i+1)*n : (i+2)*n]
	a2 := a.Data[(i+2)*n : (i+3)*n]
	a3 := a.Data[(i+3)*n : (i+4)*n]
	n4 := n &^ 3
	var c [8]float64
	j := jj
	for ; j+2 <= jhi; j += 2 {
		b0 := bt[(j+0)*n : (j+1)*n]
		b1 := bt[(j+1)*n : (j+2)*n]
		if useVectorKernel && n4 > 0 {
			dotTile4x2AVX(&a0[0], &a1[0], &a2[0], &a3[0], &b0[0], &b1[0], n4, &c)
			for k := n4; k < n; k++ {
				x0, x1 := b0[k], b1[k]
				c[0] += a0[k] * x0
				c[1] += a0[k] * x1
				c[2] += a1[k] * x0
				c[3] += a1[k] * x1
				c[4] += a2[k] * x0
				c[5] += a2[k] * x1
				c[6] += a3[k] * x0
				c[7] += a3[k] * x1
			}
		} else {
			dotTile4x2(a0, a1, a2, a3, b0, b1, &c)
		}
		dst.Data[(i+0)*p+j] += c[0]
		dst.Data[(i+0)*p+j+1] += c[1]
		dst.Data[(i+1)*p+j] += c[2]
		dst.Data[(i+1)*p+j+1] += c[3]
		dst.Data[(i+2)*p+j] += c[4]
		dst.Data[(i+2)*p+j+1] += c[5]
		dst.Data[(i+3)*p+j] += c[6]
		dst.Data[(i+3)*p+j+1] += c[7]
	}
	if j < jhi {
		brow := bt[j*n : (j+1)*n]
		var c0, c1, c2, c3 float64
		for k, x := range brow {
			c0 += a0[k] * x
			c1 += a1[k] * x
			c2 += a2[k] * x
			c3 += a3[k] * x
		}
		dst.Data[(i+0)*p+j] += c0
		dst.Data[(i+1)*p+j] += c1
		dst.Data[(i+2)*p+j] += c2
		dst.Data[(i+3)*p+j] += c3
	}
}

// dotTile4x2 is the portable scalar tile: eight independent ascending-k
// accumulator chains, the fallback when the assembly kernel is unavailable.
func dotTile4x2(a0, a1, a2, a3, b0, b1 []float64, c *[8]float64) {
	var c00, c01, c10, c11, c20, c21, c30, c31 float64
	for k, x0 := range b0 {
		x1 := b1[k]
		v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
		c00 += v0 * x0
		c01 += v0 * x1
		c10 += v1 * x0
		c11 += v1 * x1
		c20 += v2 * x0
		c21 += v2 * x1
		c30 += v3 * x0
		c31 += v3 * x1
	}
	c[0], c[1], c[2], c[3] = c00, c01, c10, c11
	c[4], c[5], c[6], c[7] = c20, c21, c30, c31
}

// dotGroupTail handles the final partial group (1-3 rows) with plain
// ascending-k dot products.
func dotGroupTail(dst, a *Matrix, bt []float64, n, p, ilo, ihi, jj, jhi int) {
	for i := ilo; i < ihi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*p : (i+1)*p]
		for j := jj; j < jhi; j++ {
			brow := bt[j*n : (j+1)*n]
			var c float64
			for k, x := range brow {
				c += arow[k] * x
			}
			drow[j] += c
		}
	}
}
