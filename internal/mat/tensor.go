package mat

import "fmt"

// Tensor is a rank-3 dense tensor with shape [N, T, D] stored row-major.
// It is the batch type used by the neural-network layers: N samples, each a
// T x D matrix (sequence length T, feature dimension D).
type Tensor struct {
	N, T, D int
	Data    []float64 // len == N*T*D
}

// NewTensor returns a zero-initialised tensor of shape [n, t, d].
func NewTensor(n, t, d int) *Tensor {
	if n < 0 || t < 0 || d < 0 {
		panic(fmt.Sprintf("mat: negative tensor dims [%d,%d,%d]", n, t, d))
	}
	return &Tensor{N: n, T: t, D: d, Data: make([]float64, n*t*d)}
}

// TensorFromSlice wraps data (not copied) as an [n, t, d] tensor.
func TensorFromSlice(n, t, d int, data []float64) *Tensor {
	if len(data) != n*t*d {
		panic(fmt.Sprintf("mat: TensorFromSlice length %d != %d*%d*%d", len(data), n, t, d))
	}
	return &Tensor{N: n, T: t, D: d, Data: data}
}

// Sample returns sample i as a T x D matrix sharing the tensor's storage.
// Mutating the returned matrix mutates the tensor.
func (t *Tensor) Sample(i int) *Matrix {
	sz := t.T * t.D
	return &Matrix{Rows: t.T, Cols: t.D, Data: t.Data[i*sz : (i+1)*sz]}
}

// AsMatrix reshapes the tensor to an (N*T) x D matrix sharing storage.
// This is the layout used to learn prototypes across samples and sequence
// positions, and to run position-independent layers in one pass.
func (t *Tensor) AsMatrix() *Matrix {
	return &Matrix{Rows: t.N * t.T, Cols: t.D, Data: t.Data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.N, t.T, t.D)
	copy(c.Data, t.Data)
	return c
}

// Zero resets all elements.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// ShapeEquals reports whether two tensors share a shape.
func (t *Tensor) ShapeEquals(o *Tensor) bool {
	return t.N == o.N && t.T == o.T && t.D == o.D
}

// Gather returns a tensor holding the samples of t selected by idx.
func (t *Tensor) Gather(idx []int) *Tensor {
	out := NewTensor(len(idx), t.T, t.D)
	sz := t.T * t.D
	for i, s := range idx {
		copy(out.Data[i*sz:(i+1)*sz], t.Data[s*sz:(s+1)*sz])
	}
	return out
}

// String renders the tensor shape for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor[%d,%d,%d]", t.N, t.T, t.D)
}
