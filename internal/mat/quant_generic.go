//go:build !amd64

package mat

// The quantized-row vector kernels are never called when useVectorKernel is
// false; the wrappers in quant.go fall back to the portable scalar loops,
// which produce bit-identical results.

func dequantRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64) {
	panic("mat: quant vector kernel unavailable on this architecture")
}

func accumRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64) {
	panic("mat: quant vector kernel unavailable on this architecture")
}

func dequantRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64) {
	panic("mat: quant vector kernel unavailable on this architecture")
}

func accumRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64) {
	panic("mat: quant vector kernel unavailable on this architecture")
}
