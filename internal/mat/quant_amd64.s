#include "textflag.h"

// Quantized-row kernels: reconstruct (or accumulate) a float64 row from an
// int8/int16 prototype row under an affine (scale, zero) pair. Eight entries
// per iteration: sign-extend to int32, subtract the broadcast zero point
// (exact, matching Go's int32 wrap), convert to float64 (exact), multiply by
// the broadcast scale, and — in the accumulate variants — add to the
// destination with a separate VADDPD. No FMA anywhere: the scalar fallback
// rounds after the multiply and after the add, and fusing them would break
// the scalar/vector bit-identity contract.

// func dequantRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64)
TEXT ·dequantRowInt8AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), SI
	MOVQ n8+16(FP), CX
	MOVL zero+24(FP), AX
	MOVQ AX, X14
	VPBROADCASTD X14, Y14
	VBROADCASTSD scale+32(FP), Y15
	SHRQ $3, CX
loop8:
	VMOVQ (SI), X0               // 8 int8
	VPMOVSXBD X0, Y0             // sign-extend to 8 int32
	VPSUBD Y14, Y0, Y0           // q - zero
	VEXTRACTI128 $1, Y0, X1
	VCVTDQ2PD X0, Y2             // low 4 lanes to float64 (exact)
	VCVTDQ2PD X1, Y3             // high 4 lanes
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop8
	VZEROUPPER
	RET

// func accumRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64)
TEXT ·accumRowInt8AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), SI
	MOVQ n8+16(FP), CX
	MOVL zero+24(FP), AX
	MOVQ AX, X14
	VPBROADCASTD X14, Y14
	VBROADCASTSD scale+32(FP), Y15
	SHRQ $3, CX
loop8:
	VMOVQ (SI), X0
	VPMOVSXBD X0, Y0
	VPSUBD Y14, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VCVTDQ2PD X0, Y2
	VCVTDQ2PD X1, Y3
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VADDPD (DI), Y2, Y2          // separate add: two roundings, like scalar
	VADDPD 32(DI), Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop8
	VZEROUPPER
	RET

// func dequantRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64)
TEXT ·dequantRowInt16AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), SI
	MOVQ n8+16(FP), CX
	MOVL zero+24(FP), AX
	MOVQ AX, X14
	VPBROADCASTD X14, Y14
	VBROADCASTSD scale+32(FP), Y15
	SHRQ $3, CX
loop8:
	VMOVDQU (SI), X0             // 8 int16
	VPMOVSXWD X0, Y0             // sign-extend to 8 int32
	VPSUBD Y14, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VCVTDQ2PD X0, Y2
	VCVTDQ2PD X1, Y3
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ $16, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop8
	VZEROUPPER
	RET

// func accumRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64)
TEXT ·accumRowInt16AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ q+8(FP), SI
	MOVQ n8+16(FP), CX
	MOVL zero+24(FP), AX
	MOVQ AX, X14
	VPBROADCASTD X14, Y14
	VBROADCASTSD scale+32(FP), Y15
	SHRQ $3, CX
loop8:
	VMOVDQU (SI), X0
	VPMOVSXWD X0, Y0
	VPSUBD Y14, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VCVTDQ2PD X0, Y2
	VCVTDQ2PD X1, Y3
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VADDPD (DI), Y2, Y2
	VADDPD 32(DI), Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ $16, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop8
	VZEROUPPER
	RET
