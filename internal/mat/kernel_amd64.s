#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// Feature check for the vector micro-kernel: AVX + FMA + OSXSAVE from CPUID
// leaf 1, YMM state enablement from XCR0, and AVX2 from leaf 7. CPUID and
// XGETBV clobber only AX/BX/CX/DX, which are scratch in ABI0.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28 | 1<<12), DX   // OSXSAVE | AVX | FMA
	CMPL DX, $(1<<27 | 1<<28 | 1<<12)
	JNE  nofeat
	MOVL $0, CX
	XGETBV
	ANDL $6, AX                         // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  nofeat
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX                    // AVX2
	JZ   nofeat
	MOVB $1, ret+0(FP)
	RET
nofeat:
	MOVB $0, ret+0(FP)
	RET

// func dotTile4x2AVX(a0, a1, a2, a3, b0, b1 *float64, n4 int, out *[8]float64)
//
// Computes the eight dot products of four row vectors (a0..a3) against two
// column vectors (b0, b1) over the first n4 elements; n4 must be a positive
// multiple of 4. Each product accumulates into four independent YMM lanes in
// ascending-k order and is reduced at the end in a fixed lane order
// ((l0+l2)+(l1+l3)), so results are fully deterministic for a given input.
// out receives c00,c01,c10,c11,c20,c21,c30,c31 where c_rc = a_r · b_c.
TEXT ·dotTile4x2AVX(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ b0+32(FP), R12
	MOVQ b1+40(FP), R13
	MOVQ n4+48(FP), CX
	MOVQ out+56(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	SHRQ $2, CX
	JZ   reduce

loop:
	VMOVUPD (R12), Y8
	VMOVUPD (R13), Y9
	VMOVUPD (R8), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VMOVUPD (R9), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VMOVUPD (R10), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VMOVUPD (R11), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ CX
	JNZ  loop

reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD  X8, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD  X8, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD  X8, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD  X8, X3, X3
	VHADDPD X3, X3, X3
	VEXTRACTF128 $1, Y4, X8
	VADDPD  X8, X4, X4
	VHADDPD X4, X4, X4
	VEXTRACTF128 $1, Y5, X8
	VADDPD  X8, X5, X5
	VHADDPD X5, X5, X5
	VEXTRACTF128 $1, Y6, X8
	VADDPD  X8, X6, X6
	VHADDPD X6, X6, X6
	VEXTRACTF128 $1, Y7, X8
	VADDPD  X8, X7, X7
	VHADDPD X7, X7, X7
	VMOVSD X0, 0(DI)
	VMOVSD X1, 8(DI)
	VMOVSD X2, 16(DI)
	VMOVSD X3, 24(DI)
	VMOVSD X4, 32(DI)
	VMOVSD X5, 40(DI)
	VMOVSD X6, 48(DI)
	VMOVSD X7, 56(DI)
	VZEROUPPER
	RET
