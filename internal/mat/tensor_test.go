package mat

import (
	"math/rand"
	"testing"
)

func TestTensorShape(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if x.N != 2 || x.T != 3 || x.D != 4 || len(x.Data) != 24 {
		t.Fatalf("bad tensor %v", x)
	}
}

func TestSampleSharesStorage(t *testing.T) {
	x := NewTensor(2, 2, 2)
	s := x.Sample(1)
	s.Set(0, 0, 9)
	if x.Data[4] != 9 {
		t.Fatal("Sample does not share storage")
	}
	if s.Rows != 2 || s.Cols != 2 {
		t.Fatalf("Sample shape %v", s)
	}
}

func TestAsMatrixLayout(t *testing.T) {
	x := NewTensor(2, 3, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	m := x.AsMatrix()
	if m.Rows != 6 || m.Cols != 4 {
		t.Fatalf("AsMatrix shape %v", m)
	}
	// Row t of sample n is row n*T+t of the matrix.
	if m.At(4, 1) != x.Sample(1).At(1, 1) {
		t.Fatal("AsMatrix layout mismatch")
	}
}

func TestTensorCloneIndependent(t *testing.T) {
	x := NewTensor(1, 2, 2)
	x.Data[0] = 5
	c := x.Clone()
	c.Data[0] = 7
	if x.Data[0] != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := NewTensor(5, 2, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	g := x.Gather([]int{4, 0})
	if g.N != 2 {
		t.Fatalf("Gather N = %d", g.N)
	}
	if !EqualApprox(g.Sample(0), x.Sample(4), 0) || !EqualApprox(g.Sample(1), x.Sample(0), 0) {
		t.Fatal("Gather content mismatch")
	}
}

func TestTensorFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TensorFromSlice(1, 2, 2, []float64{1})
}
