package mat

import (
	"math/rand"
	"testing"
)

// scalarDequant is the portable reference the vector kernels must match
// bit-for-bit: one rounding in the multiply, one in the accumulate add.
func scalarDequant(dst []float64, q []int32, zero int32, scale float64, accum bool) {
	for i := range dst {
		v := float64(q[i]-zero) * scale
		if accum {
			dst[i] += v
		} else {
			dst[i] = v
		}
	}
}

// TestQuantRowKernelsBitIdentical runs every row kernel against the scalar
// reference across lengths straddling the 8-wide vector body and its tail,
// including negative values, extreme quantized codes, and a zero point that
// exercises the int32 subtract. On hosts without the vector kernel the
// wrappers are the scalar loop and the test is a tautology — the point is
// that on AVX2 hosts it is not.
func TestQuantRowKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 31, 33, 64, 100} {
		q8 := make([]int8, n)
		q16 := make([]int16, n)
		ref := make([]int32, n)
		for i := 0; i < n; i++ {
			q8[i] = int8(rng.Intn(256) - 128)
			q16[i] = int16(rng.Intn(1 << 16) - (1 << 15))
		}
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		for _, zero := range []int32{0, -128, 127, 19, -32768, 32767} {
			for _, scale := range []float64{0.037, -1.5, 1e-9, 3e4} {
				check := func(name string, got, want []float64) {
					t.Helper()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s n=%d zero=%d scale=%v: [%d] = %v, want %v",
								name, n, zero, scale, i, got[i], want[i])
						}
					}
				}
				got := make([]float64, n)
				want := make([]float64, n)

				for i, v := range q8 {
					ref[i] = int32(v)
				}
				DequantRowInt8(got, q8, zero, scale)
				scalarDequant(want, ref, zero, scale, false)
				check("DequantRowInt8", got, want)
				copy(got, base)
				copy(want, base)
				AccumRowInt8(got, q8, zero, scale)
				scalarDequant(want, ref, zero, scale, true)
				check("AccumRowInt8", got, want)

				for i, v := range q16 {
					ref[i] = int32(v)
				}
				DequantRowInt16(got, q16, zero, scale)
				scalarDequant(want, ref, zero, scale, false)
				check("DequantRowInt16", got, want)
				copy(got, base)
				copy(want, base)
				AccumRowInt16(got, q16, zero, scale)
				scalarDequant(want, ref, zero, scale, true)
				check("AccumRowInt16", got, want)
			}
		}
	}
}

// TestQuantRowKernelsNoAlloc pins the zero-allocation contract of the row
// kernels: they run inside every quantized table lookup on the serving hot
// path.
func TestQuantRowKernelsNoAlloc(t *testing.T) {
	dst := make([]float64, 96)
	q8 := make([]int8, 96)
	q16 := make([]int16, 96)
	if n := testing.AllocsPerRun(100, func() {
		DequantRowInt8(dst, q8, 3, 0.25)
		AccumRowInt8(dst, q8, 3, 0.25)
		DequantRowInt16(dst, q16, 3, 0.25)
		AccumRowInt16(dst, q16, 3, 0.25)
	}); n != 0 {
		t.Fatalf("row kernels allocate %v times per run", n)
	}
}
