package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %v with %d elems", m, len(m.Data))
	}
}

func TestAtSet(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Data[5]; got != 7.5 {
		t.Fatalf("row-major layout broken: Data[5] = %v", got)
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !EqualApprox(c, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5).Randn(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if got := Mul(a, id); !EqualApprox(got, a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if got := Mul(id, a); !EqualApprox(got, a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to cross parallelThreshold.
	a := New(64, 64).Randn(rng, 1)
	b := New(64, 64).Randn(rng, 1)
	got := Mul(a, b)
	want := New(64, 64)
	mulRange(want, a, b, 0, 64)
	if !EqualApprox(got, want, 1e-9) {
		t.Fatal("parallel Mul diverges from serial")
	}
}

func TestMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 6).Randn(rng, 1)
	b := New(5, 6).Randn(rng, 1)
	got := MulTransB(a, b)
	want := Mul(a, b.Transpose())
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("MulTransB != A*Bᵀ")
	}
}

func TestMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(6, 4).Randn(rng, 1)
	b := New(6, 5).Randn(rng, 1)
	got := MulTransA(a, b)
	want := Mul(a.Transpose(), b)
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("MulTransA != Aᵀ*B")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := New(r, c).Randn(rng, 1)
		return EqualApprox(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := Add(a, b); !EqualApprox(got, FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(b, a); !EqualApprox(got, FromSlice(1, 3, []float64{3, 3, 3}), 0) {
		t.Fatalf("Sub = %v", got.Data)
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 1})
	b := FromSlice(1, 2, []float64{2, 4})
	a.AddScaled(b, 0.5)
	if !EqualApprox(a, FromSlice(1, 2, []float64{2, 3}), 1e-12) {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector([]float64{1, 2, 3})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != float64(j+1) {
				t.Fatalf("(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	a.Hadamard(b)
	if !EqualApprox(a, FromSlice(1, 3, []float64{4, 10, 18}), 0) {
		t.Fatalf("Hadamard = %v", a.Data)
	}
}

func TestRowSoftmax(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	m.RowSoftmax()
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Monotonicity within row 0.
	if !(m.At(0, 0) < m.At(0, 1) && m.At(0, 1) < m.At(0, 2)) {
		t.Fatal("softmax not monotone")
	}
	// Row 1 is uniform despite huge magnitudes (overflow-safe).
	if math.Abs(m.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatalf("softmax overflow handling broken: %v", m.At(1, 0))
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(a, b, c, shift float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(shift) {
			return true
		}
		a, b, c = math.Mod(a, 50), math.Mod(b, 50), math.Mod(c, 50)
		shift = math.Mod(shift, 50)
		m1 := FromSlice(1, 3, []float64{a, b, c}).RowSoftmax()
		m2 := FromSlice(1, 3, []float64{a + shift, b + shift, c + shift}).RowSoftmax()
		return EqualApprox(m1, m2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 0, 0})
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-similarity = %v", got)
	}
	b := FromSlice(1, 3, []float64{0, 1, 0})
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal similarity = %v", got)
	}
	neg := FromSlice(1, 3, []float64{-1, 0, 0})
	if got := CosineSimilarity(a, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("opposite similarity = %v", got)
	}
	zero := New(1, 3)
	if got := CosineSimilarity(a, zero); got != 0 {
		t.Fatalf("zero-vector similarity = %v", got)
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 3})
	b := FromSlice(2, 2, []float64{10, 11, 30, 31})
	c := ConcatCols(a, b)
	want := FromSlice(2, 3, []float64{1, 10, 11, 3, 30, 31})
	if !EqualApprox(c, want, 0) {
		t.Fatalf("ConcatCols = %v", c.Data)
	}
}

func TestSliceCols(t *testing.T) {
	m := FromSlice(2, 4, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	s := m.SliceCols(1, 3)
	want := FromSlice(2, 2, []float64{1, 2, 5, 6})
	if !EqualApprox(s, want, 0) {
		t.Fatalf("SliceCols = %v", s.Data)
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(4)
		c1 := 1 + rng.Intn(4)
		c2 := 1 + rng.Intn(4)
		a := New(rows, c1).Randn(rng, 1)
		b := New(rows, c2).Randn(rng, 1)
		cat := ConcatCols(a, b)
		return EqualApprox(cat.SliceCols(0, c1), a, 0) &&
			EqualApprox(cat.SliceCols(c1, c1+c2), b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormAndSum(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if got := m.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v", got)
	}
	if got := m.Sum(); got != 7 {
		t.Fatalf("Sum = %v", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestMulDistributive(t *testing.T) {
	// A*(B+C) == A*B + A*C (property test on small random matrices).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := New(n, n).Randn(rng, 1)
		b := New(n, n).Randn(rng, 1)
		c := New(n, n).Randn(rng, 1)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return EqualApprox(left, right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyAndMap(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	relu := Map(m, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	})
	if !EqualApprox(relu, FromSlice(1, 3, []float64{0, 0, 2}), 0) {
		t.Fatalf("Map relu = %v", relu.Data)
	}
	// Original untouched by Map.
	if !EqualApprox(m, FromSlice(1, 3, []float64{-1, 0, 2}), 0) {
		t.Fatal("Map mutated input")
	}
}
