//go:build amd64

package mat

// cpuHasAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// micro-kernel. Implemented in kernel_amd64.s.
func cpuHasAVX2FMA() bool

// dotTile4x2AVX computes the eight dot products of four row vectors against
// two column vectors over the first n4 elements (n4 > 0, n4 % 4 == 0) into
// out. Implemented in kernel_amd64.s.
//
//go:noescape
func dotTile4x2AVX(a0, a1, a2, a3, b0, b1 *float64, n4 int, out *[8]float64)

// useVectorKernel gates the assembly micro-kernel. It is a package-level
// constant per process: results are deterministic on a given machine, and
// identical across machines that share the same answer here.
var useVectorKernel = cpuHasAVX2FMA()
