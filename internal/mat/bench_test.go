package mat

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dart/internal/par"
)

func benchPair(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return New(n, n).Randn(rng, 1), New(n, n).Randn(rng, 1)
}

func BenchmarkMul64(b *testing.B) {
	x, y := benchPair(64)
	dst := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMul256(b *testing.B) {
	x, y := benchPair(256)
	dst := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulTransB128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTransB(x, y)
	}
}

// BenchmarkMatMul is the engine-vs-baseline grid recorded in BENCH_par.json:
// the seed's serial kernel against ParMulInto at sizes 64..1024 and worker
// counts 1/2/4/GOMAXPROCS.
func BenchmarkMatMul(b *testing.B) {
	sizes := []int{64, 128, 256, 512, 1024}
	workers := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workers = append(workers, g)
	}
	for _, n := range sizes {
		x, y := benchPair(n)
		dst := New(n, n)
		b.Run(fmt.Sprintf("serial/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst.Zero()
				mulRange(dst, x, y, 0, n)
			}
		})
		for _, w := range workers {
			b.Run(fmt.Sprintf("par/n%d/w%d", n, w), func(b *testing.B) {
				par.SetMaxWorkers(w)
				defer par.SetMaxWorkers(0)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ParMulInto(dst, x, y)
				}
			})
		}
	}
}

// BenchmarkMulTransB512 measures the transpose-free engine path.
func BenchmarkMulTransB512(b *testing.B) {
	x, y := benchPair(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTransB(x, y)
	}
}

func BenchmarkRowSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(64, 64).Randn(rng, 1)
	for i := 0; i < b.N; i++ {
		m.RowSoftmax()
	}
}
