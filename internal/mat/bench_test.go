package mat

import (
	"math/rand"
	"testing"
)

func benchPair(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return New(n, n).Randn(rng, 1), New(n, n).Randn(rng, 1)
}

func BenchmarkMul64(b *testing.B) {
	x, y := benchPair(64)
	dst := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMul256(b *testing.B) {
	x, y := benchPair(256)
	dst := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulTransB128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTransB(x, y)
	}
}

func BenchmarkRowSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(64, 64).Randn(rng, 1)
	for i := 0; i < b.N; i++ {
		m.RowSoftmax()
	}
}
