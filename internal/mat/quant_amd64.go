//go:build amd64

package mat

// The quantized-row kernels share the AVX2 feature gate with the matmul
// micro-kernel (useVectorKernel in kernel_amd64.go): they need AVX2 for the
// 256-bit integer sign-extend/subtract, and gating both on one answer keeps
// "vector on/off" a single per-process fact. n8 must be a positive multiple
// of 8. Implemented in quant_amd64.s.

//go:noescape
func dequantRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64)

//go:noescape
func accumRowInt8AVX(dst *float64, q *int8, n8 int, zero int32, scale float64)

//go:noescape
func dequantRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64)

//go:noescape
func accumRowInt16AVX(dst *float64, q *int16, n8 int, zero int32, scale float64)
