package mat

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"dart/internal/par"
)

// withWorkers runs fn with the pool capped at w workers.
func withWorkers(w int, fn func()) {
	par.SetMaxWorkers(w)
	defer par.SetMaxWorkers(0)
	fn()
}

// randomMatrix fills an r x c matrix with Gaussian values; zeroFrac of the
// entries are forced to exactly zero to exercise the serial kernels'
// zero-skip paths.
func randomMatrix(rng *rand.Rand, r, c int, zeroFrac float64) *Matrix {
	m := New(r, c).Randn(rng, 1)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			m.Data[i] = 0
		}
	}
	return m
}

// relTol is the allowed relative deviation between the engine (which may use
// FMA contraction) and the plain mul+add reference kernels.
const relTol = 1e-12

// requireClose fails unless got and want agree elementwise within relTol
// scaled by the magnitude of the reduction.
func requireClose(t *testing.T, got, want *Matrix, n int, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	scale := 1 + want.MaxAbs() + math.Sqrt(float64(n))
	for i, w := range want.Data {
		if d := math.Abs(got.Data[i] - w); d > relTol*scale {
			t.Fatalf("%s: element %d differs: got %v want %v (diff %g, tol %g)",
				label, i, got.Data[i], w, d, relTol*scale)
		}
	}
}

// mulShapes covers tile remainders in every dimension: rows % 4, cols % 2,
// k % 4, degenerate sizes, and shapes straddling the MulInto size cutoff.
var mulShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 2, 5}, {4, 4, 4}, {5, 3, 2},
	{7, 9, 11}, {8, 16, 2}, {13, 1, 17}, {16, 64, 33}, {31, 33, 29},
	{64, 64, 64}, {65, 63, 67}, {100, 40, 81}, {128, 32, 128},
}

func TestParMulIntoMatchesSerialReference(t *testing.T) {
	for _, zf := range []float64{0, 0.5} {
		for si, shape := range mulShapes {
			m, n, p := shape[0], shape[1], shape[2]
			rng := rand.New(rand.NewSource(int64(100*si) + int64(zf*10)))
			a := randomMatrix(rng, m, n, zf)
			b := randomMatrix(rng, n, p, zf)
			want := New(m, p)
			mulRange(want, a, b, 0, m)
			got := New(m, p)
			ParMulInto(got, a, b)
			requireClose(t, got, want, n, fmt.Sprintf("ParMulInto %dx%dx%d zf=%v", m, n, p, zf))
		}
	}
}

func TestParMulIntoBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, shape := range [][3]int{{37, 41, 53}, {128, 96, 64}, {64, 100, 7}} {
		m, n, p := shape[0], shape[1], shape[2]
		rng := rand.New(rand.NewSource(7))
		a := randomMatrix(rng, m, n, 0.2)
		b := randomMatrix(rng, n, p, 0.2)
		var serial *Matrix
		withWorkers(1, func() {
			serial = New(m, p)
			ParMulInto(serial, a, b)
		})
		for _, w := range []int{2, 3, 4, 8} {
			withWorkers(w, func() {
				got := New(m, p)
				ParMulInto(got, a, b)
				for i := range got.Data {
					if got.Data[i] != serial.Data[i] {
						t.Fatalf("shape %v: w=%d element %d = %v, serial = %v (must be bit-identical)",
							shape, w, i, got.Data[i], serial.Data[i])
					}
				}
			})
		}
	}
}

func TestMulIntoLargePathIsEngine(t *testing.T) {
	// Above the cutoff MulInto must take the exact same code path as
	// ParMulInto, bit for bit.
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 80, 80, 0)
	b := randomMatrix(rng, 80, 80, 0)
	viaMul := New(80, 80)
	MulInto(viaMul, a, b)
	viaPar := New(80, 80)
	ParMulInto(viaPar, a, b)
	for i := range viaMul.Data {
		if viaMul.Data[i] != viaPar.Data[i] {
			t.Fatalf("element %d: MulInto %v != ParMulInto %v", i, viaMul.Data[i], viaPar.Data[i])
		}
	}
}

func TestMulTransBMatchesSerialReference(t *testing.T) {
	for si, shape := range mulShapes {
		m, n, p := shape[0], shape[1], shape[2]
		rng := rand.New(rand.NewSource(int64(200 + si)))
		a := randomMatrix(rng, m, n, 0.1)
		b := randomMatrix(rng, p, n, 0.1) // b has n cols: a * bᵀ is m x p
		want := New(m, p)
		mulTransBRange(want, a, b, 0, m)
		got := MulTransB(a, b)
		requireClose(t, got, want, n, fmt.Sprintf("MulTransB %dx%dx%d", m, n, p))
	}
}

func TestMulTransBBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 70, 90, 0.1)
	b := randomMatrix(rng, 50, 90, 0.1)
	var serial *Matrix
	withWorkers(1, func() { serial = MulTransB(a, b) })
	for _, w := range []int{2, 4, 8} {
		withWorkers(w, func() {
			got := MulTransB(a, b)
			for i := range got.Data {
				if got.Data[i] != serial.Data[i] {
					t.Fatalf("w=%d element %d = %v, serial = %v", w, i, got.Data[i], serial.Data[i])
				}
			}
		})
	}
}

func TestMulTransAMatchesSerialReference(t *testing.T) {
	for si, shape := range mulShapes {
		m, n, p := shape[0], shape[1], shape[2]
		rng := rand.New(rand.NewSource(int64(300 + si)))
		a := randomMatrix(rng, n, m, 0.1) // aᵀ * b is m x p with shared dim n
		b := randomMatrix(rng, n, p, 0.1)
		want := New(m, p)
		mulTransARange(want, a, b)
		got := MulTransA(a, b)
		requireClose(t, got, want, n, fmt.Sprintf("MulTransA %dx%dx%d", m, n, p))
	}
}

func TestMulTransABitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomMatrix(rng, 90, 60, 0.1)
	b := randomMatrix(rng, 90, 70, 0.1)
	var serial *Matrix
	withWorkers(1, func() { serial = MulTransA(a, b) })
	for _, w := range []int{2, 4, 8} {
		withWorkers(w, func() {
			got := MulTransA(a, b)
			for i := range got.Data {
				if got.Data[i] != serial.Data[i] {
					t.Fatalf("w=%d element %d = %v, serial = %v", w, i, got.Data[i], serial.Data[i])
				}
			}
		})
	}
}

func TestParMulIntoDegenerate(t *testing.T) {
	// Zero-sized operands must not panic and must produce empty results.
	ParMulInto(New(0, 5), New(0, 3), New(3, 5))
	ParMulInto(New(4, 0), New(4, 2), New(2, 0))
	got := New(3, 3)
	ParMulInto(got, New(3, 0), New(0, 3))
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("k=0 product element %d = %v, want 0", i, v)
		}
	}
}

// TestParMulIntoConcurrentCallers hammers the engine from several goroutines
// sharing read-only operands; meaningful mainly under -race.
func TestParMulIntoConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomMatrix(rng, 96, 64, 0)
	b := randomMatrix(rng, 64, 48, 0)
	want := New(96, 48)
	ParMulInto(want, a, b)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				got := New(96, 48)
				ParMulInto(got, a, b)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("concurrent result diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
