// Package mat provides dense row-major float64 matrices and rank-3 tensors
// sized for the small attention models used throughout this repository.
//
// The package is deliberately minimal: it implements exactly the operations
// the neural-network, product-quantization, and tabularization layers need,
// with goroutine-parallel blocked matrix multiplication for the hot paths.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero-initialised Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Randn fills m with Gaussian noise of the given standard deviation.
func (m *Matrix) Randn(rng *rand.Rand, std float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills m with uniform values in [-a, a].
func (m *Matrix) RandUniform(rng *rand.Rand, a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// parallelThreshold is the flop count above which matmul dispatches to the
// parallel blocked engine in parmul.go.
const parallelThreshold = 1 << 16

// MulInto computes dst = a * b. dst must not alias a or b. Above a size
// cutoff the multiply runs on the parallel blocked engine (see parmul.go);
// below it, a simple serial kernel avoids the engine's transpose overhead.
func MulInto(dst, a, b *Matrix) {
	checkMulInto(dst, a, b)
	dst.Zero()
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		mulRange(dst, a, b, 0, a.Rows)
		return
	}
	dotEngine(dst, a, transposeData(b), b.Cols)
}

// mulRange computes rows [lo, hi) of dst = a*b using an ikj loop ordering,
// which keeps the inner loop sequential over b's rows for cache locality.
func mulRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		arow := a.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
}

// Mul returns a new matrix a * b.
func Mul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	MulInto(dst, a, b)
	return dst
}

// MulTransB returns a * bᵀ. The rows of b are already the engine's
// transposed layout, so the large-size path needs no transpose pass.
func MulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransB inner dims %d != %d", a.Cols, b.Cols))
	}
	dst := New(a.Rows, b.Rows)
	if a.Rows*a.Cols*b.Rows >= parallelThreshold {
		dotEngine(dst, a, b.Data, b.Rows)
		return dst
	}
	mulTransBRange(dst, a, b, 0, a.Rows)
	return dst
}

// mulTransBRange is the serial reference kernel for a * bᵀ.
func mulTransBRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// MulTransA returns aᵀ * b. The large-size path transposes both operands
// into the engine's row-major dot-product layout.
func MulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulTransA inner dims %d != %d", a.Rows, b.Rows))
	}
	dst := New(a.Cols, b.Cols)
	if a.Cols*a.Rows*b.Cols >= parallelThreshold {
		at := FromSlice(a.Cols, a.Rows, transposeData(a))
		dotEngine(dst, at, transposeData(b), b.Cols)
		return dst
	}
	mulTransARange(dst, a, b)
	return dst
}

// mulTransARange is the serial reference kernel for aᵀ * b.
func mulTransARange(dst, a, b *Matrix) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*m.Rows+i] = v
		}
	}
	return t
}

// Add returns a + b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	c := a.Clone()
	c.AddInPlace(b)
	return c
}

// AddInPlace adds b into m elementwise.
func (m *Matrix) AddInPlace(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddInPlace shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts b from m elementwise.
func (m *Matrix) SubInPlace(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: SubInPlace shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// Sub returns a - b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	c := a.Clone()
	c.SubInPlace(b)
	return c
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled adds s*b into m.
func (m *Matrix) AddScaled(b *Matrix, s float64) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// AddRowVector adds vector v (length Cols) to every row of m.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic("mat: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, bv := range v {
			row[j] += bv
		}
	}
}

// Apply replaces every element x with fn(x).
func (m *Matrix) Apply(fn func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = fn(v)
	}
	return m
}

// Map returns a new matrix with fn applied elementwise.
func Map(m *Matrix, fn func(float64) float64) *Matrix {
	return m.Clone().Apply(fn)
}

// Hadamard multiplies m elementwise by b.
func (m *Matrix) Hadamard(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: Hadamard shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] *= v
	}
	return m
}

// RowSoftmax applies softmax independently to each row of m, in place.
func (m *Matrix) RowSoftmax() *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// CosineSimilarity computes the cosine similarity of the flattened matrices.
// It returns 0 when either operand is all-zero.
func CosineSimilarity(a, b *Matrix) float64 {
	if len(a.Data) != len(b.Data) {
		panic("mat: CosineSimilarity length mismatch")
	}
	var dot, na, nb float64
	for i, av := range a.Data {
		bv := b.Data[i]
		dot += av * bv
		na += av * av
		nb += bv * bv
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// EqualApprox reports whether a and b have identical shape and elementwise
// differences no larger than tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// ConcatCols concatenates matrices horizontally; all must share Rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("mat: ConcatCols of nothing")
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("mat: ConcatCols row mismatch")
		}
		total += m.Cols
	}
	out := New(rows, total)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns columns [lo, hi) of m as a new matrix.
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("mat: SliceCols [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}
