//go:build !amd64

package mat

// useVectorKernel is false on architectures without the assembly
// micro-kernel; the engine falls back to the portable scalar tile.
const useVectorKernel = false

// dotTile4x2AVX is never called when useVectorKernel is false.
func dotTile4x2AVX(a0, a1, a2, a3, b0, b1 *float64, n4 int, out *[8]float64) {
	panic("mat: vector kernel unavailable on this architecture")
}
