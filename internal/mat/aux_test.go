package mat

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAuxiliaryOps pins the small utility methods the training loops rely
// on: in-place scaling, uniform init, copies, and the debug renderers.
func TestAuxiliaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	m := New(2, 3)
	m.RandUniform(rng, 0.5)
	for _, v := range m.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("RandUniform(0.5) produced %v outside [-0.5, 0.5]", v)
		}
	}

	m.Set(0, 0, 2)
	m.Scale(3)
	if m.At(0, 0) != 6 {
		t.Fatalf("Scale(3) gave %v at (0,0), want 6", m.At(0, 0))
	}

	c := New(2, 3)
	c.CopyFrom(m)
	if !EqualApprox(c, m, 0) {
		t.Fatal("CopyFrom did not produce an equal matrix")
	}
	c.Set(1, 2, c.At(1, 2)+1)
	if EqualApprox(c, m, 0.5) {
		t.Fatal("EqualApprox ignored an element off by 1")
	}
	if EqualApprox(New(1, 1), m, 1) {
		t.Fatal("EqualApprox accepted mismatched shapes")
	}

	if s := m.String(); !strings.Contains(s, "2x3") {
		t.Fatalf("Matrix String() = %q", s)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched shapes did not panic")
		}
	}()
	New(1, 2).CopyFrom(m)
}

func TestTensorAuxiliaryOps(t *testing.T) {
	a := NewTensor(2, 3, 4)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero left a non-zero element")
		}
	}
	if !a.ShapeEquals(NewTensor(2, 3, 4)) || a.ShapeEquals(NewTensor(2, 3, 5)) {
		t.Fatal("ShapeEquals verdicts are wrong")
	}
	if s := a.String(); !strings.Contains(s, "2,3,4") {
		t.Fatalf("Tensor String() = %q", s)
	}
}
