package mat

// Quantized-row micro-kernels for the tabular serving path: a prototype row
// stored as int8/int16 with an affine (scale, zero) pair is reconstructed or
// accumulated into a float64 output row. The AVX2 variants are bit-identical
// to the scalar loops on every input: the integer subtract and the
// int32→float64 conversion are exact in both, and the vector code uses
// separate multiply and add instructions (no FMA), so each element sees
// exactly the same two roundings as the scalar expression. Results are
// therefore identical across architectures with the same useVectorKernel
// answer and across any worker count.

// DequantRowInt8 writes dst[i] = float64(int32(q[i])-zero) * scale.
// len(q) must be >= len(dst).
func DequantRowInt8(dst []float64, q []int8, zero int32, scale float64) {
	n := len(dst)
	i := 0
	if useVectorKernel && n >= 8 {
		i = n &^ 7
		dequantRowInt8AVX(&dst[0], &q[0], i, zero, scale)
	}
	for ; i < n; i++ {
		dst[i] = float64(int32(q[i])-zero) * scale
	}
}

// AccumRowInt8 adds dst[i] += float64(int32(q[i])-zero) * scale.
func AccumRowInt8(dst []float64, q []int8, zero int32, scale float64) {
	n := len(dst)
	i := 0
	if useVectorKernel && n >= 8 {
		i = n &^ 7
		accumRowInt8AVX(&dst[0], &q[0], i, zero, scale)
	}
	for ; i < n; i++ {
		dst[i] += float64(int32(q[i])-zero) * scale
	}
}

// DequantRowInt16 writes dst[i] = float64(int32(q[i])-zero) * scale.
func DequantRowInt16(dst []float64, q []int16, zero int32, scale float64) {
	n := len(dst)
	i := 0
	if useVectorKernel && n >= 8 {
		i = n &^ 7
		dequantRowInt16AVX(&dst[0], &q[0], i, zero, scale)
	}
	for ; i < n; i++ {
		dst[i] = float64(int32(q[i])-zero) * scale
	}
}

// AccumRowInt16 adds dst[i] += float64(int32(q[i])-zero) * scale.
func AccumRowInt16(dst []float64, q []int16, zero int32, scale float64) {
	n := len(dst)
	i := 0
	if useVectorKernel && n >= 8 {
		i = n &^ 7
		accumRowInt16AVX(&dst[0], &q[0], i, zero, scale)
	}
	for ; i < n; i++ {
		dst[i] += float64(int32(q[i])-zero) * scale
	}
}
