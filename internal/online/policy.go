// Promotion policy engine: the control plane that decides when a candidate
// version of a serving class may be published and when a published version
// must be withdrawn. It generalizes the student tier's A/B shadow-compare
// into the gate for every class publish:
//
//   - admission — a candidate (student shadow, freshly tabularized hierarchy)
//     is published only after it sustains at least AdmitThreshold agreement
//     with its *source* class over a sliding window of AdmitWindow shadow
//     batches, and only while its modelled latency/storage cost fits the
//     configured per-class budget;
//   - live divergence — the serving engine feeds every shadow-compared
//     inference batch into ObserveLive; when a published version's live
//     agreement stays below DivergeThreshold for DivergeWindows consecutive
//     windows, the engine auto-rolls the class back to the prior good
//     version through a callback the learner registers;
//   - evidence — every decision (admit, hold, rollback, skip) lands in a
//     bounded decision log with the agreement numbers it was made on,
//     surfaced through the `policy` wire verb.
//
// The engine is deliberately passive: it owns no models and takes no locks
// of the learner. The learner drives admission evidence from its own loop
// (it owns the shadow networks), the serving engine drives live evidence
// from its batchers, and rollback runs through registered callbacks with no
// policy lock held — the policy mutex is a leaf and must never be held while
// calling into the learner.
package online

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dart/internal/mat"
	"dart/internal/nn"
)

// Budget is an explicit per-class serving cost ceiling checked at admission.
type Budget struct {
	LatencyCycles int // modelled inference latency ceiling (0 = unchecked)
	StorageBytes  int // modelled predictor storage ceiling (0 = unchecked)
}

// PolicyConfig tunes the promotion policy engine. Zero values select
// defaults; a nil *PolicyConfig on online.Config disables the engine
// entirely, leaving the legacy unconditional duty-cycle publish path
// bit-identical to previous releases.
type PolicyConfig struct {
	// AdmitThreshold is the minimum candidate-vs-source agreement fraction
	// over the admission window for a publish to be admitted (default 0.7).
	AdmitThreshold float64
	// AdmitWindow is how many shadow batches of evidence the gate requires
	// before deciding admit/hold (default 8).
	AdmitWindow int
	// DivergeThreshold is the live agreement fraction below which a window
	// counts as divergent (default 0.5).
	DivergeThreshold float64
	// DivergeWindows is how many consecutive divergent live windows trigger
	// an automatic rollback (default 3).
	DivergeWindows int
	// LiveWindow is how many shadow-compared labels make one live window
	// (default 256).
	LiveWindow int
	// MinSourceDelta skips a dart re-tabularization when the published
	// student's relative parameter delta since the last build is below this
	// fraction (default 0 = always rebuild on version change).
	MinSourceDelta float64
	// Budgets holds the per-class admission cost ceilings, keyed by class
	// name (StudentClass, DartClass). Missing classes are unbudgeted.
	Budgets map[string]Budget
	// LogCap bounds the decision log (default 128 entries).
	LogCap int
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.AdmitThreshold == 0 {
		c.AdmitThreshold = 0.7
	}
	if c.AdmitWindow <= 0 {
		c.AdmitWindow = 8
	}
	if c.DivergeThreshold == 0 {
		c.DivergeThreshold = 0.5
	}
	if c.DivergeWindows <= 0 {
		c.DivergeWindows = 3
	}
	if c.LiveWindow <= 0 {
		c.LiveWindow = 256
	}
	if c.LogCap <= 0 {
		c.LogCap = 128
	}
	return c
}

// Validate rejects thresholds outside their domains.
func (c PolicyConfig) Validate() error {
	if c.AdmitThreshold < 0 || c.AdmitThreshold > 1 {
		return fmt.Errorf("online: AdmitThreshold %v outside [0, 1]", c.AdmitThreshold)
	}
	if c.DivergeThreshold < 0 || c.DivergeThreshold > 1 {
		return fmt.Errorf("online: DivergeThreshold %v outside [0, 1]", c.DivergeThreshold)
	}
	if c.MinSourceDelta < 0 {
		return fmt.Errorf("online: MinSourceDelta %v must be >= 0", c.MinSourceDelta)
	}
	return nil
}

// Decision actions recorded in the log.
const (
	ActionAdmit    = "admit"
	ActionHold     = "hold"
	ActionRollback = "rollback"
	ActionSkip     = "skip"
)

// admitGate accumulates candidate-vs-source shadow-batch evidence for one
// class until the admission window is full.
type admitGate struct {
	match   uint64
	total   uint64
	batches int
}

// liveGate tracks one class's served-version live agreement. A version
// change (publish or rollback) resets the window — evidence never carries
// across versions.
type liveGate struct {
	ver       uint64  // version the window is accumulating for
	match     uint64  // agreeing labels in the open window
	total     uint64  // labels in the open window
	agree     float64 // agreement of the last completed window
	windows   uint64  // completed windows for this class
	divergent int     // consecutive divergent windows
}

// Policy is the promotion policy engine. All methods are safe for
// concurrent use; ObserveLive is the serving hot path and allocation-free.
type Policy struct {
	cfg PolicyConfig
	log *decisionLog

	mu    sync.Mutex
	admit map[string]*admitGate
	live  map[string]*liveGate

	// rollback callbacks, registered before serving starts, immutable after.
	rollbackFn map[string]func() (uint64, error)

	admitted   atomic.Uint64
	held       atomic.Uint64
	rolledBack atomic.Uint64
	skipped    atomic.Uint64
}

// NewPolicy builds an engine gating the given classes (their admission and
// live windows exist from the start; unknown classes are ignored by
// ObserveLive).
func NewPolicy(cfg PolicyConfig, classes ...string) *Policy {
	cfg = cfg.withDefaults()
	p := &Policy{
		cfg:        cfg,
		log:        newDecisionLog(cfg.LogCap),
		admit:      make(map[string]*admitGate, len(classes)),
		live:       make(map[string]*liveGate, len(classes)),
		rollbackFn: make(map[string]func() (uint64, error), len(classes)),
	}
	for _, c := range classes {
		p.admit[c] = &admitGate{}
		p.live[c] = &liveGate{}
	}
	return p
}

// Config returns the engine's (defaulted) configuration.
func (p *Policy) Config() PolicyConfig { return p.cfg }

// RegisterRollback installs the class's rollback callback (returning the
// version rolled back to). Must be called before serving traffic starts;
// callbacks are invoked with no policy lock held.
func (p *Policy) RegisterRollback(class string, fn func() (uint64, error)) {
	p.rollbackFn[class] = fn
}

// observeCandidate adds one shadow batch of candidate-vs-source evidence and
// reports whether the admission window is now full.
func (p *Policy) observeCandidate(class string, match, total uint64) (full bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.admit[class]
	if g == nil {
		return false
	}
	g.match += match
	g.total += total
	g.batches++
	return g.batches >= p.cfg.AdmitWindow
}

// admitVerdict closes the class's admission window: it returns the
// accumulated agreement evidence, whether it clears AdmitThreshold, and
// resets the window for the next candidate.
func (p *Policy) admitVerdict(class string) (agree float64, batches int, labels uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.admit[class]
	if g == nil {
		return 0, 0, 0, false
	}
	batches, labels = g.batches, g.total
	if g.total > 0 {
		agree = float64(g.match) / float64(g.total)
	}
	g.match, g.total, g.batches = 0, 0, 0
	return agree, batches, labels, agree >= p.cfg.AdmitThreshold
}

// budgetCheck compares a candidate's modelled cost against the class budget.
func (p *Policy) budgetCheck(class string, latency, storage int) (ok bool, reason string) {
	b, exists := p.cfg.Budgets[class]
	if !exists {
		return true, ""
	}
	if b.LatencyCycles > 0 && latency > b.LatencyCycles {
		return false, fmt.Sprintf("latency %d cycles over budget %d", latency, b.LatencyCycles)
	}
	if b.StorageBytes > 0 && storage > b.StorageBytes {
		return false, fmt.Sprintf("storage %d bytes over budget %d", storage, b.StorageBytes)
	}
	return true, ""
}

// ObserveLive feeds one shadow-compared inference batch of a *served*
// version into the class's live window: match of total labels agreed with
// the source class. When a window completes below DivergeThreshold for
// DivergeWindows consecutive windows, the registered rollback callback runs
// (with no policy lock held) and the decision is logged. This is the serving
// hot path: steady-state calls take one mutex and touch a few counters,
// allocation-free (gated in CI by BenchmarkPolicyDecision).
func (p *Policy) ObserveLive(class string, ver uint64, match, total uint64) {
	if total == 0 {
		return
	}
	p.mu.Lock()
	g := p.live[class]
	if g == nil {
		p.mu.Unlock()
		return
	}
	if g.ver != ver {
		// New served version (publish or rollback): fresh window, no
		// carried-over divergence.
		g.ver, g.match, g.total, g.divergent = ver, 0, 0, 0
	}
	g.match += match
	g.total += total
	if g.total < uint64(p.cfg.LiveWindow) {
		p.mu.Unlock()
		return
	}
	agree := float64(g.match) / float64(g.total)
	labels := g.total
	g.agree = agree
	g.windows++
	g.match, g.total = 0, 0
	if agree >= p.cfg.DivergeThreshold {
		g.divergent = 0
		p.mu.Unlock()
		return
	}
	g.divergent++
	div := g.divergent
	if div >= p.cfg.DivergeWindows {
		// Full hysteresis before any retry: a failed rollback (nothing to
		// roll back to) should not re-fire on every subsequent window.
		g.divergent = 0
	}
	p.mu.Unlock()
	if div < p.cfg.DivergeWindows {
		return
	}
	p.rollbackDiverged(class, ver, agree, div, labels)
}

// rollbackDiverged runs the class's registered rollback callback and records
// the decision. Called with no policy lock held.
func (p *Policy) rollbackDiverged(class string, from uint64, agree float64, windows int, labels uint64) {
	fn := p.rollbackFn[class]
	d := Decision{
		Class:     class,
		Action:    ActionRollback,
		Agreement: agree,
		Batches:   windows,
		Labels:    labels,
	}
	if fn == nil {
		d.Reason = fmt.Sprintf("live agreement %.3f < %.2f for %d windows; no rollback registered for %s",
			agree, p.cfg.DivergeThreshold, windows, class)
		p.log.append(d)
		return
	}
	to, err := fn()
	if err != nil {
		d.Reason = fmt.Sprintf("live agreement %.3f < %.2f for %d windows; rollback failed: %v",
			agree, p.cfg.DivergeThreshold, windows, err)
		p.log.append(d)
		return
	}
	p.rolledBack.Add(1)
	d.Version = to
	d.Reason = fmt.Sprintf("live agreement %.3f < %.2f for %d consecutive windows; rolled back v%d -> v%d",
		agree, p.cfg.DivergeThreshold, windows, from, to)
	p.log.append(d)
}

// record appends a decision to the log and bumps the action counter.
func (p *Policy) record(d Decision) Decision {
	switch d.Action {
	case ActionAdmit:
		p.admitted.Add(1)
	case ActionHold:
		p.held.Add(1)
	case ActionRollback:
		p.rolledBack.Add(1)
	case ActionSkip:
		p.skipped.Add(1)
	}
	return p.log.append(d)
}

// Decisions returns the retained decision log, oldest first.
func (p *Policy) Decisions() []Decision { return p.log.snapshot() }

// GateState is one class's point-in-time gate status.
type GateState struct {
	Class            string
	PendingBatches   int     // admission shadow batches accumulated so far
	PendingAgreement float64 // agreement over the open admission window
	LiveVersion      uint64  // version the live window is accumulating for
	LiveAgreement    float64 // agreement of the last completed live window
	LiveWindows      uint64  // completed live windows
	Divergent        int     // consecutive divergent live windows
}

// PolicyStats is the `stats` verb summary of the engine.
type PolicyStats struct {
	Admitted   uint64
	Held       uint64
	RolledBack uint64
	Skipped    uint64
	Decisions  uint64 // decisions ever recorded (the log may have evicted early ones)
	Gates      []GateState
}

// Stats snapshots the engine's counters and per-class gate states.
func (p *Policy) Stats() PolicyStats {
	st := PolicyStats{
		Admitted:   p.admitted.Load(),
		Held:       p.held.Load(),
		RolledBack: p.rolledBack.Load(),
		Skipped:    p.skipped.Load(),
		Decisions:  p.log.total(),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, class := range []string{StudentClass, DartClass} {
		a, l := p.admit[class], p.live[class]
		if a == nil && l == nil {
			continue
		}
		g := GateState{Class: class}
		if a != nil {
			g.PendingBatches = a.batches
			if a.total > 0 {
				g.PendingAgreement = float64(a.match) / float64(a.total)
			}
		}
		if l != nil {
			g.LiveVersion = l.ver
			g.LiveAgreement = l.agree
			g.LiveWindows = l.windows
			g.Divergent = l.divergent
		}
		st.Gates = append(st.Gates, g)
	}
	return st
}

// agreementCount compares two logit tensors label-by-label and counts how
// many land on the same side of the decision boundary (logit 0 ≡ probability
// 0.5) — the same agreement measure as the serve engine's A/B shadow
// compare.
func agreementCount(a, b *mat.Tensor) (match, total uint64) {
	n := len(a.Data)
	if len(b.Data) < n {
		n = len(b.Data)
	}
	for i := 0; i < n; i++ {
		if (a.Data[i] >= 0) == (b.Data[i] >= 0) {
			match++
		}
	}
	return match, uint64(n)
}

// meanCosine averages per-layer tabularization fidelity diagnostics.
func meanCosine(cos []float64) float64 {
	if len(cos) == 0 {
		return 0
	}
	var s float64
	for _, c := range cos {
		s += c
	}
	return s / float64(len(cos))
}

// paramDelta is the relative L2 parameter distance between two
// identically-shaped networks: ||a-b|| / ||a||. Used for incremental
// re-tabularization — a source delta below MinSourceDelta means the rebuilt
// table would come out nearly identical to the one already serving.
func paramDelta(a, b nn.Layer) float64 {
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		return math.Inf(1) // different shapes: always a full rebuild
	}
	var diff, norm float64
	for i := range ap {
		aw, bw := ap[i].W.Data, bp[i].W.Data
		if len(aw) != len(bw) {
			return math.Inf(1)
		}
		for j := range aw {
			d := aw[j] - bw[j]
			diff += d * d
			norm += aw[j] * aw[j]
		}
	}
	if norm == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(diff / norm)
}
