package online

import (
	"dart/internal/dataprep"
	"dart/internal/prefetch"
	"dart/internal/sim"
)

// example is one assembled training sample: a segmented history window and
// its delta-bitmap label.
type example struct {
	x []float64 // History x InputDim, row-major (copied out of the builder)
	y []float64 // OutputDim delta bitmap
}

// builder turns one session's access stream into training examples,
// replicating dataprep.Build incrementally: every access with a full history
// window opens a trigger whose input is NNPrefetcher.BuildInput of that
// window, and the trigger's label collects the deltas of the next
// LookForward accesses. A trigger whose window completes is emitted as an
// example — identical, sample for sample, to what the offline dataprep would
// produce on the same records (the builder additionally emits the final
// window that dataprep's n = len-History-LookForward sizing leaves off; the
// equivalence test pins both facts), so the online fine-tuning loss is
// directly comparable to offline training loss.
type builder struct {
	cfg  dataprep.Config
	pf   *prefetch.NNPrefetcher // BuildInput half only; its predictor is never queried
	pend []pending
}

// pending is a trigger waiting for its look-forward window to fill.
type pending struct {
	x     []float64
	block uint64
	y     []float64
	seen  int
}

func newBuilder(cfg dataprep.Config) *builder {
	return &builder{
		cfg: cfg,
		pf:  prefetch.NewNNPrefetcher("online-builder", nil, cfg, 0, 0, 0),
	}
}

// observe feeds one access through the builder, emitting every example whose
// look-forward window it completes. Runs on the collector goroutine only.
func (b *builder) observe(a sim.Access, emit func(example)) {
	// Complete open triggers with this access's delta.
	w := 0
	for i := range b.pend {
		p := &b.pend[i]
		if bit := b.cfg.DeltaToBit(int64(a.Block) - int64(p.block)); bit >= 0 {
			p.y[bit] = 1
		}
		p.seen++
		if p.seen >= b.cfg.LookForward {
			emit(example{x: p.x, y: p.y})
			continue // retired: drop from pend
		}
		b.pend[w] = *p
		w++
	}
	b.pend = b.pend[:w]

	// Open a new trigger once the history window is full. BuildInput's
	// buffer is reused across calls, so the window is copied out.
	if x, ok := b.pf.BuildInput(a); ok {
		b.pend = append(b.pend, pending{
			x:     append([]float64(nil), x.Data...),
			block: a.Block,
			y:     make([]float64, b.cfg.OutputDim()),
		})
	}
}
