package online

import (
	"sync"
	"time"
)

// Decision is one promotion-control-plane verdict: a candidate admitted or
// held at the gate, a published version rolled back on live divergence, or a
// duty cycle skipped before a candidate was even built. Every decision
// carries the evidence it was made on, so an operator reading the `policy`
// verb can reconstruct why the serving classes look the way they do.
type Decision struct {
	Seq    uint64    // monotonically increasing across all classes
	Time   time.Time // when the decision was taken
	Class  string    // "teacher", "student", "dart"
	Action string    // "admit", "hold", "rollback", "skip"
	// Version is the class version the decision concerns: the published
	// version for admits, the version rolled back *to* for rollbacks, and 0
	// for held or skipped candidates (they never became a version).
	Version uint64
	Reason  string // human-readable grounds, e.g. "agreement 0.42 < 0.70 over 8 batches"

	// Agreement evidence: the candidate-vs-source (admit/hold) or live
	// served-vs-source (rollback) agreement fraction, with the window size
	// it was measured over. Zero for skips and ungated (forced or teacher)
	// admits, where no shadow comparison ran.
	Agreement float64 // fraction of labels on the same side of the decision boundary
	Batches   int     // shadow batches (admission) or live windows (rollback) measured
	Labels    uint64  // labels compared across the window

	// Cosine is the mean per-layer tabularization fidelity of the candidate
	// hierarchy (tabular.Result.Cosine); dart decisions only.
	Cosine float64

	// Modelled per-class cost of the candidate at decision time, checked
	// against the configured budget (admission only).
	LatencyCycles int
	StorageBytes  int
}

// decisionLog is a bounded append-only ring of decisions. The cap bounds
// memory for an arbitrarily long-lived daemon; readers get a copy in
// oldest-first order.
type decisionLog struct {
	mu  sync.Mutex
	buf []Decision
	w   int // next write slot
	n   int // valid entries
	seq uint64
}

func newDecisionLog(cap int) *decisionLog {
	return &decisionLog{buf: make([]Decision, cap)}
}

// append stamps the sequence number and time and records the decision,
// overwriting the oldest entry when full. It returns the stamped decision.
func (dl *decisionLog) append(d Decision) Decision {
	dl.mu.Lock()
	dl.seq++
	d.Seq = dl.seq
	d.Time = time.Now()
	dl.buf[dl.w] = d
	dl.w = (dl.w + 1) % len(dl.buf)
	if dl.n < len(dl.buf) {
		dl.n++
	}
	dl.mu.Unlock()
	return d
}

// snapshot returns the retained decisions, oldest first.
func (dl *decisionLog) snapshot() []Decision {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	out := make([]Decision, dl.n)
	start := (dl.w - dl.n + len(dl.buf)) % len(dl.buf)
	for i := 0; i < dl.n; i++ {
		out[i] = dl.buf[(start+i)%len(dl.buf)]
	}
	return out
}

// total returns how many decisions were ever appended (the ring may have
// evicted early ones).
func (dl *decisionLog) total() uint64 {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.seq
}
