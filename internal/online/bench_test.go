package online

import (
	"testing"

	"dart/internal/nn"
	"dart/internal/sim"
)

// BenchmarkFeedbackIngest measures the serving-side cost of the online
// feedback path: one ring push per access (what a session actor pays) plus
// the amortised collector drain. This is the number the CI bench gate
// (BENCH_serve.json "online" section) holds the line on — ingest must stay
// cheap enough to be invisible at serving throughput.
func BenchmarkFeedbackIngest(b *testing.B) {
	r := NewRing(4096)
	ev := Event{
		Access:   sim.Access{InstrID: 1, PC: 0x400000, Block: 1 << 14},
		HasFB:    true,
		Feedback: sim.Feedback{Block: 1 << 14, Kind: sim.FeedbackUseful},
	}
	drop := func(Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Access.InstrID = uint64(i)
		r.Push(ev)
		if i&1023 == 1023 {
			r.Drain(drop)
		}
	}
}

// BenchmarkModelSwap measures hot-swap latency: Publish deep-copies the
// shadow into an immutable snapshot and atomically repoints the store (no
// disk in the measured path — checkpointing is the daemon's async durability
// cost, not the swap latency sessions observe).
func BenchmarkModelSwap(b *testing.B) {
	data := tinyData()
	s, err := NewStore(tinyArch(data), "")
	if err != nil {
		b.Fatal(err)
	}
	shadow := tinyArch(data)()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Publish(shadow, nn.CheckpointMeta{}); err != nil {
			b.Fatal(err)
		}
	}
	if s.Load() == nil {
		b.Fatal("no model published")
	}
}
