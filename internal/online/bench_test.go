package online

import (
	"math/rand"
	"testing"

	"dart/internal/config"
	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/sim"
	"dart/internal/tabular"
)

// BenchmarkFeedbackIngest measures the serving-side cost of the online
// feedback path: one ring push per access (what a session actor pays) plus
// the amortised collector drain. This is the number the CI bench gate
// (BENCH_serve.json "online" section) holds the line on — ingest must stay
// cheap enough to be invisible at serving throughput.
func BenchmarkFeedbackIngest(b *testing.B) {
	r := NewRing(4096)
	ev := Event{
		Access:   sim.Access{InstrID: 1, PC: 0x400000, Block: 1 << 14},
		HasFB:    true,
		Feedback: sim.Feedback{Block: 1 << 14, Kind: sim.FeedbackUseful},
	}
	drop := func(Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Access.InstrID = uint64(i)
		r.Push(ev)
		if i&1023 == 1023 {
			r.Drain(drop)
		}
	}
}

// benchTeacherCfg is the daemon's default online-teacher architecture over
// the default data config — the model class the student tier distills from.
func benchTeacherCfg() (dataprep.Config, nn.TransformerConfig) {
	data := dataprep.Default()
	return data, nn.TransformerConfig{
		T: data.History, DIn: data.InputDim(),
		DModel: 32, DFF: 64, DOut: data.OutputDim(), Heads: 2, Layers: 1,
	}
}

// modelOf converts a transformer config to the complexity model's notation.
func modelOf(c nn.TransformerConfig) config.ModelConfig {
	return config.ModelConfig{T: c.T, DI: c.DIn, DA: c.DModel, DF: c.DFF, DO: c.DOut, H: c.Heads, L: c.Layers}
}

// benchInfer measures one admission-batcher-sized forward pass of the given
// architecture and reports its modelled parameter storage as a custom metric
// — dart-benchcheck's serve gate reads both numbers to hold the "student
// strictly faster and smaller than teacher" line.
func benchInfer(b *testing.B, cfg nn.TransformerConfig) {
	net := nn.NewTransformerPredictor(cfg, rand.New(rand.NewSource(5)))
	const batch = 16
	in := mat.NewTensor(batch, cfg.T, cfg.DIn)
	rng := rand.New(rand.NewSource(6))
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in)
	}
	b.ReportMetric(float64(config.NNStorageBits(modelOf(cfg), 32)/8), "storage_bytes")
}

// BenchmarkTeacherInfer is the teacher-class baseline of the student tier's
// latency/storage win: one batched forward pass of the online teacher.
func BenchmarkTeacherInfer(b *testing.B) {
	_, tcfg := benchTeacherCfg()
	benchInfer(b, tcfg)
}

// BenchmarkStudentInfer is the number the deployment story rests on: the
// distilled student must be strictly faster (ns/op) and smaller
// (storage_bytes) than the teacher. Gated in CI against both the absolute
// baseline and, same-run, the teacher benchmark.
func BenchmarkStudentInfer(b *testing.B) {
	_, tcfg := benchTeacherCfg()
	benchInfer(b, nn.StudentConfig(tcfg))
}

// BenchmarkDistillCycle measures one duty-cycled distillation step as the
// learner takes it: a teacher forward pass for soft targets, kd.Loss, a
// student forward/backward, and an Adam step.
func BenchmarkDistillCycle(b *testing.B) {
	data, tcfg := benchTeacherCfg()
	scfg := nn.StudentConfig(tcfg)
	teacher := nn.NewTransformerPredictor(tcfg, rand.New(rand.NewSource(5)))
	student := nn.NewTransformerPredictor(scfg, rand.New(rand.NewSource(13)))
	opt := nn.NewAdam(1e-3)
	kdc := kd.DefaultConfig()
	const batch = 32
	bx := mat.NewTensor(batch, data.History, data.InputDim())
	by := mat.NewTensor(batch, 1, data.OutputDim())
	rng := rand.New(rand.NewSource(6))
	for i := range bx.Data {
		bx.Data[i] = rng.NormFloat64()
	}
	for i := range by.Data {
		by.Data[i] = float64(rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := teacher.Forward(bx)
		sl := student.Forward(bx)
		_, grad := kd.Loss(sl, tl, by, kdc.Lambda, kdc.Temperature)
		student.Backward(grad)
		opt.Step(student.Params())
	}
}

// servingHierarchy tabularizes the daemon's default student with the dart
// tier's serving kernel (LSH, K=8, C=1 — dart-serve's default), the
// configuration BenchmarkDartInfer gates.
func servingHierarchy(b *testing.B) *tabular.Hierarchy {
	return servingHierarchyBits(b, 0)
}

// servingHierarchyBits is servingHierarchy at an explicit stored entry width
// (0 keeps the float64 default) — same student, fit data, and kernel seeds,
// so the float and quantized benchmarks measure the identical structure.
func servingHierarchyBits(b *testing.B, bits int) *tabular.Hierarchy {
	b.Helper()
	data, tcfg := benchTeacherCfg()
	student := nn.NewTransformerPredictor(nn.StudentConfig(tcfg), rand.New(rand.NewSource(13)))
	fit := mat.NewTensor(64, data.History, data.InputDim())
	rng := rand.New(rand.NewSource(6))
	for i := range fit.Data {
		fit.Data[i] = rng.NormFloat64()
	}
	cfg := DefaultTabularConfig()
	cfg.Kernel.DataBits = bits
	res := tabular.Tabularize(student, fit, cfg)
	return res.Hierarchy
}

// benchDartInfer measures one admission-batcher-sized QueryBatch through the
// tabularized student at the given stored width, reporting the table's
// analytic storage as the storage_bytes metric.
func benchDartInfer(b *testing.B, bits int) {
	h := servingHierarchyBits(b, bits)
	data, _ := benchTeacherCfg()
	const batch = 16
	in := mat.NewTensor(batch, data.History, data.InputDim())
	rng := rand.New(rand.NewSource(6))
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.QueryBatch(in)
	}
	b.ReportMetric(float64(h.Cost().StorageBytes()), "storage_bytes")
}

// BenchmarkDartInfer is the number the paper's deployment argument rests on:
// one admission-batcher-sized QueryBatch through the tabularized student
// must be strictly faster than the student's own forward pass (same-run CI
// check), with the table's analytic storage reported as the storage_bytes
// metric.
func BenchmarkDartInfer(b *testing.B) {
	benchDartInfer(b, 0)
}

// BenchmarkDartInferQuant is the int8 deployment artifact's number: the
// quantized tables must be at least as fast as the float tables same-run
// (the integer payload is cache-smaller and the row kernels vectorize), and
// the reported storage_bytes must come in >= 4x under the float row — both
// gated by dart-benchcheck against the "quant" section of BENCH_serve.json.
func BenchmarkDartInferQuant(b *testing.B) {
	benchDartInfer(b, 8)
}

// BenchmarkQuantRowAccum gates the dequantize-free hot path itself: one
// quantized-row accumulate (the inner loop of every quantized table query)
// must stay allocation-free — the allocs/op column is gated at zero, like
// the wire codec and the policy decision path.
func BenchmarkQuantRowAccum(b *testing.B) {
	const n = 64
	q := make([]int8, n)
	rng := rand.New(rand.NewSource(5))
	for i := range q {
		q[i] = int8(rng.Intn(256) - 128)
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.AccumRowInt8(dst, q, -3, 0.017)
	}
}

// BenchmarkTabularSwap measures table hot-swap latency: TableStore.Publish
// is an identity snapshot (hierarchies are immutable) plus the checkpoint-
// free version bookkeeping and atomic pointer store — the cost sessions
// observe when the tabularizer lands a new table.
func BenchmarkTabularSwap(b *testing.B) {
	s, err := NewTableStore("", DartClass)
	if err != nil {
		b.Fatal(err)
	}
	h := servingHierarchy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Publish(h, nn.CheckpointMeta{}); err != nil {
			b.Fatal(err)
		}
	}
	if s.Load() == nil {
		b.Fatal("no table published")
	}
}

// BenchmarkModelSwap measures hot-swap latency: Publish deep-copies the
// shadow into an immutable snapshot and atomically repoints the store (no
// disk in the measured path — checkpointing is the daemon's async durability
// cost, not the swap latency sessions observe).
func BenchmarkModelSwap(b *testing.B) {
	data := tinyData()
	s, err := NewStore(tinyArch(data), "")
	if err != nil {
		b.Fatal(err)
	}
	shadow := tinyArch(data)()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Publish(shadow, nn.CheckpointMeta{}); err != nil {
			b.Fatal(err)
		}
	}
	if s.Load() == nil {
		b.Fatal("no model published")
	}
}

// BenchmarkPolicyDecision measures the promotion policy's live-observation
// hot path: the batcher calls ObserveLive on every shadow-compared inference
// batch, so it must stay mutex+counter-math with zero allocations. The
// match/total pattern alternates to exercise window completion and the
// divergence hysteresis without ever firing a rollback.
func BenchmarkPolicyDecision(b *testing.B) {
	p := NewPolicy(PolicyConfig{LiveWindow: 64, DivergeThreshold: 0.1, DivergeWindows: 1 << 30},
		DartClass)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ObserveLive(DartClass, 1, 8, 16)
	}
	if st := p.Stats(); st.RolledBack != 0 {
		b.Fatalf("benchmark tripped a rollback: %+v", st)
	}
}
