// Package online closes the feedback→train→publish→swap loop around the
// serving engine: a background continual-learning subsystem that turns the
// prefetch-outcome feedback of live serve sessions into training minibatches,
// fine-tunes a shadow copy of the neural predictor with nn.Trainer at a
// bounded duty cycle, and publishes immutable versioned snapshots that the
// engine's admission batcher hot-swaps between inference batches.
//
// Dataflow (see README.md for the invariants):
//
//	session actors ──Push──► per-session lock-free Ring (SPSC, lossy)
//	                              │ Drain (collector tick)
//	                              ▼
//	                      builder: NNPrefetcher.BuildInput windows +
//	                      look-forward delta-bitmap labels (≡ dataprep.Build)
//	                              │ emit
//	                              ▼
//	                      example reservoir (overwrite-oldest recency bias)
//	                              │ minibatch sample
//	                              ▼
//	                      nn.Trainer on the shadow model (duty-cycled)
//	                              │ Publish (swap interval / forced)
//	                              ▼
//	                      Store: atomic.Pointer[Model] + CRC checkpoints
//	                              │ Load (per inference batch)
//	                              ▼
//	                      serve admission batcher — one version per batch
package online

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dart/internal/dataprep"
	"dart/internal/kd"
	"dart/internal/mat"
	"dart/internal/nn"
	"dart/internal/sim"
	"dart/internal/tabular"
)

// Config tunes the learner. Zero values select sensible defaults.
type Config struct {
	Data dataprep.Config // input/label construction (must match serving sessions)
	New  func() nn.Layer // architecture factory; every call must produce identical shapes
	Init nn.Layer        // optional warm start; params copied when no checkpoint is recovered
	Dir  string          // checkpoint directory ("" = in-memory only)

	BatchSize    int           // minibatch size (default 32)
	LR           float64       // Adam learning rate (default 1e-3)
	BufferCap    int           // example reservoir capacity (default 4096)
	RingCap      int           // per-session event ring capacity (default 4096)
	Duty         float64       // max fraction of wall time spent training (default 0.25)
	Tick         time.Duration // collector cadence (default 2ms)
	SwapInterval time.Duration // auto-publish cadence (default 30s; <0 disables auto-publish)

	Latency      int // modelled inference latency of the online prefetcher (cycles)
	StorageBytes int // modelled storage of the online prefetcher

	// Student, when non-nil, enables the distilled-student tier (the paper's
	// deployment story, Sec. VI-D): alongside fine-tuning the shadow teacher,
	// the learner distills this compact architecture from the currently
	// published teacher version with kd.Loss over the same streamed examples,
	// and publishes student snapshots as the "student" model class of the
	// versioned store. Every call must produce identical shapes, with the
	// same input/output dims as New.
	Student     func() nn.Layer
	StudentInit nn.Layer // optional warm start (e.g. the offline-distilled student)

	Distill         kd.Config     // λ/temperature/LR of Eq. 25 (zero value: kd.DefaultConfig)
	DistillInterval time.Duration // student auto-publish cadence (default: SwapInterval; <0 disables)

	StudentLatency      int // modelled inference latency of the student prefetcher (cycles)
	StudentStorageBytes int // modelled storage of the student prefetcher

	// Dart, when true, enables the tabularized serving class — the paper's
	// actual deployment artifact. A duty-cycled tabularizer periodically
	// re-tabularizes the published student (tabular.Tabularize on a private
	// parameter mirror, mirroring the distiller's pattern) over the freshest
	// reservoir examples and publishes the resulting hierarchy as the "dart"
	// class of the versioned store, where serving hot-swaps it between
	// inference batches like any other class. Requires Student.
	Dart bool

	Tabular tabular.Config // tabularization config (zero Kernel selects defaults)

	// TabularizeInterval is the auto re-tabularize cadence (default:
	// DistillInterval; <0 disables — the forced SwapDart always works). An
	// auto cycle is skipped while the published student hasn't changed since
	// the table was built.
	TabularizeInterval time.Duration

	DartSamples int // kernel-fitting examples drawn from the reservoir (default 128)

	// DartLatency/DartStorageBytes override the modelled cost of the dart
	// prefetcher; when 0 the analytic Cost of the currently published
	// hierarchy is used (falling back to the student's numbers until the
	// first table is published).
	DartLatency      int
	DartStorageBytes int

	// Policy, when non-nil, enables the promotion policy engine: student and
	// dart publishes are gated on candidate-vs-source agreement and budget,
	// live divergence auto-rolls-back, and every decision lands in the
	// bounded decision log (see policy.go). Nil keeps the legacy
	// unconditional duty-cycle publish path bit-identical to previous
	// releases — the gate's evaluation batches draw from a dedicated RNG so
	// enabling it never perturbs the training stream either.
	Policy *PolicyConfig

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 4096
	}
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.Duty <= 0 {
		c.Duty = 0.25
	}
	if c.Duty > 1 {
		c.Duty = 1
	}
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.SwapInterval == 0 {
		c.SwapInterval = 30 * time.Second
	}
	if c.DistillInterval == 0 {
		c.DistillInterval = c.SwapInterval
	}
	if c.TabularizeInterval == 0 {
		c.TabularizeInterval = c.DistillInterval
	}
	if c.DartSamples <= 0 {
		c.DartSamples = 128
	}
	if c.Dart && c.Tabular == (tabular.Config{}) {
		c.Tabular = DefaultTabularConfig()
	}
	if c.Distill == (kd.Config{}) {
		c.Distill = kd.DefaultConfig()
	}
	if c.Data.History == 0 {
		c.Data = dataprep.Default()
	}
	return c
}

// StudentClass names the distilled-student model class in the versioned
// store (checkpoint files, metadata, and the wire protocol's class selector).
const StudentClass = "student"

// sessionTap is one attached session: its event ring and example builder.
type sessionTap struct {
	ring *Ring
	bld  *builder
}

// Learner is the continual-learning subsystem. Create with NewLearner, wire
// into a serve.Engine via serve.Config.Online, then Start. All exported
// methods are safe for concurrent use.
type Learner struct {
	cfg   Config
	store *Store

	tapMu sync.Mutex
	taps  map[string]*sessionTap

	// trainMu guards the shadow model, its trainer, and the loss trend —
	// shared between the background loop and forced Swap/Rollback calls.
	trainMu    sync.Mutex
	shadow     nn.Layer
	tr         *nn.Trainer
	rng        *rand.Rand
	lossFast   float64 // EWMA, alpha 0.2
	lossSlow   float64 // EWMA, alpha 0.02
	lossSeeded bool
	lastPub    time.Time
	stepsAtPub uint64

	// Distilled-student tier; all nil/zero unless cfg.Student is set.
	// Guarded by trainMu like the teacher shadow. distTeacher is a private
	// clone of the currently published teacher used as the frozen KD source —
	// a published Model.Net's Forward is not reentrant, and the serving
	// batcher owns that instance.
	studentStore   *Store
	student        nn.Layer // student shadow being distilled
	sopt           nn.Optimizer
	distTeacher    nn.Layer
	distTeacherVer uint64
	distLossFast   float64
	distLossSlow   float64
	distSeeded     bool
	lastStuPub     time.Time
	distAtPub      uint64

	distSteps        atomic.Uint64
	distilled        atomic.Uint64
	studentPublished atomic.Uint64

	// Dart (tabularized) tier; all nil/zero unless cfg.Dart is set. tabMu
	// serialises tabularization cycles (the loop's duty cycle vs a forced
	// SwapDart from the wire) and guards the mirror/cadence fields below;
	// lock order is tabMu before trainMu, never the reverse.
	dartStore     *TableStore
	tabMu         sync.Mutex
	dartStudent   nn.Layer // private parameter mirror of the published student
	dartMirrorVer uint64   // student version currently in the mirror
	dartSrcVer    uint64   // student version the published table derives from
	lastSkipVer   uint64   // student version whose skip was already counted
	lastTab       time.Time
	dartCost      atomic.Pointer[tabular.Cost] // analytic cost of the published hierarchy
	tabularized   atomic.Uint64
	dartPublished atomic.Uint64
	tabAttempts   atomic.Uint64 // duty cycles that found work to consider
	tabSkips      atomic.Uint64 // cycles skipped (unchanged or below-delta student)
	tabNs         atomic.Int64

	// Promotion policy engine; nil when Config.Policy is nil (the legacy
	// unconditional publish path). evalRng feeds the gate's shadow-batch
	// sampling and is deliberately separate from rng so admission evaluation
	// never perturbs the training stream (pinned by regression test).
	pol     *Policy
	evalRng *rand.Rand

	// buf is the example reservoir. Guarded by trainMu: the loop goroutine
	// writes it (drainAll) and samples it (optimizer steps), but forced
	// SwapDart tabularizations snapshot it from wire-server goroutines
	// (fitSnapshot).
	buf   []example
	bufW  int
	bufN  int
	fresh int // examples added since the last optimizer step

	ingested      atomic.Uint64
	detachedDrops atomic.Uint64
	useful        atomic.Uint64
	late          atomic.Uint64
	assembled     atomic.Uint64
	trained       atomic.Uint64
	steps         atomic.Uint64
	published     atomic.Uint64

	start   time.Time
	trainNs atomic.Int64 // cumulative time inside optimizer steps

	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// NewLearner builds a learner. When cfg.Dir holds a valid checkpoint, the
// newest good version is recovered as both the serving model and the shadow
// (continual learning across restarts); otherwise the shadow starts from
// cfg.Init (when given) or cfg.New's initialisation, and is published as
// version 1 so the serving path always has a model to load.
func NewLearner(cfg Config) (*Learner, error) {
	cfg = cfg.withDefaults()
	if cfg.New == nil {
		return nil, fmt.Errorf("online: Config.New architecture factory is required")
	}
	if err := cfg.Data.Validate(); err != nil {
		return nil, err
	}
	if cfg.Student != nil {
		if math.IsNaN(cfg.Distill.Lambda) {
			cfg.Distill.Lambda = kd.DefaultConfig().Lambda
		}
		if math.IsNaN(cfg.Distill.Temperature) {
			cfg.Distill.Temperature = kd.DefaultConfig().Temperature
		}
		if cfg.Distill.Lambda < 0 || cfg.Distill.Lambda > 1 {
			return nil, fmt.Errorf("online: Distill.Lambda %v outside [0, 1]", cfg.Distill.Lambda)
		}
		if cfg.Distill.Temperature <= 0 {
			return nil, fmt.Errorf("online: Distill.Temperature %v must be positive", cfg.Distill.Temperature)
		}
	}
	store, err := NewStore(cfg.New, cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &Learner{
		cfg:   cfg,
		store: store,
		taps:  make(map[string]*sessionTap),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		buf:   make([]example, cfg.BufferCap),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.shadow = cfg.New()
	if m := store.Load(); m != nil {
		if err := nn.CopyParams(l.shadow, m.Net); err != nil {
			return nil, fmt.Errorf("online: recovered checkpoint: %w", err)
		}
	} else {
		if cfg.Init != nil {
			if err := nn.CopyParams(l.shadow, cfg.Init); err != nil {
				return nil, fmt.Errorf("online: warm start: %w", err)
			}
		}
		if _, err := l.publishLocked(); err != nil {
			return nil, err
		}
	}
	l.tr = nn.NewTrainer(l.shadow, nn.NewAdam(cfg.LR), cfg.BatchSize, l.rng)
	if cfg.Student != nil {
		if err := l.initStudent(); err != nil {
			return nil, err
		}
	}
	if cfg.Dart {
		if err := l.initDart(); err != nil {
			return nil, err
		}
	}
	if cfg.Policy != nil {
		if err := cfg.Policy.Validate(); err != nil {
			return nil, err
		}
		var classes []string
		if l.studentStore != nil {
			classes = append(classes, StudentClass)
		}
		if l.dartStore != nil {
			classes = append(classes, DartClass)
		}
		l.pol = NewPolicy(*cfg.Policy, classes...)
		if l.studentStore != nil {
			l.pol.RegisterRollback(StudentClass, func() (uint64, error) {
				m, err := l.rollbackStudent()
				if err != nil {
					return 0, err
				}
				return m.Version, nil
			})
		}
		if l.dartStore != nil {
			l.pol.RegisterRollback(DartClass, func() (uint64, error) {
				t, err := l.rollbackDart()
				if err != nil {
					return 0, err
				}
				return t.Version, nil
			})
		}
		l.evalRng = rand.New(rand.NewSource(cfg.Seed ^ 0x5eed9e3779b97f4a))
	}
	l.lastPub = time.Now()
	l.lastStuPub = time.Now()
	l.start = time.Now()
	return l, nil
}

// initDart wires the tabularized serving class: its table store (recovering
// the newest good table checkpoint when one exists) and the private student
// mirror the tabularizer reads from. No table is published at construction
// when the store starts empty — tabularization needs streamed examples to
// fit kernels on, so the serve side falls back to the student until the
// first duty cycle (or SwapDart) publishes one.
func (l *Learner) initDart() error {
	if l.studentStore == nil {
		return fmt.Errorf("online: the dart tier re-tabularizes the published student; Config.Dart requires Config.Student")
	}
	l.dartStudent = l.cfg.Student()
	if _, ok := l.dartStudent.(*nn.Sequential); !ok {
		return fmt.Errorf("online: tabularization needs an *nn.Sequential student architecture, got %T", l.dartStudent)
	}
	store, err := NewTableStore(l.cfg.Dir, DartClass)
	if err != nil {
		return err
	}
	l.dartStore = store
	if t := store.Load(); t != nil {
		c := t.H.Cost()
		l.dartCost.Store(&c)
		// The recovered table remembers which student version it derives
		// from, so the duty cycle does not rebuild an unchanged table right
		// after a restart.
		l.dartSrcVer = t.Meta.Source
	}
	l.lastTab = time.Now()
	return nil
}

// initStudent wires the distilled-student tier: its class store (recovering
// the newest good student checkpoint when one exists), the student shadow,
// its own optimizer, and the private teacher clone distillation reads from.
func (l *Learner) initStudent() error {
	store, err := NewClassStore(l.cfg.Student, l.cfg.Dir, StudentClass)
	if err != nil {
		return err
	}
	l.studentStore = store
	l.student = l.cfg.Student()
	l.distTeacher = l.cfg.New()
	if m := store.Load(); m != nil {
		if err := nn.CopyParams(l.student, m.Net); err != nil {
			return fmt.Errorf("online: recovered student checkpoint: %w", err)
		}
	} else {
		if l.cfg.StudentInit != nil {
			if err := nn.CopyParams(l.student, l.cfg.StudentInit); err != nil {
				return fmt.Errorf("online: student warm start: %w", err)
			}
		}
		if _, err := l.publishStudentLocked(); err != nil {
			return err
		}
	}
	lr := l.cfg.Distill.LR
	if lr == 0 {
		lr = l.cfg.LR
	}
	l.sopt = nn.NewAdam(lr)
	return nil
}

// Data returns the input/label construction config sessions must share.
func (l *Learner) Data() dataprep.Config { return l.cfg.Data }

// Latency is the modelled inference latency of the online prefetcher.
func (l *Learner) Latency() int { return l.cfg.Latency }

// StorageBytes is the modelled storage of the online prefetcher.
func (l *Learner) StorageBytes() int { return l.cfg.StorageBytes }

// Store exposes the versioned model store (the serving path calls Load on
// it once per inference batch).
func (l *Learner) Store() *Store { return l.store }

// Serving returns the current published model version. Never nil once
// NewLearner has returned.
func (l *Learner) Serving() *Model { return l.store.Load() }

// HasStudent reports whether the distilled-student tier is enabled.
func (l *Learner) HasStudent() bool { return l.studentStore != nil }

// StudentStore exposes the student class of the versioned store; nil when
// the tier is disabled.
func (l *Learner) StudentStore() *Store { return l.studentStore }

// StudentServing returns the current published student version, or nil when
// the tier is disabled. With the tier enabled it is never nil once
// NewLearner has returned.
func (l *Learner) StudentServing() *Model {
	if l.studentStore == nil {
		return nil
	}
	return l.studentStore.Load()
}

// StudentLatency is the modelled inference latency of the student prefetcher.
func (l *Learner) StudentLatency() int { return l.cfg.StudentLatency }

// StudentStorageBytes is the modelled storage of the student prefetcher.
func (l *Learner) StudentStorageBytes() int { return l.cfg.StudentStorageBytes }

// HasDart reports whether the tabularized (dart) serving class is enabled.
func (l *Learner) HasDart() bool { return l.dartStore != nil }

// Policy returns the promotion policy engine, or nil when disabled. The
// serving engine feeds its shadow-compared batches into it (ObserveLive) and
// the `policy` wire verb reads its decision log.
func (l *Learner) Policy() *Policy { return l.pol }

// DartStore exposes the dart class of the versioned store; nil when the
// tier is disabled.
func (l *Learner) DartStore() *TableStore { return l.dartStore }

// DartServing returns the currently published table version, or nil while
// none exists yet (before the first tabularization cycle of an empty store)
// — the serve side falls back to the student class until then.
func (l *Learner) DartServing() *Table {
	if l.dartStore == nil {
		return nil
	}
	return l.dartStore.Load()
}

// DartLatency is the modelled inference latency of the dart prefetcher: the
// config override when set, else the analytic latency (Sec. V-C) of the
// published hierarchy, else the student's while no table exists yet.
func (l *Learner) DartLatency() int {
	if l.cfg.DartLatency > 0 {
		return l.cfg.DartLatency
	}
	if c := l.dartCost.Load(); c != nil {
		return c.LatencyCycles
	}
	return l.cfg.StudentLatency
}

// DartStorageBytes is the modelled storage of the dart prefetcher, resolved
// like DartLatency.
func (l *Learner) DartStorageBytes() int {
	if l.cfg.DartStorageBytes > 0 {
		return l.cfg.DartStorageBytes
	}
	if c := l.dartCost.Load(); c != nil {
		return c.StorageBytes()
	}
	return l.cfg.StudentStorageBytes
}

// Attach registers a session and returns the ring its actor pushes events
// into. The caller must Detach with the same id when the session closes.
func (l *Learner) Attach(id string) *Ring {
	t := &sessionTap{ring: NewRing(l.cfg.RingCap), bld: newBuilder(l.cfg.Data)}
	l.tapMu.Lock()
	l.taps[id] = t
	l.tapMu.Unlock()
	return t.ring
}

// Detach unregisters a session. Events still in its ring are abandoned —
// at session close there is nothing left worth a final training example.
func (l *Learner) Detach(id string) {
	l.tapMu.Lock()
	if t, ok := l.taps[id]; ok {
		l.detachedDrops.Add(t.ring.Dropped())
		delete(l.taps, id)
	}
	l.tapMu.Unlock()
}

// Start launches the background collector/trainer loop.
func (l *Learner) Start() {
	go l.loop()
}

// Stop terminates the loop, waits for it to finish, and publishes a final
// version when training advanced past the last published one — progress is
// never lost on a clean shutdown. Stop is idempotent.
func (l *Learner) Stop() {
	l.once.Do(func() {
		close(l.quit)
		<-l.done
		l.trainMu.Lock()
		defer l.trainMu.Unlock()
		if l.steps.Load() > l.stepsAtPub {
			_, _ = l.publishLocked() // best-effort final flush
		}
		if l.student != nil && l.distSteps.Load() > l.distAtPub {
			_, _ = l.publishStudentLocked()
		}
	})
}

// loop is the collector/trainer: drain rings, assemble examples, take
// duty-cycled optimizer steps, auto-publish on the swap interval.
func (l *Learner) loop() {
	defer close(l.done)
	tick := time.NewTicker(l.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-l.quit:
			l.drainAll() // pick up stragglers so Stop's final publish sees them
			return
		case <-tick.C:
			l.drainAll()
			l.maybeTrain()
			l.maybeTabularize()
		}
	}
}

// drainAll consumes every attached ring into the example reservoir. The
// reservoir is written under trainMu: it is sampled by optimizer steps on
// this goroutine, but also snapshotted by forced SwapDart tabularizations
// from wire-server goroutines.
func (l *Learner) drainAll() {
	l.tapMu.Lock()
	taps := make([]*sessionTap, 0, len(l.taps))
	for _, t := range l.taps {
		taps = append(taps, t)
	}
	l.tapMu.Unlock()
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	for _, t := range taps {
		t.ring.Drain(func(ev Event) {
			l.ingested.Add(1)
			if ev.HasFB {
				if ev.Feedback.Kind == sim.FeedbackUseful {
					l.useful.Add(1)
				} else {
					l.late.Add(1)
				}
			}
			t.bld.observe(ev.Access, l.addExample)
		})
	}
}

// addExample inserts into the overwrite-oldest reservoir.
func (l *Learner) addExample(ex example) {
	l.buf[l.bufW] = ex
	l.bufW = (l.bufW + 1) % len(l.buf)
	if l.bufN < len(l.buf) {
		l.bufN++
	}
	l.fresh++
	l.assembled.Add(1)
}

// maybeTrain takes one optimizer step when enough fresh examples arrived and
// the duty-cycle budget allows it.
func (l *Learner) maybeTrain() {
	if l.bufN < l.cfg.BatchSize || l.fresh == 0 {
		return
	}
	wall := time.Since(l.start)
	if float64(l.trainNs.Load()) > l.cfg.Duty*float64(wall.Nanoseconds()) {
		return // over budget: let serving breathe
	}
	l.trainMu.Lock()
	t0 := time.Now()
	l.trainStepLocked()
	if l.student != nil {
		l.distillStepLocked()
	}
	l.trainNs.Add(time.Since(t0).Nanoseconds())
	auto := l.cfg.SwapInterval > 0 &&
		time.Since(l.lastPub) >= l.cfg.SwapInterval &&
		l.steps.Load() > l.stepsAtPub
	if auto {
		m, err := l.publishLocked() // on failure serving keeps the previous version
		if err == nil && l.pol != nil {
			// The teacher has no source class to shadow-compare against, so
			// its publishes are ungated — but they still land in the decision
			// log so the `policy` verb covers every class publish.
			l.pol.record(Decision{
				Class: "teacher", Action: ActionAdmit, Version: m.Version,
				Reason: "teacher: ungated (no source class)",
			})
		}
	}
	if l.student != nil &&
		l.cfg.DistillInterval > 0 &&
		time.Since(l.lastStuPub) >= l.cfg.DistillInterval &&
		l.distSteps.Load() > l.distAtPub {
		if l.pol == nil {
			_, _ = l.publishStudentLocked()
		} else {
			l.gateStudentLocked()
		}
	}
	l.trainMu.Unlock()
}

// trainStepLocked samples a minibatch from the reservoir and fine-tunes the
// shadow. Caller holds trainMu.
func (l *Learner) trainStepLocked() {
	b := l.cfg.BatchSize
	din := l.cfg.Data.InputDim()
	bx := mat.NewTensor(b, l.cfg.Data.History, din)
	by := mat.NewTensor(b, 1, l.cfg.Data.OutputDim())
	for i := 0; i < b; i++ {
		ex := l.buf[l.rng.Intn(l.bufN)]
		copy(bx.Sample(i).Data, ex.x)
		copy(by.Sample(i).Data, ex.y)
	}
	l.fresh = 0
	loss := l.tr.TrainEpoch(bx, by, nn.BCEWithLogits)
	if !l.lossSeeded {
		l.lossFast, l.lossSlow, l.lossSeeded = loss, loss, true
	} else {
		l.lossFast += 0.2 * (loss - l.lossFast)
		l.lossSlow += 0.02 * (loss - l.lossSlow)
	}
	l.trained.Add(uint64(b))
	l.steps.Add(1)
}

// distillStepLocked takes one knowledge-distillation minibatch step on the
// student shadow: teacher logits come from a private clone of the currently
// published teacher version (refreshed on version change — the serving
// batcher owns the published instance, whose Forward is not reentrant), the
// combined soft+hard loss and its gradient from kd.Loss over the same
// reservoir the teacher fine-tunes on. Caller holds trainMu.
func (l *Learner) distillStepLocked() {
	if m := l.store.Load(); m != nil && m.Version != l.distTeacherVer {
		if err := nn.CopyParams(l.distTeacher, m.Net); err == nil {
			l.distTeacherVer = m.Version
		}
	}
	b := l.cfg.BatchSize
	din := l.cfg.Data.InputDim()
	bx := mat.NewTensor(b, l.cfg.Data.History, din)
	by := mat.NewTensor(b, 1, l.cfg.Data.OutputDim())
	for i := 0; i < b; i++ {
		ex := l.buf[l.rng.Intn(l.bufN)]
		copy(bx.Sample(i).Data, ex.x)
		copy(by.Sample(i).Data, ex.y)
	}
	teacherLogits := l.distTeacher.Forward(bx)
	studentLogits := l.student.Forward(bx)
	loss, grad := kd.Loss(studentLogits, teacherLogits, by,
		l.cfg.Distill.Lambda, l.cfg.Distill.Temperature)
	l.student.Backward(grad)
	l.sopt.Step(l.student.Params())
	if !l.distSeeded {
		l.distLossFast, l.distLossSlow, l.distSeeded = loss, loss, true
	} else {
		l.distLossFast += 0.2 * (loss - l.distLossFast)
		l.distLossSlow += 0.02 * (loss - l.distLossSlow)
	}
	l.distilled.Add(uint64(b))
	l.distSteps.Add(1)
}

// publishLocked snapshots the shadow into the store. Caller holds trainMu
// (or is the NewLearner constructor, before any concurrency exists).
func (l *Learner) publishLocked() (*Model, error) {
	m, err := l.store.Publish(l.shadow, nn.CheckpointMeta{
		Examples: l.assembled.Load(),
		Steps:    l.steps.Load(),
		Loss:     l.lossFast,
	})
	if err != nil {
		return nil, err
	}
	l.published.Add(1)
	l.stepsAtPub = l.steps.Load()
	l.lastPub = time.Now()
	return m, nil
}

// publishStudentLocked snapshots the student shadow into the student class
// store. Caller holds trainMu (or is the constructor).
func (l *Learner) publishStudentLocked() (*Model, error) {
	m, err := l.studentStore.Publish(l.student, nn.CheckpointMeta{
		Examples: l.distilled.Load(),
		Steps:    l.distSteps.Load(),
		Loss:     l.distLossFast,
	})
	if err != nil {
		return nil, err
	}
	l.studentPublished.Add(1)
	l.distAtPub = l.distSteps.Load()
	l.lastStuPub = time.Now()
	return m, nil
}

// evalBatchLocked samples one shadow-evaluation minibatch of inputs from the
// reservoir using the gate's dedicated RNG — never the training RNG, so
// admission evaluation cannot perturb the training stream. Caller holds
// trainMu.
func (l *Learner) evalBatchLocked() *mat.Tensor {
	b := l.cfg.BatchSize
	bx := mat.NewTensor(b, l.cfg.Data.History, l.cfg.Data.InputDim())
	for i := 0; i < b; i++ {
		ex := l.buf[l.evalRng.Intn(l.bufN)]
		copy(bx.Sample(i).Data, ex.x)
	}
	return bx
}

// gateStudentLocked advances the student candidate's admission window by one
// shadow batch — candidate = the current student shadow, source = the
// distillation teacher mirror — and decides admit/hold when the window
// fills. A hold re-stamps the duty-cycle cadence, so the held candidate
// keeps distilling for a full DistillInterval before the next attempt.
// Caller holds trainMu.
func (l *Learner) gateStudentLocked() {
	if l.bufN < l.cfg.BatchSize {
		return
	}
	// Keep the KD source mirror on the latest teacher version (it normally
	// refreshes in distillStepLocked, but the gate can also tick while the
	// trainer is over its duty budget).
	if m := l.store.Load(); m != nil && m.Version != l.distTeacherVer {
		if err := nn.CopyParams(l.distTeacher, m.Net); err == nil {
			l.distTeacherVer = m.Version
		}
	}
	bx := l.evalBatchLocked()
	match, total := agreementCount(l.student.Forward(bx), l.distTeacher.Forward(bx))
	if !l.pol.observeCandidate(StudentClass, match, total) {
		return // window not full: more shadow batches on later ticks
	}
	agree, batches, labels, ok := l.pol.admitVerdict(StudentClass)
	d := Decision{
		Class: StudentClass, Agreement: agree, Batches: batches, Labels: labels,
		LatencyCycles: l.cfg.StudentLatency, StorageBytes: l.cfg.StudentStorageBytes,
	}
	if bok, reason := l.pol.budgetCheck(StudentClass, l.cfg.StudentLatency, l.cfg.StudentStorageBytes); !bok {
		d.Action, d.Reason = ActionHold, "budget: "+reason
		l.pol.record(d)
		l.lastStuPub = time.Now()
		return
	}
	if !ok {
		d.Action = ActionHold
		d.Reason = fmt.Sprintf("agreement %.3f < %.2f over %d shadow batches",
			agree, l.pol.cfg.AdmitThreshold, batches)
		l.pol.record(d)
		l.lastStuPub = time.Now()
		return
	}
	m, err := l.publishStudentLocked()
	if err != nil {
		return // serving keeps the previous version; evidence already reset
	}
	d.Action, d.Version = ActionAdmit, m.Version
	d.Reason = fmt.Sprintf("agreement %.3f >= %.2f over %d shadow batches",
		agree, l.pol.cfg.AdmitThreshold, batches)
	l.pol.record(d)
}

// maybeTabularize is the dart tier's duty cycle, run on the loop goroutine
// after training: when the tabularize interval has elapsed and the published
// student has changed since the serving table was built, re-tabularize and
// publish. Tabularization is deliberately run outside trainMu — it is the
// most expensive background step by far, and holding the training lock for
// its duration would stall forced Swap/Rollback verbs; only the brief fit-
// snapshot inside tabularizeLocked touches trainer state.
func (l *Learner) maybeTabularize() {
	if l.dartStore == nil || l.cfg.TabularizeInterval <= 0 {
		return
	}
	l.tabMu.Lock()
	defer l.tabMu.Unlock()
	if time.Since(l.lastTab) < l.cfg.TabularizeInterval {
		return
	}
	sm := l.studentStore.Load()
	if sm.Version == l.dartSrcVer {
		// Student unchanged: the table would come out identical-ish. Count
		// the skipped attempt once per idle period (the cadence stamp stays
		// put so a fresh student publish fires on the next tick) so
		// operators can tell an idle tabularizer from a stuck one.
		if sm.Version != l.lastSkipVer {
			l.tabAttempts.Add(1)
			l.tabSkips.Add(1)
			l.lastSkipVer = sm.Version
			if l.pol != nil {
				l.pol.record(Decision{
					Class: DartClass, Action: ActionSkip,
					Reason: fmt.Sprintf("student v%d unchanged since last build", sm.Version),
				})
			}
		}
		return
	}
	// Incremental re-tabularization: when the policy engine is configured
	// with a minimum source delta, a student version whose parameters moved
	// less than that (relative L2, cumulative since the mirrored build) is
	// not worth the most expensive background step in the system.
	if l.pol != nil && l.pol.cfg.MinSourceDelta > 0 && l.dartMirrorVer != 0 {
		if delta := paramDelta(sm.Net, l.dartStudent); delta < l.pol.cfg.MinSourceDelta {
			if sm.Version != l.lastSkipVer {
				l.tabAttempts.Add(1)
				l.tabSkips.Add(1)
				l.lastSkipVer = sm.Version
				l.pol.record(Decision{
					Class: DartClass, Action: ActionSkip,
					Reason: fmt.Sprintf("student v%d param delta %.4f < %.4f: rebuild not worth it",
						sm.Version, delta, l.pol.cfg.MinSourceDelta),
				})
			}
			return
		}
	}
	_, _ = l.tabularizeLocked(l.pol != nil) // on failure serving keeps the previous table
}

// fitSnapshot copies the newest DartSamples reservoir examples into a
// kernel-fitting tensor (insertion order, deterministic) and reads the
// distillation-loss EWMA, all under one trainMu critical section — the only
// part of a tabularization cycle that touches trainer state.
func (l *Learner) fitSnapshot() (*mat.Tensor, float64, error) {
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	if l.bufN < l.cfg.BatchSize {
		return nil, 0, fmt.Errorf("online: not enough examples to tabularize (%d, need %d)", l.bufN, l.cfg.BatchSize)
	}
	n := l.cfg.DartSamples
	if n > l.bufN {
		n = l.bufN
	}
	fit := mat.NewTensor(n, l.cfg.Data.History, l.cfg.Data.InputDim())
	start := (l.bufW - n + len(l.buf)) % len(l.buf)
	for i := 0; i < n; i++ {
		copy(fit.Sample(i).Data, l.buf[(start+i)%len(l.buf)].x)
	}
	return fit, l.distLossFast, nil
}

// gateDartEvidence evaluates a candidate hierarchy against its source — the
// private student mirror it was tabularized from — over AdmitWindow shadow
// batches drawn from the reservoir, and returns the closed window's verdict.
// Caller holds tabMu (which guards the mirror); trainMu is taken briefly per
// batch to sample inputs.
func (l *Learner) gateDartEvidence(h *tabular.Hierarchy) (agree float64, batches int, labels uint64, ok bool) {
	for {
		l.trainMu.Lock()
		if l.bufN < l.cfg.BatchSize {
			l.trainMu.Unlock()
			break
		}
		bx := l.evalBatchLocked()
		l.trainMu.Unlock()
		match, total := agreementCount(h.QueryBatch(bx), l.dartStudent.Forward(bx))
		if l.pol.observeCandidate(DartClass, match, total) {
			break
		}
	}
	return l.pol.admitVerdict(DartClass)
}

// tabularizeLocked runs one tabularization cycle: refresh the private
// student mirror to the published student version (the published instance's
// Forward belongs to the serving batcher, exactly like the distiller's
// teacher mirror), run tabular.Tabularize over the freshest reservoir
// examples, and publish the resulting hierarchy as the next dart version.
// With gated set (the policy engine owns this duty cycle), the candidate
// must clear the admission gate — agreement with the source student over the
// shadow-batch window, and the class budget against its analytic cost —
// before it publishes; a held candidate is dropped and the next interval
// builds a fresh one. Caller holds tabMu.
func (l *Learner) tabularizeLocked(gated bool) (*Table, error) {
	fit, loss, err := l.fitSnapshot()
	if err != nil {
		return nil, err
	}
	l.tabAttempts.Add(1)
	// Stamp the cadence before the expensive work, not after a successful
	// publish: if tabularization or the checkpoint write fails (disk full,
	// permissions), the duty cycle must wait out a full interval before
	// retrying rather than re-running the most expensive background step on
	// every 2ms tick. The cheap not-enough-examples failure above retries
	// freely.
	l.lastTab = time.Now()
	sm := l.studentStore.Load()
	if sm.Version != l.dartMirrorVer {
		if err := nn.CopyParams(l.dartStudent, sm.Net); err != nil {
			return nil, fmt.Errorf("online: student mirror: %w", err)
		}
		l.dartMirrorVer = sm.Version
	}
	t0 := time.Now()
	res := tabular.Tabularize(l.dartStudent.(*nn.Sequential), fit, l.cfg.Tabular)
	l.tabNs.Add(time.Since(t0).Nanoseconds())
	l.tabularized.Add(1)
	cost := res.Hierarchy.Cost()
	var admit Decision
	if gated {
		agree, batches, labels, ok := l.gateDartEvidence(res.Hierarchy)
		admit = Decision{
			Class: DartClass, Agreement: agree, Batches: batches, Labels: labels,
			Cosine: meanCosine(res.Cosine), LatencyCycles: cost.LatencyCycles,
			StorageBytes: cost.StorageBytes(),
		}
		if bok, reason := l.pol.budgetCheck(DartClass, cost.LatencyCycles, cost.StorageBytes()); !bok {
			admit.Action, admit.Reason = ActionHold, "budget: "+reason
			l.pol.record(admit)
			return nil, fmt.Errorf("online: dart candidate held: %s", admit.Reason)
		}
		if !ok {
			admit.Action = ActionHold
			admit.Reason = fmt.Sprintf("agreement %.3f < %.2f over %d shadow batches",
				agree, l.pol.cfg.AdmitThreshold, batches)
			l.pol.record(admit)
			return nil, fmt.Errorf("online: dart candidate held: %s", admit.Reason)
		}
		admit.Action = ActionAdmit
		admit.Reason = fmt.Sprintf("agreement %.3f >= %.2f over %d shadow batches",
			agree, l.pol.cfg.AdmitThreshold, batches)
	}
	tab, err := l.dartStore.Publish(res.Hierarchy, nn.CheckpointMeta{
		Source:   sm.Version, // the student version the table derives from
		Examples: uint64(fit.N),
		Steps:    l.distSteps.Load(),
		Loss:     loss,
	})
	if err != nil {
		return nil, err
	}
	l.dartCost.Store(&cost)
	l.dartPublished.Add(1)
	l.dartSrcVer = sm.Version
	if gated {
		admit.Version = tab.Version
		l.pol.record(admit)
	}
	return tab, nil
}

// logForced records a wire-forced swap/rollback in the decision log: forced
// verbs bypass the admission gate by design (an operator outranks the
// policy), but the log still covers every publish so the `policy` verb shows
// the full promotion history.
func (l *Learner) logForced(class, action string, ver uint64) {
	if l.pol == nil {
		return
	}
	l.pol.record(Decision{Class: class, Action: action, Version: ver,
		Reason: "forced via wire verb (gate bypassed)"})
}

// SwapDart force-runs one tabularization cycle immediately (the serve
// protocol's "swap" verb with the dart class selector), publishing a fresh
// table from the currently published student — even an unchanged one, since
// the reservoir the kernels fit on keeps moving. The admission gate is
// bypassed; with the policy engine enabled the forced publish is still
// logged. Serving picks the table up at the next inference batch.
func (l *Learner) SwapDart() (*Table, error) {
	if l.dartStore == nil {
		return nil, fmt.Errorf("online: no dart tier configured")
	}
	l.tabMu.Lock()
	defer l.tabMu.Unlock()
	t, err := l.tabularizeLocked(false)
	if err != nil {
		return nil, err
	}
	l.logForced(DartClass, ActionAdmit, t.Version)
	return t, nil
}

// rollbackDart reverts the served table to the previously published version
// without logging a decision — the policy engine's divergence rollback logs
// its own decision with the agreement evidence. There is no shadow to reset
// — tables are derived artifacts — but the rolled-back source version is
// forgotten so the next duty cycle rebuilds from the current student instead
// of skipping as "unchanged".
func (l *Learner) rollbackDart() (*Table, error) {
	if l.dartStore == nil {
		return nil, fmt.Errorf("online: no dart tier configured")
	}
	l.tabMu.Lock()
	defer l.tabMu.Unlock()
	t, err := l.dartStore.Rollback()
	if err != nil {
		return nil, err
	}
	cost := t.H.Cost()
	l.dartCost.Store(&cost)
	l.dartSrcVer = 0
	return t, nil
}

// RollbackDart reverts the served table to the previously published version
// (the serve protocol's "rollback" verb with the dart class selector).
func (l *Learner) RollbackDart() (*Table, error) {
	t, err := l.rollbackDart()
	if err != nil {
		return nil, err
	}
	l.logForced(DartClass, ActionRollback, t.Version)
	return t, nil
}

// Swap force-publishes the current shadow as a new version immediately (the
// serve protocol's "swap" verb). Serving picks it up at the next inference
// batch.
func (l *Learner) Swap() (*Model, error) {
	l.trainMu.Lock()
	m, err := l.publishLocked()
	l.trainMu.Unlock()
	if err != nil {
		return nil, err
	}
	l.logForced("teacher", ActionAdmit, m.Version)
	return m, nil
}

// Rollback reverts serving to the previously published version and resets
// the shadow (and its optimizer state) to those weights, so training
// continues from the rolled-back point rather than republishing the bad
// ones.
func (l *Learner) Rollback() (*Model, error) {
	l.trainMu.Lock()
	m, err := l.store.Rollback()
	if err != nil {
		l.trainMu.Unlock()
		return nil, err
	}
	if err := nn.CopyParams(l.shadow, m.Net); err != nil {
		l.trainMu.Unlock()
		return nil, fmt.Errorf("online: rollback: %w", err)
	}
	l.tr = nn.NewTrainer(l.shadow, nn.NewAdam(l.cfg.LR), l.cfg.BatchSize, l.rng)
	l.trainMu.Unlock()
	l.logForced("teacher", ActionRollback, m.Version)
	return m, nil
}

// SwapStudent force-publishes the current student shadow as a new student
// version immediately (the serve protocol's "swap" verb with the student
// class selector), bypassing the admission gate.
func (l *Learner) SwapStudent() (*Model, error) {
	if l.studentStore == nil {
		return nil, fmt.Errorf("online: no distilled-student tier configured")
	}
	l.trainMu.Lock()
	m, err := l.publishStudentLocked()
	l.trainMu.Unlock()
	if err != nil {
		return nil, err
	}
	l.logForced(StudentClass, ActionAdmit, m.Version)
	return m, nil
}

// rollbackStudent reverts the served student to the previously published
// version and resets the student shadow (and its optimizer state) to those
// weights, mirroring Rollback for the teacher class. No decision is logged —
// the policy engine's divergence rollback logs its own.
func (l *Learner) rollbackStudent() (*Model, error) {
	if l.studentStore == nil {
		return nil, fmt.Errorf("online: no distilled-student tier configured")
	}
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	m, err := l.studentStore.Rollback()
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(l.student, m.Net); err != nil {
		return nil, fmt.Errorf("online: student rollback: %w", err)
	}
	lr := l.cfg.Distill.LR
	if lr == 0 {
		lr = l.cfg.LR
	}
	l.sopt = nn.NewAdam(lr)
	return m, nil
}

// RollbackStudent reverts the served student to the previously published
// version (the serve protocol's "rollback" verb with the student class
// selector).
func (l *Learner) RollbackStudent() (*Model, error) {
	m, err := l.rollbackStudent()
	if err != nil {
		return nil, err
	}
	l.logForced(StudentClass, ActionRollback, m.Version)
	return m, nil
}

// Stats is a point-in-time snapshot of the learner.
type Stats struct {
	Version   uint64  // currently served model version
	Published uint64  // versions published since start
	Sessions  int     // attached sessions
	Ingested  uint64  // events consumed from session rings
	Dropped   uint64  // events lost to full rings
	Useful    uint64  // FeedbackUseful events seen
	Late      uint64  // FeedbackLate events seen
	Examples  uint64  // training examples assembled
	Trained   uint64  // examples consumed by optimizer steps
	Steps     uint64  // optimizer steps taken
	Loss      float64 // online loss EWMA (fast horizon)
	LossTrend float64 // fast minus slow EWMA; negative = improving
	PerSec    float64 // feedback-event ingest throughput since start

	// Distilled-student tier; all zero when the tier is disabled.
	StudentVersion   uint64  // currently served student version
	StudentPublished uint64  // student versions published since start
	Distilled        uint64  // examples consumed by distillation steps
	DistillSteps     uint64  // distillation optimizer steps taken
	DistillLoss      float64 // combined KD+BCE loss EWMA (fast horizon)
	DistillTrend     float64 // fast minus slow EWMA; negative = improving

	// Dart (tabularized) tier; all zero when the tier is disabled.
	DartVersion   uint64  // currently served table version (0 until the first publish)
	DartPublished uint64  // table versions published since start
	Tabularized   uint64  // tabularization cycles run (candidates actually built)
	DartAttempts  uint64  // duty cycles that considered work: builds + counted skips
	DartSkips     uint64  // cycles skipped for an unchanged or below-delta student
	TabularizeMs  float64 // cumulative wall time spent tabularizing, milliseconds
}

// Stats snapshots the learner's counters.
func (l *Learner) Stats() Stats {
	st := Stats{
		Published: l.published.Load(),
		Ingested:  l.ingested.Load(),
		Useful:    l.useful.Load(),
		Late:      l.late.Load(),
		Examples:  l.assembled.Load(),
		Trained:   l.trained.Load(),
		Steps:     l.steps.Load(),
	}
	if m := l.store.Load(); m != nil {
		st.Version = m.Version
	}
	st.Dropped = l.detachedDrops.Load()
	l.tapMu.Lock()
	st.Sessions = len(l.taps)
	for _, t := range l.taps {
		st.Dropped += t.ring.Dropped()
	}
	l.tapMu.Unlock()
	if l.studentStore != nil {
		st.StudentPublished = l.studentPublished.Load()
		st.Distilled = l.distilled.Load()
		st.DistillSteps = l.distSteps.Load()
		if m := l.studentStore.Load(); m != nil {
			st.StudentVersion = m.Version
		}
	}
	if l.dartStore != nil {
		st.DartPublished = l.dartPublished.Load()
		st.Tabularized = l.tabularized.Load()
		st.DartAttempts = l.tabAttempts.Load()
		st.DartSkips = l.tabSkips.Load()
		st.TabularizeMs = float64(l.tabNs.Load()) / 1e6
		if t := l.dartStore.Load(); t != nil {
			st.DartVersion = t.Version
		}
	}
	l.trainMu.Lock()
	st.Loss = l.lossFast
	st.LossTrend = l.lossFast - l.lossSlow
	st.DistillLoss = l.distLossFast
	st.DistillTrend = l.distLossFast - l.distLossSlow
	l.trainMu.Unlock()
	if el := time.Since(l.start).Seconds(); el > 0 {
		st.PerSec = float64(st.Ingested) / el
	}
	return st
}

// ClassInfo describes one serving class of the versioned store — the rows
// of the wire protocol's "classes" verb.
type ClassInfo struct {
	Class        string   // wire name: "teacher", "student", "dart"
	Version      uint64   // currently served version (0 when none published yet)
	Versions     []uint64 // versions held for rollback, oldest first
	Published    uint64   // publishes since start
	Latency      int      // modelled inference latency (cycles)
	StorageBytes int      // modelled predictor storage
}

// Classes lists every serving class this learner versions, teacher first.
func (l *Learner) Classes() []ClassInfo {
	out := []ClassInfo{{
		Class:        "teacher",
		Versions:     l.store.Versions(),
		Published:    l.published.Load(),
		Latency:      l.cfg.Latency,
		StorageBytes: l.cfg.StorageBytes,
	}}
	if m := l.store.Load(); m != nil {
		out[0].Version = m.Version
	}
	if l.studentStore != nil {
		ci := ClassInfo{
			Class:        StudentClass,
			Versions:     l.studentStore.Versions(),
			Published:    l.studentPublished.Load(),
			Latency:      l.cfg.StudentLatency,
			StorageBytes: l.cfg.StudentStorageBytes,
		}
		if m := l.studentStore.Load(); m != nil {
			ci.Version = m.Version
		}
		out = append(out, ci)
	}
	if l.dartStore != nil {
		ci := ClassInfo{
			Class:        DartClass,
			Versions:     l.dartStore.Versions(),
			Published:    l.dartPublished.Load(),
			Latency:      l.DartLatency(),
			StorageBytes: l.DartStorageBytes(),
		}
		if t := l.dartStore.Load(); t != nil {
			ci.Version = t.Version
		}
		out = append(out, ci)
	}
	return out
}
