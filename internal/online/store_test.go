package online

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dart/internal/nn"
)

// publishN publishes n distinct versions into a fresh store at dir.
func publishN(t *testing.T, dir string, n int) *Store {
	t.Helper()
	data := tinyData()
	s, err := NewStore(tinyArch(data), dir)
	if err != nil {
		t.Fatal(err)
	}
	src := tinyArch(data)()
	for v := 1; v <= n; v++ {
		for _, p := range src.Params() {
			for i := range p.W.Data {
				p.W.Data[i] = float64(v) + float64(i)*0.001
			}
		}
		if _, err := s.Publish(src, nn.CheckpointMeta{Steps: uint64(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.dart"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := NewStore(tinyArch(tinyData()), dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePublishLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := publishN(t, dir, 3)
	if got := s.Load().Version; got != 3 {
		t.Fatalf("current v%d, want 3", got)
	}
	if vs := s.Versions(); len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("versions %v", vs)
	}

	r := reopen(t, dir)
	if len(r.Skipped) != 0 {
		t.Fatalf("clean reopen skipped files: %v", r.Skipped)
	}
	m := r.Load()
	if m == nil || m.Version != 3 || m.Meta.Steps != 3 {
		t.Fatalf("recovered %+v, want v3", m)
	}
	// Every valid checkpoint is recovered into the rollback history, so
	// rollback works straight after a restart.
	if vs := r.Versions(); len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("recovered history %v, want [1 2 3]", vs)
	}
	back, err := r.Rollback()
	if err != nil {
		t.Fatalf("rollback after restart: %v", err)
	}
	if back.Version != 2 {
		t.Fatalf("rollback after restart landed on v%d, want 2", back.Version)
	}
	want := s.Load().Net.Params()
	got := m.Net.Params()
	for i := range want {
		for j, v := range want[i].W.Data {
			if got[i].W.Data[j] != v {
				t.Fatalf("recovered param %q[%d] differs", want[i].Name, j)
			}
		}
	}
}

// TestStoreFallsBackPastCorruption: a corrupted newest checkpoint must be
// skipped with a descriptive reason and the previous good version recovered.
func TestStoreFallsBackPastCorruption(t *testing.T) {
	corrupt := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		wantErr string
	}{
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "truncated"},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(strings.Repeat("not a checkpoint ", 32)), 0o644); err != nil {
				t.Fatal(err)
			}
		}, "bad magic"},
		{"crc-flip", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-3] ^= 0x10
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "CRC mismatch"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			publishN(t, dir, 3)
			files := ckptFiles(t, dir)
			newest := files[len(files)-1]
			tc.mangle(t, newest)

			r := reopen(t, dir)
			if len(r.Skipped) != 1 {
				t.Fatalf("skipped %v, want exactly the corrupt file", r.Skipped)
			}
			if !strings.Contains(r.Skipped[0], tc.wantErr) {
				t.Fatalf("skip reason %q does not mention %q", r.Skipped[0], tc.wantErr)
			}
			m := r.Load()
			if m == nil || m.Version != 2 {
				t.Fatalf("fell back to %+v, want v2", m)
			}
			// The fallback version's weights are v2's, not v3's.
			if got := m.Net.Params()[0].W.Data[0]; got != 2.0 {
				t.Fatalf("recovered weight %v, want v2's 2.0", got)
			}
		})
	}
}

// TestStoreAllCorrupt: when every checkpoint is bad the store starts empty
// rather than serving garbage.
func TestStoreAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	publishN(t, dir, 2)
	for _, f := range ckptFiles(t, dir) {
		if err := os.WriteFile(f, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r := reopen(t, dir)
	if r.Load() != nil {
		t.Fatal("store recovered a model from corrupt files")
	}
	if len(r.Skipped) != 2 {
		t.Fatalf("skipped %v, want both files", r.Skipped)
	}
	// Publishing into the recovered-empty store starts over at v1.
	src := tinyArch(tinyData())()
	m, err := r.Publish(src, nn.CheckpointMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("first publish after total corruption gave v%d, want 1", m.Version)
	}
}

// TestStorePrunesOldVersions: history and disk stay bounded.
func TestStorePrunesOldVersions(t *testing.T) {
	dir := t.TempDir()
	s := publishN(t, dir, keepVersions+4)
	if vs := s.Versions(); len(vs) != keepVersions || vs[0] != 5 {
		t.Fatalf("history %v, want %d entries starting at v5", vs, keepVersions)
	}
	if files := ckptFiles(t, dir); len(files) != keepVersions {
		t.Fatalf("%d checkpoint files on disk, want %d", len(files), keepVersions)
	}
}

// TestStoreRollbackRemovesCheckpoint: the rolled-back version must not
// resurrect on restart.
func TestStoreRollbackRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := publishN(t, dir, 3)
	m, err := s.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 || s.Load().Version != 2 {
		t.Fatalf("rollback landed on v%d", m.Version)
	}
	r := reopen(t, dir)
	if got := r.Load().Version; got != 2 {
		t.Fatalf("restart after rollback recovered v%d, want 2", got)
	}
}
